// Benchmarks that regenerate every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus the ablations
// DESIGN.md calls out. The simulation suites that feed the figure benches
// are computed once per (model, set) at benchmark scale and cached; each
// benchmark iteration then performs the full analysis and rendering for
// its table or figure. cmd/riskbench produces the paper-scale outputs.
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/economy"
	"repro/internal/experiment"
	"repro/internal/plot"
	"repro/internal/qos"
	"repro/internal/risk"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

// benchJobs keeps the cached suites fast while preserving contention; the
// paper scale (5000 jobs) is exercised by BenchmarkPaperScaleSimulation.
const benchJobs = 300

var (
	suiteMu    sync.Mutex
	suiteCache = map[string]*experiment.Results{}
)

func benchSuite(b *testing.B, model economy.Model, setB bool) *experiment.Results {
	b.Helper()
	key := fmt.Sprintf("%v-%v", model, setB)
	suiteMu.Lock()
	defer suiteMu.Unlock()
	if res, ok := suiteCache[key]; ok {
		return res
	}
	cfg := experiment.DefaultSuiteConfig(model, setB)
	cfg.Jobs = benchJobs
	res, err := experiment.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	suiteCache[key] = res
	return res
}

// ---- Figure 1 and Tables II–IV: the sample risk analysis plot ----

func BenchmarkFigure1SamplePlot(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sample := risk.SamplePolicies()
		_ = plot.ASCII(sample, plot.Config{Title: "Figure 1", XMax: 1})
		_ = plot.SVG(sample, plot.Config{Title: "Figure 1", XMax: 1, TrendLines: true})
	}
}

func BenchmarkTableIISummary(b *testing.B) {
	sample := risk.SamplePolicies()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, s := range sample {
			if _, err := risk.Summarize(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTableIIIRankByPerformance(b *testing.B) {
	sample := risk.SamplePolicies()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := risk.RankByPerformance(sample); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIVRankByVolatility(b *testing.B) {
	sample := risk.SamplePolicies()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := risk.RankByVolatility(sample); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 2: the bid-based penalty function ----

func BenchmarkFigure2Penalty(b *testing.B) {
	j := &workload.Job{
		ID: 1, Submit: 0, Runtime: 3600, Estimate: 3600, Procs: 1,
		Deadline: 7200, Budget: 1000, PenaltyRate: 0.5,
	}
	b.ReportAllocs()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		for finish := 0.0; finish <= 20000; finish += 100 {
			sink += economy.BidUtility(j, finish)
		}
	}
	_ = sink
}

// ---- Figures 3–8: the evaluation suites ----

// separateBench regenerates one separate-analysis figure panel set (all
// four objectives of Figure 3 or 6 for one Set).
func separateBench(b *testing.B, model economy.Model, setB bool) {
	res := benchSuite(b, model, setB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, obj := range risk.AllObjectives {
			series, err := res.SeparateSeries(obj)
			if err != nil {
				b.Fatal(err)
			}
			_ = plot.GnuplotData(series)
		}
	}
}

// integrated3Bench regenerates the four three-objective panels (Figure 4
// or 7 for one Set).
func integrated3Bench(b *testing.B, model economy.Model, setB bool) {
	res := benchSuite(b, model, setB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, combo := range experiment.ObjectiveTriples() {
			series, err := res.IntegratedSeries(combo)
			if err != nil {
				b.Fatal(err)
			}
			_ = plot.GnuplotData(series)
		}
	}
}

// integrated4Bench regenerates the all-objectives panel (Figure 5 or 8 for
// one Set) including the rankings.
func integrated4Bench(b *testing.B, model economy.Model, setB bool) {
	res := benchSuite(b, model, setB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := res.IntegratedSeries(risk.AllObjectives)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := risk.RankByPerformance(series); err != nil {
			b.Fatal(err)
		}
		_ = plot.GnuplotData(series)
	}
}

func BenchmarkFigure3CommoditySeparateSetA(b *testing.B) { separateBench(b, economy.Commodity, false) }
func BenchmarkFigure3CommoditySeparateSetB(b *testing.B) { separateBench(b, economy.Commodity, true) }
func BenchmarkFigure4CommodityTriplesSetA(b *testing.B) {
	integrated3Bench(b, economy.Commodity, false)
}
func BenchmarkFigure4CommodityTriplesSetB(b *testing.B) { integrated3Bench(b, economy.Commodity, true) }
func BenchmarkFigure5CommodityAllSetA(b *testing.B)     { integrated4Bench(b, economy.Commodity, false) }
func BenchmarkFigure5CommodityAllSetB(b *testing.B)     { integrated4Bench(b, economy.Commodity, true) }
func BenchmarkFigure6BidBasedSeparateSetA(b *testing.B) { separateBench(b, economy.BidBased, false) }
func BenchmarkFigure6BidBasedSeparateSetB(b *testing.B) { separateBench(b, economy.BidBased, true) }
func BenchmarkFigure7BidBasedTriplesSetA(b *testing.B)  { integrated3Bench(b, economy.BidBased, false) }
func BenchmarkFigure7BidBasedTriplesSetB(b *testing.B)  { integrated3Bench(b, economy.BidBased, true) }
func BenchmarkFigure8BidBasedAllSetA(b *testing.B)      { integrated4Bench(b, economy.BidBased, false) }
func BenchmarkFigure8BidBasedAllSetB(b *testing.B)      { integrated4Bench(b, economy.BidBased, true) }

// BenchmarkSuite measures one full suite run (12 scenarios × 6 values × 5
// policies) at bench scale — the simulation cost behind each figure.
func BenchmarkSuite(b *testing.B) {
	for _, tc := range []struct {
		name  string
		model economy.Model
		setB  bool
	}{
		{"Commodity/SetA", economy.Commodity, false},
		{"Commodity/SetB", economy.Commodity, true},
		{"BidBased/SetA", economy.BidBased, false},
		{"BidBased/SetB", economy.BidBased, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := experiment.DefaultSuiteConfig(tc.model, tc.setB)
			cfg.Jobs = benchJobs
			for i := 0; i < b.N; i++ {
				if _, err := experiment.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPaperScaleSimulation runs one 5000-job, 128-node simulation per
// policy — the paper's full trace subset.
func BenchmarkPaperScaleSimulation(b *testing.B) {
	for _, spec := range scheduler.Specs() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			cfg := experiment.DefaultSuiteConfig(spec.Models[0], true)
			cfg.Jobs = 5000
			params := experiment.DefaultParams(100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := experiment.RunCell(cfg, params, spec)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rep.SLA, "SLA%")
					b.ReportMetric(rep.Profitability, "profit%")
				}
			}
		})
	}
}

// ---- Ablations (DESIGN.md) ----

// BenchmarkAblationWeights compares integrated rankings under the paper's
// equal weights against provider-centric and user-centric weightings.
func BenchmarkAblationWeights(b *testing.B) {
	res := benchSuite(b, economy.Commodity, true)
	weightings := map[string]risk.Weights{
		"equal": risk.EqualWeights(risk.AllObjectives),
		"provider-centric": {
			risk.Wait: 0.1, risk.SLA: 0.1, risk.Reliability: 0.1, risk.Profitability: 0.7,
		},
		"user-centric": {
			risk.Wait: 0.3, risk.SLA: 0.3, risk.Reliability: 0.3, risk.Profitability: 0.1,
		},
	}
	for name, w := range weightings {
		w := w
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				series, err := res.IntegratedSeriesWeighted(risk.AllObjectives, w)
				if err != nil {
					b.Fatal(err)
				}
				ranked, err := risk.RankByPerformance(series)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s winner: %s", name, ranked[0].Series.Policy)
				}
			}
		})
	}
}

// BenchmarkAblationSlackThreshold sweeps FirstReward's slack threshold —
// the knob the paper notes is non-trivial to set.
func BenchmarkAblationSlackThreshold(b *testing.B) {
	cfg := experiment.DefaultSuiteConfig(economy.BidBased, true)
	cfg.Jobs = 1000
	for _, threshold := range []float64{0, 5, 25, 100, 500} {
		threshold := threshold
		b.Run(fmt.Sprintf("threshold=%g", threshold), func(b *testing.B) {
			spec := scheduler.Spec{
				Name: "FirstReward",
				New: func(ctx *scheduler.Context) scheduler.Policy {
					return scheduler.NewFirstRewardTuned(ctx, 1, 0.01, threshold)
				},
			}
			for i := 0; i < b.N; i++ {
				rep, err := experiment.RunCell(cfg, experiment.DefaultParams(100), spec)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rep.SLA, "SLA%")
					b.ReportMetric(rep.Profitability, "profit%")
				}
			}
		})
	}
}

// BenchmarkAblationBeta sweeps Libra+$'s dynamic-pricing weight β
// (the paper uses 0.3).
func BenchmarkAblationBeta(b *testing.B) {
	cfg := experiment.DefaultSuiteConfig(economy.Commodity, true)
	cfg.Jobs = 1000
	for _, beta := range []float64{0, 0.1, 0.3, 1, 3} {
		beta := beta
		b.Run(fmt.Sprintf("beta=%g", beta), func(b *testing.B) {
			spec := scheduler.Spec{
				Name: "Libra+$",
				New: func(ctx *scheduler.Context) scheduler.Policy {
					return scheduler.NewLibraDollarTuned(ctx, economy.DefaultAlpha, beta)
				},
			}
			for i := 0; i < b.N; i++ {
				rep, err := experiment.RunCell(cfg, experiment.DefaultParams(100), spec)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rep.SLA, "SLA%")
					b.ReportMetric(rep.Profitability, "profit%")
				}
			}
		})
	}
}

// BenchmarkAblationPenaltyBound compares FirstReward under the paper's
// unbounded penalties against the bounded variant of Irwin et al.: bounded
// exposure makes the policy less risk-averse (more accepted jobs, higher
// SLA) at the price of penalty payments.
func BenchmarkAblationPenaltyBound(b *testing.B) {
	cfg := experiment.DefaultSuiteConfig(economy.BidBased, true)
	cfg.Jobs = 1000
	for _, tc := range []struct {
		name string
		new  scheduler.Factory
	}{
		{"unbounded", scheduler.NewFirstReward},
		{"bounded", scheduler.NewFirstRewardBounded},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			spec := scheduler.Spec{Name: "FirstReward/" + tc.name, New: tc.new}
			for i := 0; i < b.N; i++ {
				rep, err := experiment.RunCell(cfg, experiment.DefaultParams(100), spec)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rep.SLA, "SLA%")
					b.ReportMetric(rep.Profitability, "profit%")
				}
			}
		})
	}
}

// BenchmarkAblationAdmissionControl quantifies the paper's §5.2 remark
// that backfilling policies without admission control "perform much
// worse, especially when deadlines of jobs are short".
func BenchmarkAblationAdmissionControl(b *testing.B) {
	cfg := experiment.DefaultSuiteConfig(economy.BidBased, true)
	cfg.Jobs = 1000
	params := experiment.DefaultParams(100)
	params.DeadlineMean = 2 // short deadlines, the paper's stress case
	for _, tc := range []struct {
		name string
		new  scheduler.Factory
	}{
		{"FCFS-BF", scheduler.NewFCFSBF},
		{"FCFS-BF/noAC", scheduler.NewFCFSNoAC},
		{"EDF-BF", scheduler.NewEDFBF},
		{"EDF-BF/noAC", scheduler.NewEDFNoAC},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			spec := scheduler.Spec{Name: tc.name, New: tc.new}
			for i := 0; i < b.N; i++ {
				rep, err := experiment.RunCell(cfg, params, spec)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rep.Reliability, "reliability%")
					b.ReportMetric(rep.Profitability, "profit%")
				}
			}
		})
	}
}

// BenchmarkDiurnalRobustness reruns the headline bid-based Set B
// comparison on a workload with an explicit 5:1 daily arrival cycle: the
// LibraRiskD > Libra ordering should survive cyclical load.
func BenchmarkDiurnalRobustness(b *testing.B) {
	dcfg := workload.DefaultDiurnalConfig()
	dcfg.Base.Jobs = 1000
	trace, err := workload.GenerateDiurnal(dcfg, 21)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiment.DefaultSuiteConfig(economy.BidBased, true)
	cfg.Trace = trace
	for _, name := range []string{"Libra", "LibraRiskD"} {
		name := name
		b.Run(name, func(b *testing.B) {
			spec, err := scheduler.SpecByName(name)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				rep, err := experiment.RunCell(cfg, experiment.DefaultParams(100), spec)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rep.Reliability, "reliability%")
					b.ReportMetric(rep.Profitability, "profit%")
				}
			}
		})
	}
}

// BenchmarkAblationBackfillVariant compares EASY against conservative
// backfilling (Mu'alem & Feitelson's two classic variants) on the paper's
// workload: EASY typically fulfils slightly more SLAs; conservative gives
// every queued job a firm reservation.
func BenchmarkAblationBackfillVariant(b *testing.B) {
	cfg := experiment.DefaultSuiteConfig(economy.Commodity, true)
	cfg.Jobs = 1000
	for _, tc := range []struct {
		name string
		new  scheduler.Factory
	}{
		{"EASY", scheduler.NewFCFSBF},
		{"conservative", scheduler.NewFCFSConservative},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			spec := scheduler.Spec{Name: tc.name, New: tc.new}
			for i := 0; i < b.N; i++ {
				rep, err := experiment.RunCell(cfg, experiment.DefaultParams(100), spec)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rep.SLA, "SLA%")
					b.ReportMetric(rep.Wait, "wait_s")
				}
			}
		})
	}
}

// BenchmarkAblationHeterogeneity runs rating-blind policies on a
// homogeneous machine vs a heterogeneous one of equal aggregate capacity
// (half the nodes at 1.5×, half at 0.5×). Libra's share admission assumes
// reference-speed nodes and loses reliability on the slow half; FCFS-BF's
// fastest-first allocation degrades more gracefully (its admission
// re-checks at start time, and only the slow-node placements overrun their
// believed windows).
func BenchmarkAblationHeterogeneity(b *testing.B) {
	ratings := make([]float64, 128)
	for i := range ratings {
		if i < 64 {
			ratings[i] = 1.5
		} else {
			ratings[i] = 0.5
		}
	}
	for _, tc := range []struct {
		name    string
		factory scheduler.Factory
		ratings []float64
	}{
		{"Libra/homogeneous", scheduler.NewLibra, nil},
		{"Libra/heterogeneous", scheduler.NewLibra, ratings},
		{"FCFS-BF/homogeneous", scheduler.NewFCFSBF, nil},
		{"FCFS-BF/heterogeneous", scheduler.NewFCFSBF, ratings},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				trace, err := workload.Generate(func() workload.SynthConfig {
					c := workload.DefaultSynthConfig()
					c.Jobs = 1000
					return c
				}(), 1)
				if err != nil {
					b.Fatal(err)
				}
				if err := qosSynth(trace, 0); err != nil {
					b.Fatal(err)
				}
				rep, err := scheduler.Run(trace, tc.factory, scheduler.RunConfig{
					Nodes: 128, Model: economy.Commodity, BasePrice: 1, NodeRatings: tc.ratings,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rep.Reliability, "reliability%")
					b.ReportMetric(rep.SLA, "SLA%")
				}
			}
		})
	}
}

// qosSynth attaches default QoS parameters for the benches that drive
// scheduler.Run directly.
func qosSynth(jobs []*workload.Job, inaccuracy float64) error {
	cfg := qos.DefaultConfig(2)
	cfg.InaccuracyPct = inaccuracy
	return qos.Synthesize(jobs, cfg)
}

// BenchmarkAblationTermination compares plain Libra with the deadline
// termination extension (the paper's non-preemption future-work issue) on
// the bid-based Set B workload: killing hopeless jobs caps unbounded
// penalty exposure.
func BenchmarkAblationTermination(b *testing.B) {
	cfg := experiment.DefaultSuiteConfig(economy.BidBased, true)
	cfg.Jobs = 1000
	for _, tc := range []struct {
		name string
		new  scheduler.Factory
	}{
		{"Libra", scheduler.NewLibra},
		{"LibraT", scheduler.NewLibraTerminate},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			spec := scheduler.Spec{Name: tc.name, New: tc.new}
			for i := 0; i < b.N; i++ {
				rep, err := experiment.RunCell(cfg, experiment.DefaultParams(100), spec)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rep.Profitability, "profit%")
					b.ReportMetric(rep.SLA, "SLA%")
				}
			}
		})
	}
}

// BenchmarkAblationGuaranteedAdmission compares QoPS (schedulability
// guarantee at submission, the paper's reference [13]) against EDF-BF's
// best-effort generous admission: with exact estimates QoPS holds
// reliability at exactly 100% by construction; the price is paid in
// acceptance rate.
func BenchmarkAblationGuaranteedAdmission(b *testing.B) {
	cfg := experiment.DefaultSuiteConfig(economy.Commodity, false)
	cfg.Jobs = 1000
	for _, tc := range []struct {
		name string
		new  scheduler.Factory
	}{
		{"QoPS", scheduler.NewQoPS},
		{"EDF-BF", scheduler.NewEDFBF},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			spec := scheduler.Spec{Name: tc.name, New: tc.new}
			for i := 0; i < b.N; i++ {
				rep, err := experiment.RunCell(cfg, experiment.DefaultParams(0), spec)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rep.SLA, "SLA%")
					b.ReportMetric(rep.Reliability, "reliability%")
					b.ReportMetric(rep.Wait, "wait_s")
				}
			}
		})
	}
}

// BenchmarkAblationVariablePricing pairs the diurnal workload with a
// time-of-day tariff (the paper's unexplored "variable" commodity pricing,
// §5.1): peak pricing trades acceptance for per-job revenue.
func BenchmarkAblationVariablePricing(b *testing.B) {
	dcfg := workload.DefaultDiurnalConfig()
	dcfg.Base.Jobs = 1000
	trace, err := workload.GenerateDiurnal(dcfg, 33)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		prices economy.PriceSchedule
	}{
		{"flat", economy.FlatPrice(1)},
		{"peak2x", economy.TimeOfDayPrice{Base: 1, PeakFactor: 2, PeakStartHour: 9, PeakEndHour: 17}},
		{"peak4x", economy.TimeOfDayPrice{Base: 1, PeakFactor: 4, PeakStartHour: 9, PeakEndHour: 17}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				jobs := workload.CloneAll(trace)
				if err := qosSynth(jobs, 0); err != nil {
					b.Fatal(err)
				}
				rep, err := scheduler.Run(jobs, scheduler.NewFCFSBF, scheduler.RunConfig{
					Nodes: 128, Model: economy.Commodity, BasePrice: 1, Prices: tc.prices,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(rep.SLA, "SLA%")
					b.ReportMetric(rep.Profitability, "profit%")
				}
			}
		})
	}
}
