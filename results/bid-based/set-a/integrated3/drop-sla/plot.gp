set title "Figure 7 (bid-based, Set A): integrated — wait, reliability, profitability"
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right
plot \
  "plot.dat" index 0 title "FCFS-BF" with points pointtype 1, \
  "plot.dat" index 1 title "EDF-BF" with points pointtype 2, \
  "plot.dat" index 2 title "Libra" with points pointtype 3, \
  "plot.dat" index 3 title "LibraRiskD" with points pointtype 4, \
  "plot.dat" index 4 title "FirstReward" with points pointtype 5
