set title "Figure 4 (commodity, Set B): integrated — wait, SLA, profitability"
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right
plot \
  "plot.dat" index 0 title "FCFS-BF" with points pointtype 1, \
  "plot.dat" index 1 title "SJF-BF" with points pointtype 2, \
  "plot.dat" index 2 title "EDF-BF" with points pointtype 3, \
  "plot.dat" index 3 title "Libra" with points pointtype 4, \
  "plot.dat" index 4 title "Libra+$" with points pointtype 5
