// Command tracegen generates a synthetic SDSC-SP2-calibrated workload
// trace in Standard Workload Format, and prints the calibration statistics
// the paper reports for its 5000-job subset.
//
// Example:
//
//	tracegen -jobs 5000 -seed 1 -out sdsc-sp2-synth.swf
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func main() {
	var (
		jobs    = flag.Int("jobs", 5000, "number of jobs")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output SWF file (default stdout)")
		nodes   = flag.Int("nodes", 128, "machine size for utilization stats")
		arrival = flag.Float64("mean-arrival", 1969, "mean inter-arrival time (s)")
		runtime = flag.Float64("mean-runtime", 8671, "mean runtime (s)")
		stats   = flag.Bool("stats", true, "print trace statistics to stderr")
	)
	flag.Parse()

	cfg := workload.DefaultSynthConfig()
	cfg.Jobs = *jobs
	cfg.MeanInterArrival = *arrival
	cfg.MeanRuntime = *runtime
	trace, err := workload.Generate(cfg, *seed)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	comment := fmt.Sprintf("Synthetic SDSC-SP2-calibrated trace (seed %d, %d jobs)", *seed, *jobs)
	if err := workload.WriteSWF(w, trace, comment); err != nil {
		fatal(err)
	}

	if *stats {
		ts := workload.Stats(trace, *nodes)
		fmt.Fprintf(os.Stderr, "jobs                 %d\n", ts.Jobs)
		fmt.Fprintf(os.Stderr, "mean inter-arrival   %.0f s (paper: 1969)\n", ts.MeanInterArrival)
		fmt.Fprintf(os.Stderr, "mean runtime         %.0f s (paper: 8671)\n", ts.MeanRuntime)
		fmt.Fprintf(os.Stderr, "mean width           %.1f procs (paper: 17)\n", ts.MeanWidth)
		fmt.Fprintf(os.Stderr, "under-estimates      %.1f %% (paper: 8%%)\n", ts.UnderEstimateFrac*100)
		fmt.Fprintf(os.Stderr, "offered utilization  %.1f %% on %d nodes\n", ts.OfferedUtilization*100, *nodes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
