package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/economy"
	"repro/internal/experiment"
	"repro/internal/workload"
)

func smallResults(t *testing.T) *experiment.Results {
	t.Helper()
	cfg := experiment.DefaultSuiteConfig(economy.Commodity, false)
	cfg.Jobs = 60
	cfg.Nodes = 16
	synth := workload.DefaultSynthConfig()
	synth.Widths = []int{1, 2, 4, 8, 16}
	synth.WidthWeights = []float64{0.3, 0.25, 0.2, 0.15, 0.1}
	cfg.Synth = &synth
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestEmitWritesFullFileTree(t *testing.T) {
	res := smallResults(t)
	dir := t.TempDir()
	refs, err := emit(res, economy.Commodity, "Set A", "all", dir, false)
	if err != nil {
		t.Fatal(err)
	}
	// 4 separate + 4 integrated3 + 1 integrated4 panels.
	if len(refs) != 9 {
		t.Fatalf("%d panel refs, want 9", len(refs))
	}
	wantFiles := []string{"plot.dat", "plot.gp", "plot.csv", "plot.svg", "plot.txt", "summary.txt"}
	for _, ref := range refs {
		for _, f := range wantFiles {
			path := filepath.Join(dir, ref.Dir, f)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("panel %q missing %s: %v", ref.Title, f, err)
			}
			if len(data) == 0 {
				t.Fatalf("panel %q has empty %s", ref.Title, f)
			}
		}
	}
	// Ranking written alongside the integrated-4 panel.
	ranking, err := os.ReadFile(filepath.Join(dir, "commodity", "set-a", "integrated4", "ranking.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ranking), "Ranking by best performance") {
		t.Error("ranking.txt missing performance ranking")
	}
	// The index embeds every panel.
	if err := writeIndex(dir, refs); err != nil {
		t.Fatal(err)
	}
	index, err := os.ReadFile(filepath.Join(dir, "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(index), "<figure>"); got != 9 {
		t.Errorf("index has %d figures, want 9", got)
	}
}

func TestEmitSeparateOnly(t *testing.T) {
	res := smallResults(t)
	dir := t.TempDir()
	refs, err := emit(res, economy.Commodity, "Set A", "separate", dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 4 {
		t.Fatalf("%d refs for separate-only, want 4", len(refs))
	}
	if _, err := os.Stat(filepath.Join(dir, "commodity", "set-a", "integrated4")); !os.IsNotExist(err) {
		t.Error("integrated4 written despite separate-only")
	}
}
