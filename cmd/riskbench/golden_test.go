package main

import (
	"bytes"
	"flag"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden riskbench panels under testdata/golden")

// goldenOptions is a tiny but non-degenerate riskbench invocation: one
// scenario, two policies, one integrated panel — small enough to pin every
// output byte as testdata.
func goldenOptions(faultMode, out string) options {
	return options{
		model:     "commodity",
		set:       "A",
		analysis:  "integrated4",
		jobs:      60,
		nodes:     128,
		workers:   1,
		reps:      1,
		scenario:  "workload",
		policies:  "FCFS-BF,Libra",
		faults:    faultMode,
		faultSeed: 7,
		outDir:    out,
		stdout:    io.Discard,
		stderr:    io.Discard,
	}
}

// listFiles returns every regular file under root keyed by slash-separated
// relative path, excluding the journal (it records wall-clock times).
func listFiles(t *testing.T, root string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if rel == "journal.jsonl" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files[rel] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestGoldenPanels is the end-to-end determinism pin: the full riskbench
// pipeline — trace synthesis, QoS attachment, simulation with and without
// fault injection (plain and federated), risk analysis, and every emitted
// panel format — must reproduce the committed bytes exactly. Regenerate
// deliberately with
//
//	go test ./cmd/riskbench -run TestGoldenPanels -update
func TestGoldenPanels(t *testing.T) {
	for _, mode := range []string{"none", "high", "federated"} {
		t.Run(mode, func(t *testing.T) {
			out := t.TempDir()
			opts := goldenOptions(mode, out)
			if mode == "federated" {
				// The federated cell: the same tiny grid routed through the
				// heterogeneous 4-cluster preset under high faults.
				opts = goldenOptions("high", out)
				opts.federation = "hetero4"
			}
			if err := run(opts); err != nil {
				t.Fatal(err)
			}
			got := listFiles(t, out)
			if len(got) == 0 {
				t.Fatal("riskbench wrote no files")
			}
			goldenDir := filepath.Join("testdata", "golden", mode)
			if *update {
				if err := os.RemoveAll(goldenDir); err != nil {
					t.Fatal(err)
				}
				rels := make([]string, 0, len(got))
				for rel := range got {
					rels = append(rels, rel)
				}
				sort.Strings(rels)
				for _, rel := range rels {
					path := filepath.Join(goldenDir, filepath.FromSlash(rel))
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got[rel], 0o644); err != nil {
						t.Fatal(err)
					}
				}
				t.Logf("rewrote %d golden files under %s", len(got), goldenDir)
				return
			}
			want := listFiles(t, goldenDir)
			for rel := range want {
				if _, ok := got[rel]; !ok {
					t.Errorf("golden file %s not produced", rel)
				}
			}
			for rel, data := range got {
				wantData, ok := want[rel]
				if !ok {
					t.Errorf("unexpected output file %s (run with -update if intended)", rel)
					continue
				}
				if !bytes.Equal(data, wantData) {
					t.Errorf("%s differs from golden copy (run with -update if intended)", rel)
				}
			}
		})
	}
}

// The fault axis must actually move the numbers: the none and high golden
// trees may not coincide on the raw per-cell reports.
func TestGoldenFaultModesDiffer(t *testing.T) {
	read := func(mode string) []byte {
		path := filepath.Join("testdata", "golden", mode, "commodity", "set-a", "results.json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Skipf("golden tree missing (%v); run go test ./cmd/riskbench -run TestGoldenPanels -update", err)
		}
		return data
	}
	if bytes.Equal(read("none"), read("high")) {
		t.Fatal("fault injection left results.json unchanged")
	}
}
