set title "Figure 5 (commodity, Set A): integrated — all four objectives"
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right
plot \
  "plot.dat" index 0 title "FCFS-BF" with points pointtype 1, \
  "plot.dat" index 1 title "Libra" with points pointtype 2
