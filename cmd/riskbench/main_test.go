package main

import (
	"testing"

	"repro/internal/economy"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Set A":                   "set-a",
		"bid-based":               "bid-based",
		"deadline high:low ratio": "deadline-highlow-ratio",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFigureNumbers(t *testing.T) {
	if sep, int3 := figureNumbers(economy.Commodity); sep != 3 || int3 != 4 {
		t.Errorf("commodity figures = %d/%d, want 3/4", sep, int3)
	}
	if sep, int3 := figureNumbers(economy.BidBased); sep != 6 || int3 != 7 {
		t.Errorf("bid figures = %d/%d, want 6/7", sep, int3)
	}
}
