package main

import (
	"testing"

	"repro/internal/economy"
)

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Set A":                   "set-a",
		"bid-based":               "bid-based",
		"deadline high:low ratio": "deadline-highlow-ratio",
	}
	for in, want := range cases {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseModels(t *testing.T) {
	if m, err := parseModels("commodity"); err != nil || len(m) != 1 || m[0] != economy.Commodity {
		t.Errorf("parseModels(commodity) = %v, %v", m, err)
	}
	if m, err := parseModels("bid"); err != nil || m[0] != economy.BidBased {
		t.Errorf("parseModels(bid) = %v, %v", m, err)
	}
	if m, err := parseModels("both"); err != nil || len(m) != 2 {
		t.Errorf("parseModels(both) = %v, %v", m, err)
	}
	if _, err := parseModels("martian"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestParseSets(t *testing.T) {
	if s, err := parseSets("a"); err != nil || len(s) != 1 || s[0] != false {
		t.Errorf("parseSets(a) = %v, %v", s, err)
	}
	if s, err := parseSets("B"); err != nil || s[0] != true {
		t.Errorf("parseSets(B) = %v, %v", s, err)
	}
	if s, err := parseSets("both"); err != nil || len(s) != 2 {
		t.Errorf("parseSets(both) = %v, %v", s, err)
	}
	if _, err := parseSets("c"); err == nil {
		t.Error("unknown set accepted")
	}
}

func TestFigureNumbers(t *testing.T) {
	if sep, int3 := figureNumbers(economy.Commodity); sep != 3 || int3 != 4 {
		t.Errorf("commodity figures = %d/%d, want 3/4", sep, int3)
	}
	if sep, int3 := figureNumbers(economy.BidBased); sep != 6 || int3 != 7 {
		t.Errorf("bid figures = %d/%d, want 6/7", sep, int3)
	}
}
