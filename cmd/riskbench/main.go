// Command riskbench regenerates the paper's evaluation: it runs the full
// 12-scenario × 6-value × 5-policy grid for each requested economic model
// and estimate-inaccuracy Set, then writes risk analysis plot data (gnuplot
// blocks, CSV, SVG, ASCII) and Table II-style summaries for:
//
//	Figure 3 / 6  separate risk analysis of each objective
//	Figure 4 / 7  integrated risk analysis of each three-objective combination
//	Figure 5 / 8  integrated risk analysis of all four objectives
//
// Output lands under -out (default results/), one directory per
// model/set/figure panel.
//
// Long runs are observable and restartable: every completed cell is
// journaled to <out>/journal.jsonl as it finishes, -progress prints
// done/total with an ETA, -resume skips cells already journaled by an
// interrupted (or configuration-adjacent) prior run, and -pprof serves
// net/http/pprof plus expvar throughput counters while the suite is in
// flight.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof: registers /debug/pprof on the default mux
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/economy"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/registry"
	"repro/internal/risk"
)

// options carries every riskbench flag so the whole pipeline is callable
// (and golden-testable) in-process.
type options struct {
	model      string
	set        string
	analysis   string
	jobs       int
	nodes      int
	workers    int
	reps       int
	scenario   string
	policies   string
	faults     string
	faultSeed  int64
	federation string
	outDir     string
	ascii      bool
	resume     bool
	progress   time.Duration
	pprofAddr  string
	stdout     io.Writer
	stderr     io.Writer
}

func main() {
	var o options
	flag.StringVar(&o.model, "model", "both", "commodity, bid, or both")
	flag.StringVar(&o.set, "set", "both", "A, B, or both")
	flag.StringVar(&o.analysis, "analysis", "all", "separate, integrated3, integrated4, or all")
	flag.IntVar(&o.jobs, "jobs", 5000, "trace length")
	flag.IntVar(&o.nodes, "nodes", 128, "cluster size")
	flag.IntVar(&o.workers, "workers", 0, "worker goroutines over (cell, replication) units (0 = GOMAXPROCS); results identical for any value")
	flag.IntVar(&o.reps, "reps", 1, "replications per cell (independent seeds, averaged)")
	flag.StringVar(&o.scenario, "scenario", "", "restrict to one Table VI scenario by name")
	flag.StringVar(&o.policies, "policy", "", "restrict to a comma-separated list of policies")
	flag.StringVar(&o.faults, "faults", "none", "failure intensity axis: none, low, or high")
	flag.Int64Var(&o.faultSeed, "faultseed", 1, "base seed for the failure process")
	flag.StringVar(&o.federation, "federation", "", "route every cell through a named federation preset (single, twin, hetero4, datacenter); empty = the plain single cluster")
	flag.StringVar(&o.outDir, "out", "results", "output directory")
	flag.BoolVar(&o.ascii, "ascii", false, "also print ASCII plots to stdout")
	flag.BoolVar(&o.resume, "resume", false, "skip cells already recorded in <out>/journal.jsonl by a prior run")
	flag.DurationVar(&o.progress, "progress", 2*time.Second, "progress print interval (0 disables)")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	flag.Parse()
	o.stdout = os.Stdout
	o.stderr = os.Stderr
	if err := run(o); err != nil {
		fatal(err)
	}
}

// run executes the full riskbench pipeline for one flag set.
func run(o options) error {
	models, err := registry.ParseModels(o.model)
	if err != nil {
		return err
	}
	sets, err := registry.ParseSets(o.set)
	if err != nil {
		return err
	}
	intensity, err := faults.ParseIntensity(o.faults)
	if err != nil {
		return err
	}
	federation, err := registry.ParseFederation(o.federation)
	if err != nil {
		return err
	}

	if o.pprofAddr != "" {
		go func() {
			fmt.Fprintln(o.stderr, "riskbench: pprof server:", http.ListenAndServe(o.pprofAddr, nil))
		}()
	}

	journalPath := filepath.Join(o.outDir, "journal.jsonl")
	var prior map[string]obs.Record
	if o.resume {
		prior, err = obs.LoadJournal(journalPath)
		if os.IsNotExist(err) {
			fmt.Fprintf(o.stderr, "riskbench: no journal at %s; running everything\n", journalPath)
		} else if err != nil {
			return err
		} else {
			fmt.Fprintf(o.stderr, "riskbench: resuming from %d journaled cells\n", len(prior))
		}
	}
	journal, err := obs.OpenJournal(journalPath)
	if err != nil {
		return err
	}
	reporters := []obs.Reporter{journal}
	if o.progress > 0 {
		reporters = append(reporters, obs.NewTerminal(o.stderr, o.progress))
	}
	if o.pprofAddr != "" {
		reporters = append(reporters, obs.PublishVars())
	}
	observer := obs.Multi(reporters...)

	var panels []panelRef
	for _, m := range models {
		for _, setB := range sets {
			cfg := experiment.DefaultSuiteConfig(m, setB)
			cfg.Jobs = o.jobs
			cfg.Nodes = o.nodes
			cfg.Workers = o.workers
			cfg.Replications = o.reps
			if o.scenario != "" {
				cfg.ScenarioFilter = []string{o.scenario}
			}
			if o.policies != "" {
				for _, name := range strings.Split(o.policies, ",") {
					cfg.PolicyFilter = append(cfg.PolicyFilter, strings.TrimSpace(name))
				}
			}
			cfg.FaultIntensity = intensity
			cfg.FaultSeed = o.faultSeed
			cfg.Federation = federation
			cfg.Observer = observer
			cfg.Resume = prior
			start := time.Now() //lint:allow wallclock — suite wall-time accounting, not simulation time
			res, err := experiment.Run(cfg)
			if err != nil {
				return err
			}
			elapsed := time.Since(start).Round(time.Millisecond) //lint:allow wallclock — suite wall-time accounting, not simulation time
			fmt.Fprintf(o.stdout, "== %s / %s: %d simulations in %v\n",
				m, cfg.SetName(), res.Cells()*max(1, o.reps), elapsed)
			refs, err := emit(res, m, cfg.SetName(), o.analysis, o.outDir, o.ascii)
			if err != nil {
				return err
			}
			panels = append(panels, refs...)
			if len(res.Clusters) > 0 {
				fedRefs, err := emitFederated(res, m, cfg.SetName(), o.outDir, o.ascii)
				if err != nil {
					return err
				}
				panels = append(panels, fedRefs...)
			}
			if err := writeResultsJSON(res, m, cfg.SetName(), o.outDir); err != nil {
				return err
			}
		}
	}
	if err := journal.Err(); err != nil {
		return fmt.Errorf("writing journal: %w", err)
	}
	if err := journal.Close(); err != nil {
		return err
	}
	if err := writeIndex(o.outDir, panels); err != nil {
		return err
	}
	fmt.Fprintf(o.stdout, "wrote %d panels under %s (open %s)\n", len(panels), o.outDir, filepath.Join(o.outDir, "index.html"))
	return nil
}

// panelRef names one emitted figure panel for the HTML index.
type panelRef struct {
	Title string
	Dir   string // relative to the output root
}

// writeIndex emits a browsable index.html embedding every panel's SVG.
func writeIndex(outDir string, panels []panelRef) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">")
	b.WriteString("<title>Risk analysis figures</title>")
	b.WriteString("<style>body{font-family:sans-serif;margin:24px}figure{display:inline-block;margin:12px;border:1px solid #ddd;padding:8px}figcaption{font-size:13px;max-width:480px}</style>")
	b.WriteString("</head><body>\n<h1>Integrated risk analysis — regenerated figures</h1>\n")
	b.WriteString("<p>Each panel links its gnuplot data (plot.dat/plot.gp), CSV, ASCII rendering, and Table II summary.</p>\n")
	for _, p := range panels {
		dir := filepath.ToSlash(p.Dir)
		fmt.Fprintf(&b, "<figure><img src=%q alt=%q width=\"480\"><figcaption>%s<br>", dir+"/plot.svg", p.Title, p.Title)
		for _, f := range []string{"plot.dat", "plot.gp", "plot.csv", "plot.txt", "summary.txt"} {
			fmt.Fprintf(&b, "<a href=%q>%s</a> ", dir+"/"+f, f)
		}
		b.WriteString("</figcaption></figure>\n")
	}
	b.WriteString("</body></html>\n")
	return os.WriteFile(filepath.Join(outDir, "index.html"), []byte(b.String()), 0o644)
}

// emit writes every requested figure panel for one suite result and
// returns references for the HTML index (paths relative to outDir).
func emit(res *experiment.Results, m economy.Model, setName, analysis, outDir string, ascii bool) ([]panelRef, error) {
	base := filepath.Join(outDir, slug(m.String()), slug(setName))
	figSep, figInt := figureNumbers(m)
	var refs []panelRef
	addRef := func(title, dir string) {
		rel, err := filepath.Rel(outDir, dir)
		if err != nil {
			rel = dir
		}
		refs = append(refs, panelRef{Title: title, Dir: rel})
	}

	if analysis == "separate" || analysis == "all" {
		for _, obj := range risk.AllObjectives {
			series, err := res.SeparateSeries(obj)
			if err != nil {
				return nil, err
			}
			title := fmt.Sprintf("Figure %d (%s, %s): separate — %s", figSep, m, setName, obj)
			dir := filepath.Join(base, "separate", slug(obj.String()))
			if err := writePanel(dir, title, series, ascii); err != nil {
				return nil, err
			}
			addRef(title, dir)
		}
	}
	if analysis == "integrated3" || analysis == "all" {
		for i, combo := range experiment.ObjectiveTriples() {
			series, err := res.IntegratedSeries(combo)
			if err != nil {
				return nil, err
			}
			names := make([]string, len(combo))
			for k, o := range combo {
				names[k] = o.String()
			}
			title := fmt.Sprintf("Figure %d (%s, %s): integrated — %s", figInt, m, setName, strings.Join(names, ", "))
			dir := filepath.Join(base, "integrated3", fmt.Sprintf("drop-%s", slug(risk.AllObjectives[i].String())))
			if err := writePanel(dir, title, series, ascii); err != nil {
				return nil, err
			}
			addRef(title, dir)
		}
	}
	if analysis == "integrated4" || analysis == "all" {
		series, err := res.IntegratedSeries(risk.AllObjectives)
		if err != nil {
			return nil, err
		}
		title := fmt.Sprintf("Figure %d (%s, %s): integrated — all four objectives", figInt+1, m, setName)
		dir4 := filepath.Join(base, "integrated4")
		if err := writePanel(dir4, title, series, ascii); err != nil {
			return nil, err
		}
		addRef(title, dir4)
		// Rankings over the all-objective integration.
		perf, err := risk.RankByPerformance(series)
		if err != nil {
			return nil, err
		}
		vol, err := risk.RankByVolatility(series)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		b.WriteString("Ranking by best performance:\n")
		for _, row := range risk.RankingTable(perf, false) {
			b.WriteString("  " + row + "\n")
		}
		b.WriteString("Ranking by best volatility:\n")
		for _, row := range risk.RankingTable(vol, true) {
			b.WriteString("  " + row + "\n")
		}
		if err := os.WriteFile(filepath.Join(base, "integrated4", "ranking.txt"), []byte(b.String()), 0o644); err != nil {
			return nil, err
		}
		fmt.Printf("-- %s/%s best overall policy (performance): %s\n", m, setName, perf[0].Series.Policy)
	}
	return refs, nil
}

// emitFederated writes one integrated-four-objective panel per federation
// member: each cluster's share of every cell projected through ClusterView
// and relabeled "policy@cluster", so a member's risk profile reads with the
// same machinery as the federation-wide figures. Clusters are emitted in
// sorted-name order — the panel list (and index.html) must not depend on
// map iteration order.
func emitFederated(res *experiment.Results, m economy.Model, setName, outDir string, ascii bool) ([]panelRef, error) {
	views := make(map[string]*experiment.Results, len(res.Clusters))
	for ci, name := range res.Clusters {
		view, err := res.ClusterView(ci)
		if err != nil {
			return nil, err
		}
		views[name] = view
	}
	names := make([]string, 0, len(views))
	for name := range views {
		names = append(names, name)
	}
	sort.Strings(names)

	base := filepath.Join(outDir, slug(m.String()), slug(setName), "federated")
	_, figInt := figureNumbers(m)
	var refs []panelRef
	for _, name := range names {
		series, err := views[name].IntegratedSeries(risk.AllObjectives)
		if err != nil {
			return nil, err
		}
		series = risk.QualifySeries(series, name)
		title := fmt.Sprintf("Figure %d (%s, %s): integrated — all four objectives, cluster %s", figInt+1, m, setName, name)
		dir := filepath.Join(base, slug(name))
		if err := writePanel(dir, title, series, ascii); err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(outDir, dir)
		if err != nil {
			rel = dir
		}
		refs = append(refs, panelRef{Title: title, Dir: rel})
	}
	return refs, nil
}

// writePanel writes one figure panel in every format.
func writePanel(dir, title string, series []risk.Series, ascii bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cfg := plot.Config{Title: title, TrendLines: true}
	files := map[string]string{
		"plot.dat": plot.GnuplotData(series),
		"plot.gp":  plot.GnuplotScript(series, "plot.dat", cfg),
		"plot.csv": plot.CSV(series),
		"plot.svg": plot.SVG(series, cfg),
		"plot.txt": plot.ASCII(series, cfg),
	}
	summary, err := plot.SummaryTable(series)
	if err != nil {
		return err
	}
	files["summary.txt"] = summary
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(files[name]), 0o644); err != nil {
			return err
		}
	}
	if ascii {
		fmt.Println(plot.ASCII(series, cfg))
	}
	return nil
}

// writeResultsJSON persists the raw per-cell reports so later analysis
// (custom weights, new objectives) does not need to re-simulate.
func writeResultsJSON(res *experiment.Results, m economy.Model, setName, outDir string) error {
	dir := filepath.Join(outDir, slug(m.String()), slug(setName))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "results.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteJSON(f)
}

// figureNumbers maps a model to its separate / integrated-3 figure numbers
// in the paper (commodity: 3/4/5; bid-based: 6/7/8).
func figureNumbers(m economy.Model) (sep, int3 int) {
	if m == economy.Commodity {
		return 3, 4
	}
	return 6, 7
}

func slug(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, " ", "-")
	s = strings.ReplaceAll(s, ":", "")
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "riskbench:", err)
	os.Exit(1)
}
