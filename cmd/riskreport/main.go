// Command riskreport turns saved suite results (results.json files written
// by riskbench) into a self-contained markdown report: per-objective
// separate risk analysis, the integrated analysis, Table II-style
// summaries, Table III/IV rankings, the Pareto front, and the a-priori
// projections — the full decision document the paper envisions a provider
// producing before choosing a policy.
//
// Example:
//
//	riskreport -in results/bid-based/set-b/results.json > report.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/risk"
)

func main() {
	var (
		in     = flag.String("in", "", "results.json written by riskbench (default stdin)")
		target = flag.Float64("target", 0.6, "a-priori performance target")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	res, err := experiment.ReadJSON(r)
	if err != nil {
		fatal(err)
	}
	if err := report(os.Stdout, res, *target); err != nil {
		fatal(err)
	}
}

func report(w io.Writer, res *experiment.Results, target float64) error {
	a := core.FromResults(res)
	fmt.Fprintf(w, "# Risk analysis report — %s model, %s\n\n", res.Model, res.SetName)
	fmt.Fprintf(w, "Policies: %s. Scenarios: %d (Table VI), six values each.\n\n",
		strings.Join(res.Policies, ", "), len(res.Scenarios))

	fmt.Fprintf(w, "## Separate risk analysis\n\n")
	for _, obj := range risk.AllObjectives {
		series, err := a.Separate(obj)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "### Objective: %s\n\n", obj)
		if err := summaryMarkdown(w, series); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "## Integrated risk analysis (all four objectives, equal weights)\n\n")
	series, err := a.Integrated(risk.AllObjectives...)
	if err != nil {
		return err
	}
	if err := summaryMarkdown(w, series); err != nil {
		return err
	}

	perf, err := risk.RankByPerformance(series)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "### Ranking by best performance (Table III criteria)\n\n")
	rankMarkdown(w, perf)
	for _, note := range risk.ExplainRanking(perf, false) {
		fmt.Fprintf(w, "- %s\n", note)
	}
	fmt.Fprintln(w)
	vol, err := risk.RankByVolatility(series)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "### Ranking by best volatility (Table IV criteria)\n\n")
	rankMarkdown(w, vol)

	front, err := risk.ParetoFront(series)
	if err != nil {
		return err
	}
	names := make([]string, len(front))
	for i, f := range front {
		names[i] = f.Series.Policy
	}
	fmt.Fprintf(w, "### Pareto front\n\nUndominated policies (performance vs volatility): %s.\n\n",
		strings.Join(names, ", "))

	fmt.Fprintf(w, "### Volatility attribution\n\nThe scenario driving each policy's risk hardest:\n\n")
	fmt.Fprintf(w, "| Policy | scenario | volatility |\n|---|---|---|\n")
	for _, s := range series {
		idx, label, err := risk.MostVolatileScenario(s)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %s | %s | %.3f |\n", s.Policy, label, s.Points[idx].Volatility)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "### Ranking stability (paired bootstrap)\n\n")
	fmt.Fprintf(w, "Probability of topping the best-performance ranking under resampled scenario values:\n\n")
	probs, err := experiment.RankFirstProbability(res, risk.AllObjectives, 1000, 11)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| Policy | P(first) |\n|---|---|\n")
	for _, p := range res.Policies {
		fmt.Fprintf(w, "| %s | %.1f%% |\n", p, probs[p]*100)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "## A-priori projection\n\n")
	fmt.Fprintf(w, "Estimated probability of integrated performance below %.2f in a future scenario:\n\n", target)
	projections, err := a.APriori(risk.AllObjectives, target)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "| Policy | mean | spread | risk |\n|---|---|---|---|\n")
	for _, p := range projections {
		fmt.Fprintf(w, "| %s | %.3f | %.3f | %.1f%% |\n", p.Policy, p.Mean, p.Spread, p.RiskBelow(target)*100)
	}
	safest, err := risk.SafestPolicy(projections, target)
	if err != nil {
		return err
	}
	rec, err := a.Recommend()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n## Recommendation\n\n")
	fmt.Fprintf(w, "- Best overall performance: **%s**\n", rec.Overall)
	fmt.Fprintf(w, "- Best overall volatility: **%s**\n", rec.OverallSafest)
	fmt.Fprintf(w, "- Safest against the %.2f target: **%s**\n", target, safest.Policy)
	for _, obj := range risk.AllObjectives {
		fmt.Fprintf(w, "- Best for %s: **%s**\n", obj, rec.PerObjective[obj])
	}
	return nil
}

func summaryMarkdown(w io.Writer, series []risk.Series) error {
	fmt.Fprintf(w, "| Policy | max perf | min perf | max vol | min vol | gradient |\n|---|---|---|---|---|---|\n")
	for _, s := range series {
		sum, err := risk.Summarize(s)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %s | %.3f | %.3f | %.3f | %.3f | %s |\n",
			s.Policy, sum.MaxPerformance, sum.MinPerformance,
			sum.MaxVolatility, sum.MinVolatility, risk.TrendGradient(s))
	}
	fmt.Fprintln(w)
	return nil
}

func rankMarkdown(w io.Writer, ranked []risk.Ranked) {
	fmt.Fprintf(w, "| Rank | Policy | Gradient |\n|---|---|---|\n")
	for _, r := range ranked {
		fmt.Fprintf(w, "| %d | %s | %s |\n", r.Rank, r.Series.Policy, r.Gradient)
	}
	fmt.Fprintln(w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "riskreport:", err)
	os.Exit(1)
}
