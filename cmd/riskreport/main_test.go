package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/economy"
	"repro/internal/experiment"
	"repro/internal/workload"
)

func smallResults(t *testing.T) *experiment.Results {
	t.Helper()
	cfg := experiment.DefaultSuiteConfig(economy.BidBased, true)
	cfg.Jobs = 80
	cfg.Nodes = 32
	synth := workload.DefaultSynthConfig()
	synth.Widths = []int{1, 2, 4, 8, 16, 32}
	synth.WidthWeights = []float64{0.3, 0.2, 0.2, 0.15, 0.1, 0.05}
	cfg.Synth = &synth
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestReportSections(t *testing.T) {
	res := smallResults(t)
	var buf bytes.Buffer
	if err := report(&buf, res, 0.6); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Risk analysis report — bid-based model, Set B",
		"## Separate risk analysis",
		"### Objective: wait",
		"### Objective: profitability",
		"## Integrated risk analysis",
		"Ranking by best performance",
		"Ranking by best volatility",
		"### Pareto front",
		"## A-priori projection",
		"## Recommendation",
		"Best overall performance",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every policy appears.
	for _, p := range res.Policies {
		if !strings.Contains(out, p) {
			t.Errorf("report missing policy %s", p)
		}
	}
}

func TestReportRoundTripThroughJSON(t *testing.T) {
	res := smallResults(t)
	var js bytes.Buffer
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	back, err := experiment.ReadJSON(&js)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := report(&a, res, 0.6); err != nil {
		t.Fatal(err)
	}
	if err := report(&b, back, 0.6); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("report differs after JSON round trip")
	}
}
