// Command riskplot renders a risk analysis plot from a CSV file previously
// written by riskbench (columns: policy,scenario,volatility,performance),
// as ASCII on stdout or as an SVG file.
//
// Example:
//
//	riskplot -in results/commodity/set-b/integrated4/plot.csv -svg out.svg
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/plot"
	"repro/internal/risk"
)

func main() {
	var (
		in    = flag.String("in", "", "input CSV (policy,scenario,volatility,performance); default stdin")
		svg   = flag.String("svg", "", "write SVG to this file instead of printing ASCII")
		title = flag.String("title", "Risk analysis", "plot title")
		xmax  = flag.Float64("xmax", 0.5, "volatility axis maximum")
		trend = flag.Bool("trend", true, "draw trend lines in SVG output")
		rank  = flag.Bool("rank", false, "also print Table III/IV-style rankings")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	series, err := readCSV(r)
	if err != nil {
		fatal(err)
	}
	cfg := plot.Config{Title: *title, XMax: *xmax, TrendLines: *trend}
	if *svg != "" {
		if err := os.WriteFile(*svg, []byte(plot.SVG(series, cfg)), 0o644); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(plot.ASCII(series, cfg))
	}
	if *rank {
		perf, err := risk.RankByPerformance(series)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nRanking by best performance:")
		for _, row := range risk.RankingTable(perf, false) {
			fmt.Println(" ", row)
		}
		vol, err := risk.RankByVolatility(series)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Ranking by best volatility:")
		for _, row := range risk.RankingTable(vol, true) {
			fmt.Println(" ", row)
		}
	}
}

// readCSV parses riskbench's plot.csv format (including quoted scenario
// labels), preserving first-seen policy order.
func readCSV(r io.Reader) ([]risk.Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	byPolicy := map[string]*risk.Series{}
	var order []string
	line := 0
	for {
		parts, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		line++
		if parts[0] == "policy" {
			continue // header
		}
		vol, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: volatility: %v", line, err)
		}
		perf, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: performance: %v", line, err)
		}
		s, ok := byPolicy[parts[0]]
		if !ok {
			s = &risk.Series{Policy: parts[0]}
			byPolicy[parts[0]] = s
			order = append(order, parts[0])
		}
		s.Points = append(s.Points, risk.Point{Performance: perf, Volatility: vol})
		s.Labels = append(s.Labels, parts[1])
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no data rows")
	}
	out := make([]risk.Series, len(order))
	for i, p := range order {
		out[i] = *byPolicy[p]
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "riskplot:", err)
	os.Exit(1)
}
