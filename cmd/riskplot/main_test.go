package main

import (
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := `policy,scenario,volatility,performance
Libra,0,0.000000,1.000000
Libra,1,0.100000,0.900000
FCFS-BF,0,0.200000,0.500000

FCFS-BF,1,0.300000,0.400000
`
	series, err := readCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("parsed %d series, want 2", len(series))
	}
	if series[0].Policy != "Libra" || series[1].Policy != "FCFS-BF" {
		t.Errorf("policy order = %s, %s; want first-seen order", series[0].Policy, series[1].Policy)
	}
	if len(series[0].Points) != 2 || len(series[1].Points) != 2 {
		t.Fatalf("point counts = %d, %d", len(series[0].Points), len(series[1].Points))
	}
	p := series[0].Points[1]
	if p.Volatility != 0.1 || p.Performance != 0.9 {
		t.Errorf("point = %+v, want (0.9, 0.1)", p)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"wrongColumns": "Libra,0,0.1\n",
		"badVol":       "Libra,0,x,0.5\n",
		"badPerf":      "Libra,0,0.1,y\n",
		"empty":        "policy,scenario,volatility,performance\n",
	}
	for name, in := range cases {
		if _, err := readCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
