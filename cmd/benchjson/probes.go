package main

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/economy"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/streamrisk"
	"repro/internal/workload"
)

// probe is one in-process benchmark: a name stable across captures and a
// function measured with testing.Benchmark (all wall-clock reads stay
// inside the testing package).
type probe struct {
	name string
	run  func(*testing.B)
}

// probes returns the probe set for a config. Names are namespaced so the
// diff gate can reason about families: sim/* is the event kernel,
// cluster/* the accounting structures, serve/* the service plane's
// streaming surface, suite/* end-to-end throughput.
// The paper config appends the 5000-job paper-scale probes.
func probes(config string) []probe {
	ps := []probe{
		{"sim/steady-chain", probeEngineSteadyChain},
		{"sim/steady-wave/depth=1024", probeEngineSteadyWave},
		{"sim/schedule-cancel/depth=256", probeEngineScheduleCancel},
		{"sim/mixed-heap/depth=4096", probeEngineMixedHeap},
		{"cluster/timeshared-churn/nodes=32", probeTimeSharedChurn},
		{"cluster/spaceshared-earliest/nodes=128", probeSpaceSharedEarliest},
		{"serve/risk-stream/subs=4", probeRiskStreamIngest},
		{"suite/commodity-small/jobs=150", probeSuiteSmall},
		{"suite/replicated-cells/reps=4", probeSuiteReplicated},
		{"suite/federated/clusters=4", probeSuiteFederated},
	}
	if config == "paper" {
		ps = append(ps, probe{"suite/paper-scale/jobs=5000", probePaperScale})
	}
	return ps
}

// lcg is a tiny deterministic generator for probe shapes; probes must not
// touch math/rand's global source (repolint: globalrand) and need no
// statistical quality, just spread.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l) >> 33
}

func (l *lcg) float() float64 { return float64(l.next()%1_000_000) / 1_000_000 }

// probeEngineSteadyChain measures the schedule→dispatch cycle at heap
// depth 1: each fired handler schedules its successor. One op = one event
// through the kernel. This is the purest view of per-event overhead
// (allocation, heap push/pop).
func probeEngineSteadyChain(b *testing.B) {
	b.ReportAllocs()
	e := sim.NewEngine()
	remaining := b.N
	var spawn func()
	spawn = func() {
		if remaining == 0 {
			return
		}
		remaining--
		e.MustSchedule(e.Now()+1, "probe chain", spawn)
	}
	b.ResetTimer()
	spawn()
	e.Run()
	b.StopTimer()
	reportEventsPerSec(b, e)
}

// probeEngineSteadyWave keeps ~1024 events pending at all times: each
// handler schedules a replacement one tick out, so pops work against a
// realistically deep heap with heavy (time, seq) tie-breaking.
func probeEngineSteadyWave(b *testing.B) {
	const depth = 1024
	b.ReportAllocs()
	e := sim.NewEngine()
	remaining := b.N
	var spawn func()
	spawn = func() {
		if remaining == 0 {
			return
		}
		remaining--
		e.MustSchedule(e.Now()+1, "probe wave", spawn)
	}
	b.ResetTimer()
	for i := 0; i < depth && remaining > 0; i++ {
		spawn()
	}
	e.Run()
	b.StopTimer()
	reportEventsPerSec(b, e)
}

// probeEngineScheduleCancel measures the schedule→cancel cycle against a
// 256-deep background heap — the TimeShared completion-event reschedule
// pattern, the kernel's hottest cancel path.
func probeEngineScheduleCancel(b *testing.B) {
	const depth = 256
	b.ReportAllocs()
	e := sim.NewEngine()
	var g lcg = 7
	for i := 0; i < depth; i++ {
		e.MustSchedule(sim.Time(1e9+g.float()*1e9), "probe background", func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.MustSchedule(sim.Time(1+g.float()*1e6), "probe victim", func() {})
		e.Cancel(ev)
	}
}

// probeEngineMixedHeap schedules scattered batches of 4096 events and
// drains them, mixing siftUp and siftDown against a churning heap.
func probeEngineMixedHeap(b *testing.B) {
	const depth = 4096
	b.ReportAllocs()
	e := sim.NewEngine()
	var g lcg = 42
	b.ResetTimer()
	done := 0
	for done < b.N {
		batch := depth
		if b.N-done < batch {
			batch = b.N - done
		}
		base := e.Now()
		for i := 0; i < batch; i++ {
			e.MustSchedule(base+sim.Time(g.float()*1000), "probe mixed", func() {})
		}
		e.Run()
		done += batch
	}
	b.StopTimer()
	reportEventsPerSec(b, e)
}

func reportEventsPerSec(b *testing.B, e *sim.Engine) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(e.Fired())/s, "events/s")
	}
}

// probeTimeSharedChurn pushes b.N jobs through a 32-node proportional-share
// cluster with overlapping lifetimes, mixed widths and shares, and a slice
// of lapsing deadlines — the Libra-family hot path (booking, reweighting,
// completion rescheduling).
func probeTimeSharedChurn(b *testing.B) {
	const nodes = 32
	b.ReportAllocs()
	e := sim.NewEngine()
	ts := cluster.NewTimeShared(e, nodes)
	var g lcg = 3
	started := 0
	for i := 0; i < b.N; i++ {
		id := i + 1
		at := float64(i) * 2
		procs := 1 + int(g.next()%4)
		runtime := 20 + g.float()*200
		share := 0.1 + g.float()*0.4
		deadline := runtime * (0.8 + g.float()) // ~20% lapse before completing
		e.MustSchedule(sim.Time(at), "probe submit", func() {
			cand := ts.CandidateNodes(share)
			if len(cand) < procs {
				return
			}
			j := &workload.Job{ID: id, Submit: at, Runtime: runtime,
				Estimate: runtime, Procs: procs, Deadline: deadline}
			started++
			if err := ts.Start(j, share, cand[:procs], nil); err != nil {
				b.Fatal(err)
			}
		})
	}
	b.ResetTimer()
	e.Run()
	b.StopTimer()
	if started == 0 {
		b.Fatal("degenerate probe: no job started")
	}
	reportEventsPerSec(b, e)
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(started)/s, "jobs/s")
	}
}

// probeSpaceSharedEarliest measures the EASY-backfilling reservation
// queries (EarliestAvailable, AvailableAt) against a 128-node machine with
// ~96 running jobs — the per-submission cost every backfilling policy pays.
func probeSpaceSharedEarliest(b *testing.B) {
	const nodes = 128
	b.ReportAllocs()
	e := sim.NewEngine()
	ss := cluster.NewSpaceShared(e, nodes)
	var g lcg = 11
	for id := 1; ss.FreeProcs() > nodes/4; id++ {
		procs := 1 + int(g.next()%3)
		if procs > ss.FreeProcs() {
			procs = ss.FreeProcs()
		}
		j := &workload.Job{ID: id, Runtime: 1e6 + g.float()*1e6,
			Estimate: 1e6 + g.float()*1e6, Procs: procs}
		if err := ss.Start(j, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	sink := sim.Time(0)
	count := 0
	for i := 0; i < b.N; i++ {
		w := 1 + int(g.next())%nodes
		at, err := ss.EarliestAvailable(w)
		if err != nil {
			b.Fatal(err)
		}
		sink += at
		count += ss.AvailableAt(at)
	}
	b.StopTimer()
	if count == 0 && sink == 0 {
		b.Fatal("degenerate probe: no availability answers")
	}
}

// probeRiskStreamIngest measures the streaming risk engine's per-decision
// ingest cost with four saturated subscribers: every op folds one journal
// decision into session/policy/cluster/global trackers, snapshots all four
// score scopes, and fans the delta out (the subscribers' buffers fill
// after the first DefaultSubscriberBuffer events, so steady state is the
// non-blocking drop path — exactly what a stalled SSE consumer costs the
// admission path). Allocs/op gates at zero: the ingest fold must not
// allocate at steady state.
func probeRiskStreamIngest(b *testing.B) {
	const subs = 4
	b.ReportAllocs()
	e := streamrisk.NewEngine(streamrisk.Config{})
	for i := 0; i < subs; i++ {
		if _, err := e.Subscribe(); err != nil {
			b.Fatal(err)
		}
	}
	h := obs.SessionHeader{ID: "probe", Policy: "Libra", Model: "commodity"}
	var g lcg = 19
	decisions := make([]obs.SessionDecision, 256)
	for i := range decisions {
		runtime := 20 + g.float()*200
		decisions[i] = obs.SessionDecision{
			Job: i + 1, Submit: float64(i), Runtime: runtime, Estimate: runtime,
			Procs: 1 + int(g.next()%4), Deadline: runtime * (0.8 + g.float()),
			Budget: 50 + g.float()*100, PenaltyRate: g.float(),
			HighUrgency: g.next()%4 == 0, Admission: "accepted", Quote: 10 + g.float()*50,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.JournalDecision(h, decisions[i%len(decisions)])
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "events/s")
	}
	if snap := e.Snapshot(); snap.Seq != uint64(b.N) {
		b.Fatalf("engine ingested %d events, want %d", snap.Seq, b.N)
	}
}

// probeSuiteSmall runs one full (12 scenarios × 6 values × 5 policies)
// commodity Set B suite at 150 jobs per cell — the end-to-end shape of the
// paper's evaluation, worker pool included.
func probeSuiteSmall(b *testing.B) {
	cfg := experiment.DefaultSuiteConfig(economy.Commodity, true)
	cfg.Jobs = 150
	jobs := 0
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		jobs += res.Cells() * cfg.Jobs
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(jobs)/s, "jobs/s")
	}
}

// probeSuiteReplicated runs a narrow replicated sweep (one scenario, 4
// replications per cell) through the (cell, replication) worker pool —
// the fan-out path with its shared trace cache and order-fixed reduce.
// One op = one replicated sweep; the sims/s extra is the unit throughput.
func probeSuiteReplicated(b *testing.B) {
	cfg := experiment.DefaultSuiteConfig(economy.Commodity, true)
	cfg.Jobs = 150
	cfg.Replications = 4
	cfg.ScenarioFilter = []string{"workload"}
	sims := 0
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sims += res.Cells() * cfg.Replications
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(sims)/s, "sims/s")
	}
}

// probeSuiteFederated runs a narrow sweep through the 4-cluster hetero4
// federation meta-broker — per-job quote shopping across four live
// sessions plus the per-cell federation merge, the federated counterpart
// of suite/commodity-small.
func probeSuiteFederated(b *testing.B) {
	fed, err := registry.ParseFederation("hetero4")
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiment.DefaultSuiteConfig(economy.Commodity, true)
	cfg.Jobs = 150
	cfg.ScenarioFilter = []string{"workload"}
	cfg.Federation = fed
	jobs := 0
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		jobs += res.Cells() * cfg.Jobs
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(jobs)/s, "jobs/s")
	}
}

// probePaperScale runs one 5000-job, 128-node simulation per Table V
// policy — the paper's full trace subset, the unit of work behind every
// figure.
func probePaperScale(b *testing.B) {
	jobs := 0
	for i := 0; i < b.N; i++ {
		for _, spec := range scheduler.Specs() {
			cfg := experiment.DefaultSuiteConfig(spec.Models[0], true)
			cfg.Jobs = 5000
			if _, err := experiment.RunCell(cfg, experiment.DefaultParams(100), spec); err != nil {
				b.Fatal(err)
			}
			jobs += cfg.Jobs
		}
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(jobs)/s, "jobs/s")
	}
}
