package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	for _, tc := range []struct {
		line string
		ok   bool
		want Bench
	}{
		{
			line: "BenchmarkEngineScheduleRun-8  \t 1234\t 98765 ns/op\t 120 B/op\t 3 allocs/op",
			ok:   true,
			want: Bench{Name: "BenchmarkEngineScheduleRun", Iters: 1234, NsPerOp: 98765, BytesPerOp: 120, AllocsPerOp: 3},
		},
		{
			line: "BenchmarkPaperScaleSimulation/Libra-4   1  503556000 ns/op  97.00 SLA%  55.30 profit%",
			ok:   true,
			want: Bench{Name: "BenchmarkPaperScaleSimulation/Libra", Iters: 1, NsPerOp: 503556000,
				Extra: map[string]float64{"SLA%": 97, "profit%": 55.3}},
		},
		{line: "ok  \trepro\t12.3s", ok: false},
		{line: "PASS", ok: false},
		{line: "pkg: repro", ok: false},
		{line: "", ok: false},
		{line: "BenchmarkNoResult-8", ok: false},
		{line: "Benchmark 12 34 ns/op", ok: false},
	} {
		got, ok := parseBenchLine(tc.line)
		if ok != tc.ok {
			t.Errorf("parseBenchLine(%q) ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if got.Name != tc.want.Name || got.Iters != tc.want.Iters ||
			got.NsPerOp != tc.want.NsPerOp || got.BytesPerOp != tc.want.BytesPerOp ||
			got.AllocsPerOp != tc.want.AllocsPerOp {
			t.Errorf("parseBenchLine(%q) = %+v, want %+v", tc.line, got, tc.want)
		}
		for k, v := range tc.want.Extra {
			if got.Extra[k] != v {
				t.Errorf("parseBenchLine(%q) extra[%q] = %v, want %v", tc.line, k, got.Extra[k], v)
			}
		}
	}
}

func TestParseGoBenchMultiLine(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: repro
BenchmarkA-8	10	100 ns/op	8 B/op	1 allocs/op
BenchmarkB-8	20	200 ns/op
PASS
ok	repro	1.2s
`
	got := ParseGoBench(out)
	if len(got) != 2 || got[0].Name != "BenchmarkA" || got[1].Name != "BenchmarkB" {
		t.Fatalf("ParseGoBench = %+v, want BenchmarkA and BenchmarkB", got)
	}
}

func capFixture(benches ...Bench) Capture {
	return Capture{Schema: schemaVersion, Config: "short", Go: "gotest", Benches: benches}
}

func writeCaptureFile(t *testing.T, path string, c Capture) {
	t.Helper()
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDiffCountsRegressions(t *testing.T) {
	old := capFixture(
		Bench{Name: "sim/a", NsPerOp: 2e7, AllocsPerOp: 10},
		Bench{Name: "sim/b", NsPerOp: 2e7, AllocsPerOp: 10},
		Bench{Name: "sim/gone", NsPerOp: 1, AllocsPerOp: 1},
	)
	cur := capFixture(
		Bench{Name: "sim/a", NsPerOp: 1e7, AllocsPerOp: 0},  // improved
		Bench{Name: "sim/b", NsPerOp: 3e7, AllocsPerOp: 10}, // regressed 50%
		Bench{Name: "sim/new", NsPerOp: 1, AllocsPerOp: 1},
	)
	var buf bytes.Buffer
	n := writeDiff(&buf, "old.json", "new.json", old, cur, 0.10, 0.10)
	if n != 1 {
		t.Fatalf("writeDiff regressions = %d, want 1", n)
	}
	out := buf.String()
	for _, want := range []string{"REGRESSED", "sim/gone", "sim/new", "2 shared bench(es)"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteDiffSplitThresholds pins the two-threshold contract the CI gate
// depends on: a loose ns/op bound tolerating runner noise while a tight
// allocs/op bound still catches allocation regressions, and vice versa.
func TestWriteDiffSplitThresholds(t *testing.T) {
	old := capFixture(
		Bench{Name: "sim/ns-noise", NsPerOp: 2e7, AllocsPerOp: 10},
		Bench{Name: "sim/alloc-leak", NsPerOp: 2e7, AllocsPerOp: 10},
	)
	cur := capFixture(
		Bench{Name: "sim/ns-noise", NsPerOp: 2.6e7, AllocsPerOp: 10}, // +30% ns, allocs flat
		Bench{Name: "sim/alloc-leak", NsPerOp: 2e7, AllocsPerOp: 11}, // +10% allocs, ns flat
	)
	var buf bytes.Buffer
	// Loose ns (40%), tight allocs (2%): only the alloc leak regresses.
	if n := writeDiff(&buf, "o", "n", old, cur, 0.40, 0.02); n != 1 {
		t.Fatalf("split thresholds flagged %d regressions, want 1 (alloc leak):\n%s", n, buf.String())
	}
	// Tight ns (10%), loose allocs (50%): only the ns jump regresses.
	buf.Reset()
	if n := writeDiff(&buf, "o", "n", old, cur, 0.10, 0.50); n != 1 {
		t.Fatalf("split thresholds flagged %d regressions, want 1 (ns jump):\n%s", n, buf.String())
	}
}

// TestWriteDiffSignificanceFloors pins the absolute-significance floors:
// relative swings on sub-millisecond single-shot timings and on near-zero
// allocs/op are measurement noise and must not trip the gate, while the
// same relative swings above the floors must.
func TestWriteDiffSignificanceFloors(t *testing.T) {
	old := capFixture(
		Bench{Name: "sim/micro", NsPerOp: 1.8e6, AllocsPerOp: 0},     // 1.8 ms single shot
		Bench{Name: "sim/pooled", NsPerOp: 14, AllocsPerOp: 4e-8},    // amortized pool growth
		Bench{Name: "suite/macro", NsPerOp: 300e6, AllocsPerOp: 1e6}, // 300 ms, 1 M allocs
	)
	cur := capFixture(
		Bench{Name: "sim/micro", NsPerOp: 4.8e6, AllocsPerOp: 0},    // +167% ns under the 10 ms floor
		Bench{Name: "sim/pooled", NsPerOp: 14, AllocsPerOp: 1.6e-7}, // +300% of ~nothing
		Bench{Name: "suite/macro", NsPerOp: 300e6, AllocsPerOp: 1e6},
	)
	var buf bytes.Buffer
	if n := writeDiff(&buf, "o", "n", old, cur, 0.40, 0.02); n != 0 {
		t.Fatalf("sub-floor noise flagged %d regressions, want 0:\n%s", n, buf.String())
	}
	// The same relative deltas above the floors are real regressions.
	cur2 := capFixture(
		Bench{Name: "sim/micro", NsPerOp: 4.8e6, AllocsPerOp: 0},
		Bench{Name: "sim/pooled", NsPerOp: 14, AllocsPerOp: 1.6e-7},
		Bench{Name: "suite/macro", NsPerOp: 700e6, AllocsPerOp: 1.04e6}, // +133% ns, +4% allocs
	)
	buf.Reset()
	if n := writeDiff(&buf, "o", "n", old, cur2, 0.40, 0.02); n != 1 {
		t.Fatalf("above-floor regression flagged %d, want 1:\n%s", n, buf.String())
	}
}

func TestDeltaPct(t *testing.T) {
	for _, tc := range []struct {
		old, new, want float64
	}{
		{100, 150, 0.5},
		{100, 50, -0.5},
		{0, 0, 0},
		{0, 5, 99.99},
	} {
		if got := deltaPct(tc.old, tc.new); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("deltaPct(%v, %v) = %v, want %v", tc.old, tc.new, got, tc.want)
		}
	}
}

func TestRunDiffModeAndGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeCaptureFile(t, oldPath, capFixture(Bench{Name: "sim/a", NsPerOp: 1e7, AllocsPerOp: 4}))
	writeCaptureFile(t, newPath, capFixture(Bench{Name: "sim/a", NsPerOp: 4e7, AllocsPerOp: 4}))

	var out, errw bytes.Buffer
	// Informational diff: regressions reported, no error.
	if err := run([]string{"-diff", oldPath, newPath}, &out, &errw); err != nil {
		t.Fatalf("informational diff errored: %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("diff output missing REGRESSED:\n%s", out.String())
	}
	// Gated diff: the 4x regression must fail.
	if err := run([]string{"-diff", "-gate", oldPath, newPath}, &out, &errw); err == nil {
		t.Fatal("gated diff of a 4x regression succeeded, want error")
	}
	// Gated diff within threshold passes.
	if err := run([]string{"-diff", "-gate", "-threshold", "5.0", oldPath, newPath}, &out, &errw); err != nil {
		t.Fatalf("gated diff within threshold errored: %v", err)
	}
	// -alloc-threshold defaults to -threshold: a loose shared threshold
	// with an explicit tight alloc bound must still pass here (the
	// regression is in ns/op, which the loose bound covers).
	if err := run([]string{"-diff", "-gate", "-threshold", "5.0", "-alloc-threshold", "0.02", oldPath, newPath}, &out, &errw); err != nil {
		t.Fatalf("gated diff with tight alloc threshold errored on an allocs-flat capture: %v", err)
	}
}

func TestRunDiffRejectsBadInput(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-diff", "only-one.json"}, &out, &errw); err == nil {
		t.Error("diff with one file succeeded, want error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"other/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.json")
	writeCaptureFile(t, good, capFixture())
	if err := run([]string{"-diff", bad, good}, &out, &errw); err == nil {
		t.Error("diff with wrong schema succeeded, want error")
	}
	if err := run([]string{"-config", "bogus"}, &out, &errw); err == nil {
		t.Error("unknown config succeeded, want error")
	}
}

func TestProbeNamesStableAndUnique(t *testing.T) {
	short := probes("short")
	paper := probes("paper")
	if len(paper) != len(short)+1 {
		t.Fatalf("paper config has %d probes, short %d; want exactly one extra", len(paper), len(short))
	}
	seen := map[string]bool{}
	for _, p := range paper {
		if p.name == "" || p.run == nil {
			t.Fatalf("probe %+v incomplete", p)
		}
		if seen[p.name] {
			t.Fatalf("duplicate probe name %q", p.name)
		}
		seen[p.name] = true
	}
	// The diff gate keys on these prefixes; keep the kernel family present.
	kernel := 0
	for name := range seen {
		if strings.HasPrefix(name, "sim/") {
			kernel++
		}
	}
	if kernel < 3 {
		t.Fatalf("only %d sim/ kernel probes, want >= 3", kernel)
	}
}

// TestCaptureRoundTrip pins the JSON schema: a capture survives
// marshal/unmarshal bit-for-bit on the fields the diff reads.
func TestCaptureRoundTrip(t *testing.T) {
	c := capFixture(Bench{
		Name: "sim/a", Iters: 7, NsPerOp: 123.5, BytesPerOp: 64, AllocsPerOp: 2,
		Extra: map[string]float64{"events/s": 1e6},
	})
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back Capture
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != c.Schema || len(back.Benches) != 1 {
		t.Fatalf("round trip = %+v, want %+v", back, c)
	}
	got, want := back.Benches[0], c.Benches[0]
	if got.Name != want.Name || got.Iters != want.Iters || got.NsPerOp != want.NsPerOp ||
		got.BytesPerOp != want.BytesPerOp || got.AllocsPerOp != want.AllocsPerOp {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
	if got.Extra["events/s"] != 1e6 {
		t.Fatalf("extra lost in round trip: %+v", got)
	}
}
