package main

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseGoBench parses standard `go test -bench -benchmem` output into
// Bench entries. Lines that are not benchmark results (package headers,
// PASS/ok, reported metrics of failed runs) are skipped. The GOMAXPROCS
// suffix ("-8") is stripped so captures from differently sized machines
// stay comparable.
func ParseGoBench(out string) []Bench {
	var benches []Bench
	for _, line := range strings.Split(out, "\n") {
		b, ok := parseBenchLine(line)
		if ok {
			benches = append(benches, b)
		}
	}
	return benches
}

// parseBenchLine parses one "BenchmarkX-8  20  123 ns/op  4 B/op  1
// allocs/op  97.0 SLA%" line.
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") ||
		len(fields[0]) == len("Benchmark") {
		return Bench{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iters: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	if !seen {
		return Bench{}, false
	}
	return b, true
}

// deltaPct returns the relative change from old to new as a fraction
// (+0.25 = 25% more). A zero old value with a non-zero new value reads as
// +Inf-like growth, capped for display; zero to zero is zero.
func deltaPct(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 99.99
	}
	return (new - old) / old
}

// writeDiff prints the bench-by-bench comparison and returns the number of
// shared benches regressing beyond the threshold on ns/op or allocs/op.
func writeDiff(w io.Writer, oldPath, newPath string, old, cur Capture, threshold float64) int {
	oldBy := make(map[string]Bench, len(old.Benches))
	for _, b := range old.Benches {
		oldBy[b.Name] = b
	}
	var names []string
	curBy := make(map[string]Bench, len(cur.Benches))
	for _, b := range cur.Benches {
		curBy[b.Name] = b
		if _, ok := oldBy[b.Name]; ok {
			names = append(names, b.Name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "benchjson diff: %s -> %s (threshold %.0f%%)\n", oldPath, newPath, threshold*100)
	fmt.Fprintf(w, "%-52s %14s %14s %9s %9s\n", "bench", "ns/op", "allocs/op", "Δns", "Δallocs")
	regressed := 0
	for _, name := range names {
		o, n := oldBy[name], curBy[name]
		dns := deltaPct(o.NsPerOp, n.NsPerOp)
		dal := deltaPct(o.AllocsPerOp, n.AllocsPerOp)
		mark := ""
		if dns > threshold || dal > threshold {
			mark = "  REGRESSED"
			regressed++
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.1f %8.1f%% %8.1f%%%s\n",
			name, n.NsPerOp, n.AllocsPerOp, dns*100, dal*100, mark)
	}
	var onlyOld, onlyNew []string
	for _, b := range old.Benches {
		if _, ok := curBy[b.Name]; !ok {
			onlyOld = append(onlyOld, b.Name)
		}
	}
	for _, b := range cur.Benches {
		if _, ok := oldBy[b.Name]; !ok {
			onlyNew = append(onlyNew, b.Name)
		}
	}
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	if len(onlyOld) > 0 {
		fmt.Fprintf(w, "only in %s: %s\n", oldPath, strings.Join(onlyOld, ", "))
	}
	if len(onlyNew) > 0 {
		fmt.Fprintf(w, "only in %s: %s\n", newPath, strings.Join(onlyNew, ", "))
	}
	fmt.Fprintf(w, "%d shared bench(es), %d regressed beyond %.0f%%\n",
		len(names), regressed, threshold*100)
	return regressed
}
