package main

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseGoBench parses standard `go test -bench -benchmem` output into
// Bench entries. Lines that are not benchmark results (package headers,
// PASS/ok, reported metrics of failed runs) are skipped. The GOMAXPROCS
// suffix ("-8") is stripped so captures from differently sized machines
// stay comparable.
func ParseGoBench(out string) []Bench {
	var benches []Bench
	for _, line := range strings.Split(out, "\n") {
		b, ok := parseBenchLine(line)
		if ok {
			benches = append(benches, b)
		}
	}
	return benches
}

// parseBenchLine parses one "BenchmarkX-8  20  123 ns/op  4 B/op  1
// allocs/op  97.0 SLA%" line.
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") ||
		len(fields[0]) == len("Benchmark") {
		return Bench{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iters: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Extra == nil {
				b.Extra = make(map[string]float64)
			}
			b.Extra[unit] = v
		}
	}
	if !seen {
		return Bench{}, false
	}
	return b, true
}

// deltaPct returns the relative change from old to new as a fraction
// (+0.25 = 25% more). A zero old value with a non-zero new value reads as
// +Inf-like growth, capped for display; zero to zero is zero.
func deltaPct(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 99.99
	}
	return (new - old) / old
}

// Significance floors for the regression gate. A relative delta only
// counts when it is also real in absolute terms: benches measured at
// -benchtime 1x take a single-shot timing, which for short benches swings
// by integer factors on scheduler quantum effects alone (observed between
// two captures of identical code: +163% on a 1.8 ms bench, +124% on a
// 6 µs one), and near-zero allocs/op (pool growth amortized over millions
// of ops) flaps between runs while meaning nothing. The floors keep the
// enforced gate quiet on both without loosening it where it matters — a
// macro suite run slowing down, or a real +1 alloc per op leak. Benches
// under the timing floor stay fully gated on allocs/op, which is
// deterministic and catches the regressions that survive code review.
const (
	nsGateFloor    = 1e7 // gate ns/op only for benches at ≥ 10 ms/op
	allocGateFloor = 0.5 // gate allocs/op only on an absolute increase > ½ alloc/op
)

// writeDiff prints the bench-by-bench comparison and returns the number of
// shared benches regressing beyond the thresholds: nsThreshold on ns/op
// (noisy under shared runners, so typically loose) and allocThreshold on
// allocs/op (deterministic for a fixed workload, so typically tight —
// this is what lets the CI gate enforce without flaking). Deltas under the
// significance floors above never count as regressions.
func writeDiff(w io.Writer, oldPath, newPath string, old, cur Capture, nsThreshold, allocThreshold float64) int {
	oldBy := make(map[string]Bench, len(old.Benches))
	for _, b := range old.Benches {
		oldBy[b.Name] = b
	}
	var names []string
	curBy := make(map[string]Bench, len(cur.Benches))
	for _, b := range cur.Benches {
		curBy[b.Name] = b
		if _, ok := oldBy[b.Name]; ok {
			names = append(names, b.Name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(w, "benchjson diff: %s -> %s (thresholds: ns %.0f%%, allocs %.0f%%)\n",
		oldPath, newPath, nsThreshold*100, allocThreshold*100)
	fmt.Fprintf(w, "%-52s %14s %14s %9s %9s\n", "bench", "ns/op", "allocs/op", "Δns", "Δallocs")
	regressed := 0
	for _, name := range names {
		o, n := oldBy[name], curBy[name]
		dns := deltaPct(o.NsPerOp, n.NsPerOp)
		dal := deltaPct(o.AllocsPerOp, n.AllocsPerOp)
		nsHit := dns > nsThreshold && o.NsPerOp >= nsGateFloor
		allocHit := dal > allocThreshold && n.AllocsPerOp-o.AllocsPerOp > allocGateFloor
		mark := ""
		if nsHit || allocHit {
			mark = "  REGRESSED"
			regressed++
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.1f %8.1f%% %8.1f%%%s\n",
			name, n.NsPerOp, n.AllocsPerOp, dns*100, dal*100, mark)
	}
	var onlyOld, onlyNew []string
	for _, b := range old.Benches {
		if _, ok := curBy[b.Name]; !ok {
			onlyOld = append(onlyOld, b.Name)
		}
	}
	for _, b := range cur.Benches {
		if _, ok := oldBy[b.Name]; !ok {
			onlyNew = append(onlyNew, b.Name)
		}
	}
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	if len(onlyOld) > 0 {
		fmt.Fprintf(w, "only in %s: %s\n", oldPath, strings.Join(onlyOld, ", "))
	}
	if len(onlyNew) > 0 {
		fmt.Fprintf(w, "only in %s: %s\n", newPath, strings.Join(onlyNew, ", "))
	}
	fmt.Fprintf(w, "%d shared bench(es), %d regressed\n", len(names), regressed)
	return regressed
}
