// Command benchjson measures the repository's hot paths and records the
// numbers as machine-comparable JSON, seeding the BENCH_<n>.json performance
// trajectory that ROADMAP's "as fast as the hardware allows" north star
// asks for.
//
// Two modes:
//
//	benchjson [-config short|paper] [-suite] [-out BENCH_X.json]
//	    runs the in-process throughput probes (event kernel, cluster
//	    accounting, experiment suite) and, with -suite, the full
//	    bench_test.go suite via `go test -bench`, then writes one JSON
//	    document with ns/op, allocs/op, B/op and throughput extras
//	    (events/s, jobs/s) per bench.
//
//	benchjson -diff OLD.json NEW.json [-threshold 0.10] [-alloc-threshold 0.10] [-gate]
//	    compares two captures bench by bench and prints the deltas.
//	    With -gate, exits non-zero when any shared bench regresses beyond
//	    -threshold on ns/op or -alloc-threshold on allocs/op; without it
//	    the diff is informational. The split matters for CI: allocs/op is
//	    deterministic for a fixed workload, so the gate can hold it tight,
//	    while ns/op on shared runners needs a loose bound. Deltas must
//	    also clear absolute significance floors (10 ms/op for timing, half
//	    an alloc/op for allocations) so single-shot micro-bench jitter and
//	    amortized pool growth never flake the gate (see docs/performance.md
//	    for the enforced settings).
//
// The tool is stdlib-only and takes all timing through testing.Benchmark —
// operator-side wall time never leaks into simulation code, and no
// wall-clock read or global rand appears in this package (repolint
// enforces both).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"testing"
)

// Bench is one measured benchmark in a capture.
type Bench struct {
	Name        string             `json:"name"`
	Iters       int                `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Capture is the top-level JSON document.
type Capture struct {
	Schema  string  `json:"schema"`
	Config  string  `json:"config"`
	Go      string  `json:"go"`
	Benches []Bench `json:"benches"`
}

const schemaVersion = "benchjson/1"

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// errGate is returned when -gate trips; main maps it to exit 1 like any
// other error, but with the regressions already printed.
var errGate = fmt.Errorf("regression gate tripped")

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("out", "", "write the capture to this file (default stdout)")
		config     = fs.String("config", "short", "probe scale: short (CI-sized) or paper (adds 5000-job probes)")
		suite      = fs.Bool("suite", false, "also run the bench_test.go suite via `go test -bench` and fold it in")
		benchRe    = fs.String("bench", ".", "bench regexp passed to `go test -bench` in -suite mode")
		packages   = fs.String("packages", "./...", "packages passed to `go test` in -suite mode")
		benchtime  = fs.String("benchtime", "1x", "benchtime passed to `go test` in -suite mode")
		diff       = fs.Bool("diff", false, "compare two captures: benchjson -diff OLD.json NEW.json")
		threshold  = fs.Float64("threshold", 0.10, "ns/op regression threshold (fraction) for -diff")
		allocThres = fs.Float64("alloc-threshold", -1, "allocs/op regression threshold for -diff (-1: same as -threshold)")
		gate       = fs.Bool("gate", false, "with -diff, exit non-zero on regressions beyond the thresholds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *diff {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff wants exactly two files, got %d", fs.NArg())
		}
		old, err := readCapture(fs.Arg(0))
		if err != nil {
			return err
		}
		cur, err := readCapture(fs.Arg(1))
		if err != nil {
			return err
		}
		if *allocThres < 0 {
			*allocThres = *threshold
		}
		regressed := writeDiff(stdout, fs.Arg(0), fs.Arg(1), old, cur, *threshold, *allocThres)
		if *gate && regressed > 0 {
			return fmt.Errorf("%w: %d bench(es) beyond ns %.0f%% / allocs %.0f%%",
				errGate, regressed, *threshold*100, *allocThres*100)
		}
		return nil
	}

	if *config != "short" && *config != "paper" {
		return fmt.Errorf("unknown -config %q (want short or paper)", *config)
	}
	cap := Capture{Schema: schemaVersion, Config: *config, Go: runtime.Version()}
	for _, p := range probes(*config) {
		fmt.Fprintf(stderr, "probe %s...\n", p.name)
		r := testing.Benchmark(p.run)
		cap.Benches = append(cap.Benches, benchFromResult(p.name, r))
	}
	if *suite {
		fmt.Fprintf(stderr, "suite: go test -bench %s -benchtime %s %s\n", *benchRe, *benchtime, *packages)
		parsed, err := runSuite(*benchRe, *benchtime, *packages, stderr)
		if err != nil {
			return err
		}
		cap.Benches = append(cap.Benches, parsed...)
	}
	sort.Slice(cap.Benches, func(i, j int) bool { return cap.Benches[i].Name < cap.Benches[j].Name })

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cap)
}

// benchFromResult converts a testing.BenchmarkResult into the JSON shape.
// Throughput extras reported via b.ReportMetric ride along in Extra.
func benchFromResult(name string, r testing.BenchmarkResult) Bench {
	b := Bench{
		Name:        name,
		Iters:       r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: float64(r.MemAllocs) / float64(r.N),
	}
	if len(r.Extra) > 0 {
		b.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra { //lint:allow maporder — copying into a map; JSON encoding sorts keys
			b.Extra[k] = v
		}
	}
	return b
}

func readCapture(path string) (Capture, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Capture{}, err
	}
	var c Capture
	if err := json.Unmarshal(data, &c); err != nil {
		return Capture{}, fmt.Errorf("%s: %w", path, err)
	}
	if c.Schema != schemaVersion {
		return Capture{}, fmt.Errorf("%s: schema %q, want %q", path, c.Schema, schemaVersion)
	}
	return c, nil
}

// runSuite executes the repository's bench_test.go suite through the go
// tool and parses the standard benchmark output format.
func runSuite(benchRe, benchtime, packages string, stderr io.Writer) ([]Bench, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", benchRe, "-benchmem", "-benchtime", benchtime, packages)
	cmd.Stderr = stderr
	outPipe, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return ParseGoBench(string(outPipe)), nil
}
