// Command riskserved serves the reproduction's simulation as an online
// utility-computing daemon: clients create deterministic simulation
// sessions, submit jobs with QoS terms one request at a time, and read
// admission decisions, price quotes, live objective reports, and the
// session's canonical journal back over HTTP.
//
//	POST   /v1/sessions                create a session (policy, model, machine, faults)
//	POST   /v1/sessions/{id}/jobs      submit a job; returns admission + quote
//	GET    /v1/sessions/{id}/report    live (or final) objective report + risk scores
//	GET    /v1/sessions/{id}/journal   the session's JSONL journal
//	POST   /v1/sessions/{id}/finalize  drain the session and fix the final report
//	DELETE /v1/sessions/{id}           finalize, return the final report, evict
//	GET    /v1/risk                    streaming-risk snapshot (per session/policy/cluster/global)
//	GET    /v1/risk/stream             live risk deltas over SSE (riskwatch consumes this)
//	GET    /healthz                    liveness + session count
//	GET    /debug/vars                 expvar counters
//	GET    /debug/pprof/...            pprof handlers
//
// Sessions advance in virtual time only; a scripted request sequence is
// bit-for-bit identical to the equivalent offline batch run. SIGINT or
// SIGTERM drains gracefully: in-flight requests finish within
// -drain-timeout before the process exits.
//
// With -control-url the daemon runs as a fleet worker: it registers
// itself with the riskctl control plane on startup (under -name, at
// -advertise or its bound address) and deregisters on graceful shutdown,
// handing its sessions to the rest of the fleet via journal replay.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/control"
)

func main() {
	var (
		addr          = flag.String("addr", "localhost:8080", "listen address")
		maxSessions   = flag.Int("max-sessions", 1024, "maximum live sessions; creates beyond it get 503")
		maxConcurrent = flag.Int("max-concurrent", 0, "maximum in-flight /v1 requests (0 = 4×GOMAXPROCS); excess load gets 503 + Retry-After")
		idleTimeout   = flag.Duration("idle-timeout", 30*time.Minute, "evict sessions untouched this long")
		sweepInterval = flag.Duration("sweep-interval", time.Minute, "idle-eviction sweep period")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown window after SIGINT/SIGTERM")
		controlURL    = flag.String("control-url", "", "riskctl control-plane base URL; when set, register as a fleet worker")
		name          = flag.String("name", "", "worker name for control-plane registration (default: the bound address)")
		advertise     = flag.String("advertise", "", "URL the control plane should reach this worker at (default: http://<bound address>)")
		riskWindow    = flag.Int("risk-window", 0, "streaming-risk sliding-window size in decisions (0 = default)")
		riskSubs      = flag.Int("max-risk-subscribers", 0, "maximum concurrent /v1/risk/stream subscribers (0 = default)")
	)
	flag.Parse()
	cfg := serve.Config{
		MaxSessions:        *maxSessions,
		MaxConcurrent:      *maxConcurrent,
		IdleTimeout:        *idleTimeout,
		SweepInterval:      *sweepInterval,
		RiskWindow:         *riskWindow,
		MaxRiskSubscribers: *riskSubs,
	}
	fleet := fleetConfig{ControlURL: *controlURL, Name: *name, Advertise: *advertise}
	if err := run(context.Background(), *addr, cfg, fleet, *drainTimeout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "riskserved:", err)
		os.Exit(1)
	}
}

// fleetConfig is the optional control-plane attachment: when ControlURL
// is set the worker announces itself on startup and withdraws on
// graceful shutdown.
type fleetConfig struct {
	ControlURL string
	Name       string
	Advertise  string
}

// register announces the worker to the control plane. The returned
// deregister function is best-effort: a control plane that is itself
// gone must not block this worker's shutdown.
func (f fleetConfig) register(bound net.Addr, logw io.Writer) (func(), error) {
	if f.ControlURL == "" {
		return func() {}, nil
	}
	name, adv := f.Name, f.Advertise
	if adv == "" {
		adv = "http://" + bound.String()
	}
	if name == "" {
		name = bound.String()
	}
	body, err := json.Marshal(control.RegisterWorkerRequest{Name: name, URL: adv})
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post(f.ControlURL+"/control/v1/workers", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("registering with control plane: %w", err)
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return nil, fmt.Errorf("registering with control plane: status %d: %s", resp.StatusCode, msg)
	}
	fmt.Fprintf(logw, "riskserved: registered with %s as %q (%s)\n", f.ControlURL, name, adv)
	return func() {
		req, err := http.NewRequest(http.MethodDelete, f.ControlURL+"/control/v1/workers/"+name, nil)
		if err != nil {
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			fmt.Fprintf(logw, "riskserved: deregistering: %v\n", err)
			return
		}
		resp.Body.Close()
		fmt.Fprintf(logw, "riskserved: deregistered %q\n", name)
	}, nil
}

// run starts the daemon and blocks until the context is cancelled, a
// SIGINT/SIGTERM arrives, or the listener fails. ready, when non-nil,
// receives the bound address once the server is listening — tests listen
// on :0 and read the port from it.
func run(ctx context.Context, addr string, cfg serve.Config, fleet fleetConfig, drainTimeout time.Duration, logw io.Writer, ready chan<- string) error {
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	go srv.RunSweeper(ctx)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "riskserved: listening on %s\n", ln.Addr())
	deregister, err := fleet.register(ln.Addr(), logw)
	if err != nil {
		hs.Close()
		<-errc
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Withdraw from the fleet while still serving: the control plane
		// evacuates this worker's sessions over the release endpoint, so
		// registration must end before the listener does.
		deregister()
		fmt.Fprintf(logw, "riskserved: draining (%d live sessions, up to %v)\n", srv.Sessions(), drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Fprintln(logw, "riskserved: drained")
		return nil
	}
}
