// Command riskserved serves the reproduction's simulation as an online
// utility-computing daemon: clients create deterministic simulation
// sessions, submit jobs with QoS terms one request at a time, and read
// admission decisions, price quotes, live objective reports, and the
// session's canonical journal back over HTTP.
//
//	POST   /v1/sessions                create a session (policy, model, machine, faults)
//	POST   /v1/sessions/{id}/jobs      submit a job; returns admission + quote
//	GET    /v1/sessions/{id}/report    live (or final) objective report + risk scores
//	GET    /v1/sessions/{id}/journal   the session's JSONL journal
//	POST   /v1/sessions/{id}/finalize  drain the session and fix the final report
//	DELETE /v1/sessions/{id}           finalize, return the final report, evict
//	GET    /healthz                    liveness + session count
//	GET    /debug/vars                 expvar counters
//	GET    /debug/pprof/...            pprof handlers
//
// Sessions advance in virtual time only; a scripted request sequence is
// bit-for-bit identical to the equivalent offline batch run. SIGINT or
// SIGTERM drains gracefully: in-flight requests finish within
// -drain-timeout before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", "localhost:8080", "listen address")
		maxSessions   = flag.Int("max-sessions", 1024, "maximum live sessions; creates beyond it get 503")
		maxConcurrent = flag.Int("max-concurrent", 0, "maximum in-flight /v1 requests (0 = 4×GOMAXPROCS); excess load gets 503 + Retry-After")
		idleTimeout   = flag.Duration("idle-timeout", 30*time.Minute, "evict sessions untouched this long")
		sweepInterval = flag.Duration("sweep-interval", time.Minute, "idle-eviction sweep period")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown window after SIGINT/SIGTERM")
	)
	flag.Parse()
	cfg := serve.Config{
		MaxSessions:   *maxSessions,
		MaxConcurrent: *maxConcurrent,
		IdleTimeout:   *idleTimeout,
		SweepInterval: *sweepInterval,
	}
	if err := run(context.Background(), *addr, cfg, *drainTimeout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "riskserved:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until the context is cancelled, a
// SIGINT/SIGTERM arrives, or the listener fails. ready, when non-nil,
// receives the bound address once the server is listening — tests listen
// on :0 and read the port from it.
func run(ctx context.Context, addr string, cfg serve.Config, drainTimeout time.Duration, logw io.Writer, ready chan<- string) error {
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	go srv.RunSweeper(ctx)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "riskserved: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintf(logw, "riskserved: draining (%d live sessions, up to %v)\n", srv.Sessions(), drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Fprintln(logw, "riskserved: drained")
		return nil
	}
}
