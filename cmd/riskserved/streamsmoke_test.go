package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/serve"
	"repro/internal/streamrisk"
	"repro/internal/workload"
)

// TestStreamSmoke is the `make stream-smoke` CI gate: boot the real
// daemon, subscribe to /v1/risk/stream over real HTTP, drive a seeded
// session with faults, and require that the final streamed delta's
// cumulative session scores byte-match the offline streamrisk
// recomputation of the journal the daemon wrote — the streaming surface's
// end-to-end equivalence check.
func TestStreamSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", serve.Config{RiskWindow: 8}, fleetConfig{}, 5*time.Second, io.Discard, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatal(err)
	//lint:allow wallclock — liveness timeout for a real daemon under test, not simulation time
	case <-time.After(10 * time.Second):
		t.Fatal("server did not come up")
	}

	// Seeded workload with a live fault process — the same kind of session
	// the migration battery exercises.
	const jobs, seed = 25, int64(17)
	synth := workload.DefaultSynthConfig()
	synth.Jobs = jobs
	trace, err := workload.Generate(synth, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := qos.Synthesize(trace, qos.DefaultConfig(seed+1)); err != nil {
		t.Fatal(err)
	}

	var cr serve.CreateSessionResponse
	post(t, base+"/v1/sessions", serve.CreateSessionRequest{
		Policy: "Libra", Model: "commodity",
		Seed: seed, FaultIntensity: "low", FaultHorizon: 0.001 + trace[len(trace)-1].Submit*2,
	}, &cr)

	sctx, scancel := context.WithTimeout(ctx, 30*time.Second)
	defer scancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, base+"/v1/risk/stream?session="+cr.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := streamrisk.NewEventReader(resp.Body)
	ev, err := r.Next()
	if err != nil || ev.Event != streamrisk.EventSnapshot {
		t.Fatalf("first frame: %+v, %v", ev, err)
	}

	for _, j := range trace {
		post(t, base+"/v1/sessions/"+cr.ID+"/jobs", serve.SubmitJobRequest{
			ID: j.ID, Submit: j.Submit, Runtime: j.Runtime, Estimate: j.Estimate,
			Procs: j.Procs, Deadline: j.Deadline, Budget: j.Budget,
			PenaltyRate: j.PenaltyRate, HighUrgency: j.HighUrgency,
		}, nil)
	}
	post(t, base+"/v1/sessions/"+cr.ID+"/finalize", struct{}{}, nil)

	// Read streamed frames until the final delta for our session.
	var final streamrisk.Delta
	for {
		ev, err := r.Next()
		if err != nil {
			t.Fatalf("stream ended before the final delta: %v", err)
		}
		if ev.Event == streamrisk.EventResync {
			t.Fatalf("unexpected resync on an actively-read stream")
		}
		if ev.Event != streamrisk.EventDelta {
			continue
		}
		var d streamrisk.Delta
		if err := json.Unmarshal(ev.Data, &d); err != nil {
			t.Fatal(err)
		}
		if d.Session == cr.ID && d.Kind == streamrisk.DeltaFinal {
			final = d
			break
		}
	}

	// The offline recomputation of the journal the daemon actually wrote.
	jresp, err := http.Get(base + "/v1/sessions/" + cr.ID + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	journal, err := io.ReadAll(jresp.Body)
	jresp.Body.Close()
	if err != nil || jresp.StatusCode != http.StatusOK {
		t.Fatalf("journal: status %d, err %v", jresp.StatusCode, err)
	}
	rec, err := obs.ParseSessionJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := streamrisk.OfflineScores(rec, 8)
	if err != nil {
		t.Fatal(err)
	}

	got, err := json.Marshal(final.SessionScores)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(offline)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("streamed final scores diverged from offline recomputation:\nstreamed: %s\noffline:  %s", got, want)
	}
	if final.SessionScores.Events != jobs || final.SessionScores.Finals != 1 {
		t.Errorf("final delta counts: %+v", final.SessionScores)
	}

	// The pull endpoint agrees with the last streamed delta.
	rresp, err := http.Get(base + "/v1/risk?session=" + cr.ID)
	if err != nil {
		t.Fatal(err)
	}
	var snap streamrisk.Snapshot
	if err := json.NewDecoder(rresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if len(snap.Sessions) != 1 {
		t.Fatalf("pull snapshot sessions: %d", len(snap.Sessions))
	}
	pull, err := json.Marshal(snap.Sessions[0].Scores)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pull, want) {
		t.Errorf("pull endpoint diverged from offline recomputation:\npull:    %s\noffline: %s", pull, want)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	//lint:allow wallclock — liveness timeout for a real daemon under test, not simulation time
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}
}
