package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/control"
)

var update = flag.Bool("update", false, "rewrite golden files")

// post sends a JSON body and decodes the JSON response.
func post(t *testing.T, url string, body, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", url, data, err)
		}
	}
	return resp
}

// TestServeSmoke boots the real daemon on a loopback port, replays a
// scripted session over HTTP, and compares the session journal byte for
// byte against the committed golden — the end-to-end determinism check
// `make serve-smoke` runs in CI. It finishes by exercising the graceful
// drain path.
func TestServeSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", serve.Config{}, fleetConfig{}, 5*time.Second, io.Discard, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatal(err)
	//lint:allow wallclock — liveness timeout for a real daemon under test, not simulation time
	case <-time.After(10 * time.Second):
		t.Fatal("server did not come up")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v / %v", resp, err)
	}
	resp.Body.Close()

	// The scripted session: Libra+$ on a small machine; a feasible job, an
	// over-budget rejection, and a second acceptance at a later instant.
	var cr serve.CreateSessionResponse
	post(t, base+"/v1/sessions", serve.CreateSessionRequest{Policy: "Libra+$", Model: "commodity", Nodes: 8}, &cr)
	jobs := base + "/v1/sessions/" + cr.ID + "/jobs"
	var d1, d2, d3 serve.SubmitJobResponse
	post(t, jobs, serve.SubmitJobRequest{Submit: 0, Runtime: 100, Deadline: 200, Budget: 1000}, &d1)
	post(t, jobs, serve.SubmitJobRequest{Submit: 5, Runtime: 100, Deadline: 200, Budget: 0.01}, &d2)
	post(t, jobs, serve.SubmitJobRequest{Submit: 50, Runtime: 40, Procs: 2, Deadline: 300, Budget: 500}, &d3)
	if d1.Admission != "accepted" || d2.Admission != "rejected" || d3.Admission != "accepted" {
		t.Fatalf("admissions: %q, %q, %q", d1.Admission, d2.Admission, d3.Admission)
	}
	post(t, base+"/v1/sessions/"+cr.ID+"/finalize", struct{}{}, nil)

	jresp, err := http.Get(base + "/v1/sessions/" + cr.ID + "/journal")
	if err != nil {
		t.Fatal(err)
	}
	journal, err := io.ReadAll(jresp.Body)
	jresp.Body.Close()
	if err != nil || jresp.StatusCode != http.StatusOK {
		t.Fatalf("journal: status %d, err %v", jresp.StatusCode, err)
	}

	golden := filepath.Join("testdata", "smoke_journal.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, journal, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(journal, want) {
		t.Errorf("smoke journal diverged from golden:\ngot:\n%s\nwant:\n%s", journal, want)
	}

	// Graceful drain: cancelling the context must return nil after the
	// in-flight work completes.
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	//lint:allow wallclock — liveness timeout for a real daemon under test, not simulation time
	case <-time.After(10 * time.Second):
		t.Fatal("server did not drain")
	}
}

// In worker mode the daemon registers with the control plane on startup
// and deregisters during graceful shutdown — the fleet sees it appear
// and disappear without operator action.
func TestServeWorkerModeRegistration(t *testing.T) {
	plane := control.New(control.Config{})
	cp := httptest.NewServer(plane.Handler())
	defer cp.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	fleet := fleetConfig{ControlURL: cp.URL, Name: "w-test"}
	go func() {
		errc <- run(ctx, "127.0.0.1:0", serve.Config{}, fleet, 5*time.Second, io.Discard, ready)
	}()
	select {
	case <-ready:
	case err := <-errc:
		t.Fatal(err)
	//lint:allow wallclock — liveness timeout for a real daemon under test, not simulation time
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not come up")
	}
	topo := plane.Topology()
	if len(topo.Workers) != 1 || topo.Workers[0].Name != "w-test" || !topo.Workers[0].Healthy {
		t.Fatalf("after startup, topology = %+v, want healthy w-test", topo.Workers)
	}

	// A session created through the plane must land on the worker.
	var cr serve.CreateSessionResponse
	post(t, cp.URL+"/v1/sessions", serve.CreateSessionRequest{Policy: "FirstReward", Model: "bid"}, &cr)
	if got := plane.Sessions(); got != 1 {
		t.Fatalf("plane routes %d sessions, want 1", got)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	//lint:allow wallclock — liveness timeout for a real daemon under test, not simulation time
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}
	if topo := plane.Topology(); len(topo.Workers) != 0 {
		t.Errorf("after shutdown, topology = %+v, want no workers", topo.Workers)
	}
}

// A worker pointed at a dead control plane fails startup with a plain
// error instead of serving unregistered.
func TestServeWorkerModeBadControlPlane(t *testing.T) {
	cp := httptest.NewServer(http.NotFoundHandler())
	cp.Close()
	fleet := fleetConfig{ControlURL: cp.URL, Name: "w-test"}
	err := run(context.Background(), "127.0.0.1:0", serve.Config{}, fleet, time.Second, io.Discard, nil)
	if err == nil {
		t.Fatal("worker started against a dead control plane")
	}
}

// The daemon refuses a second listener on the same port with a plain
// error, not a hang.
func TestServeAddrInUse(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", serve.Config{}, fleetConfig{}, time.Second, io.Discard, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatal(err)
	//lint:allow wallclock — liveness timeout for a real daemon under test, not simulation time
	case <-time.After(10 * time.Second):
		t.Fatal("server did not come up")
	}
	if err := run(ctx, addr, serve.Config{}, fleetConfig{}, time.Second, io.Discard, nil); err == nil {
		t.Fatal("second listener on the same address succeeded")
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("drain: %v", err)
	}
}
