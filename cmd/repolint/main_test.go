package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunCleanTree is the CI contract: the repository itself must produce
// zero findings — test files included, since make lint runs -tests — so
// `go run ./cmd/repolint -tests ./...` can gate make verify.
func TestRunCleanTree(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run("../..", []string{"-tests"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on the real tree\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// TestRunFlagsGoldenFixtures drives the binary entry point at the golden
// corpus: every analyzer's positive case must surface in the output and the
// process must exit 1.
func TestRunFlagsGoldenFixtures(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run("../../internal/lint/testdata/src", nil, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	for _, rule := range []string{"wallclock", "globalrand", "maporder", "floateq", "errignore",
		"detflow", "hotalloc", "lockflow", "journalfmt", "directive"} {
		if !strings.Contains(stdout.String(), ": "+rule+": ") {
			t.Errorf("no %s finding in driver output", rule)
		}
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing finding count: %q", stderr.String())
	}
}

// TestRunPerAnalyzerExitCode narrows the run to one positive fixture per
// analyzer and checks the nonzero exit individually.
func TestRunPerAnalyzerExitCode(t *testing.T) {
	cases := map[string]string{
		"wallclock":  "./wallclock",
		"globalrand": "./globalrand",
		"maporder":   "./maporder",
		"floateq":    "./internal/stats",
		"errignore":  "./internal/obs",
		"directive":  "./directive",
		"detflow":    "./internal/scheduler",
		"hotalloc":   "./hotalloc",
		"lockflow":   "./internal/serve",
		"journalfmt": "./internal/obs",
	}
	for rule, pattern := range cases {
		var stdout, stderr strings.Builder
		code := run("../../internal/lint/testdata/src", []string{pattern}, &stdout, &stderr)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
				rule, code, stdout.String(), stderr.String())
			continue
		}
		if !strings.Contains(stdout.String(), ": "+rule+": ") {
			t.Errorf("%s: no finding for the rule in %s\nstdout:\n%s", rule, pattern, stdout.String())
		}
	}
}

// TestRulesFlag prints the catalog and exits clean.
func TestRulesFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(".", []string{"-rules"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	for _, rule := range []string{"wallclock", "globalrand", "maporder", "floateq", "errignore",
		"detflow", "hotalloc", "lockflow", "journalfmt"} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("catalog missing %s:\n%s", rule, stdout.String())
		}
	}
}

// TestJSONOutputByteStable runs the golden corpus twice in -json mode: the
// NDJSON findings must be valid objects with the fixed field set, and the
// two runs must produce byte-identical output — the machine-readable mode
// is a diffable artifact.
func TestJSONOutputByteStable(t *testing.T) {
	runJSON := func() string {
		var stdout, stderr strings.Builder
		code := run("../../internal/lint/testdata/src", []string{"-json", "-tests"}, &stdout, &stderr)
		if code != 1 {
			t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
		}
		return stdout.String()
	}
	first, second := runJSON(), runJSON()
	if first != second {
		t.Fatalf("-json output differs between runs:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	lines := strings.Split(strings.TrimRight(first, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON findings emitted")
	}
	for _, line := range lines {
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("invalid NDJSON line %q: %v", line, err)
		}
		if f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Rule == "" || f.Msg == "" {
			t.Errorf("incomplete finding object: %q", line)
		}
	}
}
