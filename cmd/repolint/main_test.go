package main

import (
	"strings"
	"testing"
)

// TestRunCleanTree is the CI contract: the repository itself must produce
// zero findings, so `go run ./cmd/repolint ./...` can gate make verify.
func TestRunCleanTree(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run("../..", nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d on the real tree\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// TestRunFlagsGoldenFixtures drives the binary entry point at the golden
// corpus: every analyzer's positive case must surface in the output and the
// process must exit 1.
func TestRunFlagsGoldenFixtures(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run("../../internal/lint/testdata/src", nil, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	for _, rule := range []string{"wallclock", "globalrand", "maporder", "floateq", "errignore", "directive"} {
		if !strings.Contains(stdout.String(), ": "+rule+": ") {
			t.Errorf("no %s finding in driver output", rule)
		}
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing finding count: %q", stderr.String())
	}
}

// TestRunPerAnalyzerExitCode narrows the run to one positive fixture per
// analyzer and checks the nonzero exit individually.
func TestRunPerAnalyzerExitCode(t *testing.T) {
	cases := map[string]string{
		"wallclock":  "./wallclock",
		"globalrand": "./globalrand",
		"maporder":   "./maporder",
		"floateq":    "./internal/stats",
		"errignore":  "./internal/obs",
		"directive":  "./directive",
	}
	for rule, pattern := range cases {
		var stdout, stderr strings.Builder
		code := run("../../internal/lint/testdata/src", []string{pattern}, &stdout, &stderr)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1\nstdout:\n%s\nstderr:\n%s",
				rule, code, stdout.String(), stderr.String())
			continue
		}
		if !strings.Contains(stdout.String(), ": "+rule+": ") {
			t.Errorf("%s: no finding for the rule in %s\nstdout:\n%s", rule, pattern, stdout.String())
		}
	}
}

// TestRulesFlag prints the catalog and exits clean.
func TestRulesFlag(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run(".", []string{"-rules"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	for _, rule := range []string{"wallclock", "globalrand", "maporder", "floateq", "errignore"} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("catalog missing %s:\n%s", rule, stdout.String())
		}
	}
}
