// Command repolint checks the repository's determinism and correctness
// invariants with the stdlib-only analyzer suite in internal/lint. It walks
// the requested packages (default ./...), prints one
//
//	file:line: rule: message
//
// line per finding, and exits nonzero on any hit, which makes it a CI gate
// (make verify). Legitimate exceptions are suppressed in the source with
// documented //lint:allow directives, never by configuration.
//
// Usage:
//
//	repolint [-rules] [-tests] [-json] [pattern ...]
//
// where each pattern is a package directory, a subtree like ./internal/...,
// or ./... for the whole module containing the working directory. -tests
// additionally analyzes _test.go files (for the rules that apply to tests);
// -json emits one NDJSON object per finding instead of the human lines, for
// machine consumers such as the CI annotation matcher.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the linter from the given directory and returns the process
// exit code: 0 clean, 1 findings, 2 usage or load failure.
func run(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.Bool("rules", false, "print the rule catalog and exit")
	tests := fs.Bool("tests", false, "also analyze _test.go files")
	jsonOut := fs.Bool("json", false, "emit findings as NDJSON objects")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *rules {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	findings, err := lint.RunWith(root, patterns, lint.All(), lint.Options{Tests: *tests})
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	for _, f := range findings {
		f.Pos.Filename = relPath(dir, f.Pos.Filename)
		if *jsonOut {
			writeJSON(stdout, f)
		} else {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "repolint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable finding shape. The field order is
// fixed by the struct, and the findings themselves arrive deduplicated and
// sorted from internal/lint, so -json output is byte-stable across runs —
// a diffable artifact.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func writeJSON(w io.Writer, f lint.Finding) {
	b, err := json.Marshal(jsonFinding{
		File: f.Pos.Filename,
		Line: f.Pos.Line,
		Col:  f.Pos.Column,
		Rule: f.Rule,
		Msg:  f.Msg,
	})
	if err != nil {
		return
	}
	b = append(b, '\n')
	w.Write(b)
}

// findModuleRoot walks up from dir to the nearest directory holding go.mod.
func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// relPath shortens a finding path relative to the invocation directory when
// that yields something shorter to click on.
func relPath(dir, path string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(abs, path); err == nil && !filepath.IsAbs(rel) && rel != "" && !isDotDot(rel) {
		return rel
	}
	return path
}

func isDotDot(rel string) bool {
	return rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)
}
