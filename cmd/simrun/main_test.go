package main

import (
	"testing"

	"repro/internal/economy"
)

func TestParseModel(t *testing.T) {
	if m, err := parseModel("commodity"); err != nil || m != economy.Commodity {
		t.Errorf("parseModel(commodity) = %v, %v", m, err)
	}
	if m, err := parseModel("bid"); err != nil || m != economy.BidBased {
		t.Errorf("parseModel(bid) = %v, %v", m, err)
	}
	if m, err := parseModel("bid-based"); err != nil || m != economy.BidBased {
		t.Errorf("parseModel(bid-based) = %v, %v", m, err)
	}
	if _, err := parseModel("x"); err == nil {
		t.Error("unknown model accepted")
	}
}
