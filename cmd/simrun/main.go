// Command simrun runs one trace-driven simulation of a single policy and
// prints the four objectives of the paper (wait, SLA, reliability,
// profitability) plus the extension metrics.
//
// Example:
//
//	simrun -policy Libra+$ -model commodity -jobs 5000 -inaccuracy 100
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof: registers /debug/pprof on the default mux
	"os"

	"repro/internal/broker"
	"repro/internal/economy"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

func main() {
	var (
		policy     = flag.String("policy", "Libra", "policy name (see -list), or \"all\" to compare every policy of the model")
		model      = flag.String("model", "commodity", "economic model: commodity or bid")
		jobs       = flag.Int("jobs", 5000, "number of jobs in the synthetic trace")
		nodes      = flag.Int("nodes", 128, "cluster size")
		inaccuracy = flag.Float64("inaccuracy", 0, "runtime estimate inaccuracy % (0 = Set A, 100 = Set B)")
		arrival    = flag.Float64("arrival", 0.25, "arrival delay factor (lower = heavier load)")
		urgent     = flag.Float64("urgent", 20, "percentage of high urgency jobs")
		traceSeed  = flag.Int64("trace-seed", 1, "synthetic trace seed")
		qosSeed    = flag.Int64("qos-seed", 2, "QoS synthesis seed")
		faultMode  = flag.String("faults", "none", "failure intensity axis: none, low, or high")
		faultSeed  = flag.Int64("faultseed", 1, "base seed for the failure process")
		federation = flag.String("federation", "", "route jobs through a named federation preset (see -list); empty = the plain single cluster")
		reps       = flag.Int("reps", 1, "replications (independently seeded trace/QoS/fault draws, averaged)")
		workers    = flag.Int("workers", 0, "goroutines for parallel replications (0 = GOMAXPROCS); results are identical for any value")
		swf        = flag.String("swf", "", "optional SWF trace file to use instead of the synthetic trace")
		dump       = flag.String("dump", "", "write the per-job outcome audit trail to this CSV file")
		list       = flag.Bool("list", false, "list policies and exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address while the simulation runs")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			fmt.Fprintln(os.Stderr, "simrun: pprof server:", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	if *list {
		for _, line := range registry.ListPolicies() {
			fmt.Println(line)
		}
		fmt.Println()
		for _, line := range registry.ListFederations() {
			fmt.Println(line)
		}
		return
	}

	m, err := registry.ParseModel(*model)
	if err != nil {
		fatal(err)
	}
	intensity, err := faults.ParseIntensity(*faultMode)
	if err != nil {
		fatal(err)
	}
	fed, err := registry.ParseFederation(*federation)
	if err != nil {
		fatal(err)
	}
	if *policy == "all" {
		compareAll(m, fed, *jobs, *nodes, *inaccuracy, *arrival, *urgent, *traceSeed, *qosSeed, intensity, *faultSeed, *reps, *workers)
		return
	}
	spec, err := scheduler.SpecByName(*policy)
	if err != nil {
		fatal(err)
	}
	cfg := experiment.DefaultSuiteConfig(m, *inaccuracy >= 50)
	cfg.Jobs = *jobs
	cfg.Nodes = *nodes
	cfg.TraceSeed = *traceSeed
	cfg.QoSSeed = *qosSeed
	cfg.FaultIntensity = intensity
	cfg.FaultSeed = *faultSeed
	cfg.Federation = fed
	cfg.Replications = *reps
	cfg.Workers = *workers
	if *swf != "" {
		f, err := os.Open(*swf)
		if err != nil {
			fatal(err)
		}
		trace, err := workload.ReadSWF(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		cfg.Trace = workload.LastN(trace, *jobs)
	}
	params := experiment.DefaultParams(*inaccuracy)
	params.ArrivalFactor = *arrival
	params.HighUrgencyFrac = *urgent / 100

	var rep metrics.Report
	var fedRec *obs.FederationRecord
	if *dump != "" {
		if fed != nil {
			fatal(fmt.Errorf("-dump is per-machine and does not combine with -federation"))
		}
		// The audit trail forces serial replications (RunCellDetailed);
		// without -dump, replications run in parallel on -workers.
		var outcomes []*metrics.Outcome
		rep, outcomes, err = experiment.RunCellDetailed(cfg, params, spec)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		if err := metrics.WriteOutcomesCSV(f, outcomes); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	} else {
		rep, fedRec, err = experiment.RunCellFederated(cfg, params, spec)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("policy         %s (%s model)\n", spec.Name, m)
	fmt.Printf("jobs           %d submitted, %d accepted, %d SLA fulfilled, %d killed\n",
		rep.Submitted, rep.Accepted, rep.SLAFulfilled, rep.Killed)
	fmt.Printf("wait           %.1f s\n", rep.Wait)
	fmt.Printf("SLA            %.2f %%\n", rep.SLA)
	fmt.Printf("reliability    %.2f %%\n", rep.Reliability)
	fmt.Printf("profitability  %.2f %%  (utility $%.0f of $%.0f budget)\n",
		rep.Profitability, rep.TotalUtility, rep.TotalBudget)
	fmt.Printf("mean slowdown  %.2f    mean response %.1f s\n", rep.MeanSlowdown, rep.MeanResponseTime)
	fmt.Printf("utilization    %.2f %%\n", rep.Utilization*100)
	if fedRec != nil {
		fmt.Printf("\nfederation (%s, routing digest %s)\n", *federation, fedRec.RoutingDigest)
		fmt.Printf("%-12s %6s %7s %8s %6s %13s %15s\n",
			"cluster", "nodes", "routed", "wait(s)", "SLA%", "reliability%", "profitability%")
		for _, c := range fedRec.Clusters {
			fmt.Printf("%-12s %6d %7d %8.1f %6.2f %13.2f %15.2f\n",
				c.Name, c.Nodes, c.Routed, c.Report.Wait, c.Report.SLA, c.Report.Reliability, c.Report.Profitability)
		}
	}
}

// compareAll runs every Table V policy of the model on the same workload
// (optionally through a federation) and prints a side-by-side objective
// table.
func compareAll(m economy.Model, fed *broker.Federation, jobs, nodes int, inaccuracy, arrival, urgent float64, traceSeed, qosSeed int64, intensity faults.Intensity, faultSeed int64, reps, workers int) {
	cfg := experiment.DefaultSuiteConfig(m, inaccuracy >= 50)
	cfg.Jobs = jobs
	cfg.Nodes = nodes
	cfg.TraceSeed = traceSeed
	cfg.QoSSeed = qosSeed
	cfg.FaultIntensity = intensity
	cfg.FaultSeed = faultSeed
	cfg.Federation = fed
	cfg.Replications = reps
	cfg.Workers = workers
	params := experiment.DefaultParams(inaccuracy)
	params.ArrivalFactor = arrival
	params.HighUrgencyFrac = urgent / 100
	fmt.Printf("%-12s %9s %8s %13s %15s %13s\n",
		"policy", "wait(s)", "SLA%", "reliability%", "profitability%", "utilization%")
	for _, spec := range scheduler.ForModel(m) {
		rep, err := experiment.RunCell(cfg, params, spec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %9.1f %8.2f %13.2f %15.2f %13.2f\n",
			spec.Name, rep.Wait, rep.SLA, rep.Reliability, rep.Profitability, rep.Utilization*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrun:", err)
	os.Exit(1)
}
