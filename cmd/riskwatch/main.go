// Command riskwatch is a terminal dashboard over the streaming risk
// surface served by riskserved workers and the riskctl control plane: a
// live per-policy risk table (events, acceptance, cumulative and
// sliding-window separate/integrated risk) fed by the /v1/risk/stream SSE
// feed, with a sparkline trend of each policy's window volatility.
//
//	riskwatch -url http://localhost:8080            follow the live stream
//	riskwatch -url http://localhost:8080 -once      one snapshot, then exit
//	riskwatch -max-volatility 0.3 -min-performance 0.5 ...
//
// The threshold flags turn the watcher into an SLO probe: if any policy's
// cumulative integrated risk breaches a threshold — volatility above
// -max-volatility or performance below -min-performance — riskwatch exits
// nonzero once it stops, so a CI step or cron job can alert on risk drift
// the same way it alerts on error rates. Follow mode stops on -duration,
// after -max-events deltas, or when the stream ends; -plain suppresses
// the ANSI clear between repaints for logs and tests.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/streamrisk"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options is the parsed flag set.
type options struct {
	url       string
	once      bool
	plain     bool
	session   string
	policy    string
	duration  time.Duration
	maxEvents int
	trendLen  int
	maxVol    float64
	minPerf   float64
}

func parseFlags(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("riskwatch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.url, "url", "http://localhost:8080", "riskserved or riskctl base URL")
	fs.BoolVar(&o.once, "once", false, "fetch one /v1/risk snapshot, render it, and exit")
	fs.BoolVar(&o.plain, "plain", false, "append repaints instead of clearing the terminal")
	fs.StringVar(&o.session, "session", "", "narrow the view to one session ID")
	fs.StringVar(&o.policy, "policy", "", "narrow the view to one policy")
	fs.DurationVar(&o.duration, "duration", 0, "stop following after this long (0 = until the stream ends)")
	fs.IntVar(&o.maxEvents, "max-events", 0, "stop following after this many deltas (0 = unlimited)")
	fs.IntVar(&o.trendLen, "trend", 32, "sparkline length in deltas")
	fs.Float64Var(&o.maxVol, "max-volatility", 0, "exit nonzero if a policy's integrated volatility exceeds this (0 = disabled)")
	fs.Float64Var(&o.minPerf, "min-performance", 0, "exit nonzero if a policy's integrated performance falls below this (0 = disabled)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.trendLen < 2 {
		o.trendLen = 2
	}
	return o, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	o, err := parseFlags(args, stderr)
	if err != nil {
		return 2
	}
	w := newWatcher(o)
	if o.once {
		err = w.once(stdout)
	} else {
		err = w.follow(stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, "riskwatch:", err)
		return 2
	}
	if len(w.breaches) > 0 {
		for _, b := range w.breaches {
			fmt.Fprintln(stderr, "riskwatch: SLO breach:", b)
		}
		return 1
	}
	return 0
}

// watcher folds snapshot/delta frames into the rendered state: the global
// scores, every policy scope, and each policy's recent window-volatility
// trend.
type watcher struct {
	o        options
	global   streamrisk.Scores
	policies map[string]streamrisk.Scores
	trend    map[string][]float64
	sessions int
	seq      uint64
	deltas   int
	resyncs  int
	breaches []string
	breached map[string]bool
}

func newWatcher(o options) *watcher {
	return &watcher{
		o:        o,
		policies: make(map[string]streamrisk.Scores),
		trend:    make(map[string][]float64),
		breached: make(map[string]bool),
	}
}

func (w *watcher) query() string {
	q := ""
	if w.o.session != "" {
		q = "?session=" + w.o.session
	}
	if w.o.policy != "" {
		if q == "" {
			q = "?policy=" + w.o.policy
		} else {
			q += "&policy=" + w.o.policy
		}
	}
	return q
}

// once renders a single pull snapshot.
func (w *watcher) once(stdout io.Writer) error {
	resp, err := http.Get(w.o.url + "/v1/risk" + w.query())
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET /v1/risk: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var snap streamrisk.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return err
	}
	w.applySnapshot(snap)
	w.render(stdout)
	return nil
}

// follow subscribes to the SSE stream and re-renders on every frame.
func (w *watcher) follow(stdout io.Writer) error {
	ctx := context.Background()
	if w.o.duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, w.o.duration)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.o.url+"/v1/risk/stream"+w.query(), nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET /v1/risk/stream: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}

	r := streamrisk.NewEventReader(resp.Body)
	for {
		ev, err := r.Next()
		if err == io.EOF || ctx.Err() != nil {
			return nil
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil // the -duration deadline tore the stream down mid-frame
			}
			return err
		}
		switch ev.Event {
		case streamrisk.EventSnapshot, streamrisk.EventResync:
			var snap streamrisk.Snapshot
			if err := json.Unmarshal(ev.Data, &snap); err != nil {
				return err
			}
			if ev.Event == streamrisk.EventResync {
				w.resyncs++
			}
			w.applySnapshot(snap)
		case streamrisk.EventDelta:
			var d streamrisk.Delta
			if err := json.Unmarshal(ev.Data, &d); err != nil {
				return err
			}
			w.applyDelta(d)
		default:
			continue
		}
		w.render(stdout)
		if w.o.maxEvents > 0 && w.deltas >= w.o.maxEvents {
			return nil
		}
	}
}

func (w *watcher) applySnapshot(snap streamrisk.Snapshot) {
	w.seq = snap.Seq
	w.global = snap.Global
	w.sessions = len(snap.Sessions)
	w.policies = make(map[string]streamrisk.Scores, len(snap.Policies))
	for _, p := range snap.Policies {
		w.policies[p.Name] = p.Scores
		w.push(p.Name, p.Scores)
	}
	w.check()
}

func (w *watcher) applyDelta(d streamrisk.Delta) {
	w.seq = d.Seq
	w.deltas++
	w.global = d.Global
	if w.o.policy == "" || d.Policy == w.o.policy {
		w.policies[d.Policy] = d.PolicyScores
		w.push(d.Policy, d.PolicyScores)
	}
	w.check()
}

func (w *watcher) push(policy string, s streamrisk.Scores) {
	tr := append(w.trend[policy], s.WindowIntegrated.Volatility)
	if len(tr) > w.o.trendLen {
		tr = tr[len(tr)-w.o.trendLen:]
	}
	w.trend[policy] = tr
}

// check records threshold breaches, once per (policy, kind).
func (w *watcher) check() {
	for name, s := range w.policies {
		if s.Events == 0 {
			continue
		}
		if w.o.maxVol > 0 && s.Integrated.Volatility > w.o.maxVol {
			w.breach(name, "volatility", fmt.Sprintf("policy %s integrated volatility %.4f > %.4f", name, s.Integrated.Volatility, w.o.maxVol))
		}
		if w.o.minPerf > 0 && s.Integrated.Performance < w.o.minPerf {
			w.breach(name, "performance", fmt.Sprintf("policy %s integrated performance %.4f < %.4f", name, s.Integrated.Performance, w.o.minPerf))
		}
	}
}

func (w *watcher) breach(policy, kind, msg string) {
	key := policy + "/" + kind
	if w.breached[key] {
		return
	}
	w.breached[key] = true
	w.breaches = append(w.breaches, msg)
}

// sparkRunes maps a normalized value to eight block heights.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders xs as a fixed-height sparkline, scaled to the series' own
// min..max (a flat series renders as a low bar).
func spark(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	var b strings.Builder
	for _, x := range xs {
		i := 0
		if hi > lo {
			i = int((x - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// render repaints the dashboard.
func (w *watcher) render(stdout io.Writer) {
	if !w.o.plain {
		fmt.Fprint(stdout, "\x1b[2J\x1b[H")
	}
	fmt.Fprintf(stdout, "risk @ seq %d — %d sessions, %d deltas, %d resyncs\n", w.seq, w.sessions, w.deltas, w.resyncs)
	fmt.Fprintf(stdout, "global: events %d  acc %.3f  perf %.4f  vol %.4f  (win %.4f/%.4f)\n\n",
		w.global.Events, w.global.AcceptanceRatio,
		w.global.Integrated.Performance, w.global.Integrated.Volatility,
		w.global.WindowIntegrated.Performance, w.global.WindowIntegrated.Volatility)

	names := make([]string, 0, len(w.policies))
	for name := range w.policies {
		names = append(names, name)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "POLICY\tEVENTS\tACC\tPERF\tVOL\tWIN PERF\tWIN VOL\tTREND")
	for _, name := range names {
		s := w.policies[name]
		mark := ""
		if w.breached[name+"/volatility"] || w.breached[name+"/performance"] {
			mark = " !"
		}
		fmt.Fprintf(tw, "%s%s\t%d\t%.3f\t%.4f\t%.4f\t%.4f\t%.4f\t%s\n",
			name, mark, s.Events, s.AcceptanceRatio,
			s.Integrated.Performance, s.Integrated.Volatility,
			s.WindowIntegrated.Performance, s.WindowIntegrated.Volatility,
			spark(w.trend[name]))
	}
	tw.Flush()
}
