package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/qos"
	"repro/internal/serve"
	"repro/internal/workload"
)

// seededServer boots an in-process worker with one driven session.
func seededServer(t *testing.T, finalize bool) (*httptest.Server, *serve.Server, string) {
	t.Helper()
	srv := serve.New(serve.Config{RiskWindow: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	id := driveSession(t, ts.URL, 16, 5, finalize)
	return ts, srv, id
}

func driveSession(t *testing.T, base string, jobs int, seed int64, finalize bool) string {
	t.Helper()
	synth := workload.DefaultSynthConfig()
	synth.Jobs = jobs
	trace, err := workload.Generate(synth, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := qos.Synthesize(trace, qos.DefaultConfig(seed+1)); err != nil {
		t.Fatal(err)
	}
	var cr serve.CreateSessionResponse
	postJSON(t, base+"/v1/sessions", serve.CreateSessionRequest{Policy: "Libra", Model: "commodity"}, &cr)
	for _, j := range trace {
		postJSON(t, base+"/v1/sessions/"+cr.ID+"/jobs", serve.SubmitJobRequest{
			ID: j.ID, Submit: j.Submit, Runtime: j.Runtime, Estimate: j.Estimate,
			Procs: j.Procs, Deadline: j.Deadline, Budget: j.Budget,
			PenaltyRate: j.PenaltyRate, HighUrgency: j.HighUrgency,
		}, nil)
	}
	if finalize {
		postJSON(t, base+"/v1/sessions/"+cr.ID+"/finalize", struct{}{}, nil)
	}
	return cr.ID
}

func postJSON(t *testing.T, url string, body, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWatchOnce(t *testing.T) {
	ts, _, id := seededServer(t, true)
	var out, errb bytes.Buffer
	code := run([]string{"-once", "-plain", "-url", ts.URL}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{"POLICY", "Libra", "global:", "1 sessions"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	_ = id
}

func TestWatchOnceSessionFilter(t *testing.T) {
	ts, _, id := seededServer(t, true)
	var out, errb bytes.Buffer
	if code := run([]string{"-once", "-plain", "-url", ts.URL, "-session", id}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if code := run([]string{"-once", "-plain", "-url", ts.URL, "-session", "nope"}, &out, &errb); code != 0 {
		t.Fatalf("unknown session should still render (empty): exit %d: %s", code, errb.String())
	}
}

// Breached thresholds exit 1 and name the offending policy: performance is
// bounded by 1, so -min-performance 2 must always trip once events exist.
func TestWatchThresholdExitNonzero(t *testing.T) {
	ts, _, _ := seededServer(t, true)
	var out, errb bytes.Buffer
	code := run([]string{"-once", "-plain", "-url", ts.URL, "-min-performance", "2"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "SLO breach") || !strings.Contains(errb.String(), "Libra") {
		t.Fatalf("stderr missing breach report: %s", errb.String())
	}
}

// Follow mode over the live stream: deltas arrive while jobs are being
// submitted, the dashboard repaints, and -max-events stops it cleanly.
func TestWatchFollowLiveDeltas(t *testing.T) {
	srv := serve.New(serve.Config{RiskWindow: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const events = 6
	var out, errb bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	codec := make(chan int, 1)
	go func() {
		defer wg.Done()
		codec <- run([]string{"-plain", "-url", ts.URL, "-max-events", "6", "-duration", "20s"}, &out, &errb)
	}()

	// Give the subscriber a moment to anchor, then generate the deltas.
	time.Sleep(100 * time.Millisecond) //lint:allow wallclock — real-time pause for the live subscriber to anchor
	driveSession(t, ts.URL, events, 9, false)
	wg.Wait()
	if code := <-codec; code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "Libra") || !strings.Contains(got, "6 deltas") {
		t.Errorf("follow output missing live state:\n%s", got)
	}
	// The trend sparkline appears once deltas accumulate.
	if !strings.ContainsAny(got, "▁▂▃▄▅▆▇█") {
		t.Errorf("follow output missing sparkline:\n%s", got)
	}
}

func TestWatchFollowDurationStopsWithoutTraffic(t *testing.T) {
	ts, _, _ := seededServer(t, true)
	var out, errb bytes.Buffer
	code := run([]string{"-plain", "-url", ts.URL, "-duration", "300ms"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Libra") {
		t.Errorf("snapshot frame not rendered:\n%s", out.String())
	}
}

func TestWatchBadURL(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-once", "-url", "http://127.0.0.1:1", "-plain"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-bogus-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestSpark(t *testing.T) {
	if got := spark(nil); got != "" {
		t.Fatalf("spark(nil) = %q", got)
	}
	if got := spark([]float64{1, 1, 1}); got != "▁▁▁" {
		t.Fatalf("flat series: %q", got)
	}
	if got := spark([]float64{0, 0.5, 1}); got != "▁▄█" {
		t.Fatalf("ramp: %q", got)
	}
}
