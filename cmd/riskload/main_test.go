package main

import (
	"testing"
	"time"

	"repro/internal/load"
)

// The CLI's run path self-hosts a topology, completes without SLO
// violations under a generous gate, and fails under an impossible one —
// with SLO_GATE=off downgrading that failure to a warning.
func TestRiskloadGate(t *testing.T) {
	cfg := load.Config{Rate: 200, Sessions: 4, Jobs: 5, Seed: 7}
	if err := run("", 2, cfg, load.SLO{P99: time.Minute}); err != nil {
		t.Fatalf("generous SLO: %v", err)
	}
	if err := run("", 2, cfg, load.SLO{P99: time.Nanosecond}); err == nil {
		t.Fatal("impossible SLO passed")
	}
	t.Setenv("SLO_GATE", "off")
	if err := run("", 2, cfg, load.SLO{P99: time.Nanosecond}); err != nil {
		t.Fatalf("SLO_GATE=off still failed: %v", err)
	}
}

// -risk-stream rides along without disturbing the gate: the run stays
// error-free and the probe's stats land in the result.
func TestRiskloadRiskStream(t *testing.T) {
	cfg := load.Config{Rate: 200, Sessions: 3, Jobs: 4, Seed: 5, RiskStream: true}
	if err := run("", 2, cfg, load.SLO{P99: time.Minute}); err != nil {
		t.Fatalf("risk-stream run: %v", err)
	}
}

// A dead target is a run error, not a pile of per-request noise with a
// zero exit.
func TestRiskloadDeadTarget(t *testing.T) {
	cfg := load.Config{Rate: 1000, Sessions: 2, Jobs: 2}
	if err := run("http://127.0.0.1:1", 0, cfg, load.SLO{}); err == nil {
		t.Fatal("dead target produced no error")
	}
}
