// Command riskload drives open-loop load at a service plane and gates
// the measured latency distribution against SLOs.
//
//	riskload -workers 4 -rate 50 -sessions 64 -jobs 20 -slo-p99 250ms
//	riskload -target http://localhost:8070 -rate 8 -sessions 16
//
// Without -target it self-hosts the topology: a control plane plus
// -workers riskserved workers on loopback listeners inside this process,
// so one command measures a whole fleet. The workload is fully seeded —
// two runs against the same topology issue byte-identical request
// streams — and the arrival schedule is open-loop, so an overloaded
// service faces mounting concurrency rather than a self-throttling
// client (see internal/load).
//
// With -risk-stream the run also keeps one /v1/risk/stream SSE
// subscriber open end to end and reports, in the result JSON, the deltas
// and resyncs it received, the deltas it demonstrably lost (sequence
// gaps), and how far it lagged the engine when the load finished — a
// one-flag answer to "does the streaming surface keep up under this
// load".
//
// The run's result is printed as JSON on stdout. When any -slo-* flag is
// set and violated, riskload exits nonzero — unless SLO_GATE=off, which
// downgrades violations to warnings the same way BENCH_GATE=off
// downgrades the bench gate (latency SLOs are machine-dependent; the
// error-rate clause has no such excuse, but the escape hatch covers it
// too for symmetry).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/load"
)

func main() {
	var (
		target   = flag.String("target", "", "service-plane base URL; empty self-hosts a topology in-process")
		workers  = flag.Int("workers", 4, "worker count for the self-hosted topology (ignored with -target)")
		rate     = flag.Float64("rate", 8, "open-loop session arrival rate per second")
		sessions = flag.Int("sessions", 16, "total sessions dispatched")
		jobs     = flag.Int("jobs", 20, "job submissions per session")
		seed     = flag.Int64("seed", 1, "workload synthesis seed; session k derives from seed+k")
		policy   = flag.String("policy", "Libra", "Table V policy every session runs")
		model    = flag.String("model", "commodity", "economic model (commodity or bid)")
		sloP99   = flag.Duration("slo-p99", 0, "p99 latency SLO over all operations (0 = unchecked)")
		sloP999  = flag.Duration("slo-p999", 0, "p999 latency SLO over all operations (0 = unchecked)")
		maxErr   = flag.Float64("max-error-rate", 0, "error-rate budget (0 = any error violates)")
		riskStr  = flag.Bool("risk-stream", false, "subscribe to /v1/risk/stream for the whole run and report subscriber lag and dropped deltas")
	)
	flag.Parse()
	if err := run(*target, *workers, load.Config{
		Rate: *rate, Sessions: *sessions, Jobs: *jobs, Seed: *seed,
		Policy: *policy, Model: *model, RiskStream: *riskStr,
	}, load.SLO{P99: *sloP99, P999: *sloP999, MaxErrorRate: *maxErr}); err != nil {
		fmt.Fprintln(os.Stderr, "riskload:", err)
		os.Exit(1)
	}
}

func run(target string, workers int, cfg load.Config, slo load.SLO) error {
	if target == "" {
		url, shutdown, err := load.SelfHost(workers)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "riskload: self-hosted %d-worker topology at %s\n", workers, url)
		target = url
	}
	cfg.Target = target
	res, err := load.Run(cfg)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if rs := res.RiskStream; rs != nil {
		fmt.Fprintf(os.Stderr, "riskload: risk stream saw %d deltas, %d resyncs, %d dropped, end lag %d (err=%q)\n",
			rs.Deltas, rs.Resyncs, rs.DroppedSeen, rs.EndLag, rs.StreamError)
	}

	violations := slo.Check(res)
	if len(violations) == 0 {
		all := res.Latency["all"]
		fmt.Fprintf(os.Stderr, "riskload: SLO ok (p99 %.3fms, p999 %.3fms, %d/%d errors)\n",
			all.P99Millis, all.P999Milli, res.Errors, res.Requests)
		return nil
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "riskload: SLO violation:", v)
	}
	if os.Getenv("SLO_GATE") == "off" {
		fmt.Fprintln(os.Stderr, "riskload: SLO_GATE=off, violations are informational")
		return nil
	}
	return fmt.Errorf("%d SLO violation(s)", len(violations))
}
