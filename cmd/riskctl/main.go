// Command riskctl is the control plane of the riskserved fleet: a
// process that owns session placement and exposes the same client API as
// a single worker, so clients never learn the topology.
//
//	POST   /v1/sessions                  create a session (placed by consistent hashing)
//	POST   /v1/sessions/{id}/jobs        forward to the owning worker
//	GET    /v1/sessions/{id}/report      forward to the owning worker
//	GET    /v1/sessions/{id}/journal     forward to the owning worker
//	POST   /v1/sessions/{id}/finalize    forward to the owning worker
//	DELETE /v1/sessions/{id}             forward; forget the route
//	POST   /control/v1/workers           register a worker {name, url}
//	DELETE /control/v1/workers/{name}    deregister; evacuate its sessions first
//	POST   /control/v1/workers/{name}/drain  drain: stop placement, move sessions off
//	GET    /control/v1/topology          workers, health, session placement
//	GET    /v1/risk                      fleet-wide streaming-risk snapshot
//	GET    /v1/risk/stream               fleet-wide live risk deltas (SSE)
//	GET    /healthz                      liveness + fleet summary
//	GET    /debug/vars                   expvar counters
//
// Sessions move between workers by deterministic journal replay, so a
// worker crash, a drain, and a rebalance are all the same operation; the
// prober detects dead workers and re-places their sessions from the
// control plane's shadow journals. The same shadow journals feed the
// plane's streaming risk engine, so /v1/risk aggregates fleet-wide and is
// undisturbed by migration and recovery. See docs/architecture.md
// ("Service plane", "Streaming risk").
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve/control"
)

func main() {
	var (
		addr          = flag.String("addr", "localhost:8070", "listen address")
		probeInterval = flag.Duration("probe-interval", 5*time.Second, "worker health-probe period (0 disables probing)")
		probeFailures = flag.Int("probe-failures", 2, "consecutive probe failures before a worker is declared dead")
		clientTimeout = flag.Duration("client-timeout", 10*time.Second, "per-request timeout when forwarding to workers")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown window after SIGINT/SIGTERM")
		riskWindow    = flag.Int("risk-window", 0, "fleet risk engine sliding-window size in decisions (0 = default)")
		riskSubs      = flag.Int("max-risk-subscribers", 0, "maximum concurrent /v1/risk/stream subscribers (0 = default)")
	)
	flag.Parse()
	cfg := control.Config{
		ProbeFailures:      *probeFailures,
		Client:             &http.Client{Timeout: *clientTimeout},
		RiskWindow:         *riskWindow,
		MaxRiskSubscribers: *riskSubs,
	}
	if err := run(context.Background(), *addr, cfg, *probeInterval, *drainTimeout, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "riskctl:", err)
		os.Exit(1)
	}
}

// run starts the control plane and blocks until the context is
// cancelled, a SIGINT/SIGTERM arrives, or the listener fails. ready,
// when non-nil, receives the bound address once the server is listening.
func run(ctx context.Context, addr string, cfg control.Config, probeInterval, drainTimeout time.Duration, logw io.Writer, ready chan<- string) error {
	plane := control.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()
	if probeInterval > 0 {
		go plane.RunProber(ctx, probeInterval)
	}

	hs := &http.Server{Handler: plane.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "riskctl: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		fmt.Fprintf(logw, "riskctl: draining (%d routed sessions, up to %v)\n", plane.Sessions(), drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Fprintln(logw, "riskctl: drained")
		return nil
	}
}
