package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/control"
)

// post sends a JSON body and decodes the JSON response, failing on any
// status >= 300.
func post(t *testing.T, url string, body, out any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", url, data, err)
		}
	}
}

// get fetches a body, failing on any status but 200.
func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, err %v: %s", url, resp.StatusCode, err, data)
	}
	return data
}

// driveScripted replays the serve-smoke session script against base and
// returns the finalized session's journal bytes.
func driveScripted(t *testing.T, base string) []byte {
	t.Helper()
	var cr serve.CreateSessionResponse
	post(t, base+"/v1/sessions", serve.CreateSessionRequest{Policy: "Libra+$", Model: "commodity", Nodes: 8}, &cr)
	jobs := base + "/v1/sessions/" + cr.ID + "/jobs"
	var d1, d2, d3 serve.SubmitJobResponse
	post(t, jobs, serve.SubmitJobRequest{Submit: 0, Runtime: 100, Deadline: 200, Budget: 1000}, &d1)
	post(t, jobs, serve.SubmitJobRequest{Submit: 5, Runtime: 100, Deadline: 200, Budget: 0.01}, &d2)
	post(t, jobs, serve.SubmitJobRequest{Submit: 50, Runtime: 40, Procs: 2, Deadline: 300, Budget: 500}, &d3)
	if d1.Admission != "accepted" || d2.Admission != "rejected" || d3.Admission != "accepted" {
		t.Fatalf("admissions: %q, %q, %q", d1.Admission, d2.Admission, d3.Admission)
	}
	post(t, base+"/v1/sessions/"+cr.ID+"/finalize", struct{}{}, nil)
	return get(t, base+"/v1/sessions/"+cr.ID+"/journal")
}

// TestServeFleetSmoke boots the real riskctl daemon on a loopback port,
// registers a four-worker fleet over the admin API, replays the scripted
// serve-smoke session through the plane, and demands the journal be
// byte-identical to the same script driven against a standalone worker —
// the topology must be invisible in every observable byte. It then
// drains a worker through the admin API and checks the fleet keeps
// serving. This is the multi-worker half of `make serve-smoke`.
func TestServeFleetSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", control.Config{}, 0, 5*time.Second, io.Discard, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-errc:
		t.Fatal(err)
	//lint:allow wallclock — liveness timeout for a real daemon under test, not simulation time
	case <-time.After(10 * time.Second):
		t.Fatal("control plane did not come up")
	}

	workers := make([]*httptest.Server, 4)
	for i := range workers {
		workers[i] = httptest.NewServer(serve.New(serve.Config{}).Handler())
		defer workers[i].Close()
		post(t, base+"/control/v1/workers", control.RegisterWorkerRequest{
			Name: []string{"w-1", "w-2", "w-3", "w-4"}[i], URL: workers[i].URL,
		}, nil)
	}
	var topo control.TopologyResponse
	if err := json.Unmarshal(get(t, base+"/control/v1/topology"), &topo); err != nil {
		t.Fatal(err)
	}
	if len(topo.Workers) != 4 {
		t.Fatalf("topology has %d workers, want 4", len(topo.Workers))
	}

	// Transparency: plane-routed journal == standalone-worker journal.
	fleetJournal := driveScripted(t, base)
	standalone := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer standalone.Close()
	soloJournal := driveScripted(t, standalone.URL)
	if !bytes.Equal(fleetJournal, soloJournal) {
		t.Errorf("fleet-routed journal diverged from standalone worker:\nfleet:\n%s\nsolo:\n%s", fleetJournal, soloJournal)
	}

	// Drain one worker over the admin API; the fleet must keep serving
	// and the drained worker must leave placement.
	req, err := http.NewRequest(http.MethodPost, base+"/control/v1/workers/w-2/drain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", resp.StatusCode)
	}
	// The second session on each side carries the same allocated ID
	// (s-2), so the journals are comparable byte for byte again.
	if j, solo2 := driveScripted(t, base), driveScripted(t, standalone.URL); !bytes.Equal(j, solo2) {
		t.Error("post-drain session diverged from standalone journal")
	}
	if err := json.Unmarshal(get(t, base+"/control/v1/topology"), &topo); err != nil {
		t.Fatal(err)
	}
	for _, w := range topo.Workers {
		if w.Name == "w-2" && !w.Draining {
			t.Error("w-2 not marked draining in topology")
		}
	}

	// Graceful drain of the control plane itself.
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	//lint:allow wallclock — liveness timeout for a real daemon under test, not simulation time
	case <-time.After(10 * time.Second):
		t.Fatal("control plane did not drain")
	}
}
