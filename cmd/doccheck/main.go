// Command doccheck keeps the documentation honest. It enforces three
// repository invariants (the `make doc-check` CI gate):
//
//  1. Every relative markdown link in docs/*.md, README.md, EXPERIMENTS.md,
//     ROADMAP.md, and CHANGES.md resolves to a file or directory that
//     exists. External links (http/https/mailto) and pure anchors (#…) are
//     not checked.
//  2. Every package under internal/ has a doc.go whose package clause
//     carries a package comment, so `go doc repro/internal/<pkg>` tells
//     the same story as the handbook.
//  3. The lint-rule table in docs/architecture.md names exactly the
//     analyzers registered in internal/lint — a new analyzer cannot ship
//     undocumented, and the handbook cannot describe a rule that no
//     longer exists.
//
// Usage: doccheck [repo root] (default ".").
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/lint"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	problems, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Printf("doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

func check(root string) ([]string, error) {
	var problems []string
	links, err := checkLinks(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, links...)
	docs, err := checkPackageDocs(root)
	if err != nil {
		return nil, err
	}
	problems = append(problems, docs...)
	rules, err := checkLintRules(root)
	if err != nil {
		return nil, err
	}
	return append(problems, rules...), nil
}

// markdownFiles returns the repo's prose surface: every docs/*.md plus the
// top-level markdown entry points.
func markdownFiles(root string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	for _, top := range []string{"README.md", "EXPERIMENTS.md", "ROADMAP.md", "CHANGES.md"} {
		p := filepath.Join(root, top)
		if _, err := os.Stat(p); err == nil {
			files = append(files, p)
		}
	}
	return files, nil
}

// linkRe matches inline markdown links [text](target). Reference-style
// links are rare in this repo and out of scope.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies every relative link target exists on disk, relative
// to the file containing it.
func checkLinks(root string) ([]string, error) {
	files, err := markdownFiles(root)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an anchor suffix: path.md#section checks path.md.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, fmt.Sprintf("%s: broken link %q (%s does not exist)",
					file, m[1], resolved))
			}
		}
	}
	return problems, nil
}

// lintRuleRe matches a rule row in the architecture handbook's lint
// table: a line of the form "| `rule` | …".
var lintRuleRe = regexp.MustCompile("(?m)^\\| `([a-z]+)` \\|")

// checkLintRules cross-checks the rule table in docs/architecture.md
// against the analyzer set registered in internal/lint, in both
// directions. The driver-level `directive` hygiene rule is documented in
// prose rather than the table, so only analyzer names are compared.
// Scaffold repos without the handbook (the unit-test fixtures) have
// nothing to cross-check.
func checkLintRules(root string) ([]string, error) {
	path := filepath.Join(root, "docs", "architecture.md")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	documented := map[string]bool{}
	for _, m := range lintRuleRe.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = true
	}
	var problems []string
	registered := map[string]bool{}
	for _, a := range lint.All() {
		registered[a.Name] = true
		if !documented[a.Name] {
			problems = append(problems, fmt.Sprintf(
				"docs/architecture.md: lint-rule table is missing registered analyzer `%s`", a.Name))
		}
	}
	var names []string
	for name := range documented {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !registered[name] {
			problems = append(problems, fmt.Sprintf(
				"docs/architecture.md: lint-rule table documents `%s`, which is not a registered analyzer", name))
		}
	}
	return problems, nil
}

// checkPackageDocs verifies every internal/* package directory carries a
// doc.go with a package comment.
func checkPackageDocs(root string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, e := range entries {
		if !e.IsDir() || e.Name() == "testdata" {
			continue
		}
		dir := filepath.Join(root, "internal", e.Name())
		docPath := filepath.Join(dir, "doc.go")
		if _, err := os.Stat(docPath); err != nil {
			problems = append(problems, fmt.Sprintf("internal/%s: no doc.go (package documentation is required)", e.Name()))
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, docPath, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			problems = append(problems, fmt.Sprintf("internal/%s: doc.go does not parse: %v", e.Name(), err))
			continue
		}
		if f.Doc == nil || strings.TrimSpace(f.Doc.Text()) == "" {
			problems = append(problems, fmt.Sprintf("internal/%s: doc.go has no package comment", e.Name()))
		}
	}
	return problems, nil
}
