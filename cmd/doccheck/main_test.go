package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// scaffold builds a minimal repo shape under a temp dir.
func scaffold(t *testing.T, docGo string, markdown string) string {
	t.Helper()
	root := t.TempDir()
	for _, dir := range []string{"docs", filepath.Join("internal", "pkg")} {
		if err := os.MkdirAll(filepath.Join(root, dir), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	write := func(rel, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(root, rel), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(filepath.Join("docs", "guide.md"), markdown)
	write("README.md", "see [guide](docs/guide.md)\n")
	if docGo != "" {
		write(filepath.Join("internal", "pkg", "doc.go"), docGo)
	}
	return root
}

func TestCheckCleanRepo(t *testing.T) {
	root := scaffold(t,
		"// Package pkg does a thing.\npackage pkg\n",
		"back to [readme](../README.md) and [web](https://example.com) and [anchor](#x)\n")
	problems, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean repo reported problems: %v", problems)
	}
}

func TestCheckBrokenLink(t *testing.T) {
	root := scaffold(t,
		"// Package pkg does a thing.\npackage pkg\n",
		"see [missing](missing.md) and [anchored](missing.md#sec)\n")
	problems, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want 2 broken links", problems)
	}
	for _, p := range problems {
		if !strings.Contains(p, "broken link") {
			t.Errorf("unexpected problem: %s", p)
		}
	}
}

func TestCheckMissingDocGo(t *testing.T) {
	root := scaffold(t, "", "no links here\n")
	problems, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "no doc.go") {
		t.Fatalf("problems = %v, want one missing-doc.go report", problems)
	}
}

func TestCheckUncommentedDocGo(t *testing.T) {
	root := scaffold(t, "package pkg\n", "no links here\n")
	problems, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "no package comment") {
		t.Fatalf("problems = %v, want one no-package-comment report", problems)
	}
}

// TestCheckLintRuleTable pins the handbook/analyzer cross-check in both
// directions: an analyzer missing from the table and a documented rule
// with no registered analyzer are each a problem.
func TestCheckLintRuleTable(t *testing.T) {
	root := scaffold(t, "// Package pkg does a thing.\npackage pkg\n", "no links here\n")
	var table strings.Builder
	for _, a := range lint.All() {
		if a.Name == "wallclock" {
			continue // deliberately left undocumented
		}
		fmt.Fprintf(&table, "| `%s` | what it protects |\n", a.Name)
	}
	table.WriteString("| `phantom` | a rule that was removed |\n")
	if err := os.WriteFile(filepath.Join(root, "docs", "architecture.md"),
		[]byte(table.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := checkLintRules(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want exactly 2", problems)
	}
	if !strings.Contains(problems[0], "`wallclock`") {
		t.Errorf("missing-analyzer problem not reported: %v", problems)
	}
	if !strings.Contains(problems[1], "`phantom`") {
		t.Errorf("unknown-rule problem not reported: %v", problems)
	}
}

// TestRepositoryIsClean runs the real check against the repository this
// test lives in — the same invocation as `make doc-check`.
func TestRepositoryIsClean(t *testing.T) {
	problems, err := check(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
