// Package repro reproduces Yeo & Buyya, "Integrated Risk Analysis for a
// Commercial Computing Service in Utility Computing" (IPDPS 2007): a
// discrete-event cluster simulation of seven resource management policies
// under two economic models, evaluated with the paper's separate and
// integrated risk analysis.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory); cmd/ holds the executables and examples/ the runnable
// walkthroughs. bench_test.go regenerates every table and figure of the
// paper's evaluation at benchmark scale; cmd/riskbench does so at paper
// scale.
package repro
