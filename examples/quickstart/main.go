// Quickstart: simulate one commercial computing service day-in-the-life —
// generate a workload, attach SLAs, run it under two policies, and compare
// the four objectives of the paper.
package main

import (
	"fmt"
	"log"

	"repro/internal/economy"
	"repro/internal/qos"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

func main() {
	// 1. A synthetic trace calibrated to the paper's SDSC SP2 subset.
	synth := workload.DefaultSynthConfig()
	synth.Jobs = 1000
	trace, err := workload.Generate(synth, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d jobs (mean runtime %.0f s)\n",
		len(trace), workload.Stats(trace, 128).MeanRuntime)

	// 2. Attach SLAs: deadlines, budgets, penalty rates. InaccuracyPct 100
	// keeps the (mostly over-estimated) user runtime estimates.
	q := qos.DefaultConfig(7)
	q.InaccuracyPct = 100
	if err := qos.Synthesize(trace, q); err != nil {
		log.Fatal(err)
	}

	// 3. Run the same workload under two policies on a 128-node service.
	cfg := scheduler.DefaultRunConfig(economy.Commodity)
	for _, name := range []string{"FCFS-BF", "Libra"} {
		spec, err := scheduler.SpecByName(name)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := scheduler.Run(workload.CloneAll(trace), spec.New, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%s model)\n", name, cfg.Model)
		fmt.Printf("  wait           %8.1f s\n", rep.Wait)
		fmt.Printf("  SLA            %8.2f %%\n", rep.SLA)
		fmt.Printf("  reliability    %8.2f %%\n", rep.Reliability)
		fmt.Printf("  profitability  %8.2f %%\n", rep.Profitability)
	}
}
