// Capacity planning: a utility-computing provider sizing its machine. The
// paper's intro motivates providers selling compute under SLAs; a natural
// operational question its risk analysis answers is "what is the smallest
// cluster that meets my SLA target with acceptable risk?".
//
// This example sweeps cluster sizes, runs the default workload under the
// recommended policy for each size, and reports the four objectives plus
// the a-priori risk of the integrated performance falling below a target,
// picking the smallest adequate machine.
package main

import (
	"fmt"
	"log"

	"repro/internal/economy"
	"repro/internal/experiment"
	"repro/internal/scheduler"
)

const (
	slaTarget  = 75.0 // percent of submitted jobs with SLA fulfilled
	reliTarget = 92.0
)

func main() {
	spec, err := scheduler.SpecByName("LibraRiskD")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Sizing a bid-based service run by LibraRiskD (Set B estimates).")
	fmt.Printf("Targets: SLA >= %.0f%%, reliability >= %.0f%%.\n\n", slaTarget, reliTarget)
	fmt.Printf("%7s %8s %12s %14s %12s\n", "nodes", "SLA%", "reliability%", "profitability%", "utilization%")

	chosen := 0
	// The default trace contains jobs up to 128 processors wide, so the
	// sweep starts at the machine size that can run every submitted job.
	for _, nodes := range []int{128, 160, 192, 224, 256, 320} {
		cfg := experiment.DefaultSuiteConfig(economy.BidBased, true)
		cfg.Jobs = 1500
		cfg.Nodes = nodes
		rep, err := experiment.RunCell(cfg, experiment.DefaultParams(100), spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d %8.2f %12.2f %14.2f %12.2f\n",
			nodes, rep.SLA, rep.Reliability, rep.Profitability, rep.Utilization*100)
		if chosen == 0 && rep.SLA >= slaTarget && rep.Reliability >= reliTarget {
			chosen = nodes
		}
	}
	if chosen == 0 {
		fmt.Println("\nNo swept size meets the targets; provision beyond 256 nodes or relax the SLA.")
		return
	}
	fmt.Printf("\nSmallest adequate machine: %d nodes.\n", chosen)
	fmt.Println("(Larger machines raise SLA but erode utilization — capacity the provider pays")
	fmt.Println("for without revenue; the risk analysis makes that trade-off explicit.)")
}
