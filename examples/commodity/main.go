// Commodity-market walkthrough: reproduce a small-scale version of the
// paper's Figure 5 — integrated risk analysis of all four objectives for
// the five commodity-market policies, in Set A and Set B — and print the
// risk plots plus the recommended policy for each set.
//
// The paper's result to look for: the Libra family leads when estimates
// are accurate (Set A); with the trace's inaccurate estimates (Set B) the
// backfilling policies close the gap or take over.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/economy"
	"repro/internal/experiment"
	"repro/internal/plot"
	"repro/internal/risk"
)

func main() {
	for _, setB := range []bool{false, true} {
		cfg := experiment.DefaultSuiteConfig(economy.Commodity, setB)
		cfg.Jobs = 800 // keep the example fast; cmd/riskbench runs paper scale
		assessment, err := core.Assess(cfg)
		if err != nil {
			log.Fatal(err)
		}
		series, err := assessment.Integrated(risk.AllObjectives...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(plot.ASCII(series, plot.Config{
			Title: fmt.Sprintf("Integrated risk analysis, all four objectives (%s)", cfg.SetName()),
		}))
		rec, err := assessment.Recommend()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: best overall %s (safest %s)\n", cfg.SetName(), rec.Overall, rec.OverallSafest)
		for _, obj := range risk.AllObjectives {
			fmt.Printf("  best for %-13s %s\n", obj.String()+":", rec.PerObjective[obj])
		}
		fmt.Println()
	}
}
