// Ranking walkthrough: the paper's Figure 1 / Tables II–IV worked example.
// Reconstructs the eight-policy sample risk analysis plot, prints it, then
// derives the Table II summary and the Table III/IV rankings with the
// paper's criteria (maximum performance, minimum volatility, ranges, trend
// line gradient, and point concentration as the final tie-break).
package main

import (
	"fmt"
	"log"

	"repro/internal/plot"
	"repro/internal/risk"
)

func main() {
	sample := risk.SamplePolicies()

	fmt.Println(plot.ASCII(sample, plot.Config{
		Title: "Figure 1 — sample risk analysis plot (8 policies, 5 scenarios)",
		XMax:  1.0,
	}))

	summary, err := plot.SummaryTable(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table II — performance and volatility summary:")
	fmt.Println(summary)

	perf, err := risk.RankByPerformance(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table III — ranking by best performance:")
	for _, row := range risk.RankingTable(perf, false) {
		fmt.Println(" ", row)
	}

	vol, err := risk.RankByVolatility(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable IV — ranking by best volatility:")
	for _, row := range risk.RankingTable(vol, true) {
		fmt.Println(" ", row)
	}

	fmt.Println("\nWhy each row precedes the next (Table III criteria):")
	for _, note := range risk.ExplainRanking(perf, false) {
		fmt.Println("  -", note)
	}
	fmt.Println("\nPolicy A is the ideal policy: performance 1 and volatility 0 in every scenario.")
}
