// SWF import: drive the whole pipeline from a Standard Workload Format
// trace file, the way the paper drives it from the SDSC SP2 archive trace.
// Pass a real trace (e.g. SDSC-SP2-1998-4.2-cln.swf) as the first
// argument; without one, the example writes a synthetic trace to a
// temporary file first so it is runnable out of the box.
//
//	go run ./examples/swfimport [trace.swf]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/economy"
	"repro/internal/experiment"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

func main() {
	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		path = writeSyntheticTrace()
		fmt.Printf("no trace given; wrote synthetic trace to %s\n\n", path)
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := workload.ReadSWF(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	// The paper uses the last 5000 jobs of the trace.
	subset := workload.LastN(trace, 5000)
	ts := workload.Stats(subset, 128)
	fmt.Printf("trace: %d jobs, mean inter-arrival %.0f s, mean runtime %.0f s, mean width %.1f, %.0f%% under-estimates\n\n",
		ts.Jobs, ts.MeanInterArrival, ts.MeanRuntime, ts.MeanWidth, ts.UnderEstimateFrac*100)

	// Run one cell of the evaluation on it: Set B (keep the trace's own
	// estimates), default Table VI operating point, both Libra variants.
	cfg := experiment.DefaultSuiteConfig(economy.BidBased, true)
	cfg.Trace = subset
	for _, name := range []string{"Libra", "LibraRiskD"} {
		spec, err := scheduler.SpecByName(name)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := experiment.RunCell(cfg, experiment.DefaultParams(100), spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s  SLA %6.2f%%  reliability %6.2f%%  profitability %6.2f%%\n",
			name, rep.SLA, rep.Reliability, rep.Profitability)
	}
	fmt.Println("\nLibraRiskD should match or beat Libra on reliability and profitability:")
	fmt.Println("it refuses to place jobs on nodes whose running jobs have overrun their estimates.")
}

func writeSyntheticTrace() string {
	cfg := workload.DefaultSynthConfig()
	trace, err := workload.Generate(cfg, 11)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "sdsc-sp2-synth.swf")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := workload.WriteSWF(f, trace, "synthetic SDSC-SP2-calibrated trace"); err != nil {
		log.Fatal(err)
	}
	return path
}
