// Bid-based walkthrough: the paper's second economic model, where the
// user's budget is a bid and late completion incurs an unbounded linear
// penalty (Figure 2). This example shows the penalty function itself, then
// a small-scale Figure 8 — integrated risk analysis of all four objectives
// for the five bid-based policies under inaccurate estimates (Set B).
//
// The paper's result to look for: LibraRiskD keeps the best performance
// under inaccurate estimates while plain Libra degrades; FirstReward sits
// low on performance but lowest on volatility.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/economy"
	"repro/internal/experiment"
	"repro/internal/plot"
	"repro/internal/risk"
	"repro/internal/workload"
)

func main() {
	penaltyFunction()

	cfg := experiment.DefaultSuiteConfig(economy.BidBased, true)
	cfg.Jobs = 800
	assessment, err := core.Assess(cfg)
	if err != nil {
		log.Fatal(err)
	}
	series, err := assessment.Integrated(risk.AllObjectives...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plot.ASCII(series, plot.Config{
		Title: "Bid-based model, Set B: integrated risk analysis of all four objectives",
	}))
	ranked, err := risk.RankByPerformance(series)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Ranking by best performance:")
	for _, row := range risk.RankingTable(ranked, false) {
		fmt.Println(" ", row)
	}
}

// penaltyFunction sketches Figure 2: utility against completion time for
// one job under the bid-based model.
func penaltyFunction() {
	j := &workload.Job{
		ID: 1, Submit: 0, Runtime: 3600, Estimate: 3600, Procs: 1,
		Deadline: 7200, Budget: 1000, PenaltyRate: 0.5,
	}
	fmt.Println("Figure 2 — bid-based penalty function (budget $1000, deadline 7200 s, rate $0.5/s):")
	fmt.Println("  finish(s)  utility($)")
	for _, finish := range []float64{3600, 7200, 8200, 9200, 10200, 12200} {
		u := economy.BidUtility(j, finish)
		bar := ""
		if u > 0 {
			bar = strings.Repeat("#", int(u/50))
		}
		fmt.Printf("  %8.0f  %9.0f  %s\n", finish, u, bar)
	}
	fmt.Println()
}
