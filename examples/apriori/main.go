// A-priori walkthrough: the forward use of the risk analysis the paper
// proposes in its abstract and conclusion. After measuring every policy's
// a-posteriori (performance, volatility) points, a provider facing a NEW
// situation can ask: "if next quarter looks like a scenario I haven't run,
// what is the chance each policy under-delivers?"
//
// This example assesses the bid-based policies in Set B, fits the normal
// projection to each policy's integrated series, and prints the estimated
// risk of falling below several performance targets.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/economy"
	"repro/internal/experiment"
	"repro/internal/risk"
)

func main() {
	cfg := experiment.DefaultSuiteConfig(economy.BidBased, true)
	cfg.Jobs = 800
	assessment, err := core.Assess(cfg)
	if err != nil {
		log.Fatal(err)
	}
	projections, err := assessment.APriori(risk.AllObjectives, 0.6)
	if err != nil {
		log.Fatal(err)
	}

	targets := []float64{0.5, 0.6, 0.7, 0.8}
	fmt.Println("A-priori risk of integrated performance falling below target")
	fmt.Println("(bid-based model, Set B, all four objectives, equal weights)")
	fmt.Printf("\n%-12s %8s %8s", "Policy", "mean", "spread")
	for _, tgt := range targets {
		fmt.Printf("  P(<%.1f)", tgt)
	}
	fmt.Println()
	for _, p := range projections {
		fmt.Printf("%-12s %8.3f %8.3f", p.Policy, p.Mean, p.Spread)
		for _, tgt := range targets {
			fmt.Printf("  %6.1f%%", p.RiskBelow(tgt)*100)
		}
		fmt.Println()
	}

	safest, err := risk.SafestPolicy(projections, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFor a required performance of 0.6, adopt %s (risk %.1f%%).\n",
		safest.Policy, safest.RiskBelow(0.6)*100)
}
