# Convenience targets for the reproduction. Everything is plain `go`;
# nothing here is required — see README.md for the underlying commands.

GO ?= go

.PHONY: all build vet test race cover bench fuzz results examples clean verify

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# CI gate: vet everything, then race-test the two packages with
# worker-pool concurrency (the suite runner and its observer plumbing).
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/experiment ./internal/obs

cover:
	$(GO) test -cover ./...

# One benchmark iteration per table/figure/ablation: fast sanity pass.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x ./...

fuzz:
	$(GO) test ./internal/workload/ -run FuzzReadSWF -fuzz FuzzReadSWF -fuzztime 30s

# The paper-scale evaluation: 2880 simulations, a few minutes.
results:
	$(GO) run ./cmd/riskbench -jobs 5000 -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ranking
	$(GO) run ./examples/commodity
	$(GO) run ./examples/bidbased
	$(GO) run ./examples/apriori
	$(GO) run ./examples/swfimport
	$(GO) run ./examples/capacity

clean:
	rm -rf results
