# Convenience targets for the reproduction. Everything is plain `go`;
# nothing here is required — see README.md for the underlying commands.

GO ?= go

.PHONY: all build vet test race race-hot cover bench fuzz results examples clean verify lint fmt-check

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast race pass over the two packages with worker-pool concurrency
# (the suite runner and its observer plumbing) — the inner loop of verify
# when the full -race run is too slow for the edit cycle.
race-hot:
	$(GO) test -race ./internal/experiment ./internal/obs

# Fail if any tracked Go file is not gofmt-clean. Fixtures under testdata
# are real Go source and are held to the same standard.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The determinism & correctness analyzer suite (see docs/architecture.md).
lint:
	$(GO) run ./cmd/repolint ./...

# CI gate: formatting, vet, repolint, then the full test suite under the
# race detector.
verify: fmt-check vet lint
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One benchmark iteration per table/figure/ablation: fast sanity pass.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x ./...

fuzz:
	$(GO) test ./internal/workload/ -run FuzzReadSWF -fuzz FuzzReadSWF -fuzztime 30s

# The paper-scale evaluation: 2880 simulations, a few minutes.
results:
	$(GO) run ./cmd/riskbench -jobs 5000 -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ranking
	$(GO) run ./examples/commodity
	$(GO) run ./examples/bidbased
	$(GO) run ./examples/apriori
	$(GO) run ./examples/swfimport
	$(GO) run ./examples/capacity

clean:
	rm -rf results
