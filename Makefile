# Convenience targets for the reproduction. Everything is plain `go`;
# nothing here is required — see README.md for the underlying commands.

GO ?= go

.PHONY: all build vet test race race-hot cover cover-check bench bench-capture bench-diff bench-gate doc-check fuzz fuzz-sim fuzz-broker results examples clean verify lint fmt-check serve-smoke stream-smoke slo

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fast race pass over the two packages with worker-pool concurrency
# (the suite runner and its observer plumbing) — the inner loop of verify
# when the full -race run is too slow for the edit cycle.
race-hot:
	$(GO) test -race ./internal/experiment ./internal/obs

# Fail if any tracked Go file is not gofmt-clean. Fixtures under testdata
# are real Go source and are held to the same standard.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The determinism & correctness analyzer suite (see docs/architecture.md).
# -tests includes _test.go files: test nondeterminism corrupts goldens and
# flakes the shuffled pass just as surely as production nondeterminism.
lint:
	$(GO) run ./cmd/repolint -tests ./...

# Documentation gate: every relative link in docs/*.md (and the top-level
# markdown) must resolve, and every internal/* package must carry a doc.go
# with a package comment. See cmd/doccheck.
doc-check:
	$(GO) run ./cmd/doccheck

# CI gate: formatting, vet, repolint, documentation invariants, the full
# test suite under the race detector, and a shuffled pass to catch
# inter-test order dependence.
verify: fmt-check vet lint doc-check
	$(GO) test -race ./...
	$(GO) test -shuffle=on ./...

cover:
	$(GO) test -cover ./...

# Coverage floors: the fault injector is new, heavily-relied-on code and
# must stay >= 90%; the cluster models must not regress below their
# pre-fault-injection baseline; the federation meta-broker routes every
# federated job and must stay >= 90%; the analyzer suite guards every
# other invariant and must itself stay well-covered; the service plane
# (worker API, control plane, placement ring, load generator) carries the
# migration determinism contract and floors at 85%; the streaming risk
# engine carries the live-vs-offline bit-identity contract and floors at
# 90%.
cover-check:
	@$(GO) test -cover ./internal/faults ./internal/cluster ./internal/broker ./internal/lint \
		./internal/serve ./internal/serve/control ./internal/serve/ring ./internal/load \
		./internal/streamrisk | awk ' \
		{ print } \
		$$2 ~ /internal\/faults$$/        && $$5+0 < 90 { print "FAIL: internal/faults coverage " $$5 " below 90% floor"; bad=1 } \
		$$2 ~ /internal\/cluster$$/       && $$5+0 < 95 { print "FAIL: internal/cluster coverage " $$5 " below 95% floor"; bad=1 } \
		$$2 ~ /internal\/broker$$/        && $$5+0 < 90 { print "FAIL: internal/broker coverage " $$5 " below 90% floor"; bad=1 } \
		$$2 ~ /internal\/lint$$/          && $$5+0 < 85 { print "FAIL: internal/lint coverage " $$5 " below 85% floor"; bad=1 } \
		$$2 ~ /internal\/serve$$/         && $$5+0 < 85 { print "FAIL: internal/serve coverage " $$5 " below 85% floor"; bad=1 } \
		$$2 ~ /internal\/serve\/control$$/ && $$5+0 < 85 { print "FAIL: internal/serve/control coverage " $$5 " below 85% floor"; bad=1 } \
		$$2 ~ /internal\/serve\/ring$$/   && $$5+0 < 85 { print "FAIL: internal/serve/ring coverage " $$5 " below 85% floor"; bad=1 } \
		$$2 ~ /internal\/load$$/          && $$5+0 < 85 { print "FAIL: internal/load coverage " $$5 " below 85% floor"; bad=1 } \
		$$2 ~ /internal\/streamrisk$$/    && $$5+0 < 90 { print "FAIL: internal/streamrisk coverage " $$5 " below 90% floor"; bad=1 } \
		END { exit bad }'

# One benchmark iteration per table/figure/ablation: fast sanity pass,
# then the in-process throughput probes (kernel, cluster, suite) as JSON
# on stdout via cmd/benchjson.
bench:
	$(GO) test -bench=. -benchmem -benchtime 1x ./...
	$(GO) run ./cmd/benchjson -config short

# Capture a full baseline (probes + bench_test.go suite) to OUT, and diff
# two captures against the committed trajectory. See EXPERIMENTS.md.
OUT ?= BENCH_local.json
bench-capture:
	$(GO) run ./cmd/benchjson -config short -suite -out $(OUT)

OLD ?= BENCH_PR10.json
NEW ?= BENCH_local.json
bench-diff:
	$(GO) run ./cmd/benchjson -diff $(OLD) $(NEW)

# Enforced regression gate against the committed baseline, with the
# thresholds CI uses: allocs/op is deterministic for a fixed workload so it
# gates tight (2%); ns/op is noisy on shared runners so it gates loose
# (40%). Absolute significance floors (10 ms/op timing, ½ alloc/op) are
# built into benchjson so micro-bench jitter never flakes the gate. Set
# BENCH_GATE=off to skip on known-noisy machines; see docs/performance.md
# ("The bench gate").
bench-gate:
	@if [ "$(BENCH_GATE)" = "off" ]; then \
		echo "bench-gate: BENCH_GATE=off, running informational diff only"; \
		$(GO) run ./cmd/benchjson -diff $(OLD) $(NEW); \
	else \
		$(GO) run ./cmd/benchjson -diff -gate -threshold 0.40 -alloc-threshold 0.02 $(OLD) $(NEW); \
	fi

# Service-layer smoke: boot riskserved on a loopback port, replay the
# scripted session, and compare the journal byte-for-byte against the
# committed golden (cmd/riskserved/testdata/smoke_journal.golden) — plus
# the multi-worker half: the real riskctl daemon fronting a four-worker
# fleet, the same script routed through it, and the worker-mode
# registration lifecycle; plus the serve and control packages'
# determinism-bridge, migration, and concurrent-session tests, all under
# the race detector. Regenerate the golden with
# `go test ./cmd/riskserved -run TestServeSmoke -update`.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServe' ./cmd/riskserved ./cmd/riskctl ./internal/serve
	$(GO) test -race -count=1 ./internal/serve/control

# Streaming-risk smoke: boot the real riskserved daemon, subscribe to
# /v1/risk/stream over real HTTP, drive a seeded faulted session, and
# require the streamed cumulative scores to byte-match the offline
# streamrisk recomputation of the journal the daemon wrote — plus the
# riskwatch dashboard's follow/threshold paths and the serve-layer
# stream tests (stalled-subscriber admission safety, migration
# equivalence), all under the race detector.
stream-smoke:
	$(GO) test -race -count=1 -run 'TestStreamSmoke' ./cmd/riskserved
	$(GO) test -race -count=1 ./cmd/riskwatch
	$(GO) test -race -count=1 -run 'TestRiskStream|TestRiskEndpoint|TestFleetRisk' ./internal/serve ./internal/serve/control

# Informational SLO probe: riskload against a self-hosted four-worker
# topology with a fixed seed, gated on p99 latency over all operations.
# Latency SLOs are machine-dependent, so the gate ships permissive
# (250ms p99 on a loopback fleet is an order of magnitude of headroom)
# and SLO_GATE=off downgrades violations to warnings the same way
# BENCH_GATE=off defuses the bench gate. See docs/performance.md.
slo:
	SLO_GATE=$(SLO_GATE) $(GO) run ./cmd/riskload -workers 4 -rate 50 -sessions 32 -jobs 10 -seed 1 -slo-p99 250ms -risk-stream

fuzz:
	$(GO) test ./internal/workload/ -run FuzzReadSWF -fuzz FuzzReadSWF -fuzztime 30s

# Short fuzz of the event kernel's pool/heap invariants.
fuzz-sim:
	$(GO) test ./internal/sim/ -run FuzzEngine -fuzz FuzzEngine -fuzztime 30s

# Short fuzz of the meta-broker's routing tie-break against its reference
# reimplementation (adversarial quotes: NaN, ±Inf, subnormals).
fuzz-broker:
	$(GO) test ./internal/broker/ -run FuzzBrokerRoute -fuzz FuzzBrokerRoute -fuzztime 30s

# The paper-scale evaluation: 2880 simulations, a few minutes.
results:
	$(GO) run ./cmd/riskbench -jobs 5000 -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ranking
	$(GO) run ./examples/commodity
	$(GO) run ./examples/bidbased
	$(GO) run ./examples/apriori
	$(GO) run ./examples/swfimport
	$(GO) run ./examples/capacity

clean:
	rm -rf results
