// Package qos synthesizes the utility-computing service parameters —
// deadline, budget, and penalty rate — that the SDSC trace does not carry,
// following the paper's methodology (§5.3, after Irwin et al.): two job
// classes (high and low urgency), normally distributed per-class factors, a
// high:low ratio between the class means, and a bias that tightens the
// parameters of longer-than-average jobs.
//
// It also models the inaccuracy of user runtime estimates: 0% inaccuracy
// replaces the trace estimate with the true runtime; 100% keeps the trace
// estimate; intermediate values interpolate.
package qos
