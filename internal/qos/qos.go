package qos

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Config drives QoS synthesis. A factor's class mean is drawn from
// {LowMean, LowMean × HighLowRatio}:
//
//   - deadline factor d/tr: HIGH urgency jobs use the LOW mean (tight
//     deadlines), low urgency the high mean;
//   - budget factor b/(tr·BasePrice): HIGH urgency jobs use the HIGH mean
//     (they pay more), low urgency the low mean;
//   - penalty factor pr·d/b: HIGH urgency jobs use the HIGH mean.
type Config struct {
	// HighUrgencyFrac is the fraction of jobs in the high-urgency class.
	HighUrgencyFrac float64

	// Deadline, Budget, Penalty each define a synthesized parameter.
	Deadline, Budget, Penalty Param

	// BasePrice is the commodity base price in dollars per second of
	// processor time; budgets are multiples of the job's base cost
	// tr·Procs·BasePrice... the paper charges per job second at $1/s per
	// job (PBase $1/s), so budgets here are multiples of tr·BasePrice.
	BasePrice float64

	// InaccuracyPct is the percentage of runtime-estimate inaccuracy:
	// 0 makes estimates exact, 100 keeps the trace estimates.
	InaccuracyPct float64

	// Seed drives the per-job random draws.
	Seed int64
}

// Param configures one synthesized parameter.
type Param struct {
	// LowMean is the mean of the low-value class (Table VI's "low-value
	// mean" column).
	LowMean float64
	// HighLowRatio is the ratio of the high-value mean to the low-value
	// mean (Table VI's "high:low ratio").
	HighLowRatio float64
	// Bias divides the parameter for longer-than-average jobs and
	// multiplies it for shorter ones (Table VI's "bias").
	Bias float64
	// CVFrac is the per-draw normal standard deviation as a fraction of the
	// class mean. The paper states values are normally distributed within
	// each parameter; 0.25 is used throughout this reproduction.
	CVFrac float64
}

// DefaultConfig returns the Table VI default operating point used by every
// scenario except the one that varies it: 20% high-urgency jobs, bias 2,
// high:low ratio 4, low-value mean 4, base price $1/s (see DESIGN.md for
// the defaults-recovery note).
func DefaultConfig(seed int64) Config {
	p := Param{LowMean: 4, HighLowRatio: 4, Bias: 2, CVFrac: 0.25}
	return Config{
		HighUrgencyFrac: 0.20,
		Deadline:        p,
		Budget:          p,
		Penalty:         p,
		BasePrice:       1.0,
		InaccuracyPct:   0,
		Seed:            seed,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.HighUrgencyFrac < 0 || c.HighUrgencyFrac > 1 {
		return fmt.Errorf("qos: high urgency fraction %v outside [0,1]", c.HighUrgencyFrac)
	}
	if c.BasePrice <= 0 {
		return fmt.Errorf("qos: non-positive base price %v", c.BasePrice)
	}
	if c.InaccuracyPct < 0 || c.InaccuracyPct > 100 {
		return fmt.Errorf("qos: inaccuracy %v%% outside [0,100]", c.InaccuracyPct)
	}
	// Ordered, not a map: the first failing parameter decides the error
	// message, which must be stable across runs.
	for _, e := range []struct {
		name string
		p    Param
	}{{"deadline", c.Deadline}, {"budget", c.Budget}, {"penalty", c.Penalty}} {
		name, p := e.name, e.p
		if p.LowMean <= 0 {
			return fmt.Errorf("qos: %s low-value mean %v <= 0", name, p.LowMean)
		}
		if p.HighLowRatio < 1 {
			return fmt.Errorf("qos: %s high:low ratio %v < 1", name, p.HighLowRatio)
		}
		if p.Bias < 1 {
			return fmt.Errorf("qos: %s bias %v < 1", name, p.Bias)
		}
		if p.CVFrac < 0 || p.CVFrac >= 1 {
			return fmt.Errorf("qos: %s CV fraction %v outside [0,1)", name, p.CVFrac)
		}
	}
	return nil
}

// Synthesize fills the Deadline, Budget, PenaltyRate, and HighUrgency
// fields of every job in place, and rewrites Estimate according to
// InaccuracyPct. Jobs must already carry valid trace shape fields.
func Synthesize(jobs []*workload.Job, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	rng := stats.NewRand(cfg.Seed)
	meanRuntime := 0.0
	for _, j := range jobs {
		meanRuntime += j.Runtime
	}
	if len(jobs) > 0 {
		meanRuntime /= float64(len(jobs))
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		high := stats.Choice(rng, cfg.HighUrgencyFrac)
		j.HighUrgency = high
		long := j.Runtime > meanRuntime

		// Deadline: high urgency draws from the LOW mean. The factor
		// multiplies the actual runtime (the paper's d_i/tr_i), so the
		// deadline is always feasible in principle; over-estimation then
		// makes admission controls reject feasible jobs, which is exactly
		// the Set B effect the paper studies.
		df := drawFactor(rng, cfg.Deadline, !high, long)
		j.Deadline = math.Max(1.05, df) * j.Runtime

		// Budget: high urgency draws from the HIGH mean. f(tr) = tr·PBase.
		bf := drawFactor(rng, cfg.Budget, high, long)
		j.Budget = math.Max(0.1, bf) * j.Runtime * cfg.BasePrice

		// Penalty rate: high urgency draws from the HIGH mean. g scaled so
		// a delay of d/pf erases the whole budget.
		pf := drawFactor(rng, cfg.Penalty, high, long)
		j.PenaltyRate = math.Max(0, pf) * j.Budget / j.Deadline

		applyInaccuracy(j, cfg.InaccuracyPct)
	}
	return nil
}

// drawFactor samples one parameter factor: pick the class mean (high or low
// value), sample a truncated normal around it, then apply the long-job bias.
func drawFactor(rng *stats.Rng, p Param, highValue, longJob bool) float64 {
	mean := p.LowMean
	if highValue {
		mean *= p.HighLowRatio
	}
	sd := mean * p.CVFrac
	v := stats.TruncNormal(rng, mean, sd, mean-3*sd, mean+3*sd)
	if longJob {
		v /= p.Bias
	} else {
		v *= p.Bias
	}
	return v
}

// applyInaccuracy interpolates the user estimate between the true runtime
// (0%) and the trace estimate (100%), keeping the result positive. The
// deadline has already been expressed against the estimate the admission
// control will see, so it is not rewritten here.
func applyInaccuracy(j *workload.Job, pct float64) {
	traceEst := j.Estimate
	j.Estimate = math.Max(1, j.Runtime+(pct/100)*(traceEst-j.Runtime))
}
