package qos

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func trace(t *testing.T, n int, seed int64) []*workload.Job {
	t.Helper()
	cfg := workload.DefaultSynthConfig()
	cfg.Jobs = n
	jobs, err := workload.Generate(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestSynthesizeFillsQoS(t *testing.T) {
	jobs := trace(t, 500, 1)
	if err := Synthesize(jobs, DefaultConfig(2)); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if !j.HasQoS() {
			t.Fatalf("job %d missing QoS: %+v", j.ID, *j)
		}
		if j.Deadline < 1.05*j.Runtime {
			t.Errorf("job %d deadline %v below 1.05×runtime %v", j.ID, j.Deadline, j.Runtime)
		}
		if j.PenaltyRate < 0 {
			t.Errorf("job %d negative penalty rate", j.ID)
		}
	}
}

func TestHighUrgencyFraction(t *testing.T) {
	jobs := trace(t, 4000, 3)
	cfg := DefaultConfig(4)
	cfg.HighUrgencyFrac = 0.4
	if err := Synthesize(jobs, cfg); err != nil {
		t.Fatal(err)
	}
	high := 0
	for _, j := range jobs {
		if j.HighUrgency {
			high++
		}
	}
	frac := float64(high) / float64(len(jobs))
	if math.Abs(frac-0.4) > 0.03 {
		t.Errorf("high urgency fraction = %v, want ~0.4", frac)
	}
}

// High urgency jobs must have tighter deadlines, larger budgets, and larger
// penalty rates than low urgency jobs on average (paper §5.3).
func TestClassSeparation(t *testing.T) {
	jobs := trace(t, 4000, 5)
	cfg := DefaultConfig(6)
	cfg.HighUrgencyFrac = 0.5
	if err := Synthesize(jobs, cfg); err != nil {
		t.Fatal(err)
	}
	var hd, ld, hb, lb, hp, lp []float64
	for _, j := range jobs {
		dlFactor := j.Deadline / j.Runtime
		bFactor := j.Budget / j.Runtime
		pFactor := j.PenaltyRate * j.Deadline / j.Budget
		if j.HighUrgency {
			hd = append(hd, dlFactor)
			hb = append(hb, bFactor)
			hp = append(hp, pFactor)
		} else {
			ld = append(ld, dlFactor)
			lb = append(lb, bFactor)
			lp = append(lp, pFactor)
		}
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(hd) >= mean(ld) {
		t.Errorf("high urgency deadline factor %v not below low urgency %v", mean(hd), mean(ld))
	}
	if mean(hb) <= mean(lb) {
		t.Errorf("high urgency budget factor %v not above low urgency %v", mean(hb), mean(lb))
	}
	if mean(hp) <= mean(lp) {
		t.Errorf("high urgency penalty factor %v not above low urgency %v", mean(hp), mean(lp))
	}
	// Ratio of class means should approximate the configured 4:1 ratio.
	if r := mean(ld) / mean(hd); r < 2.5 || r > 6 {
		t.Errorf("deadline high:low ratio = %v, want ~4", r)
	}
}

// Bias must tighten parameters of longer-than-average jobs relative to
// shorter ones within the same class.
func TestBiasDirection(t *testing.T) {
	jobs := trace(t, 4000, 7)
	cfg := DefaultConfig(8)
	cfg.HighUrgencyFrac = 0 // single class isolates the bias effect
	cfg.Deadline.Bias = 4
	if err := Synthesize(jobs, cfg); err != nil {
		t.Fatal(err)
	}
	meanRuntime := 0.0
	for _, j := range jobs {
		meanRuntime += j.Runtime
	}
	meanRuntime /= float64(len(jobs))
	var long, short []float64
	for _, j := range jobs {
		f := j.Deadline / j.Runtime
		if j.Runtime > meanRuntime {
			long = append(long, f)
		} else {
			short = append(short, f)
		}
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(long) >= mean(short) {
		t.Errorf("long jobs deadline factor %v not below short jobs %v", mean(long), mean(short))
	}
}

func TestInaccuracyZeroMakesEstimatesExact(t *testing.T) {
	jobs := trace(t, 300, 9)
	cfg := DefaultConfig(10)
	cfg.InaccuracyPct = 0
	if err := Synthesize(jobs, cfg); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Estimate != math.Max(1, j.Runtime) {
			t.Fatalf("job %d estimate %v != runtime %v at 0%% inaccuracy", j.ID, j.Estimate, j.Runtime)
		}
	}
}

func TestInaccuracyHundredKeepsTraceEstimates(t *testing.T) {
	jobs := trace(t, 300, 11)
	orig := make([]float64, len(jobs))
	for i, j := range jobs {
		orig[i] = j.Estimate
	}
	cfg := DefaultConfig(12)
	cfg.InaccuracyPct = 100
	if err := Synthesize(jobs, cfg); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if j.Estimate != orig[i] {
			t.Fatalf("job %d estimate changed at 100%% inaccuracy: %v -> %v", j.ID, orig[i], j.Estimate)
		}
	}
}

func TestInaccuracyInterpolates(t *testing.T) {
	jobs := trace(t, 300, 13)
	type pair struct{ runtime, est float64 }
	orig := make([]pair, len(jobs))
	for i, j := range jobs {
		orig[i] = pair{j.Runtime, j.Estimate}
	}
	cfg := DefaultConfig(14)
	cfg.InaccuracyPct = 50
	if err := Synthesize(jobs, cfg); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		want := math.Max(1, orig[i].runtime+0.5*(orig[i].est-orig[i].runtime))
		if math.Abs(j.Estimate-want) > 1e-9 {
			t.Fatalf("job %d estimate %v, want %v", j.ID, j.Estimate, want)
		}
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.HighUrgencyFrac = -0.1 },
		func(c *Config) { c.HighUrgencyFrac = 1.1 },
		func(c *Config) { c.BasePrice = 0 },
		func(c *Config) { c.InaccuracyPct = -5 },
		func(c *Config) { c.InaccuracyPct = 150 },
		func(c *Config) { c.Deadline.LowMean = 0 },
		func(c *Config) { c.Budget.HighLowRatio = 0.5 },
		func(c *Config) { c.Penalty.Bias = 0.5 },
		func(c *Config) { c.Deadline.CVFrac = 1.5 },
	}
	for i, m := range mut {
		cfg := DefaultConfig(1)
		m(&cfg)
		if err := Synthesize(nil, cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSynthesizeRejectsInvalidJob(t *testing.T) {
	bad := []*workload.Job{{ID: 1, Runtime: 0, Estimate: 1, Procs: 1}}
	if err := Synthesize(bad, DefaultConfig(1)); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	a := trace(t, 200, 20)
	b := trace(t, 200, 20)
	if err := Synthesize(a, DefaultConfig(21)); err != nil {
		t.Fatal(err)
	}
	if err := Synthesize(b, DefaultConfig(21)); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("same seed produced different QoS for job %d", i)
		}
	}
}

// Budgets scale with the budget low-value mean: doubling the mean should
// roughly double mean budget.
func TestBudgetScalesWithMean(t *testing.T) {
	mean := func(seed int64, lowMean float64) float64 {
		jobs := trace(t, 1000, 30)
		cfg := DefaultConfig(seed)
		cfg.Budget.LowMean = lowMean
		if err := Synthesize(jobs, cfg); err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, j := range jobs {
			s += j.Budget / j.Runtime
		}
		return s / float64(len(jobs))
	}
	m4 := mean(31, 4)
	m8 := mean(31, 8)
	if r := m8 / m4; r < 1.7 || r > 2.3 {
		t.Errorf("budget mean ratio = %v, want ~2", r)
	}
}

// TestValidateErrorOrderStable pins the determinism contract on Validate:
// when several parameters are invalid at once, the reported error is the
// first in the documented deadline, budget, penalty order — never a
// map-iteration-dependent pick (the bug class repolint's maporder rule
// guards against).
func TestValidateErrorOrderStable(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Deadline.LowMean = 0
	cfg.Budget.LowMean = 0
	cfg.Penalty.LowMean = 0
	want := "qos: deadline low-value mean 0 <= 0"
	for i := 0; i < 100; i++ {
		err := cfg.Validate()
		if err == nil {
			t.Fatal("invalid config accepted")
		}
		if err.Error() != want {
			t.Fatalf("iteration %d: error %q, want %q", i, err, want)
		}
	}
}
