package risk

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Interval is a bootstrap confidence interval for one separate-analysis
// measure.
type Interval struct {
	Low, High float64
}

// BootstrapResult carries percentile intervals for a scenario's
// performance and volatility estimates. With only six values per scenario
// the intervals are wide — which is itself useful information the paper's
// point estimates hide.
type BootstrapResult struct {
	Point       Point
	Performance Interval
	Volatility  Interval
}

// Bootstrap resamples the scenario's normalized results with replacement
// and returns ~(1−2α) percentile intervals for the separate risk analysis
// measures. Deterministic for a given seed.
func Bootstrap(normalized []float64, resamples int, alpha float64, seed int64) (BootstrapResult, error) {
	point, err := Separate(normalized)
	if err != nil {
		return BootstrapResult{}, err
	}
	if resamples < 10 {
		return BootstrapResult{}, fmt.Errorf("risk: %d bootstrap resamples, want >= 10", resamples)
	}
	if alpha <= 0 || alpha >= 0.5 {
		return BootstrapResult{}, fmt.Errorf("risk: bootstrap alpha %v outside (0, 0.5)", alpha)
	}
	rng := stats.NewRand(seed)
	perf := make([]float64, resamples)
	vol := make([]float64, resamples)
	sample := make([]float64, len(normalized))
	for r := 0; r < resamples; r++ {
		for i := range sample {
			sample[i] = normalized[rng.Intn(len(normalized))]
		}
		perf[r] = stats.Mean(sample)
		vol[r] = stats.StdDev(sample)
	}
	sort.Float64s(perf)
	sort.Float64s(vol)
	lo := int(alpha * float64(resamples))
	hi := int((1 - alpha) * float64(resamples))
	if hi >= resamples {
		hi = resamples - 1
	}
	return BootstrapResult{
		Point:       point,
		Performance: Interval{Low: perf[lo], High: perf[hi]},
		Volatility:  Interval{Low: vol[lo], High: vol[hi]},
	}, nil
}

// MostVolatileScenario returns the index and label of the series' point
// with the highest volatility — the scenario that drives the policy's risk
// the hardest, the attribution a provider reads off a risk plot.
func MostVolatileScenario(s Series) (int, string, error) {
	if len(s.Points) == 0 {
		return 0, "", fmt.Errorf("risk: volatility attribution over empty series %q", s.Policy)
	}
	best := 0
	for i, p := range s.Points {
		if p.Volatility > s.Points[best].Volatility {
			best = i
		}
	}
	return best, s.Label(best), nil
}
