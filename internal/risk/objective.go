package risk

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// Objective identifies one of the four objectives of Table I.
type Objective int

const (
	// Wait is "manage wait time for SLA acceptance" (Eq. 1).
	Wait Objective = iota
	// SLA is "meet SLA requests" (Eq. 2).
	SLA
	// Reliability is "ensure reliability of accepted SLA" (Eq. 3).
	Reliability
	// Profitability is "attain profitability" (Eq. 4).
	Profitability

	// NumObjectives is the number of objectives.
	NumObjectives = 4
)

// AllObjectives lists the objectives in the paper's order.
var AllObjectives = []Objective{Wait, SLA, Reliability, Profitability}

// String returns the paper's abbreviation for the objective.
func (o Objective) String() string {
	switch o {
	case Wait:
		return "wait"
	case SLA:
		return "SLA"
	case Reliability:
		return "reliability"
	case Profitability:
		return "profitability"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ObjectiveByName parses an objective abbreviation.
func ObjectiveByName(name string) (Objective, error) {
	for _, o := range AllObjectives {
		if o.String() == name {
			return o, nil
		}
	}
	return 0, fmt.Errorf("risk: unknown objective %q", name)
}

// Raw extracts the raw value of an objective from a simulation report:
// seconds for wait, percentages for the rest.
func Raw(o Objective, r metrics.Report) float64 {
	switch o {
	case Wait:
		return r.Wait
	case SLA:
		return r.SLA
	case Reliability:
		return r.Reliability
	case Profitability:
		return r.Profitability
	default:
		panic(fmt.Sprintf("risk: unknown objective %d", int(o)))
	}
}

// NormalizeAcross converts raw objective values for a set of policies at
// one scenario point into normalized results in [0,1] (0 = worst, 1 =
// best). Percentages divide by 100 (profitability is clamped: bid-based
// penalties can drive it negative). Wait, which is unbounded and
// lower-is-better, is normalized relative to the worst wait among the
// policies under comparison: 1 − wait/maxWait, and 1 for everyone when all
// waits are zero (see DESIGN.md, substitution 3).
func NormalizeAcross(o Objective, raw map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(raw))
	if o != Wait {
		for k, v := range raw {
			out[k] = stats.Clamp(v/100, 0, 1)
		}
		return out
	}
	max := 0.0
	for _, v := range raw {
		if v > max {
			max = v
		}
	}
	for k, v := range raw {
		if max == 0 { //lint:allow floateq — exact-zero guard: max of non-negative raws is 0 iff all are 0
			out[k] = 1
			continue
		}
		out[k] = stats.Clamp(1-v/max, 0, 1)
	}
	return out
}
