package risk

// SamplePolicies reconstructs the eight-policy, five-scenario sample risk
// analysis plot of Figure 1. The paper gives the per-policy extrema (Table
// II), the trend-line gradients (Tables III–IV), and the qualitative point
// layout ("four of five points for policy C are near its maximum
// performance of 0.7 and minimum volatility of 0.3, compared to the evenly
// distributed points for policy D"); these series satisfy all of those
// constraints.
func SamplePolicies() []Series {
	return []Series{
		// A: the ideal policy — identical best points, no trend line.
		{Policy: "A", Points: []Point{
			{1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {1.0, 0.0},
		}},
		// B: constant performance 0.9, volatility 0.3–0.6 (zero gradient).
		{Policy: "B", Points: []Point{
			{0.9, 0.30}, {0.9, 0.375}, {0.9, 0.45}, {0.9, 0.525}, {0.9, 0.60},
		}},
		// C: decreasing gradient, concentrated near (vol 0.3, perf 0.7).
		{Policy: "C", Points: []Point{
			{0.70, 0.30}, {0.69, 0.35}, {0.68, 0.40}, {0.67, 0.45}, {0.20, 1.0},
		}},
		// D: decreasing gradient, evenly spread over the same extrema.
		{Policy: "D", Points: []Point{
			{0.70, 0.30}, {0.575, 0.475}, {0.45, 0.65}, {0.325, 0.825}, {0.20, 1.0},
		}},
		// E: decreasing gradient with tight ranges (perf 0.5–0.7, vol
		// 0.1–0.3).
		{Policy: "E", Points: []Point{
			{0.70, 0.10}, {0.65, 0.15}, {0.60, 0.20}, {0.55, 0.25}, {0.50, 0.30},
		}},
		// F: increasing gradient, perf 0.2–0.7, vol 0.3–0.7.
		{Policy: "F", Points: []Point{
			{0.20, 0.30}, {0.325, 0.40}, {0.45, 0.50}, {0.575, 0.60}, {0.70, 0.70},
		}},
		// G: increasing gradient, perf 0.4–0.7, vol 0.3–1.0.
		{Policy: "G", Points: []Point{
			{0.40, 0.30}, {0.475, 0.475}, {0.55, 0.65}, {0.625, 0.825}, {0.70, 1.0},
		}},
		// H: increasing gradient, perf 0.2–0.7, vol 0.3–1.0.
		{Policy: "H", Points: []Point{
			{0.20, 0.30}, {0.325, 0.475}, {0.45, 0.65}, {0.575, 0.825}, {0.70, 1.0},
		}},
	}
}
