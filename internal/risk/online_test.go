package risk

import (
	"math"
	"math/rand"
	"testing"
)

// pointBitsEqual compares two points bit for bit — stricter than ==, which
// would conflate 0 and −0 and reject equal NaNs.
func pointBitsEqual(a, b Point) bool {
	return math.Float64bits(a.Performance) == math.Float64bits(b.Performance) &&
		math.Float64bits(a.Volatility) == math.Float64bits(b.Volatility)
}

func TestScoreSumsBitIdenticalToSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		xs := make([]float64, n)
		var s ScoreSums
		for i := range xs {
			xs[i] = rng.Float64()
			s.Add(xs[i])
		}
		want, err := Separate(xs)
		if err != nil {
			t.Fatalf("trial %d: Separate: %v", trial, err)
		}
		if got := s.Point(); !pointBitsEqual(got, want) {
			t.Fatalf("trial %d (n=%d): ScoreSums.Point = %#v, Separate = %#v — not bit-identical",
				trial, n, got, want)
		}
	}
}

func TestScoreSumsGuards(t *testing.T) {
	var s ScoreSums
	if got := s.Point(); got != (Point{}) {
		t.Fatalf("empty Point = %#v, want zero", got)
	}
	s.Add(0.5)
	if got := s.Point(); got.Performance != 0.5 || got.Volatility != 0 {
		t.Fatalf("single-sample Point = %#v, want {0.5 0}", got)
	}
	// Identical samples: v = sumsq/n − mean² can round to a tiny negative;
	// the guard must keep Volatility finite and non-negative.
	var id ScoreSums
	for i := 0; i < 7; i++ {
		id.Add(0.1)
	}
	if got := id.Point(); math.IsNaN(got.Volatility) || got.Volatility < 0 {
		t.Fatalf("identical-sample Volatility = %v, want >= 0", got.Volatility)
	}
}

func TestIntegrateEqualBitIdenticalToIntegrate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		for _, k := range []int{1, 2, 3, 4} {
			objs := make([]Objective, k)
			pts := make(map[Objective]Point, k)
			ordered := make([]Point, k)
			for i := 0; i < k; i++ {
				objs[i] = Objective(i)
				p := Point{Performance: rng.Float64(), Volatility: rng.Float64()}
				pts[objs[i]] = p
				ordered[i] = p
			}
			want, err := Integrate(pts, EqualWeights(objs))
			if err != nil {
				t.Fatalf("Integrate: %v", err)
			}
			if got := IntegrateEqual(ordered); !pointBitsEqual(got, want) {
				t.Fatalf("trial %d k=%d: IntegrateEqual = %#v, Integrate = %#v — not bit-identical",
					trial, k, got, want)
			}
		}
	}
}

func TestIntegrateEqualEmpty(t *testing.T) {
	if got := IntegrateEqual(nil); got != (Point{}) {
		t.Fatalf("IntegrateEqual(nil) = %#v, want zero", got)
	}
}
