package risk

import "fmt"

// criterion is one comparison step of the paper's ranking procedures.
type criterion struct {
	name string
	// cmp returns <0 if a ranks better, >0 if b does, 0 to continue.
	cmp func(a, b Ranked) int
}

func performanceCriteria() []criterion {
	return []criterion{
		{"maximum performance", func(a, b Ranked) int { return cmp(b.MaxPerformance, a.MaxPerformance) }},
		{"minimum volatility", func(a, b Ranked) int { return cmp(a.MinVolatility, b.MinVolatility) }},
		{"performance difference", func(a, b Ranked) int { return cmp(a.PerformanceDifference, b.PerformanceDifference) }},
		{"volatility difference", func(a, b Ranked) int { return cmp(a.VolatilityDifference, b.VolatilityDifference) }},
		{"trend-line gradient", func(a, b Ranked) int { return gradientPreference(a.Gradient) - gradientPreference(b.Gradient) }},
		{"point concentration", func(a, b Ranked) int { return cmp(a.Concentration, b.Concentration) }},
	}
}

func volatilityCriteria() []criterion {
	return []criterion{
		{"minimum volatility", func(a, b Ranked) int { return cmp(a.MinVolatility, b.MinVolatility) }},
		{"maximum performance", func(a, b Ranked) int { return cmp(b.MaxPerformance, a.MaxPerformance) }},
		{"volatility difference", func(a, b Ranked) int { return cmp(a.VolatilityDifference, b.VolatilityDifference) }},
		{"performance difference", func(a, b Ranked) int { return cmp(a.PerformanceDifference, b.PerformanceDifference) }},
		{"trend-line gradient", func(a, b Ranked) int { return gradientPreference(a.Gradient) - gradientPreference(b.Gradient) }},
		{"point concentration", func(a, b Ranked) int { return cmp(a.Concentration, b.Concentration) }},
	}
}

// Explain states which criterion of the given ranking procedure decides
// the order between two ranked policies — the sentence a report prints
// next to a Table III/IV row ("C precedes D on point concentration").
// byVolatility selects Table IV's criteria order; otherwise Table III's.
func Explain(a, b Ranked, byVolatility bool) string {
	criteria := performanceCriteria()
	if byVolatility {
		criteria = volatilityCriteria()
	}
	for _, c := range criteria {
		switch v := c.cmp(a, b); {
		case v < 0:
			return fmt.Sprintf("%s precedes %s on %s", a.Series.Policy, b.Series.Policy, c.name)
		case v > 0:
			return fmt.Sprintf("%s precedes %s on %s", b.Series.Policy, a.Series.Policy, c.name)
		}
	}
	return fmt.Sprintf("%s and %s tie on every criterion", a.Series.Policy, b.Series.Policy)
}

// ExplainRanking annotates a full ranking: for each adjacent pair, the
// deciding criterion.
func ExplainRanking(ranked []Ranked, byVolatility bool) []string {
	if len(ranked) < 2 {
		return nil
	}
	out := make([]string, 0, len(ranked)-1)
	for i := 0; i+1 < len(ranked); i++ {
		out = append(out, Explain(ranked[i], ranked[i+1], byVolatility))
	}
	return out
}
