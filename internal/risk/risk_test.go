package risk

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func TestObjectiveNames(t *testing.T) {
	want := []string{"wait", "SLA", "reliability", "profitability"}
	for i, o := range AllObjectives {
		if o.String() != want[i] {
			t.Errorf("objective %d String() = %q, want %q", i, o.String(), want[i])
		}
		back, err := ObjectiveByName(want[i])
		if err != nil || back != o {
			t.Errorf("ObjectiveByName(%q) = %v, %v", want[i], back, err)
		}
	}
	if _, err := ObjectiveByName("nope"); err == nil {
		t.Error("unknown objective name accepted")
	}
	if len(AllObjectives) != NumObjectives {
		t.Errorf("AllObjectives has %d entries, want %d", len(AllObjectives), NumObjectives)
	}
}

func TestRawExtraction(t *testing.T) {
	r := metrics.Report{Wait: 12, SLA: 34, Reliability: 56, Profitability: 78}
	if Raw(Wait, r) != 12 || Raw(SLA, r) != 34 || Raw(Reliability, r) != 56 || Raw(Profitability, r) != 78 {
		t.Error("Raw extracted wrong fields")
	}
}

func TestNormalizePercentages(t *testing.T) {
	raw := map[string]float64{"a": 0, "b": 50, "c": 100, "d": -20, "e": 130}
	got := NormalizeAcross(SLA, raw)
	want := map[string]float64{"a": 0, "b": 0.5, "c": 1, "d": 0, "e": 1}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-12 {
			t.Errorf("normalized[%q] = %v, want %v", k, got[k], w)
		}
	}
}

func TestNormalizeWait(t *testing.T) {
	raw := map[string]float64{"libra": 0, "fcfs": 100, "edf": 200}
	got := NormalizeAcross(Wait, raw)
	if got["libra"] != 1 {
		t.Errorf("zero wait normalized to %v, want 1", got["libra"])
	}
	if got["edf"] != 0 {
		t.Errorf("worst wait normalized to %v, want 0", got["edf"])
	}
	if got["fcfs"] != 0.5 {
		t.Errorf("mid wait normalized to %v, want 0.5", got["fcfs"])
	}
	// All-zero waits: everyone ideal.
	got = NormalizeAcross(Wait, map[string]float64{"a": 0, "b": 0})
	if got["a"] != 1 || got["b"] != 1 {
		t.Errorf("all-zero waits normalized to %v", got)
	}
}

// Property: every normalized value is within [0,1] for any input.
func TestNormalizeRangeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		raw := map[string]float64{}
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			raw[string(rune('a'+i%26))+string(rune('0'+i/26))] = math.Abs(math.Mod(v, 1e6))
		}
		for _, o := range AllObjectives {
			//lint:allow maporder — all-elements range predicate; early return is order-insensitive
			for _, n := range NormalizeAcross(o, raw) {
				if n < 0 || n > 1 || math.IsNaN(n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeparate(t *testing.T) {
	p, err := Separate([]float64{0.2, 0.4, 0.6, 0.8, 1.0, 0.0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Performance-0.5) > 1e-12 {
		t.Errorf("performance = %v, want 0.5", p.Performance)
	}
	// Population stddev of {0.2,0.4,0.6,0.8,1.0,0.0}.
	want := math.Sqrt((0.04+0.16+0.36+0.64+1.0+0.0)/6 - 0.25)
	if math.Abs(p.Volatility-want) > 1e-12 {
		t.Errorf("volatility = %v, want %v", p.Volatility, want)
	}
}

func TestSeparateErrors(t *testing.T) {
	if _, err := Separate(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Separate([]float64{1.5}); err == nil {
		t.Error("out-of-range input accepted")
	}
	if _, err := Separate([]float64{math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestEqualWeights(t *testing.T) {
	w3 := EqualWeights([]Objective{Wait, SLA, Reliability})
	if math.Abs(w3[Wait]-1.0/3) > 1e-12 {
		t.Errorf("three-objective weight = %v, want 1/3", w3[Wait])
	}
	if err := w3.Validate(); err != nil {
		t.Error(err)
	}
	w4 := EqualWeights(AllObjectives)
	if w4[Profitability] != 0.25 {
		t.Errorf("four-objective weight = %v, want 0.25", w4[Profitability])
	}
}

func TestWeightsValidate(t *testing.T) {
	if err := (Weights{Wait: 0.5, SLA: 0.6}).Validate(); err == nil {
		t.Error("weights summing to 1.1 accepted")
	}
	if err := (Weights{Wait: -0.5, SLA: 1.5}).Validate(); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestIntegrate(t *testing.T) {
	points := map[Objective]Point{
		Wait:          {Performance: 1.0, Volatility: 0.0},
		SLA:           {Performance: 0.5, Volatility: 0.2},
		Profitability: {Performance: 0.2, Volatility: 0.4},
	}
	w := Weights{Wait: 0.5, SLA: 0.25, Profitability: 0.25}
	got, err := Integrate(points, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Performance-(0.5+0.125+0.05)) > 1e-12 {
		t.Errorf("performance = %v", got.Performance)
	}
	if math.Abs(got.Volatility-(0.05+0.1)) > 1e-12 {
		t.Errorf("volatility = %v", got.Volatility)
	}
}

func TestIntegrateErrors(t *testing.T) {
	if _, err := Integrate(nil, Weights{}); err == nil {
		t.Error("empty integration accepted")
	}
	if _, err := Integrate(map[Objective]Point{}, Weights{Wait: 1}); err == nil {
		t.Error("missing objective point accepted")
	}
	if _, err := Integrate(map[Objective]Point{Wait: {}}, Weights{Wait: 0.5}); err == nil {
		t.Error("weights not summing to 1 accepted")
	}
}

// Table II: the summaries of the reconstructed Figure 1 sample must match
// the paper's values exactly.
func TestTableIISampleSummary(t *testing.T) {
	want := map[string][6]float64{
		// maxPerf, minPerf, perfDiff, maxVol, minVol, volDiff
		"A": {1.0, 1.0, 0.0, 0.0, 0.0, 0.0},
		"B": {0.9, 0.9, 0.0, 0.6, 0.3, 0.3},
		"C": {0.7, 0.2, 0.5, 1.0, 0.3, 0.7},
		"D": {0.7, 0.2, 0.5, 1.0, 0.3, 0.7},
		"E": {0.7, 0.5, 0.2, 0.3, 0.1, 0.2},
		"F": {0.7, 0.2, 0.5, 0.7, 0.3, 0.4},
		"G": {0.7, 0.4, 0.3, 1.0, 0.3, 0.7},
		"H": {0.7, 0.2, 0.5, 1.0, 0.3, 0.7},
	}
	for _, s := range SamplePolicies() {
		sum, err := Summarize(s)
		if err != nil {
			t.Fatal(err)
		}
		w := want[s.Policy]
		got := [6]float64{
			sum.MaxPerformance, sum.MinPerformance, sum.PerformanceDifference,
			sum.MaxVolatility, sum.MinVolatility, sum.VolatilityDifference,
		}
		for i := range w {
			if math.Abs(got[i]-w[i]) > 1e-9 {
				t.Errorf("policy %s summary[%d] = %v, want %v", s.Policy, i, got[i], w[i])
			}
		}
	}
}

// The sample gradients must match Tables III/IV.
func TestSampleGradients(t *testing.T) {
	want := map[string]Gradient{
		"A": GradientNA,
		"B": GradientZero,
		"C": GradientDecreasing,
		"D": GradientDecreasing,
		"E": GradientDecreasing,
		"F": GradientIncreasing,
		"G": GradientIncreasing,
		"H": GradientIncreasing,
	}
	for _, s := range SamplePolicies() {
		if g := TrendGradient(s); g != want[s.Policy] {
			t.Errorf("policy %s gradient = %v, want %v", s.Policy, g, want[s.Policy])
		}
	}
}

// Table III: ranking by best performance. The paper's own criteria order
// the policies A, B, E, G, F, C, D, H (its rank column swaps E and G
// against its stated criteria — see EXPERIMENTS.md).
func TestTableIIIRankByPerformance(t *testing.T) {
	ranked, err := RankByPerformance(SamplePolicies())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A", "B", "E", "G", "F", "C", "D", "H"}
	for i, w := range want {
		if ranked[i].Series.Policy != w {
			got := make([]string, len(ranked))
			for k, r := range ranked {
				got[k] = r.Series.Policy
			}
			t.Fatalf("performance ranking = %v, want %v", got, want)
		}
		if ranked[i].Rank != i+1 {
			t.Errorf("rank field = %d, want %d", ranked[i].Rank, i+1)
		}
	}
}

// Table IV: ranking by best volatility — matches the paper exactly:
// A, E, B, F, G, C, D, H.
func TestTableIVRankByVolatility(t *testing.T) {
	ranked, err := RankByVolatility(SamplePolicies())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A", "E", "B", "F", "G", "C", "D", "H"}
	for i, w := range want {
		if ranked[i].Series.Policy != w {
			got := make([]string, len(ranked))
			for k, r := range ranked {
				got[k] = r.Series.Policy
			}
			t.Fatalf("volatility ranking = %v, want %v", got, want)
		}
	}
}

// The concentration tie-break must place C above D in both rankings.
func TestConcentrationBreaksCDTie(t *testing.T) {
	for _, rank := range []func([]Series) ([]Ranked, error){RankByPerformance, RankByVolatility} {
		ranked, err := rank(SamplePolicies())
		if err != nil {
			t.Fatal(err)
		}
		posC, posD := -1, -1
		for i, r := range ranked {
			switch r.Series.Policy {
			case "C":
				posC = i
			case "D":
				posD = i
			}
		}
		if posC >= posD {
			t.Errorf("C ranked at %d, D at %d; want C above D", posC+1, posD+1)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(Series{Policy: "x"}); err == nil {
		t.Error("empty series summarized")
	}
}

func TestTrendGradientEdgeCases(t *testing.T) {
	if g := TrendGradient(Series{Points: []Point{{1, 0}}}); g != GradientNA {
		t.Errorf("single point gradient = %v, want NA", g)
	}
	// Constant volatility, varying performance: vertical, no trend line.
	s := Series{Points: []Point{{0.2, 0.5}, {0.8, 0.5}}}
	if g := TrendGradient(s); g != GradientNA {
		t.Errorf("vertical gradient = %v, want NA", g)
	}
}

func TestGradientString(t *testing.T) {
	for g, want := range map[Gradient]string{
		GradientNA: "NA", GradientZero: "Zero",
		GradientDecreasing: "Decreasing", GradientIncreasing: "Increasing",
	} {
		if g.String() != want {
			t.Errorf("String() = %q, want %q", g.String(), want)
		}
	}
}

func TestRankingTable(t *testing.T) {
	ranked, err := RankByPerformance(SamplePolicies())
	if err != nil {
		t.Fatal(err)
	}
	rows := RankingTable(ranked, false)
	if len(rows) != 9 {
		t.Fatalf("table has %d rows, want 9", len(rows))
	}
	rows = RankingTable(ranked, true)
	if len(rows) != 9 {
		t.Fatalf("volatility table has %d rows, want 9", len(rows))
	}
}

func TestAPrioriProjection(t *testing.T) {
	// A stable policy: high mean, low spread.
	stable := Series{Policy: "stable", Points: []Point{
		{0.9, 0.02}, {0.92, 0.02}, {0.88, 0.02},
	}}
	// A volatile policy: same-ish mean, wild spread.
	volatile := Series{Policy: "volatile", Points: []Point{
		{0.99, 0.4}, {0.85, 0.4}, {0.9, 0.4},
	}}
	ps, err := Project(stable)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := Project(volatile)
	if err != nil {
		t.Fatal(err)
	}
	if ps.RiskBelow(0.7) >= pv.RiskBelow(0.7) {
		t.Errorf("stable risk %v not below volatile risk %v", ps.RiskBelow(0.7), pv.RiskBelow(0.7))
	}
	best, err := SafestPolicy([]Projection{ps, pv}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if best.Policy != "stable" {
		t.Errorf("safest = %q, want stable", best.Policy)
	}
}

func TestAPrioriDegenerate(t *testing.T) {
	ideal := Series{Policy: "ideal", Points: []Point{{1, 0}, {1, 0}}}
	p, err := Project(ideal)
	if err != nil {
		t.Fatal(err)
	}
	if p.RiskBelow(0.5) != 0 {
		t.Errorf("ideal policy risk = %v, want 0", p.RiskBelow(0.5))
	}
	if p.RiskBelow(1.5) != 1 {
		t.Errorf("impossible target risk = %v, want 1", p.RiskBelow(1.5))
	}
	if _, err := Project(Series{}); err == nil {
		t.Error("empty series projected")
	}
	if _, err := SafestPolicy(nil, 0.5); err == nil {
		t.Error("empty projection list accepted")
	}
}

// Property: RiskBelow is monotone in the target.
func TestRiskBelowMonotoneProperty(t *testing.T) {
	p := Projection{Policy: "p", Mean: 0.6, Spread: 0.2}
	f := func(a, b float64) bool {
		a, b = math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)
		if a > b {
			a, b = b, a
		}
		return p.RiskBelow(a) <= p.RiskBelow(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeriesLabel(t *testing.T) {
	s := Series{Policy: "p", Points: []Point{{}, {}}, Labels: []string{"first"}}
	if s.Label(0) != "first" {
		t.Errorf("Label(0) = %q", s.Label(0))
	}
	if s.Label(1) != "1" {
		t.Errorf("Label(1) = %q, want index fallback", s.Label(1))
	}
}

// Integration must be bit-deterministic regardless of map iteration order:
// repeated calls with the same inputs return identical points.
func TestIntegrateDeterministic(t *testing.T) {
	points := map[Objective]Point{
		Wait:          {Performance: 0.123456789, Volatility: 0.01},
		SLA:           {Performance: 0.987654321, Volatility: 0.02},
		Reliability:   {Performance: 0.555555555, Volatility: 0.03},
		Profitability: {Performance: 0.333333333, Volatility: 0.04},
	}
	w := EqualWeights(AllObjectives)
	first, err := Integrate(points, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		got, err := Integrate(points, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != first {
			t.Fatalf("iteration %d produced %v, first was %v", i, got, first)
		}
	}
}

// QualifySeries relabels without recomputing: every policy gains the
// @qualifier suffix while points and labels stay the same values, and the
// input series are left untouched.
func TestQualifySeries(t *testing.T) {
	in := []Series{
		{Policy: "Libra", Points: []Point{{Performance: 1, Volatility: 2}}, Labels: []string{"workload"}},
		{Policy: "FCFS-BF", Points: []Point{{Performance: 3, Volatility: 4}}},
	}
	out := QualifySeries(in, "fast")
	if len(out) != len(in) {
		t.Fatalf("QualifySeries returned %d series, want %d", len(out), len(in))
	}
	if out[0].Policy != "Libra@fast" || out[1].Policy != "FCFS-BF@fast" {
		t.Errorf("qualified names %q, %q", out[0].Policy, out[1].Policy)
	}
	if in[0].Policy != "Libra" || in[1].Policy != "FCFS-BF" {
		t.Errorf("inputs mutated: %q, %q", in[0].Policy, in[1].Policy)
	}
	if out[0].Points[0] != in[0].Points[0] || out[0].Label(0) != "workload" {
		t.Error("qualification changed points or labels")
	}
}
