package risk

import "math"

// This file exposes the scoring formulas of analysis.go as streaming
// kernels, so internal/streamrisk can compute live scores without copying
// the formulas. ScoreSums replays the exact operation order of
// stats.Mean/stats.StdDev (and therefore Separate), and IntegrateEqual the
// exact accumulation order of Integrate under EqualWeights — making the
// incremental cumulative scores bit-identical to the offline computation,
// an invariant pinned by TestScoreSumsBitIdenticalToSeparate and the
// streamrisk differential battery.

// ScoreSums holds the streaming sufficient statistics behind the separate
// risk analysis (Eqs. 5–6): sample count, sum, and sum of squares, updated
// in arrival order.
type ScoreSums struct {
	N     int64   `json:"n"`
	Sum   float64 `json:"sum"`
	SumSq float64 `json:"sum_sq"`
}

// Add folds one normalized result into the sums.
func (s *ScoreSums) Add(x float64) {
	s.N++
	s.Sum += x
	s.SumSq += x * x
}

// Point computes the separate risk point from the sums. For samples added
// in slice order this is bit-identical to Separate on the materialized
// slice: stats.Mean is a left-to-right sum divided once, and stats.StdDev
// is sqrt(sumsq/n − mean²) with the same <2-sample and negative-variance
// guards replicated here.
func (s ScoreSums) Point() Point {
	if s.N == 0 {
		return Point{}
	}
	n := float64(s.N)
	p := Point{Performance: s.Sum / n}
	if s.N < 2 {
		return p
	}
	v := s.SumSq/n - p.Performance*p.Performance
	if v < 0 { // floating point guard, as in stats.StdDev
		v = 0
	}
	p.Volatility = math.Sqrt(v)
	return p
}

// IntegrateEqual computes the integrated risk point (Eqs. 7–8) under the
// paper's equal weighting, accumulating in slice order. For points ordered
// by ascending objective this is bit-identical to
// Integrate(points, EqualWeights(objs)): the weight is the same 1/len
// division, and the multiply-add sequence is the same. Unlike Integrate it
// has no error path — an empty slice yields the zero point — so it is safe
// on allocation-free hot paths.
func IntegrateEqual(points []Point) Point {
	if len(points) == 0 {
		return Point{}
	}
	w := 1 / float64(len(points))
	var out Point
	for _, p := range points {
		out.Performance += w * p.Performance
		out.Volatility += w * p.Volatility
	}
	return out
}
