package risk

import (
	"fmt"
	"math"
	"sort"
)

// Ranked is one row of a Table III/IV-style ranking.
type Ranked struct {
	Rank int
	Series
	Summary
	Gradient Gradient
	// Concentration is the mean distance of the series' points from its
	// ideal corner (min volatility, max performance); used as the final
	// tie-break (the paper prefers policy C, whose points cluster near its
	// best corner, over the evenly spread policy D).
	Concentration float64
}

// gradientPreference orders gradients as §4.3 prefers: decreasing,
// increasing, zero, with NA last.
func gradientPreference(g Gradient) int {
	switch g {
	case GradientDecreasing:
		return 0
	case GradientIncreasing:
		return 1
	case GradientZero:
		return 2
	default:
		return 3
	}
}

// concentration measures how tightly a series clusters around its own best
// corner.
func concentration(s Series, sum Summary) float64 {
	total := 0.0
	for _, p := range s.Points {
		dv := p.Volatility - sum.MinVolatility
		dp := p.Performance - sum.MaxPerformance
		total += math.Hypot(dv, dp)
	}
	return total / float64(len(s.Points))
}

func buildRanked(series []Series) ([]Ranked, error) {
	out := make([]Ranked, 0, len(series))
	for _, s := range series {
		sum, err := Summarize(s)
		if err != nil {
			return nil, err
		}
		out = append(out, Ranked{
			Series:        s,
			Summary:       sum,
			Gradient:      TrendGradient(s),
			Concentration: concentration(s, sum),
		})
	}
	return out, nil
}

// cmp compares two float64 criteria; returns -1/0/+1.
func cmp(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// RankByPerformance ranks policies for best performance (Table III):
// (i) maximum performance (higher first), (ii) minimum volatility (lower
// first), (iii) performance difference (lower first), (iv) volatility
// difference (lower first), (v) gradient preference, then point
// concentration and finally name for stability.
func RankByPerformance(series []Series) ([]Ranked, error) {
	ranked, err := buildRanked(series)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if c := cmp(b.MaxPerformance, a.MaxPerformance); c != 0 {
			return c < 0
		}
		if c := cmp(a.MinVolatility, b.MinVolatility); c != 0 {
			return c < 0
		}
		if c := cmp(a.PerformanceDifference, b.PerformanceDifference); c != 0 {
			return c < 0
		}
		if c := cmp(a.VolatilityDifference, b.VolatilityDifference); c != 0 {
			return c < 0
		}
		if ga, gb := gradientPreference(a.Gradient), gradientPreference(b.Gradient); ga != gb {
			return ga < gb
		}
		if c := cmp(a.Concentration, b.Concentration); c != 0 {
			return c < 0
		}
		return a.Series.Policy < b.Series.Policy
	})
	for i := range ranked {
		ranked[i].Rank = i + 1
	}
	return ranked, nil
}

// RankByVolatility ranks policies for best volatility (Table IV):
// (i) minimum volatility (lower first), (ii) maximum performance (higher
// first), (iii) volatility difference (lower first), (iv) performance
// difference (lower first), (v) gradient preference, then concentration
// and name.
func RankByVolatility(series []Series) ([]Ranked, error) {
	ranked, err := buildRanked(series)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if c := cmp(a.MinVolatility, b.MinVolatility); c != 0 {
			return c < 0
		}
		if c := cmp(b.MaxPerformance, a.MaxPerformance); c != 0 {
			return c < 0
		}
		if c := cmp(a.VolatilityDifference, b.VolatilityDifference); c != 0 {
			return c < 0
		}
		if c := cmp(a.PerformanceDifference, b.PerformanceDifference); c != 0 {
			return c < 0
		}
		if ga, gb := gradientPreference(a.Gradient), gradientPreference(b.Gradient); ga != gb {
			return ga < gb
		}
		if c := cmp(a.Concentration, b.Concentration); c != 0 {
			return c < 0
		}
		return a.Series.Policy < b.Series.Policy
	})
	for i := range ranked {
		ranked[i].Rank = i + 1
	}
	return ranked, nil
}

// RankingTable formats a ranking as rows of the paper's table shape.
func RankingTable(ranked []Ranked, byVolatility bool) []string {
	rows := make([]string, 0, len(ranked)+1)
	if byVolatility {
		rows = append(rows, "Rank Policy MinVol MaxPerf VolDiff PerfDiff Gradient")
	} else {
		rows = append(rows, "Rank Policy MaxPerf MinVol PerfDiff VolDiff Gradient")
	}
	for _, r := range ranked {
		if byVolatility {
			rows = append(rows, fmt.Sprintf("%d %s %.2f %.2f %.2f %.2f %s",
				r.Rank, r.Series.Policy, r.MinVolatility, r.MaxPerformance,
				r.VolatilityDifference, r.PerformanceDifference, r.Gradient))
			continue
		}
		rows = append(rows, fmt.Sprintf("%d %s %.2f %.2f %.2f %.2f %s",
			r.Rank, r.Series.Policy, r.MaxPerformance, r.MinVolatility,
			r.PerformanceDifference, r.VolatilityDifference, r.Gradient))
	}
	return rows
}
