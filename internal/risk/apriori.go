package risk

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// This file implements the forward-looking use the paper proposes for its
// a-posteriori results: "these evaluation results ... can later be used to
// generate an a priori risk analysis of policies by identifying possible
// risks for future utility computing situations." Given a policy's measured
// per-scenario (performance, volatility) points, Projection estimates the
// chance that the policy's performance in an unseen scenario falls below a
// required level.

// Projection is the a-priori risk model for one policy: a normal
// approximation of its performance across scenarios, pooling the
// between-scenario spread of the performance means with the mean
// within-scenario volatility.
type Projection struct {
	Policy string
	// Mean is the expected performance across scenarios.
	Mean float64
	// Spread is the pooled standard deviation: between-scenario variance
	// of performance plus the mean squared within-scenario volatility.
	Spread float64
}

// Project fits the a-priori model to a measured series.
func Project(s Series) (Projection, error) {
	if len(s.Points) == 0 {
		return Projection{}, fmt.Errorf("risk: a-priori projection of empty series %q", s.Policy)
	}
	perfs := make([]float64, len(s.Points))
	volSq := 0.0
	for i, p := range s.Points {
		perfs[i] = p.Performance
		volSq += p.Volatility * p.Volatility
	}
	volSq /= float64(len(s.Points))
	between := stats.StdDev(perfs)
	return Projection{
		Policy: s.Policy,
		Mean:   stats.Mean(perfs),
		Spread: math.Sqrt(between*between + volSq),
	}, nil
}

// RiskBelow estimates P(performance < target) for a future scenario under
// the normal approximation. With zero spread it is a step function.
func (p Projection) RiskBelow(target float64) float64 {
	if p.Spread == 0 { //lint:allow floateq — exact-zero spread is the documented step-function case
		if p.Mean < target {
			return 1
		}
		return 0
	}
	z := (target - p.Mean) / p.Spread
	return normalCDF(z)
}

// normalCDF is the standard normal CDF via erf.
func normalCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// SafestPolicy returns the projection with the lowest risk of falling
// below target, breaking ties by higher mean then name.
func SafestPolicy(projections []Projection, target float64) (Projection, error) {
	if len(projections) == 0 {
		return Projection{}, fmt.Errorf("risk: no projections to compare")
	}
	best := projections[0]
	for _, p := range projections[1:] {
		rb, rp := best.RiskBelow(target), p.RiskBelow(target)
		switch {
		case rp < rb:
			best = p
		case rp == rb && p.Mean > best.Mean: //lint:allow floateq — identity tie-break between candidates, not an approximate test
			best = p
		case rp == rb && p.Mean == best.Mean && p.Policy < best.Policy: //lint:allow floateq — identity tie-break between candidates, not an approximate test
			best = p
		}
	}
	return best, nil
}
