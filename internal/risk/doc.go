// Package risk implements the paper's two evaluation methods (§4):
// separate risk analysis of a single objective and integrated risk analysis
// of a weighted combination of objectives, both expressed as (performance,
// volatility) points; plus the risk-plot summaries and policy rankings of
// Tables II–IV, and the a-priori projection the paper proposes as future
// use of the a-posteriori results.
package risk
