package risk

import (
	"strings"
	"testing"
)

func rankedSample(t *testing.T) []Ranked {
	t.Helper()
	ranked, err := RankByPerformance(SamplePolicies())
	if err != nil {
		t.Fatal(err)
	}
	return ranked
}

func findRanked(t *testing.T, ranked []Ranked, name string) Ranked {
	t.Helper()
	for _, r := range ranked {
		if r.Series.Policy == name {
			return r
		}
	}
	t.Fatalf("policy %s not in ranking", name)
	return Ranked{}
}

func TestExplainDecidingCriteria(t *testing.T) {
	ranked := rankedSample(t)
	a := findRanked(t, ranked, "A")
	b := findRanked(t, ranked, "B")
	c := findRanked(t, ranked, "C")
	d := findRanked(t, ranked, "D")
	e := findRanked(t, ranked, "E")
	g := findRanked(t, ranked, "G")

	cases := []struct {
		x, y Ranked
		want string
	}{
		// A beats B on maximum performance (1.0 vs 0.9).
		{a, b, "A precedes B on maximum performance"},
		// E beats G on minimum volatility (0.1 vs 0.3).
		{e, g, "E precedes G on minimum volatility"},
		// C beats D only on point concentration (all else identical).
		{c, d, "C precedes D on point concentration"},
	}
	for _, tc := range cases {
		if got := Explain(tc.x, tc.y, false); got != tc.want {
			t.Errorf("Explain = %q, want %q", got, tc.want)
		}
		// Order of arguments must not change the verdict.
		if got := Explain(tc.y, tc.x, false); got != tc.want {
			t.Errorf("Explain (swapped) = %q, want %q", got, tc.want)
		}
	}
}

func TestExplainTie(t *testing.T) {
	ranked := rankedSample(t)
	c := findRanked(t, ranked, "C")
	if got := Explain(c, c, false); !strings.Contains(got, "tie") {
		t.Errorf("self-comparison = %q, want a tie", got)
	}
}

func TestExplainVolatilityCriteriaOrder(t *testing.T) {
	ranked, err := RankByVolatility(SamplePolicies())
	if err != nil {
		t.Fatal(err)
	}
	e := findRanked(t, ranked, "E")
	b := findRanked(t, ranked, "B")
	// Under Table IV's order, E beats B on minimum volatility first.
	if got := Explain(e, b, true); got != "E precedes B on minimum volatility" {
		t.Errorf("Explain = %q", got)
	}
	// Under Table III's order, B beats E on maximum performance first.
	if got := Explain(e, b, false); got != "B precedes E on maximum performance" {
		t.Errorf("Explain = %q", got)
	}
}

func TestExplainRankingAnnotatesAdjacentPairs(t *testing.T) {
	ranked := rankedSample(t)
	notes := ExplainRanking(ranked, false)
	if len(notes) != len(ranked)-1 {
		t.Fatalf("%d notes for %d rows", len(notes), len(ranked))
	}
	if notes[0] != "A precedes B on maximum performance" {
		t.Errorf("first note = %q", notes[0])
	}
	if ExplainRanking(ranked[:1], false) != nil {
		t.Error("single-row ranking produced notes")
	}
}
