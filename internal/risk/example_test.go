package risk_test

import (
	"fmt"

	"repro/internal/risk"
)

// The separate risk analysis of one objective in one scenario: six varying
// values produce six normalized results; their mean is the performance and
// their standard deviation the volatility (Eqs. 5–6).
func ExampleSeparate() {
	normalized := []float64{0.95, 0.90, 0.85, 0.80, 0.75, 0.70}
	point, err := risk.Separate(normalized)
	if err != nil {
		panic(err)
	}
	fmt.Printf("performance %.3f volatility %.3f\n", point.Performance, point.Volatility)
	// Output: performance 0.825 volatility 0.085
}

// Integrating multiple objectives with weights (Eqs. 7–8): a provider that
// cares mostly about profit weights it at 0.7.
func ExampleIntegrate() {
	points := map[risk.Objective]risk.Point{
		risk.Wait:          {Performance: 1.0, Volatility: 0.0},
		risk.Profitability: {Performance: 0.4, Volatility: 0.2},
	}
	weights := risk.Weights{risk.Wait: 0.3, risk.Profitability: 0.7}
	point, err := risk.Integrate(points, weights)
	if err != nil {
		panic(err)
	}
	fmt.Printf("performance %.2f volatility %.2f\n", point.Performance, point.Volatility)
	// Output: performance 0.58 volatility 0.14
}

// Ranking the paper's Figure 1 sample policies by best performance
// reproduces Table III's order.
func ExampleRankByPerformance() {
	ranked, err := risk.RankByPerformance(risk.SamplePolicies())
	if err != nil {
		panic(err)
	}
	for _, r := range ranked {
		fmt.Printf("%d %s\n", r.Rank, r.Series.Policy)
	}
	// Output:
	// 1 A
	// 2 B
	// 3 E
	// 4 G
	// 5 F
	// 6 C
	// 7 D
	// 8 H
}

// Trend lines classify how a policy's volatility moves with its
// performance; decreasing (better performance at lower risk) is preferred.
func ExampleTrendGradient() {
	improving := risk.Series{Policy: "p", Points: []risk.Point{
		{Performance: 0.9, Volatility: 0.1},
		{Performance: 0.7, Volatility: 0.3},
		{Performance: 0.5, Volatility: 0.5},
	}}
	fmt.Println(risk.TrendGradient(improving))
	// Output: Decreasing
}

// A-priori projection: given a policy's measured points, estimate the
// chance it under-delivers in a future scenario.
func ExampleProjection_RiskBelow() {
	series := risk.Series{Policy: "Libra", Points: []risk.Point{
		{Performance: 0.80, Volatility: 0.05},
		{Performance: 0.84, Volatility: 0.05},
		{Performance: 0.82, Volatility: 0.05},
	}}
	projection, err := risk.Project(series)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P(performance < 0.7) = %.1f%%\n", projection.RiskBelow(0.7)*100)
	// Output: P(performance < 0.7) = 1.1%
}
