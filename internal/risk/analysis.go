package risk

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// Point is one (performance, volatility) pair: a policy's value and risk
// measure for one objective (or combination) in one scenario.
type Point struct {
	// Performance is the mean of the normalized results (Eq. 5 / Eq. 7).
	Performance float64
	// Volatility is their standard deviation (Eq. 6 / Eq. 8).
	Volatility float64
}

// Separate computes the separate risk analysis of one objective for one
// scenario (Eqs. 5–6): the mean and population standard deviation of the
// scenario's normalized results.
func Separate(normalized []float64) (Point, error) {
	if len(normalized) == 0 {
		return Point{}, fmt.Errorf("risk: separate analysis of no results")
	}
	for i, v := range normalized {
		if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
			return Point{}, fmt.Errorf("risk: normalized result %d = %v outside [0,1]", i, v)
		}
	}
	return Point{
		Performance: stats.Mean(normalized),
		Volatility:  stats.StdDev(normalized),
	}, nil
}

// Weights maps objectives to their importance, 0 ≤ w ≤ 1, summing to 1.
type Weights map[Objective]float64

// EqualWeights returns the paper's equal weighting over the given
// objectives (1/3 each for three objectives, 1/4 for all four).
func EqualWeights(objs []Objective) Weights {
	w := make(Weights, len(objs))
	for _, o := range objs {
		w[o] = 1 / float64(len(objs))
	}
	return w
}

// Validate checks the weight constraints of Eqs. 7–8. Objectives are
// checked in ascending order so the reported error — and the float
// summation order — are stable across runs.
func (w Weights) Validate() error {
	objs := make([]Objective, 0, len(w))
	for o := range w {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	sum := 0.0
	for _, o := range objs {
		v := w[o]
		if v < 0 || v > 1 {
			return fmt.Errorf("risk: weight of %v is %v, outside [0,1]", o, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("risk: weights sum to %v, want 1", sum)
	}
	return nil
}

// Integrate computes the integrated risk analysis (Eqs. 7–8): the weighted
// sum of the separate performance and volatility measures of each
// objective. Every weighted objective must have a point.
func Integrate(points map[Objective]Point, w Weights) (Point, error) {
	if err := w.Validate(); err != nil {
		return Point{}, err
	}
	if len(w) == 0 {
		return Point{}, fmt.Errorf("risk: integration over no objectives")
	}
	// Accumulate in objective order: float addition is not associative, and
	// map iteration order would otherwise make integrated points differ in
	// the last ulp between runs — enough to flip near-tie rankings.
	objs := make([]Objective, 0, len(w))
	for o := range w {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	var out Point
	for _, o := range objs {
		p, ok := points[o]
		if !ok {
			return Point{}, fmt.Errorf("risk: no separate analysis for objective %v", o)
		}
		out.Performance += w[o] * p.Performance
		out.Volatility += w[o] * p.Volatility
	}
	return out, nil
}

// Series is one policy's points across all scenarios — one trace on a risk
// analysis plot.
type Series struct {
	Policy string
	Points []Point
	// Labels optionally names each point's scenario (same length as
	// Points when set); emitters fall back to indices otherwise.
	Labels []string
}

// Label returns the i-th point's scenario label, or its index rendered as
// text when labels are not set.
func (s Series) Label(i int) string {
	if i < len(s.Labels) {
		return s.Labels[i]
	}
	return fmt.Sprintf("%d", i)
}

// QualifySeries returns a copy of the series with every policy name
// suffixed "@qualifier" — how federated panels label one cluster's share
// ("Libra@fast") so it cannot be mistaken for (or collide with) the
// federation-wide series of the same policy. Points and labels are shared,
// not copied: qualification is a relabeling, not a recomputation.
func QualifySeries(series []Series, qualifier string) []Series {
	out := make([]Series, len(series))
	for i, s := range series {
		out[i] = s
		out[i].Policy = s.Policy + "@" + qualifier
	}
	return out
}

// Summary condenses a series the way Table II does.
type Summary struct {
	Policy                string
	MaxPerformance        float64
	MinPerformance        float64
	PerformanceDifference float64
	MaxVolatility         float64
	MinVolatility         float64
	VolatilityDifference  float64
}

// Summarize computes the Table II summary of a series.
func Summarize(s Series) (Summary, error) {
	if len(s.Points) == 0 {
		return Summary{}, fmt.Errorf("risk: summary of empty series %q", s.Policy)
	}
	sum := Summary{Policy: s.Policy}
	sum.MaxPerformance, sum.MinPerformance = s.Points[0].Performance, s.Points[0].Performance
	sum.MaxVolatility, sum.MinVolatility = s.Points[0].Volatility, s.Points[0].Volatility
	for _, p := range s.Points[1:] {
		sum.MaxPerformance = math.Max(sum.MaxPerformance, p.Performance)
		sum.MinPerformance = math.Min(sum.MinPerformance, p.Performance)
		sum.MaxVolatility = math.Max(sum.MaxVolatility, p.Volatility)
		sum.MinVolatility = math.Min(sum.MinVolatility, p.Volatility)
	}
	sum.PerformanceDifference = sum.MaxPerformance - sum.MinPerformance
	sum.VolatilityDifference = sum.MaxVolatility - sum.MinVolatility
	return sum, nil
}

// Gradient classifies a series' trend line (§4.3): performance fitted
// against volatility by least squares.
type Gradient int

const (
	// GradientNA means no trend line exists (identical or too few distinct
	// points — the paper's policy A).
	GradientNA Gradient = iota
	// GradientZero means changing volatility with no change in performance.
	GradientZero
	// GradientDecreasing means lower volatility for higher performance
	// (preferred).
	GradientDecreasing
	// GradientIncreasing means higher volatility for higher performance.
	GradientIncreasing
)

// String names the gradient as the paper's tables do.
func (g Gradient) String() string {
	switch g {
	case GradientNA:
		return "NA"
	case GradientZero:
		return "Zero"
	case GradientDecreasing:
		return "Decreasing"
	case GradientIncreasing:
		return "Increasing"
	default:
		return fmt.Sprintf("Gradient(%d)", int(g))
	}
}

// gradientEps is the slope magnitude below which a trend line counts as
// zero gradient.
const gradientEps = 1e-9

// TrendGradient fits and classifies the series' trend line.
func TrendGradient(s Series) Gradient {
	if len(s.Points) < 2 {
		return GradientNA
	}
	x := make([]float64, len(s.Points))
	y := make([]float64, len(s.Points))
	distinct := false
	for i, p := range s.Points {
		x[i] = p.Volatility
		y[i] = p.Performance
		if p != s.Points[0] {
			distinct = true
		}
	}
	if !distinct {
		return GradientNA
	}
	slope, _, ok := stats.LinearFit(x, y)
	if !ok {
		// Volatility constant: a vertical spread has no usable trend line.
		return GradientNA
	}
	switch {
	case math.Abs(slope) < gradientEps:
		return GradientZero
	case slope < 0:
		return GradientDecreasing
	default:
		return GradientIncreasing
	}
}
