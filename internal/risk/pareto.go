package risk

import "sort"

// This file adds dominance analysis over risk plots: a point is better the
// higher its performance and the lower its volatility, so the summaries of
// a set of policies form a two-objective optimization whose Pareto front
// contains every policy a rational provider might pick. It complements the
// paper's linear rankings (Tables III–IV): a policy off the front is
// dominated no matter how the provider trades performance against risk.

// Dominates reports whether point a dominates point b: at least as good on
// both axes and strictly better on one.
func Dominates(a, b Point) bool {
	if a.Performance < b.Performance || a.Volatility > b.Volatility {
		return false
	}
	return a.Performance > b.Performance || a.Volatility < b.Volatility
}

// summaryPoint reduces a series to its headline point (max performance,
// min volatility) — the corner the paper's rankings lead with.
func summaryPoint(sum Summary) Point {
	return Point{Performance: sum.MaxPerformance, Volatility: sum.MinVolatility}
}

// ParetoFront returns the policies whose headline points are not dominated
// by any other policy's, ordered by decreasing performance (ties broken by
// volatility then name). Every series must be non-empty.
func ParetoFront(series []Series) ([]Ranked, error) {
	ranked, err := buildRanked(series)
	if err != nil {
		return nil, err
	}
	var front []Ranked
	for i, r := range ranked {
		dominated := false
		for k, other := range ranked {
			if i == k {
				continue
			}
			if Dominates(summaryPoint(other.Summary), summaryPoint(r.Summary)) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, r)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		a, b := front[i], front[j]
		if a.MaxPerformance != b.MaxPerformance { //lint:allow floateq — identity tie-break in a sort comparator
			return a.MaxPerformance > b.MaxPerformance
		}
		if a.MinVolatility != b.MinVolatility { //lint:allow floateq — identity tie-break in a sort comparator
			return a.MinVolatility < b.MinVolatility
		}
		return a.Series.Policy < b.Series.Policy
	})
	for i := range front {
		front[i].Rank = i + 1
	}
	return front, nil
}
