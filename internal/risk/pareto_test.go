package risk

import (
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	a := Point{Performance: 0.9, Volatility: 0.1}
	b := Point{Performance: 0.5, Volatility: 0.3}
	if !Dominates(a, b) {
		t.Error("strictly better point does not dominate")
	}
	if Dominates(b, a) {
		t.Error("worse point dominates")
	}
	if Dominates(a, a) {
		t.Error("point dominates itself")
	}
	// Better on one axis, worse on the other: no dominance either way.
	c := Point{Performance: 0.95, Volatility: 0.4}
	if Dominates(a, c) || Dominates(c, a) {
		t.Error("incomparable points reported as dominating")
	}
	// Equal on one axis, better on the other: dominance.
	d := Point{Performance: 0.9, Volatility: 0.2}
	if !Dominates(a, d) {
		t.Error("same performance, lower volatility must dominate")
	}
}

func TestParetoFrontSample(t *testing.T) {
	front, err := ParetoFront(SamplePolicies())
	if err != nil {
		t.Fatal(err)
	}
	// A (1.0, 0.0) dominates everything except E's volatility? A has min
	// volatility 0.0 and max performance 1.0 — A dominates all. Only A
	// survives.
	if len(front) != 1 || front[0].Series.Policy != "A" {
		names := make([]string, len(front))
		for i, f := range front {
			names[i] = f.Series.Policy
		}
		t.Errorf("front = %v, want [A]", names)
	}
}

func TestParetoFrontWithoutIdealPolicy(t *testing.T) {
	var series []Series
	for _, s := range SamplePolicies() {
		if s.Policy != "A" {
			series = append(series, s)
		}
	}
	front, err := ParetoFront(series)
	if err != nil {
		t.Fatal(err)
	}
	// B: (0.9, 0.3); E: (0.7, 0.1). B has higher perf, E lower volatility:
	// both survive; everyone else at (0.7, 0.3) is dominated by both.
	if len(front) != 2 || front[0].Series.Policy != "B" || front[1].Series.Policy != "E" {
		names := make([]string, len(front))
		for i, f := range front {
			names[i] = f.Series.Policy
		}
		t.Errorf("front = %v, want [B E]", names)
	}
	if front[0].Rank != 1 || front[1].Rank != 2 {
		t.Error("front ranks not assigned")
	}
}

func TestParetoFrontErrors(t *testing.T) {
	if _, err := ParetoFront([]Series{{Policy: "empty"}}); err == nil {
		t.Error("empty series accepted")
	}
}

// Property: the front is never empty for non-empty input, no front member
// dominates another, and every non-member is dominated by some member.
func TestParetoFrontProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		var series []Series
		for i := 0; i+1 < len(raw); i += 2 {
			series = append(series, Series{
				Policy: string(rune('a'+i/2%26)) + string(rune('0'+i/52)),
				Points: []Point{{
					Performance: float64(raw[i]%1000) / 1000,
					Volatility:  float64(raw[i+1]%500) / 1000,
				}},
			})
		}
		front, err := ParetoFront(series)
		if err != nil || len(front) == 0 {
			return false
		}
		inFront := map[string]Point{}
		for _, f := range front {
			inFront[f.Series.Policy] = summaryPoint(f.Summary)
		}
		for _, a := range front {
			for _, b := range front {
				if a.Series.Policy != b.Series.Policy &&
					Dominates(summaryPoint(a.Summary), summaryPoint(b.Summary)) {
					return false
				}
			}
		}
		for _, s := range series {
			if _, ok := inFront[s.Policy]; ok {
				continue
			}
			p := Point{Performance: s.Points[0].Performance, Volatility: s.Points[0].Volatility}
			dominated := false
			//lint:allow maporder — pure existence check (any dominating front point); order cannot change the result
			for _, fp := range inFront {
				if Dominates(fp, p) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
