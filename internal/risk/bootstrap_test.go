package risk

import (
	"testing"
	"testing/quick"
)

func TestBootstrapBracketsPointEstimate(t *testing.T) {
	normalized := []float64{0.95, 0.90, 0.85, 0.80, 0.75, 0.70}
	res, err := Bootstrap(normalized, 2000, 0.025, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Performance.Low > res.Point.Performance || res.Performance.High < res.Point.Performance {
		t.Errorf("performance %v outside interval [%v, %v]",
			res.Point.Performance, res.Performance.Low, res.Performance.High)
	}
	if res.Performance.Low >= res.Performance.High {
		t.Errorf("degenerate performance interval [%v, %v]", res.Performance.Low, res.Performance.High)
	}
	if res.Volatility.Low > res.Point.Volatility+1e-9 {
		t.Errorf("volatility %v below interval low %v", res.Point.Volatility, res.Volatility.Low)
	}
}

func TestBootstrapConstantData(t *testing.T) {
	res, err := Bootstrap([]float64{0.5, 0.5, 0.5, 0.5}, 200, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Performance.Low != 0.5 || res.Performance.High != 0.5 {
		t.Errorf("constant data interval = %+v", res.Performance)
	}
	if res.Volatility.High != 0 {
		t.Errorf("constant data volatility interval high = %v", res.Volatility.High)
	}
}

func TestBootstrapDeterminism(t *testing.T) {
	data := []float64{0.1, 0.4, 0.6, 0.9}
	a, err := Bootstrap(data, 500, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bootstrap(data, 500, 0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same seed produced different intervals")
	}
}

func TestBootstrapValidation(t *testing.T) {
	if _, err := Bootstrap(nil, 100, 0.05, 1); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Bootstrap([]float64{0.5}, 5, 0.05, 1); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, err := Bootstrap([]float64{0.5}, 100, 0.7, 1); err == nil {
		t.Error("alpha 0.7 accepted")
	}
	if _, err := Bootstrap([]float64{2.0}, 100, 0.05, 1); err == nil {
		t.Error("out-of-range data accepted")
	}
}

// Property: intervals are ordered and within [0,1] for valid inputs.
func TestBootstrapIntervalProperty(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		data := make([]float64, len(raw))
		for i, r := range raw {
			data[i] = float64(r) / 255
		}
		res, err := Bootstrap(data, 200, 0.05, seed)
		if err != nil {
			return false
		}
		return res.Performance.Low <= res.Performance.High &&
			res.Volatility.Low <= res.Volatility.High &&
			res.Performance.Low >= 0 && res.Performance.High <= 1 &&
			res.Volatility.Low >= 0 && res.Volatility.High <= 0.5+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMostVolatileScenario(t *testing.T) {
	s := Series{
		Policy: "p",
		Points: []Point{{0.9, 0.1}, {0.5, 0.4}, {0.7, 0.2}},
		Labels: []string{"job mix", "workload", "inaccuracy"},
	}
	idx, label, err := MostVolatileScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || label != "workload" {
		t.Errorf("attribution = %d/%q, want 1/workload", idx, label)
	}
	if _, _, err := MostVolatileScenario(Series{Policy: "e"}); err == nil {
		t.Error("empty series accepted")
	}
}
