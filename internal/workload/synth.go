package workload

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// SynthConfig calibrates the synthetic trace generator. The defaults
// (DefaultSynthConfig) match the statistics the paper reports for the last
// 5000 jobs of the SDSC SP2 trace: mean inter-arrival 1969 s, mean runtime
// 8671 s, mean width 17 processors on a 128-node machine, and user runtime
// estimates of which ~8% are under-estimates and ~92% over-estimates.
type SynthConfig struct {
	// Jobs is the number of jobs to generate.
	Jobs int
	// MeanInterArrival is the mean gap between submissions in seconds
	// (exponential arrivals).
	MeanInterArrival float64
	// MeanRuntime and RuntimeCV shape the log-normal runtime distribution.
	MeanRuntime float64
	RuntimeCV   float64
	// MaxRuntime caps runtimes (the SP2 queue limit was 18 h).
	MaxRuntime float64
	// Widths and WidthWeights define the processor-count mixture. Both must
	// be the same length.
	Widths       []int
	WidthWeights []float64
	// UnderEstimateFrac is the fraction of jobs whose user estimate falls
	// below the actual runtime.
	UnderEstimateFrac float64
	// MinOverAccuracy floors the accuracy of over-estimates: an
	// over-estimated job's accuracy runtime/estimate is drawn uniformly
	// from [MinOverAccuracy, 1), the roughly flat accuracy histogram
	// observed in production traces (Mu'alem & Feitelson; Tsafrir et
	// al.). Lower values give heavier over-estimation tails.
	MinOverAccuracy float64
	// EstimateRounding rounds estimates up to this granularity in seconds
	// (users quote round numbers).
	EstimateRounding float64
}

// DefaultSynthConfig returns the SDSC-SP2-calibrated configuration.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		Jobs:              5000,
		MeanInterArrival:  1969,
		MeanRuntime:       8671,
		RuntimeCV:         1.8,
		MaxRuntime:        64800, // 18 hours
		Widths:            []int{1, 2, 4, 8, 16, 32, 64, 128},
		WidthWeights:      []float64{0.25, 0.12, 0.13, 0.15, 0.14, 0.12, 0.07, 0.02},
		UnderEstimateFrac: 0.08,
		MinOverAccuracy:   0.02,
		EstimateRounding:  300,
	}
}

// Validate checks configuration consistency.
func (c *SynthConfig) Validate() error {
	switch {
	case c.Jobs <= 0:
		return fmt.Errorf("workload: synth: non-positive job count %d", c.Jobs)
	case c.MeanInterArrival <= 0:
		return fmt.Errorf("workload: synth: non-positive inter-arrival %v", c.MeanInterArrival)
	case c.MeanRuntime <= 0:
		return fmt.Errorf("workload: synth: non-positive mean runtime %v", c.MeanRuntime)
	case c.RuntimeCV <= 0:
		return fmt.Errorf("workload: synth: non-positive runtime CV %v", c.RuntimeCV)
	case c.MaxRuntime < c.MeanRuntime:
		return fmt.Errorf("workload: synth: max runtime %v below mean %v", c.MaxRuntime, c.MeanRuntime)
	case len(c.Widths) == 0 || len(c.Widths) != len(c.WidthWeights):
		return fmt.Errorf("workload: synth: widths/weights mismatch (%d vs %d)", len(c.Widths), len(c.WidthWeights))
	case c.UnderEstimateFrac < 0 || c.UnderEstimateFrac > 1:
		return fmt.Errorf("workload: synth: under-estimate fraction %v outside [0,1]", c.UnderEstimateFrac)
	case c.MinOverAccuracy <= 0 || c.MinOverAccuracy >= 1:
		return fmt.Errorf("workload: synth: over-estimate accuracy floor %v outside (0,1)", c.MinOverAccuracy)
	case c.EstimateRounding <= 0:
		return fmt.Errorf("workload: synth: non-positive estimate rounding %v", c.EstimateRounding)
	}
	for _, w := range c.Widths {
		if w <= 0 {
			return fmt.Errorf("workload: synth: non-positive width %d", w)
		}
	}
	return nil
}

// Generate produces a deterministic synthetic trace for the configuration
// and seed. The returned jobs carry trace shape only; the qos package
// attaches deadlines, budgets, and penalty rates.
func Generate(cfg SynthConfig, seed int64) ([]*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRand(seed)
	jobs := make([]*Job, 0, cfg.Jobs)
	now := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		if i > 0 {
			now += stats.Exponential(rng, cfg.MeanInterArrival)
		}
		runtime := stats.LogNormalFromMeanCV(rng, cfg.MeanRuntime, cfg.RuntimeCV)
		runtime = stats.Clamp(runtime, 1, cfg.MaxRuntime)
		width := cfg.Widths[stats.WeightedIndex(rng, cfg.WidthWeights)]
		jobs = append(jobs, &Job{
			ID:       i + 1,
			Submit:   math.Floor(now),
			Runtime:  math.Ceil(runtime),
			Estimate: synthesizeEstimate(rng, cfg, runtime),
			Procs:    width,
		})
	}
	return jobs, nil
}

// synthesizeEstimate models user runtime estimates: a small fraction are
// under-estimates (uniform 30–95% of the true runtime); the rest are
// over-estimates with accuracy runtime/estimate drawn uniformly from
// [MinOverAccuracy, 1) — the flat accuracy histogram of production traces
// — rounded up to the granularity users quote (subject to the queue limit,
// which itself is a round number so stays a valid over-estimate).
func synthesizeEstimate(rng *stats.Rng, cfg SynthConfig, runtime float64) float64 {
	if stats.Choice(rng, cfg.UnderEstimateFrac) {
		est := runtime * (0.3 + 0.65*rng.Float64())
		return math.Max(1, math.Floor(est))
	}
	accuracy := cfg.MinOverAccuracy + (1-cfg.MinOverAccuracy)*rng.Float64()
	est := runtime / accuracy
	est = math.Ceil(est/cfg.EstimateRounding) * cfg.EstimateRounding
	if est > cfg.MaxRuntime {
		est = math.Max(cfg.MaxRuntime, math.Ceil(runtime/cfg.EstimateRounding)*cfg.EstimateRounding)
	}
	if est <= runtime { // rounding near the cap must stay an over-estimate
		est = math.Ceil(runtime) + 1
	}
	return est
}
