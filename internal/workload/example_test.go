package workload_test

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// Generating a calibrated synthetic trace and inspecting its statistics.
func ExampleGenerate() {
	cfg := workload.DefaultSynthConfig()
	cfg.Jobs = 1000
	trace, err := workload.Generate(cfg, 42)
	if err != nil {
		panic(err)
	}
	ts := workload.Stats(trace, 128)
	fmt.Printf("jobs: %d\n", ts.Jobs)
	fmt.Printf("max width within machine: %v\n", ts.MaxWidth <= 128)
	fmt.Printf("mostly over-estimated: %v\n", ts.UnderEstimateFrac < 0.15)
	// Output:
	// jobs: 1000
	// max width within machine: true
	// mostly over-estimated: true
}

// Parsing a Standard Workload Format trace.
func ExampleReadSWF() {
	const swf = `; header comment
1 0 5 3600 8 -1 -1 8 7200 -1 1 3 1 -1 1 -1 -1 -1
2 600 0 1800 4 -1 -1 4 3600 -1 1 3 1 -1 1 -1 -1 -1
`
	jobs, err := workload.ReadSWF(strings.NewReader(swf))
	if err != nil {
		panic(err)
	}
	for _, j := range jobs {
		fmt.Printf("job %d: %d procs, runtime %.0f s, estimate %.0f s\n",
			j.ID, j.Procs, j.Runtime, j.Estimate)
	}
	// Output:
	// job 1: 8 procs, runtime 3600 s, estimate 7200 s
	// job 2: 4 procs, runtime 1800 s, estimate 3600 s
}

// Slicing a trace the way the paper does (its last 5000 jobs of SDSC SP2).
func ExampleLastN() {
	jobs := []*workload.Job{
		{ID: 7, Submit: 1000, Runtime: 60, Estimate: 60, Procs: 1},
		{ID: 8, Submit: 2000, Runtime: 60, Estimate: 60, Procs: 1},
		{ID: 9, Submit: 2600, Runtime: 60, Estimate: 60, Procs: 1},
	}
	tail := workload.LastN(jobs, 2)
	for _, j := range tail {
		fmt.Printf("job %d submits at %.0f\n", j.ID, j.Submit)
	}
	// Output:
	// job 1 submits at 0
	// job 2 submits at 600
}
