package workload

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// DiurnalConfig extends the synthetic generator with the daily arrival
// cycle production traces exhibit (Lublin & Feitelson): submissions are a
// non-homogeneous Poisson process whose rate swings between a night-time
// trough and a daytime peak. The paper's trace-driven evaluation inherits
// the SDSC trace's own cycle; this generator lets the robustness benches
// check that the policy orderings survive explicitly cyclical load.
type DiurnalConfig struct {
	// Base is the underlying shape configuration; its MeanInterArrival
	// sets the cycle's average rate.
	Base SynthConfig
	// PeakToTrough is the ratio of the peak arrival rate to the trough
	// rate (≥ 1; production traces show 3–10).
	PeakToTrough float64
	// PeakHour is the hour of virtual day at which the rate peaks.
	PeakHour float64
}

// DefaultDiurnalConfig returns the SDSC-calibrated shape with a 5:1 daily
// cycle peaking mid-afternoon.
func DefaultDiurnalConfig() DiurnalConfig {
	return DiurnalConfig{
		Base:         DefaultSynthConfig(),
		PeakToTrough: 5,
		PeakHour:     15,
	}
}

// Validate checks the configuration.
func (c *DiurnalConfig) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.PeakToTrough < 1 {
		return fmt.Errorf("workload: diurnal: peak:trough ratio %v < 1", c.PeakToTrough)
	}
	if c.PeakHour < 0 || c.PeakHour >= 24 {
		return fmt.Errorf("workload: diurnal: peak hour %v outside [0,24)", c.PeakHour)
	}
	return nil
}

const secondsPerDay = 24 * 3600

// rateFactor returns the instantaneous arrival-rate multiplier at virtual
// time t: a raised cosine between trough and peak with mean 1, so the
// trace keeps the configured mean inter-arrival time.
func (c *DiurnalConfig) rateFactor(t float64) float64 {
	// amplitude a in [0,1): factor = 1 + a·cos(phase), peak/trough =
	// (1+a)/(1−a)  =>  a = (r−1)/(r+1).
	a := (c.PeakToTrough - 1) / (c.PeakToTrough + 1)
	phase := 2 * math.Pi * (math.Mod(t, secondsPerDay)/secondsPerDay - c.PeakHour/24)
	return 1 + a*math.Cos(phase)
}

// GenerateDiurnal produces a deterministic synthetic trace whose arrivals
// follow the daily cycle (thinning a homogeneous Poisson process at the
// peak rate), with the same runtime/width/estimate model as Generate.
func GenerateDiurnal(cfg DiurnalConfig, seed int64) ([]*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRand(seed)
	peakFactor := 1 + (cfg.PeakToTrough-1)/(cfg.PeakToTrough+1)
	// Peak instantaneous rate (jobs/s); candidate arrivals are drawn at
	// this rate and thinned by rateFactor/peakFactor.
	peakRate := peakFactor / cfg.Base.MeanInterArrival
	jobs := make([]*Job, 0, cfg.Base.Jobs)
	now := 0.0
	for len(jobs) < cfg.Base.Jobs {
		now += stats.Exponential(rng, 1/peakRate)
		if !stats.Choice(rng, cfg.rateFactor(now)/peakFactor) {
			continue
		}
		runtime := stats.LogNormalFromMeanCV(rng, cfg.Base.MeanRuntime, cfg.Base.RuntimeCV)
		runtime = stats.Clamp(runtime, 1, cfg.Base.MaxRuntime)
		width := cfg.Base.Widths[stats.WeightedIndex(rng, cfg.Base.WidthWeights)]
		jobs = append(jobs, &Job{
			ID:       len(jobs) + 1,
			Submit:   math.Floor(now),
			Runtime:  math.Ceil(runtime),
			Estimate: synthesizeEstimate(rng, cfg.Base, runtime),
			Procs:    width,
		})
	}
	return jobs, nil
}

// HourlyArrivalHistogram bins a trace's submissions by hour of virtual day
// — handy for verifying (and plotting) the cycle.
func HourlyArrivalHistogram(jobs []*Job) [24]int {
	var h [24]int
	for _, j := range jobs {
		hour := int(math.Mod(j.Submit, secondsPerDay) / 3600)
		if hour >= 0 && hour < 24 {
			h[hour]++
		}
	}
	return h
}
