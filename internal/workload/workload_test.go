package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestJobValidate(t *testing.T) {
	good := Job{ID: 1, Submit: 0, Runtime: 10, Estimate: 12, Procs: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
	cases := map[string]Job{
		"zeroID":      {ID: 0, Runtime: 10, Estimate: 12, Procs: 4},
		"negSubmit":   {ID: 1, Submit: -1, Runtime: 10, Estimate: 12, Procs: 4},
		"zeroRuntime": {ID: 1, Runtime: 0, Estimate: 12, Procs: 4},
		"zeroEst":     {ID: 1, Runtime: 10, Estimate: 0, Procs: 4},
		"zeroProcs":   {ID: 1, Runtime: 10, Estimate: 12, Procs: 0},
	}
	for name, j := range cases {
		j := j
		if err := j.Validate(); err == nil {
			t.Errorf("%s: invalid job accepted", name)
		}
	}
}

func TestHasQoSAndAbsDeadline(t *testing.T) {
	j := Job{ID: 1, Submit: 100, Runtime: 10, Estimate: 10, Procs: 1}
	if j.HasQoS() {
		t.Error("HasQoS true before synthesis")
	}
	j.Deadline = 50
	j.Budget = 20
	if !j.HasQoS() {
		t.Error("HasQoS false after synthesis")
	}
	if j.AbsDeadline() != 150 {
		t.Errorf("AbsDeadline = %v, want 150", j.AbsDeadline())
	}
}

func TestCloneIndependence(t *testing.T) {
	j := &Job{ID: 1, Submit: 5, Runtime: 10, Estimate: 10, Procs: 2}
	c := j.Clone()
	c.Submit = 99
	if j.Submit != 5 {
		t.Error("Clone shares state with original")
	}
	all := CloneAll([]*Job{j})
	all[0].Runtime = 77
	if j.Runtime != 10 {
		t.Error("CloneAll shares state with original")
	}
}

func TestScaleArrivals(t *testing.T) {
	jobs := []*Job{
		{ID: 1, Submit: 100, Runtime: 1, Estimate: 1, Procs: 1},
		{ID: 2, Submit: 700, Runtime: 1, Estimate: 1, Procs: 1},
		{ID: 3, Submit: 1300, Runtime: 1, Estimate: 1, Procs: 1},
	}
	ScaleArrivals(jobs, 0.1)
	if jobs[0].Submit != 100 {
		t.Errorf("first submit moved to %v", jobs[0].Submit)
	}
	if jobs[1].Submit != 160 {
		t.Errorf("second submit = %v, want 160", jobs[1].Submit)
	}
	if jobs[2].Submit != 220 {
		t.Errorf("third submit = %v, want 220", jobs[2].Submit)
	}
}

func TestScaleArrivalsIdentity(t *testing.T) {
	jobs := []*Job{
		{ID: 1, Submit: 0, Runtime: 1, Estimate: 1, Procs: 1},
		{ID: 2, Submit: 600, Runtime: 1, Estimate: 1, Procs: 1},
	}
	ScaleArrivals(jobs, 1.0)
	if jobs[1].Submit != 600 {
		t.Errorf("factor 1.0 changed submit to %v", jobs[1].Submit)
	}
	ScaleArrivals(nil, 0.5) // must not panic
}

func TestScaleArrivalsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative factor did not panic")
		}
	}()
	ScaleArrivals([]*Job{{ID: 1, Submit: 0, Runtime: 1, Estimate: 1, Procs: 1}, {ID: 2, Submit: 5, Runtime: 1, Estimate: 1, Procs: 1}}, -1)
}

// Property: scaling preserves ordering and scales every gap exactly.
func TestScaleArrivalsProperty(t *testing.T) {
	f := func(gapsRaw []uint16, factorRaw uint8) bool {
		if len(gapsRaw) == 0 {
			return true
		}
		if len(gapsRaw) > 100 {
			gapsRaw = gapsRaw[:100]
		}
		factor := float64(factorRaw%40) / 10 // 0.0 .. 3.9
		jobs := make([]*Job, len(gapsRaw)+1)
		jobs[0] = &Job{ID: 1, Submit: 50, Runtime: 1, Estimate: 1, Procs: 1}
		at := 50.0
		for i, g := range gapsRaw {
			at += float64(g % 1000)
			jobs[i+1] = &Job{ID: i + 2, Submit: at, Runtime: 1, Estimate: 1, Procs: 1}
		}
		orig := make([]float64, len(jobs))
		for i, j := range jobs {
			orig[i] = j.Submit
		}
		ScaleArrivals(jobs, factor)
		for i := 1; i < len(jobs); i++ {
			wantGap := (orig[i] - orig[i-1]) * factor
			gotGap := jobs[i].Submit - jobs[i-1].Submit
			if math.Abs(gotGap-wantGap) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidateAllOrdering(t *testing.T) {
	jobs := []*Job{
		{ID: 1, Submit: 10, Runtime: 1, Estimate: 1, Procs: 1},
		{ID: 2, Submit: 5, Runtime: 1, Estimate: 1, Procs: 1},
	}
	if err := ValidateAll(jobs); err == nil {
		t.Error("out-of-order submissions accepted")
	}
}

const sampleSWF = `; SDSC SP2 style header
; Computer: IBM SP2
1 0 5 100 4 -1 -1 4 600 -1 1 3 1 -1 1 -1 -1 -1
2 30 -1 200 -1 -1 -1 8 300 -1 1 3 1 -1 1 -1 -1 -1
3 60 0 50 2 -1 -1 2 -1 -1 1 3 1 -1 1 -1 -1 -1
4 90 0 -1 2 -1 -1 2 100 -1 0 3 1 -1 1 -1 -1 -1
`

func TestReadSWF(t *testing.T) {
	jobs, err := ReadSWF(strings.NewReader(sampleSWF))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("parsed %d jobs, want 3 (job 4 has no runtime)", len(jobs))
	}
	j := jobs[0]
	if j.ID != 1 || j.Submit != 0 || j.Runtime != 100 || j.Procs != 4 || j.Estimate != 600 {
		t.Errorf("job 1 parsed as %+v", *j)
	}
	if jobs[1].Procs != 8 {
		t.Errorf("job 2 should fall back to requested procs, got %d", jobs[1].Procs)
	}
	if jobs[2].Estimate != 50 {
		t.Errorf("job 3 missing estimate should inherit runtime, got %v", jobs[2].Estimate)
	}
}

func TestReadSWFErrors(t *testing.T) {
	if _, err := ReadSWF(strings.NewReader("1 2 3\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadSWF(strings.NewReader(strings.Replace(sampleSWF, "100", "abc", 1))); err == nil {
		t.Error("non-numeric field accepted")
	}
}

func TestSWFRoundTrip(t *testing.T) {
	orig, err := Generate(smallConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig, "synthetic test trace\nsecond header line"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSWF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip lost jobs: %d -> %d", len(orig), len(back))
	}
	for i := range orig {
		o, b := orig[i], back[i]
		if o.ID != b.ID || o.Submit != b.Submit || o.Runtime != b.Runtime ||
			o.Estimate != b.Estimate || o.Procs != b.Procs {
			t.Fatalf("job %d mismatch: %+v vs %+v", i, *o, *b)
		}
	}
}

func TestLastN(t *testing.T) {
	jobs := []*Job{
		{ID: 10, Submit: 1000, Runtime: 1, Estimate: 1, Procs: 1},
		{ID: 11, Submit: 2000, Runtime: 1, Estimate: 1, Procs: 1},
		{ID: 12, Submit: 2500, Runtime: 1, Estimate: 1, Procs: 1},
	}
	tail := LastN(jobs, 2)
	if len(tail) != 2 {
		t.Fatalf("LastN returned %d jobs", len(tail))
	}
	if tail[0].Submit != 0 || tail[1].Submit != 500 {
		t.Errorf("rebasing wrong: %v, %v", tail[0].Submit, tail[1].Submit)
	}
	if tail[0].ID != 1 || tail[1].ID != 2 {
		t.Errorf("renumbering wrong: %d, %d", tail[0].ID, tail[1].ID)
	}
	if jobs[1].Submit != 2000 {
		t.Error("LastN mutated the source trace")
	}
	if got := LastN(jobs, 99); len(got) != 3 {
		t.Errorf("LastN larger than trace returned %d jobs", len(got))
	}
}

func smallConfig() SynthConfig {
	cfg := DefaultSynthConfig()
	cfg.Jobs = 400
	return cfg
}

func TestGenerateCalibration(t *testing.T) {
	cfg := DefaultSynthConfig()
	jobs, err := Generate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateAll(jobs); err != nil {
		t.Fatal(err)
	}
	ts := Stats(jobs, 128)
	if math.Abs(ts.MeanInterArrival-1969)/1969 > 0.10 {
		t.Errorf("mean inter-arrival = %v, want ~1969", ts.MeanInterArrival)
	}
	if math.Abs(ts.MeanRuntime-8671)/8671 > 0.10 {
		t.Errorf("mean runtime = %v, want ~8671", ts.MeanRuntime)
	}
	if ts.MeanWidth < 12 || ts.MeanWidth > 22 {
		t.Errorf("mean width = %v, want ~17", ts.MeanWidth)
	}
	if ts.MaxWidth > 128 {
		t.Errorf("width %d exceeds machine size", ts.MaxWidth)
	}
	if math.Abs(ts.UnderEstimateFrac-0.08) > 0.03 {
		t.Errorf("under-estimate fraction = %v, want ~0.08", ts.UnderEstimateFrac)
	}
}

func TestGenerateEstimateInvariants(t *testing.T) {
	jobs, err := Generate(smallConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Estimate == j.Runtime {
			t.Errorf("job %d: estimate exactly equals runtime (model should always err one way)", j.ID)
		}
		if j.Runtime <= 0 || j.Runtime > DefaultSynthConfig().MaxRuntime {
			t.Errorf("job %d: runtime %v outside (0, max]", j.ID, j.Runtime)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(smallConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("same seed produced different job %d: %+v vs %+v", i, *a[i], *b[i])
		}
	}
	c, err := Generate(smallConfig(), 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if *a[i] != *c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	mut := []func(*SynthConfig){
		func(c *SynthConfig) { c.Jobs = 0 },
		func(c *SynthConfig) { c.MeanInterArrival = 0 },
		func(c *SynthConfig) { c.MeanRuntime = -1 },
		func(c *SynthConfig) { c.RuntimeCV = 0 },
		func(c *SynthConfig) { c.MaxRuntime = 1 },
		func(c *SynthConfig) { c.Widths = nil },
		func(c *SynthConfig) { c.WidthWeights = c.WidthWeights[:2] },
		func(c *SynthConfig) { c.UnderEstimateFrac = 1.5 },
		func(c *SynthConfig) { c.MinOverAccuracy = 0 },
		func(c *SynthConfig) { c.EstimateRounding = 0 },
		func(c *SynthConfig) { c.Widths = []int{0, 1, 2, 4, 8, 16, 32, 64} },
	}
	for i, m := range mut {
		cfg := DefaultSynthConfig()
		m(&cfg)
		if _, err := Generate(cfg, 1); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestStatsEmpty(t *testing.T) {
	ts := Stats(nil, 128)
	if ts.Jobs != 0 || ts.OfferedUtilization != 0 {
		t.Errorf("empty stats = %+v", ts)
	}
}

func TestReadSWFRejectsNonFinite(t *testing.T) {
	for _, bad := range []string{"NaN", "Inf", "-Inf", "1e400"} {
		line := "1 0 5 " + bad + " 4 -1 -1 4 600 -1 1 3 1 -1 1 -1 -1 -1\n"
		if _, err := ReadSWF(strings.NewReader(line)); err == nil {
			t.Errorf("runtime %q accepted", bad)
		}
	}
}

func TestFilter(t *testing.T) {
	jobs := []*Job{
		{ID: 1, Submit: 0, Runtime: 10, Estimate: 10, Procs: 1},
		{ID: 2, Submit: 10, Runtime: 10, Estimate: 10, Procs: 8},
		{ID: 3, Submit: 20, Runtime: 10, Estimate: 10, Procs: 2},
	}
	wide := Filter(jobs, func(j *Job) bool { return j.Procs > 1 })
	if len(wide) != 2 || wide[0].ID != 2 || wide[1].ID != 3 {
		t.Errorf("Filter returned %v", wide)
	}
	if got := Filter(jobs, func(*Job) bool { return false }); len(got) != 0 {
		t.Errorf("empty filter returned %d jobs", len(got))
	}
}

func TestWindow(t *testing.T) {
	jobs := []*Job{
		{ID: 1, Submit: 0, Runtime: 10, Estimate: 10, Procs: 1},
		{ID: 2, Submit: 100, Runtime: 10, Estimate: 10, Procs: 1},
		{ID: 3, Submit: 200, Runtime: 10, Estimate: 10, Procs: 1},
		{ID: 4, Submit: 300, Runtime: 10, Estimate: 10, Procs: 1},
	}
	w := Window(jobs, 100, 300)
	if len(w) != 2 {
		t.Fatalf("Window kept %d jobs, want 2", len(w))
	}
	if w[0].Submit != 0 || w[1].Submit != 100 {
		t.Errorf("rebase wrong: %v, %v", w[0].Submit, w[1].Submit)
	}
	if w[0].ID != 1 || w[1].ID != 2 {
		t.Errorf("renumber wrong: %d, %d", w[0].ID, w[1].ID)
	}
	if jobs[1].Submit != 100 {
		t.Error("Window mutated the source")
	}
	if got := Window(jobs, 500, 600); len(got) != 0 {
		t.Errorf("empty window returned %d jobs", len(got))
	}
}
