package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSWF hardens the trace parser against arbitrary input: it must
// never panic, and whatever it accepts must be valid, re-serializable, and
// stable under a round trip.
func FuzzReadSWF(f *testing.F) {
	f.Add(sampleSWF)
	f.Add("")
	f.Add("; comment only\n")
	f.Add("1 0 5 100 4 -1 -1 4 600 -1 1 3 1 -1 1 -1 -1 -1\n")
	f.Add("1 0 5 100 4 -1 -1 4 600 -1 1 3 1 -1 1 -1 -1\n") // 17 fields
	f.Add("1 0 5 1e309 4 -1 -1 4 600 -1 1 3 1 -1 1 -1 -1 -1\n")
	f.Add("1 -5 5 100 4 -1 -1 4 600 -1 1 3 1 -1 1 -1 -1 -1\n")
	f.Add(strings.Repeat("9", 400) + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		jobs, err := ReadSWF(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, j := range jobs {
			if j.Runtime <= 0 || j.Procs <= 0 || j.Submit < 0 || j.Estimate <= 0 {
				t.Fatalf("parser accepted unusable job %+v", *j)
			}
		}
		// Round trip: what we write must parse back to the same jobs.
		var buf bytes.Buffer
		if err := WriteSWF(&buf, jobs, ""); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		back, err := ReadSWF(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if len(back) != len(jobs) {
			t.Fatalf("round trip changed job count %d -> %d", len(jobs), len(back))
		}
	})
}
