package workload

import (
	"math"
	"testing"
)

func TestDiurnalValidation(t *testing.T) {
	cfg := DefaultDiurnalConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultDiurnalConfig()
	bad.PeakToTrough = 0.5
	if _, err := GenerateDiurnal(bad, 1); err == nil {
		t.Error("peak:trough < 1 accepted")
	}
	bad = DefaultDiurnalConfig()
	bad.PeakHour = 24
	if _, err := GenerateDiurnal(bad, 1); err == nil {
		t.Error("peak hour 24 accepted")
	}
	bad = DefaultDiurnalConfig()
	bad.Base.Jobs = 0
	if _, err := GenerateDiurnal(bad, 1); err == nil {
		t.Error("bad base config accepted")
	}
}

func TestDiurnalRateFactorShape(t *testing.T) {
	cfg := DefaultDiurnalConfig()
	peak := cfg.rateFactor(cfg.PeakHour * 3600)
	trough := cfg.rateFactor(math.Mod(cfg.PeakHour*3600+12*3600, secondsPerDay))
	if ratio := peak / trough; math.Abs(ratio-cfg.PeakToTrough) > 1e-9 {
		t.Errorf("peak/trough = %v, want %v", ratio, cfg.PeakToTrough)
	}
	// Mean of the factor over a day must be ~1 so the configured mean
	// inter-arrival is preserved.
	sum := 0.0
	const n = 24 * 60
	for i := 0; i < n; i++ {
		sum += cfg.rateFactor(float64(i) * 60)
	}
	if mean := sum / n; math.Abs(mean-1) > 1e-6 {
		t.Errorf("mean rate factor = %v, want 1", mean)
	}
}

func TestDiurnalGenerate(t *testing.T) {
	cfg := DefaultDiurnalConfig()
	cfg.Base.Jobs = 4000
	jobs, err := GenerateDiurnal(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4000 {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	if err := ValidateAll(jobs); err != nil {
		t.Fatal(err)
	}
	ts := Stats(jobs, 128)
	// Mean inter-arrival preserved within tolerance despite the cycle.
	if math.Abs(ts.MeanInterArrival-cfg.Base.MeanInterArrival)/cfg.Base.MeanInterArrival > 0.10 {
		t.Errorf("mean inter-arrival = %v, want ~%v", ts.MeanInterArrival, cfg.Base.MeanInterArrival)
	}
}

func TestDiurnalCycleVisible(t *testing.T) {
	cfg := DefaultDiurnalConfig()
	cfg.Base.Jobs = 8000
	cfg.Base.MeanInterArrival = 300 // many days' worth, dense
	jobs, err := GenerateDiurnal(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	h := HourlyArrivalHistogram(jobs)
	peakHour := int(cfg.PeakHour)
	troughHour := (peakHour + 12) % 24
	if h[peakHour] <= h[troughHour] {
		t.Errorf("peak hour count %d not above trough hour count %d", h[peakHour], h[troughHour])
	}
	// The empirical ratio should be well above 2 for a 5:1 configured
	// cycle (sampling noise allowed).
	if ratio := float64(h[peakHour]) / float64(h[troughHour]); ratio < 2 {
		t.Errorf("empirical peak:trough = %v, want > 2", ratio)
	}
}

func TestDiurnalDeterminism(t *testing.T) {
	cfg := DefaultDiurnalConfig()
	cfg.Base.Jobs = 300
	a, err := GenerateDiurnal(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDiurnal(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("same seed diverged at job %d", i)
		}
	}
}
