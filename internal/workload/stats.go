package workload

// TraceStats summarizes a trace against the figures the paper reports for
// its SDSC SP2 subset (mean inter-arrival 1969 s, mean runtime 8671 s, mean
// width 17 processors, 8% under-estimates).
type TraceStats struct {
	Jobs              int
	MeanInterArrival  float64
	MeanRuntime       float64
	MeanWidth         float64
	MaxWidth          int
	Span              float64 // first submit to last completion (dedicated)
	UnderEstimateFrac float64
	// OfferedUtilization is total work / (nodes × span): the load the trace
	// offers a machine of the given size if jobs ran back-to-back.
	OfferedUtilization float64
}

// Stats computes TraceStats for jobs on a machine with the given node
// count.
func Stats(jobs []*Job, nodes int) TraceStats {
	var ts TraceStats
	ts.Jobs = len(jobs)
	if len(jobs) == 0 {
		return ts
	}
	var work, runtimeSum, widthSum float64
	under := 0
	end := 0.0
	for _, j := range jobs {
		runtimeSum += j.Runtime
		widthSum += float64(j.Procs)
		work += j.Runtime * float64(j.Procs)
		if j.Procs > ts.MaxWidth {
			ts.MaxWidth = j.Procs
		}
		if j.Estimate < j.Runtime {
			under++
		}
		if fin := j.Submit + j.Runtime; fin > end {
			end = fin
		}
	}
	n := float64(len(jobs))
	ts.MeanRuntime = runtimeSum / n
	ts.MeanWidth = widthSum / n
	ts.UnderEstimateFrac = float64(under) / n
	ts.Span = end - jobs[0].Submit
	if len(jobs) > 1 {
		ts.MeanInterArrival = (jobs[len(jobs)-1].Submit - jobs[0].Submit) / (n - 1)
	}
	if nodes > 0 && ts.Span > 0 {
		ts.OfferedUtilization = work / (float64(nodes) * ts.Span)
	}
	return ts
}

// Filter returns the jobs satisfying pred, preserving order. The returned
// slice shares job pointers with the input (jobs are immutable inputs).
func Filter(jobs []*Job, pred func(*Job) bool) []*Job {
	var out []*Job
	for _, j := range jobs {
		if pred(j) {
			out = append(out, j)
		}
	}
	return out
}

// Window returns the jobs submitted in [from, to), rebased so the first
// kept job submits at 0 and renumbered from 1 — the standard
// trace-slicing operation of workload archives.
func Window(jobs []*Job, from, to float64) []*Job {
	kept := Filter(jobs, func(j *Job) bool { return j.Submit >= from && j.Submit < to })
	out := CloneAll(kept)
	if len(out) == 0 {
		return out
	}
	base := out[0].Submit
	for i, j := range out {
		j.Submit -= base
		j.ID = i + 1
	}
	return out
}
