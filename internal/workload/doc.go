// Package workload models parallel jobs and their sources: the Standard
// Workload Format (SWF) used by the Parallel Workloads Archive, and a
// synthetic generator calibrated to the statistics the paper reports for its
// 5000-job subset of the SDSC SP2 trace.
package workload
