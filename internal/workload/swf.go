package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The Standard Workload Format (SWF) of the Parallel Workloads Archive:
// one job per line, 18 whitespace-separated fields, -1 for missing values,
// comment/header lines starting with ';'. Field indices (0-based):
//
//	0 job number          6 used memory         12 group ID
//	1 submit time         7 requested procs     13 executable
//	2 wait time           8 requested time      14 queue
//	3 run time            9 requested memory    15 partition
//	4 allocated procs    10 status              16 preceding job
//	5 average CPU time   11 user ID             17 think time
//
// ReadSWF lets a real SDSC-SP2 trace file drop into this reproduction
// unchanged; WriteSWF round-trips synthetic traces for external tools.

const swfFields = 18

// ReadSWF parses an SWF stream into jobs. Jobs with missing or non-positive
// runtime or width are skipped (matching the usual "cleaned trace" handling);
// a job whose estimate is missing inherits its runtime as the estimate.
func ReadSWF(r io.Reader) ([]*Job, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var jobs []*Job
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < swfFields {
			return nil, fmt.Errorf("workload: swf line %d: %d fields, want %d", line, len(fields), swfFields)
		}
		get := func(i int) (float64, error) {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return 0, fmt.Errorf("workload: swf line %d field %d: %v", line, i, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("workload: swf line %d field %d: non-finite value %v", line, i, v)
			}
			return v, nil
		}
		id, err := get(0)
		if err != nil {
			return nil, err
		}
		submit, err := get(1)
		if err != nil {
			return nil, err
		}
		runtime, err := get(3)
		if err != nil {
			return nil, err
		}
		alloc, err := get(4)
		if err != nil {
			return nil, err
		}
		reqProcs, err := get(7)
		if err != nil {
			return nil, err
		}
		reqTime, err := get(8)
		if err != nil {
			return nil, err
		}
		procs := alloc
		if procs <= 0 {
			procs = reqProcs
		}
		if runtime <= 0 || procs <= 0 || submit < 0 {
			continue // unusable record, as in cleaned traces
		}
		est := reqTime
		if est <= 0 {
			est = runtime
		}
		jobs = append(jobs, &Job{
			ID:       int(id),
			Submit:   submit,
			Runtime:  runtime,
			Estimate: est,
			Procs:    int(procs),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading swf: %w", err)
	}
	return jobs, nil
}

// WriteSWF writes jobs as a valid SWF stream with a minimal header. Fields
// this model does not carry are written as -1.
func WriteSWF(w io.Writer, jobs []*Job, comment string) error {
	bw := bufio.NewWriter(w)
	if comment != "" {
		for _, l := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(bw, "; %s\n", l); err != nil {
				return err
			}
		}
	}
	for _, j := range jobs {
		// job submit wait run alloc cpu mem reqprocs reqtime reqmem
		// status uid gid exe queue partition preceding think
		_, err := fmt.Fprintf(bw, "%d %.0f -1 %.0f %d -1 -1 %d %.0f -1 1 -1 -1 -1 -1 -1 -1 -1\n",
			j.ID, j.Submit, j.Runtime, j.Procs, j.Procs, j.Estimate)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LastN returns the last n jobs of a trace (the paper uses the last 5000
// jobs of SDSC SP2), rebased so the first returned job submits at time 0 and
// renumbered from 1.
func LastN(jobs []*Job, n int) []*Job {
	if n > len(jobs) {
		n = len(jobs)
	}
	tail := CloneAll(jobs[len(jobs)-n:])
	if len(tail) == 0 {
		return tail
	}
	base := tail[0].Submit
	for i, j := range tail {
		j.Submit -= base
		j.ID = i + 1
	}
	return tail
}
