package workload

import "fmt"

// Job is one parallel job: its trace-derived shape (submit, runtime,
// estimate, width) plus the utility-computing service parameters the QoS
// synthesizer attaches (deadline, budget, penalty rate), which the SDSC
// trace does not carry.
type Job struct {
	// ID is the 1-based job number.
	ID int
	// Submit is the submission time, seconds from the start of the trace.
	Submit float64
	// Runtime is the actual execution time in seconds on dedicated
	// processors.
	Runtime float64
	// Estimate is the user-provided runtime estimate in seconds. Admission
	// controls see Estimate; the simulation completes jobs after Runtime.
	Estimate float64
	// Procs is the number of processors the job requires.
	Procs int

	// Deadline is the time allowed to complete the job, in seconds from
	// Submit. Zero means "not set" (the QoS synthesizer fills it).
	Deadline float64
	// Budget is the most the user will pay for completion, in dollars.
	Budget float64
	// PenaltyRate is the utility lost per second of completion delay past
	// the deadline under the bid-based model, in dollars per second.
	PenaltyRate float64
	// HighUrgency marks the job's class: high urgency means a tight
	// deadline with a high budget and penalty rate.
	HighUrgency bool
}

// Validate reports whether the job's shape fields are usable for
// simulation.
func (j *Job) Validate() error {
	switch {
	case j.ID <= 0:
		return fmt.Errorf("workload: job %d: non-positive ID", j.ID)
	case j.Submit < 0:
		return fmt.Errorf("workload: job %d: negative submit %v", j.ID, j.Submit)
	case j.Runtime <= 0:
		return fmt.Errorf("workload: job %d: non-positive runtime %v", j.ID, j.Runtime)
	case j.Estimate <= 0:
		return fmt.Errorf("workload: job %d: non-positive estimate %v", j.ID, j.Estimate)
	case j.Procs <= 0:
		return fmt.Errorf("workload: job %d: non-positive width %d", j.ID, j.Procs)
	}
	return nil
}

// HasQoS reports whether the QoS fields have been synthesized.
func (j *Job) HasQoS() bool {
	return j.Deadline > 0 && j.Budget > 0
}

// AbsDeadline returns the absolute deadline (submit + relative deadline).
func (j *Job) AbsDeadline() float64 { return j.Submit + j.Deadline }

// Clone returns a copy of the job. Schedulers mutate per-run state kept
// elsewhere; jobs themselves are treated as immutable inputs, and Clone
// protects a shared trace when a run needs to rescale it.
func (j *Job) Clone() *Job {
	c := *j
	return &c
}

// CloneAll deep-copies a slice of jobs.
func CloneAll(jobs []*Job) []*Job {
	out := make([]*Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.Clone()
	}
	return out
}

// ScaleArrivals multiplies every inter-arrival gap by factor, keeping the
// first submission time fixed. This implements the paper's "arrival delay
// factor": 0.1 turns a 600 s gap into a 60 s gap (higher load).
func ScaleArrivals(jobs []*Job, factor float64) {
	if len(jobs) == 0 {
		return
	}
	if factor < 0 {
		panic(fmt.Sprintf("workload: negative arrival delay factor %v", factor))
	}
	base := jobs[0].Submit
	prevOrig := jobs[0].Submit
	prevNew := jobs[0].Submit
	_ = base
	for _, j := range jobs[1:] {
		gap := j.Submit - prevOrig
		prevOrig = j.Submit
		prevNew += gap * factor
		j.Submit = prevNew
	}
}

// ValidateAll checks every job and that submissions are non-decreasing.
func ValidateAll(jobs []*Job) error {
	prev := -1.0
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if j.Submit < prev {
			return fmt.Errorf("workload: job %d submitted at %v before previous job at %v", j.ID, j.Submit, prev)
		}
		prev = j.Submit
	}
	return nil
}
