package load

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/streamrisk"
)

// RiskStreamStats is the /v1/risk/stream subscriber probe's summary: what
// one SSE consumer saw while the load ran. Deltas carry the engine's
// strictly-increasing sequence numbers, so gaps in the delta stream are
// exactly the deltas this subscriber lost (dropped on its full buffer, or
// published before its anchor); resync frames count how often the server
// re-anchored it. EndLag is how far the consumer's last-seen sequence
// trailed the engine when the load finished — a loaded stream that keeps
// up ends with a small lag and few drops.
type RiskStreamStats struct {
	Snapshots   int64  `json:"snapshots"`
	Deltas      int64  `json:"deltas"`
	Resyncs     int64  `json:"resyncs"`
	DroppedSeen int64  `json:"dropped_deltas_seen"` // sequence-gap total across the stream
	LastSeq     uint64 `json:"last_seq"`            // highest sequence the stream delivered
	EndSeq      uint64 `json:"end_seq"`             // engine sequence from /v1/risk after the load
	EndLag      uint64 `json:"end_lag"`             // EndSeq - LastSeq (0 when the stream kept up)
	StreamError string `json:"stream_error,omitempty"`
}

// riskProbe is the in-flight subscriber; stop cancels it and result
// delivers the stats exactly once.
type riskProbe struct {
	stop   context.CancelFunc
	result chan RiskStreamStats
}

// startRiskProbe subscribes to the target's risk stream and consumes it
// until stopped, tracking sequence continuity. The probe is a normal slow
// consumer: it never blocks the engine, it just observes what the fan-out
// delivered. It dials with its own timeout-free client — the run's Client
// carries an overall request timeout that would sever a long-lived SSE
// stream mid-run; the probe's lifetime is bounded by its context instead.
func startRiskProbe(target string) *riskProbe {
	ctx, cancel := context.WithCancel(context.Background())
	p := &riskProbe{stop: cancel, result: make(chan RiskStreamStats, 1)}
	go func() {
		var st RiskStreamStats
		defer func() { p.result <- st }()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/v1/risk/stream", nil)
		if err != nil {
			st.StreamError = err.Error()
			return
		}
		resp, err := (&http.Client{}).Do(req)
		if err != nil {
			if ctx.Err() == nil {
				st.StreamError = err.Error()
			}
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			st.StreamError = fmt.Sprintf("status %d", resp.StatusCode)
			return
		}
		r := streamrisk.NewEventReader(resp.Body)
		for {
			ev, err := r.Next()
			if err != nil {
				if ctx.Err() == nil {
					st.StreamError = err.Error()
				}
				return
			}
			switch ev.Event {
			case streamrisk.EventSnapshot, streamrisk.EventResync:
				var snap streamrisk.Snapshot
				if err := json.Unmarshal(ev.Data, &snap); err != nil {
					st.StreamError = err.Error()
					return
				}
				if ev.Event == streamrisk.EventSnapshot {
					st.Snapshots++
				} else {
					st.Resyncs++
				}
				if snap.Seq > st.LastSeq {
					st.LastSeq = snap.Seq
				}
			case streamrisk.EventDelta:
				var d streamrisk.Delta
				if err := json.Unmarshal(ev.Data, &d); err != nil {
					st.StreamError = err.Error()
					return
				}
				st.Deltas++
				if d.Seq > st.LastSeq {
					if st.LastSeq != 0 && d.Seq > st.LastSeq+1 {
						st.DroppedSeen += int64(d.Seq - st.LastSeq - 1)
					}
					st.LastSeq = d.Seq
				}
			}
		}
	}()
	return p
}

// finish stops the probe and settles EndSeq/EndLag against the pull
// endpoint's view of the engine.
func (p *riskProbe) finish(client *http.Client, target string) RiskStreamStats {
	p.stop()
	st := <-p.result
	resp, err := client.Get(target + "/v1/risk")
	if err != nil {
		if st.StreamError == "" {
			st.StreamError = err.Error()
		}
		return st
	}
	defer resp.Body.Close()
	var snap streamrisk.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		if st.StreamError == "" {
			st.StreamError = err.Error()
		}
		return st
	}
	st.EndSeq = snap.Seq
	if st.EndSeq > st.LastSeq {
		st.EndLag = st.EndSeq - st.LastSeq
	}
	return st
}
