package load

import (
	"fmt"
	"net"
	"net/http"

	"repro/internal/serve"
	"repro/internal/serve/control"
)

// SelfHost boots a complete service plane inside this process — a control
// plane and n workers on loopback listeners — registers the workers, and
// returns the plane's base URL plus a shutdown function. It is how
// riskload (and the CI SLO job) drive a multi-worker topology without
// orchestrating processes: the topology is real HTTP end to end, just
// co-resident.
func SelfHost(n int) (string, func(), error) {
	if n <= 0 {
		return "", nil, fmt.Errorf("load: self-hosted topology needs at least one worker, got %d", n)
	}
	var servers []*http.Server
	shutdown := func() {
		for _, s := range servers {
			s.Close() // best-effort teardown of a loopback listener
		}
	}
	listen := func(h http.Handler) (string, error) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := &http.Server{Handler: h}
		servers = append(servers, srv)
		go srv.Serve(l) // Serve always returns a non-nil error on shutdown; teardown is the shutdown func's job
		return "http://" + l.Addr().String(), nil
	}

	plane := control.New(control.Config{})
	planeURL, err := listen(plane.Handler())
	if err != nil {
		return "", nil, err
	}
	for i := 1; i <= n; i++ {
		workerURL, err := listen(serve.New(serve.Config{}).Handler())
		if err != nil {
			shutdown()
			return "", nil, err
		}
		if err := plane.Register(fmt.Sprintf("w-%d", i), workerURL); err != nil {
			shutdown()
			return "", nil, err
		}
	}
	return planeURL, shutdown, nil
}
