package load

import (
	"math"
	"sync/atomic"
	"time"
)

// Log-bucketed histogram geometry: bucket 0 holds everything up to 1µs,
// each later bucket grows by ×1.25, so bucket i covers
// (1µs·1.25^(i-1), 1µs·1.25^i]. 96 buckets reach past 160s — beyond any
// sane request latency — and the last bucket is a catch-all.
const (
	bucketBase   = float64(time.Microsecond)
	bucketGrowth = 1.25
	bucketCount  = 96
)

// Histogram is a lock-free latency histogram with logarithmic buckets:
// ~25% relative quantile error, fixed memory, concurrent Record.
type Histogram struct {
	counts   [bucketCount]atomic.Int64
	total    atomic.Int64
	maxNanos atomic.Int64
}

func bucketOf(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	i := int(math.Log(float64(d)/bucketBase)/math.Log(bucketGrowth)) + 1
	if i >= bucketCount {
		return bucketCount - 1
	}
	return i
}

// bucketUpper is bucket i's inclusive upper latency bound.
func bucketUpper(i int) time.Duration {
	if i == 0 {
		return time.Microsecond
	}
	return time.Duration(bucketBase * math.Pow(bucketGrowth, float64(i)))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	for {
		cur := h.maxNanos.Load()
		if int64(d) <= cur || h.maxNanos.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Max returns the largest observation exactly (not bucket-rounded).
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNanos.Load()) }

// Quantile returns the upper bound of the bucket holding the q-th
// observation (0 < q ≤ 1) — a conservative estimate, never below the true
// quantile by more than the bucket's width. The catch-all last bucket
// answers with the exact maximum. Zero observations answer zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < bucketCount; i++ {
		cum += h.counts[i].Load()
		if cum >= target {
			if i == bucketCount-1 {
				return h.Max()
			}
			return bucketUpper(i)
		}
	}
	return h.Max()
}
