package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/qos"
	"repro/internal/serve"
	"repro/internal/workload"
)

// Config parameterizes one riskload run.
type Config struct {
	// Target is the base URL of the service plane (control plane or a
	// standalone worker).
	Target string
	// Rate is the open-loop session arrival rate per second (default 8).
	Rate float64
	// Sessions is the total number of sessions dispatched (default 16).
	Sessions int
	// Jobs is the number of job submissions per session (default 20).
	Jobs int
	// Seed roots the workload synthesis; session k's trace derives from
	// Seed+k (default 1).
	Seed int64
	// Policy and Model name the Table V pair every session runs (default
	// Libra under the commodity model).
	Policy string
	Model  string
	// Client issues the requests (default: 30s overall timeout).
	Client *http.Client
	// RiskStream, when set, keeps one /v1/risk/stream SSE subscriber open
	// for the whole run and reports what it saw (deltas, resyncs, dropped
	// deltas observed as sequence gaps, end-of-run lag) in the Result.
	RiskStream bool
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = 8
	}
	if c.Sessions <= 0 {
		c.Sessions = 16
	}
	if c.Jobs <= 0 {
		c.Jobs = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Policy == "" {
		c.Policy = "Libra"
	}
	if c.Model == "" {
		c.Model = "commodity"
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// OpStats summarizes one operation class's latency distribution in
// milliseconds (quantiles are log-bucket upper bounds; max is exact).
type OpStats struct {
	Count     int64   `json:"count"`
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
	P999Milli float64 `json:"p999_ms"`
	MaxMillis float64 `json:"max_ms"`
}

// Result is one riskload run's outcome: request counts, the open-loop
// punctuality figures, and per-operation latency summaries under the keys
// create, submit, finalize, and all.
type Result struct {
	Target          string             `json:"target"`
	Sessions        int                `json:"sessions"`
	JobsPerSession  int                `json:"jobs_per_session"`
	Requests        int64              `json:"requests"`
	Errors          int64              `json:"errors"`
	LateStarts      int64              `json:"late_starts"`
	DurationSeconds float64            `json:"duration_seconds"`
	Throughput      float64            `json:"requests_per_second"`
	Latency         map[string]OpStats `json:"latency"`
	// RiskStream is the risk-stream subscriber probe's summary, present
	// only when Config.RiskStream was set.
	RiskStream *RiskStreamStats `json:"risk_stream,omitempty"`
}

// SLO is a latency/error-budget gate over a Result's "all" operation
// class. Zero-valued fields are unchecked, except errors: a run must be
// error-free unless MaxErrorRate loosens that.
type SLO struct {
	P99          time.Duration
	P999         time.Duration
	MaxErrorRate float64
}

// Check returns the violated clauses, empty when the result meets the SLO.
func (s SLO) Check(r Result) []string {
	var violations []string
	all := r.Latency["all"]
	if s.P99 > 0 && all.P99Millis > float64(s.P99)/float64(time.Millisecond) {
		violations = append(violations, fmt.Sprintf("p99 %.3fms exceeds SLO %v", all.P99Millis, s.P99))
	}
	if s.P999 > 0 && all.P999Milli > float64(s.P999)/float64(time.Millisecond) {
		violations = append(violations, fmt.Sprintf("p999 %.3fms exceeds SLO %v", all.P999Milli, s.P999))
	}
	if r.Requests > 0 {
		rate := float64(r.Errors) / float64(r.Requests)
		if rate > s.MaxErrorRate {
			violations = append(violations, fmt.Sprintf("error rate %.4f (%d/%d) exceeds SLO %.4f", rate, r.Errors, r.Requests, s.MaxErrorRate))
		}
	}
	return violations
}

// runner carries one run's shared state.
type runner struct {
	cfg   Config
	hists map[string]*Histogram
	reqs  atomic.Int64
	errs  atomic.Int64
}

// Run drives the configured load against the target and summarizes it.
// The request stream is fully determined by the Config; the latencies are
// whatever the service actually did.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	traces := make([][]*workload.Job, cfg.Sessions)
	for k := range traces {
		synth := workload.DefaultSynthConfig()
		synth.Jobs = cfg.Jobs
		trace, err := workload.Generate(synth, cfg.Seed+int64(k))
		if err != nil {
			return Result{}, fmt.Errorf("load: generating session %d workload: %w", k, err)
		}
		if err := qos.Synthesize(trace, qos.DefaultConfig(cfg.Seed+int64(k)+1)); err != nil {
			return Result{}, fmt.Errorf("load: synthesizing session %d QoS: %w", k, err)
		}
		traces[k] = trace
	}

	r := &runner{cfg: cfg, hists: map[string]*Histogram{
		"create": {}, "submit": {}, "finalize": {}, "all": {},
	}}
	var probe *riskProbe
	if cfg.RiskStream {
		probe = startRiskProbe(cfg.Target)
	}
	var late atomic.Int64
	var wg sync.WaitGroup
	start := time.Now() //lint:allow wallclock — the load generator schedules real arrivals and measures real latency
	for k := 0; k < cfg.Sessions; k++ {
		due := start.Add(time.Duration(float64(k) / cfg.Rate * float64(time.Second)))
		if d := time.Until(due); d > 0 { //lint:allow wallclock — open-loop arrival schedule
			time.Sleep(d) //lint:allow wallclock — open-loop arrival schedule
		} else if d < -50*time.Millisecond {
			// The dispatcher itself fell behind the open-loop schedule —
			// the run is overloaded beyond what latency numbers alone show.
			late.Add(1)
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			r.driveSession(traces[k])
		}(k)
	}
	wg.Wait()
	elapsed := time.Since(start) //lint:allow wallclock — run duration is a reported measurement

	var streamStats *RiskStreamStats
	if probe != nil {
		st := probe.finish(cfg.Client, cfg.Target)
		streamStats = &st
	}

	res := Result{
		Target: cfg.Target, Sessions: cfg.Sessions, JobsPerSession: cfg.Jobs,
		Requests: r.reqs.Load(), Errors: r.errs.Load(), LateStarts: late.Load(),
		DurationSeconds: elapsed.Seconds(),
		Latency:         make(map[string]OpStats, len(r.hists)),
		RiskStream:      streamStats,
	}
	if res.DurationSeconds > 0 {
		res.Throughput = float64(res.Requests) / res.DurationSeconds
	}
	for op, h := range r.hists {
		res.Latency[op] = OpStats{
			Count:     h.Count(),
			P50Millis: float64(h.Quantile(0.50)) / float64(time.Millisecond),
			P99Millis: float64(h.Quantile(0.99)) / float64(time.Millisecond),
			P999Milli: float64(h.Quantile(0.999)) / float64(time.Millisecond),
			MaxMillis: float64(h.Max()) / float64(time.Millisecond),
		}
	}
	return res, nil
}

// driveSession runs one session's sequential request stream: create, the
// job stream, finalize, delete. The first error abandons the session —
// open-loop means the schedule never waits for it anyway.
func (r *runner) driveSession(jobs []*workload.Job) {
	var cr serve.CreateSessionResponse
	ok := r.do("create", http.MethodPost, "/v1/sessions", serve.CreateSessionRequest{
		Policy: r.cfg.Policy, Model: r.cfg.Model,
	}, http.StatusCreated, &cr)
	if !ok {
		return
	}
	for _, j := range jobs {
		if !r.do("submit", http.MethodPost, "/v1/sessions/"+cr.ID+"/jobs", serve.SubmitJobRequest{
			ID: j.ID, Submit: j.Submit, Runtime: j.Runtime, Estimate: j.Estimate,
			Procs: j.Procs, Deadline: j.Deadline, Budget: j.Budget,
			PenaltyRate: j.PenaltyRate, HighUrgency: j.HighUrgency,
		}, http.StatusOK, nil) {
			return
		}
	}
	if !r.do("finalize", http.MethodPost, "/v1/sessions/"+cr.ID+"/finalize", nil, http.StatusOK, nil) {
		return
	}
	r.do("finalize", http.MethodDelete, "/v1/sessions/"+cr.ID, nil, http.StatusOK, nil)
}

// do issues one timed request, recording its latency under op and "all".
// Network errors and unexpected statuses count as errors and return
// false.
func (r *runner) do(op, method, path string, body any, wantStatus int, out any) bool {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			r.errs.Add(1)
			return false
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, r.cfg.Target+path, rd)
	if err != nil {
		r.errs.Add(1)
		return false
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := time.Now() //lint:allow wallclock — service latency measurement
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		r.reqs.Add(1)
		r.errs.Add(1)
		return false
	}
	raw, readErr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	d := time.Since(t0) //lint:allow wallclock — service latency measurement
	r.hists[op].Record(d)
	r.hists["all"].Record(d)
	r.reqs.Add(1)
	if readErr != nil || resp.StatusCode != wantStatus {
		r.errs.Add(1)
		return false
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			r.errs.Add(1)
			return false
		}
	}
	return true
}
