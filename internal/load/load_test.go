package load

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}

	// 1000 observations: 990 at ~1ms, 10 at ~100ms. p50 and p99 must sit
	// in the 1ms bucket's range, p999 in the 100ms range.
	for i := 0; i < 990; i++ {
		h.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(100 * time.Millisecond)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d, want 1000", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v, want exactly 100ms", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < time.Millisecond || p50 > time.Duration(float64(time.Millisecond)*bucketGrowth) {
		t.Errorf("p50 = %v, want within one bucket above 1ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < time.Millisecond || p99 > time.Duration(float64(time.Millisecond)*bucketGrowth) {
		t.Errorf("p99 = %v, want within one bucket above 1ms", p99)
	}
	p999 := h.Quantile(0.999)
	if p999 < 100*time.Millisecond || p999 > time.Duration(float64(100*time.Millisecond)*bucketGrowth) {
		t.Errorf("p999 = %v, want within one bucket above 100ms", p999)
	}
}

// The quantile estimate is conservative: never below the true quantile,
// never more than one bucket growth factor above it.
func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	durations := []time.Duration{
		500 * time.Nanosecond, 3 * time.Microsecond, 40 * time.Microsecond,
		700 * time.Microsecond, 2 * time.Millisecond, 9 * time.Millisecond,
		77 * time.Millisecond, 400 * time.Millisecond, 3 * time.Second,
	}
	for _, d := range durations {
		h.Record(d)
	}
	for _, d := range durations {
		q := h.Quantile(1.0)
		if q < h.Max() {
			t.Fatalf("p100 = %v below max %v after recording %v", q, h.Max(), d)
		}
	}
	// Bucket edges are monotone and grow by exactly the growth factor.
	for i := 1; i < bucketCount-1; i++ {
		lo, hi := bucketUpper(i-1), bucketUpper(i)
		if hi <= lo {
			t.Fatalf("bucket %d upper %v not above bucket %d upper %v", i, hi, i-1, lo)
		}
		ratio := float64(hi) / float64(lo)
		if math.Abs(ratio-bucketGrowth) > 0.01*bucketGrowth {
			t.Fatalf("bucket %d growth ratio %.4f, want ~%.2f", i, ratio, bucketGrowth)
		}
	}
	// Extreme values stay in range: an observation beyond the bucket
	// geometry lands in the catch-all, which answers with the exact max.
	h.Record(0)
	h.Record(time.Hour)
	if got := h.Quantile(1.0); got != time.Hour {
		t.Errorf("catch-all bucket p100 = %v, want the exact 1h max", got)
	}
}

func TestSLOCheck(t *testing.T) {
	res := Result{
		Requests: 1000, Errors: 0,
		Latency: map[string]OpStats{"all": {Count: 1000, P99Millis: 12, P999Milli: 80}},
	}
	if v := (SLO{P99: 50 * time.Millisecond, P999: 200 * time.Millisecond}).Check(res); len(v) != 0 {
		t.Errorf("healthy result violated SLO: %v", v)
	}
	if v := (SLO{P99: 10 * time.Millisecond}).Check(res); len(v) != 1 {
		t.Errorf("p99 breach not caught: %v", v)
	}
	if v := (SLO{P999: 50 * time.Millisecond}).Check(res); len(v) != 1 {
		t.Errorf("p999 breach not caught: %v", v)
	}
	res.Errors = 5
	if v := (SLO{}).Check(res); len(v) != 1 {
		t.Errorf("default SLO tolerates errors: %v", v)
	}
	if v := (SLO{MaxErrorRate: 0.01}).Check(res); len(v) != 0 {
		t.Errorf("error rate under budget still violated: %v", v)
	}
}

// An end-to-end run against a self-hosted 2-worker topology: every
// request must succeed, the request count must be exactly determined by
// the config, and the result must serialize with all operation classes
// populated.
func TestRunAgainstSelfHostedTopology(t *testing.T) {
	url, shutdown, err := SelfHost(2)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	cfg := Config{Target: url, Rate: 200, Sessions: 6, Jobs: 8, Seed: 3}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("load run had %d errors (of %d requests)", res.Errors, res.Requests)
	}
	// create + jobs + finalize + delete per session.
	want := int64(cfg.Sessions * (cfg.Jobs + 3))
	if res.Requests != want {
		t.Errorf("requests = %d, want %d", res.Requests, want)
	}
	for _, op := range []string{"create", "submit", "finalize", "all"} {
		st, ok := res.Latency[op]
		if !ok || st.Count == 0 {
			t.Errorf("operation class %q missing or empty: %+v", op, st)
		}
		if st.P50Millis <= 0 || st.MaxMillis < st.P50Millis {
			t.Errorf("operation class %q has nonsensical latencies: %+v", op, st)
		}
	}
	if res.Latency["submit"].Count != int64(cfg.Sessions*cfg.Jobs) {
		t.Errorf("submit count = %d, want %d", res.Latency["submit"].Count, cfg.Sessions*cfg.Jobs)
	}
	if _, err := json.Marshal(res); err != nil {
		t.Errorf("result does not serialize: %v", err)
	}
	// A generous SLO holds; an absurd one is violated — the gate wiring
	// has teeth.
	if v := (SLO{P99: time.Minute}).Check(res); len(v) != 0 {
		t.Errorf("generous SLO violated: %v", v)
	}
	if v := (SLO{P99: time.Nanosecond}).Check(res); len(v) == 0 {
		t.Error("absurd SLO not violated")
	}
}

// The risk-stream probe rides a real run: it anchors on one snapshot,
// counts the deltas the fan-out delivered, and settles its end-of-run lag
// against the pull endpoint. The engine's final sequence is exactly the
// ingested event count — jobs decisions plus one final per session —
// and, absent resyncs, delivered + dropped + lag must account for every
// sequence number.
func TestRunRiskStreamProbe(t *testing.T) {
	url, shutdown, err := SelfHost(2)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	cfg := Config{Target: url, Rate: 200, Sessions: 4, Jobs: 6, Seed: 11, RiskStream: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("load run had %d errors (of %d requests)", res.Errors, res.Requests)
	}
	rs := res.RiskStream
	if rs == nil {
		t.Fatal("RiskStream stats missing from result")
	}
	if rs.StreamError != "" {
		t.Fatalf("stream error: %s", rs.StreamError)
	}
	if rs.Snapshots != 1 {
		t.Errorf("snapshots = %d, want exactly the anchor", rs.Snapshots)
	}
	want := uint64(cfg.Sessions * (cfg.Jobs + 1))
	if rs.EndSeq != want {
		t.Errorf("end seq = %d, want %d (every decision + final)", rs.EndSeq, want)
	}
	if rs.LastSeq > rs.EndSeq {
		t.Errorf("last streamed seq %d beyond engine seq %d", rs.LastSeq, rs.EndSeq)
	}
	if rs.Deltas == 0 {
		t.Error("no deltas delivered to a live subscriber")
	}
	if rs.Resyncs == 0 {
		// Without resync re-anchoring, the sequence space is fully
		// accounted for: delivered, demonstrably dropped, or still pending
		// at shutdown.
		if got := rs.Deltas + rs.DroppedSeen + int64(rs.EndLag); got != int64(rs.EndSeq) {
			t.Errorf("delivered %d + dropped %d + lag %d = %d, want %d",
				rs.Deltas, rs.DroppedSeen, rs.EndLag, got, rs.EndSeq)
		}
	}
	if _, err := json.Marshal(res); err != nil {
		t.Errorf("result does not serialize: %v", err)
	}
}

// A dead target surfaces in the probe's StreamError instead of hanging
// the run, and a run without the flag reports no stream section at all.
func TestRiskStreamProbeErrorPaths(t *testing.T) {
	res, err := Run(Config{Target: "http://127.0.0.1:1", Rate: 500, Sessions: 2, Jobs: 2, RiskStream: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.RiskStream == nil || res.RiskStream.StreamError == "" {
		t.Fatalf("dead target: probe stats %+v, want a stream error", res.RiskStream)
	}

	res, err = Run(Config{Target: "http://127.0.0.1:1", Rate: 500, Sessions: 2, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.RiskStream != nil {
		t.Errorf("probe stats present without the flag: %+v", res.RiskStream)
	}
}

// Probe-level error paths against a scripted server: a refusing stream
// endpoint, malformed snapshot and delta frames, and a settle endpoint
// that answers garbage. Each must surface as StreamError, never a hang.
func TestRiskProbeScriptedFailures(t *testing.T) {
	serve := func(stream func(w http.ResponseWriter), risk string) *httptest.Server {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/risk/stream", func(w http.ResponseWriter, r *http.Request) { stream(w) })
		mux.HandleFunc("/v1/risk", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte(risk)) })
		return httptest.NewServer(mux)
	}
	// Every scripted stream terminates the probe goroutine on its own;
	// wait for its result before finish so the cancel in finish cannot
	// race the error and suppress it.
	settled := func(p *riskProbe) *riskProbe {
		st := <-p.result
		p.result <- st
		return p
	}

	srv := serve(func(w http.ResponseWriter) { w.WriteHeader(http.StatusTeapot) }, `{"seq":5}`)
	st := settled(startRiskProbe(srv.URL)).finish(srv.Client(), srv.URL)
	srv.Close()
	if st.StreamError != "status 418" {
		t.Errorf("teapot stream: error %q, want status 418", st.StreamError)
	}
	if st.EndSeq != 5 || st.EndLag != 5 {
		t.Errorf("teapot stream settle: %+v, want EndSeq 5 lag 5", st)
	}

	srv = serve(func(w http.ResponseWriter) {
		w.Write([]byte("event: snapshot\ndata: {not json}\n\n"))
	}, `{"seq":0}`)
	st = settled(startRiskProbe(srv.URL)).finish(srv.Client(), srv.URL)
	srv.Close()
	if st.StreamError == "" || st.Snapshots != 0 {
		t.Errorf("malformed snapshot: %+v, want a decode error before counting", st)
	}

	srv = serve(func(w http.ResponseWriter) {
		w.Write([]byte("event: snapshot\ndata: {\"seq\":1}\n\nevent: delta\ndata: {bad}\n\n"))
	}, `{"seq":1}`)
	st = settled(startRiskProbe(srv.URL)).finish(srv.Client(), srv.URL)
	srv.Close()
	if st.StreamError == "" || st.Snapshots != 1 || st.Deltas != 0 {
		t.Errorf("malformed delta: %+v, want snapshot counted then a decode error", st)
	}

	srv = serve(func(w http.ResponseWriter) {
		w.Write([]byte("event: snapshot\ndata: {\"seq\":2}\n\n"))
	}, `not json`)
	st = settled(startRiskProbe(srv.URL)).finish(srv.Client(), srv.URL)
	srv.Close()
	if st.StreamError == "" || st.EndSeq != 0 {
		t.Errorf("garbage settle: %+v, want a decode error and no EndSeq", st)
	}
}

func TestSelfHostValidation(t *testing.T) {
	if _, _, err := SelfHost(0); err == nil {
		t.Error("SelfHost(0) succeeded")
	}
}

// Error paths: a dead target counts every request as an error without
// failing the run; a live server answering wrong statuses does too; the
// zero config fills in every default.
func TestRunErrorPaths(t *testing.T) {
	res, err := Run(Config{Target: "http://127.0.0.1:1", Rate: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 16 || res.JobsPerSession != 20 {
		t.Errorf("defaults not applied: %+v", res)
	}
	if res.Requests == 0 || res.Errors != res.Requests {
		t.Errorf("dead target: %d errors of %d requests, want all", res.Errors, res.Requests)
	}

	// A teapot refuses every operation with an unexpected status: the
	// session is abandoned at create, one error per session.
	teapot := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	defer teapot.Close()
	res, err = Run(Config{Target: teapot.URL, Rate: 500, Sessions: 3, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 3 || res.Errors != 3 {
		t.Errorf("teapot target: %d errors of %d requests, want 3 of 3", res.Errors, res.Requests)
	}

	// Create succeeds but the job stream fails: the session abandons
	// mid-stream, so exactly two requests land per session.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"id":"x"}`))
	})
	mux.HandleFunc("POST /v1/sessions/x/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	broken := httptest.NewServer(mux)
	defer broken.Close()
	res, err = Run(Config{Target: broken.URL, Rate: 500, Sessions: 2, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4 || res.Errors != 2 {
		t.Errorf("mid-stream failure: %d errors of %d requests, want 2 of 4", res.Errors, res.Requests)
	}
}

// Record clamps negatives and Quantile clamps a vanishing q to the first
// observation.
func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	h.Record(5 * time.Millisecond)
	if got := h.Quantile(1e-12); got != time.Microsecond {
		t.Errorf("vanishing q = %v, want the first bucket's bound", got)
	}
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
}
