// Package load is the riskload load generator: an open-loop driver for
// the service plane (a control plane or a standalone worker) that records
// request-latency histograms and checks them against SLOs.
//
// The arrival schedule is open-loop and deterministic: session k is
// dispatched at start + k/Rate regardless of how the service is keeping
// up, so a slow service faces mounting concurrency instead of a
// conveniently self-throttling client — the standard guard against
// coordinated omission. Within a session, requests are sequential
// (create, the job stream, finalize, delete), matching how a real client
// must drive a session. The workload itself is fully seeded: session k's
// trace derives from Seed+k through the same workload and QoS
// synthesizers the experiments use, so two riskload runs against the same
// topology issue byte-identical request streams.
//
// Latencies land in lock-free log-bucketed histograms (~25% bucket
// growth), reported as p50/p99/p999/max per operation class. Quantiles
// are bucket upper bounds — conservative, never flattering. SLO gates
// compare those quantiles and the error rate against thresholds; riskload
// exits nonzero on violation, with the same escape-hatch convention as
// the bench gate (SLO_GATE=off).
//
// Wall-clock time appears throughout — scheduling arrivals and measuring
// service latency is precisely this package's job — and every site
// carries the wallclock lint annotation saying so. None of it ever
// reaches a simulation: the sessions driven here run in virtual time on
// the serving side, exactly like any other client's.
package load
