package lint

import (
	"go/ast"
	"go/types"
)

// errignoreAnalyzer flags call statements that silently discard an error
// result in the I/O-bearing packages (internal/obs, internal/experiment).
// The journal and results files are the substrate of checkpoint/resume: a
// swallowed write error there means a later -resume silently reconstructs
// panels from a truncated journal. Deliberate discards — a hash.Hash Write
// that cannot fail, best-effort progress output — carry a //lint:allow
// errignore directive with the justification. `defer f.Close()` and `go
// f()` are statement forms of their own and are not flagged.
var errignoreAnalyzer = &Analyzer{
	Name:  "errignore",
	Doc:   "call statement discarding an error result in obs/experiment journal and report I/O",
	Match: inPackages("internal/obs", "internal/experiment"),
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				es, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				sig, ok := pass.Pkg.Info.TypeOf(call.Fun).(*types.Signature)
				if !ok {
					return true // builtin or conversion
				}
				res := sig.Results()
				for i := 0; i < res.Len(); i++ {
					if isErrorType(res.At(i).Type()) {
						pass.Reportf(call.Pos(),
							"%s returns an error that is discarded; handle it or annotate the discard with //lint:allow errignore", types.ExprString(call.Fun))
						break
					}
				}
				return true
			})
		}
	},
}
