package lint

import (
	"go/ast"
	"go/token"
)

// floateqAnalyzer flags == and != between floating-point operands in the
// numeric packages (internal/metrics, internal/stats, internal/risk, and
// the incremental scores in internal/streamrisk).
// Objective normalization, σ estimation, and ranking all accumulate
// rounding error, so exact comparison is almost always a latent bug there;
// the rare intentional identity check (a sentinel, an exact-zero guard on a
// value never computed) carries a //lint:allow floateq directive instead.
// Comparisons where both operands are compile-time constants are exempt.
var floateqAnalyzer = &Analyzer{
	Name:  "floateq",
	Doc:   "exact ==/!= on floating-point values in metrics/stats/risk; compare with a tolerance",
	Match: inPackages("internal/metrics", "internal/stats", "internal/risk", "internal/streamrisk"),
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt, yt := pass.Pkg.Info.Types[be.X], pass.Pkg.Info.Types[be.Y]
				if !isFloat(xt.Type) && !isFloat(yt.Type) {
					return true
				}
				if xt.Value != nil && yt.Value != nil {
					return true
				}
				pass.Reportf(be.OpPos,
					"exact floating-point %s comparison; use a tolerance, or //lint:allow floateq for an intentional identity check", be.Op)
				return true
			})
		}
	},
}
