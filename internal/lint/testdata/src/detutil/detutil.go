// Package detutil is the taint-source helper for the detflow golden cases:
// scheduler entry points in the fixture reach these functions indirectly,
// so the direct-call rules fire here and the reachability rule fires at the
// entry points.
package detutil

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock; callers become wall-clock tainted.
func Stamp() time.Time {
	return time.Now() // want wallclock "time.Now"
}

// Draw uses the shared global rand; callers become rand tainted.
func Draw() int {
	return rand.Intn(10) // want globalrand "math/rand.Intn"
}

// StampAllowed carries the documented exemption, which acts as a taint
// sanitizer: callers stay clean.
func StampAllowed() time.Time {
	return time.Now() //lint:allow wallclock — fixture: documented real-time read; sanitizes callers
}
