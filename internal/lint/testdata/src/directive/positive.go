// Package directive is the golden case for directive hygiene: a
// suppression without a reason or naming an unknown rule is itself a
// finding, so a typo cannot silently disable a rule.
package directive

// Placeholder keeps the package non-empty.
func Placeholder() {}

//lint:allow wallclock (missing the required reason) // want directive "malformed"

//lint:allow nosuchrule — the rule name is misspelled // want directive "unknown rule"
