// Package wallclock is the positive golden case for the wallclock rule:
// every wall-clock read below must be reported, including through an
// import rename.
package wallclock

import (
	"time"
	clock "time"
)

// Elapsed measures with the wall clock instead of simulation time.
func Elapsed() time.Duration {
	start := time.Now()          // want wallclock "time.Now"
	time.Sleep(time.Millisecond) // want wallclock "time.Sleep"
	return time.Since(start)     // want wallclock "time.Since"
}

// Renamed hides the import behind another name; the type checker sees
// through it.
func Renamed() clock.Time {
	return clock.Now() // want wallclock "time.Now"
}

// Pure conversions and constructors are deterministic and not flagged.
func Pure() time.Time {
	return time.Unix(0, 0).Add(3 * time.Second)
}
