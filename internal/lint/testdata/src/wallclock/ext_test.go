package wallclock_test

import (
	"time"

	"fixture/wallclock"
)

// External test packages (package foo_test) are compiled separately but
// analyzed under the same rules.
func deadline() time.Time {
	_ = wallclock.Pure()
	return time.Now() // want wallclock "time.Now"
}
