package wallclock

import "time"

// Stamp is legitimate real-time accounting, exempted in place with a
// documented reason.
func Stamp() time.Time {
	return time.Now() //lint:allow wallclock — fixture: real-time accounting, documented exemption
}
