package wallclock

import "time"

// Test files are analyzed when the run includes them (-tests): wallclock
// applies, with the same in-place exemption mechanism.
func measure() time.Duration {
	return time.Since(time.Unix(0, 0)) // want wallclock "time.Since"
}

func waitBriefly() {
	time.Sleep(0) //lint:allow wallclock — fixture: real-time test timeout, documented
}
