// Package hotalloc is the positive golden case for the hotalloc rule:
// allocation-causing constructs in any function reachable from a
// //lint:hot root are reported; the same constructs in cold code are not.
package hotalloc

import "fmt"

type pair struct{ a, b int }

// Root is the annotated hot entry; everything it reaches is hot.
//
//lint:hot
func Root(n int) string {
	helper(n)
	return fmt.Sprintf("%d", n) // want hotalloc "fmt.Sprintf"
}

// helper is hot by reachability from Root.
func helper(n int) {
	var xs []int
	xs = append(xs, n)           // want hotalloc "append"
	m := make(map[int]int)       // want hotalloc "make"
	p := &pair{a: n}             // want hotalloc "composite literal"
	v := []int{n}                // want hotalloc "slice/map composite literal"
	f := func() int { return n } // want hotalloc "function literal"
	s := label(n) + "x"          // want hotalloc "string concatenation"
	s += "y"                     // want hotalloc "string concatenation"
	b := []byte(s)               // want hotalloc "conversion"
	sink(n)                      // want hotalloc "boxes"
	_, _, _, _, _, _ = xs, m, p, v, b, f
}

func label(int) string { return "n" }

func sink(v any) { _ = v }

// cold has the same constructs but is not reachable from any hot root:
// nothing is reported.
func cold(n int) {
	var xs []int
	xs = append(xs, n)
	s := fmt.Sprintf("%d", n)
	_, _ = xs, s
}
