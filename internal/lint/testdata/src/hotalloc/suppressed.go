package hotalloc

// Pool is a hot root whose one allocation is a documented, amortized
// exception — the pool-growth idiom the real event kernel uses.
//
//lint:hot
func Pool(free []*pair) []*pair {
	//lint:allow hotalloc — fixture: amortized pool growth, steady state reuses the free list
	return append(free, &pair{})
}
