package globalrand

import "math/rand"

// Jitter draws from the global source under a documented exemption.
func Jitter() float64 {
	return rand.Float64() //lint:allow globalrand — fixture: demo-only jitter, determinism not required
}
