// Package globalrand is the positive golden case for the globalrand rule:
// package-level draws and wall-clock seeding must be reported; explicit
// seeded sources must not.
package globalrand

import (
	"math/rand"
	"time"
)

// Draw uses the shared global source.
func Draw() float64 {
	return rand.Float64() // want globalrand "global source"
}

// Order uses the shared global source for a permutation.
func Order(n int) []int {
	return rand.Perm(n) // want globalrand "global source"
}

// Reseed mutates the shared global source.
func Reseed() {
	rand.Seed(42) // want globalrand "global source"
}

// TimeSeeded constructs an explicit source but seeds it from the wall
// clock, which differs on every run.
func TimeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want globalrand "time.Now"  want wallclock "time.Now"
}

// Seeded is the sanctioned shape: an explicit, configuration-derived seed.
func Seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
