// Package maporder is the positive golden case for the maporder rule:
// order-sensitive map-range bodies must be reported, order-insensitive
// ones (sums, key collection, per-key accumulation) must not.
package maporder

import (
	"fmt"
	"sort"
)

// Render bakes the random iteration order into the returned slice.
func Render(m map[string]int) []string {
	var out []string
	for k, v := range m { // want maporder "appends to a slice"
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

// Any returns a run-dependent element.
func Any(m map[string]int) string {
	for k := range m { // want maporder "returns early"
		return k
	}
	return ""
}

// Dump prints in random order.
func Dump(m map[string]int) {
	for k := range m { // want maporder "writes output via Println"
		fmt.Println(k)
	}
}

// Pick breaks out holding a run-dependent element.
func Pick(m map[string]int) (last string) {
	for k := range m { // want maporder "breaks early"
		last = k
		break
	}
	return last
}

// Sorted is the canonical fix: collect keys, sort, then range the slice.
func Sorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return out
}

// Regroup accumulates per key: each key is visited once, so the append
// order within a bucket does not depend on map iteration.
func Regroup(m map[string]int) map[string][]int {
	buckets := make(map[string][]int, len(m))
	for k, v := range m {
		buckets[k] = append(buckets[k], v)
	}
	return buckets
}

// Invert is NOT the exempt shape: several keys can share a value, so the
// bucket order is iteration-dependent.
func Invert(m map[string]int) map[int][]string {
	inv := make(map[int][]string)
	for k, v := range m { // want maporder "appends to a slice"
		inv[v] = append(inv[v], k)
	}
	return inv
}

// Sum is commutative and not flagged.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// NestedBreak binds to the inner loop, not the map range, and the body is
// otherwise order-insensitive.
func NestedBreak(m map[string][]int) int {
	hits := 0
	for _, vs := range m {
		for _, v := range vs {
			if v == 0 {
				hits++
				break
			}
		}
	}
	return hits
}
