package maporder

// First takes an arbitrary element under a documented exemption.
func First(m map[string]int) string {
	for k := range m { //lint:allow maporder — fixture: any element will do, order-independence argued in place
		return k
	}
	return ""
}
