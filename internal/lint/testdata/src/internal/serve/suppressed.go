package serve

import "sync"

// logger is not the shard type: its mutex may be held across a send.
type logger struct {
	mu sync.Mutex
	ch chan int
}

// DeferDiscipline is the canonical clean shape: defer releases on every
// path, so early returns are fine.
func DeferDiscipline(sh *shard, flag bool) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if flag {
		return 1
	}
	return 0
}

// DeferClosure releases through a deferred closure; also clean.
func DeferClosure(sh *shard) {
	sh.mu.Lock()
	defer func() { sh.mu.Unlock() }()
}

// Paired is the straight-line shape the store uses: lock, mutate, unlock,
// then return.
func Paired(sh *shard, readers *sync.RWMutex) int {
	readers.RLock()
	n := cap(sh.out)
	readers.RUnlock()
	return n
}

// NonShardSend holds a non-shard mutex across a send: allowed (only the
// session-shard mutex gates every session on the shard).
func NonShardSend(l *logger) {
	l.mu.Lock()
	l.ch <- 1
	l.mu.Unlock()
}

// Reviewed carries a documented exemption for an intentional leak shape
// (the lock is released by the caller).
func Reviewed(sh *shard) {
	sh.mu.Lock() //lint:allow lockflow — fixture: handoff locking, released by the caller
}
