// Package serve is the positive golden case for the lockflow rule, placed
// under internal/serve so the analyzer's package scope applies: leaked
// locks, returns while holding, and blocking work under the session-shard
// mutex are reported.
package serve

import (
	"io"
	"sync"
)

type shard struct {
	mu  sync.Mutex
	out chan int
}

// Leaks takes the lock and exits without releasing it.
func Leaks(sh *shard) {
	sh.mu.Lock() // want lockflow "no matching Unlock"
}

// ReturnsWhileHeld has an early return between Lock and Unlock.
func ReturnsWhileHeld(sh *shard, flag bool) {
	sh.mu.Lock()
	if flag {
		return // want lockflow "return while holding"
	}
	sh.mu.Unlock()
}

// SendsUnderShard performs a channel send while holding the shard mutex.
func SendsUnderShard(sh *shard) {
	sh.mu.Lock()
	sh.out <- 1 // want lockflow "channel send while holding hot mutex"
	sh.mu.Unlock()
}

// WritesUnderShard performs I/O while holding the shard mutex.
func WritesUnderShard(sh *shard, w io.Writer) {
	sh.mu.Lock()
	w.Write(nil) // want lockflow "Write while holding hot mutex"
	sh.mu.Unlock()
}
