// Package obs is the positive golden case for the errignore rule, placed
// under internal/obs so the analyzer's package scope applies.
package obs

import (
	"fmt"
	"os"
)

// Drop discards two error results.
func Drop(f *os.File) {
	f.Sync()             // want errignore "f.Sync"
	fmt.Fprintln(f, "x") // want errignore "fmt.Fprintln"
}

// Kept handles or legitimately defers everything.
func Kept(f *os.File) error {
	defer f.Close() // defer is a statement form of its own: not flagged
	if err := f.Sync(); err != nil {
		return err
	}
	note(f.Name()) // no error in the results: not flagged
	return nil
}

func note(string) {}
