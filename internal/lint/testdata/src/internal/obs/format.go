package obs

import "fmt"

// FormatMap interpolates a map with %v: iteration order is random per run,
// so the journaled bytes would differ across runs.
func FormatMap(m map[string]int) string {
	return fmt.Sprintf("m=%v", m) // want journalfmt "map"
}

// FormatFloat renders a float with %+v instead of a fixed strconv format.
func FormatFloat(x float64) string {
	return fmt.Sprintf("x=%+v", x) // want journalfmt "float"
}

// FormatFixed uses explicit verbs and widths: deterministic, not flagged.
func FormatFixed(n int, x float64) string {
	return fmt.Sprintf("n=%d x=%.6f", n, x)
}

// FormatDebug is exempted in place: the string feeds a log line, not the
// journal bytes.
func FormatDebug(m map[string]int) string {
	return fmt.Sprintf("m=%v", m) //lint:allow journalfmt — fixture: debug output, never journaled
}
