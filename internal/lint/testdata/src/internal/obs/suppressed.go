package obs

import "os"

// Best discards a flush error under a documented exemption.
func Best(f *os.File) {
	f.Sync() //lint:allow errignore — fixture: best-effort flush, failure handled at close
}
