package streamrisk

import (
	"sync"

	"fixture/detutil"
)

// fanout is not a hot type: its mutex may be held across the non-blocking
// sends that fan deltas out.
type fanout struct {
	mu   sync.Mutex
	subs chan float64
}

// Publish holds the fanout mutex across a send: allowed (only the shard
// and Engine mutexes gate the ingest path).
func Publish(f *fanout, v float64) {
	f.mu.Lock()
	select {
	case f.subs <- v:
	default:
	}
	f.mu.Unlock()
}

// FoldThenPublish is the engine's real discipline: fold under the hot
// mutex, release, then publish.
func FoldThenPublish(e *Engine, f *fanout, v float64) {
	e.mu.Lock()
	sum := v + v
	e.mu.Unlock()
	Publish(f, sum)
}

// ZeroGuard is the sanctioned identity check on a value never computed.
func ZeroGuard(n float64) bool {
	return n == 0 //lint:allow floateq — fixture: exact-zero guard on a counter-backed value
}

// Replay reaches only a sanitized wall-clock site: taint stops at the
// directive.
func Replay() {
	_ = detutil.StampAllowed()
}
