// Package streamrisk is the positive golden case for the rules scoped to
// the streaming risk engine: lockflow treats the Engine's mutex as hot
// (its fold runs on the serve request path), floateq covers the
// incremental score math, and detflow covers the exported engine API.
package streamrisk

import (
	"io"
	"sync"

	"fixture/detutil"
)

// Engine mirrors the real engine's shape: lockflow keys hot-mutex
// detection off the named type.
type Engine struct {
	mu  sync.Mutex
	out chan float64
}

// SendsUnderEngine performs a channel send while holding the engine mutex:
// a stalled subscriber would block every ingest behind it.
func SendsUnderEngine(e *Engine, v float64) {
	e.mu.Lock()
	e.out <- v // want lockflow "channel send while holding hot mutex"
	e.mu.Unlock()
}

// WritesUnderEngine performs I/O while holding the engine mutex.
func WritesUnderEngine(e *Engine, w io.Writer) {
	e.mu.Lock()
	w.Write(nil) // want lockflow "Write while holding hot mutex"
	e.mu.Unlock()
}

// SameScore compares incremental scores exactly.
func SameScore(a, b float64) bool {
	return a == b // want floateq "=="
}

// Ingest reaches the wall clock: streamed scores would diverge from the
// offline recomputation of the same journal.
func Ingest(e *Engine) { // want detflow "wall clock"
	_ = detutil.Stamp()
}
