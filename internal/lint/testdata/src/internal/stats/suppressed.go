package stats

// ExactZero is an intentional identity check, exempted with a reason.
func ExactZero(x float64) bool {
	return x == 0 //lint:allow floateq — fixture: exact-zero sentinel, never the result of arithmetic
}
