package stats

// Exact float comparison in a test file: floateq does not apply to tests
// (assertions legitimately compare exact values), so nothing is reported.
func exactlyEqual(a, b float64) bool {
	return a == b
}
