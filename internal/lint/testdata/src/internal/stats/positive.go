// Package stats is the positive golden case for the floateq rule, placed
// under internal/stats so the analyzer's package scope applies.
package stats

// Same compares floats exactly.
func Same(a, b float64) bool {
	return a == b // want floateq "=="
}

// Differs compares floats exactly.
func Differs(a, b float64) bool {
	return a != b // want floateq "!="
}

// Mixed compares a float against an untyped constant.
func Mixed(a float64) bool {
	return a == 0.25 // want floateq "=="
}

const eps = 1e-9

// Close is the sanctioned tolerance comparison.
func Close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// ConstCmp folds at compile time and is exempt.
const ConstCmp = 1.0 == 2.0

// Ints are not floats.
func SameInt(a, b int) bool {
	return a == b
}
