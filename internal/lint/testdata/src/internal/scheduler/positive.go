// Package scheduler is the positive golden case for the detflow rule,
// placed under internal/scheduler so the analyzer's package scope applies:
// exported entry points that transitively reach a wall-clock read or a
// global-rand draw — through plain calls, interface dispatch, or handler
// references — are reported at their declaration.
package scheduler

import "fixture/detutil"

// Run reaches the wall clock two calls away.
func Run() { // want detflow "wall clock"
	prepare()
}

func prepare() {
	detutil.Stamp()
}

// Shuffle reaches the global rand source.
func Shuffle() { // want detflow "rand"
	detutil.Draw()
}

// Ticker is a module-defined dispatch interface; taint in an
// implementation flows to callers of the interface method.
type Ticker interface {
	Tick()
}

type wall struct{}

func (wall) Tick() {
	detutil.Stamp()
}

// Drive is tainted through interface dispatch: some Ticker in the module
// reads the wall clock.
func Drive(t Ticker) { // want detflow "wall clock"
	t.Tick()
}

// Register is tainted through a handler reference: it never calls Stamp,
// but hands it to other code that will.
func Register(hooks *[]func()) { // want detflow "wall clock"
	*hooks = append(*hooks, run)
}

func run() {
	detutil.Stamp()
}
