package scheduler

import "fixture/detutil"

// Quiet reaches only a sanitized site: the //lint:allow directive on the
// direct read stops the taint, so no caller is reported.
func Quiet() {
	detutil.StampAllowed()
}

// Loud reaches an unsanitized site but carries its own documented
// exemption at the declaration.
//
//lint:allow detflow — fixture: reviewed transitive wall-clock use
func Loud() {
	detutil.Stamp()
}

// internalHelper is unexported: not an entry point, so reachability is not
// reported here (its exported callers are the findings).
func internalHelper() {
	detutil.Stamp()
}
