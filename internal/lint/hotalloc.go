package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotallocAnalyzer makes the PR4 zero-alloc invariant a static guarantee:
// inside any function reachable from a //lint:hot-annotated root (the sim
// event kernel's per-event API, the cluster models' incremental accounting
// paths), constructs that the compiler must heap-allocate for are flagged.
// The benchmark gate remains the dynamic check; this rule catches the
// regression at review time, before a benchmark ever runs.
//
// Flagged constructs: fmt calls (they allocate for formatting and box every
// argument), non-constant string concatenation, function literals (closure
// capture), append / make / new, composite literals with reference-type
// backing (slices, maps, channels, &T{}), string<->[]byte conversions, and
// implicit interface boxing at ordinary call arguments.
//
// An intentional allocation on a hot path — pool growth, an error exit that
// fires at most once per run — is annotated //lint:allow hotalloc with the
// reason, keeping the reviewed exceptions enumerable.
var hotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocation-causing construct in a function reachable from a //lint:hot root",
	Run: func(pass *Pass) {
		prog := pass.Prog
		if prog == nil {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				root, ok := prog.hotRoot(obj)
				if !ok {
					continue
				}
				scanAllocs(pass, fd, displayName(root))
			}
		}
	},
}

// scanAllocs walks one hot-reachable body and reports each allocating
// construct, naming the hot root that makes the function hot.
func scanAllocs(pass *Pass, fd *ast.FuncDecl, root string) {
	info := pass.Pkg.Info
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s on a hot path (reachable from %s); move it off the per-event path or annotate //lint:allow hotalloc", what, root)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// The literal itself allocates the closure; its body is hot too
			// (it may be the handler that runs per event), so keep walking.
			report(x.Pos(), "function literal (closure capture) allocates")
			return true
		case *ast.CallExpr:
			reportCallAllocs(pass, x, report)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(info, x) && !isConstExpr(info, x) {
				report(x.OpPos, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringExpr(info, x.Lhs[0]) {
				report(x.TokPos, "string concatenation allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					report(x.Pos(), "&composite literal allocates")
					// Don't descend: the inner literal would double-report if
					// it has reference-type backing.
					return false
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(x)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Chan:
					report(x.Pos(), "slice/map composite literal allocates")
					return false
				}
			}
		}
		return true
	})
}

// reportCallAllocs handles the call-shaped allocation sources: builtins
// (append, make, new), fmt calls, allocating conversions, and implicit
// interface boxing of arguments.
func reportCallAllocs(pass *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	info := pass.Pkg.Info
	fun := ast.Unparen(call.Fun)

	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				report(call.Pos(), "append may grow the backing array")
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			}
			return
		}
	}

	// Conversions: string([]byte), []byte(string) and friends copy.
	if tv, ok := info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, info.TypeOf(call.Args[0])
		if src != nil && allocatingConversion(dst, src) {
			report(call.Pos(), "string/[]byte conversion copies and allocates")
		}
		return
	}

	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if name := pkgFunc(pass.Pkg, sel, "fmt"); name != "" {
			report(call.Pos(), "fmt."+name+" allocates")
			// fmt boxes its arguments too; one finding per call is enough.
			return
		}
	}

	reportBoxing(pass, call, report)
}

// reportBoxing flags ordinary call arguments whose concrete value is
// implicitly converted to an interface parameter — each such conversion may
// heap-allocate the boxed copy. Builtin calls are excluded (panic's
// argument only allocates on the already-fatal path), as are calls whose
// signature cannot be resolved (calls of function-typed variables keep
// their concrete signature, so those still check).
func reportBoxing(pass *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	info := pass.Pkg.Info
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	ft := info.TypeOf(fun)
	if ft == nil {
		return
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through; nothing is boxed
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue // interface-to-interface assignment copies the word pair
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "passing "+at.String()+" as "+pt.String()+" boxes it into an interface")
	}
}

// allocatingConversion reports whether converting src to dst copies the
// backing storage (string <-> []byte / []rune in either direction).
func allocatingConversion(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isStringType(t)
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
