package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockflowAnalyzer checks mutex discipline in the service layer
// (internal/serve) and the streaming risk engine (internal/streamrisk),
// where a held lock sits on the request path of every admission decision:
//
//   - every Lock/RLock in a function body has a matching Unlock/RUnlock in
//     the same body — either deferred or on the straight-line path — so no
//     exit leaks the lock;
//   - no return statement executes between an explicit Lock and its
//     Unlock (use defer for early-return functions);
//   - while a hot mutex is held — the session-shard struct's (`shard`) or
//     the streaming risk engine's (`Engine`) — no journal/network I/O and
//     no channel send may run: both can block for unbounded time and would
//     stall every session behind the mutex.
//
// The analysis is lexical per function body (function literals are
// separate scopes): it pairs each Lock with the next Unlock of the same
// receiver expression and inspects the interval between them. That is
// exactly the discipline the service code is written in — conditional
// lock/unlock across branches would be flagged as a leak, which is the
// point: such shapes don't belong on the request path.
var lockflowAnalyzer = &Analyzer{
	Name:  "lockflow",
	Doc:   "Lock without Unlock on all paths, return while holding, or blocking work under a hot mutex",
	Match: inPackages("internal/serve", "internal/streamrisk"),
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				for _, body := range lockScopes(fd) {
					checkLockScope(pass, body)
				}
			}
		}
	},
}

// lockScopes returns the lexical scopes of a declaration: the declaration
// body plus each nested function literal body (a deferred closure or
// handler is its own control-flow world).
func lockScopes(fd *ast.FuncDecl) []*ast.BlockStmt {
	scopes := []*ast.BlockStmt{fd.Body}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, fl.Body)
		}
		return true
	})
	return scopes
}

// lockOp is one mutex operation found in a scope.
type lockOp struct {
	pos  token.Pos
	key  string // receiver expression, e.g. "sh.mu"
	name string // Lock, Unlock, RLock, RUnlock
	hot  bool   // receiver is a field of a hot struct (shard, Engine)
}

// checkLockScope runs the lexical pairing over one scope, skipping nested
// function literals (they are separate scopes).
func checkLockScope(pass *Pass, body *ast.BlockStmt) {
	var ops []lockOp
	deferred := map[string]bool{} // key+kind with a deferred unlock
	var returns []token.Pos
	var sends []token.Pos
	type ioCall struct {
		pos  token.Pos
		desc string
	}
	var ios []ioCall

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Nested literals are their own scopes (lockScopes visits them);
			// the walk starts at body itself, so this only skips inner ones.
			return false
		case *ast.DeferStmt:
			// defer mu.Unlock(), or defer func() { ...; mu.Unlock() }().
			if op, ok := mutexOp(pass.Pkg, x.Call); ok && isUnlock(op.name) {
				deferred[op.key+"/"+lockKind(op.name)] = true
				return false
			}
			if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if op, ok := mutexOp(pass.Pkg, call); ok && isUnlock(op.name) {
							deferred[op.key+"/"+lockKind(op.name)] = true
						}
					}
					return true
				})
			}
			return true
		case *ast.CallExpr:
			if op, ok := mutexOp(pass.Pkg, x); ok {
				ops = append(ops, op)
				return false
			}
			if desc := blockingCall(pass.Pkg, x); desc != "" {
				ios = append(ios, ioCall{x.Pos(), desc})
			}
		case *ast.ReturnStmt:
			returns = append(returns, x.Pos())
		case *ast.SendStmt:
			sends = append(sends, x.Arrow)
		}
		return true
	})

	// Pair each Lock with the next Unlock of the same key and kind; inspect
	// the interval.
	for i, op := range ops {
		if isUnlock(op.name) {
			continue
		}
		kind := lockKind(op.name)
		end := token.Pos(-1)
		for _, u := range ops[i+1:] {
			if isUnlock(u.name) && u.key == op.key && lockKind(u.name) == kind {
				end = u.pos
				break
			}
		}
		if end == token.Pos(-1) {
			if deferred[op.key+"/"+kind] {
				continue // defer discipline: covered on every path
			}
			pass.Reportf(op.pos,
				"%s.%s has no matching %s in this function; a panic or early return leaks the lock — use defer",
				op.key, op.name, unlockName(op.name))
			continue
		}
		for _, r := range returns {
			if op.pos < r && r < end {
				pass.Reportf(r,
					"return while holding %s (locked at line %d); use defer %s.%s so every exit releases it",
					op.key, pass.Pkg.Fset.Position(op.pos).Line, op.key, unlockName(op.name))
			}
		}
		if !op.hot {
			continue
		}
		for _, s := range sends {
			if op.pos < s && s < end {
				pass.Reportf(s,
					"channel send while holding hot mutex %s; a full channel would stall every session behind it — release first",
					op.key)
			}
		}
		for _, io := range ios {
			if op.pos < io.pos && io.pos < end {
				pass.Reportf(io.pos,
					"%s while holding hot mutex %s; journal/network I/O can block for unbounded time — copy under the lock, write outside it",
					io.desc, op.key)
			}
		}
	}
}

// mutexOp recognizes a call of sync.Mutex/RWMutex Lock/Unlock/RLock/RUnlock
// on any receiver expression.
func mutexOp(pkg *Package, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockOp{}, false
	}
	return lockOp{
		pos:  call.Pos(),
		key:  types.ExprString(sel.X),
		name: fn.Name(),
		hot:  isHotMutex(pkg, sel.X),
	}, true
}

func isUnlock(name string) bool { return name == "Unlock" || name == "RUnlock" }

// lockKind collapses Lock/Unlock to "w" and RLock/RUnlock to "r" so reader
// and writer pairs don't satisfy each other.
func lockKind(name string) string {
	if name == "RLock" || name == "RUnlock" {
		return "r"
	}
	return "w"
}

func unlockName(lockName string) string {
	if lockName == "RLock" {
		return "RUnlock"
	}
	return "Unlock"
}

// isHotMutex reports whether the mutex expression is a field of a struct
// whose hold time gates every session behind it: the store's session
// shard (`sh.mu` where sh is a *shard) or the streaming risk engine
// (`e.mu` where e is a *Engine) — the engine's fold runs on the serve
// request path under the owning session's mutex, so anything blocking
// under it stalls admission.
func isHotMutex(pkg *Package, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pkg.Info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if pt, ok := t.(*types.Pointer); ok {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	switch named.Obj().Name() {
	case "shard", "Engine":
		return true
	}
	return false
}

// blockingCall describes a call that performs journal or network I/O (""
// when it is not one): writer-shaped methods (Write, Encode, Flush, ...)
// and any call into the obs journaling package.
func blockingCall(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	if fn.Pkg() != nil && inPackages("internal/obs")(fn.Pkg().Path()) {
		return "obs." + fn.Name()
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteTo", "Sync", "Flush",
		"Encode", "Fprint", "Fprintf", "Fprintln":
		return fn.Name()
	}
	return ""
}
