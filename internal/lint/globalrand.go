package lint

import "go/ast"

// randSeeded are the math/rand (and v2) functions that construct an
// explicitly seeded generator or wrap one; everything else at package level
// draws from the shared global source and is banned.
var randSeeded = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// globalrandAnalyzer enforces the repository's randomness contract: every
// random draw flows through an explicit seeded *rand.Rand (stats.NewRand),
// never the package-level math/rand convenience functions, and sources are
// never seeded from the wall clock. Both break reproducibility: the global
// source is shared across goroutines (draw order depends on scheduling) and
// a time seed differs on every run.
var globalrandAnalyzer = &Analyzer{
	Name:  "globalrand",
	Doc:   "package-level math/rand functions or wall-clock-seeded sources; use an explicit seeded *rand.Rand",
	Tests: true,
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				for _, path := range []string{"math/rand", "math/rand/v2"} {
					name := pkgFunc(pass.Pkg, sel, path)
					if name == "" {
						continue
					}
					if !randSeeded[name] {
						pass.Reportf(sel.Pos(),
							"%s.%s draws from the shared global source; thread an explicit seeded *rand.Rand (stats.NewRand) instead", path, name)
					}
				}
				return true
			})
		}
		// Seeded constructors must not be seeded from the wall clock:
		// rand.New(rand.NewSource(time.Now().UnixNano())) is the classic
		// pattern that defeats reproducibility.
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				// Only the source constructors, not the wrapping rand.New:
				// otherwise rand.New(rand.NewSource(time.Now())) reports
				// twice for one seeding site.
				isCtor := false
				for _, path := range []string{"math/rand", "math/rand/v2"} {
					switch pkgFunc(pass.Pkg, sel, path) {
					case "NewSource", "NewPCG", "NewChaCha8":
						isCtor = true
					}
				}
				if !isCtor {
					return true
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						s, ok := m.(*ast.SelectorExpr)
						if ok && pkgFunc(pass.Pkg, s, "time") == "Now" {
							pass.Reportf(call.Pos(),
								"rand source seeded from time.Now is different on every run; derive the seed from configuration")
							return false
						}
						return true
					})
				}
				return true
			})
		}
	},
}
