package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-program view the call-graph analyzers
// (detflow, hotalloc) run over. The graph is deliberately simple and
// over-approximate in the direction that keeps the determinism guarantee
// sound:
//
//   - A static call edge is added for every function or method a body
//     calls.
//   - A *reference* to a function or method as a value (a sim.Handler
//     passed to Engine.Schedule, a scheduler.Factory, a method value) also
//     adds an edge: the referenced code can run on behalf of the
//     referencing function even though the call site is a plain h().
//   - A call through a module-defined interface (scheduler.Policy,
//     obs.Reporter, ...) fans out to every concrete method in the module
//     that implements it.
//
// Bodies outside the module (the standard library) are not part of the
// graph; the direct-call analyzers already name the standard-library
// functions that matter (time.Now, math/rand), and those are detected as
// taint sites inside module bodies rather than as graph nodes.

// funcNode is one module function or method in the call graph.
type funcNode struct {
	obj  *types.Func
	pkg  *Package
	decl *ast.FuncDecl
	// callees are the functions this body calls or references, sorted by
	// full name for deterministic traversal.
	callees []*types.Func
	// hot marks a //lint:hot annotation on the declaration.
	hot bool
}

// taintKind distinguishes the two taint sources detflow tracks.
type taintKind int

const (
	taintWall taintKind = iota
	taintRand
)

func (k taintKind) String() string {
	if k == taintWall {
		return "the wall clock"
	}
	return "the shared global rand source"
}

// taintTrace records, for a tainted function, the next hop toward the
// taint source (nil at a function containing a direct site) and the
// source description ("time.Now") at the end of the chain.
type taintTrace struct {
	via  *types.Func
	site string
}

// Program is the module-wide call graph plus the reachability results the
// analyzers query. It is built once per linter run and shared by every
// pass.
type Program struct {
	funcs map[*types.Func]*funcNode
	// impls maps a module-defined interface method to the concrete module
	// methods implementing it, sorted by full name.
	impls map[*types.Func][]*types.Func
	// allows is the merged suppression set of every loaded package; a
	// //lint:allow wallclock/globalrand/detflow directive on a direct call
	// site sanitizes it for taint purposes.
	allows allowSet

	taintOnce bool
	taint     [2]map[*types.Func]taintTrace

	hotOnce bool
	// hotReach maps every function reachable from a //lint:hot root to
	// that root (the nearest one in deterministic BFS order).
	hotReach map[*types.Func]*types.Func
}

// buildProgram assembles the call graph over the given packages (the whole
// loaded closure) with the merged allow set acting as taint sanitizers.
func buildProgram(pkgs []*Package, allows allowSet) *Program {
	p := &Program{
		funcs:  map[*types.Func]*funcNode{},
		impls:  map[*types.Func][]*types.Func{},
		allows: allows,
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.funcs[obj] = &funcNode{
					obj:  obj,
					pkg:  pkg,
					decl: fd,
					hot:  hasHotDirective(fd),
				}
			}
		}
	}
	p.buildImpls(pkgs)
	for _, n := range p.funcs {
		n.callees = collectCallees(n.pkg, n.decl)
	}
	return p
}

// hasHotDirective reports whether the declaration's doc comment carries a
// //lint:hot line, marking the function as a hot-path root for hotalloc.
func hasHotDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//lint:hot" || strings.HasPrefix(c.Text, "//lint:hot ") {
			return true
		}
	}
	return false
}

// buildImpls computes, for every method of every interface defined in the
// module, the concrete module methods that implement it. Only module
// interfaces matter: those are the dispatch points (scheduler.Policy, the
// obs.Reporter fan-out) whose dynamic targets must stay visible to the
// reachability analyses.
func (p *Program) buildImpls(pkgs []*Package) {
	var ifaces []*types.Interface
	var concrete []types.Type
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				if iface.NumMethods() > 0 {
					ifaces = append(ifaces, iface)
				}
				continue
			}
			concrete = append(concrete, named, types.NewPointer(named))
		}
	}
	for _, iface := range ifaces {
		for _, t := range concrete {
			if !types.Implements(t, iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				im := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(t, true, im.Pkg(), im.Name())
				cm, ok := obj.(*types.Func)
				if !ok || cm == im {
					continue
				}
				p.impls[im] = append(p.impls[im], cm)
			}
		}
	}
	for im, cms := range p.impls {
		sort.Slice(cms, func(i, j int) bool { return cms[i].FullName() < cms[j].FullName() })
		p.impls[im] = dedupFuncs(cms)
	}
}

func dedupFuncs(fns []*types.Func) []*types.Func {
	out := fns[:0]
	for i, fn := range fns {
		if i > 0 && fns[i-1] == fn {
			continue
		}
		out = append(out, fn)
	}
	return out
}

// collectCallees walks one declaration body (including nested function
// literals, whose work is attributed to the enclosing declaration) and
// returns every function or method it calls or references as a value,
// sorted by full name.
func collectCallees(pkg *Package, fd *ast.FuncDecl) []*types.Func {
	seen := map[*types.Func]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				id = sel.Sel
			} else {
				return true
			}
		}
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
			seen[fn] = true
		}
		return true
	})
	out := make([]*types.Func, 0, len(seen))
	for fn := range seen {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// sortedNodes returns the graph's functions sorted by full name, the
// deterministic iteration order every traversal starts from.
func (p *Program) sortedNodes() []*funcNode {
	nodes := make([]*funcNode, 0, len(p.funcs))
	//lint:allow maporder — the slice is fully sorted by FullName below, so iteration order cannot leak
	for _, n := range p.funcs {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].obj.FullName() < nodes[j].obj.FullName()
	})
	return nodes
}

// directTaintSites scans one body for unsanitized direct reads of a taint
// source, returning the description of the first one in source order ("").
// A //lint:allow wallclock / globalrand / detflow directive covering the
// site's line sanitizes it: the annotation is the documented, reviewed
// escape hatch, so taint must not propagate out of it.
func (p *Program) directTaintSite(n *funcNode, kind taintKind) string {
	site := ""
	sitePos := 0
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		sel, ok := node.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var desc, rule string
		if name := pkgFunc(n.pkg, sel, "time"); kind == taintWall && wallclockFuncs[name] {
			desc, rule = "time."+name, "wallclock"
		}
		if kind == taintRand {
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				if name := pkgFunc(n.pkg, sel, path); name != "" && !randSeeded[name] {
					desc, rule = path+"."+name, "globalrand"
				}
			}
		}
		if desc == "" {
			return true
		}
		pos := n.pkg.Fset.Position(sel.Pos())
		if p.allows.allowsAt(pos.Filename, pos.Line, rule, "detflow") {
			return true
		}
		if site == "" || pos.Offset < sitePos {
			site, sitePos = desc, pos.Offset
		}
		return true
	})
	return site
}

// ensureTaint runs the two reverse-reachability passes (wall clock, global
// rand) once, seeding from functions with unsanitized direct sites and
// propagating caller-ward; an interface method's taint flows from its
// concrete implementations to the interface call sites.
func (p *Program) ensureTaint() {
	if p.taintOnce {
		return
	}
	p.taintOnce = true

	// Reverse adjacency, with interface fan-in: a caller of an interface
	// method is a (reverse-)neighbor of every implementation.
	rev := map[*types.Func][]*types.Func{}
	for _, n := range p.sortedNodes() {
		for _, callee := range n.callees {
			rev[callee] = append(rev[callee], n.obj)
			for _, impl := range p.impls[callee] {
				rev[impl] = append(rev[impl], n.obj)
			}
		}
	}

	for _, kind := range []taintKind{taintWall, taintRand} {
		taint := map[*types.Func]taintTrace{}
		var queue []*types.Func
		for _, n := range p.sortedNodes() {
			if site := p.directTaintSite(n, kind); site != "" {
				taint[n.obj] = taintTrace{site: site}
				queue = append(queue, n.obj)
			}
		}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			for _, caller := range rev[fn] {
				if _, ok := taint[caller]; ok {
					continue
				}
				taint[caller] = taintTrace{via: fn}
				queue = append(queue, caller)
			}
		}
		p.taint[kind] = taint
	}
}

// taintedBy reports whether fn can reach the given taint source, with the
// call chain rendered for the finding message.
func (p *Program) taintedBy(fn *types.Func, kind taintKind) (string, bool) {
	p.ensureTaint()
	if _, ok := p.taint[kind][fn]; !ok {
		return "", false
	}
	var hops []string
	for cur := fn; ; {
		hops = append(hops, displayName(cur))
		t := p.taint[kind][cur]
		if t.via == nil {
			hops = append(hops, t.site)
			break
		}
		cur = t.via
	}
	return strings.Join(hops, " -> "), true
}

// ensureHot runs the forward reachability pass from the //lint:hot roots
// once; interface calls fan out to every module implementation.
func (p *Program) ensureHot() {
	if p.hotOnce {
		return
	}
	p.hotOnce = true
	p.hotReach = map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, n := range p.sortedNodes() {
		if n.hot {
			p.hotReach[n.obj] = n.obj
			queue = append(queue, n.obj)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		root := p.hotReach[fn]
		n, ok := p.funcs[fn]
		if !ok {
			continue
		}
		targets := make([]*types.Func, 0, len(n.callees))
		for _, callee := range n.callees {
			targets = append(targets, callee)
			targets = append(targets, p.impls[callee]...)
		}
		for _, t := range targets {
			if _, ok := p.hotReach[t]; ok {
				continue
			}
			if _, inModule := p.funcs[t]; !inModule {
				continue
			}
			p.hotReach[t] = root
			queue = append(queue, t)
		}
	}
}

// hotRoot returns the //lint:hot root fn is reachable from, if any.
func (p *Program) hotRoot(fn *types.Func) (*types.Func, bool) {
	p.ensureHot()
	root, ok := p.hotReach[fn]
	return root, ok
}

// displayName renders a function for finding messages: pkg.Func or
// (*pkg.Type).Method, without module-path noise.
func displayName(fn *types.Func) string {
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name() + "."
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkgName + fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if pt, isPtr := t.(*types.Pointer); isPtr {
		t = pt.Elem()
		ptr = "*"
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return fmt.Sprintf("(%s%s%s).%s", ptr, pkgName, named.Obj().Name(), fn.Name())
	}
	return pkgName + fn.Name()
}

// allowsAt reports whether any of the rules is allowed at file:line.
func (s allowSet) allowsAt(file string, line int, rules ...string) bool {
	for _, r := range rules {
		if s[file][line][r] {
			return true
		}
	}
	return false
}
