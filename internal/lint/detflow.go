package lint

import (
	"go/ast"
	"go/types"
)

// detflowAnalyzer upgrades wallclock/globalrand from direct-call checks to
// whole-program reachability: an exported entry point of the simulation
// packages must not be able to reach a wall-clock read or a global-rand
// draw through any chain of calls, handler registrations, or interface
// dispatches. A //lint:allow wallclock / globalrand / detflow directive on
// the direct site is a sanitizer — the annotation records the reviewed
// justification, so taint stops there instead of cascading a finding onto
// every caller.
//
// The rule runs only over production entry points (exported functions, and
// exported methods of exported types) of the determinism-critical packages;
// unexported helpers are covered transitively through whoever exports them.
var detflowAnalyzer = &Analyzer{
	Name:  "detflow",
	Doc:   "exported sim/cluster/scheduler/broker/experiment/streamrisk API that can transitively reach time.Now or global rand",
	Match: inPackages("internal/sim", "internal/cluster", "internal/scheduler", "internal/broker", "internal/experiment", "internal/streamrisk"),
	Run: func(pass *Pass) {
		prog := pass.Prog
		if prog == nil {
			return
		}
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isEntryPoint(pass.Pkg, fd) {
					continue
				}
				obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				for _, kind := range []taintKind{taintWall, taintRand} {
					if chain, ok := prog.taintedBy(obj, kind); ok {
						pass.Reportf(fd.Name.Pos(),
							"%s can reach %s (%s); results become run-dependent — fix the source site or annotate it with //lint:allow",
							fd.Name.Name, kind, chain)
					}
				}
			}
		}
	},
}

// isEntryPoint reports whether fd is part of the package's public API: an
// exported function, or an exported method whose receiver type is also
// exported.
func isEntryPoint(pkg *Package, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil {
		return true
	}
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if pt, isPtr := t.(*types.Pointer); isPtr {
		t = pt.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Exported()
}
