package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// fmtFormatFuncs maps the fmt functions that take a format string to the
// index of that format argument.
var fmtFormatFuncs = map[string]int{
	"Sprintf": 0,
	"Errorf":  0,
	"Printf":  0,
	"Fprintf": 1,
	"Appendf": 1,
}

// journalfmtAnalyzer protects the journal-byte oracle: obs journals and
// NDJSON files are compared byte-for-byte across runs and (per the
// ROADMAP's sharded-worker direction) across workers, so the bytes must be
// a pure function of the data. %v and %+v on a map interpolate Go's
// per-run-randomized iteration order into the output, and on floats they
// pick a shortest-representation rendering that is easy to change by
// accident (a value that becomes an int, a different formatting path).
// Code in internal/obs must render maps via sorted keys and floats via
// strconv.FormatFloat / strconv.AppendFloat with an explicit format and
// precision.
var journalfmtAnalyzer = &Analyzer{
	Name:  "journalfmt",
	Doc:   "%v/%+v on a map or float in journal-writing code; use sorted keys and strconv fixed formats",
	Match: inPackages("internal/obs"),
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				name := pkgFunc(pass.Pkg, sel, "fmt")
				fmtIdx, ok := fmtFormatFuncs[name]
				if !ok || len(call.Args) <= fmtIdx {
					return true
				}
				format, ok := constantString(pass.Pkg, call.Args[fmtIdx])
				if !ok {
					return true
				}
				for _, v := range verbArgs(format) {
					if v.verb != 'v' {
						continue
					}
					argIdx := fmtIdx + 1 + v.arg
					if argIdx >= len(call.Args) {
						continue
					}
					arg := call.Args[argIdx]
					t := pass.Pkg.Info.TypeOf(arg)
					if t == nil {
						continue
					}
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(arg.Pos(),
							"%%%sv formats map %s in per-run-random iteration order; journaled bytes are the cross-worker oracle — render sorted keys explicitly", v.flags, t)
					} else if isFloat(t) {
						pass.Reportf(arg.Pos(),
							"%%%sv formats float %s with shortest-representation rules; use strconv.FormatFloat with an explicit format and precision", v.flags, t)
					}
				}
				return true
			})
		}
	},
}

// constantString evaluates e to a compile-time string constant.
func constantString(pkg *Package, e ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s := tv.Value.ExactString()
	if !strings.HasPrefix(s, `"`) && !strings.HasPrefix(s, "`") {
		return "", false
	}
	unq, err := strconv.Unquote(s)
	if err != nil {
		return "", false
	}
	return unq, true
}

// fmtVerb is one conversion in a format string: the verb character, its
// flags, and the index of the operand it consumes (relative to the first
// argument after the format).
type fmtVerb struct {
	verb  byte
	flags string
	arg   int
}

// verbArgs parses a Printf-style format string into its verbs with operand
// indices. Explicit argument indexes (%[2]d) abort the parse — none occur
// in this repository, and mis-attributing operands would mis-report.
func verbArgs(format string) []fmtVerb {
	var verbs []fmtVerb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		flags := ""
		// Flags, width, precision; '*' consumes an operand of its own.
		for i < len(format) {
			c := format[i]
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' {
				flags += string(c)
				i++
			} else if c == '*' {
				arg++
				i++
			} else if c >= '1' && c <= '9' || c == '.' {
				i++
			} else {
				break
			}
		}
		if i >= len(format) {
			break
		}
		c := format[i]
		if c == '%' {
			continue
		}
		if c == '[' {
			return nil // explicit argument index: bail out
		}
		verbs = append(verbs, fmtVerb{verb: c, flags: flags, arg: arg})
		arg++
	}
	return verbs
}
