package lint

import "go/ast"

// wallclockFuncs are the package time functions that read or depend on the
// wall clock. Pure constructors and conversions (time.Duration, time.Unix,
// time.Date, ...) are not listed: they are deterministic given their
// arguments.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// wallclockAnalyzer flags wall-clock reads. Simulation and metrics code
// (internal/sim, cluster, scheduler, economy, qos, workload, metrics, risk,
// stats) must take time from the event kernel (sim.Engine.Now) so that runs
// are bit-reproducible; elsewhere — progress reporting, suite wall-time
// accounting — real time is legitimate but must be annotated so every
// wall-clock dependency in the tree is documented.
var wallclockAnalyzer = &Analyzer{
	Name:  "wallclock",
	Doc:   "time.Now/Since/... outside the event kernel; sim time must come from sim.Engine.Now",
	Tests: true,
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if name := pkgFunc(pass.Pkg, sel, "time"); wallclockFuncs[name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; simulation time must come from the event kernel (sim.Engine.Now) — real-time accounting needs a //lint:allow wallclock directive", name)
				}
				return true
			})
		}
	},
}
