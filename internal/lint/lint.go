package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at one position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical "file:line: rule: message"
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one self-contained pass over a package.
type Analyzer struct {
	// Name is the rule name used in reports and allow directives.
	Name string
	// Doc is a one-line description for the rule catalog.
	Doc string
	// Match restricts the analyzer to packages whose import path it
	// accepts; nil applies the analyzer to every package.
	Match func(pkgPath string) bool
	// Tests marks the analyzer as applying to _test.go files when the run
	// includes them (Options.Tests). Rules that stay off in tests document
	// why: test assertions legitimately compare exact floats, and the
	// call-graph rules (detflow, hotalloc) bind production entry points.
	Tests bool
	// Run inspects one package, reporting through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Pkg *Package
	// Prog is the whole-program view over every package the run loaded
	// (the requested patterns plus their module-internal import closure);
	// the call-graph analyzers resolve reachability through it.
	Prog     *Program
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos: p.Pkg.Fset.Position(pos),
		Msg: fmt.Sprintf(format, args...),
	})
}

// All returns the full rule catalog in report order.
func All() []*Analyzer {
	return []*Analyzer{
		detflowAnalyzer,
		errignoreAnalyzer,
		floateqAnalyzer,
		globalrandAnalyzer,
		hotallocAnalyzer,
		journalfmtAnalyzer,
		lockflowAnalyzer,
		maporderAnalyzer,
		wallclockAnalyzer,
	}
}

// inPackages builds a Match function accepting packages whose import path
// equals or ends with one of the given module-relative suffixes.
func inPackages(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if path == s || strings.HasSuffix(path, "/"+s) {
				return true
			}
		}
		return false
	}
}

// Options tunes one linter run.
type Options struct {
	// Tests includes _test.go files: every requested package is
	// re-type-checked with its in-package test files merged in, and
	// external foo_test packages are analyzed as packages of their own.
	// Only analyzers that opt in (Analyzer.Tests) see the test files.
	Tests bool
}

// Run loads the patterns from the module rooted at root and applies the
// analyzers, returning suppression-filtered findings deduplicated and
// sorted by position. Malformed //lint:allow directives are themselves
// reported under the "directive" rule, so a typo cannot silently disable a
// suppression.
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	return RunWith(root, patterns, analyzers, Options{})
}

// pkgView is one analyzed compilation of a package: its files, the
// suppression set scanned from them, and the directive-hygiene findings.
type pkgView struct {
	pkg    *Package
	allows allowSet
	bad    []Finding
}

func newView(pkg *Package) *pkgView {
	v := &pkgView{pkg: pkg}
	v.allows, v.bad = directives(pkg)
	return v
}

// RunWith is Run with explicit Options.
func RunWith(root string, patterns []string, analyzers []*Analyzer, opts Options) ([]Finding, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns)
	if err != nil {
		return nil, err
	}

	// Scan directives across the whole loaded closure first: the Program's
	// taint analysis treats //lint:allow directives anywhere in the tree as
	// sanitizers, not just in the packages being reported on.
	views := map[*Package]*pkgView{}
	merged := allowSet{}
	for _, pkg := range l.Packages() {
		v := newView(pkg)
		views[pkg] = v
		merged.merge(v.allows)
	}
	prog := buildProgram(l.Packages(), merged)

	var findings []Finding
	for _, pkg := range pkgs {
		base := views[pkg]
		// Test views are built lazily: only when the run includes tests and
		// the package has test files.
		var aug, ext *pkgView
		if opts.Tests {
			in, out, err := l.LoadTests(pkg)
			if err != nil {
				return nil, err
			}
			if in != nil {
				aug = newView(in)
			}
			if out != nil {
				ext = newView(out)
			}
		}
		// Directive hygiene: the augmented view's files are a superset of the
		// base view's, so report its findings instead of the base's when it
		// exists (final dedup removes any overlap regardless).
		if aug != nil {
			findings = append(findings, aug.bad...)
		} else {
			findings = append(findings, base.bad...)
		}
		if ext != nil {
			findings = append(findings, ext.bad...)
		}
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			targets := []*pkgView{base}
			if opts.Tests && a.Tests {
				if aug != nil {
					targets = []*pkgView{aug}
				}
				if ext != nil {
					targets = append(targets, ext)
				}
			}
			for _, t := range targets {
				pass := &Pass{Pkg: t.pkg, Prog: prog}
				a.Run(pass)
				for _, f := range pass.findings {
					f.Rule = a.Name
					if !t.allows.allows(f) {
						findings = append(findings, f)
					}
				}
			}
		}
	}
	return dedupeSort(findings), nil
}

// dedupeSort orders findings by (file, line, column, rule, message) and
// drops exact duplicates, so repolint output is byte-stable across runs
// and across overlapping package views (a base package and its
// test-augmented recompilation report each shared finding once).
func dedupeSort(findings []Finding) []Finding {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	out := findings[:0]
	for i, f := range findings {
		if i > 0 {
			p := out[len(out)-1]
			if p.Pos.Filename == f.Pos.Filename && p.Pos.Line == f.Pos.Line &&
				p.Pos.Column == f.Pos.Column && p.Rule == f.Rule && p.Msg == f.Msg {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}
