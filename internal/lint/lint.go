package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one rule violation at one position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical "file:line: rule: message"
// form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one self-contained pass over a package.
type Analyzer struct {
	// Name is the rule name used in reports and allow directives.
	Name string
	// Doc is a one-line description for the rule catalog.
	Doc string
	// Match restricts the analyzer to packages whose import path it
	// accepts; nil applies the analyzer to every package.
	Match func(pkgPath string) bool
	// Run inspects one package, reporting through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Pkg      *Package
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos: p.Pkg.Fset.Position(pos),
		Msg: fmt.Sprintf(format, args...),
	})
}

// All returns the full rule catalog in report order.
func All() []*Analyzer {
	return []*Analyzer{
		errignoreAnalyzer,
		floateqAnalyzer,
		globalrandAnalyzer,
		maporderAnalyzer,
		wallclockAnalyzer,
	}
}

// inPackages builds a Match function accepting packages whose import path
// equals or ends with one of the given module-relative suffixes.
func inPackages(suffixes ...string) func(string) bool {
	return func(path string) bool {
		for _, s := range suffixes {
			if path == s || strings.HasSuffix(path, "/"+s) {
				return true
			}
		}
		return false
	}
}

// Run loads the patterns from the module rooted at root and applies the
// analyzers, returning suppression-filtered findings sorted by position.
// Malformed //lint:allow directives are themselves reported under the
// "directive" rule, so a typo cannot silently disable a suppression.
func Run(root string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := l.Load(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, pkg := range pkgs {
		allows, bad := directives(pkg)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			pass := &Pass{Pkg: pkg}
			a.Run(pass)
			for _, f := range pass.findings {
				f.Rule = a.Name
				if !allows.allows(f) {
					findings = append(findings, f)
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}
