package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked (non-test) Go package, the unit an
// Analyzer runs over.
type Package struct {
	// Path is the import path ("repro/internal/qos").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset is the file set shared by every package of the run.
	Fset *token.FileSet
	// Files are the package's non-test files, parsed with comments.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages of a single module from source, using only the
// standard library: repo-internal imports are parsed and type-checked
// recursively, standard-library imports go through go/importer's source
// importer. Load itself skips test files (*_test.go) — the canonical
// compilation of every package is test-free, which is what the call graph
// is built over; LoadTests produces the additional test views on demand.
type Loader struct {
	Fset *token.FileSet

	root     string // module root directory (contains go.mod)
	module   string // module path from go.mod
	std      types.Importer
	pkgs     map[string]*Package // by import path
	checking map[string]bool     // import-cycle guard
}

// NewLoader returns a Loader for the module rooted at dir (the directory
// holding go.mod).
func NewLoader(root string) (*Loader, error) {
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:     fset,
		root:     root,
		module:   mod,
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
	}, nil
}

// Module returns the module path from go.mod.
func (l *Loader) Module() string { return l.module }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves the patterns to package directories and loads each one.
// Supported patterns: "./..." (the whole module), "dir/..." (a subtree),
// and plain directories, all relative to the module root (absolute paths
// inside the module also work).
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirSet := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(l.root, pat)
		}
		pat = filepath.Clean(pat)
		if !recursive {
			dirSet[pat] = true
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if skipDir(d.Name()) && path != pat {
				return filepath.SkipDir
			}
			ok, err := hasGoFiles(path)
			if err != nil {
				return err
			}
			if ok {
				dirSet[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", pat, err)
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: directory %s is outside module root %s", dir, l.root)
		}
		path := l.module
		if rel != "." {
			path += "/" + filepath.ToSlash(rel)
		}
		p, err := l.check(path, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// skipDir reports whether a directory name is never part of the module's
// package tree: VCS metadata, vendored code, fixtures, generated results,
// and underscore/dot-prefixed directories (mirroring the go tool).
func skipDir(name string) bool {
	switch name {
	case "testdata", "vendor", "results":
		return true
	}
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// hasGoFiles reports whether dir directly contains at least one non-test Go
// file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// check parses and type-checks one package directory, caching by import
// path. Imports of sibling module packages recurse through the Loader.
func (l *Loader) check(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v (%d error(s))", path, errs[0], len(errs))
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Packages returns every package loaded so far — the requested patterns
// plus their module-internal import closure — sorted by import path, so
// whole-program passes over the result are deterministic.
func (l *Loader) Packages() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.pkgs[p])
	}
	return out
}

// LoadTests loads the test files of an already-loaded package. It returns
// up to two additional package views: the package re-type-checked with its
// in-package _test.go files merged in ("augmented"), and the external
// foo_test package, either of which is nil when the directory has no such
// files.
//
// The augmented view is a fresh compilation — new *types.Package, new
// *types.Info — but its imports still resolve through the Loader's cache,
// so an in-package test importing a package that itself imports the package
// under test sees the cached non-test compilation rather than tripping the
// import-cycle guard (exactly how `go test` builds test binaries).
func (l *Loader) LoadTests(pkg *Package) (aug, ext *Package, err error) {
	entries, err := os.ReadDir(pkg.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: reading %s: %w", pkg.Dir, err)
	}
	var inFiles, extFiles []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(pkg.Dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: %w", err)
		}
		if f.Name.Name == pkg.Types.Name() {
			inFiles = append(inFiles, f)
		} else {
			extFiles = append(extFiles, f)
		}
	}
	if len(inFiles) > 0 {
		files := append(append([]*ast.File{}, pkg.Files...), inFiles...)
		aug, err = l.checkFiles(pkg.Path, pkg.Dir, files)
		if err != nil {
			return nil, nil, err
		}
	}
	if len(extFiles) > 0 {
		ext, err = l.checkFiles(pkg.Path+"_test", pkg.Dir, extFiles)
		if err != nil {
			return nil, nil, err
		}
	}
	return aug, ext, nil
}

// checkFiles type-checks an explicit file list as one package, without
// touching the Loader's cache (used for the test views, which must not
// shadow the canonical non-test compilations the call graph is built on).
func (l *Loader) checkFiles(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v (%d error(s))", path, errs[0], len(errs))
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// Import implements types.Importer: module-internal paths are loaded from
// source through the Loader, everything else (the standard library) through
// the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		dir := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module)))
		p, err := l.check(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
