package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maporderWriters are method / function names that emit output in call
// order; invoking one per map iteration bakes the nondeterministic order
// into the output.
var maporderWriters = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "WriteFile": true, "Encode": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// maporderAnalyzer flags `range` over a map whose body is order-sensitive:
// it appends to a slice, writes output, or exits the loop early. Go
// randomizes map iteration order per run, so any such loop produces
// run-dependent results — the exact bug class that breaks the byte-identical
// -resume guarantee. The one exempt shape is the canonical fix itself, a
// bare key-collection loop `keys = append(keys, k)` (order-insensitive as a
// set; sort before use). Order-insensitive bodies — sums, counts, in-place
// mutation — are not flagged.
var maporderAnalyzer = &Analyzer{
	Name:  "maporder",
	Doc:   "range over a map with an order-sensitive body (append / write / early exit); iterate sorted keys",
	Tests: true,
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.Pkg.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if isKeyCollection(rs) {
					return true
				}
				if reason := orderSensitive(pass, rs.Body); reason != "" {
					pass.Reportf(rs.Pos(),
						"range over map %s but map iteration order is random per run; iterate a sorted key slice instead", reason)
				}
				return true
			})
		}
	},
}

// isKeyCollection matches the two exempt single-statement bodies whose
// append is provably order-insensitive:
//
//	keys = append(keys, k)      // collecting the key set; sort before use
//	m[k] = append(m[k], v)      // per-key accumulation: each key is
//	                            // visited exactly once per loop pass
func isKeyCollection(rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	switch lhs := as.Lhs[0].(type) {
	case *ast.Ident:
		// keys = append(keys, k), with no value variable in play.
		if v, ok := rs.Value.(*ast.Ident); rs.Value != nil && (!ok || v.Name != "_") {
			return false
		}
		dst, ok := call.Args[0].(*ast.Ident)
		arg, ok2 := call.Args[1].(*ast.Ident)
		return ok && ok2 && dst.Name == lhs.Name && arg.Name == key.Name
	case *ast.IndexExpr:
		// m[k] = append(m[k], ...): both sides must index the same map
		// with the range key.
		dst, ok := call.Args[0].(*ast.IndexExpr)
		if !ok {
			return false
		}
		return indexedByKey(lhs, key.Name) && indexedByKey(dst, key.Name) &&
			sameIdent(lhs.X, dst.X)
	}
	return false
}

// indexedByKey reports whether e is `<ident>[key]`.
func indexedByKey(e *ast.IndexExpr, key string) bool {
	idx, ok := e.Index.(*ast.Ident)
	return ok && idx.Name == key
}

func sameIdent(a, b ast.Expr) bool {
	ai, ok1 := a.(*ast.Ident)
	bi, ok2 := b.(*ast.Ident)
	return ok1 && ok2 && ai.Name == bi.Name
}

// orderSensitive returns a description of the first order-sensitive
// operation in a map-range body, or "". Three independent scans: appends
// and writes anywhere in the body, returns anywhere outside nested function
// literals (a return in a closure does not exit the loop), and unlabeled
// breaks that still bind to the range loop.
func orderSensitive(pass *Pass, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
			if _, isBuiltin := pass.Pkg.Info.Uses[fn].(*types.Builtin); isBuiltin {
				// The key-collection shape was exempted before this scan;
				// any other append bakes in the iteration order.
				reason = "appends to a slice"
				return false
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && maporderWriters[sel.Sel.Name] {
			reason = "writes output via " + sel.Sel.Name
			return false
		}
		return true
	})
	if reason != "" {
		return reason
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			reason = "returns early"
			return false
		}
		return true
	})
	if reason != "" {
		return reason
	}
	if breaksLoop(body.List) {
		return "breaks early"
	}
	return ""
}

// breaksLoop reports whether the statement list contains an unlabeled break
// binding to the enclosing range loop, i.e. not recursing into constructs
// that capture break (nested loops, switches, selects) or function
// literals.
func breaksLoop(list []ast.Stmt) bool {
	for _, st := range list {
		switch s := st.(type) {
		case *ast.BranchStmt:
			if s.Tok == token.BREAK && s.Label == nil {
				return true
			}
		case *ast.BlockStmt:
			if breaksLoop(s.List) {
				return true
			}
		case *ast.IfStmt:
			if breaksLoop(s.Body.List) {
				return true
			}
			if s.Else != nil && breaksLoop([]ast.Stmt{s.Else}) {
				return true
			}
		case *ast.LabeledStmt:
			if breaksLoop([]ast.Stmt{s.Stmt}) {
				return true
			}
		}
	}
	return false
}
