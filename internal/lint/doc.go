// Package lint is a stdlib-only static-analysis framework encoding this
// repository's determinism and correctness invariants, driven by
// cmd/repolint. Each Analyzer is a small pass over parsed and type-checked
// packages; findings can be suppressed line by line with a documented
//
//	//lint:allow <rule> — <reason>
//
// directive (see directive.go). The rule catalog lives in All; the
// rationale — why bit-reproducible runs need machine-checked invariants —
// in docs/architecture.md ("Determinism invariants & lint rules").
package lint
