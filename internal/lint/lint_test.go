package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden corpus under testdata/src is a self-contained module: one
// positive and one suppressed fixture per analyzer, with expected findings
// marked in place as
//
//	// want <rule> "<message substring>"
//
// (several markers may share a line). TestGoldenFixtures runs the full
// pipeline — loading, scoping, suppression — over the corpus and requires
// an exact match between markers and findings in both directions.

var wantMarker = regexp.MustCompile(`\bwant ([a-z]+) "([^"]*)"`)

type marker struct {
	file string
	line int
	rule string
	sub  string
	hit  bool
}

func readWantMarkers(t *testing.T, root string) []*marker {
	t.Helper()
	var markers []*marker
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantMarker.FindAllStringSubmatch(line, -1) {
				markers = append(markers, &marker{file: path, line: i + 1, rule: m[1], sub: m[2]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return markers
}

func TestGoldenFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	findings, err := Run(root, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	markers := readWantMarkers(t, root)

	for _, f := range findings {
		matched := false
		for _, m := range markers {
			if !m.hit && m.file == f.Pos.Filename && m.line == f.Pos.Line &&
				m.rule == f.Rule && strings.Contains(f.Msg, m.sub) {
				m.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, m := range markers {
		if !m.hit {
			t.Errorf("expected finding not reported: %s:%d: %s (message containing %q)",
				m.file, m.line, m.rule, m.sub)
		}
	}

	// Every analyzer must have a live positive case in the corpus — this is
	// the golden-file gate behind "repolint exits nonzero on each
	// analyzer's positive case".
	seen := map[string]bool{}
	for _, f := range findings {
		seen[f.Rule] = true
	}
	for _, a := range All() {
		if !seen[a.Name] {
			t.Errorf("analyzer %s has no positive golden case", a.Name)
		}
	}
	if !seen["directive"] {
		t.Error("directive hygiene has no positive golden case")
	}
}

// TestRepoIsClean runs the whole suite over the real tree: the repository
// must stay free of findings (legitimate exceptions carry documented
// //lint:allow directives).
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func TestSplitDirective(t *testing.T) {
	cases := []struct {
		in     string
		rules  []string
		reason string
	}{
		{" wallclock — progress ETA", []string{"wallclock"}, "progress ETA"},
		{" wallclock -- progress ETA", []string{"wallclock"}, "progress ETA"},
		{" floateq,maporder — two rules", []string{"floateq", "maporder"}, "two rules"},
		{" wallclock", []string{"wallclock"}, ""},
		{" — reason only", nil, "reason only"},
	}
	for _, c := range cases {
		rules, reason := splitDirective(c.in)
		if fmt.Sprint(rules) != fmt.Sprint(c.rules) || reason != c.reason {
			t.Errorf("splitDirective(%q) = %v, %q; want %v, %q", c.in, rules, reason, c.rules, c.reason)
		}
	}
}

func TestDirectiveCoversOwnAndNextLine(t *testing.T) {
	var s = allowSet{}
	s.add("f.go", 10, "wallclock")
	for line, want := range map[int]bool{9: false, 10: true, 11: true, 12: false} {
		f := Finding{Rule: "wallclock"}
		f.Pos.Filename = "f.go"
		f.Pos.Line = line
		if got := s.allows(f); got != want {
			t.Errorf("line %d allowed = %v, want %v", line, got, want)
		}
	}
	other := Finding{Rule: "floateq"}
	other.Pos.Filename = "f.go"
	other.Pos.Line = 10
	if s.allows(other) {
		t.Error("directive for wallclock suppressed floateq")
	}
}
