package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden corpus under testdata/src is a self-contained module: one
// positive and one suppressed fixture per analyzer, with expected findings
// marked in place as
//
//	// want <rule> "<message substring>"
//
// (several markers may share a line). TestGoldenFixtures runs the full
// pipeline — loading, scoping, suppression — over the corpus and requires
// an exact match between markers and findings in both directions.

var wantMarker = regexp.MustCompile(`\bwant ([a-z]+) "([^"]*)"`)

type marker struct {
	file string
	line int
	rule string
	sub  string
	hit  bool
}

func readWantMarkers(t *testing.T, root string) []*marker {
	t.Helper()
	var markers []*marker
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantMarker.FindAllStringSubmatch(line, -1) {
				markers = append(markers, &marker{file: path, line: i + 1, rule: m[1], sub: m[2]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return markers
}

func TestGoldenFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	findings, err := RunWith(root, []string{"./..."}, All(), Options{Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	markers := readWantMarkers(t, root)

	for _, f := range findings {
		matched := false
		for _, m := range markers {
			if !m.hit && m.file == f.Pos.Filename && m.line == f.Pos.Line &&
				m.rule == f.Rule && strings.Contains(f.Msg, m.sub) {
				m.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, m := range markers {
		if !m.hit {
			t.Errorf("expected finding not reported: %s:%d: %s (message containing %q)",
				m.file, m.line, m.rule, m.sub)
		}
	}

	// Every analyzer must have a live positive case in the corpus — this is
	// the golden-file gate behind "repolint exits nonzero on each
	// analyzer's positive case".
	seen := map[string]bool{}
	for _, f := range findings {
		seen[f.Rule] = true
	}
	for _, a := range All() {
		if !seen[a.Name] {
			t.Errorf("analyzer %s has no positive golden case", a.Name)
		}
	}
	if !seen["directive"] {
		t.Error("directive hygiene has no positive golden case")
	}
}

// TestRepoIsClean runs the whole suite over the real tree: the repository
// must stay free of findings (legitimate exceptions carry documented
// //lint:allow directives).
func TestRepoIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root, []string{"./..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestRepoIsCleanWithTests is the -tests contract: the real tree stays
// clean when _test.go files are analyzed too (make lint runs this mode).
func TestRepoIsCleanWithTests(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunWith(root, []string{"./..."}, All(), Options{Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestDedupeSort pins the output contract the linter's own determinism
// depends on: findings sorted by (file, line, column, rule, message) with
// exact duplicates dropped — the same invariant the -json byte-stability
// gate relies on.
func TestDedupeSort(t *testing.T) {
	mk := func(file string, line, col int, rule, msg string) Finding {
		f := Finding{Rule: rule, Msg: msg}
		f.Pos.Filename = file
		f.Pos.Line = line
		f.Pos.Column = col
		return f
	}
	in := []Finding{
		mk("b.go", 1, 1, "wallclock", "w"),
		mk("a.go", 9, 2, "maporder", "m"),
		mk("a.go", 9, 2, "maporder", "m"), // duplicate (overlapping package views)
		mk("a.go", 9, 2, "floateq", "f"),
		mk("a.go", 9, 1, "wallclock", "w"),
		mk("a.go", 2, 5, "wallclock", "w"),
	}
	got := dedupeSort(in)
	want := []Finding{
		mk("a.go", 2, 5, "wallclock", "w"),
		mk("a.go", 9, 1, "wallclock", "w"),
		mk("a.go", 9, 2, "floateq", "f"),
		mk("a.go", 9, 2, "maporder", "m"),
		mk("b.go", 1, 1, "wallclock", "w"),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRunDeterministic runs the golden corpus twice: two full pipeline
// runs (fresh loaders, fresh type-checkers) must agree finding for
// finding.
func TestRunDeterministic(t *testing.T) {
	root := filepath.Join("testdata", "src")
	render := func() string {
		findings, err := RunWith(root, []string{"./..."}, All(), Options{Tests: true})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, f := range findings {
			fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
		}
		return b.String()
	}
	if first, second := render(), render(); first != second {
		t.Errorf("two runs disagree:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

func TestSplitDirective(t *testing.T) {
	cases := []struct {
		in     string
		rules  []string
		reason string
	}{
		{" wallclock — progress ETA", []string{"wallclock"}, "progress ETA"},
		{" wallclock -- progress ETA", []string{"wallclock"}, "progress ETA"},
		{" floateq,maporder — two rules", []string{"floateq", "maporder"}, "two rules"},
		{" wallclock", []string{"wallclock"}, ""},
		{" — reason only", nil, "reason only"},
	}
	for _, c := range cases {
		rules, reason := splitDirective(c.in)
		if fmt.Sprint(rules) != fmt.Sprint(c.rules) || reason != c.reason {
			t.Errorf("splitDirective(%q) = %v, %q; want %v, %q", c.in, rules, reason, c.rules, c.reason)
		}
	}
}

func TestDirectiveCoversOwnAndNextLine(t *testing.T) {
	var s = allowSet{}
	s.add("f.go", 10, "wallclock")
	for line, want := range map[int]bool{9: false, 10: true, 11: true, 12: false} {
		f := Finding{Rule: "wallclock"}
		f.Pos.Filename = "f.go"
		f.Pos.Line = line
		if got := s.allows(f); got != want {
			t.Errorf("line %d allowed = %v, want %v", line, got, want)
		}
	}
	other := Finding{Rule: "floateq"}
	other.Pos.Filename = "f.go"
	other.Pos.Line = 10
	if s.allows(other) {
		t.Error("directive for wallclock suppressed floateq")
	}
}
