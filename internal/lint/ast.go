package lint

import (
	"go/ast"
	"go/types"
)

// packageOf resolves the package an expression like `time` in `time.Now`
// refers to, returning its import path ("" when the expression is not a
// package qualifier). Import renames are followed through the type
// checker, so `clock "time"` does not evade a rule.
func packageOf(pkg *Package, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// pkgFunc returns the name of the package-level function of pkgPath that
// the selector calls or references ("" when it is anything else: a method,
// a type, a variable, or another package). It takes the *Package rather
// than the *Pass so the call-graph builder, which runs outside any pass,
// can share it.
func pkgFunc(pkg *Package, sel *ast.SelectorExpr, pkgPath string) string {
	if packageOf(pkg, sel.X) != pkgPath {
		return ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return ""
	}
	return fn.Name()
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

// isFloat reports whether t is (or defaults to) a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
