package lint

import (
	"go/token"
	"strings"
)

// Suppression directives take the form
//
//	//lint:allow rule[,rule...] — reason
//
// ("--" is accepted in place of the em dash). A directive suppresses the
// named rules on its own line and on the line directly below it, so it
// works both as a trailing comment and as a standalone comment above the
// offending line. The reason is mandatory: an exemption without a recorded
// justification is reported under the "directive" rule, as is an unknown
// or empty rule list.

// allowSet maps file name → line → rule → allowed.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) allows(f Finding) bool {
	return s[f.Pos.Filename][f.Pos.Line][f.Rule]
}

// merge folds other's entries into s.
func (s allowSet) merge(other allowSet) {
	for file, lines := range other {
		if s[file] == nil {
			s[file] = map[int]map[string]bool{}
		}
		for line, rules := range lines {
			if s[file][line] == nil {
				s[file][line] = map[string]bool{}
			}
			for r := range rules {
				s[file][line][r] = true
			}
		}
	}
}

func (s allowSet) add(file string, line int, rule string) {
	lines := s[file]
	if lines == nil {
		lines = map[int]map[string]bool{}
		s[file] = lines
	}
	for _, ln := range []int{line, line + 1} {
		if lines[ln] == nil {
			lines[ln] = map[string]bool{}
		}
		lines[ln][rule] = true
	}
}

// directives scans a package's comments for //lint:allow directives,
// returning the suppression set and findings for malformed directives.
func directives(pkg *Package) (allowSet, []Finding) {
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	allows := allowSet{}
	var bad []Finding
	report := func(pos token.Position, msg string) {
		bad = append(bad, Finding{Pos: pos, Rule: "directive", Msg: msg})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rules, reason := splitDirective(text)
				if len(rules) == 0 || reason == "" {
					report(pos, `malformed directive; want "//lint:allow rule[,rule] — reason"`)
					continue
				}
				for _, r := range rules {
					if !known[r] {
						report(pos, "directive names unknown rule "+r)
						continue
					}
					allows.add(pos.Filename, pos.Line, r)
				}
			}
		}
	}
	return allows, bad
}

// splitDirective parses the text after "//lint:allow" into the rule list
// and the reason, split on the first "—" or "--".
func splitDirective(text string) (rules []string, reason string) {
	rulePart := text
	for _, sep := range []string{"—", "--"} {
		if head, tail, ok := strings.Cut(text, sep); ok {
			rulePart, reason = head, strings.TrimSpace(tail)
			break
		}
	}
	for _, r := range strings.FieldsFunc(rulePart, func(c rune) bool { return c == ',' || c == ' ' || c == '\t' }) {
		rules = append(rules, r)
	}
	return rules, reason
}
