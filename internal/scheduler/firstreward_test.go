package scheduler

import (
	"testing"

	"repro/internal/economy"
	"repro/internal/workload"
)

func bidCfg(nodes int) RunConfig {
	return RunConfig{Nodes: nodes, Model: economy.BidBased, BasePrice: 1}
}

func TestFirstRewardAcceptsOnEmptyService(t *testing.T) {
	// No outstanding jobs: cost = 0, slack = PV/pr ≈ 1000/1 ≫ 25.
	jobs := []*workload.Job{qjob(1, 1, 0, 100, 100, 400, 1000, 1)}
	col := runCollect(t, jobs, NewFirstReward, bidCfg(4))
	o := col.Outcomes()[0]
	if !o.Accepted || o.StartTime != 0 {
		t.Errorf("outcome = %+v, want accepted and started at 0", *o)
	}
	if o.Utility != 1000 {
		t.Errorf("utility = %v, want full bid", o.Utility)
	}
}

func TestFirstRewardRejectsUnderPenaltyExposure(t *testing.T) {
	// Job 1 outstanding with a huge penalty rate. Job 2's opportunity cost
	// pr₁·RPT₂ = 100·100 = 10000 ≫ PV₂ ≈ 1000: slack < 0 < 25, reject.
	jobs := []*workload.Job{
		qjob(1, 1, 0, 500, 500, 2000, 5000, 100),
		qjob(2, 1, 10, 100, 100, 400, 1000, 1),
	}
	col := runCollect(t, jobs, NewFirstReward, bidCfg(4))
	if !col.Outcomes()[0].Accepted {
		t.Fatal("job 1 rejected")
	}
	if !col.Outcomes()[1].Rejected {
		t.Error("job 2 accepted despite penalty exposure")
	}
}

func TestFirstRewardSlackThresholdBoundary(t *testing.T) {
	// Empty service, pr = 1: slack ≈ PV ≈ budget. Budget 10 < threshold 25
	// rejects; budget 100 > 25 accepts (discount is negligible here).
	low := []*workload.Job{qjob(1, 1, 0, 100, 100, 400, 10, 1)}
	col := runCollect(t, low, NewFirstReward, bidCfg(4))
	if !col.Outcomes()[0].Rejected {
		t.Error("slack below threshold accepted")
	}
	high := []*workload.Job{qjob(1, 1, 0, 100, 100, 400, 100, 1)}
	col = runCollect(t, high, NewFirstReward, bidCfg(4))
	if !col.Outcomes()[0].Accepted {
		t.Error("slack above threshold rejected")
	}
}

func TestFirstRewardZeroPenaltyJobAdmitted(t *testing.T) {
	// pr = 0 means no penalty exposure at all: slack is effectively
	// infinite and the job is admitted (guarded division).
	jobs := []*workload.Job{qjob(1, 1, 0, 100, 100, 400, 1000, 0)}
	col := runCollect(t, jobs, NewFirstReward, bidCfg(4))
	if !col.Outcomes()[0].Accepted {
		t.Error("zero-penalty job rejected")
	}
}

func TestFirstRewardOrdersByReward(t *testing.T) {
	// Machine busy until t=100; two accepted jobs queue. Job 3 has a much
	// higher PV/RPT (same estimate, bigger budget): it must start first
	// even though job 2 arrived earlier.
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 1e6, 100, 0.001),
		qjob(2, 4, 1, 100, 100, 1e6, 200, 0.001),
		qjob(3, 4, 2, 100, 100, 1e6, 5000, 0.001),
	}
	col := runCollect(t, jobs, NewFirstReward, bidCfg(4))
	o2, o3 := col.Outcomes()[1], col.Outcomes()[2]
	if !o2.Accepted || !o3.Accepted {
		t.Fatalf("queueing jobs rejected: %+v %+v", *o2, *o3)
	}
	if !(o3.StartTime == 100 && o2.StartTime == 200) {
		t.Errorf("starts: job2 %v, job3 %v; want 200 and 100 (reward order)", o2.StartTime, o3.StartTime)
	}
}

func TestFirstRewardNoBackfilling(t *testing.T) {
	// Head of queue needs the full machine; a narrow job behind it fits on
	// the free processors but must NOT start (no backfilling).
	jobs := []*workload.Job{
		qjob(1, 2, 0, 100, 100, 1e6, 10000, 0.001), // runs on 2 of 4 procs
		qjob(2, 4, 1, 100, 100, 1e6, 20000, 0.001), // head: needs all 4
		qjob(3, 1, 2, 10, 10, 1e6, 500, 0.001),     // could fit now, lower reward
	}
	col := runCollect(t, jobs, NewFirstReward, bidCfg(4))
	o3 := col.Outcomes()[2]
	if !o3.Accepted {
		t.Fatal("job 3 rejected")
	}
	if o3.StartTime < 200 {
		t.Errorf("job 3 started at %v: backfilled ahead of the blocked head", o3.StartTime)
	}
}

func TestFirstRewardLateJobPaysPenalty(t *testing.T) {
	// Accepted job delayed past its deadline accrues the linear penalty.
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 1e6, 10000, 0.001),
		qjob(2, 4, 0, 100, 100, 150, 10000, 10), // finishes at 200, deadline 150
	}
	col := runCollect(t, jobs, NewFirstReward, bidCfg(4))
	o := col.Outcomes()[1]
	if !o.Accepted {
		t.Fatal("job 2 rejected")
	}
	if o.SLAFulfilled() {
		t.Error("late job marked fulfilled")
	}
	want := 10000.0 - 50*10 // delay 50 s at rate 10
	if o.Utility != want {
		t.Errorf("utility = %v, want %v", o.Utility, want)
	}
}

func TestFirstRewardTunedThreshold(t *testing.T) {
	// A permissive threshold admits what the default rejects.
	jobs := []*workload.Job{qjob(1, 1, 0, 100, 100, 400, 10, 1)}
	factory := func(ctx *Context) Policy {
		return NewFirstRewardTuned(ctx, 1, 0.01, 0)
	}
	col := runCollect(t, jobs, factory, bidCfg(4))
	if !col.Outcomes()[0].Accepted {
		t.Error("threshold 0 still rejected slack-10 job")
	}
}

func TestFirstRewardName(t *testing.T) {
	if got := NewFirstReward(testContext(economy.BidBased, 4)).Name(); got != "FirstReward" {
		t.Errorf("Name() = %q", got)
	}
}

func TestBoundedBidUtilityFloor(t *testing.T) {
	// A job delayed essentially forever: unbounded utility dives without
	// limit, bounded stops at −budget.
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 1e6, 10000, 0.001),
		// Deadline 10, finish 200: delay 190 at rate 50 = 9500 penalty.
		qjob(2, 4, 0, 100, 100, 10, 2000, 50),
	}
	colU := runCollect(t, workload.CloneAll(jobs), NewFirstReward, bidCfg(4))
	colB := runCollect(t, workload.CloneAll(jobs), NewFirstRewardBounded, bidCfg(4))
	oU, oB := colU.Outcomes()[1], colB.Outcomes()[1]
	if !oU.Accepted || !oB.Accepted {
		t.Fatalf("job 2 rejected: unbounded %+v bounded %+v", *oU, *oB)
	}
	if oU.Utility != 2000-9500 {
		t.Errorf("unbounded utility = %v, want -7500", oU.Utility)
	}
	if oB.Utility != -2000 {
		t.Errorf("bounded utility = %v, want floor -2000", oB.Utility)
	}
}

// Bounded penalties make FirstReward less risk-averse: on a contended
// workload it must accept at least as many jobs as the unbounded variant,
// and typically strictly more.
func TestBoundedFirstRewardAcceptsMore(t *testing.T) {
	jobs := synthWorkload(t, 400, 100, 91)
	cfg := RunConfig{Nodes: 16, Model: economy.BidBased, BasePrice: 1}
	unbounded := runPolicy(t, workload.CloneAll(jobs), NewFirstReward, cfg)
	bounded := runPolicy(t, workload.CloneAll(jobs), NewFirstRewardBounded, cfg)
	if bounded.Accepted < unbounded.Accepted {
		t.Errorf("bounded accepted %d < unbounded %d", bounded.Accepted, unbounded.Accepted)
	}
	if bounded.Accepted == unbounded.Accepted {
		t.Logf("note: identical acceptance (%d) on this workload", bounded.Accepted)
	}
}
