package scheduler

import (
	"testing"

	"repro/internal/economy"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testContext(m economy.Model, nodes int) *Context {
	return &Context{
		Engine:    sim.NewEngine(),
		Collector: metrics.NewCollector(),
		Model:     m,
		Nodes:     nodes,
		BasePrice: 1,
	}
}

// Table V: the policy matrix — names, models, and primary parameters.
func TestTableVPolicyMatrix(t *testing.T) {
	want := []struct {
		name      string
		commodity bool
		bid       bool
		parameter string
	}{
		{"FCFS-BF", true, true, "arrival time"},
		{"SJF-BF", true, false, "runtime"},
		{"EDF-BF", true, true, "deadline"},
		{"Libra", true, true, "deadline"},
		{"Libra+$", true, false, "deadline"},
		{"LibraRiskD", false, true, "deadline"},
		{"FirstReward", false, true, "budget with penalty"},
	}
	specs := Specs()
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i, w := range want {
		s := specs[i]
		if s.Name != w.name {
			t.Errorf("spec %d name = %q, want %q", i, s.Name, w.name)
		}
		if s.Parameter != w.parameter {
			t.Errorf("%s parameter = %q, want %q", s.Name, s.Parameter, w.parameter)
		}
		has := func(m economy.Model) bool {
			for _, mm := range s.Models {
				if mm == m {
					return true
				}
			}
			return false
		}
		if has(economy.Commodity) != w.commodity || has(economy.BidBased) != w.bid {
			t.Errorf("%s models = %v", s.Name, s.Models)
		}
	}
	// Five policies per model, as in the paper's figures.
	if got := len(ForModel(economy.Commodity)); got != 5 {
		t.Errorf("commodity policies = %d, want 5", got)
	}
	if got := len(ForModel(economy.BidBased)); got != 5 {
		t.Errorf("bid-based policies = %d, want 5", got)
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("Libra+$")
	if err != nil || s.Name != "Libra+$" {
		t.Errorf("SpecByName(Libra+$) = %v, %v", s.Name, err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// synthWorkload builds a small QoS-complete trace for integration tests.
func synthWorkload(t *testing.T, n int, inaccuracy float64, seed int64) []*workload.Job {
	t.Helper()
	cfg := workload.DefaultSynthConfig()
	cfg.Jobs = n
	// Keep widths within the small test machine.
	cfg.Widths = []int{1, 2, 4, 8, 16}
	cfg.WidthWeights = []float64{0.3, 0.2, 0.2, 0.2, 0.1}
	// Compress arrivals for contention.
	cfg.MeanInterArrival = 400
	jobs, err := workload.Generate(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	q := qos.DefaultConfig(seed + 1)
	q.InaccuracyPct = inaccuracy
	if err := qos.Synthesize(jobs, q); err != nil {
		t.Fatal(err)
	}
	return jobs
}

// Every policy, under every model it supports, must settle every job:
// accepted jobs start and finish; the rest are rejected; counts add up.
func TestEveryPolicySettlesEveryJob(t *testing.T) {
	for _, set := range []struct {
		name       string
		inaccuracy float64
	}{{"SetA", 0}, {"SetB", 100}} {
		for _, spec := range Specs() {
			for _, model := range spec.Models {
				name := set.name + "/" + spec.Name + "/" + model.String()
				t.Run(name, func(t *testing.T) {
					jobs := synthWorkload(t, 300, set.inaccuracy, 11)
					cfg := RunConfig{Nodes: 16, Model: model, BasePrice: 1}
					var col *metrics.Collector
					factory := func(ctx *Context) Policy {
						col = ctx.Collector
						return spec.New(ctx)
					}
					rep, err := Run(jobs, factory, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if rep.Submitted != 300 {
						t.Fatalf("submitted = %d", rep.Submitted)
					}
					accepted, rejected := 0, 0
					for _, o := range col.Outcomes() {
						switch {
						case o.Accepted:
							accepted++
							if !o.Started || !o.Finished {
								t.Fatalf("job %d accepted but not run to completion: %+v", o.Job.ID, *o)
							}
							if o.StartTime < o.Job.Submit {
								t.Fatalf("job %d started before submission", o.Job.ID)
							}
							if o.FinishTime < o.StartTime+o.Job.Runtime-1e-6 {
								t.Fatalf("job %d finished before its runtime elapsed", o.Job.ID)
							}
						case o.Rejected:
							rejected++
							if o.Started {
								t.Fatalf("job %d rejected but started", o.Job.ID)
							}
						default:
							t.Fatalf("job %d neither accepted nor rejected", o.Job.ID)
						}
					}
					if accepted != rep.Accepted || accepted+rejected != 300 {
						t.Fatalf("accounting: %d accepted + %d rejected != 300", accepted, rejected)
					}
					if rep.SLA > rep.Reliability+1e-9 {
						t.Errorf("SLA %v exceeds reliability %v (nSLA/m > nSLA/n impossible)", rep.SLA, rep.Reliability)
					}
					if rep.Reliability < 0 || rep.Reliability > 100 || rep.SLA < 0 || rep.SLA > 100 {
						t.Errorf("percentages out of range: %+v", rep)
					}
					if rep.Wait < 0 {
						t.Errorf("negative wait %v", rep.Wait)
					}
				})
			}
		}
	}
}

// Libra-family policies examine jobs at submission: zero wait always
// (paper Fig. 3a/b, 6a/b).
func TestLibraFamilyZeroWait(t *testing.T) {
	jobs := synthWorkload(t, 300, 100, 17)
	for _, tc := range []struct {
		f Factory
		m economy.Model
	}{
		{NewLibra, economy.Commodity},
		{NewLibraDollar, economy.Commodity},
		{NewLibra, economy.BidBased},
		{NewLibraRiskD, economy.BidBased},
	} {
		rep := runPolicy(t, workload.CloneAll(jobs), tc.f, RunConfig{Nodes: 16, Model: tc.m, BasePrice: 1})
		if rep.Wait != 0 {
			t.Errorf("wait = %v, want 0", rep.Wait)
		}
	}
}

// With accurate estimates (Set A), the backfillers' generous admission
// control yields perfect reliability: a job is only started when its
// (exact) estimate fits the remaining deadline window.
func TestBackfillersPerfectReliabilitySetA(t *testing.T) {
	jobs := synthWorkload(t, 300, 0, 23)
	for _, f := range []Factory{NewFCFSBF, NewSJFBF, NewEDFBF} {
		rep := runPolicy(t, workload.CloneAll(jobs), f, RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1})
		if rep.Accepted == 0 {
			t.Fatal("nothing accepted")
		}
		if rep.Reliability != 100 {
			t.Errorf("reliability = %v, want 100 in Set A", rep.Reliability)
		}
	}
}

// Libra's reliability must degrade from Set A to Set B (inaccurate
// estimates), the paper's central Figure 3e/f contrast.
func TestLibraReliabilityDegradesWithInaccuracy(t *testing.T) {
	setA := runPolicy(t, synthWorkload(t, 400, 0, 29), NewLibra,
		RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1})
	setB := runPolicy(t, synthWorkload(t, 400, 100, 29), NewLibra,
		RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1})
	if setA.Reliability != 100 {
		t.Errorf("Set A reliability = %v, want 100", setA.Reliability)
	}
	if setB.Reliability >= setA.Reliability {
		t.Errorf("Set B reliability %v not below Set A %v", setB.Reliability, setA.Reliability)
	}
}

func TestRunValidation(t *testing.T) {
	good := synthWorkload(t, 5, 0, 31)
	if _, err := Run(good, NewLibra, RunConfig{Nodes: 0, Model: economy.Commodity, BasePrice: 1}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Run(good, NewLibra, RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 0}); err == nil {
		t.Error("zero base price accepted")
	}
	noQoS := []*workload.Job{{ID: 1, Runtime: 10, Estimate: 10, Procs: 1}}
	if _, err := Run(noQoS, NewLibra, RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1}); err == nil {
		t.Error("QoS-less job accepted")
	}
	wide := []*workload.Job{qjob(1, 64, 0, 10, 10, 100, 100, 0)}
	if _, err := Run(wide, NewLibra, RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1}); err == nil {
		t.Error("overwide job accepted")
	}
	unordered := []*workload.Job{
		qjob(1, 1, 100, 10, 10, 100, 100, 0),
		qjob(2, 1, 50, 10, 10, 100, 100, 0),
	}
	if _, err := Run(unordered, NewLibra, RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1}); err == nil {
		t.Error("unordered submissions accepted")
	}
}

// Determinism: the same workload and policy must produce byte-identical
// reports run to run.
func TestRunDeterminism(t *testing.T) {
	for _, spec := range Specs() {
		model := spec.Models[0]
		a := runPolicy(t, synthWorkload(t, 200, 100, 37), spec.New, RunConfig{Nodes: 16, Model: model, BasePrice: 1})
		b := runPolicy(t, synthWorkload(t, 200, 100, 37), spec.New, RunConfig{Nodes: 16, Model: model, BasePrice: 1})
		if a != b {
			t.Errorf("%s: reports differ across identical runs:\n%+v\n%+v", spec.Name, a, b)
		}
	}
}

// Utilization must be reported by every policy and sit in (0, 1].
func TestReportUtilization(t *testing.T) {
	jobs := synthWorkload(t, 200, 0, 61)
	for _, spec := range Specs() {
		rep := runPolicy(t, workload.CloneAll(jobs), spec.New, RunConfig{Nodes: 16, Model: spec.Models[0], BasePrice: 1})
		if rep.Utilization <= 0 || rep.Utilization > 1 {
			t.Errorf("%s utilization = %v, want (0,1]", spec.Name, rep.Utilization)
		}
	}
}
