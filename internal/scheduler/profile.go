package scheduler

import (
	"fmt"
	"math"
)

// profile is a piecewise-constant availability timeline over future time:
// how many processors are expected to be free during each interval, given
// the believed completion times of running jobs and the reservations of
// queued jobs. Conservative backfilling plans every queued job against it.
type profile struct {
	// times are ascending breakpoints; avail[i] holds during
	// [times[i], times[i+1]) and avail[len-1] holds forever after.
	times []float64
	avail []int
	total int
}

// newProfile starts a timeline at now with the given free processors,
// rising to the full machine as nothing else is known yet.
func newProfile(now float64, total, freeNow int) *profile {
	return &profile{times: []float64{now}, avail: []int{freeNow}, total: total}
}

// segmentAt returns the index of the segment containing time t (t must be
// >= times[0]).
func (p *profile) segmentAt(t float64) int {
	lo, hi := 0, len(p.times)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.times[mid] <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// split ensures a breakpoint exists exactly at time t and returns its
// segment index.
func (p *profile) split(t float64) int {
	i := p.segmentAt(t)
	if p.times[i] == t {
		return i
	}
	p.times = append(p.times, 0)
	p.avail = append(p.avail, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.avail[i+2:], p.avail[i+1:])
	p.times[i+1] = t
	p.avail[i+1] = p.avail[i]
	return i + 1
}

// addRelease adds procs to availability from time t onward (a running job
// believed to finish at t).
func (p *profile) addRelease(t float64, procs int) {
	if t < p.times[0] {
		t = p.times[0]
	}
	i := p.split(t)
	for ; i < len(p.avail); i++ {
		p.avail[i] += procs
	}
}

// reserve subtracts procs over [start, start+dur). It returns an error if
// the reservation would overdraw the profile — callers must have found the
// slot with earliest first.
func (p *profile) reserve(start, dur float64, procs int) error {
	if dur <= 0 {
		return nil
	}
	end := start + dur
	i := p.split(start)
	j := p.split(end) // availability reverts from end onward
	for k := i; k < j; k++ {
		if p.avail[k] < procs {
			return fmt.Errorf("scheduler: reservation overdraws profile at %v (%d < %d)", p.times[k], p.avail[k], procs)
		}
		p.avail[k] -= procs
	}
	return nil
}

// earliest returns the earliest start time >= from at which procs
// processors stay available for dur seconds.
func (p *profile) earliest(from, dur float64, procs int) float64 {
	if procs > p.total {
		return math.Inf(1)
	}
	start := math.Max(from, p.times[0])
	i := p.segmentAt(start)
	for {
		// Candidate start: max(start, beginning of segment i).
		t := math.Max(start, p.times[i])
		if p.avail[i] >= procs && p.fits(t, dur, procs, i) {
			return t
		}
		i++
		if i >= len(p.times) {
			// Beyond the last breakpoint availability is constant; if it
			// did not fit there, nothing ever will. The final segment was
			// already checked, so reaching here means insufficient procs
			// forever.
			return math.Inf(1)
		}
	}
}

// fits reports whether procs stay available over [t, t+dur) given t lies
// in segment i.
func (p *profile) fits(t, dur float64, procs, i int) bool {
	end := t + dur
	for k := i; k < len(p.times); k++ {
		if k > i && p.times[k] >= end {
			return true
		}
		if p.avail[k] < procs {
			return false
		}
	}
	return true // last segment extends forever
}
