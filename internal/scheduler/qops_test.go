package scheduler

import (
	"testing"

	"repro/internal/economy"
	"repro/internal/workload"
)

func TestQoPSAcceptsFeasibleSet(t *testing.T) {
	// Two sequential full-machine jobs, both feasible back to back.
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 150, 1e6, 0),
		qjob(2, 4, 1, 100, 100, 250, 1e6, 0), // runs 100..200, deadline 251
	}
	col := runCollect(t, jobs, NewQoPS, cfg4(economy.Commodity))
	for _, o := range col.Outcomes() {
		if !o.Accepted || !o.SLAFulfilled() {
			t.Fatalf("job %d: %+v", o.Job.ID, *o)
		}
	}
}

func TestQoPSRejectsJobThatWouldBreakGuarantee(t *testing.T) {
	// Job 2's deadline only works if it runs immediately — but job 1
	// occupies the machine until 100 and job 2 cannot fit before 120.
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 150, 1e6, 0),
		qjob(2, 4, 1, 100, 100, 119, 1e6, 0),
	}
	col := runCollect(t, jobs, NewQoPS, cfg4(economy.Commodity))
	if !col.Outcomes()[1].Rejected {
		t.Error("infeasible job accepted")
	}
	// Job 1 unaffected.
	if !col.Outcomes()[0].SLAFulfilled() {
		t.Error("job 1 lost its guarantee")
	}
}

func TestQoPSRejectsJobThatWouldBreakOthersGuarantee(t *testing.T) {
	// Job 2 (accepted, tight deadline) must be protected: job 3 arrives
	// with an earlier deadline (EDF would run it first) but accepting it
	// would push job 2 past its deadline.
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 150, 1e6, 0),
		qjob(2, 4, 1, 100, 100, 210, 1e6, 0), // planned 100..200, deadline 211
		qjob(3, 4, 2, 100, 100, 205, 1e6, 0), // earlier deadline, would evict job 2's slot
	}
	col := runCollect(t, jobs, NewQoPS, cfg4(economy.Commodity))
	if !col.Outcomes()[1].Accepted {
		t.Fatal("job 2 rejected")
	}
	if !col.Outcomes()[2].Rejected {
		t.Error("job 3 accepted despite breaking job 2's guarantee")
	}
	if !col.Outcomes()[1].SLAFulfilled() {
		t.Error("job 2's guarantee broken anyway")
	}
}

func TestQoPSAcceptsAtSubmissionNotStart(t *testing.T) {
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 150, 1e6, 0),
		qjob(2, 4, 1, 100, 100, 300, 1e6, 0),
	}
	col := runCollect(t, jobs, NewQoPS, cfg4(economy.Commodity))
	o := col.Outcomes()[1]
	if !o.Accepted {
		t.Fatal("job 2 rejected")
	}
	if o.StartTime != 100 {
		t.Errorf("job 2 started at %v, want 100", o.StartTime)
	}
}

func TestQoPSBudgetRejection(t *testing.T) {
	jobs := []*workload.Job{qjob(1, 1, 0, 100, 100, 1e6, 50, 0)}
	col := runCollect(t, jobs, NewQoPS, cfg4(economy.Commodity))
	if !col.Outcomes()[0].Rejected {
		t.Error("over-budget job accepted under commodity model")
	}
}

// QoPS's defining property: with exact estimates every accepted job meets
// its deadline, under contention, always.
func TestQoPSGuaranteeSetA(t *testing.T) {
	jobs := synthWorkload(t, 400, 0, 83)
	rep := runPolicy(t, jobs, NewQoPS, RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1})
	if rep.Accepted == 0 {
		t.Fatal("nothing accepted")
	}
	if rep.Reliability != 100 {
		t.Errorf("Set A reliability = %v, want 100 (the QoPS guarantee)", rep.Reliability)
	}
}

// With trace-style estimates the guarantee erodes like everyone else's.
func TestQoPSGuaranteeErodesSetB(t *testing.T) {
	jobs := synthWorkload(t, 400, 100, 83)
	rep := runPolicy(t, jobs, NewQoPS, RunConfig{Nodes: 16, Model: economy.BidBased, BasePrice: 1})
	if rep.Reliability >= 100 {
		t.Skip("this workload produced no overrun-induced misses; larger traces do")
	}
	if rep.Reliability < 50 {
		t.Errorf("Set B reliability = %v, implausibly low", rep.Reliability)
	}
}

func TestQoPSName(t *testing.T) {
	if got := NewQoPS(testContext(economy.Commodity, 4)).Name(); got != "QoPS" {
		t.Errorf("Name() = %q", got)
	}
}
