package scheduler

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/economy"
	"repro/internal/workload"
)

// FirstReward parameters. The paper derives these by tuning on its
// workload: α = 1 (earnings fully weighted, opportunity cost ignored in the
// reward but not in the slack), discount rate 1%, slack threshold 25. The
// paper leaves the discount-rate time unit implicit; this reproduction
// applies it per hour of remaining processing time so present values stay
// meaningful at trace scale (see DESIGN.md).
const (
	firstRewardAlpha     = 1.0
	firstRewardDiscount  = 0.01 // per hour of RPT
	firstRewardThreshold = 25.0 // seconds of slack

	// minPenaltyRate guards the slack division for jobs whose synthesized
	// penalty rate is ~0 (they are effectively penalty-free, so their slack
	// is huge and they are admitted).
	minPenaltyRate = 1e-9
)

// firstReward implements FirstReward (Irwin, Grit & Chase) extended to
// multi-processor parallel jobs, without backfilling, under the bid-based
// model: admission happens immediately at submission via the slack test;
// accepted jobs wait in a queue ordered by reward (present value per second
// of remaining processing time) and start strictly in that order as
// processors free up — so a newly accepted, more rewarding job delays
// previously accepted ones.
type firstReward struct {
	ctx     *Context
	cluster *cluster.SpaceShared
	queue   []*workload.Job
	// outstanding tracks accepted-but-unfinished jobs, whose penalty rates
	// feed the opportunity-cost sum of the admission test. Kept sorted by
	// job ID: the sum is a float accumulation, and its rounding must not
	// depend on insertion history or map iteration order.
	outstanding []*workload.Job

	alpha, discount, threshold float64
	// bounded caps each job's penalty exposure at its own budget (Irwin et
	// al.'s bounded-penalty case); the paper evaluates the unbounded form.
	bounded bool
}

// NewFirstReward returns the FirstReward policy with the paper's tuned
// constants.
func NewFirstReward(ctx *Context) Policy {
	return NewFirstRewardTuned(ctx, firstRewardAlpha, firstRewardDiscount, firstRewardThreshold)
}

// NewFirstRewardTuned returns FirstReward with explicit constants; the
// slack-threshold ablation bench sweeps these.
func NewFirstRewardTuned(ctx *Context, alpha, discount, threshold float64) Policy {
	return &firstReward{
		ctx:       ctx,
		cluster:   newSpaceCluster(ctx),
		alpha:     alpha,
		discount:  discount,
		threshold: threshold,
	}
}

// NewFirstRewardBounded returns FirstReward under bounded penalties: both
// the admission test's opportunity cost and the earned utility cap each
// job's loss at its budget. It accepts more work than the unbounded
// variant, trading penalty exposure for throughput.
func NewFirstRewardBounded(ctx *Context) Policy {
	p := NewFirstRewardTuned(ctx, firstRewardAlpha, firstRewardDiscount, firstRewardThreshold).(*firstReward)
	p.bounded = true
	return p
}

func (f *firstReward) Name() string { return "FirstReward" }

// Utilization reports the machine's processor utilization so far.
func (f *firstReward) Utilization() float64 { return f.cluster.Utilization() }

// EarliestAvailable implements AvailabilityEstimator over the space-shared
// machine's running set.
func (f *firstReward) EarliestAvailable(procs int) (float64, error) {
	return spaceEarliest(f.cluster, procs)
}

// presentValue is PV_i = b_i / (1 + discount·RPT_i) with RPT in hours.
func (f *firstReward) presentValue(j *workload.Job, rpt float64) float64 {
	return j.Budget / (1 + f.discount*rpt/3600)
}

// opportunityCost is cost_i = Σ_{k≠i} pr_k · RPT_i over outstanding jobs:
// the penalty exposure of delaying everyone else by this job's remaining
// processing time. Under bounded penalties each term is capped at the
// delayed job's budget — the most that job can ever cost the provider.
// Summed in job-ID order (the slice invariant) for reproducible rounding.
func (f *firstReward) opportunityCost(rpt float64) float64 {
	sum := 0.0
	for _, k := range f.outstanding {
		exposure := k.PenaltyRate * rpt
		if f.bounded && exposure > k.Budget {
			exposure = k.Budget
		}
		sum += exposure
	}
	return sum
}

// addOutstanding inserts j preserving the ID-sorted invariant.
func (f *firstReward) addOutstanding(j *workload.Job) {
	i := sort.Search(len(f.outstanding), func(k int) bool { return f.outstanding[k].ID >= j.ID })
	f.outstanding = append(f.outstanding, nil)
	copy(f.outstanding[i+1:], f.outstanding[i:])
	f.outstanding[i] = j
}

// dropOutstanding removes j, if present.
func (f *firstReward) dropOutstanding(j *workload.Job) {
	kept := f.outstanding[:0]
	for _, k := range f.outstanding {
		if k != j {
			kept = append(kept, k)
		}
	}
	f.outstanding = kept
}

// reward orders the execution queue: ((α·PV) − ((1−α)·cost))/RPT.
func (f *firstReward) reward(j *workload.Job) float64 {
	rpt := j.Estimate
	return (f.alpha*f.presentValue(j, rpt) - (1-f.alpha)*f.opportunityCost(rpt)) / rpt
}

func (f *firstReward) Submit(j *workload.Job) {
	rpt := j.Estimate
	pv := f.presentValue(j, rpt)
	cost := f.opportunityCost(rpt)
	pr := j.PenaltyRate
	if pr < minPenaltyRate {
		pr = minPenaltyRate
	}
	slack := (pv - cost) / pr
	if slack < f.threshold {
		f.ctx.Collector.Rejected(j)
		return
	}
	f.ctx.Collector.Accepted(j)
	f.addOutstanding(j)
	f.queue = append(f.queue, j)
	f.schedule()
}

func (f *firstReward) Drain() {
	// Without faults accepted jobs always start once the machine empties
	// (widths are validated against the machine); under fault injection,
	// jobs wider than the surviving machine can be stranded.
	now := float64(f.ctx.Engine.Now())
	for _, j := range f.queue {
		f.dropOutstanding(j)
		writeOff(f.ctx.Collector, j, now)
	}
	f.queue = nil
}

// NodeDown fails a node: its resident job is requeued for a restart. The
// job stays outstanding — its penalty exposure still burdens the admission
// test — and keeps its acceptance; only completion settles it.
func (f *firstReward) NodeDown(node int) {
	if victim := f.cluster.Fail(node); victim != nil {
		f.queue = append(f.queue, victim)
	}
	f.schedule()
}

// NodeUp repairs a node; the restored capacity may start queued jobs.
func (f *firstReward) NodeUp(node int) {
	f.cluster.Repair(node)
	f.schedule()
}

// schedule starts queued jobs strictly in reward order (no backfilling): a
// blocked head waits for processors even while narrower jobs could fit.
func (f *firstReward) schedule() {
	sort.SliceStable(f.queue, func(i, k int) bool {
		ri, rk := f.reward(f.queue[i]), f.reward(f.queue[k])
		if ri != rk {
			return ri > rk
		}
		return f.queue[i].ID < f.queue[k].ID
	})
	for len(f.queue) > 0 && f.cluster.CanStart(f.queue[0].Procs) {
		j := f.queue[0]
		f.queue = f.queue[1:]
		now := float64(f.ctx.Engine.Now())
		f.ctx.Collector.Started(j, now)
		if err := f.cluster.Start(j, f.onFinish); err != nil {
			panic(err) // CanStart was just verified
		}
	}
}

func (f *firstReward) onFinish(j *workload.Job) {
	now := float64(f.ctx.Engine.Now())
	f.dropOutstanding(j)
	utility := economy.BidUtility(j, now)
	if f.bounded {
		utility = economy.BoundedBidUtility(j, now)
	}
	f.ctx.Collector.Finished(j, now, utility)
	f.schedule()
}
