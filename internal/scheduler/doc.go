// Package scheduler implements the resource management policies the paper
// evaluates (Table V) and the simulation driver ([Run]) that plays a
// workload through one of them on a simulated cluster.
//
// The paper's seven policies:
//
//	FCFS-BF, SJF-BF, EDF-BF  EASY backfilling with generous admission
//	                         control (space-shared); ordered by arrival,
//	                         shortest estimate, or earliest deadline;
//	Libra                    deadline-proportional share with admission
//	                         control at submission (time-shared);
//	Libra+$                  Libra with the enhanced adaptive pricing
//	                         function (commodity market model only);
//	LibraRiskD               Libra that only places jobs on nodes with zero
//	                         risk of deadline delay (bid-based model only);
//	FirstReward              reward/opportunity-cost admission with slack
//	                         threshold (bid-based model only).
//
// Extension policies beyond the paper (see README "Beyond the paper"):
// no-admission-control baselines (FCFS-BF/noAC, EDF-BF/noAC),
// conservative backfilling (FCFS-CONS), QoPS guaranteed admission, and
// deadline termination (LibraT).
//
// [Specs] is the policy registry: each [Spec] names the policy, the
// economic models it supports ([ForModel] filters to the five policies a
// model's figures evaluate), its primary parameter, and a constructor.
// A policy receives a [Context] (event engine, metrics collector, economic
// model, machine description) and reacts to job submissions; the driver
// owns the event loop, deterministic for a given workload and seed.
package scheduler
