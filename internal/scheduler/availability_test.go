package scheduler

import (
	"math"
	"testing"

	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/workload"
)

// Every Table V policy must implement AvailabilityEstimator: the federation
// meta-broker ranks clusters with it, so a policy without an estimate would
// silently degrade routing to submission-time ties.
func TestEveryPolicyEstimatesAvailability(t *testing.T) {
	for _, spec := range Specs() {
		s, err := NewSession(spec.New, RunConfig{Nodes: 16, Model: spec.Models[0], BasePrice: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := s.policy.(AvailabilityEstimator); !ok {
			t.Errorf("%s does not implement AvailabilityEstimator", spec.Name)
		}
		at, err := s.EarliestAvailable(16)
		if err != nil {
			t.Errorf("%s: EarliestAvailable: %v", spec.Name, err)
		}
		if at != 0 {
			t.Errorf("%s: idle machine available at %v, want 0", spec.Name, at)
		}
		if _, err := s.EarliestAvailable(17); err == nil {
			t.Errorf("%s: no error for width beyond the machine", spec.Name)
		}
		if _, err := s.EarliestAvailable(0); err == nil {
			t.Errorf("%s: no error for zero width", spec.Name)
		}
	}
}

// An occupied space-shared machine estimates availability from its running
// set; a time-shared machine squeezes share and is always available now.
func TestEarliestAvailableUnderLoad(t *testing.T) {
	jobs := sessionWorkload(t, 40, 3)
	for _, spec := range []string{"FCFS-BF", "Libra"} {
		sp, err := SpecByName(spec)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSession(sp.New, RunConfig{Nodes: 4, Model: economy.Commodity, BasePrice: 1})
		if err != nil {
			t.Fatal(err)
		}
		saturated := false
		for _, j := range workload.CloneAll(jobs) {
			if j.Procs > 4 {
				continue
			}
			if _, err := s.SubmitQuoteless(j); err != nil {
				t.Fatal(err)
			}
			at, err := s.EarliestAvailable(4)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsInf(at, 1) {
				t.Fatalf("%s: +Inf availability without faults", spec)
			}
			if at > s.Now() {
				saturated = true
				if spec == "Libra" {
					t.Fatalf("Libra: time-shared machine reported future availability %v at %v", at, s.Now())
				}
			}
			if at < s.Now() {
				t.Fatalf("%s: availability %v in the past (now %v)", spec, at, s.Now())
			}
		}
		if spec == "FCFS-BF" && !saturated {
			t.Fatalf("FCFS-BF: workload never saturated the 4-node machine; test is vacuous")
		}
	}
}

// A machine fault-shrunken below a job's width answers +Inf — the signal
// that keeps the broker from routing a job to a cluster that can never fit
// it until a repair.
func TestEarliestAvailableDownShrunken(t *testing.T) {
	for _, name := range []string{"FCFS-BF", "Libra"} {
		sp, err := SpecByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSession(sp.New, RunConfig{Nodes: 2, Model: economy.Commodity, BasePrice: 1})
		if err != nil {
			t.Fatal(err)
		}
		fi := s.policy.(FaultInjectable)
		fi.NodeDown(0)
		at, err := s.EarliestAvailable(2)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(at, 1) {
			t.Errorf("%s: shrunken machine availability %v, want +Inf", name, at)
		}
		fi.NodeUp(0)
		if at, _ := s.EarliestAvailable(2); math.IsInf(at, 1) {
			t.Errorf("%s: repaired machine still +Inf", name)
		}
	}
}

// QuoteFor prices without submitting: probing a quote must not perturb the
// simulation, and for an accepted job it must equal the quote Submit
// returns (the Quoter contract, extended to every policy via the session's
// base-charge fallback).
func TestQuoteForMatchesSubmitQuote(t *testing.T) {
	jobs := sessionWorkload(t, 60, 5)
	for _, spec := range Specs() {
		for _, m := range spec.Models {
			probe, err := NewSession(spec.New, RunConfig{Nodes: 128, Model: m, BasePrice: economy.DefaultBasePrice})
			if err != nil {
				t.Fatal(err)
			}
			for _, j := range workload.CloneAll(jobs) {
				probe.AdvanceTo(j.Submit)
				quoted := probe.QuoteFor(j)
				d, err := probe.Submit(j)
				if err != nil {
					t.Fatal(err)
				}
				if d.Admission == AdmissionAccepted && d.Quote != quoted {
					t.Fatalf("%s/%s: pre-submission quote %v != decision quote %v for accepted job %d",
						spec.Name, m, quoted, d.Quote, j.ID)
				}
			}
		}
	}
}

// AdvanceTo dispatches pending events without changing any outcome byte:
// a session advanced to each submission instant before submitting must
// finalize bit-identically to one that never advances explicitly, including
// under fault injection (whose events AdvanceTo brings due).
func TestAdvanceToPreservesOutcomes(t *testing.T) {
	jobs := sessionWorkload(t, 120, 9)
	horizon := faults.JobsHorizon(jobs)
	f := faults.High.Config(3, horizon)
	for _, spec := range Specs() {
		cfg := RunConfig{Nodes: 32, Model: spec.Models[0], BasePrice: 1, Faults: &f}
		plain, err := NewSession(spec.New, cfg)
		if err != nil {
			t.Fatal(err)
		}
		advanced, err := NewSession(spec.New, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range workload.CloneAll(jobs) {
			if j.Procs > 32 {
				continue
			}
			if _, err := plain.SubmitQuoteless(j); err != nil {
				t.Fatal(err)
			}
		}
		for _, j := range workload.CloneAll(jobs) {
			if j.Procs > 32 {
				continue
			}
			advanced.AdvanceTo(j.Submit)
			advanced.AdvanceTo(j.Submit - 1) // past times are a no-op
			if _, err := advanced.SubmitQuoteless(j); err != nil {
				t.Fatal(err)
			}
		}
		if a, b := plain.Finalize(), advanced.Finalize(); a != b {
			t.Errorf("%s: AdvanceTo changed the final report:\nplain:    %+v\nadvanced: %+v", spec.Name, a, b)
		}
		advanced.AdvanceTo(horizon) // finalized session: no-op, must not panic
	}
}
