package scheduler

import (
	"math"
	"testing"

	"repro/internal/economy"
	"repro/internal/workload"
)

func TestLibraAcceptsImmediatelyWithZeroWait(t *testing.T) {
	jobs := []*workload.Job{
		qjob(1, 2, 0, 100, 100, 400, 1e6, 0),
		qjob(2, 2, 10, 100, 100, 400, 1e6, 0),
	}
	col := runCollect(t, jobs, NewLibra, cfg4(economy.Commodity))
	for _, o := range col.Outcomes() {
		if !o.Accepted {
			t.Fatalf("job %d rejected: %+v", o.Job.ID, *o)
		}
		if o.Wait() != 0 {
			t.Errorf("job %d wait = %v, want 0 (examined at submission)", o.Job.ID, o.Wait())
		}
	}
	rep := col.Report()
	if rep.Wait != 0 {
		t.Errorf("report wait = %v, want 0", rep.Wait)
	}
}

func TestLibraRejectsInfeasibleShare(t *testing.T) {
	// Estimate 200 > deadline 100: share > 1, reject at submission.
	jobs := []*workload.Job{qjob(1, 1, 0, 150, 200, 100, 1e6, 0)}
	col := runCollect(t, jobs, NewLibra, cfg4(economy.Commodity))
	if !col.Outcomes()[0].Rejected {
		t.Error("share > 1 job accepted")
	}
}

func TestLibraRejectsWhenNodesSaturated(t *testing.T) {
	// Four jobs with share 0.5 fill both "columns" of a 4-node machine at
	// 2 procs each; a fifth 0.6-share job cannot find 2 nodes.
	var jobs []*workload.Job
	for i := 1; i <= 4; i++ {
		jobs = append(jobs, qjob(i, 2, 0, 100, 100, 200, 1e6, 0)) // share 0.5
	}
	jobs = append(jobs, qjob(5, 2, 1, 60, 60, 100, 1e6, 0)) // share 0.6
	col := runCollect(t, jobs, NewLibra, cfg4(economy.Commodity))
	out := col.Outcomes()
	for i := 0; i < 4; i++ {
		if !out[i].Accepted {
			t.Fatalf("job %d rejected, want accepted", i+1)
		}
	}
	if !out[4].Rejected {
		t.Error("job 5 accepted on saturated machine")
	}
}

func TestLibraMeetsDeadlinesWithAccurateEstimates(t *testing.T) {
	// Heavy contention, accurate estimates: every accepted job must meet
	// its deadline (the proportional-share guarantee).
	var jobs []*workload.Job
	for i := 1; i <= 12; i++ {
		submit := float64(i * 5)
		jobs = append(jobs, qjob(i, 1+i%3, submit, 100, 100, 300+float64(i%4)*50, 1e6, 0))
	}
	col := runCollect(t, jobs, NewLibra, cfg4(economy.Commodity))
	rep := col.Report()
	if rep.Accepted == 0 {
		t.Fatal("nothing accepted")
	}
	if rep.Reliability != 100 {
		t.Errorf("reliability = %v, want 100 with accurate estimates", rep.Reliability)
	}
}

func TestLibraUnderEstimateMissesDeadline(t *testing.T) {
	// Actual runtime 300 but estimate 100, deadline 150: accepted on the
	// estimate, physically cannot finish in time.
	jobs := []*workload.Job{qjob(1, 1, 0, 300, 100, 150, 1e6, 0)}
	col := runCollect(t, jobs, NewLibra, cfg4(economy.Commodity))
	o := col.Outcomes()[0]
	if !o.Accepted {
		t.Fatal("job rejected")
	}
	if o.SLAFulfilled() {
		t.Error("under-estimated job reported as fulfilling its SLA")
	}
	rep := col.Report()
	if rep.Reliability != 0 {
		t.Errorf("reliability = %v, want 0", rep.Reliability)
	}
}

func TestLibraCommodityPricingIncentive(t *testing.T) {
	// Same estimate, tighter deadline pays more (γ·tr + δ·tr/d); quoted at
	// acceptance and collected at completion.
	jobs := []*workload.Job{
		qjob(1, 1, 0, 100, 100, 200, 1e6, 0),
		qjob(2, 1, 0, 100, 100, 800, 1e6, 0),
	}
	col := runCollect(t, jobs, NewLibra, cfg4(economy.Commodity))
	u1 := col.Outcomes()[0].Utility
	u2 := col.Outcomes()[1].Utility
	if math.Abs(u1-100.5) > 1e-9 { // 100 + 100/200
		t.Errorf("tight job utility = %v, want 100.5", u1)
	}
	if math.Abs(u2-100.125) > 1e-9 { // 100 + 100/800
		t.Errorf("loose job utility = %v, want 100.125", u2)
	}
	if u1 <= u2 {
		t.Error("tighter deadline must pay more")
	}
}

func TestLibraCommodityBudgetRejection(t *testing.T) {
	// Quote 100.5 > budget 100: reject.
	jobs := []*workload.Job{qjob(1, 1, 0, 100, 100, 200, 100, 0)}
	col := runCollect(t, jobs, NewLibra, cfg4(economy.Commodity))
	if !col.Outcomes()[0].Rejected {
		t.Error("over-quote job accepted")
	}
}

func TestLibraDollarPriceRisesWithLoad(t *testing.T) {
	// First job lands on an empty node; second job of the same shape must
	// be quoted more because best-fit packs it onto the now-loaded node.
	jobs := []*workload.Job{
		qjob(1, 1, 0, 100, 100, 400, 1e6, 0), // share 0.25
		qjob(2, 1, 1, 100, 100, 400, 1e6, 0),
	}
	col := runCollect(t, jobs, NewLibraDollar, cfg4(economy.Commodity))
	u1 := col.Outcomes()[0].Utility
	u2 := col.Outcomes()[1].Utility
	// Job 1: free after = 0.75, P = 1 + 0.3/0.75 = 1.4, charge 140.
	if math.Abs(u1-140) > 1e-9 {
		t.Errorf("first job charge = %v, want 140", u1)
	}
	// Job 2 best-fits onto the same node: job 1 has booked 0.25 over
	// almost the whole window, so free ≈ 0.5 and the charge ≈ 160.
	if u2 < 155 || u2 > 165 {
		t.Errorf("second job charge = %v, want ~160", u2)
	}
	if u2 <= u1 {
		t.Error("price must rise with booked load")
	}
}

func TestLibraDollarRejectsWhenPriceExceedsBudget(t *testing.T) {
	// Saturate a node to push the dynamic price beyond the budget.
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 125, 1e6, 0), // share 0.8 on all 4 nodes
		qjob(2, 4, 1, 50, 50, 250, 75, 0),    // share 0.2: fits, but P = 1+0.3/0.001 -> huge
	}
	col := runCollect(t, jobs, NewLibraDollar, cfg4(economy.Commodity))
	if !col.Outcomes()[0].Accepted {
		t.Fatal("job 1 rejected")
	}
	if !col.Outcomes()[1].Rejected {
		t.Error("job 2 accepted despite saturated-node price above budget")
	}
}

func TestLibraDollarEarnsMoreThanLibra(t *testing.T) {
	// On a loaded machine Libra+$'s adaptive pricing must out-earn Libra's
	// static pricing for the same workload (paper Fig. 3g/h).
	var jobs []*workload.Job
	for i := 1; i <= 10; i++ {
		jobs = append(jobs, qjob(i, 2, float64(i), 100, 100, 400, 1e6, 0))
	}
	repLibra := runPolicy(t, workload.CloneAll(jobs), NewLibra, cfg4(economy.Commodity))
	repDollar := runPolicy(t, workload.CloneAll(jobs), NewLibraDollar, cfg4(economy.Commodity))
	if repDollar.TotalUtility <= repLibra.TotalUtility {
		t.Errorf("Libra+$ utility %v not above Libra %v", repDollar.TotalUtility, repLibra.TotalUtility)
	}
}

func TestLibraRiskDAvoidsOverrunNodes(t *testing.T) {
	// Node layout (2-node machine): job A overruns its estimate on its
	// node. Job B is itself under-estimated. Libra best-fits B next to A
	// and B misses its deadline; LibraRiskD sees the overrun, places B on
	// the empty node, and B meets its deadline.
	mk := func() []*workload.Job {
		return []*workload.Job{
			qjob(1, 1, 0, 1000, 50, 2500, 1e6, 0), // A: share 0.02... need bigger share
			qjob(2, 1, 60, 100, 50, 110, 1e6, 0),  // B: share 50/110 ≈ 0.4545
		}
	}
	// Give A a meaningful share: estimate 50, deadline 100 -> share 0.5.
	mk = func() []*workload.Job {
		return []*workload.Job{
			qjob(1, 1, 0, 1000, 50, 100, 1e6, 0), // A: share 0.5, overruns from t=50
			qjob(2, 1, 60, 100, 50, 110, 1e6, 0), // B: share ≈0.4545, actual 2× estimate
		}
	}
	cfg := RunConfig{Nodes: 2, Model: economy.BidBased, BasePrice: 1}

	colLibra := runCollect(t, mk(), NewLibra, cfg)
	oB := colLibra.Outcomes()[1]
	if !oB.Accepted {
		t.Fatal("Libra rejected B")
	}
	if oB.SLAFulfilled() {
		t.Errorf("Libra: B met its deadline (finish %v) — expected a miss next to the overrun job", oB.FinishTime)
	}

	colRisk := runCollect(t, mk(), NewLibraRiskD, cfg)
	oB = colRisk.Outcomes()[1]
	if !oB.Accepted {
		t.Fatal("LibraRiskD rejected B")
	}
	if !oB.SLAFulfilled() {
		t.Errorf("LibraRiskD: B missed its deadline (finish %v) — expected placement on the risk-free node", oB.FinishTime)
	}
}

func TestLibraRiskDRejectsWhenOnlyRiskyNodesRemain(t *testing.T) {
	// One-node machine with an overrun job: LibraRiskD must reject the
	// newcomer even though share is available.
	jobs := []*workload.Job{
		qjob(1, 1, 0, 1000, 50, 100, 1e6, 0), // overruns from t=50
		qjob(2, 1, 60, 40, 40, 100, 1e6, 0),  // share 0.4 would fit
	}
	cfg := RunConfig{Nodes: 1, Model: economy.BidBased, BasePrice: 1}
	col := runCollect(t, jobs, NewLibraRiskD, cfg)
	if !col.Outcomes()[1].Rejected {
		t.Error("LibraRiskD accepted a job onto the only (risky) node")
	}
	// Libra, by contrast, accepts it.
	col = runCollect(t, []*workload.Job{
		qjob(1, 1, 0, 1000, 50, 100, 1e6, 0),
		qjob(2, 1, 60, 40, 40, 100, 1e6, 0),
	}, NewLibra, cfg)
	if !col.Outcomes()[1].Accepted {
		t.Error("Libra rejected the same job")
	}
}

func TestLibraBidUtility(t *testing.T) {
	// On-time job under bid-based model earns the full bid.
	jobs := []*workload.Job{qjob(1, 1, 0, 100, 100, 400, 777, 1)}
	col := runCollect(t, jobs, NewLibra, RunConfig{Nodes: 4, Model: economy.BidBased, BasePrice: 1})
	if u := col.Outcomes()[0].Utility; u != 777 {
		t.Errorf("utility = %v, want full bid 777", u)
	}
}

func TestLibraNames(t *testing.T) {
	for _, tc := range []struct {
		f    Factory
		want string
	}{
		{NewLibra, "Libra"}, {NewLibraDollar, "Libra+$"}, {NewLibraRiskD, "LibraRiskD"},
	} {
		ctx := testContext(economy.Commodity, 4)
		if got := tc.f(ctx).Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

// A rating-blind Libra on a heterogeneous machine misses deadlines that a
// homogeneous machine of the same aggregate capacity meets: the share
// admission assumes reference-speed nodes, so work placed on slow nodes
// overruns its window.
func TestLibraHeterogeneityRisk(t *testing.T) {
	jobs := synthWorkload(t, 300, 0, 67)
	homog := runPolicy(t, workload.CloneAll(jobs), NewLibra,
		RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1})
	ratings := make([]float64, 16)
	for i := range ratings {
		if i < 8 {
			ratings[i] = 1.5
		} else {
			ratings[i] = 0.5
		}
	}
	hetero := runPolicy(t, workload.CloneAll(jobs), NewLibra,
		RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1, NodeRatings: ratings})
	if homog.Reliability != 100 {
		t.Fatalf("homogeneous Set A reliability = %v, want 100", homog.Reliability)
	}
	if hetero.Reliability >= homog.Reliability {
		t.Errorf("heterogeneous reliability %v not below homogeneous %v", hetero.Reliability, homog.Reliability)
	}
}

func TestRunRejectsRaggedRatings(t *testing.T) {
	jobs := synthWorkload(t, 5, 0, 68)
	_, err := Run(jobs, NewLibra, RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1, NodeRatings: []float64{1, 2}})
	if err == nil {
		t.Error("ragged ratings accepted")
	}
}

func TestLibraTerminateKillsAtDeadline(t *testing.T) {
	// Under-estimated job (actual 1000, est 50, deadline 100): plain Libra
	// lets it run to completion; LibraT kills it at t=100.
	jobs := []*workload.Job{qjob(1, 1, 0, 1000, 50, 100, 500, 1)}
	cfg := RunConfig{Nodes: 2, Model: economy.BidBased, BasePrice: 1}

	colPlain := runCollect(t, workload.CloneAll(jobs), NewLibra, cfg)
	o := colPlain.Outcomes()[0]
	if o.Killed || o.FinishTime != 1000 {
		t.Fatalf("plain Libra outcome: %+v", *o)
	}

	colT := runCollect(t, workload.CloneAll(jobs), NewLibraTerminate, cfg)
	o = colT.Outcomes()[0]
	if !o.Killed {
		t.Fatal("LibraT did not kill the overrun job")
	}
	if o.FinishTime != 100 {
		t.Errorf("killed at %v, want 100 (the deadline)", o.FinishTime)
	}
	if o.Utility != 0 {
		t.Errorf("killed job utility = %v, want 0", o.Utility)
	}
	if o.SLAFulfilled() {
		t.Error("killed job marked SLA-fulfilled")
	}
}

func TestLibraTerminateSparesOnTimeJobs(t *testing.T) {
	jobs := []*workload.Job{qjob(1, 1, 0, 50, 50, 100, 500, 1)}
	col := runCollect(t, jobs, NewLibraTerminate, RunConfig{Nodes: 2, Model: economy.BidBased, BasePrice: 1})
	o := col.Outcomes()[0]
	if o.Killed {
		t.Fatal("on-time job killed")
	}
	if !o.SLAFulfilled() || o.Utility != 500 {
		t.Errorf("on-time outcome: %+v", *o)
	}
}

func TestLibraTerminateExactDeadlineCompletionWins(t *testing.T) {
	// Job completes exactly at its deadline: the completion event was
	// scheduled before the kill event, so the job finishes normally.
	jobs := []*workload.Job{qjob(1, 1, 0, 100, 100, 100, 500, 1)}
	col := runCollect(t, jobs, NewLibraTerminate, RunConfig{Nodes: 2, Model: economy.BidBased, BasePrice: 1})
	o := col.Outcomes()[0]
	if o.Killed {
		t.Fatal("exact-deadline completion was killed")
	}
	if !o.SLAFulfilled() {
		t.Error("exact-deadline completion not fulfilled")
	}
}

// Termination caps the provider's exposure: on a Set B workload under
// unbounded penalties, LibraT must out-earn plain Libra (hopeless jobs
// stop bleeding utility at their deadline) while keeping SLA fulfilment in
// the same band — killing frees capacity but also admits more work, so
// small fulfilment shifts in either direction are expected.
func TestLibraTerminateImprovesLateJobOutcomes(t *testing.T) {
	jobs := synthWorkload(t, 400, 100, 71)
	cfg := RunConfig{Nodes: 16, Model: economy.BidBased, BasePrice: 1}
	plain := runPolicy(t, workload.CloneAll(jobs), NewLibra, cfg)
	term := runPolicy(t, workload.CloneAll(jobs), NewLibraTerminate, cfg)
	if term.TotalUtility <= plain.TotalUtility {
		t.Errorf("LibraT utility %v not above Libra %v", term.TotalUtility, plain.TotalUtility)
	}
	if float64(term.SLAFulfilled) < 0.9*float64(plain.SLAFulfilled) {
		t.Errorf("LibraT fulfilled %d collapsed vs Libra %d", term.SLAFulfilled, plain.SLAFulfilled)
	}
}
