package scheduler

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/economy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// libraVariant distinguishes the three members of the Libra family, which
// share deadline-proportional share admission and differ in node selection
// and pricing.
type libraVariant int

const (
	variantLibra libraVariant = iota
	variantLibraDollar
	variantLibraRiskD
)

// libraPolicy implements Libra (Sherwani et al.): a new job is examined
// immediately at submission; it needs Procs nodes each with a free
// processor-time share of estimate/deadline, selected best-fit (most
// saturated first); accepted jobs start at once on the time-shared cluster.
//
// Libra+$ layers the enhanced pricing function on top (commodity market
// model): the per-second price on a node rises with the node's committed
// load, and the job is rejected when its quoted cost exceeds its budget.
//
// LibraRiskD additionally requires selected nodes to carry zero risk of
// deadline delay: a node hosting any job that has already overrun its user
// estimate is holding share for an unknown further time and is skipped.
type libraPolicy struct {
	ctx     *Context
	ts      *cluster.TimeShared
	variant libraVariant
	name    string

	gamma, delta float64 // Libra static pricing
	alpha, beta  float64 // Libra+$ pricing components

	// charge is the commodity price quoted at acceptance, collected at
	// completion.
	charge map[*workload.Job]float64

	// terminate enables the preemptive extension: a job still running at
	// its deadline is killed, freeing capacity (the SLA is already lost).
	// This addresses the non-preemption issue the paper's conclusion
	// raises. Terminated jobs earn the provider nothing — no completed
	// work to charge (commodity), no delivered bid (bid-based).
	terminate bool
}

// NewLibra returns the Libra policy.
func NewLibra(ctx *Context) Policy { return newLibra(ctx, variantLibra, "Libra") }

// NewLibraDollar returns Libra+$ (commodity market model).
func NewLibraDollar(ctx *Context) Policy { return newLibra(ctx, variantLibraDollar, "Libra+$") }

// NewLibraDollarTuned returns Libra+$ with explicit pricing-component
// weights; the β ablation bench sweeps these.
func NewLibraDollarTuned(ctx *Context, alpha, beta float64) Policy {
	p := newLibra(ctx, variantLibraDollar, "Libra+$").(*libraPolicy)
	p.alpha, p.beta = alpha, beta
	return p
}

// NewLibraRiskD returns LibraRiskD (bid-based model).
func NewLibraRiskD(ctx *Context) Policy { return newLibra(ctx, variantLibraRiskD, "LibraRiskD") }

// NewLibraTerminate returns Libra with deadline termination (the
// preemptive extension): jobs still running at their deadline are killed
// instead of squeezing the node.
func NewLibraTerminate(ctx *Context) Policy {
	p := newLibra(ctx, variantLibra, "LibraT").(*libraPolicy)
	p.terminate = true
	return p
}

func newLibra(ctx *Context, v libraVariant, name string) Policy {
	ts := cluster.NewTimeShared(ctx.Engine, ctx.Nodes)
	if len(ctx.NodeRatings) == ctx.Nodes && ctx.Nodes > 0 {
		ts = cluster.NewTimeSharedRated(ctx.Engine, ctx.NodeRatings)
	}
	return &libraPolicy{
		ctx:     ctx,
		ts:      ts,
		variant: v,
		name:    name,
		gamma:   economy.DefaultGamma,
		delta:   economy.DefaultDelta,
		alpha:   economy.DefaultAlpha,
		beta:    economy.DefaultBeta,
		charge:  make(map[*workload.Job]float64),
	}
}

func (l *libraPolicy) Name() string { return l.name }

// Utilization reports the machine's useful-work utilization so far.
func (l *libraPolicy) Utilization() float64 { return l.ts.Utilization() }

// EarliestAvailable implements AvailabilityEstimator: a time-shared machine
// squeezes share, so any width that fits the up nodes can start now; a
// fault-shrunken machine that cannot host the width answers +Inf.
func (l *libraPolicy) EarliestAvailable(procs int) (float64, error) {
	if procs <= 0 || procs > l.ts.Nodes() {
		return 0, fmt.Errorf("scheduler: earliest-available for %d procs on a %d-node machine", procs, l.ts.Nodes())
	}
	if l.ts.UpNodes() >= procs {
		return float64(l.ctx.Engine.Now()), nil
	}
	return math.Inf(1), nil
}

func (l *libraPolicy) Drain() {} // no queue: every job is settled at submission

// NodeDown fails a node, killing every job holding a share on it. Libra has
// no queue to restart from — admission committed the nodes at submission —
// so victims are written off terminally: SLA lost, utility zero, and any
// quoted commodity charge forfeited.
func (l *libraPolicy) NodeDown(node int) {
	now := float64(l.ctx.Engine.Now())
	for _, j := range l.ts.Fail(node) {
		delete(l.charge, j)
		l.ctx.Collector.Killed(j, now, 0)
	}
}

// NodeUp repairs a node; its capacity becomes bookable again.
func (l *libraPolicy) NodeUp(node int) { l.ts.Repair(node) }

// Quote implements Quoter: the commodity charge the family's pricing
// function would collect for j against the machine's current commitments.
// For a job just accepted it returns the recorded charge exactly; otherwise
// Libra and LibraRiskD quote the static deadline-incentive price, and
// Libra+$ quotes its load-dynamic price over the nodes its best-fit
// selection would pick now (falling back to the static price when the job
// cannot be placed at all, so an infeasible job still gets a meaningful
// number to compare against its budget).
func (l *libraPolicy) Quote(j *workload.Job) float64 {
	if c, ok := l.charge[j]; ok {
		return c
	}
	static := economy.LibraCharge(j.Estimate, j.Deadline, l.gamma, l.delta)
	if l.variant != variantLibraDollar || j.Deadline <= 0 {
		return static
	}
	share := j.Estimate / j.Deadline
	if share > 1 {
		return static
	}
	candidates := l.ts.CandidateNodes(share)
	if len(candidates) < j.Procs {
		return static
	}
	return economy.LibraDollarCharge(j.Estimate, l.dollarPrices(j, share, candidates[:j.Procs]))
}

// dollarPrices computes Libra+$'s per-second price on each selected node
// for a job holding the given share over its deadline window.
func (l *libraPolicy) dollarPrices(j *workload.Job, share float64, nodes []int) []float64 {
	prices := make([]float64, len(nodes))
	for i, n := range nodes {
		committedFrac := l.ts.CommittedSeconds(n, j.Deadline) / j.Deadline
		freeAfter := 1 - committedFrac - share
		prices[i] = economy.LibraDollarPricePerSec(l.ctx.BasePrice, l.alpha, l.beta, freeAfter)
	}
	return prices
}

func (l *libraPolicy) Submit(j *workload.Job) {
	share := j.Estimate / j.Deadline
	if share > 1 {
		// The estimate cannot fit before the deadline even on a dedicated
		// processor.
		l.ctx.Collector.Rejected(j)
		return
	}
	candidates := l.ts.CandidateNodes(share)
	if l.variant == variantLibraRiskD {
		riskFree := candidates[:0]
		for _, n := range candidates {
			if !l.ts.NodeHasOverrun(n) {
				riskFree = append(riskFree, n)
			}
		}
		candidates = riskFree
	}
	if len(candidates) < j.Procs {
		l.ctx.Collector.Rejected(j)
		return
	}
	nodes := candidates[:j.Procs]

	if l.ctx.Model == economy.Commodity {
		var cost float64
		switch l.variant {
		case variantLibraDollar:
			// RESMax is the node's capacity over the job's deadline window
			// (d processor-seconds); RESFree deducts the shares other jobs
			// have booked within that window plus this job's own share.
			cost = economy.LibraDollarCharge(j.Estimate, l.dollarPrices(j, share, nodes))
		default:
			cost = economy.LibraCharge(j.Estimate, j.Deadline, l.gamma, l.delta)
		}
		if cost > j.Budget {
			l.ctx.Collector.Rejected(j)
			return
		}
		l.charge[j] = cost
	}

	now := float64(l.ctx.Engine.Now())
	l.ctx.Collector.Accepted(j)
	l.ctx.Collector.Started(j, now)
	if err := l.ts.Start(j, share, nodes, l.onFinish); err != nil {
		panic(err) // candidates were verified to hold the share
	}
	if l.terminate {
		l.ctx.Engine.MustSchedule(sim.Time(j.AbsDeadline()),
			"terminate at deadline", func() { l.kill(j) })
	}
}

// kill terminates a job that reached its deadline unfinished. A job whose
// work completes in the same instant is spared — its completion event is
// already due.
func (l *libraPolicy) kill(j *workload.Job) {
	tj := l.ts.Lookup(j)
	if tj == nil || tj.Done() {
		return // already completed, or completing this instant
	}
	if err := l.ts.Kill(j); err != nil {
		panic(err)
	}
	delete(l.charge, j)
	l.ctx.Collector.Killed(j, float64(l.ctx.Engine.Now()), 0)
}

func (l *libraPolicy) onFinish(j *workload.Job) {
	now := float64(l.ctx.Engine.Now())
	var utility float64
	switch l.ctx.Model {
	case economy.Commodity:
		utility = l.charge[j]
		delete(l.charge, j)
	case economy.BidBased:
		utility = economy.BidUtility(j, now)
	}
	l.ctx.Collector.Finished(j, now, utility)
}
