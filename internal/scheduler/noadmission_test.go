package scheduler

import (
	"testing"

	"repro/internal/economy"
	"repro/internal/workload"
)

func TestNoACAcceptsEverything(t *testing.T) {
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 1e6, 1e6, 0),
		qjob(2, 4, 1, 100, 100, 10, 1, 0), // hopeless deadline and budget
	}
	col := runCollect(t, jobs, NewFCFSNoAC, cfg4(economy.Commodity))
	for _, o := range col.Outcomes() {
		if !o.Accepted || !o.Finished {
			t.Fatalf("job %d not accepted/run: %+v", o.Job.ID, *o)
		}
	}
	rep := col.Report()
	if rep.Accepted != 2 {
		t.Errorf("accepted = %d, want 2 (no admission control)", rep.Accepted)
	}
	// Job 2 misses its deadline: reliability suffers.
	if rep.Reliability != 50 {
		t.Errorf("reliability = %v, want 50", rep.Reliability)
	}
}

func TestNoACCommodityChargeCappedByBudget(t *testing.T) {
	jobs := []*workload.Job{qjob(1, 1, 0, 100, 100, 1e6, 40, 0)}
	col := runCollect(t, jobs, NewFCFSNoAC, cfg4(economy.Commodity))
	if u := col.Outcomes()[0].Utility; u != 40 {
		t.Errorf("utility = %v, want budget cap 40", u)
	}
}

func TestNoACBidPenalties(t *testing.T) {
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 1e6, 1e6, 0),
		qjob(2, 4, 0, 100, 100, 50, 1000, 100), // deadline long gone at finish
	}
	col := runCollect(t, jobs, NewEDFNoAC, cfg4(economy.BidBased))
	o := col.Outcomes()[1]
	if o.Utility >= 0 {
		t.Errorf("hopeless job utility = %v, want deeply negative", o.Utility)
	}
}

// The paper's claim: without admission control the policies perform much
// worse when deadlines are short. Under contention, the with-AC variant
// must beat the no-AC variant on reliability (and, bid-based, on
// profitability, since no-AC keeps paying penalties).
func TestAdmissionControlEarnsItsKeep(t *testing.T) {
	jobs := synthWorkload(t, 400, 100, 77)
	cfg := RunConfig{Nodes: 16, Model: economy.BidBased, BasePrice: 1}
	withAC := runPolicy(t, workload.CloneAll(jobs), NewFCFSBF, cfg)
	noAC := runPolicy(t, workload.CloneAll(jobs), NewFCFSNoAC, cfg)
	if noAC.Reliability >= withAC.Reliability {
		t.Errorf("no-AC reliability %v not below with-AC %v", noAC.Reliability, withAC.Reliability)
	}
	if noAC.Profitability >= withAC.Profitability {
		t.Errorf("no-AC profitability %v not below with-AC %v", noAC.Profitability, withAC.Profitability)
	}
}

func TestNoACNames(t *testing.T) {
	ctx := testContext(economy.Commodity, 4)
	if got := NewFCFSNoAC(ctx).Name(); got != "FCFS-BF/noAC" {
		t.Errorf("Name() = %q", got)
	}
	ctx = testContext(economy.BidBased, 4)
	if got := NewEDFNoAC(ctx).Name(); got != "EDF-BF/noAC" {
		t.Errorf("Name() = %q", got)
	}
}
