package scheduler

import (
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/economy"
	"repro/internal/workload"
)

// conservative implements conservative backfilling (Mu'alem & Feitelson):
// unlike EASY, *every* queued job holds a reservation, and a job may only
// skip ahead if it delays no reservation at all. The paper evaluates the
// EASY variants; this policy is the extension baseline the backfilling
// ablation compares against. It uses the same generous admission control
// and accounting as the EASY policies.
type conservative struct {
	ctx     *Context
	cluster *cluster.SpaceShared
	queue   []*workload.Job
}

// NewFCFSConservative returns First Come First Serve with conservative
// backfilling.
func NewFCFSConservative(ctx *Context) Policy {
	return &conservative{
		ctx:     ctx,
		cluster: newSpaceCluster(ctx),
	}
}

func (c *conservative) Name() string { return "FCFS-CONS" }

// Utilization reports the machine's processor utilization so far.
func (c *conservative) Utilization() float64 { return c.cluster.Utilization() }

// EarliestAvailable implements AvailabilityEstimator over the space-shared
// machine's running set.
func (c *conservative) EarliestAvailable(procs int) (float64, error) {
	return spaceEarliest(c.cluster, procs)
}

func (c *conservative) Submit(j *workload.Job) {
	c.queue = append(c.queue, j)
	c.schedule()
}

func (c *conservative) Drain() {
	now := float64(c.ctx.Engine.Now())
	for _, j := range c.queue {
		writeOff(c.ctx.Collector, j, now)
	}
	c.queue = nil
}

// NodeDown fails a node: its resident job is requeued for a full restart
// and faces admission again.
func (c *conservative) NodeDown(node int) {
	if victim := c.cluster.Fail(node); victim != nil {
		c.queue = append(c.queue, victim)
	}
	c.schedule()
}

// NodeUp repairs a node; the restored capacity may start queued jobs.
func (c *conservative) NodeUp(node int) {
	c.cluster.Repair(node)
	c.schedule()
}

func (c *conservative) admissible(j *workload.Job, now float64) bool {
	if now+j.Estimate > j.AbsDeadline() {
		return false
	}
	if c.ctx.Model == economy.Commodity &&
		economy.BaseCharge(j.Estimate, c.ctx.PriceAt(now)) > j.Budget {
		return false
	}
	return true
}

// schedule replans all reservations from scratch in FCFS order against the
// availability profile, starting every job whose reservation is "now".
// Replanning each pass is the standard formulation: completions ahead of
// estimates compress the plan without ever pushing a reservation later.
func (c *conservative) schedule() {
	now := float64(c.ctx.Engine.Now())
	// Purge jobs that can no longer meet their deadline (failure victims
	// whose restart window closed are written off as killed).
	kept := c.queue[:0]
	for _, j := range c.queue {
		if c.admissible(j, now) {
			kept = append(kept, j)
			continue
		}
		writeOff(c.ctx.Collector, j, now)
	}
	c.queue = kept
	sort.SliceStable(c.queue, func(i, k int) bool {
		if c.queue[i].Submit != c.queue[k].Submit {
			return c.queue[i].Submit < c.queue[k].Submit
		}
		return c.queue[i].ID < c.queue[k].ID
	})

	prof := newProfile(now, c.cluster.Nodes(), c.cluster.FreeProcs())
	for _, sj := range c.cluster.Running() {
		end := float64(sj.EstEnd)
		if end < now {
			end = now // overrun jobs believed to finish imminently
		}
		prof.addRelease(end, sj.Job.Procs)
	}

	kept = c.queue[:0]
	for _, j := range c.queue {
		t := prof.earliest(now, j.Estimate, j.Procs)
		if t <= now && c.cluster.CanStart(j.Procs) {
			c.start(j)
			if err := prof.reserve(now, j.Estimate, j.Procs); err != nil {
				panic(err)
			}
			continue
		}
		if math.IsInf(t, 1) {
			// Failed nodes can shrink the machine below the job's width;
			// nothing schedulable remains for it, so write it off.
			writeOff(c.ctx.Collector, j, now)
			continue
		}
		if err := prof.reserve(t, j.Estimate, j.Procs); err != nil {
			panic(err)
		}
		kept = append(kept, j)
	}
	c.queue = kept
}

func (c *conservative) start(j *workload.Job) {
	now := float64(c.ctx.Engine.Now())
	c.ctx.Collector.Accepted(j)
	c.ctx.Collector.Started(j, now)
	if err := c.cluster.Start(j, c.onFinish); err != nil {
		panic(err)
	}
}

func (c *conservative) onFinish(j *workload.Job) {
	now := float64(c.ctx.Engine.Now())
	var utility float64
	switch c.ctx.Model {
	case economy.Commodity:
		utility = economy.BaseCharge(j.Estimate, c.ctx.PriceAt(c.ctx.Collector.Outcome(j).StartTime))
	case economy.BidBased:
		utility = economy.BidUtility(j, now)
	}
	c.ctx.Collector.Finished(j, now, utility)
	c.schedule()
}
