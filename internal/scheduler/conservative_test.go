package scheduler

import (
	"math"
	"testing"

	"repro/internal/economy"
	"repro/internal/workload"
)

func TestProfileBasics(t *testing.T) {
	p := newProfile(0, 8, 2)
	// 4 procs release at t=50, 2 more at t=100.
	p.addRelease(50, 4)
	p.addRelease(100, 2)
	if got := p.earliest(0, 10, 2); got != 0 {
		t.Errorf("earliest(2 procs) = %v, want 0", got)
	}
	if got := p.earliest(0, 10, 4); got != 50 {
		t.Errorf("earliest(4 procs) = %v, want 50", got)
	}
	if got := p.earliest(0, 10, 8); got != 100 {
		t.Errorf("earliest(8 procs) = %v, want 100", got)
	}
	if got := p.earliest(0, 10, 9); !math.IsInf(got, 1) {
		t.Errorf("earliest(9 procs) = %v, want +Inf", got)
	}
	if got := p.earliest(60, 10, 4); got != 60 {
		t.Errorf("earliest(from 60) = %v, want 60", got)
	}
}

func TestProfileReserveCarvesWindow(t *testing.T) {
	p := newProfile(0, 8, 8)
	if err := p.reserve(10, 20, 6); err != nil {
		t.Fatal(err)
	}
	// During [10,30) only 2 procs remain.
	if got := p.earliest(0, 5, 4); got != 0 {
		t.Errorf("4 procs before the reservation = %v, want 0", got)
	}
	if got := p.earliest(10, 5, 4); got != 30 {
		t.Errorf("4 procs inside the reservation = %v, want 30", got)
	}
	if got := p.earliest(10, 5, 2); got != 10 {
		t.Errorf("2 procs inside the reservation = %v, want 10", got)
	}
	// A long window straddling the reservation must wait it out: [0,15)
	// overlaps [10,30), where only 2 procs remain.
	if got := p.earliest(0, 15, 4); got != 30 {
		t.Errorf("straddling window = %v, want 30", got)
	}
	// A short window fitting entirely before the reservation is fine.
	if got := p.earliest(0, 10, 4); got != 0 {
		t.Errorf("pre-reservation window = %v, want 0", got)
	}
}

func TestProfileReserveOverdraw(t *testing.T) {
	p := newProfile(0, 4, 2)
	if err := p.reserve(0, 10, 3); err == nil {
		t.Error("overdraw accepted")
	}
	if err := p.reserve(0, 10, 2); err != nil {
		t.Error(err)
	}
}

func TestProfileWindowStraddlesDip(t *testing.T) {
	p := newProfile(0, 8, 4)
	p.addRelease(20, 4)     // 8 from t=20
	_ = p.reserve(10, 5, 4) // dip to 0 during [10,15)
	// A 2-proc 8-second window starting at 5 would cross the dip.
	if got := p.earliest(5, 8, 2); got != 15 {
		t.Errorf("earliest = %v, want 15 (after the dip)", got)
	}
}

func TestConservativeNeverDelaysEarlierReservation(t *testing.T) {
	// Machine of 4. Job 1 runs (2 procs, 100 s). Job 2 (4 procs) reserves
	// t=100. Job 3 (2 procs, est 150) would finish at ~152 under EASY's
	// "extra processors" variants or delay job 2 if started; conservative
	// must slot it after job 2's reservation window.
	jobs := []*workload.Job{
		qjob(1, 2, 0, 100, 100, 1e6, 1e6, 0),
		qjob(2, 4, 1, 100, 100, 1e6, 1e6, 0),
		qjob(3, 2, 2, 150, 150, 1e6, 1e6, 0),
	}
	col := runCollect(t, jobs, NewFCFSConservative, cfg4(economy.Commodity))
	o2, o3 := col.Outcomes()[1], col.Outcomes()[2]
	if o2.StartTime != 100 {
		t.Errorf("job 2 started at %v, want 100", o2.StartTime)
	}
	if o3.StartTime < 200 {
		t.Errorf("job 3 started at %v: delayed job 2's reservation", o3.StartTime)
	}
}

func TestConservativeBackfillsHarmlessJob(t *testing.T) {
	// Same as above but job 3 is short (50 s): it finishes before job 2's
	// reservation and must backfill immediately.
	jobs := []*workload.Job{
		qjob(1, 2, 0, 100, 100, 1e6, 1e6, 0),
		qjob(2, 4, 1, 100, 100, 1e6, 1e6, 0),
		qjob(3, 2, 2, 50, 50, 1e6, 1e6, 0),
	}
	col := runCollect(t, jobs, NewFCFSConservative, cfg4(economy.Commodity))
	if got := col.Outcomes()[2].StartTime; got != 2 {
		t.Errorf("short job started at %v, want 2 (backfilled)", got)
	}
	if got := col.Outcomes()[1].StartTime; got != 100 {
		t.Errorf("reserved job started at %v, want 100", got)
	}
}

// Conservative protects LATER-ARRIVING narrow jobs' reservations where
// EASY only protects the head: under EASY job 4 (arrived after job 3)
// could backfill past job 3's implicit position repeatedly; conservative
// gives job 3 a firm start bound. Here we assert the queue's relative
// order of equally-wide jobs is preserved.
func TestConservativeKeepsFCFSOrderAmongEqualJobs(t *testing.T) {
	var jobs []*workload.Job
	jobs = append(jobs, qjob(1, 4, 0, 100, 100, 1e6, 1e6, 0))
	for i := 2; i <= 5; i++ {
		jobs = append(jobs, qjob(i, 4, float64(i), 100, 100, 1e6, 1e6, 0))
	}
	col := runCollect(t, jobs, NewFCFSConservative, cfg4(economy.Commodity))
	prev := -1.0
	for _, o := range col.Outcomes() {
		if o.StartTime < prev {
			t.Fatalf("job %d started at %v before its predecessor at %v", o.Job.ID, o.StartTime, prev)
		}
		prev = o.StartTime
	}
}

func TestConservativeAdmissionControl(t *testing.T) {
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 1e6, 1e6, 0),
		qjob(2, 4, 1, 70, 70, 80, 1e6, 0), // cannot meet deadline after queueing
	}
	col := runCollect(t, jobs, NewFCFSConservative, cfg4(economy.Commodity))
	if !col.Outcomes()[1].Rejected {
		t.Error("hopeless job not rejected")
	}
}

func TestConservativeSettlesSyntheticWorkload(t *testing.T) {
	jobs := synthWorkload(t, 300, 100, 53)
	rep := runPolicy(t, jobs, NewFCFSConservative, RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1})
	if rep.Submitted != 300 || rep.Accepted == 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.SLA > rep.Reliability {
		t.Error("SLA above reliability")
	}
	// Set A correctness: rerun with accurate estimates, reliability 100.
	jobsA := synthWorkload(t, 300, 0, 53)
	repA := runPolicy(t, jobsA, NewFCFSConservative, RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1})
	if repA.Reliability != 100 {
		t.Errorf("Set A reliability = %v, want 100", repA.Reliability)
	}
}

func TestConservativeName(t *testing.T) {
	if got := NewFCFSConservative(testContext(economy.Commodity, 4)).Name(); got != "FCFS-CONS" {
		t.Errorf("Name() = %q", got)
	}
}
