package scheduler

import (
	"fmt"

	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Admission is the synchronous admission outcome visible when a submission
// returns: the Libra family and FirstReward settle every job at submission,
// while the backfilling policies apply the paper's "generous" admission
// control and decide only when the job reaches the head of the queue.
type Admission int

const (
	// AdmissionPending means the job is queued and the decision is deferred
	// (generous admission control).
	AdmissionPending Admission = iota
	// AdmissionAccepted means the SLA was accepted at submission.
	AdmissionAccepted
	// AdmissionRejected means the job was refused at submission.
	AdmissionRejected
)

// String returns the service-layer spelling of the outcome.
func (a Admission) String() string {
	switch a {
	case AdmissionPending:
		return "queued"
	case AdmissionAccepted:
		return "accepted"
	case AdmissionRejected:
		return "rejected"
	default:
		return fmt.Sprintf("Admission(%d)", int(a))
	}
}

// Decision is what the service front-end reports for one submission: the
// synchronous admission outcome plus the price quote under the session's
// economic model — the commodity charge the provider would collect, or the
// job's bid (its budget) under the bid-based model, where the provider's
// actual utility can later fall below the quote through delay penalties.
type Decision struct {
	Admission Admission
	Quote     float64
}

// Quoter is implemented by policies whose commodity price differs from the
// flat base charge (the Libra family's static and load-dynamic pricing
// functions). Quote returns the charge the policy would collect for the job
// given the machine's current commitments; for a job just accepted it must
// equal the recorded charge.
type Quoter interface {
	Quote(j *workload.Job) float64
}

// Session owns one resumable simulation: the event engine, the outcome
// collector, and a live policy, advanced in virtual time one submission at
// a time. It is the step-driven core both of the batch Run entry point and
// of the internal/serve request-driven daemon, which is what makes a
// scripted online session bit-for-bit identical to the equivalent offline
// run: arrivals are scheduled in the sim.ClassArrival band and the engine
// dispatches exactly through each arrival, so the event order matches a
// run that scheduled every arrival up front.
//
// A Session is not safe for concurrent use; the serve layer wraps it in a
// per-session mutex.
type Session struct {
	engine    *sim.Engine
	collector *metrics.Collector
	ctx       *Context
	policy    Policy
	finalized bool
	final     metrics.Report
	// lastSubmit enforces non-decreasing submission times, mirroring the
	// batch validation (the engine itself would also refuse to schedule in
	// the past, but with a less helpful error).
	lastSubmit float64
}

// NewSession validates the configuration, builds the policy, and schedules
// the configured fault process (in the sim.ClassInjected band, so failures
// at an arrival's exact instant order after the arrival, as in a batch
// run). The session starts at virtual time zero with no jobs.
func NewSession(factory Factory, cfg RunConfig) (*Session, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	engine := sim.NewEngine()
	collector := metrics.NewCollector()
	ctx := &Context{
		Engine:      engine,
		Collector:   collector,
		Model:       cfg.Model,
		Nodes:       cfg.Nodes,
		BasePrice:   cfg.BasePrice,
		NodeRatings: cfg.NodeRatings,
		Prices:      cfg.Prices,
	}
	s := &Session{
		engine:     engine,
		collector:  collector,
		ctx:        ctx,
		policy:     factory(ctx),
		lastSubmit: -1,
	}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		fi, ok := s.policy.(FaultInjectable)
		if !ok {
			return nil, fmt.Errorf("scheduler: policy %s cannot absorb fault injection", s.policy.Name())
		}
		events, err := faults.Generate(*cfg.Faults, cfg.Nodes)
		if err != nil {
			return nil, err
		}
		for _, ev := range events {
			ev := ev
			label := "repair node"
			if ev.Down {
				label = "fail node"
			}
			engine.MustScheduleClass(sim.Time(ev.Time), sim.ClassInjected, label, func() {
				if ev.Down {
					fi.NodeDown(ev.Node)
				} else {
					fi.NodeUp(ev.Node)
				}
			})
		}
	}
	return s, nil
}

// PolicyName returns the live policy's display name.
func (s *Session) PolicyName() string { return s.policy.Name() }

// Now returns the session's virtual time: the submission time of the last
// job, or zero before the first submission. Events beyond it stay queued
// until a later submission or Finalize advances past them.
func (s *Session) Now() float64 { return float64(s.engine.Now()) }

// Finalized reports whether Finalize has run.
func (s *Session) Finalized() bool { return s.finalized }

// Submit validates the job, advances the simulation exactly through its
// arrival, and returns the admission decision and price quote. Submission
// times must be non-decreasing; the job must carry QoS parameters and fit
// the machine.
func (s *Session) Submit(j *workload.Job) (Decision, error) {
	adm, err := s.submit(j)
	if err != nil {
		return Decision{}, err
	}
	return Decision{Admission: adm, Quote: s.quote(j)}, nil
}

// submit is the quote-free submission path the batch Run uses: pricing a
// job the caller will never read (the Libra family walks candidate nodes
// to quote) is pure overhead at trace scale.
func (s *Session) submit(j *workload.Job) (Admission, error) {
	if s.finalized {
		return AdmissionPending, fmt.Errorf("scheduler: job %d submitted to a finalized session", j.ID)
	}
	if err := j.Validate(); err != nil {
		return AdmissionPending, err
	}
	if !j.HasQoS() {
		return AdmissionPending, fmt.Errorf("scheduler: job %d has no QoS parameters", j.ID)
	}
	if j.Submit < s.lastSubmit {
		return AdmissionPending, fmt.Errorf("scheduler: job %d out of submission order", j.ID)
	}
	if j.Procs > s.ctx.Nodes {
		return AdmissionPending, fmt.Errorf("scheduler: job %d wider (%d) than the machine (%d)", j.ID, j.Procs, s.ctx.Nodes)
	}
	s.lastSubmit = j.Submit
	arrival := s.engine.MustScheduleClass(sim.Time(j.Submit), sim.ClassArrival, "submit job", func() {
		s.collector.Submitted(j)
		s.policy.Submit(j)
	})
	s.engine.RunThrough(arrival)
	switch o := s.collector.Outcome(j); {
	case o.Accepted:
		return AdmissionAccepted, nil
	case o.Rejected:
		return AdmissionRejected, nil
	default:
		return AdmissionPending, nil
	}
}

// SubmitQuoteless is the quote-free submission path for batch drivers (the
// federation meta-broker's placement step): identical to Submit except that
// no price is computed, which matters at trace scale — see submit.
func (s *Session) SubmitQuoteless(j *workload.Job) (Admission, error) {
	return s.submit(j)
}

// QuoteFor prices a job under the session's economic model at the current
// virtual instant without submitting it: the bid itself under the bid-based
// model, the policy's own pricing function when it quotes one (the Libra
// family), and the flat base charge otherwise. This is the quote-shopping
// probe the federation meta-broker uses for every policy, not just the
// Quoter implementations.
func (s *Session) QuoteFor(j *workload.Job) float64 { return s.quote(j) }

// AdvanceTo dispatches every pending event up to and including virtual time
// t without submitting anything — completions, lapses, and injected faults
// come due exactly as they would on the next submission at t. The broker
// advances candidate sessions to a job's submission instant before quoting
// so quotes and availability reflect each cluster's state at that moment.
// Advancing changes no outcome bytes: every event carries its own timestamp
// and would be dispatched identically, later, by the next submission or by
// Finalize. Times in the past (or a finalized session) are a no-op.
func (s *Session) AdvanceTo(t float64) {
	if s.finalized || t <= float64(s.engine.Now()) {
		return
	}
	s.engine.RunUntil(sim.Time(t))
}

// EarliestAvailable estimates, at the current virtual instant, the earliest
// time at which procs processors could start a job — the policy's own
// optimistic plan (see AvailabilityEstimator), +Inf if the fault-shrunken
// machine can never fit the width, and the current instant for policies
// without an estimator.
func (s *Session) EarliestAvailable(procs int) (float64, error) {
	if procs <= 0 || procs > s.ctx.Nodes {
		return 0, fmt.Errorf("scheduler: earliest-available for %d procs on a %d-node machine", procs, s.ctx.Nodes)
	}
	if ae, ok := s.policy.(AvailabilityEstimator); ok {
		return ae.EarliestAvailable(procs)
	}
	return s.Now(), nil
}

// quote prices the job under the session's economic model at the current
// instant: the bid itself under the bid-based model, otherwise the policy's
// commodity charge (flat base charge unless the policy quotes its own
// pricing function).
func (s *Session) quote(j *workload.Job) float64 {
	if s.ctx.Model == economy.BidBased {
		return j.Budget
	}
	if q, ok := s.policy.(Quoter); ok {
		return q.Quote(j)
	}
	return economy.BaseCharge(j.Estimate, s.ctx.PriceAt(float64(s.engine.Now())))
}

// Snapshot returns the live mid-simulation report over everything settled
// so far, without advancing virtual time. Jobs still queued or running
// count as submitted (and possibly accepted) but not finished, so the
// objectives move as the session progresses.
func (s *Session) Snapshot() metrics.Report {
	if s.finalized {
		return s.final
	}
	report := s.collector.Report()
	if ur, ok := s.policy.(UtilizationReporter); ok {
		report.Utilization = ur.Utilization()
	}
	return report
}

// Finalize drains the session — no further arrivals — and returns the
// final report: every remaining event is dispatched, the policy writes off
// jobs that could never start, and the objectives are computed exactly as
// the batch Run does. Finalize is idempotent; Submit fails afterwards.
func (s *Session) Finalize() metrics.Report {
	if s.finalized {
		return s.final
	}
	s.engine.Run()
	s.policy.Drain()
	s.engine.Run() // drain may have released queue state needing no events, but keep symmetric
	s.final = s.collector.Report()
	if ur, ok := s.policy.(UtilizationReporter); ok {
		s.final.Utilization = ur.Utilization()
	}
	s.finalized = true
	return s.final
}
