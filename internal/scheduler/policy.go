package scheduler

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Context carries everything a policy needs for one simulation run.
type Context struct {
	Engine    *sim.Engine
	Collector *metrics.Collector
	Model     economy.Model
	Nodes     int
	// BasePrice is PBase, in dollars per estimated-runtime second.
	BasePrice float64
	// NodeRatings optionally makes the machine heterogeneous: node i runs
	// at NodeRatings[i] times the reference speed. Honored by the
	// time-shared (Libra-family) policies; the space-shared policies model
	// the paper's homogeneous SP2 and ignore it (see the heterogeneity
	// ablation bench).
	NodeRatings []float64
	// Prices optionally varies the commodity base price over time (the
	// paper's "variable" pricing, §5.1). Nil means flat BasePrice. Honored
	// by the base-price policies (the backfillers, QoPS, the no-AC
	// baselines); the Libra family has its own pricing functions.
	Prices economy.PriceSchedule
}

// PriceAt returns the commodity base price in effect at time t.
func (ctx *Context) PriceAt(t float64) float64 {
	if ctx.Prices != nil {
		return ctx.Prices.PriceAt(t)
	}
	return ctx.BasePrice
}

// newSpaceCluster builds the context's space-shared machine, honoring node
// ratings when configured.
func newSpaceCluster(ctx *Context) *cluster.SpaceShared {
	if len(ctx.NodeRatings) == ctx.Nodes && ctx.Nodes > 0 {
		return cluster.NewSpaceSharedRated(ctx.Engine, ctx.NodeRatings)
	}
	return cluster.NewSpaceShared(ctx.Engine, ctx.Nodes)
}

// Policy handles job submissions; everything else (queueing, admission,
// execution, accounting) is the policy's business. Implementations report
// accept/reject/start/finish through ctx.Collector.
type Policy interface {
	// Name returns the policy's display name as used in the paper.
	Name() string
	// Submit is invoked at each job's submission time.
	Submit(j *workload.Job)
	// Drain is invoked after the last submission; policies that keep queues
	// use it to reject jobs still waiting when the simulation empties (the
	// simulation only ends once no events remain, so a non-empty queue at
	// drain time means those jobs could never start).
	Drain()
}

// UtilizationReporter is implemented by policies whose cluster can report
// machine utilization; Run copies it into the report.
type UtilizationReporter interface {
	Utilization() float64
}

// AvailabilityEstimator is implemented by policies that can estimate, at
// the current virtual instant and without side effects, the earliest time
// at which procs processors could start a job. The estimate is optimistic
// (user runtime estimates, no future failures) — the same information a
// backfilling policy plans with. A +Inf answer means the machine, in its
// current fault-shrunken state, can never fit the width until a repair.
// The federation meta-broker ranks clusters with this estimate.
type AvailabilityEstimator interface {
	EarliestAvailable(procs int) (float64, error)
}

// spaceEarliest adapts the space-shared cluster's availability query to the
// AvailabilityEstimator contract, translating the cluster's Infinity
// sentinel into +Inf.
func spaceEarliest(c *cluster.SpaceShared, procs int) (float64, error) {
	t, err := c.EarliestAvailable(procs)
	if err != nil {
		return 0, err
	}
	if t >= sim.Infinity {
		return math.Inf(1), nil
	}
	return float64(t), nil
}

// FaultInjectable is implemented by policies that can absorb node failure
// and repair events. NodeDown fails the node in the policy's cluster and
// handles the victims per policy (requeue for restart, or write off);
// NodeUp returns the node to service. Run refuses to inject faults into a
// policy that does not implement this.
type FaultInjectable interface {
	NodeDown(node int)
	NodeUp(node int)
}

// writeOff records a queued job the policy is giving up on — typically at
// drain or admission purge under fault injection: killed if it had started
// (a failure victim that could not be restarted), abandoned if accepted but
// never run, plainly rejected otherwise.
func writeOff(c *metrics.Collector, j *workload.Job, now float64) {
	o := c.Outcome(j)
	switch {
	case o.Started:
		c.Killed(j, now, 0)
	case o.Accepted:
		c.Abandoned(j, now)
	default:
		c.Rejected(j)
	}
}

// Factory builds a fresh policy instance bound to a run context.
type Factory func(ctx *Context) Policy

// Spec describes one policy in the Table V matrix.
type Spec struct {
	Name string
	// Models lists the economic models the paper evaluates the policy
	// under.
	Models []economy.Model
	// Parameter is the primary scheduling parameter per Table V.
	Parameter string
	New       Factory
}

// Specs returns the Table V policy matrix in the paper's order.
func Specs() []Spec {
	return []Spec{
		{"FCFS-BF", []economy.Model{economy.Commodity, economy.BidBased}, "arrival time", NewFCFSBF},
		{"SJF-BF", []economy.Model{economy.Commodity}, "runtime", NewSJFBF},
		{"EDF-BF", []economy.Model{economy.Commodity, economy.BidBased}, "deadline", NewEDFBF},
		{"Libra", []economy.Model{economy.Commodity, economy.BidBased}, "deadline", NewLibra},
		{"Libra+$", []economy.Model{economy.Commodity}, "deadline", NewLibraDollar},
		{"LibraRiskD", []economy.Model{economy.BidBased}, "deadline", NewLibraRiskD},
		{"FirstReward", []economy.Model{economy.BidBased}, "budget with penalty", NewFirstReward},
	}
}

// SpecByName returns the spec for a policy name.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scheduler: unknown policy %q", name)
}

// ForModel returns the specs evaluated under the given economic model, in
// Table V order (five per model, as in the paper's figures).
func ForModel(m economy.Model) []Spec {
	var out []Spec
	for _, s := range Specs() {
		for _, sm := range s.Models {
			if sm == m {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// RunConfig parameterizes one simulation run.
type RunConfig struct {
	// Nodes is the machine size (the paper's SDSC SP2 has 128).
	Nodes int
	// Model is the economic model.
	Model economy.Model
	// BasePrice is PBase (default $1/s).
	BasePrice float64
	// NodeRatings optionally gives each node a speed multiplier (see
	// Context.NodeRatings). Empty means homogeneous.
	NodeRatings []float64
	// Prices optionally varies the commodity base price over time (see
	// Context.Prices). Nil means flat.
	Prices economy.PriceSchedule
	// Faults optionally injects a deterministic node failure/repair process
	// (see internal/faults). Nil or disabled means the paper's original
	// never-failing machine. The policy must implement FaultInjectable.
	Faults *faults.Config
}

// DefaultRunConfig returns the paper's machine and pricing defaults for the
// given model.
func DefaultRunConfig(m economy.Model) RunConfig {
	return RunConfig{Nodes: 128, Model: m, BasePrice: economy.DefaultBasePrice}
}

// validate checks the machine and pricing parameters.
func (cfg RunConfig) validate() error {
	if cfg.Nodes <= 0 {
		return fmt.Errorf("scheduler: non-positive node count %d", cfg.Nodes)
	}
	if cfg.BasePrice <= 0 {
		return fmt.Errorf("scheduler: non-positive base price %v", cfg.BasePrice)
	}
	if len(cfg.NodeRatings) != 0 && len(cfg.NodeRatings) != cfg.Nodes {
		return fmt.Errorf("scheduler: %d node ratings for %d nodes", len(cfg.NodeRatings), cfg.Nodes)
	}
	return nil
}

// Run simulates the full workload under the policy built by factory and
// returns the objective report. Jobs must be sorted by submission time and
// carry QoS parameters. It is the batch entry point over the step-driven
// Session: every job is validated up front (nothing is simulated on invalid
// input), then submitted in order and the session finalized — which
// dispatches the identical event sequence as scheduling every arrival up
// front (see Session).
func Run(jobs []*workload.Job, factory Factory, cfg RunConfig) (metrics.Report, error) {
	if err := cfg.validate(); err != nil {
		return metrics.Report{}, err
	}
	prev := -1.0
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return metrics.Report{}, err
		}
		if !j.HasQoS() {
			return metrics.Report{}, fmt.Errorf("scheduler: job %d has no QoS parameters", j.ID)
		}
		if j.Submit < prev {
			return metrics.Report{}, fmt.Errorf("scheduler: job %d out of submission order", j.ID)
		}
		prev = j.Submit
		if j.Procs > cfg.Nodes {
			return metrics.Report{}, fmt.Errorf("scheduler: job %d wider (%d) than the machine (%d)", j.ID, j.Procs, cfg.Nodes)
		}
	}
	s, err := NewSession(factory, cfg)
	if err != nil {
		return metrics.Report{}, err
	}
	for _, j := range jobs {
		if _, err := s.submit(j); err != nil {
			return metrics.Report{}, err
		}
	}
	return s.Finalize(), nil
}
