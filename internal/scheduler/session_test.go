package scheduler

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/qos"
	"repro/internal/workload"
)

// sessionWorkload builds a small synthesized QoS workload shared by the
// session tests.
func sessionWorkload(t *testing.T, jobs int, seed int64) []*workload.Job {
	t.Helper()
	synth := workload.DefaultSynthConfig()
	synth.Jobs = jobs
	trace, err := workload.Generate(synth, seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := qos.Synthesize(trace, qos.DefaultConfig(seed+1)); err != nil {
		t.Fatal(err)
	}
	return trace
}

// The determinism bridge at the driver level: stepping a session one
// submission at a time — with mid-run Snapshot probes — must produce a
// report byte-identical to the batch Run of the same job stream, for every
// Table V policy under every model it is evaluated under, with and without
// fault injection.
func TestSessionMatchesBatchRun(t *testing.T) {
	for _, intensity := range []faults.Intensity{faults.None, faults.High} {
		jobs := sessionWorkload(t, 150, 11)
		horizon := faults.JobsHorizon(jobs)
		for _, spec := range Specs() {
			for _, m := range spec.Models {
				cfg := RunConfig{Nodes: 128, Model: m, BasePrice: economy.DefaultBasePrice}
				if intensity.Enabled() {
					f := intensity.Config(7, horizon)
					cfg.Faults = &f
				}
				batch, err := Run(workload.CloneAll(jobs), spec.New, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: batch: %v", spec.Name, m, intensity, err)
				}
				s, err := NewSession(spec.New, cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s: session: %v", spec.Name, m, intensity, err)
				}
				for i, j := range workload.CloneAll(jobs) {
					if _, err := s.Submit(j); err != nil {
						t.Fatalf("%s/%s/%s: submit %d: %v", spec.Name, m, intensity, i, err)
					}
					if i%37 == 0 {
						s.Snapshot() // probing mid-run must not perturb the simulation
					}
				}
				stepped := s.Finalize()
				bb, err := json.Marshal(batch)
				if err != nil {
					t.Fatal(err)
				}
				sb, err := json.Marshal(stepped)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(bb, sb) {
					t.Errorf("%s/%s/faults=%s: stepped session diverged from batch run:\nbatch:   %s\nstepped: %s",
						spec.Name, m, intensity, bb, sb)
				}
				if !s.Finalized() {
					t.Errorf("%s: session not finalized after Finalize", spec.Name)
				}
				if again := s.Finalize(); again != stepped {
					t.Errorf("%s: Finalize not idempotent", spec.Name)
				}
			}
		}
	}
}

// Immediate-decision policies settle at submission; generous admission
// control leaves the decision pending.
func TestSessionDecisions(t *testing.T) {
	job := func(id int, submit, runtime, deadline, budget float64) *workload.Job {
		return &workload.Job{ID: id, Submit: submit, Runtime: runtime, Estimate: runtime,
			Procs: 1, Deadline: deadline, Budget: budget, PenaltyRate: 0.01}
	}
	cfg := RunConfig{Nodes: 4, Model: economy.Commodity, BasePrice: 1}

	t.Run("libra-accepts-and-rejects-at-submission", func(t *testing.T) {
		s, err := NewSession(NewLibra, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d, err := s.Submit(job(1, 0, 100, 200, 1000))
		if err != nil {
			t.Fatal(err)
		}
		if d.Admission != AdmissionAccepted {
			t.Fatalf("feasible job: admission %v, want accepted", d.Admission)
		}
		wantQuote := economy.LibraCharge(100, 200, economy.DefaultGamma, economy.DefaultDelta)
		if d.Quote != wantQuote {
			t.Fatalf("quote %v, want the recorded Libra charge %v", d.Quote, wantQuote)
		}
		// Over-budget: quoted charge exceeds the budget, rejected.
		d, err = s.Submit(job(2, 10, 100, 200, 1))
		if err != nil {
			t.Fatal(err)
		}
		if d.Admission != AdmissionRejected {
			t.Fatalf("over-budget job: admission %v, want rejected", d.Admission)
		}
		if d.Quote <= 1 {
			t.Fatalf("rejected job's quote %v should exceed its budget 1", d.Quote)
		}
	})

	t.Run("backfill-defers-the-decision", func(t *testing.T) {
		s, err := NewSession(NewFCFSBF, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Fill the machine so the second submission has to queue.
		if d, _ := s.Submit(&workload.Job{ID: 1, Submit: 0, Runtime: 100, Estimate: 100,
			Procs: 4, Deadline: 500, Budget: 1000}); d.Admission != AdmissionAccepted {
			t.Fatalf("first job should start immediately, got %v", d.Admission)
		}
		d, err := s.Submit(job(2, 1, 50, 400, 1000))
		if err != nil {
			t.Fatal(err)
		}
		if d.Admission != AdmissionPending {
			t.Fatalf("queued job: admission %v, want queued", d.Admission)
		}
		if d.Quote != economy.BaseCharge(50, 1) {
			t.Fatalf("quote %v, want base charge %v", d.Quote, economy.BaseCharge(50, 1))
		}
		rep := s.Finalize()
		if rep.Submitted != 2 || rep.Accepted != 2 {
			t.Fatalf("final report: %+v", rep)
		}
	})

	t.Run("bid-model-quotes-the-bid", func(t *testing.T) {
		s, err := NewSession(NewFirstReward, RunConfig{Nodes: 4, Model: economy.BidBased, BasePrice: 1})
		if err != nil {
			t.Fatal(err)
		}
		d, err := s.Submit(job(1, 0, 100, 400, 123.5))
		if err != nil {
			t.Fatal(err)
		}
		if d.Quote != 123.5 {
			t.Fatalf("bid-based quote %v, want the bid 123.5", d.Quote)
		}
	})
}

func TestSessionSubmitValidation(t *testing.T) {
	cfg := RunConfig{Nodes: 4, Model: economy.Commodity, BasePrice: 1}
	s, err := NewSession(NewLibra, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ok := &workload.Job{ID: 1, Submit: 100, Runtime: 10, Estimate: 10, Procs: 1, Deadline: 50, Budget: 100}
	if _, err := s.Submit(ok); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		job  *workload.Job
	}{
		{"no QoS", &workload.Job{ID: 2, Submit: 100, Runtime: 10, Estimate: 10, Procs: 1}},
		{"out of order", &workload.Job{ID: 3, Submit: 50, Runtime: 10, Estimate: 10, Procs: 1, Deadline: 50, Budget: 100}},
		{"too wide", &workload.Job{ID: 4, Submit: 100, Runtime: 10, Estimate: 10, Procs: 5, Deadline: 50, Budget: 100}},
		{"invalid shape", &workload.Job{ID: 5, Submit: 100, Runtime: 0, Estimate: 10, Procs: 1, Deadline: 50, Budget: 100}},
	}
	for _, c := range cases {
		if _, err := s.Submit(c.job); err == nil {
			t.Errorf("%s: submission accepted, want error", c.name)
		}
	}
	s.Finalize()
	if _, err := s.Submit(ok); err == nil {
		t.Error("submission after Finalize accepted, want error")
	}
	if _, err := NewSession(NewLibra, RunConfig{Nodes: 0, Model: economy.Commodity, BasePrice: 1}); err == nil {
		t.Error("NewSession with zero nodes succeeded")
	}
	f := faults.Intensity(faults.High).Config(1, 1000)
	if _, err := NewSession(NewFCFSBF, RunConfig{Nodes: 0, Model: economy.Commodity, BasePrice: 1, Faults: &f}); err == nil {
		t.Error("NewSession with invalid config and faults succeeded")
	}
}
