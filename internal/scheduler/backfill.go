package scheduler

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/economy"
	"repro/internal/workload"
)

// backfillPolicy implements EASY backfilling (Lifka; Mu'alem & Feitelson)
// over a space-shared cluster with the paper's "generous" admission
// control: jobs wait unexamined in a priority queue and are accepted only
// prior to execution; a job is rejected once its runtime estimate can no
// longer fit before its deadline (which covers deadlines that lapse while
// queued), and — under the commodity market model — when its quoted cost
// exceeds its budget.
type backfillPolicy struct {
	ctx     *Context
	cluster *cluster.SpaceShared
	queue   []*workload.Job
	name    string
	// less orders the queue by the policy's primary scheduling parameter.
	less func(a, b *workload.Job) bool
}

// NewFCFSBF returns First Come First Serve with EASY backfilling.
func NewFCFSBF(ctx *Context) Policy {
	return newBackfill(ctx, "FCFS-BF", func(a, b *workload.Job) bool {
		if a.Submit != b.Submit {
			return a.Submit < b.Submit
		}
		return a.ID < b.ID
	})
}

// NewSJFBF returns Shortest Job First with EASY backfilling (job length is
// the user estimate — the scheduler never sees actual runtimes).
func NewSJFBF(ctx *Context) Policy {
	return newBackfill(ctx, "SJF-BF", func(a, b *workload.Job) bool {
		if a.Estimate != b.Estimate {
			return a.Estimate < b.Estimate
		}
		return a.ID < b.ID
	})
}

// NewEDFBF returns Earliest Deadline First with EASY backfilling.
func NewEDFBF(ctx *Context) Policy {
	return newBackfill(ctx, "EDF-BF", func(a, b *workload.Job) bool {
		if a.AbsDeadline() != b.AbsDeadline() {
			return a.AbsDeadline() < b.AbsDeadline()
		}
		return a.ID < b.ID
	})
}

func newBackfill(ctx *Context, name string, less func(a, b *workload.Job) bool) Policy {
	return &backfillPolicy{
		ctx:     ctx,
		cluster: newSpaceCluster(ctx),
		name:    name,
		less:    less,
	}
}

func (b *backfillPolicy) Name() string { return b.name }

// Utilization reports the machine's processor utilization so far.
func (b *backfillPolicy) Utilization() float64 { return b.cluster.Utilization() }

// EarliestAvailable implements AvailabilityEstimator over the space-shared
// machine's running set.
func (b *backfillPolicy) EarliestAvailable(procs int) (float64, error) {
	return spaceEarliest(b.cluster, procs)
}

func (b *backfillPolicy) Submit(j *workload.Job) {
	b.queue = append(b.queue, j)
	b.schedule()
}

func (b *backfillPolicy) Drain() {
	// The scheduling loop runs at every completion, and an empty machine
	// fits any job, so a job still queued when the event queue empties has
	// already failed admission — or, under fault injection, is a requeued
	// failure victim the shrunken machine could never restart.
	now := float64(b.ctx.Engine.Now())
	for _, j := range b.queue {
		writeOff(b.ctx.Collector, j, now)
	}
	b.queue = nil
}

// NodeDown fails a node: its resident job (if any) is requeued for a full
// restart and faces admission again — if its estimate no longer fits before
// its deadline, the purge writes it off as killed.
func (b *backfillPolicy) NodeDown(node int) {
	if victim := b.cluster.Fail(node); victim != nil {
		b.queue = append(b.queue, victim)
	}
	b.schedule()
}

// NodeUp repairs a node; the restored capacity may start queued jobs.
func (b *backfillPolicy) NodeUp(node int) {
	b.cluster.Repair(node)
	b.schedule()
}

// admissible applies the generous admission control at time now.
func (b *backfillPolicy) admissible(j *workload.Job, now float64) bool {
	if now+j.Estimate > j.AbsDeadline() {
		return false
	}
	if b.ctx.Model == economy.Commodity &&
		economy.BaseCharge(j.Estimate, b.ctx.PriceAt(now)) > j.Budget {
		return false
	}
	return true
}

// start accepts and begins executing a queued job.
func (b *backfillPolicy) start(j *workload.Job) {
	now := float64(b.ctx.Engine.Now())
	b.ctx.Collector.Accepted(j)
	b.ctx.Collector.Started(j, now)
	if err := b.cluster.Start(j, b.onFinish); err != nil {
		panic(err) // callers verified CanStart
	}
}

func (b *backfillPolicy) onFinish(j *workload.Job) {
	now := float64(b.ctx.Engine.Now())
	var utility float64
	switch b.ctx.Model {
	case economy.Commodity:
		// Charged at the price in effect when the job was accepted (its
		// start instant under the generous admission control).
		utility = economy.BaseCharge(j.Estimate, b.ctx.PriceAt(b.ctx.Collector.Outcome(j).StartTime))
	case economy.BidBased:
		utility = economy.BidUtility(j, now)
	}
	b.ctx.Collector.Finished(j, now, utility)
	b.schedule()
}

// schedule runs one EASY pass: purge inadmissible jobs, start the highest
// priority job while it fits, then backfill lower-priority jobs that fit
// now and finish (per estimate) before the head job's reservation.
func (b *backfillPolicy) schedule() {
	now := float64(b.ctx.Engine.Now())
	b.purge(now)
	sort.SliceStable(b.queue, func(i, k int) bool { return b.less(b.queue[i], b.queue[k]) })
	for len(b.queue) > 0 && b.cluster.CanStart(b.queue[0].Procs) {
		b.start(b.queue[0])
		b.queue = b.queue[1:]
		b.purge(now)
	}
	if len(b.queue) <= 1 {
		return
	}
	head := b.queue[0]
	resTime, err := b.cluster.EarliestAvailable(head.Procs)
	if err != nil {
		panic(err) // width was validated against the machine at Run
	}
	kept := b.queue[:1]
	for _, j := range b.queue[1:] {
		if b.cluster.CanStart(j.Procs) && float64(b.ctx.Engine.Now())+j.Estimate <= float64(resTime) {
			b.start(j)
			continue
		}
		kept = append(kept, j)
	}
	b.queue = kept
}

// purge writes off every queued job that can no longer pass admission:
// plain rejection for jobs never accepted, a kill for requeued failure
// victims whose restart window has closed.
func (b *backfillPolicy) purge(now float64) {
	kept := b.queue[:0]
	for _, j := range b.queue {
		if b.admissible(j, now) {
			kept = append(kept, j)
			continue
		}
		writeOff(b.ctx.Collector, j, now)
	}
	b.queue = kept
}
