package scheduler

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/economy"
	"repro/internal/workload"
)

// noAdmission is the baseline the paper dismisses in §5.2: plain EASY
// backfilling with NO admission control — every job is accepted at
// submission and executed eventually, deadlines be damned. The paper notes
// these "policies without job admission control perform much worse,
// especially when deadlines of jobs are short"; the admission-control
// ablation bench quantifies that claim. Under the commodity model a job is
// still charged its quote (capped at its budget, since the provider may
// not charge more); under the bid-based model late jobs accrue the usual
// unbounded penalties.
type noAdmission struct {
	ctx     *Context
	cluster *cluster.SpaceShared
	queue   []*workload.Job
	name    string
	less    func(a, b *workload.Job) bool
}

// NewFCFSNoAC returns First Come First Serve backfilling without admission
// control.
func NewFCFSNoAC(ctx *Context) Policy {
	return &noAdmission{
		ctx:     ctx,
		cluster: newSpaceCluster(ctx),
		name:    "FCFS-BF/noAC",
		less: func(a, b *workload.Job) bool {
			if a.Submit != b.Submit {
				return a.Submit < b.Submit
			}
			return a.ID < b.ID
		},
	}
}

// NewEDFNoAC returns Earliest Deadline First backfilling without admission
// control.
func NewEDFNoAC(ctx *Context) Policy {
	return &noAdmission{
		ctx:     ctx,
		cluster: newSpaceCluster(ctx),
		name:    "EDF-BF/noAC",
		less: func(a, b *workload.Job) bool {
			if a.AbsDeadline() != b.AbsDeadline() {
				return a.AbsDeadline() < b.AbsDeadline()
			}
			return a.ID < b.ID
		},
	}
}

func (n *noAdmission) Name() string { return n.name }

// Utilization reports the machine's processor utilization so far.
func (n *noAdmission) Utilization() float64 { return n.cluster.Utilization() }

// EarliestAvailable implements AvailabilityEstimator over the space-shared
// machine's running set.
func (n *noAdmission) EarliestAvailable(procs int) (float64, error) {
	return spaceEarliest(n.cluster, procs)
}

func (n *noAdmission) Submit(j *workload.Job) {
	// Accepted unconditionally, immediately — the whole point of the
	// baseline.
	n.ctx.Collector.Accepted(j)
	n.queue = append(n.queue, j)
	n.schedule()
}

func (n *noAdmission) Drain() {
	// Without faults every accepted job starts once the machine frees up;
	// under fault injection, jobs wider than the surviving machine can be
	// stranded and are written off here.
	now := float64(n.ctx.Engine.Now())
	for _, j := range n.queue {
		writeOff(n.ctx.Collector, j, now)
	}
	n.queue = nil
}

// NodeDown fails a node and requeues its resident job unconditionally —
// there is no admission control to refuse the restart.
func (n *noAdmission) NodeDown(node int) {
	if victim := n.cluster.Fail(node); victim != nil {
		n.queue = append(n.queue, victim)
	}
	n.schedule()
}

// NodeUp repairs a node; the restored capacity may start queued jobs.
func (n *noAdmission) NodeUp(node int) {
	n.cluster.Repair(node)
	n.schedule()
}

func (n *noAdmission) schedule() {
	sort.SliceStable(n.queue, func(i, k int) bool { return n.less(n.queue[i], n.queue[k]) })
	for len(n.queue) > 0 && n.cluster.CanStart(n.queue[0].Procs) {
		n.start(n.queue[0])
		n.queue = n.queue[1:]
	}
	if len(n.queue) <= 1 {
		return
	}
	head := n.queue[0]
	resTime, err := n.cluster.EarliestAvailable(head.Procs)
	if err != nil {
		panic(err)
	}
	kept := n.queue[:1]
	for _, j := range n.queue[1:] {
		if n.cluster.CanStart(j.Procs) && float64(n.ctx.Engine.Now())+j.Estimate <= float64(resTime) {
			n.start(j)
			continue
		}
		kept = append(kept, j)
	}
	n.queue = kept
}

func (n *noAdmission) start(j *workload.Job) {
	now := float64(n.ctx.Engine.Now())
	n.ctx.Collector.Started(j, now)
	if err := n.cluster.Start(j, n.onFinish); err != nil {
		panic(err)
	}
}

func (n *noAdmission) onFinish(j *workload.Job) {
	now := float64(n.ctx.Engine.Now())
	var utility float64
	switch n.ctx.Model {
	case economy.Commodity:
		// The provider may only charge up to the budget (§5.1), at the
		// price in effect at submission.
		utility = economy.BaseCharge(j.Estimate, n.ctx.PriceAt(j.Submit))
		if utility > j.Budget {
			utility = j.Budget
		}
	case economy.BidBased:
		utility = economy.BidUtility(j, now)
	}
	n.ctx.Collector.Finished(j, now, utility)
	n.schedule()
}
