package scheduler

import (
	"math"
	"testing"

	"repro/internal/economy"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
)

// allFactories lists every policy in the repository, paper and extension,
// with a model it runs under.
func allFactories() []struct {
	name    string
	factory Factory
	model   economy.Model
} {
	return []struct {
		name    string
		factory Factory
		model   economy.Model
	}{
		{"FCFS-BF", NewFCFSBF, economy.Commodity},
		{"SJF-BF", NewSJFBF, economy.Commodity},
		{"EDF-BF", NewEDFBF, economy.BidBased},
		{"Libra", NewLibra, economy.Commodity},
		{"Libra+$", NewLibraDollar, economy.Commodity},
		{"LibraRiskD", NewLibraRiskD, economy.BidBased},
		{"FirstReward", NewFirstReward, economy.BidBased},
		{"FCFS-BF/noAC", NewFCFSNoAC, economy.BidBased},
		{"EDF-BF/noAC", NewEDFNoAC, economy.Commodity},
		{"FCFS-CONS", NewFCFSConservative, economy.Commodity},
		{"QoPS", NewQoPS, economy.BidBased},
		{"LibraT", NewLibraTerminate, economy.BidBased},
	}
}

// adversarialStream builds job streams the synthetic generator would never
// produce: zero penalty rates, machine-wide jobs, deadlines barely above
// the minimum, estimates from 100× under to 100× over, budgets from cents
// to millions.
func adversarialStream(seed int64, n, nodes int) []*workload.Job {
	rng := stats.NewRand(seed)
	jobs := make([]*workload.Job, 0, n)
	now := 0.0
	for i := 0; i < n; i++ {
		if i > 0 {
			now += rng.Float64() * 200
		}
		runtime := math.Ceil(1 + rng.Float64()*2000)
		var estimate float64
		switch rng.Intn(4) {
		case 0: // massive over-estimate
			estimate = runtime * (1 + rng.Float64()*100)
		case 1: // massive under-estimate
			estimate = math.Max(1, runtime/(1+rng.Float64()*100))
		case 2: // exact
			estimate = runtime
		default: // mild noise
			estimate = math.Max(1, runtime*(0.5+rng.Float64()))
		}
		procs := 1 + rng.Intn(nodes) // up to the whole machine
		deadline := estimate*1.05 + rng.Float64()*10000
		budget := math.Pow(10, -2+rng.Float64()*8) // $0.01 .. $1M
		penalty := 0.0
		if rng.Intn(3) > 0 {
			penalty = rng.Float64() * budget / 100
		}
		jobs = append(jobs, &workload.Job{
			ID: i + 1, Submit: math.Floor(now), Runtime: runtime,
			Estimate: math.Ceil(estimate), Procs: procs,
			Deadline: deadline, Budget: budget, PenaltyRate: penalty,
			HighUrgency: rng.Intn(2) == 0,
		})
	}
	return jobs
}

// Every policy must settle every job of an adversarial stream without
// panicking, with consistent accounting, for several seeds.
func TestPoliciesSurviveAdversarialStreams(t *testing.T) {
	for _, seed := range []int64{3, 5, 8} {
		jobs := adversarialStream(seed, 200, 8)
		for _, tc := range allFactories() {
			tc := tc
			var col *metrics.Collector
			factory := func(ctx *Context) Policy {
				col = ctx.Collector
				return tc.factory(ctx)
			}
			rep, err := Run(workload.CloneAll(jobs), factory, RunConfig{Nodes: 8, Model: tc.model, BasePrice: 1})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, tc.name, err)
			}
			if rep.Submitted != 200 {
				t.Fatalf("seed %d %s: submitted %d", seed, tc.name, rep.Submitted)
			}
			settled := 0
			for _, o := range col.Outcomes() {
				if o.Accepted || o.Rejected {
					settled++
				}
				if o.Accepted && !o.Finished {
					t.Fatalf("seed %d %s: job %d accepted but unfinished", seed, tc.name, o.Job.ID)
				}
				if o.Finished && o.FinishTime < o.Job.Submit {
					t.Fatalf("seed %d %s: job %d finished before submission", seed, tc.name, o.Job.ID)
				}
			}
			if settled != 200 {
				t.Fatalf("seed %d %s: only %d jobs settled", seed, tc.name, settled)
			}
			if rep.Utilization < 0 || rep.Utilization > 1+1e-9 {
				t.Fatalf("seed %d %s: utilization %v", seed, tc.name, rep.Utilization)
			}
			if math.IsNaN(rep.Wait) || math.IsNaN(rep.Profitability) {
				t.Fatalf("seed %d %s: NaN in report %+v", seed, tc.name, rep)
			}
		}
	}
}

// The same streams on a heterogeneous machine (Libra family honors
// ratings; others ignore them) must also settle cleanly.
func TestPoliciesSurviveAdversarialStreamsRated(t *testing.T) {
	ratings := []float64{2, 1.5, 1, 1, 1, 0.75, 0.5, 0.25}
	jobs := adversarialStream(13, 150, 8)
	for _, tc := range allFactories() {
		rep, err := Run(workload.CloneAll(jobs), tc.factory,
			RunConfig{Nodes: 8, Model: tc.model, BasePrice: 1, NodeRatings: ratings})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rep.Submitted != 150 {
			t.Fatalf("%s: submitted %d", tc.name, rep.Submitted)
		}
	}
}
