package scheduler

import (
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/economy"
	"repro/internal/workload"
)

// qops implements a simplified QoPS (Islam et al., the paper's reference
// [13]): admission control with a schedulability guarantee. A new job is
// accepted at submission only if a complete schedule exists — against the
// believed completions of running jobs — in which *every* accepted job,
// including the newcomer, still meets its deadline per its estimate.
// Accepted jobs then execute in earliest-deadline order with conservative
// reservations. With exact estimates the guarantee is absolute (Set A
// reliability 100%); inaccurate estimates erode it like every other
// admission control in the paper.
type qops struct {
	ctx     *Context
	cluster *cluster.SpaceShared
	queue   []*workload.Job
}

// NewQoPS returns the QoPS extension policy.
func NewQoPS(ctx *Context) Policy {
	return &qops{ctx: ctx, cluster: newSpaceCluster(ctx)}
}

func (q *qops) Name() string { return "QoPS" }

// Utilization reports the machine's processor utilization so far.
func (q *qops) Utilization() float64 { return q.cluster.Utilization() }

// EarliestAvailable implements AvailabilityEstimator over the space-shared
// machine's running set.
func (q *qops) EarliestAvailable(procs int) (float64, error) {
	return spaceEarliest(q.cluster, procs)
}

func (q *qops) Submit(j *workload.Job) {
	if q.ctx.Model == economy.Commodity &&
		economy.BaseCharge(j.Estimate, q.ctx.PriceAt(float64(q.ctx.Engine.Now()))) > j.Budget {
		q.ctx.Collector.Rejected(j)
		return
	}
	if !q.feasible(j) {
		q.ctx.Collector.Rejected(j)
		return
	}
	q.ctx.Collector.Accepted(j)
	q.queue = append(q.queue, j)
	q.schedule()
}

func (q *qops) Drain() {
	// Without faults accepted jobs always start once the machine empties;
	// under fault injection, jobs wider than the surviving machine can be
	// stranded and are written off here.
	now := float64(q.ctx.Engine.Now())
	for _, j := range q.queue {
		writeOff(q.ctx.Collector, j, now)
	}
	q.queue = nil
}

// NodeDown fails a node: its resident job is requeued for a restart in EDF
// order. The schedulability guarantee does not survive failures — the
// victim may now miss its deadline — but acceptance is already recorded, so
// the job runs on and the miss counts against reliability.
func (q *qops) NodeDown(node int) {
	if victim := q.cluster.Fail(node); victim != nil {
		q.queue = append(q.queue, victim)
	}
	q.schedule()
}

// NodeUp repairs a node; the restored capacity may start queued jobs.
func (q *qops) NodeUp(node int) {
	q.cluster.Repair(node)
	q.schedule()
}

// edfSort orders jobs by absolute deadline, then ID.
func edfSort(jobs []*workload.Job) {
	sort.SliceStable(jobs, func(i, k int) bool {
		if jobs[i].AbsDeadline() != jobs[k].AbsDeadline() {
			return jobs[i].AbsDeadline() < jobs[k].AbsDeadline()
		}
		return jobs[i].ID < jobs[k].ID
	})
}

// plan builds the EDF schedule of the given queued jobs over the current
// availability profile and reports whether every job's projected
// completion (per estimate) meets its deadline.
func (q *qops) plan(jobs []*workload.Job) bool {
	now := float64(q.ctx.Engine.Now())
	prof := newProfile(now, q.cluster.Nodes(), q.cluster.FreeProcs())
	for _, sj := range q.cluster.Running() {
		end := math.Max(float64(sj.EstEnd), now)
		prof.addRelease(end, sj.Job.Procs)
	}
	for _, j := range jobs {
		t := prof.earliest(now, j.Estimate, j.Procs)
		if t+j.Estimate > j.AbsDeadline() {
			return false
		}
		if err := prof.reserve(t, j.Estimate, j.Procs); err != nil {
			return false
		}
	}
	return true
}

// feasible checks whether candidate can join the accepted set without
// breaking anyone's guarantee.
func (q *qops) feasible(candidate *workload.Job) bool {
	jobs := make([]*workload.Job, 0, len(q.queue)+1)
	jobs = append(jobs, q.queue...)
	jobs = append(jobs, candidate)
	edfSort(jobs)
	return q.plan(jobs)
}

// schedule starts every queued job whose planned slot is "now", in EDF
// order with conservative reservations for the rest.
func (q *qops) schedule() {
	edfSort(q.queue)
	now := float64(q.ctx.Engine.Now())
	prof := newProfile(now, q.cluster.Nodes(), q.cluster.FreeProcs())
	for _, sj := range q.cluster.Running() {
		end := math.Max(float64(sj.EstEnd), now)
		prof.addRelease(end, sj.Job.Procs)
	}
	kept := q.queue[:0]
	for _, j := range q.queue {
		t := prof.earliest(now, j.Estimate, j.Procs)
		if t <= now && q.cluster.CanStart(j.Procs) {
			q.start(j)
			if err := prof.reserve(now, j.Estimate, j.Procs); err != nil {
				panic(err)
			}
			continue
		}
		if err := prof.reserve(t, j.Estimate, j.Procs); err != nil {
			panic(err)
		}
		kept = append(kept, j)
	}
	q.queue = kept
}

func (q *qops) start(j *workload.Job) {
	now := float64(q.ctx.Engine.Now())
	q.ctx.Collector.Started(j, now)
	if err := q.cluster.Start(j, q.onFinish); err != nil {
		panic(err)
	}
}

func (q *qops) onFinish(j *workload.Job) {
	now := float64(q.ctx.Engine.Now())
	var utility float64
	switch q.ctx.Model {
	case economy.Commodity:
		// Charged at the price in effect at acceptance (submission).
		utility = economy.BaseCharge(j.Estimate, q.ctx.PriceAt(j.Submit))
	case economy.BidBased:
		utility = economy.BidUtility(j, now)
	}
	q.ctx.Collector.Finished(j, now, utility)
	q.schedule()
}
