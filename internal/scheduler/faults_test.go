package scheduler

import (
	"testing"

	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// highFaults builds an enabled high-intensity fault config scaled to the
// given workload.
func highFaults(jobs []*workload.Job, seed int64) *faults.Config {
	cfg := faults.High.Config(seed, faults.JobsHorizon(jobs))
	return &cfg
}

// Property: under fault injection, every policy still settles every job —
// each submitted job ends exactly one of rejected, fulfilled-or-late
// finished, killed, or abandoned, and the counts add up. Randomized over
// workload and fault seeds.
func TestEveryPolicySettlesEveryJobUnderFaults(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, spec := range Specs() {
			for _, model := range spec.Models {
				seed, spec, model := seed, spec, model
				t.Run(spec.Name+"/"+model.String(), func(t *testing.T) {
					jobs := synthWorkload(t, 200, 100, seed)
					cfg := RunConfig{Nodes: 16, Model: model, BasePrice: 1, Faults: highFaults(jobs, seed)}
					var col *metrics.Collector
					factory := func(ctx *Context) Policy {
						col = ctx.Collector
						return spec.New(ctx)
					}
					rep, err := Run(jobs, factory, cfg)
					if err != nil {
						t.Fatal(err)
					}
					finished, killed, abandoned, rejected := 0, 0, 0, 0
					for _, o := range col.Outcomes() {
						switch {
						case o.Rejected:
							rejected++
							if o.Started || o.Finished || o.Killed {
								t.Fatalf("job %d rejected but ran: %+v", o.Job.ID, *o)
							}
						case !o.Accepted:
							t.Fatalf("job %d neither accepted nor rejected", o.Job.ID)
						case o.Killed && o.Finished: // started, then killed
							killed++
							if !o.Started {
								t.Fatalf("job %d finished+killed without starting", o.Job.ID)
							}
						case o.Killed: // abandoned in the queue
							abandoned++
							if o.Started {
								t.Fatalf("job %d abandoned after starting", o.Job.ID)
							}
						case o.Finished:
							finished++
							if !o.Started {
								t.Fatalf("job %d finished without starting", o.Job.ID)
							}
						default:
							t.Fatalf("job %d accepted but never settled: %+v", o.Job.ID, *o)
						}
						if o.SLAFulfilled() && o.Killed {
							t.Fatalf("killed job %d fulfils SLA", o.Job.ID)
						}
					}
					if finished+killed+abandoned+rejected != rep.Submitted {
						t.Fatalf("conservation: %d finished + %d killed + %d abandoned + %d rejected != %d submitted",
							finished, killed, abandoned, rejected, rep.Submitted)
					}
					if rep.Killed != killed+abandoned {
						t.Fatalf("Report.Killed = %d, recomputed %d", rep.Killed, killed+abandoned)
					}
					if rep.Accepted != finished+killed+abandoned {
						t.Fatalf("Report.Accepted = %d, recomputed %d", rep.Accepted, finished+killed+abandoned)
					}
					if rep.Reliability < 0 || rep.Reliability > 100 {
						t.Fatalf("reliability out of range: %v", rep.Reliability)
					}
				})
			}
		}
	}
}

// The point of the axis: with faults the cluster kills work, so reliability
// finally drops below the fault-free ceiling and discriminates policies.
func TestFaultsDegradeReliability(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Factory
		m    economy.Model
	}{
		{"FCFS-BF", NewFCFSBF, economy.Commodity},
		{"Libra", NewLibra, economy.Commodity},
	} {
		jobs := synthWorkload(t, 300, 0, 41) // Set A: accurate estimates
		clean := runPolicy(t, workload.CloneAll(jobs), tc.f, RunConfig{Nodes: 16, Model: tc.m, BasePrice: 1})
		faulty := runPolicy(t, workload.CloneAll(jobs), tc.f,
			RunConfig{Nodes: 16, Model: tc.m, BasePrice: 1, Faults: highFaults(jobs, 41)})
		if clean.Reliability != 100 {
			t.Errorf("%s: fault-free Set A reliability = %v, want 100", tc.name, clean.Reliability)
		}
		if clean.Killed != 0 {
			t.Errorf("%s: fault-free run killed %d jobs", tc.name, clean.Killed)
		}
		if faulty.Killed == 0 {
			t.Errorf("%s: high-intensity faults killed nothing", tc.name)
		}
		if faulty.Reliability >= clean.Reliability {
			t.Errorf("%s: faulty reliability %v not below clean %v", tc.name, faulty.Reliability, clean.Reliability)
		}
	}
}

// Determinism regression: the same workload, policy, and fault seed must
// produce byte-identical reports run to run.
func TestRunDeterminismWithFaults(t *testing.T) {
	for _, spec := range Specs() {
		model := spec.Models[0]
		run := func() metrics.Report {
			jobs := synthWorkload(t, 200, 100, 43)
			return runPolicy(t, jobs, spec.New,
				RunConfig{Nodes: 16, Model: model, BasePrice: 1, Faults: highFaults(jobs, 43)})
		}
		a, b := run(), run()
		if a != b {
			t.Errorf("%s: reports differ across identical faulty runs:\n%+v\n%+v", spec.Name, a, b)
		}
	}
}

// The extension policies outside Table V absorb faults too, with the same
// settlement guarantee — including the no-admission baselines, where jobs
// wider than the surviving machine are stranded until drain.
func TestExtensionPoliciesSettleUnderFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Factory
		m    economy.Model
		// wantKill asserts some victim stayed dead; QoPS restarts every
		// victim its strict admission let in, so it may legitimately kill
		// nothing.
		wantKill bool
	}{
		{"FCFS-BF/noAC", NewFCFSNoAC, economy.Commodity, true},
		{"EDF-BF/noAC", NewEDFNoAC, economy.BidBased, true},
		{"QoPS", NewQoPS, economy.Commodity, false},
		{"FCFS-CONS", NewFCFSConservative, economy.Commodity, true},
		{"LibraT", NewLibraTerminate, economy.Commodity, true},
		{"FirstReward/bounded", NewFirstRewardBounded, economy.BidBased, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			jobs := synthWorkload(t, 200, 100, 53)
			cfg := RunConfig{Nodes: 16, Model: tc.m, BasePrice: 1, Faults: highFaults(jobs, 53)}
			var col *metrics.Collector
			factory := func(ctx *Context) Policy {
				col = ctx.Collector
				return tc.f(ctx)
			}
			rep, err := Run(jobs, factory, cfg)
			if err != nil {
				t.Fatal(err)
			}
			settled := 0
			for _, o := range col.Outcomes() {
				if o.Rejected || o.Finished || o.Killed {
					settled++
				} else if o.Accepted {
					t.Fatalf("job %d accepted but never settled: %+v", o.Job.ID, *o)
				}
			}
			if settled != rep.Submitted {
				t.Fatalf("%d settled of %d submitted", settled, rep.Submitted)
			}
			if tc.wantKill && rep.Killed == 0 {
				t.Error("high-intensity faults killed nothing")
			}
		})
	}
}

// faultBlindPolicy deliberately lacks NodeDown/NodeUp.
type faultBlindPolicy struct{ ctx *Context }

func (p *faultBlindPolicy) Name() string           { return "blind" }
func (p *faultBlindPolicy) Submit(j *workload.Job) { p.ctx.Collector.Rejected(j) }
func (p *faultBlindPolicy) Drain()                 {}

func TestRunFaultsValidation(t *testing.T) {
	jobs := synthWorkload(t, 5, 0, 47)
	bad := faults.High.Config(1, 1000)
	bad.MTTR = -1
	if _, err := Run(jobs, NewFCFSBF, RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1, Faults: &bad}); err == nil {
		t.Error("invalid fault config accepted")
	}
	good := faults.High.Config(1, 1000)
	blind := func(ctx *Context) Policy { return &faultBlindPolicy{ctx: ctx} }
	if _, err := Run(jobs, blind, RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1, Faults: &good}); err == nil {
		t.Error("fault-blind policy accepted under fault injection")
	}
	// A disabled config is fine for any policy.
	var off faults.Config
	if _, err := Run(jobs, blind, RunConfig{Nodes: 16, Model: economy.Commodity, BasePrice: 1, Faults: &off}); err != nil {
		t.Errorf("disabled fault config refused: %v", err)
	}
}
