package scheduler

import (
	"testing"

	"repro/internal/economy"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// qjob builds a QoS-complete job for white-box policy tests.
func qjob(id, procs int, submit, runtime, estimate, deadline, budget, penalty float64) *workload.Job {
	return &workload.Job{
		ID: id, Submit: submit, Runtime: runtime, Estimate: estimate, Procs: procs,
		Deadline: deadline, Budget: budget, PenaltyRate: penalty,
	}
}

// runPolicy drives jobs through a factory and returns the collector for
// inspection plus the report.
func runPolicy(t *testing.T, jobs []*workload.Job, factory Factory, cfg RunConfig) metrics.Report {
	t.Helper()
	rep, err := Run(jobs, factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// runCollect is like Run but exposes per-job outcomes.
func runCollect(t *testing.T, jobs []*workload.Job, factory Factory, cfg RunConfig) *metrics.Collector {
	t.Helper()
	var col *metrics.Collector
	wrapped := func(ctx *Context) Policy {
		col = ctx.Collector
		return factory(ctx)
	}
	if _, err := Run(jobs, wrapped, cfg); err != nil {
		t.Fatal(err)
	}
	return col
}

func cfg4(model economy.Model) RunConfig {
	return RunConfig{Nodes: 4, Model: model, BasePrice: 1}
}

func TestFCFSOrdering(t *testing.T) {
	// Three 4-wide jobs: they must run strictly in arrival order.
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 1e6, 1e6, 0),
		qjob(2, 4, 1, 100, 100, 1e6, 1e6, 0),
		qjob(3, 4, 2, 100, 100, 1e6, 1e6, 0),
	}
	col := runCollect(t, jobs, NewFCFSBF, cfg4(economy.Commodity))
	var starts []float64
	for _, o := range col.Outcomes() {
		starts = append(starts, o.StartTime)
	}
	if !(starts[0] == 0 && starts[1] == 100 && starts[2] == 200) {
		t.Errorf("FCFS starts = %v, want [0 100 200]", starts)
	}
}

func TestSJFPicksShortestEstimate(t *testing.T) {
	// Job 1 occupies the machine; jobs 2 (long) and 3 (short) queue.
	// SJF must run job 3 before job 2 despite arrival order.
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 1e6, 1e6, 0),
		qjob(2, 4, 1, 300, 300, 1e6, 1e6, 0),
		qjob(3, 4, 2, 50, 50, 1e6, 1e6, 0),
	}
	col := runCollect(t, jobs, NewSJFBF, cfg4(economy.Commodity))
	o2 := col.Outcomes()[1]
	o3 := col.Outcomes()[2]
	if !(o3.StartTime == 100 && o2.StartTime == 150) {
		t.Errorf("SJF starts: job2 %v job3 %v, want 150 and 100", o2.StartTime, o3.StartTime)
	}
}

func TestEDFPicksEarliestDeadline(t *testing.T) {
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 1e6, 1e6, 0),
		qjob(2, 4, 1, 100, 100, 1e6, 1e6, 0), // deadline far
		qjob(3, 4, 2, 100, 100, 500, 1e6, 0), // deadline 502: earliest
	}
	col := runCollect(t, jobs, NewEDFBF, cfg4(economy.Commodity))
	o2 := col.Outcomes()[1]
	o3 := col.Outcomes()[2]
	if !(o3.StartTime == 100 && o2.StartTime == 200) {
		t.Errorf("EDF starts: job2 %v job3 %v, want 200 and 100", o2.StartTime, o3.StartTime)
	}
}

func TestEASYBackfillRunsNarrowShortJob(t *testing.T) {
	// Machine of 4. Job 1 holds 2 procs until t=100. Job 2 (head) needs 4:
	// reservation at t=100. Job 3 needs 2 procs for 50 s: fits now and
	// finishes by t=52 <= 100, so it backfills. Job 4 needs 2 procs for
	// 200 s: would run past the reservation, so it waits.
	jobs := []*workload.Job{
		qjob(1, 2, 0, 100, 100, 1e6, 1e6, 0),
		qjob(2, 4, 1, 100, 100, 1e6, 1e6, 0),
		qjob(3, 2, 2, 50, 50, 1e6, 1e6, 0),
		qjob(4, 2, 3, 200, 200, 1e6, 1e6, 0),
	}
	col := runCollect(t, jobs, NewFCFSBF, cfg4(economy.Commodity))
	out := col.Outcomes()
	if out[2].StartTime != 2 {
		t.Errorf("backfill job started at %v, want 2 (immediately)", out[2].StartTime)
	}
	if out[1].StartTime != 100 {
		t.Errorf("head job started at %v, want 100 (reservation honoured)", out[1].StartTime)
	}
	if out[3].StartTime < 100 {
		t.Errorf("long narrow job started at %v, must not delay the reservation", out[3].StartTime)
	}
}

func TestBackfillDoesNotDelayReservationOnOverrun(t *testing.T) {
	// Job 1 under-estimates (est 50, actual 150). Head job 2 reserves at
	// t=50 per belief. Job 3 (2 procs, est 60) must NOT backfill at t=2
	// because 2+60 > 50.
	jobs := []*workload.Job{
		qjob(1, 2, 0, 150, 50, 1e6, 1e6, 0),
		qjob(2, 4, 1, 100, 100, 1e6, 1e6, 0),
		qjob(3, 2, 2, 60, 60, 1e6, 1e6, 0),
	}
	col := runCollect(t, jobs, NewFCFSBF, cfg4(economy.Commodity))
	out := col.Outcomes()
	if out[2].StartTime <= 2 {
		t.Errorf("job 3 backfilled at %v despite crossing the reservation", out[2].StartTime)
	}
}

func TestGenerousAdmissionRejectsExpiredDeadline(t *testing.T) {
	// Job 2's deadline window (80) is shorter than its estimate once it has
	// waited behind job 1 (100 s): reject, never start.
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 1e6, 1e6, 0),
		qjob(2, 4, 1, 70, 70, 80, 1e6, 0),
	}
	col := runCollect(t, jobs, NewFCFSBF, cfg4(economy.Commodity))
	o := col.Outcomes()[1]
	if !o.Rejected || o.Started {
		t.Errorf("expired job not rejected: %+v", *o)
	}
	rep := col.Report()
	if rep.Accepted != 1 || rep.SLAFulfilled != 1 {
		t.Errorf("report = %+v, want 1 accepted / 1 fulfilled", rep)
	}
}

func TestGenerousAdmissionAcceptsAtLatestTime(t *testing.T) {
	// Job 2 can still (just) meet its deadline after waiting: accepted.
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 1e6, 1e6, 0),
		qjob(2, 4, 0, 70, 70, 170, 1e6, 0),
	}
	col := runCollect(t, jobs, NewFCFSBF, cfg4(economy.Commodity))
	o := col.Outcomes()[1]
	if !o.Accepted || o.StartTime != 100 {
		t.Errorf("job 2 outcome = %+v, want accepted at t=100", *o)
	}
	if !o.SLAFulfilled() {
		t.Error("job 2 finished at deadline boundary must fulfil SLA")
	}
}

func TestCommodityBudgetRejection(t *testing.T) {
	// Estimate 100 at $1/s quotes $100 > budget 50: reject under the
	// commodity model, accept under bid-based (budget is a bid, not a cap).
	jobs := []*workload.Job{qjob(1, 1, 0, 100, 100, 1e6, 50, 0)}
	col := runCollect(t, jobs, NewFCFSBF, cfg4(economy.Commodity))
	if !col.Outcomes()[0].Rejected {
		t.Error("over-budget job accepted under commodity model")
	}
	col = runCollect(t, workload.CloneAll(jobs), NewFCFSBF, cfg4(economy.BidBased))
	if !col.Outcomes()[0].Accepted {
		t.Error("bid-based model rejected a job on budget")
	}
}

func TestCommodityUtilityChargesEstimate(t *testing.T) {
	// Over-estimated job (est 200, actual 100) is charged on the estimate
	// — the paper's Set B revenue inflation.
	jobs := []*workload.Job{qjob(1, 1, 0, 100, 200, 1e6, 1e6, 0)}
	col := runCollect(t, jobs, NewFCFSBF, cfg4(economy.Commodity))
	if u := col.Outcomes()[0].Utility; u != 200 {
		t.Errorf("utility = %v, want 200 (estimate × PBase)", u)
	}
}

func TestBidUtilityPenaltyApplied(t *testing.T) {
	// Job finishes 100 s past its deadline with penalty rate 2: utility is
	// budget − 200.
	jobs := []*workload.Job{
		qjob(1, 4, 0, 100, 100, 1e6, 1e6, 0),
		// Submitted at 0, starts at 100, runs 100 -> finish 200; deadline
		// 100 after submit. Estimate fits (100 <= 100)... needs est <=
		// window at accept time: window shrinks as it waits, so give
		// deadline 200 and runtime overrun instead.
		qjob(2, 4, 0, 150, 100, 200, 1000, 2),
	}
	col := runCollect(t, jobs, NewFCFSBF, cfg4(economy.BidBased))
	o := col.Outcomes()[1]
	if !o.Accepted {
		t.Fatalf("job 2 rejected: %+v", *o)
	}
	// Starts at 100 (est window 100+100=200 <= 200 OK), finishes at 250,
	// delay = 250 - 0 - 200 = 50, utility = 1000 - 100 = 900.
	if o.FinishTime != 250 {
		t.Fatalf("finish = %v, want 250", o.FinishTime)
	}
	if o.Utility != 900 {
		t.Errorf("utility = %v, want 900", o.Utility)
	}
	if o.SLAFulfilled() {
		t.Error("late job reported as SLA-fulfilled")
	}
}

func TestBackfillerNamesAndDrain(t *testing.T) {
	for _, tc := range []struct {
		f    Factory
		want string
	}{
		{NewFCFSBF, "FCFS-BF"}, {NewSJFBF, "SJF-BF"}, {NewEDFBF, "EDF-BF"},
	} {
		ctx := testContext(economy.Commodity, 4)
		p := tc.f(ctx)
		if p.Name() != tc.want {
			t.Errorf("Name() = %q, want %q", p.Name(), tc.want)
		}
		p.Drain() // must not panic on empty queue
	}
}

func TestVariablePricingChargesPeakRate(t *testing.T) {
	// Two identical jobs, one submitted off-peak (t=0 = midnight), one at
	// noon. A 9–17 peak window at 3× triples the noon job's charge.
	tariff := economy.TimeOfDayPrice{Base: 1, PeakFactor: 3, PeakStartHour: 9, PeakEndHour: 17}
	jobs := []*workload.Job{
		qjob(1, 1, 0, 100, 100, 1e6, 1e6, 0),
		qjob(2, 1, 12*3600, 100, 100, 1e6, 1e6, 0),
	}
	cfg := RunConfig{Nodes: 4, Model: economy.Commodity, BasePrice: 1, Prices: tariff}
	col := runCollect(t, jobs, NewFCFSBF, cfg)
	if u := col.Outcomes()[0].Utility; u != 100 {
		t.Errorf("off-peak charge = %v, want 100", u)
	}
	if u := col.Outcomes()[1].Utility; u != 300 {
		t.Errorf("peak charge = %v, want 300", u)
	}
}

func TestVariablePricingRejectsOverBudgetAtPeak(t *testing.T) {
	tariff := economy.TimeOfDayPrice{Base: 1, PeakFactor: 3, PeakStartHour: 9, PeakEndHour: 17}
	// Budget 150 covers the off-peak quote (100) but not the peak quote
	// (300).
	jobs := []*workload.Job{qjob(1, 1, 12*3600, 100, 100, 1e6, 150, 0)}
	cfg := RunConfig{Nodes: 4, Model: economy.Commodity, BasePrice: 1, Prices: tariff}
	col := runCollect(t, jobs, NewFCFSBF, cfg)
	if !col.Outcomes()[0].Rejected {
		t.Error("over-peak-budget job accepted")
	}
	// Same job off-peak is accepted.
	jobs = []*workload.Job{qjob(1, 1, 0, 100, 100, 1e6, 150, 0)}
	col = runCollect(t, jobs, NewFCFSBF, cfg)
	if !col.Outcomes()[0].Accepted {
		t.Error("off-peak job rejected")
	}
}
