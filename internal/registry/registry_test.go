package registry

import (
	"strings"
	"testing"

	"repro/internal/economy"
	"repro/internal/scheduler"
)

func TestParseModel(t *testing.T) {
	cases := []struct {
		in   string
		want economy.Model
	}{
		{"commodity", economy.Commodity},
		{"bid", economy.BidBased},
		{"bid-based", economy.BidBased},
	}
	for _, c := range cases {
		m, err := ParseModel(c.in)
		if err != nil || m != c.want {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", c.in, m, err, c.want)
		}
	}
	if _, err := ParseModel("auction"); err == nil {
		t.Error("ParseModel accepted an unknown model")
	}
}

func TestParseModels(t *testing.T) {
	both, err := ParseModels("both")
	if err != nil || len(both) != 2 || both[0] != economy.Commodity || both[1] != economy.BidBased {
		t.Errorf("ParseModels(both) = %v, %v", both, err)
	}
	one, err := ParseModels("bid")
	if err != nil || len(one) != 1 || one[0] != economy.BidBased {
		t.Errorf("ParseModels(bid) = %v, %v", one, err)
	}
	if _, err := ParseModels("neither"); err == nil {
		t.Error("ParseModels accepted an unknown selector")
	}
}

func TestParseSets(t *testing.T) {
	cases := []struct {
		in   string
		want []bool
	}{
		{"A", []bool{false}},
		{"b", []bool{true}},
		{"both", []bool{false, true}},
		{"BOTH", []bool{false, true}},
	}
	for _, c := range cases {
		got, err := ParseSets(c.in)
		if err != nil || len(got) != len(c.want) {
			t.Errorf("ParseSets(%q) = %v, %v; want %v", c.in, got, err, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseSets(%q) = %v; want %v", c.in, got, c.want)
			}
		}
	}
	if _, err := ParseSets("C"); err == nil {
		t.Error("ParseSets accepted an unknown set")
	}
}

// PolicySpec enforces Table V membership: every (policy, model) pair in the
// matrix resolves, and every pair outside it is refused.
func TestPolicySpecMatrix(t *testing.T) {
	for _, spec := range scheduler.Specs() {
		for _, m := range []economy.Model{economy.Commodity, economy.BidBased} {
			evaluated := false
			for _, sm := range spec.Models {
				if sm == m {
					evaluated = true
				}
			}
			got, err := PolicySpec(spec.Name, m)
			if evaluated {
				if err != nil {
					t.Errorf("PolicySpec(%s, %s): %v", spec.Name, m, err)
				} else if got.Name != spec.Name {
					t.Errorf("PolicySpec(%s, %s) resolved %s", spec.Name, m, got.Name)
				}
			} else if err == nil {
				t.Errorf("PolicySpec(%s, %s) accepted a pair outside Table V", spec.Name, m)
			}
		}
	}
	if _, err := PolicySpec("NoSuchPolicy", economy.Commodity); err == nil {
		t.Error("PolicySpec accepted an unknown policy")
	}
}

func TestListPolicies(t *testing.T) {
	lines := ListPolicies()
	if len(lines) != len(scheduler.Specs())+1 {
		t.Fatalf("ListPolicies returned %d lines, want %d", len(lines), len(scheduler.Specs())+1)
	}
	if !strings.HasPrefix(lines[0], "Policy") {
		t.Errorf("header line: %q", lines[0])
	}
	for i, spec := range scheduler.Specs() {
		if !strings.HasPrefix(lines[i+1], spec.Name) {
			t.Errorf("line %d %q does not lead with %s", i+1, lines[i+1], spec.Name)
		}
	}
}
