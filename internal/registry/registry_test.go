package registry

import (
	"strings"
	"testing"

	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/scheduler"
)

func TestParseModel(t *testing.T) {
	cases := []struct {
		in   string
		want economy.Model
	}{
		{"commodity", economy.Commodity},
		{"bid", economy.BidBased},
		{"bid-based", economy.BidBased},
	}
	for _, c := range cases {
		m, err := ParseModel(c.in)
		if err != nil || m != c.want {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", c.in, m, err, c.want)
		}
	}
	if _, err := ParseModel("auction"); err == nil {
		t.Error("ParseModel accepted an unknown model")
	}
}

func TestParseModels(t *testing.T) {
	both, err := ParseModels("both")
	if err != nil || len(both) != 2 || both[0] != economy.Commodity || both[1] != economy.BidBased {
		t.Errorf("ParseModels(both) = %v, %v", both, err)
	}
	one, err := ParseModels("bid")
	if err != nil || len(one) != 1 || one[0] != economy.BidBased {
		t.Errorf("ParseModels(bid) = %v, %v", one, err)
	}
	if _, err := ParseModels("neither"); err == nil {
		t.Error("ParseModels accepted an unknown selector")
	}
}

func TestParseSets(t *testing.T) {
	cases := []struct {
		in   string
		want []bool
	}{
		{"A", []bool{false}},
		{"b", []bool{true}},
		{"both", []bool{false, true}},
		{"BOTH", []bool{false, true}},
	}
	for _, c := range cases {
		got, err := ParseSets(c.in)
		if err != nil || len(got) != len(c.want) {
			t.Errorf("ParseSets(%q) = %v, %v; want %v", c.in, got, err, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseSets(%q) = %v; want %v", c.in, got, c.want)
			}
		}
	}
	if _, err := ParseSets("C"); err == nil {
		t.Error("ParseSets accepted an unknown set")
	}
}

// PolicySpec enforces Table V membership: every (policy, model) pair in the
// matrix resolves, and every pair outside it is refused.
func TestPolicySpecMatrix(t *testing.T) {
	for _, spec := range scheduler.Specs() {
		for _, m := range []economy.Model{economy.Commodity, economy.BidBased} {
			evaluated := false
			for _, sm := range spec.Models {
				if sm == m {
					evaluated = true
				}
			}
			got, err := PolicySpec(spec.Name, m)
			if evaluated {
				if err != nil {
					t.Errorf("PolicySpec(%s, %s): %v", spec.Name, m, err)
				} else if got.Name != spec.Name {
					t.Errorf("PolicySpec(%s, %s) resolved %s", spec.Name, m, got.Name)
				}
			} else if err == nil {
				t.Errorf("PolicySpec(%s, %s) accepted a pair outside Table V", spec.Name, m)
			}
		}
	}
	if _, err := PolicySpec("NoSuchPolicy", economy.Commodity); err == nil {
		t.Error("PolicySpec accepted an unknown policy")
	}
}

// Every federation preset must validate, build fresh copies per call, and
// keep FaultIntensity empty so the -faults axis stays in charge; "single"
// must be the degenerate spelling of the default 128-node machine.
func TestParseFederationPresets(t *testing.T) {
	for _, name := range []string{"single", "twin", "hetero4", "datacenter"} {
		fed, err := ParseFederation(name)
		if err != nil {
			t.Fatalf("ParseFederation(%q): %v", name, err)
		}
		if err := fed.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		for _, cs := range fed.Clusters {
			if cs.FaultIntensity != "" {
				t.Errorf("preset %q cluster %q pins intensity %q; presets must inherit the -faults axis",
					name, cs.Name, cs.FaultIntensity)
			}
		}
		again, err := ParseFederation(name)
		if err != nil {
			t.Fatal(err)
		}
		if &fed.Clusters[0] == &again.Clusters[0] {
			t.Errorf("preset %q shares cluster storage across calls", name)
		}
	}

	single, err := ParseFederation("single")
	if err != nil {
		t.Fatal(err)
	}
	if !single.EquivalentToSingle(128, faults.None) || !single.EquivalentToSingle(128, faults.High) {
		t.Error("single preset is not equivalent to the plain 128-node run")
	}
	hetero, err := ParseFederation("hetero4")
	if err != nil {
		t.Fatal(err)
	}
	if len(hetero.Clusters) != 4 || hetero.EquivalentToSingle(128, faults.None) {
		t.Errorf("hetero4 = %+v, want 4 genuinely heterogeneous clusters", hetero)
	}
	dc, err := ParseFederation("datacenter")
	if err != nil {
		t.Fatal(err)
	}
	if len(dc.Clusters) != 4 || dc.TotalNodes() != 4096 {
		t.Errorf("datacenter totals %d nodes over %d clusters, want 4096 over 4", dc.TotalNodes(), len(dc.Clusters))
	}

	if fed, err := ParseFederation(""); err != nil || fed != nil {
		t.Errorf("ParseFederation(\"\") = %v, %v; want nil, nil", fed, err)
	}
	if _, err := ParseFederation("nosuch"); err == nil || !strings.Contains(err.Error(), "hetero4") {
		t.Errorf("unknown preset error %v does not list the valid names", err)
	}
}

func TestListFederations(t *testing.T) {
	lines := ListFederations()
	if len(lines) != len(federationPresets)+1 {
		t.Fatalf("ListFederations returned %d lines, want %d", len(lines), len(federationPresets)+1)
	}
	if !strings.HasPrefix(lines[0], "Federation") {
		t.Errorf("header line: %q", lines[0])
	}
	for i, p := range federationPresets {
		if !strings.HasPrefix(lines[i+1], p.name) {
			t.Errorf("line %d %q does not lead with %s", i+1, lines[i+1], p.name)
		}
	}
}

func TestListPolicies(t *testing.T) {
	lines := ListPolicies()
	if len(lines) != len(scheduler.Specs())+1 {
		t.Fatalf("ListPolicies returned %d lines, want %d", len(lines), len(scheduler.Specs())+1)
	}
	if !strings.HasPrefix(lines[0], "Policy") {
		t.Errorf("header line: %q", lines[0])
	}
	for i, spec := range scheduler.Specs() {
		if !strings.HasPrefix(lines[i+1], spec.Name) {
			t.Errorf("line %d %q does not lead with %s", i+1, lines[i+1], spec.Name)
		}
	}
}
