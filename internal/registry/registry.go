package registry

import (
	"fmt"
	"strings"

	"repro/internal/economy"
	"repro/internal/scheduler"
)

// ParseModel resolves one economic-model name: "commodity", or "bid"
// (accepting the paper's "bid-based" spelling).
func ParseModel(s string) (economy.Model, error) {
	switch s {
	case "commodity":
		return economy.Commodity, nil
	case "bid", "bid-based":
		return economy.BidBased, nil
	default:
		return 0, fmt.Errorf("unknown model %q (want commodity or bid)", s)
	}
}

// ParseModels resolves a model selector that additionally accepts "both",
// in the paper's commodity-first order.
func ParseModels(s string) ([]economy.Model, error) {
	if s == "both" {
		return []economy.Model{economy.Commodity, economy.BidBased}, nil
	}
	m, err := ParseModel(s)
	if err != nil {
		return nil, err
	}
	return []economy.Model{m}, nil
}

// ParseSets resolves an estimate-inaccuracy Set selector — "A" (accurate
// estimates), "B" (100% inaccuracy), or "both" — into setB flags as
// experiment.DefaultSuiteConfig takes them.
func ParseSets(s string) ([]bool, error) {
	switch strings.ToUpper(s) {
	case "A":
		return []bool{false}, nil
	case "B":
		return []bool{true}, nil
	case "BOTH":
		return []bool{false, true}, nil
	default:
		return nil, fmt.Errorf("unknown set %q (want A, B, or both)", s)
	}
}

// PolicySpec resolves a policy name under an economic model, enforcing the
// Table V matrix: a policy the paper does not evaluate under the model is
// refused with the list of models it does run under.
func PolicySpec(name string, m economy.Model) (scheduler.Spec, error) {
	spec, err := scheduler.SpecByName(name)
	if err != nil {
		return scheduler.Spec{}, err
	}
	for _, sm := range spec.Models {
		if sm == m {
			return spec, nil
		}
	}
	return scheduler.Spec{}, fmt.Errorf("registry: policy %s is not evaluated under the %s model (runs under %s)",
		spec.Name, m, modelList(spec.Models))
}

// ListPolicies renders the Table V policy matrix as aligned text lines for
// -list style output.
func ListPolicies() []string {
	lines := []string{fmt.Sprintf("%-12s %-21s %s", "Policy", "Models", "Primary parameter")}
	for _, s := range scheduler.Specs() {
		lines = append(lines, fmt.Sprintf("%-12s %-21s %s", s.Name, modelList(s.Models), s.Parameter))
	}
	return lines
}

func modelList(models []economy.Model) string {
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.String()
	}
	return strings.Join(names, ", ")
}
