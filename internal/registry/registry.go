package registry

import (
	"fmt"
	"strings"

	"repro/internal/broker"
	"repro/internal/economy"
	"repro/internal/scheduler"
)

// ParseModel resolves one economic-model name: "commodity", or "bid"
// (accepting the paper's "bid-based" spelling).
func ParseModel(s string) (economy.Model, error) {
	switch s {
	case "commodity":
		return economy.Commodity, nil
	case "bid", "bid-based":
		return economy.BidBased, nil
	default:
		return 0, fmt.Errorf("unknown model %q (want commodity or bid)", s)
	}
}

// ParseModels resolves a model selector that additionally accepts "both",
// in the paper's commodity-first order.
func ParseModels(s string) ([]economy.Model, error) {
	if s == "both" {
		return []economy.Model{economy.Commodity, economy.BidBased}, nil
	}
	m, err := ParseModel(s)
	if err != nil {
		return nil, err
	}
	return []economy.Model{m}, nil
}

// ParseSets resolves an estimate-inaccuracy Set selector — "A" (accurate
// estimates), "B" (100% inaccuracy), or "both" — into setB flags as
// experiment.DefaultSuiteConfig takes them.
func ParseSets(s string) ([]bool, error) {
	switch strings.ToUpper(s) {
	case "A":
		return []bool{false}, nil
	case "B":
		return []bool{true}, nil
	case "BOTH":
		return []bool{false, true}, nil
	default:
		return nil, fmt.Errorf("unknown set %q (want A, B, or both)", s)
	}
}

// PolicySpec resolves a policy name under an economic model, enforcing the
// Table V matrix: a policy the paper does not evaluate under the model is
// refused with the list of models it does run under.
func PolicySpec(name string, m economy.Model) (scheduler.Spec, error) {
	spec, err := scheduler.SpecByName(name)
	if err != nil {
		return scheduler.Spec{}, err
	}
	for _, sm := range spec.Models {
		if sm == m {
			return spec, nil
		}
	}
	return scheduler.Spec{}, fmt.Errorf("registry: policy %s is not evaluated under the %s model (runs under %s)",
		spec.Name, m, modelList(spec.Models))
}

// ListPolicies renders the Table V policy matrix as aligned text lines for
// -list style output.
func ListPolicies() []string {
	lines := []string{fmt.Sprintf("%-12s %-21s %s", "Policy", "Models", "Primary parameter")}
	for _, s := range scheduler.Specs() {
		lines = append(lines, fmt.Sprintf("%-12s %-21s %s", s.Name, modelList(s.Models), s.Parameter))
	}
	return lines
}

// federationPreset describes one named federation for -list output.
type federationPreset struct {
	name, desc string
	build      func() *broker.Federation
}

// federationPresets is the named-federation table. Every preset leaves
// FaultIntensity empty so clusters inherit the run's -faults axis; the
// experiment suite then derives per-cluster failure substreams by the
// cluster-stride sub-seed convention.
var federationPresets = []federationPreset{
	{"single", "1 × 128 nodes, neutral — bit-identical to the plain single-cluster run", func() *broker.Federation {
		return &broker.Federation{Clusters: []broker.ClusterSpec{
			{Name: "only", Nodes: 128},
		}}
	}},
	{"twin", "2 × 128 nodes, neutral — pure capacity doubling", func() *broker.Federation {
		return &broker.Federation{Clusters: []broker.ClusterSpec{
			{Name: "east", Nodes: 128},
			{Name: "west", Nodes: 128},
		}}
	}},
	{"hetero4", "4 heterogeneous clusters: 128 reference, 64 fast/premium, 96 slow/budget, 128 bulk", func() *broker.Federation {
		return &broker.Federation{Clusters: []broker.ClusterSpec{
			{Name: "ref", Nodes: 128},
			{Name: "fast", Nodes: 64, Speed: 1.5, PriceFactor: 1.25},
			{Name: "budget", Nodes: 96, Speed: 0.8, PriceFactor: 0.7},
			{Name: "bulk", Nodes: 128, Speed: 1.1, PriceFactor: 0.9},
		}}
	}},
	{"datacenter", "4 × 1024 nodes, mixed generations — the datacenter-scale stress configuration", func() *broker.Federation {
		return &broker.Federation{Clusters: []broker.ClusterSpec{
			{Name: "gen1", Nodes: 1024, Speed: 0.9, PriceFactor: 0.8},
			{Name: "gen2", Nodes: 1024},
			{Name: "gen3", Nodes: 1024, Speed: 1.2, PriceFactor: 1.15},
			{Name: "gen4", Nodes: 1024, Speed: 1.4, PriceFactor: 1.3},
		}}
	}},
}

// ParseFederation resolves a named federation preset into a freshly built
// Federation (callers may mutate their copy freely). The empty name means
// no federation — the plain single-cluster path.
func ParseFederation(s string) (*broker.Federation, error) {
	if s == "" {
		return nil, nil
	}
	for _, p := range federationPresets {
		if p.name == s {
			return p.build(), nil
		}
	}
	names := make([]string, len(federationPresets))
	for i, p := range federationPresets {
		names[i] = p.name
	}
	return nil, fmt.Errorf("unknown federation %q (want %s)", s, strings.Join(names, ", "))
}

// ListFederations renders the federation preset table as aligned text
// lines for -list style output.
func ListFederations() []string {
	lines := []string{fmt.Sprintf("%-12s %-7s %s", "Federation", "Nodes", "Clusters")}
	for _, p := range federationPresets {
		fed := p.build()
		lines = append(lines, fmt.Sprintf("%-12s %-7d %s", p.name, fed.TotalNodes(), p.desc))
	}
	return lines
}

func modelList(models []economy.Model) string {
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.String()
	}
	return strings.Join(names, ", ")
}
