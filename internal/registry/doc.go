// Package registry maps the command-line and service-layer spellings of
// the evaluation's axes — economic model, estimate-inaccuracy Set, policy —
// to their constructors and parameterizations. It is the single table the
// cmd front-ends (simrun, riskbench, riskserved) share, so a policy or
// model added to the scheduler shows up everywhere at once.
//
// The registry is deliberately dumb: parse a user spelling, return the
// scheduler.Spec or economy.Model it names, list what exists. Anything
// smarter — which policies belong to which model's Table V column, what a
// Set means for default inaccuracy — stays with the owning package
// (scheduler, experiment) and is only surfaced here. That keeps the
// front-ends honest: they cannot construct a configuration the experiment
// layer would not accept, and error messages for unknown spellings
// enumerate the valid ones from the same table the parser used.
//
// Ordering matters for reproducibility of output: ListPolicies and friends
// return deterministic, stable orderings (never map iteration), so -list
// output, generated docs, and golden transcripts do not churn between
// runs. repolint's maporder analyzer enforces this mechanically.
package registry
