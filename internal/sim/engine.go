package sim

import (
	"errors"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds since the start of the run.
type Time float64

// Infinity is a sentinel time later than any schedulable event.
const Infinity Time = Time(math.MaxFloat64)

// Handler is a callback invoked when its event fires. It runs at the event's
// timestamp; Engine.Now() returns that timestamp for the duration of the
// call.
type Handler func()

// Class is an event's tie-break band at equal virtual time: events fire in
// (time, class, scheduling order) order. The kernel attaches no meaning to
// the bands beyond their ordering; the scheduler layer uses them so that a
// step-driven session — which schedules workload arrivals one request at a
// time — dispatches bit-for-bit in the same order as a batch run that
// schedules every arrival up front (arrivals first at a time tie, then
// injected environment events, then everything scheduled while running).
type Class uint8

const (
	// ClassArrival is the band of workload arrivals: at a time tie they
	// fire before any other event, in submission order.
	ClassArrival Class = iota
	// ClassInjected is the band of injected environment events (node
	// failures and repairs): after arrivals, before ordinary events.
	ClassInjected
	// ClassDefault is the band of every normally scheduled event; Schedule
	// and After use it.
	ClassDefault
)

// classShift packs the class into the top bits of the ordering key, so the
// hot-path comparison stays a single uint64 compare. The sequence counter
// never reaches 2^62.
const classShift = 62

// event is the pooled queue record. Records are owned by the engine and
// recycled through its free list; the exported Event handle guards against
// observing a recycled record via the generation counter.
type event struct {
	time Time
	// seq is the ordering key: the event's Class in the top bits over the
	// engine's scheduling sequence number, so one integer compare resolves
	// both the band and the within-band tie.
	seq     uint64
	gen     uint64
	index   int32 // heap index; -1 once removed
	handler Handler
	// label is retained for tracing and error messages only.
	label string
}

// Event is a value handle to a scheduled callback, returned by Schedule.
// The zero value is a valid "no event" handle: it is never pending, never
// cancelled, and Cancel of it is a no-op returning false.
//
// Handles stay safe after the event fires or is cancelled, even though the
// underlying record is recycled for later Schedule calls: each handle
// carries the generation of the record it was minted for, and recycling
// bumps the generation, so a stale handle can never cancel — or observe —
// a reused record.
type Event struct {
	ev  *event
	gen uint64
	at  Time
	// label is copied into the handle so Label stays valid after the
	// record is recycled.
	label string
}

// Time returns the virtual time at which the event fires (or fired). Zero
// for the zero handle.
func (e Event) Time() Time { return e.at }

// Label returns the diagnostic label given at scheduling time.
func (e Event) Label() string { return e.label }

// Scheduled reports whether the handle was obtained from Schedule (the
// zero "no event" handle reports false).
func (e Event) Scheduled() bool { return e.ev != nil }

// Pending reports whether the event is still queued to fire.
func (e Event) Pending() bool { return e.ev != nil && e.ev.gen == e.gen }

// Cancelled reports whether the event has been removed from the queue,
// either by firing or by Engine.Cancel. A zero-value handle that was never
// scheduled reports false (it was never queued, so it cannot have been
// removed) — callers testing "is there still a timer" should use Pending.
func (e Event) Cancelled() bool { return e.ev != nil && e.ev.gen != e.gen }

// Engine is a discrete event simulation kernel. The zero value is ready to
// use; NewEngine is provided for symmetry with the rest of the repository.
type Engine struct {
	now   Time
	seq   uint64
	queue []*event
	// free is the recycled-record pool; see the package comment's
	// performance model.
	free    []*event
	fired   uint64
	running bool
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// ErrPast is returned by Schedule when the requested time precedes the
// current clock.
var ErrPast = errors.New("sim: event scheduled in the past")

// Schedule queues h to run at time t with a diagnostic label. It returns a
// handle so the caller may Cancel it later. Scheduling at the current time
// is allowed (the event fires after the currently running handler returns).
// The label should be a static string: it is stored, never formatted, and
// hot paths must not pay for a fmt.Sprintf that is almost never read.
//
//lint:hot
func (e *Engine) Schedule(t Time, label string, h Handler) (Event, error) {
	return e.ScheduleClass(t, ClassDefault, label, h)
}

// ScheduleClass is Schedule with an explicit tie-break band (see Class).
//
//lint:hot
func (e *Engine) ScheduleClass(t Time, c Class, label string, h Handler) (Event, error) {
	if t < e.now {
		//lint:allow hotalloc — error exit, not the steady-state path; Must* callers clamp times and never take it
		return Event{}, fmt.Errorf("%w: at %v, now %v (%s)", ErrPast, t, e.now, label)
	}
	if h == nil {
		//lint:allow hotalloc — error exit, not the steady-state path; a nil handler is a programming bug
		return Event{}, fmt.Errorf("sim: nil handler (%s)", label)
	}
	ev := e.alloc()
	ev.time = t
	ev.seq = uint64(c)<<classShift | e.seq
	ev.handler = h
	ev.label = label
	e.seq++
	e.push(ev)
	return Event{ev: ev, gen: ev.gen, at: t, label: label}, nil
}

// MustScheduleClass is ScheduleClass for callers that guarantee t >= Now();
// it panics on error.
//
//lint:hot
func (e *Engine) MustScheduleClass(t Time, c Class, label string, h Handler) Event {
	ev, err := e.ScheduleClass(t, c, label, h)
	if err != nil {
		panic(err)
	}
	return ev
}

// MustSchedule is Schedule for callers that guarantee t >= Now().
// It panics on error; the simulation layers use it after clamping times.
// It calls ScheduleClass directly rather than going through the Schedule
// wrapper: the two-level call would push this body past the inlining
// budget, and MustSchedule must stay inlinable — it is the hot-path entry
// for every event the cluster models schedule.
//
//lint:hot
func (e *Engine) MustSchedule(t Time, label string, h Handler) Event {
	ev, err := e.ScheduleClass(t, ClassDefault, label, h)
	if err != nil {
		panic(err)
	}
	return ev
}

// After schedules h to run d seconds from now.
//
//lint:hot
func (e *Engine) After(d Time, label string, h Handler) Event {
	if d < 0 {
		d = 0
	}
	return e.MustSchedule(e.now+d, label, h)
}

// Cancel removes the event from the queue. Cancelling an already-fired or
// already-cancelled event — or the zero handle — is a no-op and returns
// false, even if the underlying record has since been recycled for a newer
// event (the generation check protects the newer event).
//
//lint:hot
func (e *Engine) Cancel(h Event) bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen {
		return false
	}
	i := int(ev.index)
	n := len(e.queue) - 1
	last := e.queue[n]
	e.queue[n] = nil
	e.queue = e.queue[:n]
	if i != n {
		e.queue[i] = last
		last.index = int32(i)
		if !e.siftDown(i) {
			e.siftUp(i)
		}
	}
	e.recycle(ev)
	return true
}

// Step dispatches the single earliest event. It returns false when the queue
// is empty.
//
//lint:hot
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.popMin()
	e.now = ev.time
	e.fired++
	h := ev.handler
	// Recycle before dispatch so the handler's own Schedule calls can
	// reuse the record immediately; h is already copied out.
	e.recycle(ev)
	h()
	return true
}

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunThrough dispatches events in order until the given event has fired,
// leaving everything ordered after it — including later events at the same
// virtual time — queued. It is how a step-driven session advances exactly
// to one arrival's admission decision. A zero, fired, or cancelled handle
// is a no-op; an empty queue stops the dispatch regardless.
func (e *Engine) RunThrough(h Event) {
	if e.running {
		panic("sim: RunThrough re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for h.Pending() && e.Step() {
	}
}

// RunUntil dispatches events with time <= horizon, then advances the clock
// to horizon (if it is ahead of the last event). Remaining events stay
// queued.
func (e *Engine) RunUntil(horizon Time) {
	if e.running {
		panic("sim: RunUntil re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && e.queue[0].time <= horizon {
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}

// alloc takes a record from the free list, or grows the pool.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	//lint:allow hotalloc — pool growth: amortized, the free list satisfies steady state (bench-asserted 0 allocs/op)
	return &event{}
}

// recycle invalidates every outstanding handle to the record (generation
// bump), drops the handler reference so its closure can be collected, and
// returns the record to the free list.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.handler = nil
	ev.label = ""
	ev.index = -1
	//lint:allow hotalloc — free-list growth is amortized; capacity plateaus at peak queue depth
	e.free = append(e.free, ev)
}

// less orders the heap by (time, seq): earlier time first, then the packed
// (class, scheduling order) key within a tie — the determinism contract.
func less(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push appends the record and restores the heap invariant.
func (e *Engine) push(ev *event) {
	ev.index = int32(len(e.queue))
	//lint:allow hotalloc — heap growth is amortized; capacity plateaus at peak queue depth
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

// popMin removes and returns the root. The single-element case skips the
// sift entirely; otherwise the last leaf is moved to the root and sifted
// down once — no interface dispatch, no extra swaps.
func (e *Engine) popMin() *event {
	q := e.queue
	n := len(q) - 1
	top := q[0]
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		e.queue[0] = last
		last.index = 0
		e.siftDown(0)
	}
	top.index = -1
	return top
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !less(ev, p) {
			break
		}
		q[i] = p
		p.index = int32(i)
		i = parent
	}
	q[i] = ev
	ev.index = int32(i)
}

// siftDown restores the invariant below i, reporting whether the record
// moved (the container/heap Remove contract: if it did not move down, the
// caller tries up).
func (e *Engine) siftDown(i int) bool {
	q := e.queue
	n := len(q)
	ev := q[i]
	start := i
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		c := q[left]
		if right := left + 1; right < n && less(q[right], c) {
			child = right
			c = q[right]
		}
		if !less(c, ev) {
			break
		}
		q[i] = c
		c.index = int32(i)
		i = child
	}
	q[i] = ev
	ev.index = int32(i)
	return i > start
}
