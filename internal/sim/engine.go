// Package sim provides a minimal deterministic discrete event simulation
// kernel: a virtual clock and a priority queue of timestamped events.
//
// The kernel is intentionally small. Entities (clusters, schedulers,
// workload feeders) schedule callbacks at future virtual times; the engine
// dispatches them in (time, sequence) order so that runs are bit-for-bit
// reproducible regardless of map iteration or goroutine scheduling. A single
// simulation runs on one goroutine; parallelism in this repository happens
// across simulations, not inside one.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds since the start of the run.
type Time float64

// Infinity is a sentinel time later than any schedulable event.
const Infinity Time = Time(math.MaxFloat64)

// Handler is a callback invoked when its event fires. It runs at the event's
// timestamp; Engine.Now() returns that timestamp for the duration of the
// call.
type Handler func()

// Event is a scheduled callback. The zero value is not usable; obtain events
// from Engine.Schedule.
type Event struct {
	time    Time
	seq     uint64
	index   int // heap index; -1 once removed
	handler Handler
	// label is retained for tracing and error messages only.
	label string
}

// Time returns the virtual time at which the event fires (or fired).
func (e *Event) Time() Time { return e.time }

// Cancelled reports whether the event has been removed from the queue,
// either by firing or by Engine.Cancel.
func (e *Event) Cancelled() bool { return e.index == -1 }

// Label returns the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete event simulation kernel. The zero value is ready to
// use; NewEngine is provided for symmetry with the rest of the repository.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	fired   uint64
	running bool
}

// NewEngine returns an empty engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// ErrPast is returned by Schedule when the requested time precedes the
// current clock.
var ErrPast = errors.New("sim: event scheduled in the past")

// Schedule queues h to run at time t with a diagnostic label. It returns the
// event so the caller may Cancel it later. Scheduling at the current time is
// allowed (the event fires after the currently running handler returns).
func (e *Engine) Schedule(t Time, label string, h Handler) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("%w: at %v, now %v (%s)", ErrPast, t, e.now, label)
	}
	if h == nil {
		return nil, fmt.Errorf("sim: nil handler (%s)", label)
	}
	ev := &Event{time: t, seq: e.seq, handler: h, label: label}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev, nil
}

// MustSchedule is Schedule for callers that guarantee t >= Now().
// It panics on error; the simulation layers use it after clamping times.
func (e *Engine) MustSchedule(t Time, label string, h Handler) *Event {
	ev, err := e.Schedule(t, label, h)
	if err != nil {
		panic(err)
	}
	return ev
}

// After schedules h to run d seconds from now.
func (e *Engine) After(d Time, label string, h Handler) *Event {
	if d < 0 {
		d = 0
	}
	return e.MustSchedule(e.now+d, label, h)
}

// Cancel removes ev from the queue. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index == -1 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	return true
}

// Step dispatches the single earliest event. It returns false when the queue
// is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.time
	e.fired++
	ev.handler()
	return true
}

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	if e.running {
		panic("sim: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for e.Step() {
	}
}

// RunUntil dispatches events with time <= horizon, then advances the clock
// to horizon (if it is ahead of the last event). Remaining events stay
// queued.
func (e *Engine) RunUntil(horizon Time) {
	if e.running {
		panic("sim: RunUntil re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && e.queue[0].time <= horizon {
		e.Step()
	}
	if e.now < horizon {
		e.now = horizon
	}
}
