package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// A minimal simulation: two events, one cancelled timer, deterministic
// order.
func Example() {
	engine := sim.NewEngine()
	engine.MustSchedule(10, "greet", func() {
		fmt.Printf("t=%v: job arrives\n", engine.Now())
		engine.After(5, "finish", func() {
			fmt.Printf("t=%v: job finishes\n", engine.Now())
		})
	})
	timeout := engine.MustSchedule(100, "timeout", func() {
		fmt.Println("timeout fired (should not happen)")
	})
	engine.MustSchedule(20, "cancel", func() { engine.Cancel(timeout) })
	engine.Run()
	fmt.Printf("fired %d events\n", engine.Fired())
	// Output:
	// t=10: job arrives
	// t=15: job finishes
	// fired 3 events
}
