package sim

import "testing"

// The event pool recycles records the moment they fire or are cancelled, so
// the tests in this file pin the generation-guard contract: a stale handle
// must never observe — let alone cancel — a record that has been reused for
// a newer event.

func TestCancelAfterFireIsNoOp(t *testing.T) {
	e := NewEngine()
	ev := e.MustSchedule(1, "fires", func() {})
	e.Run()
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after the event fired")
	}
	if ev.Pending() {
		t.Error("Pending() = true after the event fired")
	}
	if e.Cancel(ev) {
		t.Error("Cancel of a fired event returned true")
	}
}

func TestDoubleCancelIsNoOp(t *testing.T) {
	e := NewEngine()
	ev := e.MustSchedule(1, "victim", func() { t.Error("cancelled event fired") })
	if !e.Cancel(ev) {
		t.Fatal("first Cancel returned false")
	}
	for i := 0; i < 3; i++ {
		if e.Cancel(ev) {
			t.Fatalf("Cancel #%d of an already-cancelled event returned true", i+2)
		}
	}
	e.Run()
}

// TestStaleHandleDoesNotCancelReusedRecord is the core pool-safety property:
// after an event fires, its record is recycled for the next Schedule; the
// old handle must not be able to cancel the new occupant.
func TestStaleHandleDoesNotCancelReusedRecord(t *testing.T) {
	e := NewEngine()
	first := e.MustSchedule(1, "first", func() {})
	e.Run()

	// The pool has exactly one free record, so this reuses first's record.
	secondFired := false
	second := e.MustSchedule(2, "second", func() { secondFired = true })
	if second.Pending() != true {
		t.Fatal("second event not pending after schedule")
	}
	if e.Cancel(first) {
		t.Error("stale handle cancelled the reused record")
	}
	if !second.Pending() {
		t.Error("second event lost its pending state to a stale Cancel")
	}
	e.Run()
	if !secondFired {
		t.Error("second event never fired")
	}
	if first.Cancelled() != true {
		t.Error("stale handle stopped reporting Cancelled after reuse")
	}
}

// TestHandleMetadataSurvivesRecycle pins that Time and Label are handle
// state, not record state: they stay readable after the record is reused.
func TestHandleMetadataSurvivesRecycle(t *testing.T) {
	e := NewEngine()
	ev := e.MustSchedule(7, "original", func() {})
	e.Run()
	e.MustSchedule(9, "reuser", func() {})
	if ev.Time() != 7 {
		t.Errorf("Time() = %v after recycle, want 7", ev.Time())
	}
	if ev.Label() != "original" {
		t.Errorf("Label() = %q after recycle, want %q", ev.Label(), "original")
	}
}

// TestPoolReuseSteadyStateAllocs verifies the performance-model invariant
// directly: once warm, the schedule→fire cycle does not allocate.
func TestPoolReuseSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	var spawn func()
	remaining := 0
	spawn = func() {
		if remaining == 0 {
			return
		}
		remaining--
		e.MustSchedule(e.Now()+1, "steady", spawn)
	}
	// Warm the pool and the heap slice.
	remaining = 100
	spawn()
	e.Run()

	allocs := testing.AllocsPerRun(100, func() {
		remaining = 10
		spawn()
		e.Run()
	})
	if allocs > 0 {
		t.Errorf("steady-state schedule/fire allocates %.1f/run, want 0", allocs)
	}
}

// TestCancelHeapIntegrity drives Cancel at every heap position and checks
// the survivors still dispatch in (time, seq) order — the index-backpointer
// maintenance in the concrete heap.
func TestCancelHeapIntegrity(t *testing.T) {
	const n = 64
	for victim := 0; victim < n; victim++ {
		e := NewEngine()
		events := make([]Event, n)
		var fired []int
		for i := 0; i < n; i++ {
			i := i
			// A mix of distinct and tied times exercises both sift paths.
			events[i] = e.MustSchedule(Time((i*7)%13), "h", func() { fired = append(fired, i) })
		}
		if !e.Cancel(events[victim]) {
			t.Fatalf("victim %d: Cancel returned false", victim)
		}
		e.Run()
		if len(fired) != n-1 {
			t.Fatalf("victim %d: fired %d events, want %d", victim, len(fired), n-1)
		}
		seen := make(map[int]bool, n)
		for _, id := range fired {
			if id == victim {
				t.Fatalf("victim %d fired after Cancel", victim)
			}
			if seen[id] {
				t.Fatalf("victim %d: event %d fired twice", victim, id)
			}
			seen[id] = true
		}
		for i := 1; i < len(fired); i++ {
			a, b := events[fired[i-1]], events[fired[i]]
			if a.Time() > b.Time() {
				t.Fatalf("victim %d: dispatch out of time order: %v then %v", victim, a.Time(), b.Time())
			}
			if a.Time() == b.Time() && fired[i-1] > fired[i] {
				t.Fatalf("victim %d: tie broken out of scheduling order: %d then %d",
					victim, fired[i-1], fired[i])
			}
		}
	}
}

// BenchmarkEngineSteadyState is the kernel's headline number: one event
// through a warm engine (pool hit, heap depth 1).
func BenchmarkEngineSteadyState(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	remaining := b.N
	var spawn func()
	spawn = func() {
		if remaining == 0 {
			return
		}
		remaining--
		e.MustSchedule(e.Now()+1, "bench", spawn)
	}
	b.ResetTimer()
	spawn()
	e.Run()
}

// BenchmarkEngineCancel measures the schedule→cancel cycle against a modest
// background heap — the completion-reschedule pattern in the cluster layer.
func BenchmarkEngineCancel(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	for i := 0; i < 128; i++ {
		e.MustSchedule(Time(1e9+float64(i)), "background", func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.MustSchedule(Time(1+float64(i%1000)), "victim", func() {})
		e.Cancel(ev)
	}
}
