// Package sim provides a minimal deterministic discrete event simulation
// kernel: a virtual clock and a priority queue of timestamped events.
//
// The kernel is intentionally small. Entities (clusters, schedulers,
// workload feeders) schedule callbacks at future virtual times; the engine
// dispatches them in (time, sequence) order so that runs are bit-for-bit
// reproducible regardless of map iteration or goroutine scheduling. A single
// simulation runs on one goroutine; parallelism in this repository happens
// across simulations, not inside one — experiment.Run fans a suite out as
// (cell, replication) units over a worker pool, each unit owning a private
// Engine, and reduces the results in a fixed order (see
// docs/performance.md, "Replication fan-out").
//
// # Performance model
//
// The kernel is the innermost loop of every simulation, so it holds three
// invariants (measured by cmd/benchjson's sim/* probes and pinned by the
// BENCH_<n>.json trajectory):
//
//   - Zero steady-state allocations. Event records live on a per-engine
//     free list; firing or cancelling an event recycles its record, and the
//     next Schedule reuses it. Only heap/pool growth allocates.
//   - No interface dispatch on the hot path. The priority queue is a
//     concrete binary heap over *event with inlined (time, seq) comparisons
//     rather than container/heap's interface-driven sift.
//   - Labels are static strings. Schedule takes the label by value and
//     never formats it; call sites must not build labels with fmt.Sprintf
//     in hot paths (the label is diagnostic only).
//
// Recycling is safe against stale handles: Event is a value handle carrying
// a generation number, and every recycle bumps the record's generation, so
// Cancel on a fired, cancelled, or reused event is a detectable no-op
// rather than a corruption (see Event).
//
// # Determinism contract
//
// The engine never reads the wall clock, never consults a global random
// source, and never iterates a map on a dispatch path; the repolint
// analyzers (wallclock, globalrand, maporder) machine-check those rules
// across the repository. Ties at the same virtual time break by schedule
// sequence number, so the order in which handlers schedule follow-up
// events is itself reproducible. These properties are what make the
// higher layers' oracles — canonical journals, golden session transcripts,
// byte-equal plot panels — meaningful.
package sim
