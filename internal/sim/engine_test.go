package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		at := at
		e.MustSchedule(at, "t", func() { got = append(got, at) })
	}
	e.Run()
	want := []Time{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineFIFOWithinSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustSchedule(7, "same", func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := NewEngine()
	e.MustSchedule(10, "a", func() {
		if e.Now() != 10 {
			t.Errorf("Now() = %v inside handler, want 10", e.Now())
		}
	})
	e.Run()
	if e.Now() != 10 {
		t.Errorf("Now() = %v after run, want 10", e.Now())
	}
	if e.Fired() != 1 {
		t.Errorf("Fired() = %d, want 1", e.Fired())
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine()
	e.MustSchedule(5, "a", func() {
		if _, err := e.Schedule(4, "past", func() {}); err == nil {
			t.Error("scheduling in the past succeeded, want error")
		}
	})
	e.Run()
}

func TestScheduleNilHandlerRejected(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(1, "nil", nil); err == nil {
		t.Error("scheduling nil handler succeeded, want error")
	}
}

func TestScheduleAtCurrentTime(t *testing.T) {
	e := NewEngine()
	var order []string
	e.MustSchedule(5, "outer", func() {
		order = append(order, "outer")
		e.MustSchedule(5, "inner", func() { order = append(order, "inner") })
	})
	e.MustSchedule(6, "later", func() { order = append(order, "later") })
	e.Run()
	want := []string{"outer", "inner", "later"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.MustSchedule(3, "victim", func() { fired = true })
	if !e.Cancel(ev) {
		t.Error("Cancel returned false for a pending event")
	}
	if e.Cancel(ev) {
		t.Error("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after cancel")
	}
}

func TestCancelZeroHandle(t *testing.T) {
	e := NewEngine()
	if e.Cancel(Event{}) {
		t.Error("Cancel(Event{}) returned true")
	}
	if (Event{}).Cancelled() {
		t.Error("zero handle Cancelled() = true, want false (never scheduled)")
	}
	if (Event{}).Pending() {
		t.Error("zero handle Pending() = true")
	}
	if (Event{}).Scheduled() {
		t.Error("zero handle Scheduled() = true")
	}
}

func TestCancelFromHandler(t *testing.T) {
	e := NewEngine()
	fired := false
	victim := e.MustSchedule(10, "victim", func() { fired = true })
	e.MustSchedule(5, "killer", func() { e.Cancel(victim) })
	e.Run()
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.MustSchedule(at, "t", func() { got = append(got, at) })
	}
	e.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("RunUntil(3) fired %d events, want 3", len(got))
	}
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %v, want 3", e.Now())
	}
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Errorf("Now() = %v after RunUntil(100), want 100", e.Now())
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", e.Pending())
	}
}

func TestAfterClampsNegative(t *testing.T) {
	e := NewEngine()
	e.MustSchedule(5, "setup", func() {
		ev := e.After(-3, "neg", func() {})
		if ev.Time() != 5 {
			t.Errorf("After(-3) scheduled at %v, want 5 (clamped)", ev.Time())
		}
	})
	e.Run()
}

func TestEventLabel(t *testing.T) {
	e := NewEngine()
	ev := e.MustSchedule(1, "hello", func() {})
	if ev.Label() != "hello" {
		t.Errorf("Label() = %q, want %q", ev.Label(), "hello")
	}
}

// Property: for any set of event times, dispatch order is the sorted order,
// with ties broken by scheduling sequence.
func TestDispatchOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r % 50) // force ties
			e.MustSchedule(at, "p", func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset never fires those events and fires
// everything else exactly once.
func TestCancelSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		e := NewEngine()
		const n = 100
		fired := make([]int, n)
		events := make([]Event, n)
		for i := 0; i < n; i++ {
			i := i
			events[i] = e.MustSchedule(Time(rng.Intn(30)), "p", func() { fired[i]++ })
		}
		cancelled := make(map[int]bool)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(events[i])
				cancelled[i] = true
			}
		}
		e.Run()
		for i := 0; i < n; i++ {
			want := 1
			if cancelled[i] {
				want = 0
			}
			if fired[i] != want {
				t.Fatalf("trial %d: event %d fired %d times, want %d", trial, i, fired[i], want)
			}
		}
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.MustSchedule(Time(j%97), "b", func() {})
		}
		e.Run()
	}
}

func TestScheduleClassOrdersBandsAtTimeTie(t *testing.T) {
	e := NewEngine()
	var order []string
	note := func(s string) Handler { return func() { order = append(order, s) } }
	// Schedule in deliberately scrambled band order at the same instant:
	// the dispatch must come out arrival, injected, default — and within a
	// band, in scheduling order.
	e.MustScheduleClass(5, ClassDefault, "d1", note("d1"))
	e.MustScheduleClass(5, ClassInjected, "i1", note("i1"))
	e.MustScheduleClass(5, ClassArrival, "a1", note("a1"))
	e.MustScheduleClass(5, ClassDefault, "d2", note("d2"))
	e.MustScheduleClass(5, ClassArrival, "a2", note("a2"))
	e.MustScheduleClass(5, ClassInjected, "i2", note("i2"))
	// An earlier default-band event still beats every later-time band.
	e.MustScheduleClass(3, ClassDefault, "d0", note("d0"))
	e.Run()
	want := []string{"d0", "a1", "a2", "i1", "i2", "d1", "d2"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

func TestScheduleClassEquivalentToUpfrontScheduling(t *testing.T) {
	// The bridge invariant behind the step-driven session driver: arrivals
	// scheduled lazily in the arrival band interleave exactly like arrivals
	// scheduled up front in the default band before anything else.
	type firing struct {
		at Time
		id string
	}
	run := func(lazy bool) []firing {
		e := NewEngine()
		var out []firing
		note := func(id string) Handler {
			return func() { out = append(out, firing{e.Now(), id}) }
		}
		arrivals := []Time{0, 2, 2, 4, 4}
		chain := func(at Time, id string) Handler {
			// Each arrival schedules a same-instant and a +2 follow-up,
			// creating time ties with later arrivals.
			return func() {
				out = append(out, firing{e.Now(), id})
				e.MustSchedule(e.Now(), id+"/now", note(id+"/now"))
				e.MustSchedule(e.Now()+2, id+"/later", note(id+"/later"))
			}
		}
		if lazy {
			for i, at := range arrivals {
				id := fmt.Sprintf("a%d", i)
				h := e.MustScheduleClass(at, ClassArrival, id, chain(at, id))
				e.RunThrough(h)
			}
			e.Run()
		} else {
			for i, at := range arrivals {
				id := fmt.Sprintf("a%d", i)
				e.MustSchedule(at, id, chain(at, id))
			}
			e.Run()
		}
		return out
	}
	batch, step := run(false), run(true)
	if len(batch) != len(step) {
		t.Fatalf("batch fired %d events, step-driven %d", len(batch), len(step))
	}
	for i := range batch {
		if batch[i] != step[i] {
			t.Fatalf("dispatch diverged at %d: batch %v, step %v", i, batch[i], step[i])
		}
	}
}

func TestRunThroughStopsAtEvent(t *testing.T) {
	e := NewEngine()
	var order []string
	note := func(s string) Handler { return func() { order = append(order, s) } }
	e.MustSchedule(1, "before", note("before"))
	target := e.MustSchedule(2, "target", note("target"))
	e.MustSchedule(2, "same-time-after", note("after"))
	e.MustSchedule(3, "later", note("later"))
	e.RunThrough(target)
	if got := fmt.Sprint(order); got != "[before target]" {
		t.Fatalf("RunThrough dispatched %v, want [before target]", order)
	}
	if e.Now() != 2 {
		t.Fatalf("clock at %v, want 2", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("%d events pending, want 2", e.Pending())
	}
	// A fired handle is a no-op target; the queue is untouched.
	e.RunThrough(target)
	if e.Pending() != 2 {
		t.Fatalf("RunThrough of a fired handle dispatched events")
	}
	// A cancelled handle likewise.
	c := e.MustSchedule(4, "cancelled", note("cancelled"))
	e.Cancel(c)
	e.RunThrough(c)
	if e.Pending() != 2 {
		t.Fatalf("RunThrough of a cancelled handle dispatched events")
	}
	e.RunThrough(Event{})
	e.Run()
	if got := fmt.Sprint(order); got != "[before target after later]" {
		t.Fatalf("final order %v", order)
	}
}
