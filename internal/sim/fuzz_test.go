package sim

import "testing"

// FuzzEngine drives the kernel through arbitrary schedule/cancel/step
// sequences and checks the three contracts the event pool must never break:
//
//   - dispatch order: events fire in (time, scheduling sequence) order;
//   - heap integrity: every queued record's index backpointer matches its
//     position and the (time, seq) heap property holds after every op;
//   - pool safety: a cancelled event never fires, a fired or cancelled
//     handle cannot cancel again (even after its record is recycled for a
//     newer event), and handle metadata (Time, Label) survives recycling.
func FuzzEngine(f *testing.F) {
	f.Add([]byte{0, 10, 0, 10, 3, 1, 5, 2, 0})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 2, 1, 2, 1, 3, 3, 3})
	f.Add([]byte{1, 200, 1, 100, 1, 150, 2, 2, 0, 0, 3})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e := NewEngine()
		type tracked struct {
			ev        Event
			id        int
			at        Time
			cancelled bool
			fired     int
		}
		var events []*tracked
		type firing struct {
			at Time
			id int
		}
		var fired []firing

		checkHeap := func() {
			for i, ev := range e.queue {
				if int(ev.index) != i {
					t.Fatalf("queue[%d] has index backpointer %d", i, ev.index)
				}
				if i > 0 {
					parent := e.queue[(i-1)/2]
					if less(ev, parent) {
						t.Fatalf("heap property violated at %d: (%v,%d) under (%v,%d)",
							i, ev.time, ev.seq, parent.time, parent.seq)
					}
				}
			}
		}

		schedule := func(at Time, chain bool) {
			tr := &tracked{id: len(events), at: at}
			tr.ev = e.MustSchedule(at, "fuzz", func() {
				tr.fired++
				fired = append(fired, firing{e.Now(), tr.id})
				if chain && len(events) < 4*len(data)+8 {
					// Reentrant scheduling from a handler, same instant:
					// must fire later in the same batch, after every
					// previously scheduled same-time event.
					inner := &tracked{id: len(events), at: e.Now()}
					inner.ev = e.MustSchedule(e.Now(), "fuzz", func() {
						inner.fired++
						fired = append(fired, firing{e.Now(), inner.id})
					})
					events = append(events, inner)
				}
			})
			events = append(events, tr)
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i]%4, data[i+1]
			switch op {
			case 0:
				schedule(e.Now()+Time(arg), false)
			case 1:
				schedule(e.Now()+Time(arg%32), true)
			case 2:
				if len(events) == 0 {
					continue
				}
				tr := events[int(arg)%len(events)]
				got := e.Cancel(tr.ev)
				want := !tr.cancelled && tr.fired == 0
				if got != want {
					t.Fatalf("Cancel of event %d returned %v, want %v (cancelled=%v fired=%d)",
						tr.id, got, want, tr.cancelled, tr.fired)
				}
				if got {
					tr.cancelled = true
				}
			case 3:
				e.Step()
			}
			checkHeap()
		}
		e.Run()
		checkHeap()

		for i := 1; i < len(fired); i++ {
			a, b := fired[i-1], fired[i]
			if a.at > b.at {
				t.Fatalf("dispatch out of time order: %v then %v", a.at, b.at)
			}
			if a.at == b.at && a.id > b.id {
				t.Fatalf("same-time events fired out of scheduling order: %d then %d", a.id, b.id)
			}
		}
		for _, tr := range events {
			want := 1
			if tr.cancelled {
				want = 0
			}
			if tr.fired != want {
				t.Fatalf("event %d fired %d times, want %d (cancelled=%v)", tr.id, tr.fired, want, tr.cancelled)
			}
			// Pool safety after the run: every record has been recycled
			// (possibly many times over), yet the handle still reports its
			// own history and metadata, and cannot cancel anybody.
			if !tr.ev.Cancelled() || tr.ev.Pending() {
				t.Fatalf("event %d: Cancelled=%v Pending=%v after run", tr.id, tr.ev.Cancelled(), tr.ev.Pending())
			}
			if e.Cancel(tr.ev) {
				t.Fatalf("stale handle %d cancelled something after the run", tr.id)
			}
			if tr.ev.Time() != tr.at || tr.ev.Label() != "fuzz" {
				t.Fatalf("event %d: handle metadata corrupted by recycling: at=%v label=%q",
					tr.id, tr.ev.Time(), tr.ev.Label())
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("%d events still pending after Run", e.Pending())
		}
	})
}
