// Package metrics records per-job outcomes during a simulation and computes
// the paper's four objectives (§3):
//
//	wait          Eq. 1: mean time from submission to execution start over
//	              jobs whose SLA was fulfilled (lower is better);
//	SLA           Eq. 2: % of submitted jobs with SLA fulfilled;
//	reliability   Eq. 3: % of accepted jobs with SLA fulfilled;
//	profitability Eq. 4: % of total submitted budget earned as utility.
//
// It also computes the Computation-at-Risk–style slowdown and response-time
// summaries the related work (Kleban & Clearwater) measures, used by the
// extension benches.
package metrics
