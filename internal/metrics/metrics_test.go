package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/workload"
)

func mkJob(id int, submit, runtime, deadline, budget float64) *workload.Job {
	return &workload.Job{
		ID: id, Submit: submit, Runtime: runtime, Estimate: runtime, Procs: 1,
		Deadline: deadline, Budget: budget, PenaltyRate: 1,
	}
}

func TestReportAllObjectives(t *testing.T) {
	c := NewCollector()
	// Job 1: accepted, starts after 10 s wait, meets deadline, earns 80.
	j1 := mkJob(1, 0, 100, 200, 100)
	c.Submitted(j1)
	c.Accepted(j1)
	c.Started(j1, 10)
	c.Finished(j1, 110, 80)
	// Job 2: accepted, misses deadline, earns 50.
	j2 := mkJob(2, 0, 100, 50, 100)
	c.Submitted(j2)
	c.Accepted(j2)
	c.Started(j2, 0)
	c.Finished(j2, 100, 50)
	// Job 3: rejected, budget 100.
	j3 := mkJob(3, 0, 100, 200, 100)
	c.Submitted(j3)
	c.Rejected(j3)
	// Job 4: accepted, zero wait, meets deadline, earns 70.
	j4 := mkJob(4, 50, 100, 200, 100)
	c.Submitted(j4)
	c.Accepted(j4)
	c.Started(j4, 50)
	c.Finished(j4, 150, 70)

	r := c.Report()
	if r.Submitted != 4 || r.Accepted != 3 || r.SLAFulfilled != 2 {
		t.Fatalf("counts = %d/%d/%d, want 4/3/2", r.Submitted, r.Accepted, r.SLAFulfilled)
	}
	if want := (10.0 + 0.0) / 2; r.Wait != want {
		t.Errorf("wait = %v, want %v", r.Wait, want)
	}
	if want := 2.0 / 4 * 100; r.SLA != want {
		t.Errorf("SLA = %v, want %v", r.SLA, want)
	}
	if want := 2.0 / 3 * 100; math.Abs(r.Reliability-want) > 1e-12 {
		t.Errorf("reliability = %v, want %v", r.Reliability, want)
	}
	if want := (80.0 + 50 + 70) / 400 * 100; math.Abs(r.Profitability-want) > 1e-12 {
		t.Errorf("profitability = %v, want %v", r.Profitability, want)
	}
}

func TestSLAFulfilledBoundary(t *testing.T) {
	c := NewCollector()
	j := mkJob(1, 100, 50, 80, 10)
	c.Submitted(j)
	c.Accepted(j)
	c.Started(j, 100)
	c.Finished(j, 180, 10) // exactly at absolute deadline 180
	if !c.Outcome(j).SLAFulfilled() {
		t.Error("finishing exactly at the deadline must fulfil the SLA")
	}
}

func TestRejectedJobNeverSLAFulfilled(t *testing.T) {
	c := NewCollector()
	j := mkJob(1, 0, 10, 100, 10)
	c.Submitted(j)
	c.Rejected(j)
	if c.Outcome(j).SLAFulfilled() {
		t.Error("rejected job reported as SLA-fulfilled")
	}
}

func TestNegativeUtilityProfitability(t *testing.T) {
	c := NewCollector()
	j := mkJob(1, 0, 10, 5, 100)
	c.Submitted(j)
	c.Accepted(j)
	c.Started(j, 0)
	c.Finished(j, 1000, -500) // heavy bid-based penalty
	r := c.Report()
	if r.Profitability >= 0 {
		t.Errorf("profitability = %v, want negative", r.Profitability)
	}
}

func TestEmptyReport(t *testing.T) {
	r := NewCollector().Report()
	if r.Wait != 0 || r.SLA != 0 || r.Reliability != 0 || r.Profitability != 0 {
		t.Errorf("empty report not all zero: %+v", r)
	}
}

func TestSlowdownAndResponse(t *testing.T) {
	c := NewCollector()
	j := mkJob(1, 100, 50, 1000, 10)
	c.Submitted(j)
	c.Accepted(j)
	c.Started(j, 150)
	c.Finished(j, 250, 10)
	o := c.Outcome(j)
	if o.ResponseTime() != 150 {
		t.Errorf("response = %v, want 150", o.ResponseTime())
	}
	if o.Slowdown() != 3 {
		t.Errorf("slowdown = %v, want 3", o.Slowdown())
	}
	r := c.Report()
	if r.MeanSlowdown != 3 || r.MeanResponseTime != 150 {
		t.Errorf("report slowdown/response = %v/%v", r.MeanSlowdown, r.MeanResponseTime)
	}
}

func TestLifecyclePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	j := mkJob(1, 0, 10, 100, 10)
	expectPanic("double submit", func() {
		c := NewCollector()
		c.Submitted(j)
		c.Submitted(j)
	})
	expectPanic("accept unsubmitted", func() { NewCollector().Accepted(j) })
	expectPanic("reject then accept", func() {
		c := NewCollector()
		c.Submitted(j)
		c.Rejected(j)
		c.Accepted(j)
	})
	expectPanic("accept then reject", func() {
		c := NewCollector()
		c.Submitted(j)
		c.Accepted(j)
		c.Rejected(j)
	})
	expectPanic("finish without start", func() {
		c := NewCollector()
		c.Submitted(j)
		c.Accepted(j)
		c.Finished(j, 10, 0)
	})
}

func TestOutcomesOrder(t *testing.T) {
	c := NewCollector()
	jobs := []*workload.Job{mkJob(3, 0, 1, 1, 1), mkJob(1, 0, 1, 1, 1), mkJob(2, 0, 1, 1, 1)}
	for _, j := range jobs {
		c.Submitted(j)
	}
	got := c.Outcomes()
	for i, o := range got {
		if o.Job != jobs[i] {
			t.Fatalf("Outcomes()[%d] out of submission order", i)
		}
	}
}

// Table I: three user-centric objectives and one provider-centric.
func TestObjectiveFocus(t *testing.T) {
	want := map[string]string{
		"wait":          "user-centric",
		"SLA":           "user-centric",
		"reliability":   "user-centric",
		"profitability": "provider-centric",
	}
	if len(ObjectiveFocus) != len(want) {
		t.Fatalf("ObjectiveFocus has %d entries, want %d", len(ObjectiveFocus), len(want))
	}
	for k, v := range want {
		if ObjectiveFocus[k] != v {
			t.Errorf("ObjectiveFocus[%q] = %q, want %q", k, ObjectiveFocus[k], v)
		}
	}
}

func TestWriteOutcomesCSV(t *testing.T) {
	c := NewCollector()
	j1 := mkJob(1, 0, 100, 200, 100)
	j1.HighUrgency = true
	c.Submitted(j1)
	c.Accepted(j1)
	c.Started(j1, 10)
	c.Finished(j1, 110, 80)
	j2 := mkJob(2, 5, 100, 200, 100)
	c.Submitted(j2)
	c.Rejected(j2)

	var buf strings.Builder
	if err := WriteOutcomesCSV(&buf, c.Outcomes()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "job,procs,submit") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "high,finished") || !strings.Contains(lines[1], ",true") {
		t.Errorf("finished row wrong: %q", lines[1])
	}
	if !strings.Contains(lines[2], "low,rejected") {
		t.Errorf("rejected row wrong: %q", lines[2])
	}
	// Rejected rows leave execution cells empty: trailing ",,,,".
	if !strings.HasSuffix(lines[2], ",,,,") {
		t.Errorf("rejected row has execution data: %q", lines[2])
	}
}

func TestAverageReports(t *testing.T) {
	a := Report{Submitted: 100, Accepted: 80, SLAFulfilled: 70, Wait: 10, SLA: 70, Reliability: 87.5, Profitability: 20, TotalUtility: 1000, TotalBudget: 5000, Utilization: 0.5}
	b := Report{Submitted: 100, Accepted: 60, SLAFulfilled: 50, Wait: 30, SLA: 50, Reliability: 83.3, Profitability: 10, TotalUtility: 500, TotalBudget: 5000, Utilization: 0.7}
	avg := AverageReports([]Report{a, b})
	if avg.Submitted != 100 || avg.Accepted != 70 || avg.SLAFulfilled != 60 {
		t.Errorf("count means wrong: %+v", avg)
	}
	if avg.Wait != 20 || avg.SLA != 60 || avg.Profitability != 15 {
		t.Errorf("float means wrong: %+v", avg)
	}
	if math.Abs(avg.Utilization-0.6) > 1e-12 {
		t.Errorf("utilization mean = %v", avg.Utilization)
	}
	one := AverageReports([]Report{a})
	if one != a {
		t.Error("averaging one report changed it")
	}
	defer func() {
		if recover() == nil {
			t.Error("empty average did not panic")
		}
	}()
	AverageReports(nil)
}

func TestAbandonedAndKilledCount(t *testing.T) {
	c := NewCollector()
	// Job 1: accepted, started, killed mid-run by a node failure.
	j1 := mkJob(1, 0, 100, 200, 100)
	c.Submitted(j1)
	c.Accepted(j1)
	c.Started(j1, 10)
	c.Killed(j1, 50, 0)
	// Job 2: accepted, stranded in the queue, abandoned.
	j2 := mkJob(2, 0, 100, 200, 100)
	c.Submitted(j2)
	c.Accepted(j2)
	c.Abandoned(j2, 300)
	// Job 3: accepted and fulfilled, for contrast.
	j3 := mkJob(3, 0, 100, 200, 100)
	c.Submitted(j3)
	c.Accepted(j3)
	c.Started(j3, 0)
	c.Finished(j3, 100, 80)

	o2 := c.Outcome(j2)
	if !o2.Killed || o2.Finished || o2.Started || o2.FinishTime != 300 {
		t.Errorf("abandoned outcome wrong: %+v", o2)
	}
	if o2.SLAFulfilled() {
		t.Error("abandoned job fulfils SLA")
	}
	r := c.Report()
	if r.Killed != 2 {
		t.Errorf("Killed = %d, want 2", r.Killed)
	}
	if r.Accepted != 3 || r.SLAFulfilled != 1 {
		t.Errorf("accepted/fulfilled = %d/%d, want 3/1", r.Accepted, r.SLAFulfilled)
	}
	if math.Abs(r.Reliability-100.0/3) > 1e-9 {
		t.Errorf("Reliability = %v, want 33.3", r.Reliability)
	}

	avg := AverageReports([]Report{{Killed: 1}, {Killed: 2}})
	if avg.Killed != 2 { // 1.5 rounds to 2
		t.Errorf("averaged Killed = %d, want 2", avg.Killed)
	}
}

func TestAbandonedPanics(t *testing.T) {
	c := NewCollector()
	j := mkJob(1, 0, 100, 200, 100)
	c.Submitted(j)
	c.Accepted(j)
	c.Started(j, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("abandon after start did not panic")
			}
		}()
		c.Abandoned(j, 10)
	}()
	j2 := mkJob(2, 0, 100, 200, 100)
	c.Submitted(j2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("abandon before acceptance did not panic")
			}
		}()
		c.Abandoned(j2, 10)
	}()
}
