package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// outcomeHeader names the per-job drill-down columns WriteOutcomesCSV
// emits.
var outcomeHeader = []string{
	"job", "procs", "submit", "runtime", "estimate", "deadline", "budget",
	"penalty_rate", "urgency", "status", "start", "finish", "wait",
	"utility", "sla_fulfilled",
}

// WriteOutcomesCSV dumps every job's lifecycle — the audit trail behind
// the four aggregate objectives — as CSV. Empty cells mark events that
// never happened (a rejected job has no start).
func WriteOutcomesCSV(w io.Writer, outcomes []*Outcome) error {
	if _, err := fmt.Fprintln(w, join(outcomeHeader)); err != nil {
		return err
	}
	for _, o := range outcomes {
		j := o.Job
		status := "pending"
		switch {
		case o.Rejected:
			status = "rejected"
		case o.Killed:
			status = "killed"
		case o.Finished:
			status = "finished"
		case o.Started:
			status = "running"
		case o.Accepted:
			status = "accepted"
		}
		urgency := "low"
		if j.HighUrgency {
			urgency = "high"
		}
		start, finish, wait, utility, fulfilled := "", "", "", "", ""
		if o.Started {
			start = fmtF(o.StartTime)
			wait = fmtF(o.Wait())
		}
		if o.Finished {
			finish = fmtF(o.FinishTime)
			utility = fmtF(o.Utility)
			fulfilled = strconv.FormatBool(o.SLAFulfilled())
		}
		row := []string{
			strconv.Itoa(j.ID), strconv.Itoa(j.Procs),
			fmtF(j.Submit), fmtF(j.Runtime), fmtF(j.Estimate),
			fmtF(j.Deadline), fmtF(j.Budget), fmtF(j.PenaltyRate),
			urgency, status, start, finish, wait, utility, fulfilled,
		}
		if _, err := fmt.Fprintln(w, join(row)); err != nil {
			return err
		}
	}
	return nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

func join(fields []string) string {
	out := ""
	for i, f := range fields {
		if i > 0 {
			out += ","
		}
		out += f
	}
	return out
}
