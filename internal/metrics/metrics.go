package metrics

import (
	"fmt"

	"repro/internal/workload"
)

// Outcome is the lifecycle record of one submitted job.
type Outcome struct {
	Job        *workload.Job
	Accepted   bool
	Rejected   bool
	Started    bool
	StartTime  float64
	Finished   bool
	FinishTime float64
	// Killed marks a job the provider terminated before completion (the
	// preemptive extension); it is Finished for accounting but can never
	// fulfil its SLA.
	Killed bool
	// Utility is what the provider earned from this job: the commodity
	// charge, or the bid-based utility (possibly negative). Zero for
	// rejected jobs.
	Utility float64
}

// SLAFulfilled reports whether the job was accepted and completed within
// its deadline. A killed job never fulfils its SLA — it did not complete.
func (o *Outcome) SLAFulfilled() bool {
	return o.Accepted && o.Finished && !o.Killed && o.FinishTime <= o.Job.AbsDeadline()
}

// Wait returns the SLA-acceptance wait the paper measures: time from
// submission until execution start.
func (o *Outcome) Wait() float64 { return o.StartTime - o.Job.Submit }

// ResponseTime returns submission-to-completion time (the CaR makespan per
// job); zero if unfinished.
func (o *Outcome) ResponseTime() float64 {
	if !o.Finished {
		return 0
	}
	return o.FinishTime - o.Job.Submit
}

// Slowdown returns the CaR expansion factor: response time over runtime.
func (o *Outcome) Slowdown() float64 {
	if !o.Finished || o.Job.Runtime <= 0 {
		return 0
	}
	return o.ResponseTime() / o.Job.Runtime
}

// Collector accumulates outcomes for one simulation run.
type Collector struct {
	byJob map[*workload.Job]*Outcome
	order []*Outcome
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byJob: make(map[*workload.Job]*Outcome)}
}

// Submitted registers a job entering the service. It must be called once
// per job, before any other event for it.
func (c *Collector) Submitted(j *workload.Job) {
	if _, dup := c.byJob[j]; dup {
		panic(fmt.Sprintf("metrics: job %d submitted twice", j.ID))
	}
	o := &Outcome{Job: j}
	c.byJob[j] = o
	c.order = append(c.order, o)
}

func (c *Collector) must(j *workload.Job, op string) *Outcome {
	o := c.byJob[j]
	if o == nil {
		panic(fmt.Sprintf("metrics: %s for unsubmitted job %d", op, j.ID))
	}
	return o
}

// Accepted marks the job's SLA as accepted by the admission control.
func (c *Collector) Accepted(j *workload.Job) {
	o := c.must(j, "accept")
	if o.Rejected {
		panic(fmt.Sprintf("metrics: job %d accepted after rejection", j.ID))
	}
	o.Accepted = true
}

// Rejected marks the job as refused.
func (c *Collector) Rejected(j *workload.Job) {
	o := c.must(j, "reject")
	if o.Accepted {
		panic(fmt.Sprintf("metrics: job %d rejected after acceptance", j.ID))
	}
	o.Rejected = true
}

// Started records the job's execution start time.
func (c *Collector) Started(j *workload.Job, at float64) {
	o := c.must(j, "start")
	o.Started = true
	o.StartTime = at
}

// Finished records completion time and the provider's utility for the job.
func (c *Collector) Finished(j *workload.Job, at, utility float64) {
	o := c.must(j, "finish")
	if !o.Started {
		panic(fmt.Sprintf("metrics: job %d finished without starting", j.ID))
	}
	o.Finished = true
	o.FinishTime = at
	o.Utility = utility
}

// Killed records the provider terminating a started job at the given time
// with the given (usually zero) utility.
func (c *Collector) Killed(j *workload.Job, at, utility float64) {
	c.Finished(j, at, utility)
	c.byJob[j].Killed = true
}

// Abandoned records the provider writing off an accepted job that never
// started — stranded in the queue when node failures made its width or
// deadline unservable. It counts against reliability exactly like a killed
// job (accepted, SLA unfulfilled) but has no completion time.
func (c *Collector) Abandoned(j *workload.Job, at float64) {
	o := c.must(j, "abandon")
	if o.Started {
		panic(fmt.Sprintf("metrics: job %d abandoned after starting (use Killed)", j.ID))
	}
	if !o.Accepted {
		panic(fmt.Sprintf("metrics: job %d abandoned without acceptance (use Rejected)", j.ID))
	}
	o.Killed = true
	o.FinishTime = at
}

// Outcome returns the record for j, or nil if never submitted.
func (c *Collector) Outcome(j *workload.Job) *Outcome { return c.byJob[j] }

// Outcomes returns all records in submission order.
func (c *Collector) Outcomes() []*Outcome { return c.order }

// Report is the objective summary of one simulation run.
type Report struct {
	Submitted    int // m
	Accepted     int // n
	SLAFulfilled int // nSLA
	// Killed counts accepted jobs the provider terminated or abandoned —
	// under fault injection, the victims of node failures that were not
	// successfully restarted. Each one drags reliability below 100.
	Killed int
	// Finished counts jobs with a completion time (including killed jobs):
	// the denominator of the slowdown and response-time means, exposed so a
	// federation merge can reweight those means exactly.
	Finished int

	// The four objectives. Wait is in seconds; the rest are percentages.
	Wait          float64
	SLA           float64
	Reliability   float64
	Profitability float64

	// Extension metrics (Computation-at-Risk axes).
	MeanSlowdown     float64
	MeanResponseTime float64

	// TotalUtility and TotalBudget expose the profitability numerator and
	// denominator (utility can be negative under the bid-based model).
	TotalUtility float64
	TotalBudget  float64

	// Utilization is the machine's processor utilization over the run,
	// filled in by the simulation driver when the policy's cluster
	// reports it (0..1).
	Utilization float64
}

// Report computes the objectives over everything collected so far.
func (c *Collector) Report() Report {
	var r Report
	r.Submitted = len(c.order)
	var waitSum float64
	var slowSum, respSum float64
	finished := 0
	for _, o := range c.order {
		r.TotalBudget += o.Job.Budget
		if o.Accepted {
			r.Accepted++
			r.TotalUtility += o.Utility
		}
		if o.SLAFulfilled() {
			r.SLAFulfilled++
			waitSum += o.Wait()
		}
		if o.Killed {
			r.Killed++
		}
		if o.Finished {
			finished++
			slowSum += o.Slowdown()
			respSum += o.ResponseTime()
		}
	}
	r.Finished = finished
	if r.SLAFulfilled > 0 {
		r.Wait = waitSum / float64(r.SLAFulfilled)
	}
	if r.Submitted > 0 {
		r.SLA = float64(r.SLAFulfilled) / float64(r.Submitted) * 100
	}
	if r.Accepted > 0 {
		r.Reliability = float64(r.SLAFulfilled) / float64(r.Accepted) * 100
	}
	if r.TotalBudget > 0 {
		r.Profitability = r.TotalUtility / r.TotalBudget * 100
	}
	if finished > 0 {
		r.MeanSlowdown = slowSum / float64(finished)
		r.MeanResponseTime = respSum / float64(finished)
	}
	return r
}

// ObjectiveFocus maps each objective to its focus per Table I.
var ObjectiveFocus = map[string]string{
	"wait":          "user-centric",
	"SLA":           "user-centric",
	"reliability":   "user-centric",
	"profitability": "provider-centric",
}

// AverageReports returns the field-wise mean of several reports — the
// replication support of the experiment suite. Count fields are rounded to
// the nearest integer. Panics on an empty slice.
func AverageReports(reports []Report) Report {
	if len(reports) == 0 {
		panic("metrics: averaging no reports")
	}
	n := float64(len(reports))
	var out Report
	var submitted, accepted, fulfilled, killed, finished float64
	for _, r := range reports {
		submitted += float64(r.Submitted)
		accepted += float64(r.Accepted)
		fulfilled += float64(r.SLAFulfilled)
		killed += float64(r.Killed)
		finished += float64(r.Finished)
		out.Wait += r.Wait
		out.SLA += r.SLA
		out.Reliability += r.Reliability
		out.Profitability += r.Profitability
		out.MeanSlowdown += r.MeanSlowdown
		out.MeanResponseTime += r.MeanResponseTime
		out.TotalUtility += r.TotalUtility
		out.TotalBudget += r.TotalBudget
		out.Utilization += r.Utilization
	}
	out.Submitted = int(submitted/n + 0.5)
	out.Accepted = int(accepted/n + 0.5)
	out.SLAFulfilled = int(fulfilled/n + 0.5)
	out.Killed = int(killed/n + 0.5)
	out.Finished = int(finished/n + 0.5)
	out.Wait /= n
	out.SLA /= n
	out.Reliability /= n
	out.Profitability /= n
	out.MeanSlowdown /= n
	out.MeanResponseTime /= n
	out.TotalUtility /= n
	out.TotalBudget /= n
	out.Utilization /= n
	return out
}
