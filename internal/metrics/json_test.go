package metrics

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// TestReportJSONRoundTrip guards the contract the obs journal and the
// results.json files depend on: a Report survives a JSON round trip bit
// for bit, so a resumed run reproduces byte-identical output panels.
func TestReportJSONRoundTrip(t *testing.T) {
	in := Report{
		Submitted:        5000,
		Accepted:         4321,
		SLAFulfilled:     4000,
		Killed:           13,
		Finished:         4100,
		Wait:             1.0 / 3.0, // non-terminating binary fraction
		SLA:              80.0,
		Reliability:      100.0 * 4000.0 / 4321.0,
		Profitability:    math.Pi,
		MeanSlowdown:     math.Nextafter(1, 2), // smallest step above 1
		MeanResponseTime: 1e-300,               // subnormal-adjacent magnitude
		TotalUtility:     -17.25,               // bid-based utility can be negative
		TotalBudget:      11529712.97160133,
		Utilization:      0.8899470064203158,
	}

	// The fixture must exercise every field: a new Report field that is
	// left zero here would silently skip the round-trip check.
	v := reflect.ValueOf(in)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Fatalf("fixture leaves Report.%s zero; set it so the round trip covers it",
				v.Type().Field(i).Name)
		}
	}

	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("report changed across the JSON round trip:\n in  %+v\n out %+v", in, out)
	}

	// And a second encode is byte-stable (map-free struct, fixed order).
	data2, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("re-encoding is not byte-stable:\n %s\n %s", data, data2)
	}
}
