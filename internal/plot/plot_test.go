package plot

import (
	"strings"
	"testing"

	"repro/internal/risk"
)

func sample() []risk.Series { return risk.SamplePolicies() }

func TestASCIIContainsAxesAndLegend(t *testing.T) {
	out := ASCII(sample(), Config{Title: "Figure 1", XMax: 1.0})
	if !strings.Contains(out, "Figure 1") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "Volatility") {
		t.Error("x label missing")
	}
	for _, p := range []string{"A", "B", "C", "D", "E", "F", "G", "H"} {
		if !strings.Contains(out, " "+p+"\n") {
			t.Errorf("legend entry for %s missing", p)
		}
	}
	// Policy A's marker (first series, 'o') must land at the top-left
	// corner: performance 1, volatility 0.
	lines := strings.Split(out, "\n")
	var firstRow string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			firstRow = l
			break
		}
	}
	if !strings.Contains(firstRow, "o") {
		t.Errorf("ideal policy marker not on top row: %q", firstRow)
	}
	if idx := strings.Index(firstRow, "o"); idx != strings.Index(firstRow, "|")+1 {
		t.Errorf("ideal policy marker not at zero volatility: %q", firstRow)
	}
}

func TestASCIICollisionMarker(t *testing.T) {
	series := []risk.Series{
		{Policy: "p1", Points: []risk.Point{{Performance: 0.5, Volatility: 0.25}}},
		{Policy: "p2", Points: []risk.Point{{Performance: 0.5, Volatility: 0.25}}},
	}
	out := ASCII(series, Config{})
	if !strings.Contains(out, "?") {
		t.Error("colliding points of different policies not marked")
	}
}

func TestASCIIClampsOutOfRange(t *testing.T) {
	series := []risk.Series{
		{Policy: "wild", Points: []risk.Point{{Performance: 2.0, Volatility: 9.0}}},
	}
	out := ASCII(series, Config{}) // must not panic
	if out == "" {
		t.Error("empty plot")
	}
}

func TestSVGWellFormed(t *testing.T) {
	out := SVG(sample(), Config{Title: "Sample <plot> & more", XMax: 1.0, TrendLines: true})
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Error("not an SVG document")
	}
	if strings.Contains(out, "<plot>") {
		t.Error("title not XML-escaped")
	}
	if !strings.Contains(out, "&lt;plot&gt;") {
		t.Error("escaped title missing")
	}
	// 8 policies × 5 points + 8 legend dots = 48 circles.
	if got := strings.Count(out, "<circle"); got != 48 {
		t.Errorf("circle count = %d, want 48", got)
	}
	// Trend lines for every policy except A (identical points, but A still
	// has LinearFit failure -> no line) — at least some dashed lines.
	if !strings.Contains(out, "stroke-dasharray") {
		t.Error("no trend lines emitted")
	}
}

func TestSVGNoTrendLinesWhenDisabled(t *testing.T) {
	out := SVG(sample(), Config{XMax: 1.0})
	if strings.Contains(out, "stroke-dasharray") {
		t.Error("trend lines emitted despite TrendLines=false")
	}
}

func TestGnuplotData(t *testing.T) {
	out := GnuplotData(sample())
	if strings.Count(out, "# ") != 8 {
		t.Errorf("index comment count = %d, want 8", strings.Count(out, "# "))
	}
	if strings.Count(out, "\n\n\n") != 8 {
		t.Errorf("gnuplot index separators = %d, want 8", strings.Count(out, "\n\n\n"))
	}
	if !strings.Contains(out, "0.000000 1.000000") {
		t.Error("policy A's ideal point missing")
	}
}

func TestCSV(t *testing.T) {
	out := CSV(sample())
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "policy,scenario,volatility,performance" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 1+8*5 {
		t.Errorf("row count = %d, want 41", len(lines))
	}
}

func TestSummaryTable(t *testing.T) {
	out, err := SummaryTable(sample())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Policy", "A", "Decreasing", "Increasing", "NA", "Zero"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary table missing %q", want)
		}
	}
	if _, err := SummaryTable([]risk.Series{{Policy: "empty"}}); err == nil {
		t.Error("empty series summarized without error")
	}
}

func TestSortSeries(t *testing.T) {
	s := []risk.Series{{Policy: "b"}, {Policy: "a"}}
	SortSeries(s)
	if s[0].Policy != "a" {
		t.Error("SortSeries did not sort")
	}
}

func TestMarkerCycles(t *testing.T) {
	if Marker(0) == Marker(1) {
		t.Error("adjacent markers identical")
	}
	if Marker(0) != Marker(len("ox*+#@%&$~")) {
		t.Error("markers do not cycle")
	}
}

func TestCSVWithLabels(t *testing.T) {
	series := []risk.Series{{
		Policy: "Libra",
		Points: []risk.Point{{Performance: 0.9, Volatility: 0.1}, {Performance: 0.8, Volatility: 0.2}},
		Labels: []string{"workload", `odd,"label`},
	}}
	out := CSV(series)
	if !strings.Contains(out, "Libra,workload,0.100000,0.900000") {
		t.Errorf("labelled row missing:\n%s", out)
	}
	if !strings.Contains(out, `"odd,""label"`) {
		t.Errorf("label not CSV-quoted:\n%s", out)
	}
}

func TestGnuplotScript(t *testing.T) {
	out := GnuplotScript(sample(), "plot.dat", Config{Title: "Fig", XMax: 1.0})
	for _, want := range []string{
		`set title "Fig"`,
		"set xrange [0:1]",
		`"plot.dat" index 0 title "A"`,
		`index 7 title "H"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("script missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "index") != 8 {
		t.Errorf("index count = %d, want 8", strings.Count(out, "index"))
	}
}
