// Package plot renders risk analysis plots — performance (y) against
// volatility (x), one marker per (policy, scenario) point, optional least
// squares trend lines — in the formats the repository's tools emit: ASCII
// for terminals, SVG for documents, and gnuplot/CSV data for external
// toolchains (the paper's figures are gnuplot scatter plots).
package plot
