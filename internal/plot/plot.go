package plot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/risk"
	"repro/internal/stats"
)

// Config parameterizes a plot.
type Config struct {
	Title string
	// XMax bounds the volatility axis; the paper uses 0.5 (the maximum
	// possible standard deviation of [0,1] data). YMax bounds performance
	// (1.0). Zero values take these defaults.
	XMax, YMax float64
	// Width and Height are the ASCII canvas size in characters (default
	// 61×21, giving ticks every 0.1/0.05).
	Width, Height int
	// TrendLines adds least-squares trend lines (SVG only).
	TrendLines bool
}

func (c Config) withDefaults() Config {
	if c.XMax <= 0 {
		c.XMax = 0.5
	}
	if c.YMax <= 0 {
		c.YMax = 1.0
	}
	if c.Width <= 0 {
		c.Width = 61
	}
	if c.Height <= 0 {
		c.Height = 21
	}
	return c
}

// markers are the per-series glyphs, in series order.
var markers = []rune{'o', 'x', '*', '+', '#', '@', '%', '&', '$', '~'}

// Marker returns the glyph used for series i.
func Marker(i int) rune { return markers[i%len(markers)] }

// ASCII renders the plot as a terminal-friendly string: a bordered canvas,
// y axis from 0 to YMax, x axis from 0 to XMax, and a legend. Points
// outside the axes are clamped onto the border.
func ASCII(series []risk.Series, cfg Config) string {
	cfg = cfg.withDefaults()
	w, h := cfg.Width, cfg.Height
	grid := make([][]rune, h)
	for y := range grid {
		grid[y] = make([]rune, w)
		for x := range grid[y] {
			grid[y][x] = ' '
		}
	}
	plotPoint := func(p risk.Point, m rune) {
		x := int(stats.Clamp(p.Volatility/cfg.XMax, 0, 1) * float64(w-1))
		y := int(stats.Clamp(p.Performance/cfg.YMax, 0, 1) * float64(h-1))
		row := h - 1 - y
		if grid[row][x] != ' ' && grid[row][x] != m {
			grid[row][x] = '?' // collision of different policies
			return
		}
		grid[row][x] = m
	}
	for i, s := range series {
		for _, p := range s.Points {
			plotPoint(p, Marker(i))
		}
	}
	var b strings.Builder
	if cfg.Title != "" {
		fmt.Fprintf(&b, "%s\n", cfg.Title)
	}
	fmt.Fprintf(&b, "%4.2f +%s+\n", cfg.YMax, strings.Repeat("-", w))
	for y := 0; y < h; y++ {
		label := "     "
		if y == h/2 {
			label = fmt.Sprintf("%4.2f ", cfg.YMax/2)
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, string(grid[y]))
	}
	fmt.Fprintf(&b, "%4.2f +%s+\n", 0.0, strings.Repeat("-", w))
	fmt.Fprintf(&b, "     0%sVolatility%s%.2f\n",
		strings.Repeat(" ", (w-10)/2), strings.Repeat(" ", w-10-(w-10)/2-4), cfg.XMax)
	for i, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", Marker(i), s.Policy)
	}
	return b.String()
}

// svgPalette gives each series a distinct stroke.
var svgPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#e377c2", "#7f7f7f", "#bcbd22",
}

// SVG renders the plot as a standalone SVG document with axes, points, and
// (optionally) trend lines.
func SVG(series []risk.Series, cfg Config) string {
	cfg = cfg.withDefaults()
	const (
		width, height = 480, 360
		left, right   = 60, 20
		top, bottom   = 36, 48
	)
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)
	xOf := func(v float64) float64 { return float64(left) + stats.Clamp(v/cfg.XMax, 0, 1)*plotW }
	yOf := func(p float64) float64 { return float64(top) + (1-stats.Clamp(p/cfg.YMax, 0, 1))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if cfg.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="18" text-anchor="middle" font-size="13">%s</text>`+"\n", width/2, escapeXML(cfg.Title))
	}
	// Axes and ticks.
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="black"/>`+"\n", left, top, plotW, plotH)
	for i := 0; i <= 5; i++ {
		xv := cfg.XMax * float64(i) / 5
		yv := cfg.YMax * float64(i) / 5
		fmt.Fprintf(&b, `<text x="%.0f" y="%d" text-anchor="middle">%.1f</text>`+"\n", xOf(xv), height-bottom+16, xv)
		fmt.Fprintf(&b, `<text x="%d" y="%.0f" text-anchor="end">%.1f</text>`+"\n", left-6, yOf(yv)+4, yv)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">Volatility (Standard Deviation)</text>`+"\n", left+int(plotW)/2, height-12)
	fmt.Fprintf(&b, `<text x="14" y="%d" transform="rotate(-90 14 %d)" text-anchor="middle">Performance</text>`+"\n", top+int(plotH)/2, top+int(plotH)/2)

	for i, s := range series {
		color := svgPalette[i%len(svgPalette)]
		if cfg.TrendLines {
			if x0, y0, x1, y1, ok := trendSegment(s, cfg); ok {
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-dasharray="4 3" opacity="0.6"/>`+"\n",
					xOf(x0), yOf(y0), xOf(x1), yOf(y1), color)
			}
		}
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s" opacity="0.85"/>`+"\n", xOf(p.Volatility), yOf(p.Performance), color)
		}
		// Legend.
		lx, ly := width-140, top+14+16*i
		fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="3.5" fill="%s"/>`+"\n", lx, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", lx+8, ly+4, escapeXML(s.Policy))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// trendSegment fits the series' trend line and clips it to the observed
// volatility range.
func trendSegment(s risk.Series, cfg Config) (x0, y0, x1, y1 float64, ok bool) {
	if len(s.Points) < 2 {
		return 0, 0, 0, 0, false
	}
	xs := make([]float64, len(s.Points))
	ys := make([]float64, len(s.Points))
	for i, p := range s.Points {
		xs[i] = p.Volatility
		ys[i] = p.Performance
	}
	slope, intercept, fit := stats.LinearFit(xs, ys)
	if !fit {
		return 0, 0, 0, 0, false
	}
	lo, hi := stats.MinMax(xs)
	return lo, slope*lo + intercept, hi, slope*hi + intercept, true
}

// GnuplotData emits the series as gnuplot-ready blocks: one index per
// policy, "volatility performance" rows, matching how the paper's figures
// are drawn.
func GnuplotData(series []risk.Series) string {
	var b strings.Builder
	for _, s := range series {
		fmt.Fprintf(&b, "# %s\n", s.Policy)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%.6f %.6f\n", p.Volatility, p.Performance)
		}
		b.WriteString("\n\n")
	}
	return b.String()
}

// CSV emits the series as policy,scenario,volatility,performance rows with
// a header; the scenario column carries the label when the series has one
// and the point index otherwise. Labels containing commas are quoted.
func CSV(series []risk.Series) string {
	var b strings.Builder
	b.WriteString("policy,scenario,volatility,performance\n")
	for _, s := range series {
		for i, p := range s.Points {
			label := s.Label(i)
			if strings.ContainsAny(label, ",\"") {
				label = `"` + strings.ReplaceAll(label, `"`, `""`) + `"`
			}
			fmt.Fprintf(&b, "%s,%s,%.6f,%.6f\n", s.Policy, label, p.Volatility, p.Performance)
		}
	}
	return b.String()
}

// SummaryTable formats Table II-style summaries for the series, sorted as
// given.
func SummaryTable(series []risk.Series) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %8s %8s %12s\n",
		"Policy", "MaxPerf", "MinPerf", "PerfDiff", "MaxVol", "MinVol", "VolDiff", "Gradient")
	for _, s := range series {
		sum, err := risk.Summarize(s)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-12s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %12s\n",
			s.Policy, sum.MaxPerformance, sum.MinPerformance, sum.PerformanceDifference,
			sum.MaxVolatility, sum.MinVolatility, sum.VolatilityDifference, risk.TrendGradient(s))
	}
	return b.String(), nil
}

// SortSeries orders series by policy name for stable output.
func SortSeries(series []risk.Series) {
	sort.Slice(series, func(i, j int) bool { return series[i].Policy < series[j].Policy })
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// GnuplotScript emits a runnable gnuplot script that renders the series
// from a data file previously written with GnuplotData — the toolchain the
// paper's own figures use. Run as: gnuplot -persist plot.gp
func GnuplotScript(series []risk.Series, dataFile string, cfg Config) string {
	cfg = cfg.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "set title %q\n", cfg.Title)
	b.WriteString("set xlabel 'Volatility (Standard Deviation)'\n")
	b.WriteString("set ylabel 'Performance'\n")
	fmt.Fprintf(&b, "set xrange [0:%g]\nset yrange [0:%g]\n", cfg.XMax, cfg.YMax)
	b.WriteString("set key outside right\n")
	b.WriteString("plot \\\n")
	for i, s := range series {
		sep := ", \\\n"
		if i == len(series)-1 {
			sep = "\n"
		}
		fmt.Fprintf(&b, "  %q index %d title %q with points pointtype %d%s",
			dataFile, i, s.Policy, i+1, sep)
	}
	return b.String()
}
