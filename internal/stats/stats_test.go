package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := StdDev([]float64{3}); got != 0 {
		t.Errorf("StdDev of one sample = %v, want 0", got)
	}
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev of nil = %v, want 0", got)
	}
	if got := StdDev([]float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("StdDev of constant = %v, want 0", got)
	}
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
			// keep values bounded so E[x^2] doesn't overflow
			raw[i] = math.Mod(raw[i], 1e6)
		}
		return StdDev(raw) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -2, 7, 0})
	if lo != -2 || hi != 7 {
		t.Errorf("MinMax = (%v, %v), want (-2, 7)", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("MinMax(empty) did not panic")
		}
	}()
	MinMax(nil)
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestLinearFit(t *testing.T) {
	// y = 2x + 1 exactly.
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7}
	slope, intercept, ok := LinearFit(x, y)
	if !ok || !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 1, 1e-12) {
		t.Errorf("LinearFit = (%v, %v, %v), want (2, 1, true)", slope, intercept, ok)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, _, ok := LinearFit([]float64{1}, []float64{2}); ok {
		t.Error("LinearFit with one point reported ok")
	}
	if _, _, ok := LinearFit([]float64{2, 2, 2}, []float64{1, 5, 9}); ok {
		t.Error("LinearFit with constant x reported ok")
	}
	if _, _, ok := LinearFit([]float64{1, 2}, []float64{1}); ok {
		t.Error("LinearFit with mismatched lengths reported ok")
	}
}

func TestNormalMoments(t *testing.T) {
	rng := NewRand(1)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Normal(rng, 10, 3)
	}
	if m := Mean(xs); !almostEqual(m, 10, 0.05) {
		t.Errorf("Normal mean = %v, want ~10", m)
	}
	if s := StdDev(xs); !almostEqual(s, 3, 0.05) {
		t.Errorf("Normal stddev = %v, want ~3", s)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	rng := NewRand(2)
	for i := 0; i < 10000; i++ {
		v := TruncNormal(rng, 5, 10, 1, 6)
		if v < 1 || v > 6 {
			t.Fatalf("TruncNormal out of bounds: %v", v)
		}
	}
}

func TestTruncNormalDegenerateInterval(t *testing.T) {
	rng := NewRand(3)
	// Mean far outside a tiny interval: must terminate and clamp.
	v := TruncNormal(rng, 100, 0.001, 1, 1.000001)
	if v < 1 || v > 1.000001 {
		t.Errorf("TruncNormal degenerate = %v, want within [1, 1.000001]", v)
	}
}

func TestTruncNormalPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TruncNormal(lo>hi) did not panic")
		}
	}()
	TruncNormal(NewRand(1), 0, 1, 5, 1)
}

func TestLogNormalFromMeanCV(t *testing.T) {
	rng := NewRand(4)
	const n = 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = LogNormalFromMeanCV(rng, 8671, 1.5)
	}
	m := Mean(xs)
	if math.Abs(m-8671)/8671 > 0.03 {
		t.Errorf("LogNormalFromMeanCV mean = %v, want ~8671", m)
	}
	for _, x := range xs[:1000] {
		if x <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", x)
		}
	}
}

func TestLogNormalFromMeanCVPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("LogNormalFromMeanCV(mean<=0) did not panic")
		}
	}()
	LogNormalFromMeanCV(NewRand(1), 0, 1)
}

func TestExponentialMean(t *testing.T) {
	rng := NewRand(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Exponential(rng, 1969)
	}
	m := sum / n
	if math.Abs(m-1969)/1969 > 0.03 {
		t.Errorf("Exponential mean = %v, want ~1969", m)
	}
}

func TestChoiceProbability(t *testing.T) {
	rng := NewRand(6)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if Choice(rng, 0.2) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.2) > 0.01 {
		t.Errorf("Choice(0.2) hit rate = %v", p)
	}
}

func TestWeightedIndex(t *testing.T) {
	rng := NewRand(7)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[WeightedIndex(rng, weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index selected %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedIndexPanics(t *testing.T) {
	for name, w := range map[string][]float64{
		"negative": {1, -1},
		"allZero":  {0, 0},
	} {
		w := w
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("WeightedIndex(%v) did not panic", w)
				}
			}()
			WeightedIndex(NewRand(1), w)
		})
	}
}

func TestDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 1000; i++ {
		if Normal(a, 0, 1) != Normal(b, 0, 1) {
			t.Fatal("same seed diverged")
		}
	}
}

func TestWeibullMomentsAndShape(t *testing.T) {
	rng := NewRand(11)
	// Shape 1 is exponential: mean equals scale.
	sum := 0.0
	n := 50000
	for i := 0; i < n; i++ {
		sum += Weibull(rng, 1, 300)
	}
	if mean := sum / float64(n); math.Abs(mean-300) > 10 {
		t.Errorf("Weibull(k=1, λ=300) mean = %v, want ~300", mean)
	}
	// WeibullFromMean hits the requested mean for non-trivial shapes.
	for _, shape := range []float64{0.7, 2.0} {
		sum = 0
		for i := 0; i < n; i++ {
			v := WeibullFromMean(rng, shape, 1000)
			if v < 0 {
				t.Fatalf("negative Weibull draw %v", v)
			}
			sum += v
		}
		if mean := sum / float64(n); math.Abs(mean-1000)/1000 > 0.05 {
			t.Errorf("WeibullFromMean(k=%v) mean = %v, want ~1000", shape, mean)
		}
	}
}

func TestWeibullPanicsOnBadParams(t *testing.T) {
	for name, fn := range map[string]func(){
		"zeroShape": func() { Weibull(NewRand(1), 0, 1) },
		"zeroScale": func() { Weibull(NewRand(1), 1, 0) },
		"zeroMean":  func() { WeibullFromMean(NewRand(1), 1, 0) },
	} {
		fn := fn
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		})
	}
}
