package stats

import "math"

// Welford is an online mean/variance accumulator (Welford 1962). One pass,
// O(1) state, numerically stable — the streaming counterpart of Mean/StdDev
// for contexts that cannot hold the sample slice, such as the sliding risk
// windows in internal/streamrisk.
//
// Welford's recurrence is not bit-identical to the two-pass StdDev above:
// the update order differs, so the last ulp can differ. Code that must match
// the offline computation exactly (the cumulative stream-risk scores) uses
// risk.ScoreSums instead, which replays StdDev's exact operation order.
//
// The zero value is an empty accumulator, ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of samples folded in.
func (w Welford) Count() int64 { return w.n }

// Mean returns the running mean, or 0 with no samples.
func (w Welford) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	return w.mean
}

// Variance returns the running population variance, or 0 for fewer than two
// samples (matching StdDev's convention).
func (w Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	v := w.m2 / float64(w.n)
	if v < 0 { // floating point guard
		v = 0
	}
	return v
}

// StdDev returns the running population standard deviation.
func (w Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
