// Package stats provides the seeded random distributions and summary
// statistics used by the workload generator, QoS synthesizer, and risk
// analysis. All randomness flows through an explicitly seeded *rand.Rand so
// every simulation in this repository is reproducible.
package stats
