package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelfordMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.Float64()
			w.Add(xs[i])
		}
		if w.Count() != int64(n) {
			t.Fatalf("trial %d: Count = %d, want %d", trial, w.Count(), n)
		}
		if got, want := w.Mean(), Mean(xs); math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: Mean = %v, want %v", trial, got, want)
		}
		if got, want := w.StdDev(), StdDev(xs); math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: StdDev = %v, want %v", trial, got, want)
		}
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 {
		t.Fatalf("zero-value Welford not zero: %+v", w)
	}
	w.Add(0.25)
	if got := w.Mean(); got != 0.25 {
		t.Fatalf("Mean after one sample = %v, want 0.25", got)
	}
	if got := w.StdDev(); got != 0 {
		t.Fatalf("StdDev after one sample = %v, want 0 (population convention)", got)
	}
}

func TestWelfordStableOnShiftedData(t *testing.T) {
	// The classic catastrophic-cancellation case for the naive sum-of-squares
	// form: tiny variance around a huge mean. Welford must stay accurate.
	var w Welford
	base := 1e9
	for i := 0; i < 1000; i++ {
		w.Add(base + float64(i%2)) // alternates base, base+1
	}
	if got, want := w.Variance(), 0.25; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
}

func TestWelfordNegativeVarianceGuard(t *testing.T) {
	// Identical samples can leave m2 at a tiny negative residue; Variance
	// must clamp rather than hand NaN to Sqrt.
	var w Welford
	for i := 0; i < 10; i++ {
		w.Add(0.1)
	}
	if v := w.Variance(); v < 0 || math.IsNaN(v) {
		t.Fatalf("Variance = %v, want >= 0", v)
	}
	if s := w.StdDev(); math.IsNaN(s) {
		t.Fatalf("StdDev = NaN")
	}
}
