package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Rng aliases math/rand.Rand so dependent packages name their PRNG through
// this package and stay on the explicitly seeded path.
type Rng = rand.Rand

// NewRand returns a deterministic PRNG for the given seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Normal samples N(mean, stddev²).
func Normal(rng *rand.Rand, mean, stddev float64) float64 {
	return mean + stddev*rng.NormFloat64()
}

// TruncNormal samples N(mean, stddev²) truncated to [lo, hi] by resampling
// (falling back to clamping after a bounded number of attempts, so a
// degenerate interval cannot loop forever).
func TruncNormal(rng *rand.Rand, mean, stddev, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("stats: TruncNormal lo %v > hi %v", lo, hi))
	}
	for i := 0; i < 64; i++ {
		v := Normal(rng, mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mean))
}

// LogNormal samples a log-normal with the given parameters of the underlying
// normal (mu, sigma).
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(Normal(rng, mu, sigma))
}

// LogNormalFromMeanCV derives (mu, sigma) so the log-normal itself has the
// given mean and coefficient of variation, then samples it. Handy for
// calibrating the synthetic trace to published trace means.
func LogNormalFromMeanCV(rng *rand.Rand, mean, cv float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: LogNormalFromMeanCV mean %v <= 0", mean))
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return LogNormal(rng, mu, math.Sqrt(sigma2))
}

// Exponential samples an exponential distribution with the given mean.
func Exponential(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// Weibull samples a Weibull distribution with the given shape k and scale λ
// by inverse-CDF: λ·(−ln(1−U))^(1/k). Shape 1 recovers the exponential;
// shape < 1 gives a decreasing hazard (bursty failures), shape > 1 an
// increasing hazard (wear-out). The failure model draws its inter-failure
// and repair times from this.
func Weibull(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic(fmt.Sprintf("stats: Weibull shape %v / scale %v must be positive", shape, scale))
	}
	// 1−U ∈ (0,1] for U ∈ [0,1), so the log argument is never zero.
	return scale * math.Pow(-math.Log(1-rng.Float64()), 1/shape)
}

// WeibullFromMean derives the scale so the Weibull with the given shape has
// the given mean (mean = scale·Γ(1+1/k)), then samples it. The failure
// model is calibrated by mean time between failures / to repair, which this
// converts to the distribution's natural parameter.
func WeibullFromMean(rng *rand.Rand, shape, mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("stats: WeibullFromMean mean %v <= 0", mean))
	}
	return Weibull(rng, shape, mean/math.Gamma(1+1/shape))
}

// Choice returns true with probability p.
func Choice(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// WeightedIndex picks an index proportionally to weights. Weights must be
// non-negative and not all zero.
func WeightedIndex(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		total += w
	}
	if total == 0 { //lint:allow floateq — exact-zero guard: a sum of non-negative weights is 0 iff all are 0
		panic("stats: all weights zero")
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}
