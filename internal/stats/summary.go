package stats

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs (the paper's
// volatility measure, Eq. 6: sqrt(E[x²] − E[x]²)), or 0 for fewer than two
// samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sq := 0.0
	for _, x := range xs {
		sq += x * x
	}
	v := sq/float64(len(xs)) - m*m
	if v < 0 { // floating point guard
		v = 0
	}
	return math.Sqrt(v)
}

// MinMax returns the minimum and maximum of xs. It panics on an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// LinearFit returns the least-squares slope and intercept of y against x.
// With fewer than two distinct x values the slope is reported as 0 and ok is
// false (the paper's "no trend line" case).
func LinearFit(x, y []float64) (slope, intercept float64, ok bool) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, false
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 { //lint:allow floateq — exact-zero guard: sum of squares is 0 iff every x equals the mean
		return 0, 0, false
	}
	slope = sxy / sxx
	return slope, my - slope*mx, true
}
