package experiment

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

// SuiteConfig parameterizes one full evaluation suite: one economic model,
// one estimate-inaccuracy Set, all twelve scenarios, all policies of the
// model.
type SuiteConfig struct {
	// Model selects the economic model (and with it the five policies of
	// Table V evaluated under it).
	Model economy.Model
	// SetB selects the trace-estimate Set (inaccuracy default 100%);
	// otherwise Set A (0%).
	SetB bool
	// Jobs is the trace length (the paper uses 5000).
	Jobs int
	// Nodes is the machine size (the paper uses 128).
	Nodes int
	// TraceSeed and QoSSeed drive the synthetic trace and the QoS draws.
	TraceSeed, QoSSeed int64
	// Replications averages each cell over this many independently seeded
	// trace/QoS draws (seed + 1000·r). 0 or 1 runs a single replication,
	// matching the paper's single-trace methodology.
	Replications int
	// Workers bounds the simulation worker pool; 0 means GOMAXPROCS.
	Workers int
	// ScenarioFilter, when non-empty, restricts the suite to the named
	// Table VI scenarios (useful for iterating on one dimension).
	ScenarioFilter []string
	// PolicyFilter, when non-empty, restricts the suite to the named
	// policies (they must still belong to the model's Table V column).
	PolicyFilter []string
	// FaultIntensity selects the failure-intensity axis (none/low/high):
	// a deterministic node failure/repair process injected into every cell,
	// scaled to the workload's observation horizon. Empty means none — the
	// paper's original never-failing machine.
	FaultIntensity faults.Intensity
	// FaultSeed drives the failure process draws (varied per replication by
	// +1000·r, like the trace and QoS seeds). Independent of TraceSeed so
	// the same workload can be replayed under different failure histories.
	FaultSeed int64
	// Synth optionally overrides the trace generator configuration (Jobs
	// still wins for the job count); nil uses the SDSC SP2 calibration.
	Synth *workload.SynthConfig
	// Trace optionally supplies a real trace (e.g. parsed from an SWF
	// file); it overrides synthetic generation entirely.
	Trace []*workload.Job
	// Observer receives suite progress events (see obs.Reporter): suite
	// start, each cell's start and completion, and suite end. Cell events
	// fire concurrently from the worker pool. nil means no observation.
	Observer obs.Reporter
	// Resume maps cell keys to records of a prior run, typically loaded
	// with obs.LoadJournal. Cells whose CellKey is present are not
	// simulated: the journaled report is used verbatim (it round-trips
	// bit for bit), and the cell is reported as Resumed. Keys cover the
	// full parameterization, so a config change invalidates exactly the
	// cells it affects.
	Resume map[string]obs.Record
}

// DefaultSuiteConfig returns the paper-scale configuration.
func DefaultSuiteConfig(model economy.Model, setB bool) SuiteConfig {
	return SuiteConfig{
		Model:     model,
		SetB:      setB,
		Jobs:      5000,
		Nodes:     128,
		TraceSeed: 1,
		QoSSeed:   2,
	}
}

// SetName returns "Set A" or "Set B".
func (c SuiteConfig) SetName() string {
	if c.SetB {
		return "Set B"
	}
	return "Set A"
}

func (c SuiteConfig) inaccuracyDefault() float64 {
	if c.SetB {
		return 100
	}
	return 0
}

// CellKey returns the deterministic identity of one (scenario, value,
// policy) cell under this configuration: an FNV-1a hash over the model,
// Set, scenario, value, policy, trace length, machine size, both seeds,
// the replication count, and the workload fingerprint. Two cells share a
// key exactly when they would run byte-identical simulations, which is
// what makes journal records safe to reuse across runs (checkpoint /
// resume) and stale after any config change.
func (c SuiteConfig) CellKey(scenario string, value float64, policy string) string {
	reps := c.Replications
	if reps < 1 {
		reps = 1 // 0 and 1 both mean a single replication
	}
	return obs.Key(
		c.Model.String(),
		c.SetName(),
		scenario,
		strconv.FormatFloat(value, 'g', -1, 64),
		policy,
		strconv.Itoa(c.Jobs),
		strconv.Itoa(c.Nodes),
		strconv.FormatInt(c.TraceSeed, 10),
		strconv.FormatInt(c.QoSSeed, 10),
		strconv.Itoa(reps),
		c.workloadFingerprint(),
		c.FaultIntensity.String(),
		strconv.FormatInt(c.FaultSeed, 10),
	)
}

// workloadFingerprint identifies the workload source. A synthetic trace
// is fully determined by its generator calibration (plus Jobs and
// TraceSeed, hashed separately); an external trace is identified by its
// job count and span — callers resuming across runs must supply the same
// file, which SWF parsing makes deterministic.
func (c SuiteConfig) workloadFingerprint() string {
	if c.Trace != nil {
		first, last := 0, 0
		if n := len(c.Trace); n > 0 {
			first, last = c.Trace[0].ID, c.Trace[n-1].ID
		}
		return fmt.Sprintf("trace|%d|%d|%d", len(c.Trace), first, last)
	}
	s := workload.DefaultSynthConfig()
	if c.Synth != nil {
		s = *c.Synth
	}
	s.Jobs = c.Jobs
	return fmt.Sprintf("synth|%d|%g|%g|%g|%g|%v|%v|%g|%g|%g",
		s.Jobs, s.MeanInterArrival, s.MeanRuntime, s.RuntimeCV, s.MaxRuntime,
		s.Widths, s.WidthWeights,
		s.UnderEstimateFrac, s.MinOverAccuracy, s.EstimateRounding)
}

// ScenarioResult holds one scenario's reports: Reports[valueIdx][policy].
type ScenarioResult struct {
	Name    string
	Values  []float64
	Reports []map[string]metrics.Report
}

// Results is the raw output of a suite: every report of every cell, plus
// the identifiers needed to label plots.
type Results struct {
	Model     economy.Model
	SetName   string
	Policies  []string
	Scenarios []ScenarioResult
}

// Cells returns the number of (scenario, value, policy) cells — i.e. the
// number of averaged simulations the suite comprises. Unlike the nominal
// 12 × 6 × 5 grid, this respects scenario filters and per-scenario value
// counts.
func (r *Results) Cells() int {
	n := 0
	for _, sc := range r.Scenarios {
		n += len(sc.Values) * len(r.Policies)
	}
	return n
}

// Run executes the suite: |scenarios| × 6 values × 5 policies simulations,
// fanned out over a worker pool. The same base trace and QoS seeds are used
// for every cell, so policies within a cell see byte-identical workloads.
func Run(cfg SuiteConfig) (*Results, error) {
	if cfg.Jobs <= 0 && cfg.Trace == nil {
		return nil, fmt.Errorf("experiment: non-positive job count %d", cfg.Jobs)
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("experiment: non-positive node count %d", cfg.Nodes)
	}
	base := cfg.Trace
	if base == nil {
		synth := workload.DefaultSynthConfig()
		if cfg.Synth != nil {
			synth = *cfg.Synth
		}
		synth.Jobs = cfg.Jobs
		var err error
		base, err = workload.Generate(synth, cfg.TraceSeed)
		if err != nil {
			return nil, err
		}
	}
	if _, err := faults.ParseIntensity(string(cfg.FaultIntensity)); err != nil {
		return nil, err
	}
	cache := newTraceCache(cfg, base)
	specs := scheduler.ForModel(cfg.Model)
	if len(cfg.PolicyFilter) > 0 {
		wanted := make(map[string]bool, len(cfg.PolicyFilter))
		for _, name := range cfg.PolicyFilter {
			wanted[name] = true
		}
		filtered := specs[:0]
		for _, s := range specs {
			if wanted[s.Name] {
				filtered = append(filtered, s)
				delete(wanted, s.Name)
			}
		}
		for _, name := range cfg.PolicyFilter {
			if wanted[name] {
				return nil, fmt.Errorf("experiment: policy %q not in the %s column", name, cfg.Model)
			}
		}
		specs = filtered
	}
	scenarios := Scenarios()
	if len(cfg.ScenarioFilter) > 0 {
		wanted := make(map[string]bool, len(cfg.ScenarioFilter))
		for _, name := range cfg.ScenarioFilter {
			if _, ok := ScenarioByName(name); !ok {
				return nil, fmt.Errorf("experiment: unknown scenario %q in filter", name)
			}
			wanted[name] = true
		}
		filtered := scenarios[:0]
		for _, sc := range scenarios {
			if wanted[sc.Name] {
				filtered = append(filtered, sc)
			}
		}
		scenarios = filtered
	}

	res := &Results{Model: cfg.Model, SetName: cfg.SetName()}
	for _, s := range specs {
		res.Policies = append(res.Policies, s.Name)
	}
	res.Scenarios = make([]ScenarioResult, len(scenarios))
	for si, sc := range scenarios {
		res.Scenarios[si] = ScenarioResult{
			Name:    sc.Name,
			Values:  append([]float64(nil), sc.Values...),
			Reports: make([]map[string]metrics.Report, len(sc.Values)),
		}
		for vi := range sc.Values {
			res.Scenarios[si].Reports[vi] = make(map[string]metrics.Report, len(specs))
		}
	}

	observer := cfg.Observer
	if observer == nil {
		observer = obs.Nop{}
	}
	reps := cfg.Replications
	if reps < 1 {
		reps = 1
	}

	type task struct {
		si, vi, pi int
		cell       obs.Cell
	}
	type outcome struct {
		task
		report metrics.Report
		wall   time.Duration
		err    error
	}
	// Split the grid into resumed cells (their journaled report is reused
	// verbatim) and pending tasks for the worker pool.
	var tasks []task
	var resumed []obs.Record
	total := 0
	for si, sc := range scenarios {
		for vi, value := range sc.Values {
			for pi, spec := range specs {
				total++
				cell := obs.Cell{
					Key:        cfg.CellKey(sc.Name, value, spec.Name),
					Model:      cfg.Model.String(),
					Set:        cfg.SetName(),
					Scenario:   sc.Name,
					ValueIndex: vi,
					Value:      value,
					Policy:     spec.Name,
				}
				if rec, ok := cfg.Resume[cell.Key]; ok {
					res.Scenarios[si].Reports[vi][spec.Name] = rec.Report
					resumed = append(resumed, obs.Record{
						Cell: cell, Replications: reps, Resumed: true, Report: rec.Report,
					})
					continue
				}
				tasks = append(tasks, task{si, vi, pi, cell})
			}
		}
	}

	suite := obs.Suite{Model: cfg.Model.String(), Set: cfg.SetName(), Cells: total, Resumed: len(resumed)}
	suiteStart := time.Now() //lint:allow wallclock — suite wall-time accounting for obs.Summary, not simulation time
	observer.SuiteStart(suite)
	for _, rec := range resumed {
		observer.CellDone(rec)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	taskCh := make(chan task)
	outCh := make(chan outcome)
	for w := 0; w < workers; w++ {
		go func() {
			for tk := range taskCh {
				observer.CellStart(tk.cell)
				start := time.Now() //lint:allow wallclock — per-cell wall-time accounting for the journal, not simulation time
				rep, err := runCell(cfg, cache, base, scenarios[tk.si], scenarios[tk.si].Values[tk.vi], specs[tk.pi])
				wall := time.Since(start) //lint:allow wallclock — per-cell wall-time accounting for the journal, not simulation time
				outCh <- outcome{task: tk, report: rep, wall: wall, err: err}
			}
		}()
	}
	go func() {
		for _, tk := range tasks {
			taskCh <- tk
		}
		close(taskCh)
	}()

	var firstErr error
	executed := 0
	for range tasks {
		o := <-outCh
		if o.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiment: %s/%s[%d]/%s: %w",
					cfg.SetName(), scenarios[o.si].Name, o.vi, specs[o.pi].Name, o.err)
			}
			continue
		}
		res.Scenarios[o.si].Reports[o.vi][specs[o.pi].Name] = o.report
		executed++
		observer.CellDone(obs.Record{
			Cell:         o.cell,
			Replications: reps,
			WallSeconds:  o.wall.Seconds(),
			Report:       o.report,
		})
	}
	elapsed := time.Since(suiteStart) //lint:allow wallclock — suite wall-time accounting for obs.Summary, not simulation time
	observer.SuiteDone(obs.Summary{Suite: suite, Executed: executed, Elapsed: elapsed})
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// traceCache memoizes generated traces by replication seed, shared across
// every cell of a suite run. Every cell at replication r draws the same
// trace (seed TraceSeed+1000·r), so without the cache the generator runs
// |cells|×(reps−1) times for reps distinct traces. workload.Generate is
// pure — same config and seed give the same jobs — so handing out the
// cached slice is exact; callers clone before mutating (runCell always
// does, via workload.CloneAll).
type traceCache struct {
	synth workload.SynthConfig
	mu    sync.Mutex
	byTag map[int64][]*workload.Job
}

// newTraceCache builds the cache for cfg's synthetic generator, pre-seeding
// the replication-0 trace that Run has already generated.
func newTraceCache(cfg SuiteConfig, base []*workload.Job) *traceCache {
	synth := workload.DefaultSynthConfig()
	if cfg.Synth != nil {
		synth = *cfg.Synth
	}
	synth.Jobs = cfg.Jobs
	c := &traceCache{synth: synth, byTag: make(map[int64][]*workload.Job)}
	if cfg.Trace == nil && base != nil {
		c.byTag[cfg.TraceSeed] = base
	}
	return c
}

// get returns the trace for a seed, generating it on first use. Safe for
// concurrent use from the suite worker pool.
func (c *traceCache) get(seed int64) ([]*workload.Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t, ok := c.byTag[seed]; ok {
		return t, nil
	}
	t, err := workload.Generate(c.synth, seed)
	if err != nil {
		return nil, err
	}
	c.byTag[seed] = t
	return t, nil
}

// runCell prepares the workload for one (scenario, value) cell and runs it
// under one policy, averaging over the configured replications. base is
// the replication-0 trace; further replications draw theirs through the
// shared cache.
func runCell(cfg SuiteConfig, cache *traceCache, base []*workload.Job, sc Scenario, value float64, spec scheduler.Spec) (metrics.Report, error) {
	p := DefaultParams(cfg.inaccuracyDefault())
	sc.Apply(&p, value)
	if err := p.Validate(); err != nil {
		return metrics.Report{}, err
	}
	reps := cfg.Replications
	if reps < 1 {
		reps = 1
	}
	reports := make([]metrics.Report, 0, reps)
	for r := 0; r < reps; r++ {
		trace := base
		if r > 0 {
			if cfg.Trace != nil {
				// A fixed external trace cannot be re-drawn; only the QoS
				// seed varies across its replications.
				trace = cfg.Trace
			} else {
				var err error
				trace, err = cache.get(cfg.TraceSeed + int64(1000*r))
				if err != nil {
					return metrics.Report{}, err
				}
			}
		}
		jobs := workload.CloneAll(trace)
		workload.ScaleArrivals(jobs, p.ArrivalFactor)
		if err := qos.Synthesize(jobs, p.QoSConfig(cfg.QoSSeed+int64(1000*r))); err != nil {
			return metrics.Report{}, err
		}
		// The failure process is scaled to this replication's prepared
		// workload (after arrival scaling), so the axis bites identically
		// at test scale and paper scale.
		var faultCfg *faults.Config
		if cfg.FaultIntensity.Enabled() {
			f := cfg.FaultIntensity.Config(cfg.FaultSeed+int64(1000*r), faults.JobsHorizon(jobs))
			faultCfg = &f
		}
		rep, err := scheduler.Run(jobs, spec.New, scheduler.RunConfig{
			Nodes:     cfg.Nodes,
			Model:     cfg.Model,
			BasePrice: economy.DefaultBasePrice,
			Faults:    faultCfg,
		})
		if err != nil {
			return metrics.Report{}, err
		}
		reports = append(reports, rep)
	}
	return metrics.AverageReports(reports), nil
}

// RunCellDetailed is RunCell plus the per-job outcomes, for drill-down
// dumps (simrun -dump).
func RunCellDetailed(cfg SuiteConfig, params Params, spec scheduler.Spec) (metrics.Report, []*metrics.Outcome, error) {
	var collector *metrics.Collector
	wrapped := spec
	inner := spec.New
	wrapped.New = func(ctx *scheduler.Context) scheduler.Policy {
		collector = ctx.Collector
		return inner(ctx)
	}
	rep, err := RunCell(cfg, params, wrapped)
	if err != nil {
		return metrics.Report{}, nil, err
	}
	return rep, collector.Outcomes(), nil
}

// RunCell is the exported single-cell entry point used by cmd/simrun and
// the examples.
func RunCell(cfg SuiteConfig, params Params, spec scheduler.Spec) (metrics.Report, error) {
	identity := Scenario{Name: "fixed", Values: []float64{0}, Apply: func(*Params, float64) {}}
	base := cfg.Trace
	if base == nil {
		synth := workload.DefaultSynthConfig()
		if cfg.Synth != nil {
			synth = *cfg.Synth
		}
		synth.Jobs = cfg.Jobs
		var err error
		base, err = workload.Generate(synth, cfg.TraceSeed)
		if err != nil {
			return metrics.Report{}, err
		}
	}
	saved := params
	identity.Apply = func(p *Params, _ float64) { *p = saved }
	return runCell(cfg, newTraceCache(cfg, base), base, identity, 0, spec)
}
