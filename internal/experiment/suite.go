package experiment

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broker"
	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

// ReplicationSeedStride is the seed offset convention for replicated
// runs: replication r of a cell draws its trace at TraceSeed +
// ReplicationSeedStride·r, its QoS parameters at QoSSeed +
// ReplicationSeedStride·r, and its failure process at FaultSeed +
// ReplicationSeedStride·r. The stride keeps the three streams aligned
// per replication while leaving room for independent base seeds, and it
// is part of the reproducibility contract: journals, goldens, and the
// canonical-journal tests all assume it. Change it and every committed
// replicated artifact is invalidated.
const ReplicationSeedStride = 1000

// repSeed applies the replication-seed offset convention to a base seed.
func repSeed(base int64, r int) int64 {
	return base + ReplicationSeedStride*int64(r)
}

// ClusterFaultSeedStride extends the seed convention to federations:
// cluster c of a federated cell draws its failure process at
// FaultSeed + ReplicationSeedStride·r + ClusterFaultSeedStride·c, so every
// cluster gets an independent substream while cluster 0 keeps exactly the
// single-cluster seed — which is what lets a 1-cluster federation
// reproduce the plain path bit for bit. The stride dwarfs any realistic
// replication offset (1000·reps) so the two conventions cannot collide.
const ClusterFaultSeedStride = 1_000_000

// clusterFaultSeed applies both seed conventions for one federated
// cluster's failure process.
func clusterFaultSeed(base int64, r, cluster int) int64 {
	return repSeed(base, r) + ClusterFaultSeedStride*int64(cluster)
}

// SuiteConfig parameterizes one full evaluation suite: one economic model,
// one estimate-inaccuracy Set, all twelve scenarios, all policies of the
// model.
type SuiteConfig struct {
	// Model selects the economic model (and with it the five policies of
	// Table V evaluated under it).
	Model economy.Model
	// SetB selects the trace-estimate Set (inaccuracy default 100%);
	// otherwise Set A (0%).
	SetB bool
	// Jobs is the trace length (the paper uses 5000).
	Jobs int
	// Nodes is the machine size (the paper uses 128).
	Nodes int
	// TraceSeed and QoSSeed drive the synthetic trace and the QoS draws.
	TraceSeed, QoSSeed int64
	// Replications averages each cell over this many independently seeded
	// trace/QoS draws (seed offsets per ReplicationSeedStride). 0 or 1
	// runs a single replication, matching the paper's single-trace
	// methodology.
	Replications int
	// Workers bounds the simulation worker pool; 0 means GOMAXPROCS. The
	// pool's unit of work is one (cell, replication) simulation, so a
	// replicated suite — or a narrow sweep with fewer cells than cores —
	// still fills every worker. Results are bit-for-bit independent of
	// Workers: replication reports are reduced in replication order, never
	// completion order.
	Workers int
	// ScenarioFilter, when non-empty, restricts the suite to the named
	// Table VI scenarios (useful for iterating on one dimension).
	ScenarioFilter []string
	// PolicyFilter, when non-empty, restricts the suite to the named
	// policies (they must still belong to the model's Table V column).
	PolicyFilter []string
	// FaultIntensity selects the failure-intensity axis (none/low/high):
	// a deterministic node failure/repair process injected into every cell,
	// scaled to the workload's observation horizon. Empty means none — the
	// paper's original never-failing machine.
	FaultIntensity faults.Intensity
	// FaultSeed drives the failure process draws (varied per replication
	// by ReplicationSeedStride, like the trace and QoS seeds). Independent
	// of TraceSeed so the same workload can be replayed under different
	// failure histories.
	FaultSeed int64
	// Federation optionally routes every cell through the federation
	// meta-broker (internal/broker) instead of the single Nodes-sized
	// machine: one policy instance and one fault process per cluster, jobs
	// placed by quote-shopping. Each cluster's failure process draws at
	// the cluster-stride sub-seed (see ClusterFaultSeedStride); a cluster
	// with its own FaultIntensity overrides the suite's. A federation
	// equivalent to the single-cluster run (one cluster, Nodes-sized,
	// neutral speed/price, inherited intensity) produces byte-identical
	// cell keys, reports, and journals to Federation == nil.
	Federation *broker.Federation
	// Synth optionally overrides the trace generator configuration (Jobs
	// still wins for the job count); nil uses the SDSC SP2 calibration.
	Synth *workload.SynthConfig
	// Trace optionally supplies a real trace (e.g. parsed from an SWF
	// file); it overrides synthetic generation entirely.
	Trace []*workload.Job
	// Observer receives suite progress events (see obs.Reporter): suite
	// start, each cell's start and completion, and suite end. Cell events
	// fire concurrently from the worker pool. nil means no observation.
	Observer obs.Reporter
	// Resume maps cell keys to records of a prior run, typically loaded
	// with obs.LoadJournal. Cells whose CellKey is present are not
	// simulated: the journaled report is used verbatim (it round-trips
	// bit for bit), and the cell is reported as Resumed. Keys cover the
	// full parameterization, so a config change invalidates exactly the
	// cells it affects.
	Resume map[string]obs.Record
}

// DefaultSuiteConfig returns the paper-scale configuration.
func DefaultSuiteConfig(model economy.Model, setB bool) SuiteConfig {
	return SuiteConfig{
		Model:     model,
		SetB:      setB,
		Jobs:      5000,
		Nodes:     128,
		TraceSeed: 1,
		QoSSeed:   2,
	}
}

// SetName returns "Set A" or "Set B".
func (c SuiteConfig) SetName() string {
	if c.SetB {
		return "Set B"
	}
	return "Set A"
}

func (c SuiteConfig) inaccuracyDefault() float64 {
	if c.SetB {
		return 100
	}
	return 0
}

// replications normalizes the Replications field: 0 and 1 both mean a
// single replication. Every consumer — CellKey, the suite runner, the
// single-cell entry points — goes through this one normalization.
func (c SuiteConfig) replications() int {
	if c.Replications < 1 {
		return 1
	}
	return c.Replications
}

// CellKey returns the deterministic identity of one (scenario, value,
// policy) cell under this configuration: an FNV-1a hash over the model,
// Set, scenario, value, policy, trace length, machine size, both seeds,
// the replication count, and the workload fingerprint. Two cells share a
// key exactly when they would run byte-identical simulations, which is
// what makes journal records safe to reuse across runs (checkpoint /
// resume) and stale after any config change.
func (c SuiteConfig) CellKey(scenario string, value float64, policy string) string {
	reps := c.replications()
	parts := []string{
		c.Model.String(),
		c.SetName(),
		scenario,
		strconv.FormatFloat(value, 'g', -1, 64),
		policy,
		strconv.Itoa(c.Jobs),
		strconv.Itoa(c.Nodes),
		strconv.FormatInt(c.TraceSeed, 10),
		strconv.FormatInt(c.QoSSeed, 10),
		strconv.Itoa(reps),
		c.workloadFingerprint(),
		c.FaultIntensity.String(),
		strconv.FormatInt(c.FaultSeed, 10),
	}
	// A federation folds its full identity into the key — except when it
	// is equivalent to the plain single-cluster run, which must keep the
	// identical key so journals and resume state stay interchangeable
	// between the two spellings of the same simulation.
	if c.federated() {
		parts = append(parts, "federation")
		parts = append(parts, c.Federation.KeyParts()...)
	}
	return obs.Key(parts...)
}

// federated reports whether cells run through the meta-broker AND differ
// from the plain path: a nil federation or one equivalent to the single
// Nodes-sized cluster keeps every output byte of today's non-federated
// run. (A degenerate federation still executes through the broker — the
// differential tests rely on that being a distinction without a
// difference.)
func (c SuiteConfig) federated() bool {
	return c.Federation != nil && !c.Federation.EquivalentToSingle(c.Nodes, c.FaultIntensity)
}

// workloadFingerprint identifies the workload source. A synthetic trace
// is fully determined by its generator calibration (plus Jobs and
// TraceSeed, hashed separately); an external trace is identified by its
// job count and span — callers resuming across runs must supply the same
// file, which SWF parsing makes deterministic.
func (c SuiteConfig) workloadFingerprint() string {
	if c.Trace != nil {
		first, last := 0, 0
		if n := len(c.Trace); n > 0 {
			first, last = c.Trace[0].ID, c.Trace[n-1].ID
		}
		return fmt.Sprintf("trace|%d|%d|%d", len(c.Trace), first, last)
	}
	s := workload.DefaultSynthConfig()
	if c.Synth != nil {
		s = *c.Synth
	}
	s.Jobs = c.Jobs
	return fmt.Sprintf("synth|%d|%g|%g|%g|%g|%v|%v|%g|%g|%g",
		s.Jobs, s.MeanInterArrival, s.MeanRuntime, s.RuntimeCV, s.MaxRuntime,
		s.Widths, s.WidthWeights,
		s.UnderEstimateFrac, s.MinOverAccuracy, s.EstimateRounding)
}

// ScenarioResult holds one scenario's reports: Reports[valueIdx][policy].
// For a federated suite (see SuiteConfig.Federation) the per-cluster
// breakdown rides along: ClusterReports[valueIdx][policy][clusterIdx] in
// federation order, and RoutingDigests[valueIdx][policy] is the cell's
// routing-determinism digest. Both are nil for non-federated (or
// degenerate-federation) runs.
type ScenarioResult struct {
	Name           string
	Values         []float64
	Reports        []map[string]metrics.Report
	ClusterReports []map[string][]metrics.Report
	RoutingDigests []map[string]string
}

// Results is the raw output of a suite: every report of every cell, plus
// the identifiers needed to label plots. Clusters names the federation
// members (in federation order) when the suite ran federated; empty
// otherwise.
type Results struct {
	Model     economy.Model
	SetName   string
	Policies  []string
	Clusters  []string
	Scenarios []ScenarioResult
}

// ClusterView projects a federated suite's results down to one cluster:
// the same grid, with every cell's report replaced by that cluster's share.
// The view feeds the per-cluster risk panels — the full separate/integrated
// analysis machinery applies unchanged to one federation member.
func (r *Results) ClusterView(ci int) (*Results, error) {
	if ci < 0 || ci >= len(r.Clusters) {
		return nil, fmt.Errorf("experiment: cluster index %d out of range (%d clusters)", ci, len(r.Clusters))
	}
	out := &Results{Model: r.Model, SetName: r.SetName, Policies: r.Policies}
	for _, sc := range r.Scenarios {
		view := ScenarioResult{
			Name:    sc.Name,
			Values:  sc.Values,
			Reports: make([]map[string]metrics.Report, len(sc.Values)),
		}
		for vi := range sc.Values {
			view.Reports[vi] = make(map[string]metrics.Report, len(r.Policies))
			for _, p := range r.Policies {
				reports, ok := sc.ClusterReports[vi][p]
				if !ok || ci >= len(reports) {
					return nil, fmt.Errorf("experiment: %s[%d]/%s has no report for cluster %d",
						sc.Name, vi, p, ci)
				}
				view.Reports[vi][p] = reports[ci]
			}
		}
		out.Scenarios = append(out.Scenarios, view)
	}
	return out, nil
}

// Cells returns the number of (scenario, value, policy) cells — i.e. the
// number of averaged simulations the suite comprises. Unlike the nominal
// 12 × 6 × 5 grid, this respects scenario filters and per-scenario value
// counts.
func (r *Results) Cells() int {
	n := 0
	for _, sc := range r.Scenarios {
		n += len(sc.Values) * len(r.Policies)
	}
	return n
}

// Run executes the suite: |scenarios| × 6 values × 5 policies cells, each
// averaged over the configured replications. The same base trace and QoS
// seeds are used for every cell, so policies within a cell see
// byte-identical workloads.
//
// Execution is a two-level fan-out: the grid is flattened into one work
// queue of (cell, replication) units, executed by Workers goroutines.
// Replication reports land in a per-cell slice indexed by replication
// number and are merged by metrics.AverageReports in index order once the
// cell's last replication completes — a deterministic, order-fixed reduce,
// so results are bit-for-bit identical to a serial run for every worker
// count (the canonical-journal tests pin this, faults included).
func Run(cfg SuiteConfig) (*Results, error) {
	if cfg.Jobs <= 0 && cfg.Trace == nil {
		return nil, fmt.Errorf("experiment: non-positive job count %d", cfg.Jobs)
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("experiment: non-positive node count %d", cfg.Nodes)
	}
	base := cfg.Trace
	if base == nil {
		synth := workload.DefaultSynthConfig()
		if cfg.Synth != nil {
			synth = *cfg.Synth
		}
		synth.Jobs = cfg.Jobs
		var err error
		base, err = workload.Generate(synth, cfg.TraceSeed)
		if err != nil {
			return nil, err
		}
	}
	if _, err := faults.ParseIntensity(string(cfg.FaultIntensity)); err != nil {
		return nil, err
	}
	if cfg.Federation != nil {
		if err := cfg.Federation.Validate(); err != nil {
			return nil, err
		}
	}
	cache := newTraceCache(cfg, base)
	specs := scheduler.ForModel(cfg.Model)
	if len(cfg.PolicyFilter) > 0 {
		wanted := make(map[string]bool, len(cfg.PolicyFilter))
		for _, name := range cfg.PolicyFilter {
			wanted[name] = true
		}
		filtered := specs[:0]
		for _, s := range specs {
			if wanted[s.Name] {
				filtered = append(filtered, s)
				delete(wanted, s.Name)
			}
		}
		for _, name := range cfg.PolicyFilter {
			if wanted[name] {
				return nil, fmt.Errorf("experiment: policy %q not in the %s column", name, cfg.Model)
			}
		}
		specs = filtered
	}
	scenarios := Scenarios()
	if len(cfg.ScenarioFilter) > 0 {
		wanted := make(map[string]bool, len(cfg.ScenarioFilter))
		for _, name := range cfg.ScenarioFilter {
			if _, ok := ScenarioByName(name); !ok {
				return nil, fmt.Errorf("experiment: unknown scenario %q in filter", name)
			}
			wanted[name] = true
		}
		filtered := scenarios[:0]
		for _, sc := range scenarios {
			if wanted[sc.Name] {
				filtered = append(filtered, sc)
			}
		}
		scenarios = filtered
	}

	res := &Results{Model: cfg.Model, SetName: cfg.SetName()}
	for _, s := range specs {
		res.Policies = append(res.Policies, s.Name)
	}
	federated := cfg.federated()
	if federated {
		for _, cs := range cfg.Federation.Clusters {
			res.Clusters = append(res.Clusters, cs.Name)
		}
	}
	res.Scenarios = make([]ScenarioResult, len(scenarios))
	for si, sc := range scenarios {
		res.Scenarios[si] = ScenarioResult{
			Name:    sc.Name,
			Values:  append([]float64(nil), sc.Values...),
			Reports: make([]map[string]metrics.Report, len(sc.Values)),
		}
		if federated {
			res.Scenarios[si].ClusterReports = make([]map[string][]metrics.Report, len(sc.Values))
			res.Scenarios[si].RoutingDigests = make([]map[string]string, len(sc.Values))
		}
		for vi := range sc.Values {
			res.Scenarios[si].Reports[vi] = make(map[string]metrics.Report, len(specs))
			if federated {
				res.Scenarios[si].ClusterReports[vi] = make(map[string][]metrics.Report, len(specs))
				res.Scenarios[si].RoutingDigests[vi] = make(map[string]string, len(specs))
			}
		}
	}

	// recordFederation projects one cell's merged federation record into the
	// results grid (per-cluster reports in federation order + the routing
	// digest). No-op for non-federated cells.
	recordFederation := func(si, vi int, policy string, fed *obs.FederationRecord) {
		if fed == nil {
			return
		}
		reports := make([]metrics.Report, len(fed.Clusters))
		for ci, c := range fed.Clusters {
			reports[ci] = c.Report
		}
		res.Scenarios[si].ClusterReports[vi][policy] = reports
		res.Scenarios[si].RoutingDigests[vi][policy] = fed.RoutingDigest
	}

	observer := cfg.Observer
	if observer == nil {
		observer = obs.Nop{}
	}
	reps := cfg.replications()

	// pendingCell is one cell awaiting execution: its grid coordinates,
	// pre-validated parameters, and the reduce state — a report slot per
	// replication, filled in any order by the workers and merged in
	// replication order once the last slot lands.
	type pendingCell struct {
		si, vi, pi int
		cell       obs.Cell
		params     Params
		started    atomic.Bool
		reports    []metrics.Report
		feds       []*obs.FederationRecord
		remaining  int
		wall       time.Duration
		err        error // first replication error, by replication index
		errRep     int
	}
	// Split the grid into resumed cells (their journaled report is reused
	// verbatim) and pending cells for the worker pool.
	var pending []*pendingCell
	var resumed []obs.Record
	total := 0
	for si, sc := range scenarios {
		for vi, value := range sc.Values {
			for pi, spec := range specs {
				total++
				cell := obs.Cell{
					Key:        cfg.CellKey(sc.Name, value, spec.Name),
					Model:      cfg.Model.String(),
					Set:        cfg.SetName(),
					Scenario:   sc.Name,
					ValueIndex: vi,
					Value:      value,
					Policy:     spec.Name,
				}
				if rec, ok := cfg.Resume[cell.Key]; ok && (!federated || rec.Federation != nil) {
					res.Scenarios[si].Reports[vi][spec.Name] = rec.Report
					recordFederation(si, vi, spec.Name, rec.Federation)
					resumed = append(resumed, obs.Record{
						Cell: cell, Replications: reps, Resumed: true,
						Report: rec.Report, Federation: rec.Federation,
					})
					continue
				}
				p := DefaultParams(cfg.inaccuracyDefault())
				sc.Apply(&p, value)
				if err := p.Validate(); err != nil {
					return nil, fmt.Errorf("experiment: %s/%s[%d]/%s: %w",
						cfg.SetName(), sc.Name, vi, spec.Name, err)
				}
				pending = append(pending, &pendingCell{
					si: si, vi: vi, pi: pi, cell: cell, params: p,
					reports:   make([]metrics.Report, reps),
					feds:      make([]*obs.FederationRecord, reps),
					remaining: reps, errRep: reps,
				})
			}
		}
	}

	suite := obs.Suite{Model: cfg.Model.String(), Set: cfg.SetName(), Cells: total, Resumed: len(resumed), Replications: reps}
	suiteStart := time.Now() //lint:allow wallclock — suite wall-time accounting for obs.Summary, not simulation time
	observer.SuiteStart(suite)
	repObserver, _ := observer.(obs.ReplicationReporter)
	for _, rec := range resumed {
		observer.CellDone(rec)
	}

	// One unit of work = one replication of one cell. Units are enqueued
	// cell-major so a cell's replications are co-scheduled and cells
	// complete (and journal) as early as possible.
	type unit struct {
		ci, r int
	}
	type outcome struct {
		unit
		report metrics.Report
		fed    *obs.FederationRecord
		wall   time.Duration
		err    error
	}
	units := len(pending) * reps
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > units {
		workers = units
	}
	unitCh := make(chan unit)
	outCh := make(chan outcome)
	for w := 0; w < workers; w++ {
		go func() {
			for u := range unitCh {
				pc := pending[u.ci]
				if pc.started.CompareAndSwap(false, true) {
					observer.CellStart(pc.cell)
				}
				start := time.Now() //lint:allow wallclock — per-replication wall-time accounting for the journal, not simulation time
				rep, fed, err := runReplication(cfg, cache, pc.params, specs[pc.pi], u.r)
				wall := time.Since(start) //lint:allow wallclock — per-replication wall-time accounting for the journal, not simulation time
				outCh <- outcome{unit: u, report: rep, fed: fed, wall: wall, err: err}
			}
		}()
	}
	go func() {
		for ci := range pending {
			for r := 0; r < reps; r++ {
				unitCh <- unit{ci, r}
			}
		}
		close(unitCh)
	}()

	executed := 0
	for i := 0; i < units; i++ {
		o := <-outCh
		pc := pending[o.ci]
		pc.remaining--
		pc.wall += o.wall
		if o.err != nil {
			// Keep the error of the lowest replication index, so the
			// reported failure is independent of completion order.
			if o.r < pc.errRep {
				pc.err, pc.errRep = o.err, o.r
			}
		} else {
			pc.reports[o.r] = o.report
			pc.feds[o.r] = o.fed
			if repObserver != nil {
				repObserver.ReplicationDone(pc.cell, o.r, reps)
			}
		}
		if pc.remaining > 0 {
			continue
		}
		// Last replication of the cell: reduce in replication order.
		if pc.err != nil {
			continue
		}
		report := metrics.AverageReports(pc.reports)
		fed := reduceFederationRecords(pc.feds)
		res.Scenarios[pc.si].Reports[pc.vi][specs[pc.pi].Name] = report
		recordFederation(pc.si, pc.vi, specs[pc.pi].Name, fed)
		executed++
		observer.CellDone(obs.Record{
			Cell:         pc.cell,
			Replications: reps,
			WallSeconds:  pc.wall.Seconds(),
			Report:       report,
			Federation:   fed,
		})
	}
	elapsed := time.Since(suiteStart) //lint:allow wallclock — suite wall-time accounting for obs.Summary, not simulation time
	observer.SuiteDone(obs.Summary{Suite: suite, Executed: executed, Elapsed: elapsed})
	// Report the failure of the earliest cell in grid order — like the
	// reduce, independent of completion order.
	for _, pc := range pending {
		if pc.err != nil {
			return nil, fmt.Errorf("experiment: %s/%s[%d]/%s (replication %d): %w",
				cfg.SetName(), scenarios[pc.si].Name, pc.vi, specs[pc.pi].Name, pc.errRep, pc.err)
		}
	}
	return res, nil
}

// traceCache memoizes generated traces by replication seed, shared across
// every cell of a suite run. Every cell at replication r draws the same
// trace (seed TraceSeed + ReplicationSeedStride·r), so without the cache
// the generator runs |cells|×reps times for reps distinct traces.
// workload.Generate is pure — same config and seed give the same jobs —
// so handing out the cached slice is exact; callers clone before mutating
// (runReplication always does, via workload.CloneAll).
//
// The cache is safe for concurrent use by every worker of the suite pool,
// including concurrent replications of the same cell: the map is guarded
// by a mutex, but generation itself runs under a per-seed sync.Once, so
// two workers racing on the same seed block on one generation (and then
// share the identical slice) while workers on different seeds generate in
// parallel instead of serializing on the map lock.
type traceCache struct {
	synth workload.SynthConfig
	mu    sync.Mutex
	byTag map[int64]*traceEntry
}

// traceEntry is one memoized trace; once guards its single generation.
type traceEntry struct {
	once sync.Once
	jobs []*workload.Job
	err  error
}

// newTraceCache builds the cache for cfg's synthetic generator, pre-seeding
// the replication-0 trace that Run has already generated.
func newTraceCache(cfg SuiteConfig, base []*workload.Job) *traceCache {
	synth := workload.DefaultSynthConfig()
	if cfg.Synth != nil {
		synth = *cfg.Synth
	}
	synth.Jobs = cfg.Jobs
	c := &traceCache{synth: synth, byTag: make(map[int64]*traceEntry)}
	if cfg.Trace == nil && base != nil {
		e := &traceEntry{jobs: base}
		e.once.Do(func() {}) // mark generated
		c.byTag[cfg.TraceSeed] = e
	}
	return c
}

// get returns the trace for a seed, generating it on first use. Safe for
// concurrent use from the suite worker pool; every caller for the same
// seed receives the identical slice.
func (c *traceCache) get(seed int64) ([]*workload.Job, error) {
	c.mu.Lock()
	e, ok := c.byTag[seed]
	if !ok {
		e = &traceEntry{}
		c.byTag[seed] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.jobs, e.err = workload.Generate(c.synth, seed)
	})
	return e.jobs, e.err
}

// runReplication executes replication r of one cell: draw the trace for
// the replication's seed through the shared cache (or reuse a fixed
// external trace, which cannot be re-drawn — only the QoS and fault seeds
// vary across its replications), clone it, scale arrivals, synthesize QoS,
// and simulate under the policy — through the federation meta-broker when
// one is configured, on the single machine otherwise. The federation
// record is nil unless the federation actually differs from the plain
// path. This is the worker pool's unit of work.
func runReplication(cfg SuiteConfig, cache *traceCache, p Params, spec scheduler.Spec, r int) (metrics.Report, *obs.FederationRecord, error) {
	trace := cfg.Trace
	if trace == nil {
		var err error
		trace, err = cache.get(repSeed(cfg.TraceSeed, r))
		if err != nil {
			return metrics.Report{}, nil, err
		}
	}
	jobs := workload.CloneAll(trace)
	workload.ScaleArrivals(jobs, p.ArrivalFactor)
	if err := qos.Synthesize(jobs, p.QoSConfig(repSeed(cfg.QoSSeed, r))); err != nil {
		return metrics.Report{}, nil, err
	}
	if cfg.Federation != nil {
		res, err := broker.Run(jobs, *cfg.Federation, spec.New, broker.RunConfig{
			Model:  cfg.Model,
			Faults: federationFaultConfigs(cfg, jobs, r),
		})
		if err != nil {
			return metrics.Report{}, nil, err
		}
		var fedRec *obs.FederationRecord
		if cfg.federated() {
			fedRec = federationRecord(res)
		}
		return res.Federation, fedRec, nil
	}
	// The failure process is scaled to this replication's prepared
	// workload (after arrival scaling), so the axis bites identically
	// at test scale and paper scale.
	var faultCfg *faults.Config
	if cfg.FaultIntensity.Enabled() {
		f := cfg.FaultIntensity.Config(repSeed(cfg.FaultSeed, r), faults.JobsHorizon(jobs))
		faultCfg = &f
	}
	rep, err := scheduler.Run(jobs, spec.New, scheduler.RunConfig{
		Nodes:     cfg.Nodes,
		Model:     cfg.Model,
		BasePrice: economy.DefaultBasePrice,
		Faults:    faultCfg,
	})
	return rep, nil, err
}

// federationFaultConfigs derives one failure process per cluster for
// replication r: each cluster's effective intensity (its own, or the
// suite's when unset) expanded at the cluster-stride sub-seed over the
// replication's workload horizon. Nil when no cluster injects faults.
func federationFaultConfigs(cfg SuiteConfig, jobs []*workload.Job, r int) []*faults.Config {
	fed := *cfg.Federation
	var out []*faults.Config
	horizon := 0.0
	for ci, cs := range fed.Clusters {
		intensity := cs.FaultIntensity
		if intensity == "" {
			intensity = cfg.FaultIntensity
		}
		if !intensity.Enabled() {
			continue
		}
		if out == nil {
			out = make([]*faults.Config, len(fed.Clusters))
			// The failure process is scaled to the replication's prepared
			// workload, exactly as on the plain path.
			horizon = faults.JobsHorizon(jobs)
		}
		f := intensity.Config(clusterFaultSeed(cfg.FaultSeed, r, ci), horizon)
		out[ci] = &f
	}
	return out
}

// federationRecord converts one replication's broker result into the
// journal shape.
func federationRecord(res *broker.Result) *obs.FederationRecord {
	rec := &obs.FederationRecord{
		Clusters:      make([]obs.ClusterRecord, len(res.Clusters)),
		RoutingDigest: res.RoutingDigest,
	}
	for i, c := range res.Clusters {
		rec.Clusters[i] = obs.ClusterRecord{Name: c.Name, Nodes: c.Nodes, Routed: c.Routed, Report: c.Report}
	}
	return rec
}

// reduceFederationRecords merges the per-replication federation records of
// one cell in replication order — the federated counterpart of the
// order-fixed report reduce. Per-cluster reports are averaged cluster by
// cluster, routed counts take the rounded mean, and the cell digest is the
// hash of the per-replication digests in replication order (a single
// replication keeps its digest verbatim, so the journal stays directly
// comparable to a broker run). Nil in (non-federated cell) is nil out.
func reduceFederationRecords(feds []*obs.FederationRecord) *obs.FederationRecord {
	if len(feds) == 0 || feds[0] == nil {
		return nil
	}
	if len(feds) == 1 {
		return feds[0]
	}
	out := &obs.FederationRecord{Clusters: make([]obs.ClusterRecord, len(feds[0].Clusters))}
	digests := make([]string, len(feds))
	reports := make([]metrics.Report, len(feds))
	for ci := range out.Clusters {
		routed := 0.0
		for r, f := range feds {
			reports[r] = f.Clusters[ci].Report
			routed += float64(f.Clusters[ci].Routed)
		}
		out.Clusters[ci] = obs.ClusterRecord{
			Name:   feds[0].Clusters[ci].Name,
			Nodes:  feds[0].Clusters[ci].Nodes,
			Routed: int(routed/float64(len(feds)) + 0.5),
			Report: metrics.AverageReports(reports),
		}
	}
	for r, f := range feds {
		digests[r] = f.RoutingDigest
	}
	out.RoutingDigest = obs.Key(digests...)
	return out
}

// runCell runs every replication of one cell and reduces them in
// replication order — the same order-fixed reduce the suite pool applies,
// so the two paths are bit-for-bit interchangeable. Replications run on
// min(Workers, reps) goroutines (Workers ≤ 0 meaning GOMAXPROCS), which
// is what lets a single paper-scale cell with -reps N use N cores.
func runCell(cfg SuiteConfig, cache *traceCache, p Params, spec scheduler.Spec) (metrics.Report, *obs.FederationRecord, error) {
	reps := cfg.replications()
	reports := make([]metrics.Report, reps)
	feds := make([]*obs.FederationRecord, reps)
	errs := make([]error, reps)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > reps {
		workers = reps
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for r := 0; r < reps; r++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(r int) {
			defer wg.Done()
			reports[r], feds[r], errs[r] = runReplication(cfg, cache, p, spec, r)
			<-sem
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return metrics.Report{}, nil, fmt.Errorf("replication %d: %w", r, err)
		}
	}
	return metrics.AverageReports(reports), reduceFederationRecords(feds), nil
}

// RunCellDetailed is RunCell plus the per-job outcomes, for drill-down
// dumps (simrun -dump). Replications are forced serial so the captured
// audit trail is deterministically the final replication's; the averaged
// report is unaffected (the reduce is order-fixed either way).
func RunCellDetailed(cfg SuiteConfig, params Params, spec scheduler.Spec) (metrics.Report, []*metrics.Outcome, error) {
	cfg.Workers = 1
	var collector *metrics.Collector
	wrapped := spec
	inner := spec.New
	wrapped.New = func(ctx *scheduler.Context) scheduler.Policy {
		collector = ctx.Collector
		return inner(ctx)
	}
	rep, err := RunCell(cfg, params, wrapped)
	if err != nil {
		return metrics.Report{}, nil, err
	}
	return rep, collector.Outcomes(), nil
}

// RunCell is the exported single-cell entry point used by cmd/simrun and
// the examples. Replications (if configured) run in parallel on
// cfg.Workers goroutines with the same order-fixed reduce as Run.
func RunCell(cfg SuiteConfig, params Params, spec scheduler.Spec) (metrics.Report, error) {
	rep, _, err := RunCellFederated(cfg, params, spec)
	return rep, err
}

// RunCellFederated is RunCell plus the cell's merged federation record:
// per-cluster reports in federation order and the routing digest. The
// record is nil for a non-federated (or degenerate-federation) cell, so
// plain callers can use RunCell unchanged.
func RunCellFederated(cfg SuiteConfig, params Params, spec scheduler.Spec) (metrics.Report, *obs.FederationRecord, error) {
	if err := params.Validate(); err != nil {
		return metrics.Report{}, nil, err
	}
	if cfg.Federation != nil {
		if err := cfg.Federation.Validate(); err != nil {
			return metrics.Report{}, nil, err
		}
	}
	base := cfg.Trace
	if base == nil {
		synth := workload.DefaultSynthConfig()
		if cfg.Synth != nil {
			synth = *cfg.Synth
		}
		synth.Jobs = cfg.Jobs
		var err error
		base, err = workload.Generate(synth, cfg.TraceSeed)
		if err != nil {
			return metrics.Report{}, nil, err
		}
	}
	return runCell(cfg, newTraceCache(cfg, base), params, spec)
}
