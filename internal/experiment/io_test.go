package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/economy"
	"repro/internal/risk"
)

func TestResultsJSONRoundTrip(t *testing.T) {
	orig, err := Run(smallSuite(economy.BidBased, true))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Model != orig.Model || back.SetName != orig.SetName {
		t.Errorf("identity lost: %v/%s vs %v/%s", back.Model, back.SetName, orig.Model, orig.SetName)
	}
	if len(back.Scenarios) != len(orig.Scenarios) {
		t.Fatalf("scenario count %d vs %d", len(back.Scenarios), len(orig.Scenarios))
	}
	for si := range orig.Scenarios {
		for vi := range orig.Scenarios[si].Reports {
			for p, ra := range orig.Scenarios[si].Reports[vi] {
				rb := back.Scenarios[si].Reports[vi][p]
				if ra != rb {
					t.Fatalf("report mismatch at %s[%d]/%s", orig.Scenarios[si].Name, vi, p)
				}
			}
		}
	}
	// The round-tripped results must produce identical risk series.
	so, err := orig.SeparateSeries(risk.Profitability)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := back.SeparateSeries(risk.Profitability)
	if err != nil {
		t.Fatal(err)
	}
	for i := range so {
		for k := range so[i].Points {
			if so[i].Points[k] != sb[i].Points[k] {
				t.Fatal("risk series diverge after round trip")
			}
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"model":"martian","set":"Set A"}`)); err == nil {
		t.Error("unknown model accepted")
	}
	// Mismatched values/reports lengths.
	bad := `{"model":"commodity","set":"Set A","policies":["Libra"],
	 "scenarios":[{"name":"x","values":[1,2],"reports":[{"Libra":{}}]}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("ragged scenario accepted")
	}
	// Missing policy in a cell.
	bad = `{"model":"commodity","set":"Set A","policies":["Libra","FCFS-BF"],
	 "scenarios":[{"name":"x","values":[1],"reports":[{"Libra":{}}]}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("missing policy accepted")
	}
}
