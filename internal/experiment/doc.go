// Package experiment implements the paper's evaluation methodology (§5)
// and the machinery that runs it at scale.
//
// The methodology: the twelve scenarios of Table VI ([Scenarios]), each
// varying one parameter over six values while everything else stays at its
// Table VI default ([DefaultParams]); the Set A (accurate estimates) /
// Set B (trace estimates) split; and a suite runner ([Run]) that produces,
// for every (scenario, value, policy) cell, the objective report of one
// trace-driven simulation — or the average over [SuiteConfig.Replications]
// independently seeded ones.
//
// The machinery: Run fans the up-to-1440-cell grid of one (model, Set)
// panel across a worker pool, with every random draw seeded so results are
// bit-for-bit reproducible at any worker count. Three facilities make long
// runs manageable:
//
//   - Observation. [SuiteConfig.Observer] receives obs.Reporter events —
//     suite start, each cell's start and completion (concurrently, from
//     the workers), suite end — for live progress, journaling, and
//     throughput counters. The default is no observation at no cost.
//
//   - Checkpoint/resume. [SuiteConfig.CellKey] hashes a cell's full
//     parameterization (model, Set, scenario, value, policy, trace
//     length, machine size, seeds, replications, workload calibration)
//     into a deterministic identity. [SuiteConfig.Resume], fed from a
//     prior run's journal (obs.LoadJournal), makes Run skip cells whose
//     key is already recorded and reuse their reports verbatim — an
//     interrupted sweep finishes from where it died, and a config tweak
//     re-runs exactly the cells it invalidated.
//
//   - Persistence. [Results.WriteJSON] / [ReadJSON] round-trip a suite's
//     raw reports so later analysis (new weights, new objectives) does
//     not re-simulate.
//
// Beyond the paper's grid, the package provides series builders for the
// risk plots ([Results.SeparateSeries], [Results.IntegratedSeries]),
// crossover detection ([FindCrossovers]), and bootstrap ranking stability
// ([RankFirstProbability]).
package experiment
