package experiment

import (
	"math"
	"testing"

	"repro/internal/economy"
	"repro/internal/metrics"
	"repro/internal/risk"
)

// synthetic results with hand-built SLA curves for two policies.
func crossoverFixture(slaA, slaB []float64) *Results {
	n := len(slaA)
	values := make([]float64, n)
	reports := make([]map[string]metrics.Report, n)
	for i := 0; i < n; i++ {
		values[i] = float64(i * 20)
		reports[i] = map[string]metrics.Report{
			"A": {SLA: slaA[i]},
			"B": {SLA: slaB[i]},
		}
	}
	return &Results{
		Model:    economy.Commodity,
		SetName:  "Set A",
		Policies: []string{"A", "B"},
		Scenarios: []ScenarioResult{{
			Name:    "inaccuracy",
			Values:  values,
			Reports: reports,
		}},
	}
}

func TestFindCrossoversSingle(t *testing.T) {
	// A starts ahead, B overtakes between values 40 and 60.
	res := crossoverFixture(
		[]float64{90, 85, 80, 60, 50, 40},
		[]float64{70, 72, 74, 76, 78, 80},
	)
	crossings, err := FindCrossovers(res, risk.SLA, "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) != 1 {
		t.Fatalf("found %d crossings, want 1: %+v", len(crossings), crossings)
	}
	c := crossings[0]
	if c.LeaderBefore != "A" || c.LeaderAfter != "B" {
		t.Errorf("leaders = %s -> %s, want A -> B", c.LeaderBefore, c.LeaderAfter)
	}
	// Diffs at 40: +6, at 60: -16; crossing at 40 + 6/22·20 ≈ 45.45.
	if math.Abs(c.Value-(40+6.0/22*20)) > 1e-9 {
		t.Errorf("crossing value = %v, want ≈45.45", c.Value)
	}
	if c.Scenario != "inaccuracy" || c.Objective != risk.SLA {
		t.Errorf("labels wrong: %+v", c)
	}
}

func TestFindCrossoversNone(t *testing.T) {
	res := crossoverFixture(
		[]float64{90, 85, 80, 75, 70, 65},
		[]float64{60, 60, 60, 60, 60, 60},
	)
	crossings, err := FindCrossovers(res, risk.SLA, "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) != 0 {
		t.Errorf("found %d crossings, want 0", len(crossings))
	}
}

func TestFindCrossoversMultiple(t *testing.T) {
	res := crossoverFixture(
		[]float64{90, 50, 90, 50, 90, 50},
		[]float64{70, 70, 70, 70, 70, 70},
	)
	crossings, err := FindCrossovers(res, risk.SLA, "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) != 5 {
		t.Errorf("found %d crossings, want 5", len(crossings))
	}
}

func TestFindCrossoversTieContinuation(t *testing.T) {
	// A touches B exactly, then pulls ahead again: no crossover.
	res := crossoverFixture(
		[]float64{90, 70, 90, 90, 90, 90},
		[]float64{70, 70, 70, 70, 70, 70},
	)
	crossings, err := FindCrossovers(res, risk.SLA, "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) != 0 {
		t.Errorf("tie produced %d crossings, want 0", len(crossings))
	}
}

func TestFindCrossoversWaitOrientation(t *testing.T) {
	// Lower wait is better: A's wait rises past B's — B takes the lead.
	n := 6
	values := make([]float64, n)
	reports := make([]map[string]metrics.Report, n)
	for i := 0; i < n; i++ {
		values[i] = float64(i)
		reports[i] = map[string]metrics.Report{
			"A": {Wait: float64(i) * 100},
			"B": {Wait: 250},
		}
	}
	res := &Results{
		Policies:  []string{"A", "B"},
		Scenarios: []ScenarioResult{{Name: "workload", Values: values, Reports: reports}},
	}
	crossings, err := FindCrossovers(res, risk.Wait, "A", "B")
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) != 1 || crossings[0].LeaderBefore != "A" || crossings[0].LeaderAfter != "B" {
		t.Fatalf("wait crossover wrong: %+v", crossings)
	}
	if math.Abs(crossings[0].Value-2.5) > 1e-9 {
		t.Errorf("crossing at %v, want 2.5", crossings[0].Value)
	}
}

func TestFindCrossoversMissingPolicy(t *testing.T) {
	res := crossoverFixture([]float64{1}, []float64{2})
	if _, err := FindCrossovers(res, risk.SLA, "A", "Z"); err == nil {
		t.Error("missing policy accepted")
	}
}

// Real crossover on the paper's workload: in the inaccuracy scenario,
// Libra leads EDF-BF on SLA with accurate estimates and trails it with
// fully inaccurate ones, so a crossover must exist somewhere in between.
func TestInaccuracyCrossoverLibraVsEDF(t *testing.T) {
	res, err := Run(smallSuite(economy.Commodity, false))
	if err != nil {
		t.Fatal(err)
	}
	var inacc *ScenarioResult
	for i := range res.Scenarios {
		if res.Scenarios[i].Name == "inaccuracy" {
			inacc = &res.Scenarios[i]
			break
		}
	}
	if inacc == nil {
		t.Fatal("no inaccuracy scenario")
	}
	first := inacc.Reports[0]
	last := inacc.Reports[len(inacc.Reports)-1]
	if !(first["Libra"].SLA > first["EDF-BF"].SLA && last["Libra"].SLA < last["EDF-BF"].SLA) {
		t.Skip("this reduced workload does not exhibit the flip; paper scale does")
	}
	crossings, err := FindCrossovers(res, risk.SLA, "Libra", "EDF-BF")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range crossings {
		if c.Scenario == "inaccuracy" && c.LeaderBefore == "Libra" && c.LeaderAfter == "EDF-BF" {
			found = true
		}
	}
	if !found {
		t.Errorf("no Libra->EDF-BF crossover found in inaccuracy scenario: %+v", crossings)
	}
}
