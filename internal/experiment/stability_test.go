package experiment

import (
	"math"
	"testing"

	"repro/internal/economy"
	"repro/internal/risk"
)

func TestRankFirstProbabilitySumsToOne(t *testing.T) {
	res, err := Run(smallSuite(economy.BidBased, true))
	if err != nil {
		t.Fatal(err)
	}
	probs, err := RankFirstProbability(res, risk.AllObjectives, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	valid := map[string]bool{}
	for _, p := range res.Policies {
		valid[p] = true
	}
	for policy, pr := range probs {
		if !valid[policy] {
			t.Errorf("unknown winner %q", policy)
		}
		if pr < 0 || pr > 1 {
			t.Errorf("probability %v for %s", pr, policy)
		}
		sum += pr
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestRankFirstProbabilityDeterministic(t *testing.T) {
	res, err := Run(smallSuite(economy.Commodity, false))
	if err != nil {
		t.Fatal(err)
	}
	a, err := RankFirstProbability(res, risk.AllObjectives, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RankFirstProbability(res, risk.AllObjectives, 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range a {
		if b[p] != v {
			t.Fatalf("same seed diverged for %s: %v vs %v", p, v, b[p])
		}
	}
}

func TestRankFirstProbabilityValidation(t *testing.T) {
	res, err := Run(smallSuite(economy.Commodity, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RankFirstProbability(res, risk.AllObjectives, 5, 1); err == nil {
		t.Error("too few resamples accepted")
	}
	if _, err := RankFirstProbability(res, nil, 100, 1); err == nil {
		t.Error("no objectives accepted")
	}
}

// The point-estimate winner should usually carry the highest bootstrap
// probability as well.
func TestRankFirstProbabilityAgreesWithPointWinner(t *testing.T) {
	res, err := Run(smallSuite(economy.BidBased, true))
	if err != nil {
		t.Fatal(err)
	}
	series, err := res.IntegratedSeries(risk.AllObjectives)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := risk.RankByPerformance(series)
	if err != nil {
		t.Fatal(err)
	}
	probs, err := RankFirstProbability(res, risk.AllObjectives, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	pointWinner := ranked[0].Series.Policy
	if probs[pointWinner] < 0.2 {
		t.Errorf("point winner %s has bootstrap probability %v — suspicious divergence",
			pointWinner, probs[pointWinner])
	}
}
