package experiment

import (
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/obs"
)

// recordingReporter captures every event, for asserting what Run reported.
type recordingReporter struct {
	mu       sync.Mutex
	suites   []obs.Suite
	starts   []obs.Cell
	done     []obs.Record
	summary  []obs.Summary
	executed int
	resumed  int
}

func (r *recordingReporter) SuiteStart(s obs.Suite) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.suites = append(r.suites, s)
}

func (r *recordingReporter) CellStart(c obs.Cell) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.starts = append(r.starts, c)
}

func (r *recordingReporter) CellDone(rec obs.Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done = append(r.done, rec)
	if rec.Resumed {
		r.resumed++
	} else {
		r.executed++
	}
}

func (r *recordingReporter) SuiteDone(s obs.Summary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.summary = append(r.summary, s)
}

// scenarioFiltered keeps the resume tests fast: 2 scenarios × 6 values ×
// 5 policies = 60 cells.
func observedSuite(t *testing.T) SuiteConfig {
	t.Helper()
	cfg := smallSuite(economy.Commodity, false)
	cfg.Jobs = 60
	cfg.ScenarioFilter = []string{"workload", "deadline bias"}
	return cfg
}

func TestCellKeyDeterministicAndSensitive(t *testing.T) {
	cfg := observedSuite(t)
	base := cfg.CellKey("workload", 0.25, "Libra")
	if base != cfg.CellKey("workload", 0.25, "Libra") {
		t.Fatal("CellKey is not deterministic")
	}
	// 0 and 1 replications both mean a single run and must share a key.
	one := cfg
	one.Replications = 1
	if one.CellKey("workload", 0.25, "Libra") != base {
		t.Error("Replications 0 and 1 produce different keys")
	}
	mutations := map[string]SuiteConfig{}
	m := cfg
	m.SetB = true
	mutations["set"] = m
	m = cfg
	m.Jobs = cfg.Jobs + 1
	mutations["jobs"] = m
	m = cfg
	m.Nodes = cfg.Nodes * 2
	mutations["nodes"] = m
	m = cfg
	m.TraceSeed++
	mutations["trace seed"] = m
	m = cfg
	m.QoSSeed++
	mutations["qos seed"] = m
	m = cfg
	m.Replications = 3
	mutations["replications"] = m
	m = cfg
	synth := *cfg.Synth
	synth.MeanRuntime *= 2
	m.Synth = &synth
	mutations["synth config"] = m
	m = cfg
	m.FaultIntensity = faults.High
	mutations["fault intensity"] = m
	m = cfg
	m.FaultSeed++
	mutations["fault seed"] = m
	for name, mc := range mutations {
		if mc.CellKey("workload", 0.25, "Libra") == base {
			t.Errorf("changing %s did not change the cell key", name)
		}
	}
	if cfg.CellKey("workload", 0.5, "Libra") == base {
		t.Error("changing the value did not change the cell key")
	}
	if cfg.CellKey("workload", 0.25, "FCFS-BF") == base {
		t.Error("changing the policy did not change the cell key")
	}
	if cfg.CellKey("job mix", 0.25, "Libra") == base {
		t.Error("changing the scenario did not change the cell key")
	}
}

func TestRunReportsEveryCell(t *testing.T) {
	cfg := observedSuite(t)
	rec := &recordingReporter{}
	cfg.Observer = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Cells()
	if want != 2*6*5 {
		t.Fatalf("filtered suite has %d cells, want 60", want)
	}
	if rec.executed != want || rec.resumed != 0 {
		t.Fatalf("reporter saw %d executed / %d resumed cells, want %d / 0", rec.executed, rec.resumed, want)
	}
	if len(rec.starts) != want {
		t.Fatalf("reporter saw %d CellStart events, want %d", len(rec.starts), want)
	}
	if len(rec.suites) != 1 || rec.suites[0].Cells != want || rec.suites[0].Resumed != 0 {
		t.Fatalf("suite start event wrong: %+v", rec.suites)
	}
	if len(rec.summary) != 1 || rec.summary[0].Executed != want {
		t.Fatalf("suite done event wrong: %+v", rec.summary)
	}
	seen := map[string]bool{}
	for _, r := range rec.done {
		if seen[r.Key] {
			t.Fatalf("cell %s reported done twice", r.Key)
		}
		seen[r.Key] = true
		if r.Key != cfg.CellKey(r.Scenario, r.Value, r.Policy) {
			t.Fatalf("record key %s does not match CellKey for %s/%g/%s", r.Key, r.Scenario, r.Value, r.Policy)
		}
		if got := res.Scenarios[scenarioIndex(res, r.Scenario)].Reports[r.ValueIndex][r.Policy]; !reflect.DeepEqual(got, r.Report) {
			t.Fatalf("record for %s/%g/%s does not match the results grid", r.Scenario, r.Value, r.Policy)
		}
	}
}

func scenarioIndex(res *Results, name string) int {
	for i, sc := range res.Scenarios {
		if sc.Name == name {
			return i
		}
	}
	return -1
}

// TestResumeSkipsCompletedCells is the checkpoint/resume contract: a run
// resumed from a journal executes only the missing cells and produces
// identical results.
func TestResumeSkipsCompletedCells(t *testing.T) {
	cfg := observedSuite(t)
	journalPath := filepath.Join(t.TempDir(), "journal.jsonl")
	journal, err := obs.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = journal
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	prior, err := obs.LoadJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != full.Cells() {
		t.Fatalf("journal has %d records, want %d", len(prior), full.Cells())
	}

	// Simulate an interrupted run by dropping some journal records: the
	// resumed run must execute exactly those cells. The dropped set is
	// chosen by sorted key so every run interrupts identically.
	keys := make([]string, 0, len(prior))
	for key := range prior {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	dropped := 0
	for _, key := range keys {
		if dropped >= 7 {
			break
		}
		delete(prior, key)
		dropped++
	}
	rec := &recordingReporter{}
	cfg.Observer = rec
	cfg.Resume = prior
	resumed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.executed != dropped {
		t.Fatalf("resumed run executed %d cells, want %d", rec.executed, dropped)
	}
	if rec.resumed != full.Cells()-dropped {
		t.Fatalf("resumed run reused %d cells, want %d", rec.resumed, full.Cells()-dropped)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatal("resumed results differ from the uninterrupted run")
	}
}

// TestResumeIgnoresStaleJournal: records from a different configuration
// must not be reused.
func TestResumeIgnoresStaleJournal(t *testing.T) {
	cfg := observedSuite(t)
	journalPath := filepath.Join(t.TempDir(), "journal.jsonl")
	journal, err := obs.OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = journal
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	prior, err := obs.LoadJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	changed := cfg
	changed.QoSSeed++ // any parameter change invalidates every key
	rec := &recordingReporter{}
	changed.Observer = rec
	changed.Resume = prior
	res, err := Run(changed)
	if err != nil {
		t.Fatal(err)
	}
	if rec.resumed != 0 {
		t.Fatalf("stale journal satisfied %d cells, want 0", rec.resumed)
	}
	if rec.executed != res.Cells() {
		t.Fatalf("executed %d cells, want all %d", rec.executed, res.Cells())
	}
}
