package experiment

import (
	"bytes"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/obs"
)

// faultySuite is observedSuite with the high-intensity failure axis on,
// trimmed further so fault-injected determinism tests stay fast.
func faultySuite(t *testing.T) SuiteConfig {
	t.Helper()
	cfg := observedSuite(t)
	cfg.ScenarioFilter = []string{"workload"}
	cfg.PolicyFilter = []string{"FCFS-BF", "Libra"}
	cfg.FaultIntensity = faults.High
	cfg.FaultSeed = 7
	return cfg
}

// recordMap collects a reporter's CellDone records keyed for CanonicalJournal.
func recordMap(rec *recordingReporter) map[string]obs.Record {
	recs := make(map[string]obs.Record, len(rec.done))
	for _, r := range rec.done {
		recs[r.Key] = r
	}
	return recs
}

func canonical(t *testing.T, rec *recordingReporter) []byte {
	t.Helper()
	b, err := obs.CanonicalJournal(recordMap(rec))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// With fault injection on, the suite must still be deterministic in the
// strongest sense: the canonical journal — every per-cell report, byte for
// byte — is identical whether cells run serially or on 8 workers.
func TestSuiteDeterministicAcrossWorkersWithFaults(t *testing.T) {
	cfg := faultySuite(t)
	cfg.Workers = 1
	recA := &recordingReporter{}
	cfg.Observer = recA
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	recB := &recordingReporter{}
	cfg.Observer = recB
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("results differ between 1 and 8 workers under faults")
	}
	ca, cb := canonical(t, recA), canonical(t, recB)
	if !bytes.Equal(ca, cb) {
		t.Fatal("canonical journals differ between 1 and 8 workers under faults")
	}
	// The axis did something: at high intensity some jobs die.
	killed := 0
	for _, r := range recA.done {
		killed += r.Report.Killed
	}
	if killed == 0 {
		t.Fatal("high fault intensity killed no jobs anywhere in the suite")
	}
}

// The kill/-resume boundary must be invisible under faults: a run
// interrupted mid-suite and resumed from its journal yields identical
// results, and the union of the two journals is canonically byte-identical
// to an uninterrupted run's journal.
func TestResumeByteIdenticalWithFaults(t *testing.T) {
	cfg := faultySuite(t)

	// Uninterrupted reference run, journaled to disk like riskbench does.
	refPath := filepath.Join(t.TempDir(), "ref.jsonl")
	refJournal, err := obs.OpenJournal(refPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = refJournal
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := refJournal.Close(); err != nil {
		t.Fatal(err)
	}
	refRecs, err := obs.LoadJournal(refPath)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := obs.CanonicalJournal(refRecs)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a run killed partway: only part of the journal survives.
	// The surviving half is chosen by sorted key so the test exercises the
	// same interrupt point on every run.
	keys := make([]string, 0, len(refRecs))
	for key := range refRecs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	kept := len(refRecs) / 2
	prior := make(map[string]obs.Record, kept)
	for _, key := range keys[:kept] {
		prior[key] = refRecs[key]
	}
	if kept == 0 || kept == len(refRecs) {
		t.Fatalf("degenerate interrupt: kept %d of %d records", kept, len(refRecs))
	}

	// Resume: the second run extends the surviving journal.
	resumedPath := filepath.Join(t.TempDir(), "resumed.jsonl")
	resumedJournal, err := obs.OpenJournal(resumedPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = resumedJournal
	cfg.Resume = prior
	resumed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumedJournal.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatal("resumed results differ from the uninterrupted run")
	}

	// Union of surviving + resumed records == reference, byte for byte.
	merged, err := obs.LoadJournal(resumedPath)
	if err != nil {
		t.Fatal(err)
	}
	executed := len(merged)
	if executed != len(refRecs)-kept {
		t.Fatalf("resumed run journaled %d cells, want %d", executed, len(refRecs)-kept)
	}
	for key, r := range prior {
		if _, dup := merged[key]; dup {
			t.Fatalf("resumed run re-executed journaled cell %s", key)
		}
		merged[key] = r
	}
	mergedBytes, err := obs.CanonicalJournal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, mergedBytes) {
		t.Fatal("canonical journal across the kill/resume boundary differs from the uninterrupted run")
	}
}

// PolicyFilter narrows the suite to the named policies and rejects names
// missing from the set's column.
func TestPolicyFilter(t *testing.T) {
	cfg := observedSuite(t)
	cfg.ScenarioFilter = []string{"workload"}
	cfg.PolicyFilter = []string{"Libra", "FCFS-BF"}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Policies, []string{"FCFS-BF", "Libra"}) {
		t.Fatalf("filtered policies = %v, want [FCFS-BF Libra] in column order", res.Policies)
	}
	for _, rep := range res.Scenarios[0].Reports {
		if len(rep) != 2 {
			t.Fatalf("cell has %d policies, want 2", len(rep))
		}
	}
	cfg.PolicyFilter = []string{"Libra", "NoSuchPolicy"}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "NoSuchPolicy") {
		t.Fatalf("unknown policy in filter not rejected: %v", err)
	}
}

// An unknown fault intensity is rejected up front, before any cell runs.
func TestSuiteRejectsBadFaultIntensity(t *testing.T) {
	cfg := smallSuite(economy.Commodity, false)
	cfg.FaultIntensity = faults.Intensity("catastrophic")
	if _, err := Run(cfg); err == nil {
		t.Error("unknown fault intensity accepted")
	}
}
