package experiment

import (
	"fmt"

	"repro/internal/risk"
)

// Crossover marks a point within one scenario's parameter sweep where the
// lead between two policies flips on one objective — the "where do the
// curves cross" question a provider asks when the best policy depends on
// the operating point (e.g. Libra leads EDF-BF on SLA at low estimate
// inaccuracy and trails it at high inaccuracy).
type Crossover struct {
	Scenario  string
	Objective risk.Objective
	PolicyA   string
	PolicyB   string
	// Value is the scenario parameter at which the curves cross, linearly
	// interpolated between the two bracketing sweep values.
	Value float64
	// LeaderBefore and LeaderAfter name the better policy on each side.
	LeaderBefore string
	LeaderAfter  string
}

// goodness orients an objective so larger is always better.
func goodness(obj risk.Objective, raw float64) float64 {
	if obj == risk.Wait {
		return -raw
	}
	return raw
}

// FindCrossovers scans every scenario of the results for lead changes
// between policies a and b on the given objective. Ties (exactly equal
// values) are treated as continuations of the previous leader.
func FindCrossovers(res *Results, obj risk.Objective, a, b string) ([]Crossover, error) {
	var out []Crossover
	for _, sc := range res.Scenarios {
		var prevDiff float64
		havePrev := false
		for vi := range sc.Values {
			ra, okA := sc.Reports[vi][a]
			rb, okB := sc.Reports[vi][b]
			if !okA || !okB {
				return nil, fmt.Errorf("experiment: missing report for %s/%s at %s[%d]", a, b, sc.Name, vi)
			}
			diff := goodness(obj, risk.Raw(obj, ra)) - goodness(obj, risk.Raw(obj, rb))
			if havePrev && diff != 0 && prevDiff != 0 && (diff > 0) != (prevDiff > 0) {
				// Linear interpolation of the crossing parameter value.
				x0, x1 := sc.Values[vi-1], sc.Values[vi]
				frac := prevDiff / (prevDiff - diff)
				cross := Crossover{
					Scenario:  sc.Name,
					Objective: obj,
					PolicyA:   a,
					PolicyB:   b,
					Value:     x0 + frac*(x1-x0),
				}
				if prevDiff > 0 {
					cross.LeaderBefore, cross.LeaderAfter = a, b
				} else {
					cross.LeaderBefore, cross.LeaderAfter = b, a
				}
				out = append(out, cross)
			}
			if diff != 0 {
				prevDiff = diff
				havePrev = true
			}
		}
	}
	return out, nil
}
