package experiment

import (
	"fmt"

	"repro/internal/economy"
	"repro/internal/qos"
)

// Params is the full parameterization of one simulation cell: the Table VI
// default operating point with one dimension overridden by the scenario.
type Params struct {
	// HighUrgencyFrac is the fraction of high-urgency jobs ("% of high
	// urgency jobs" in Table VI, as a 0–1 fraction).
	HighUrgencyFrac float64
	// ArrivalFactor is the arrival delay factor (lower = heavier load).
	ArrivalFactor float64
	// InaccuracyPct is the runtime-estimate inaccuracy percentage (0 = Set
	// A exact estimates, 100 = Set B trace estimates).
	InaccuracyPct float64

	// Bias, high:low ratio, and low-value mean for each of the three QoS
	// parameters.
	DeadlineBias, BudgetBias, PenaltyBias    float64
	DeadlineRatio, BudgetRatio, PenaltyRatio float64
	DeadlineMean, BudgetMean, PenaltyMean    float64
}

// DefaultParams returns the Table VI defaults (see DESIGN.md for the
// defaults-recovery note) with the given Set's estimate inaccuracy.
func DefaultParams(inaccuracyPct float64) Params {
	return Params{
		HighUrgencyFrac: 0.20,
		ArrivalFactor:   0.25,
		InaccuracyPct:   inaccuracyPct,
		DeadlineBias:    2, BudgetBias: 2, PenaltyBias: 2,
		DeadlineRatio: 4, BudgetRatio: 4, PenaltyRatio: 4,
		DeadlineMean: 4, BudgetMean: 4, PenaltyMean: 4,
	}
}

// QoSConfig expands the parameters into a qos.Config with the given seed.
func (p Params) QoSConfig(seed int64) qos.Config {
	cfg := qos.DefaultConfig(seed)
	cfg.HighUrgencyFrac = p.HighUrgencyFrac
	cfg.InaccuracyPct = p.InaccuracyPct
	cfg.BasePrice = economy.DefaultBasePrice
	cfg.Deadline.Bias, cfg.Budget.Bias, cfg.Penalty.Bias = p.DeadlineBias, p.BudgetBias, p.PenaltyBias
	cfg.Deadline.HighLowRatio, cfg.Budget.HighLowRatio, cfg.Penalty.HighLowRatio = p.DeadlineRatio, p.BudgetRatio, p.PenaltyRatio
	cfg.Deadline.LowMean, cfg.Budget.LowMean, cfg.Penalty.LowMean = p.DeadlineMean, p.BudgetMean, p.PenaltyMean
	return cfg
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.HighUrgencyFrac < 0 || p.HighUrgencyFrac > 1 {
		return fmt.Errorf("experiment: high urgency fraction %v outside [0,1]", p.HighUrgencyFrac)
	}
	if p.ArrivalFactor <= 0 {
		return fmt.Errorf("experiment: non-positive arrival factor %v", p.ArrivalFactor)
	}
	if p.InaccuracyPct < 0 || p.InaccuracyPct > 100 {
		return fmt.Errorf("experiment: inaccuracy %v outside [0,100]", p.InaccuracyPct)
	}
	// Ordered, not a map: the first failing parameter decides the error
	// message, which must be stable across runs.
	for _, e := range []struct {
		name string
		v    float64
	}{
		{"deadline bias", p.DeadlineBias}, {"budget bias", p.BudgetBias}, {"penalty bias", p.PenaltyBias},
		{"deadline ratio", p.DeadlineRatio}, {"budget ratio", p.BudgetRatio}, {"penalty ratio", p.PenaltyRatio},
		{"deadline mean", p.DeadlineMean}, {"budget mean", p.BudgetMean}, {"penalty mean", p.PenaltyMean},
	} {
		if e.v <= 0 {
			return fmt.Errorf("experiment: non-positive %s %v", e.name, e.v)
		}
	}
	return nil
}
