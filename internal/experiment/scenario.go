package experiment

// Scenario is one row of Table VI: a named dimension varied over six
// values, everything else held at the default.
type Scenario struct {
	// Name identifies the scenario (e.g. "workload", "deadline bias").
	Name string
	// Values are the six varying values in the paper's order.
	Values []float64
	// Apply overrides the scenario's dimension in a parameter set.
	Apply func(p *Params, v float64)
}

var (
	pctValues    = []float64{0, 20, 40, 60, 80, 100}
	loadValues   = []float64{0.02, 0.10, 0.25, 0.50, 0.75, 1.00}
	factorValues = []float64{1, 2, 4, 6, 8, 10}
)

// Scenarios returns the twelve Table VI scenarios. The varying-bias,
// varying-ratio, and varying-mean scenarios exist once per QoS parameter
// (deadline, budget, penalty), joining the job-mix, workload, and
// inaccuracy scenarios.
func Scenarios() []Scenario {
	return []Scenario{
		{"job mix", pctValues, func(p *Params, v float64) { p.HighUrgencyFrac = v / 100 }},
		{"workload", loadValues, func(p *Params, v float64) { p.ArrivalFactor = v }},
		{"inaccuracy", pctValues, func(p *Params, v float64) { p.InaccuracyPct = v }},
		{"deadline bias", factorValues, func(p *Params, v float64) { p.DeadlineBias = v }},
		{"budget bias", factorValues, func(p *Params, v float64) { p.BudgetBias = v }},
		{"penalty bias", factorValues, func(p *Params, v float64) { p.PenaltyBias = v }},
		{"deadline high:low ratio", factorValues, func(p *Params, v float64) { p.DeadlineRatio = v }},
		{"budget high:low ratio", factorValues, func(p *Params, v float64) { p.BudgetRatio = v }},
		{"penalty high:low ratio", factorValues, func(p *Params, v float64) { p.PenaltyRatio = v }},
		{"deadline low-value mean", factorValues, func(p *Params, v float64) { p.DeadlineMean = v }},
		{"budget low-value mean", factorValues, func(p *Params, v float64) { p.BudgetMean = v }},
		{"penalty low-value mean", factorValues, func(p *Params, v float64) { p.PenaltyMean = v }},
	}
}

// ScenarioByName looks a scenario up by name.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
