package experiment

import (
	"sync"
	"testing"

	"repro/internal/economy"
	"repro/internal/workload"
)

// TestTraceCacheMemoizesPerSeed pins the cache contract: one generation per
// seed, identical slice handed to every caller, and bit-identical jobs to a
// fresh generation at the same seed.
func TestTraceCacheMemoizesPerSeed(t *testing.T) {
	cfg := DefaultSuiteConfig(economy.Commodity, false)
	cfg.Jobs = 50
	cache := newTraceCache(cfg, nil)

	a, err := cache.get(cfg.TraceSeed + 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.get(cfg.TraceSeed + 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != cfg.Jobs {
		t.Fatalf("cached trace has %d jobs, want %d", len(a), cfg.Jobs)
	}
	if &a[0] != &b[0] {
		t.Error("repeated get for the same seed returned a different slice (regenerated)")
	}

	synth := workload.DefaultSynthConfig()
	synth.Jobs = cfg.Jobs
	fresh, err := workload.Generate(synth, cfg.TraceSeed+1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if *a[i] != *fresh[i] {
			t.Fatalf("cached job %d = %+v, fresh generation = %+v", i, *a[i], *fresh[i])
		}
	}
}

// TestTraceCachePreSeedsBase verifies Run's replication-0 trace is served
// from the cache rather than regenerated.
func TestTraceCachePreSeedsBase(t *testing.T) {
	cfg := DefaultSuiteConfig(economy.Commodity, false)
	cfg.Jobs = 20
	synth := workload.DefaultSynthConfig()
	synth.Jobs = cfg.Jobs
	base, err := workload.Generate(synth, cfg.TraceSeed)
	if err != nil {
		t.Fatal(err)
	}
	cache := newTraceCache(cfg, base)
	got, err := cache.get(cfg.TraceSeed)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &base[0] {
		t.Error("base trace was regenerated instead of served from the pre-seeded cache")
	}
}

// TestTraceCacheConcurrentAccess hammers the cache from many goroutines
// (the suite worker-pool shape); -race makes this a synchronization test,
// and the identity check makes it a single-generation test.
func TestTraceCacheConcurrentAccess(t *testing.T) {
	cfg := DefaultSuiteConfig(economy.Commodity, false)
	cfg.Jobs = 10
	cache := newTraceCache(cfg, nil)
	const workers = 8
	got := make([][]*workload.Job, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, seed := range []int64{1001, 2001, 3001} {
				tr, err := cache.get(seed)
				if err != nil {
					t.Error(err)
					return
				}
				got[w] = tr
			}
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if &got[w][0] != &got[0][0] {
			t.Fatalf("worker %d received a different trace instance for the same seed", w)
		}
	}
}

// TestReplicatedSuiteUnchangedByCache pins that the cache is a pure
// memoization: a replicated suite produces byte-identical reports to
// independent single-replication runs manually averaged — the same
// equivalence the pre-cache code satisfied by regenerating per cell.
func TestReplicatedSuiteUnchangedByCache(t *testing.T) {
	cfg := DefaultSuiteConfig(economy.Commodity, false)
	cfg.Jobs = 60
	cfg.Nodes = 128
	cfg.Replications = 2
	cfg.ScenarioFilter = []string{"inaccuracy"}
	cfg.PolicyFilter = []string{"FCFS-BF"}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Second identical run: memoization must not introduce run-order or
	// sharing effects — reports are deterministic.
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for si := range res.Scenarios {
		for vi := range res.Scenarios[si].Reports {
			for name, rep := range res.Scenarios[si].Reports[vi] {
				if rep != res2.Scenarios[si].Reports[vi][name] {
					t.Fatalf("replicated suite not deterministic at %s[%d]/%s",
						res.Scenarios[si].Name, vi, name)
				}
			}
		}
	}
}

// TestTraceCacheConcurrentSameSeed releases many goroutines through a
// start gate onto get() for one brand-new seed — the exact shape of a
// replicated cell's workers racing on the same replication trace. The
// per-entry sync.Once must hand every caller the identical slice from a
// single generation, with no error.
func TestTraceCacheConcurrentSameSeed(t *testing.T) {
	cfg := DefaultSuiteConfig(economy.Commodity, false)
	cfg.Jobs = 10
	cache := newTraceCache(cfg, nil)
	const workers = 32
	seed := cfg.TraceSeed + 2*ReplicationSeedStride
	start := make(chan struct{})
	got := make([][]*workload.Job, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			tr, err := cache.get(seed)
			if err != nil {
				t.Error(err)
				return
			}
			got[w] = tr
		}()
	}
	close(start)
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(got[w]) == 0 || &got[w][0] != &got[0][0] {
			t.Fatalf("worker %d received a different trace instance for the shared seed", w)
		}
	}
}
