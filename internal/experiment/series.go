package experiment

import (
	"fmt"

	"repro/internal/risk"
)

// SeparateSeries computes, for each policy, the separate risk analysis of
// one objective across all scenarios (one point per scenario): the input of
// a Figure 3/6-style plot.
func (r *Results) SeparateSeries(obj risk.Objective) ([]risk.Series, error) {
	series := make([]risk.Series, len(r.Policies))
	for i, p := range r.Policies {
		series[i] = risk.Series{Policy: p, Points: make([]risk.Point, 0, len(r.Scenarios))}
	}
	for si, sc := range r.Scenarios {
		for i := range series {
			series[i].Labels = append(series[i].Labels, r.Scenarios[si].Name)
		}
		normalized := make(map[string][]float64, len(r.Policies))
		for vi := range sc.Values {
			raw := make(map[string]float64, len(r.Policies))
			for _, p := range r.Policies {
				rep, ok := sc.Reports[vi][p]
				if !ok {
					return nil, fmt.Errorf("experiment: missing report for %s at %s[%d]", p, sc.Name, vi)
				}
				raw[p] = risk.Raw(obj, rep)
			}
			for p, n := range risk.NormalizeAcross(obj, raw) {
				normalized[p] = append(normalized[p], n)
			}
		}
		for i, p := range r.Policies {
			pt, err := risk.Separate(normalized[p])
			if err != nil {
				return nil, fmt.Errorf("experiment: %s/%s: %w", p, sc.Name, err)
			}
			series[i].Points = append(series[i].Points, pt)
		}
	}
	return series, nil
}

// IntegratedSeries computes, for each policy, the integrated risk analysis
// of the given objectives (equal weights) across all scenarios: the input
// of a Figure 4/5/7/8-style plot.
func (r *Results) IntegratedSeries(objs []risk.Objective) ([]risk.Series, error) {
	return r.IntegratedSeriesWeighted(objs, risk.EqualWeights(objs))
}

// IntegratedSeriesWeighted is IntegratedSeries with explicit weights (used
// by the weight-sensitivity ablation).
func (r *Results) IntegratedSeriesWeighted(objs []risk.Objective, w risk.Weights) ([]risk.Series, error) {
	perObjective := make(map[risk.Objective][]risk.Series, len(objs))
	for _, o := range objs {
		s, err := r.SeparateSeries(o)
		if err != nil {
			return nil, err
		}
		perObjective[o] = s
	}
	out := make([]risk.Series, len(r.Policies))
	for i, p := range r.Policies {
		out[i] = risk.Series{Policy: p, Points: make([]risk.Point, 0, len(r.Scenarios))}
		for si := range r.Scenarios {
			out[i].Labels = append(out[i].Labels, r.Scenarios[si].Name)
			points := make(map[risk.Objective]risk.Point, len(objs))
			for _, o := range objs {
				points[o] = perObjective[o][i].Points[si]
			}
			pt, err := risk.Integrate(points, w)
			if err != nil {
				return nil, err
			}
			out[i].Points = append(out[i].Points, pt)
		}
	}
	return out, nil
}

// ObjectiveTriples returns the paper's four three-objective combinations in
// figure order: each drops exactly one objective (Figures 4 and 7 panels
// a/b, c/d, e/f, g/h drop wait, SLA, reliability, profitability
// respectively).
func ObjectiveTriples() [][]risk.Objective {
	all := risk.AllObjectives
	out := make([][]risk.Objective, 0, len(all))
	for _, drop := range all {
		var combo []risk.Objective
		for _, o := range all {
			if o != drop {
				combo = append(combo, o)
			}
		}
		out = append(out, combo)
	}
	return out
}
