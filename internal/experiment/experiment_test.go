package experiment

import (
	"math"
	"testing"

	"repro/internal/economy"
	"repro/internal/risk"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

// Table VI: twelve scenarios with six values each, covering job mix,
// workload, inaccuracy, and bias/ratio/mean for each QoS parameter.
func TestTableVIScenarios(t *testing.T) {
	scs := Scenarios()
	if len(scs) != 12 {
		t.Fatalf("got %d scenarios, want 12", len(scs))
	}
	wantNames := []string{
		"job mix", "workload", "inaccuracy",
		"deadline bias", "budget bias", "penalty bias",
		"deadline high:low ratio", "budget high:low ratio", "penalty high:low ratio",
		"deadline low-value mean", "budget low-value mean", "penalty low-value mean",
	}
	for i, sc := range scs {
		if sc.Name != wantNames[i] {
			t.Errorf("scenario %d = %q, want %q", i, sc.Name, wantNames[i])
		}
		if len(sc.Values) != 6 {
			t.Errorf("scenario %q has %d values, want 6", sc.Name, len(sc.Values))
		}
	}
	// Spot-check the Table VI value grids.
	if sc, _ := ScenarioByName("workload"); sc.Values[0] != 0.02 || sc.Values[5] != 1.00 {
		t.Errorf("workload values = %v", sc.Values)
	}
	if sc, _ := ScenarioByName("job mix"); sc.Values[0] != 0 || sc.Values[5] != 100 {
		t.Errorf("job mix values = %v", sc.Values)
	}
	if sc, _ := ScenarioByName("deadline bias"); sc.Values[1] != 2 || sc.Values[5] != 10 {
		t.Errorf("deadline bias values = %v", sc.Values)
	}
	if _, ok := ScenarioByName("nope"); ok {
		t.Error("unknown scenario found")
	}
}

// Each scenario's Apply must change exactly its own dimension.
func TestScenarioApplyTargetsOwnDimension(t *testing.T) {
	for _, sc := range Scenarios() {
		base := DefaultParams(0)
		p := base
		sc.Apply(&p, sc.Values[5])
		diffs := 0
		if p.HighUrgencyFrac != base.HighUrgencyFrac {
			diffs++
		}
		if p.ArrivalFactor != base.ArrivalFactor {
			diffs++
		}
		if p.InaccuracyPct != base.InaccuracyPct {
			diffs++
		}
		for _, pair := range [][2]float64{
			{p.DeadlineBias, base.DeadlineBias}, {p.BudgetBias, base.BudgetBias}, {p.PenaltyBias, base.PenaltyBias},
			{p.DeadlineRatio, base.DeadlineRatio}, {p.BudgetRatio, base.BudgetRatio}, {p.PenaltyRatio, base.PenaltyRatio},
			{p.DeadlineMean, base.DeadlineMean}, {p.BudgetMean, base.BudgetMean}, {p.PenaltyMean, base.PenaltyMean},
		} {
			if pair[0] != pair[1] {
				diffs++
			}
		}
		if diffs != 1 {
			t.Errorf("scenario %q changed %d dimensions, want 1", sc.Name, diffs)
		}
	}
}

func TestDefaultParamsValidate(t *testing.T) {
	if err := DefaultParams(0).Validate(); err != nil {
		t.Error(err)
	}
	if err := DefaultParams(100).Validate(); err != nil {
		t.Error(err)
	}
	bad := DefaultParams(0)
	bad.ArrivalFactor = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero arrival factor accepted")
	}
	bad = DefaultParams(0)
	bad.InaccuracyPct = 120
	if err := bad.Validate(); err == nil {
		t.Error("inaccuracy 120 accepted")
	}
	bad = DefaultParams(0)
	bad.PenaltyMean = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative penalty mean accepted")
	}
}

func TestQoSConfigPropagation(t *testing.T) {
	p := DefaultParams(40)
	p.DeadlineMean = 7
	p.BudgetRatio = 9
	p.PenaltyBias = 3
	cfg := p.QoSConfig(5)
	if cfg.InaccuracyPct != 40 || cfg.Deadline.LowMean != 7 || cfg.Budget.HighLowRatio != 9 || cfg.Penalty.Bias != 3 {
		t.Errorf("QoSConfig lost parameters: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

// smallSuite shrinks a suite to test scale.
func smallSuite(model economy.Model, setB bool) SuiteConfig {
	cfg := DefaultSuiteConfig(model, setB)
	cfg.Jobs = 120
	cfg.Nodes = 32
	synth := workload.DefaultSynthConfig()
	synth.Widths = []int{1, 2, 4, 8, 16, 32}
	synth.WidthWeights = []float64{0.3, 0.2, 0.2, 0.15, 0.1, 0.05}
	synth.MeanInterArrival = 600
	cfg.Synth = &synth
	return cfg
}

func TestSuiteRunShape(t *testing.T) {
	res, err := Run(smallSuite(economy.Commodity, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.SetName != "Set A" {
		t.Errorf("SetName = %q", res.SetName)
	}
	if len(res.Policies) != 5 {
		t.Fatalf("policies = %v, want 5", res.Policies)
	}
	if len(res.Scenarios) != 12 {
		t.Fatalf("scenarios = %d, want 12", len(res.Scenarios))
	}
	for _, sc := range res.Scenarios {
		if len(sc.Reports) != 6 {
			t.Fatalf("%s has %d value cells, want 6", sc.Name, len(sc.Reports))
		}
		for vi, cell := range sc.Reports {
			if len(cell) != 5 {
				t.Fatalf("%s[%d] has %d policy reports, want 5", sc.Name, vi, len(cell))
			}
			for p, rep := range cell {
				if rep.Submitted != 120 {
					t.Fatalf("%s[%d]/%s submitted = %d, want 120", sc.Name, vi, p, rep.Submitted)
				}
			}
		}
	}
}

func TestSuiteSeparateSeries(t *testing.T) {
	res, err := Run(smallSuite(economy.Commodity, false))
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range risk.AllObjectives {
		series, err := res.SeparateSeries(obj)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) != 5 {
			t.Fatalf("%v: %d series, want 5", obj, len(series))
		}
		for _, s := range series {
			if len(s.Points) != 12 {
				t.Fatalf("%v/%s: %d points, want 12", obj, s.Policy, len(s.Points))
			}
			for _, pt := range s.Points {
				if pt.Performance < 0 || pt.Performance > 1 || pt.Volatility < 0 || pt.Volatility > 0.5+1e-9 {
					t.Fatalf("%v/%s: point %+v out of range (volatility of [0,1] data is ≤ 0.5)", obj, s.Policy, pt)
				}
			}
		}
	}
	// Libra family must sit at ideal wait (performance 1, volatility 0).
	series, _ := res.SeparateSeries(risk.Wait)
	for _, s := range series {
		if s.Policy != "Libra" && s.Policy != "Libra+$" {
			continue
		}
		for i, pt := range s.Points {
			if pt.Performance != 1 || pt.Volatility != 0 {
				t.Errorf("%s wait point %d = %+v, want ideal (1, 0)", s.Policy, i, pt)
			}
		}
	}
}

func TestSuiteIntegratedSeries(t *testing.T) {
	res, err := Run(smallSuite(economy.BidBased, true))
	if err != nil {
		t.Fatal(err)
	}
	all, err := res.IntegratedSeries(risk.AllObjectives)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("%d integrated series, want 5", len(all))
	}
	for _, s := range all {
		if len(s.Points) != 12 {
			t.Fatalf("%s: %d points, want 12", s.Policy, len(s.Points))
		}
	}
	// Integration with a delta weight on one objective reproduces the
	// separate analysis of that objective.
	sep, err := res.SeparateSeries(risk.SLA)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := res.IntegratedSeriesWeighted([]risk.Objective{risk.SLA}, risk.Weights{risk.SLA: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sep {
		for k := range sep[i].Points {
			if math.Abs(sep[i].Points[k].Performance-delta[i].Points[k].Performance) > 1e-12 {
				t.Fatalf("delta-weighted integration diverges from separate analysis")
			}
		}
	}
}

func TestObjectiveTriples(t *testing.T) {
	triples := ObjectiveTriples()
	if len(triples) != 4 {
		t.Fatalf("%d triples, want 4", len(triples))
	}
	for i, tr := range triples {
		if len(tr) != 3 {
			t.Fatalf("triple %d has %d objectives", i, len(tr))
		}
		for _, o := range tr {
			if o == risk.AllObjectives[i] {
				t.Errorf("triple %d still contains dropped objective %v", i, o)
			}
		}
	}
}

func TestRunCellSingle(t *testing.T) {
	cfg := smallSuite(economy.Commodity, false)
	spec, err := scheduler.SpecByName("Libra")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunCell(cfg, DefaultParams(0), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != cfg.Jobs {
		t.Errorf("submitted = %d, want %d", rep.Submitted, cfg.Jobs)
	}
	if rep.Wait != 0 {
		t.Errorf("Libra wait = %v, want 0", rep.Wait)
	}
}

func TestSuiteRejectsBadConfig(t *testing.T) {
	cfg := smallSuite(economy.Commodity, false)
	cfg.Jobs = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero jobs accepted")
	}
	cfg = smallSuite(economy.Commodity, false)
	cfg.Nodes = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero nodes accepted")
	}
}

// The suite must be deterministic regardless of worker count.
func TestSuiteDeterministicAcrossWorkers(t *testing.T) {
	cfg := smallSuite(economy.Commodity, true)
	cfg.Jobs = 60
	cfg.Workers = 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Scenarios {
		for vi := range a.Scenarios[si].Reports {
			for p, ra := range a.Scenarios[si].Reports[vi] {
				rb := b.Scenarios[si].Reports[vi][p]
				if ra != rb {
					t.Fatalf("worker-count nondeterminism at %s[%d]/%s", a.Scenarios[si].Name, vi, p)
				}
			}
		}
	}
}

// Trace override: supplying an explicit trace bypasses generation.
func TestSuiteWithExplicitTrace(t *testing.T) {
	synth := workload.DefaultSynthConfig()
	synth.Jobs = 50
	synth.Widths = []int{1, 2, 4}
	synth.WidthWeights = []float64{0.5, 0.3, 0.2}
	trace, err := workload.Generate(synth, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSuiteConfig(economy.Commodity, false)
	cfg.Trace = trace
	cfg.Nodes = 8
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scenarios[0].Reports[0]["Libra"].Submitted; got != 50 {
		t.Errorf("submitted = %d, want 50 (explicit trace)", got)
	}
}

func TestSeriesCarryScenarioLabels(t *testing.T) {
	res, err := Run(smallSuite(economy.Commodity, false))
	if err != nil {
		t.Fatal(err)
	}
	sep, err := res.SeparateSeries(risk.SLA)
	if err != nil {
		t.Fatal(err)
	}
	integ, err := res.IntegratedSeries(risk.AllObjectives)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range [][]risk.Series{sep, integ} {
		for _, s := range series {
			if len(s.Labels) != len(s.Points) {
				t.Fatalf("%s: %d labels for %d points", s.Policy, len(s.Labels), len(s.Points))
			}
			if s.Labels[0] != "job mix" || s.Labels[1] != "workload" {
				t.Errorf("%s labels = %v...", s.Policy, s.Labels[:2])
			}
		}
	}
}

func TestRunCellDetailed(t *testing.T) {
	cfg := smallSuite(economy.BidBased, true)
	spec, err := scheduler.SpecByName("LibraRiskD")
	if err != nil {
		t.Fatal(err)
	}
	rep, outcomes, err := RunCellDetailed(cfg, DefaultParams(100), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != rep.Submitted {
		t.Fatalf("%d outcomes for %d submitted", len(outcomes), rep.Submitted)
	}
	fulfilled := 0
	for _, o := range outcomes {
		if o.SLAFulfilled() {
			fulfilled++
		}
	}
	if fulfilled != rep.SLAFulfilled {
		t.Errorf("outcome fulfilment %d != report %d", fulfilled, rep.SLAFulfilled)
	}
}

func TestReplicationsSmoothButPreserveShape(t *testing.T) {
	cfg := smallSuite(economy.Commodity, false)
	cfg.Jobs = 80
	single, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replications = 3
	tripled, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Shape invariants hold for the averaged reports too.
	rep := tripled.Scenarios[0].Reports[0]["Libra"]
	if rep.Wait != 0 {
		t.Errorf("replicated Libra wait = %v, want 0", rep.Wait)
	}
	if rep.Submitted != 80 {
		t.Errorf("replicated submitted = %d", rep.Submitted)
	}
	// And the averaged value differs from the single-seed one somewhere
	// (three different traces cannot agree everywhere).
	same := true
	for si := range single.Scenarios {
		for vi := range single.Scenarios[si].Reports {
			for p, r1 := range single.Scenarios[si].Reports[vi] {
				if r1 != tripled.Scenarios[si].Reports[vi][p] {
					same = false
				}
			}
		}
	}
	if same {
		t.Error("replicated results identical to single seed")
	}
}

func TestScenarioFilter(t *testing.T) {
	cfg := smallSuite(economy.Commodity, false)
	cfg.ScenarioFilter = []string{"workload", "inaccuracy"}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 2 {
		t.Fatalf("filtered suite has %d scenarios, want 2", len(res.Scenarios))
	}
	if res.Scenarios[0].Name != "workload" || res.Scenarios[1].Name != "inaccuracy" {
		t.Errorf("scenario order: %s, %s", res.Scenarios[0].Name, res.Scenarios[1].Name)
	}
	series, err := res.SeparateSeries(risk.SLA)
	if err != nil {
		t.Fatal(err)
	}
	if len(series[0].Points) != 2 {
		t.Errorf("series has %d points, want 2", len(series[0].Points))
	}
	cfg.ScenarioFilter = []string{"no such scenario"}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown scenario filter accepted")
	}
}

// TestParamsValidateErrorOrderStable pins Validate's error message when
// several parameters are invalid at once: always the first in the
// documented bias, ratio, mean order — never a map-iteration-dependent
// pick (the bug class repolint's maporder rule guards against).
func TestParamsValidateErrorOrderStable(t *testing.T) {
	bad := DefaultParams(0)
	bad.PenaltyMean = -1
	bad.BudgetRatio = 0
	bad.DeadlineBias = 0
	want := "experiment: non-positive deadline bias 0"
	for i := 0; i < 100; i++ {
		err := bad.Validate()
		if err == nil {
			t.Fatal("invalid params accepted")
		}
		if err.Error() != want {
			t.Fatalf("iteration %d: error %q, want %q", i, err, want)
		}
	}
}
