package experiment

import (
	"fmt"

	"repro/internal/risk"
	"repro/internal/stats"
)

// RankFirstProbability estimates, by paired bootstrap over each scenario's
// six sweep values, how often each policy would top the integrated
// best-performance ranking if the scenarios had sampled slightly different
// operating points. Resampling is paired: the same value indices are drawn
// for every policy within a scenario, preserving the head-to-head
// structure of the evaluation. A winner with probability ~1 is robust; a
// 0.5/0.5 split between two policies says the paper-style point ranking
// hides a coin flip.
func RankFirstProbability(res *Results, objs []risk.Objective, resamples int, seed int64) (map[string]float64, error) {
	if resamples < 10 {
		return nil, fmt.Errorf("experiment: %d resamples, want >= 10", resamples)
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("experiment: no objectives")
	}
	// Precompute normalized results per objective, scenario, policy.
	type cell map[string][]float64 // policy -> normalized per value
	norm := make(map[risk.Objective][]cell, len(objs))
	for _, obj := range objs {
		perScenario := make([]cell, len(res.Scenarios))
		for si, sc := range res.Scenarios {
			c := make(cell, len(res.Policies))
			for vi := range sc.Values {
				raw := make(map[string]float64, len(res.Policies))
				for _, p := range res.Policies {
					rep, ok := sc.Reports[vi][p]
					if !ok {
						return nil, fmt.Errorf("experiment: missing report for %s at %s[%d]", p, sc.Name, vi)
					}
					raw[p] = risk.Raw(obj, rep)
				}
				for p, v := range risk.NormalizeAcross(obj, raw) {
					c[p] = append(c[p], v)
				}
			}
			perScenario[si] = c
		}
		norm[obj] = perScenario
	}

	rng := stats.NewRand(seed)
	weights := risk.EqualWeights(objs)
	wins := make(map[string]float64, len(res.Policies))
	indices := make([]int, 0, 8)
	for r := 0; r < resamples; r++ {
		series := make([]risk.Series, len(res.Policies))
		for i, p := range res.Policies {
			series[i] = risk.Series{Policy: p}
		}
		for si, sc := range res.Scenarios {
			// Paired draw: one index set for all policies and objectives.
			indices = indices[:0]
			for k := 0; k < len(sc.Values); k++ {
				indices = append(indices, rng.Intn(len(sc.Values)))
			}
			for i, p := range res.Policies {
				points := make(map[risk.Objective]risk.Point, len(objs))
				for _, obj := range objs {
					values := norm[obj][si][p]
					sample := make([]float64, len(indices))
					for k, idx := range indices {
						sample[k] = values[idx]
					}
					pt, err := risk.Separate(sample)
					if err != nil {
						return nil, err
					}
					points[obj] = pt
				}
				integrated, err := risk.Integrate(points, weights)
				if err != nil {
					return nil, err
				}
				series[i].Points = append(series[i].Points, integrated)
			}
		}
		ranked, err := risk.RankByPerformance(series)
		if err != nil {
			return nil, err
		}
		wins[ranked[0].Series.Policy]++
	}
	for p := range wins {
		wins[p] /= float64(resamples)
	}
	return wins, nil
}
