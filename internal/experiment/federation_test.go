package experiment

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/broker"
	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/scheduler"
)

// mustSpec resolves a policy spec by name.
func mustSpec(t *testing.T, name string) scheduler.Spec {
	t.Helper()
	spec, err := scheduler.SpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// testFederation is the 4-cluster heterogeneous federation used by the
// suite-level federation tests, sized for smallSuite's 32-wide workload.
func testFederation() *broker.Federation {
	return &broker.Federation{Clusters: []broker.ClusterSpec{
		{Name: "ref", Nodes: 32},
		{Name: "fast", Nodes: 16, Speed: 1.5, PriceFactor: 1.25},
		{Name: "budget", Nodes: 24, Speed: 0.8, PriceFactor: 0.7},
		{Name: "bulk", Nodes: 32, Speed: 1.1, PriceFactor: 0.9},
	}}
}

// degenerateFederation is the 1-cluster neutral spelling of cfg's single
// machine: running it through the meta-broker must be a distinction
// without a difference.
func degenerateFederation(cfg SuiteConfig) *broker.Federation {
	return &broker.Federation{Clusters: []broker.ClusterSpec{{Name: "only", Nodes: cfg.Nodes}}}
}

// The differential oracle: a 1-cluster neutral federation must reproduce
// the plain single-cluster suite bit for bit — DeepEqual results and
// byte-identical canonical journals — for every Table V policy of both
// economic models across 10 trace seeds, fault injection included (odd
// seeds run at high intensity, which exercises the cluster-0 sub-seed
// identity clusterFaultSeed(s, r, 0) == repSeed(s, r)).
func TestDegenerateFederationMatchesPlainRun(t *testing.T) {
	for _, model := range []economy.Model{economy.Commodity, economy.BidBased} {
		for seed := int64(1); seed <= 10; seed++ {
			cfg := smallSuite(model, false)
			cfg.Jobs = 60
			cfg.ScenarioFilter = []string{"workload"}
			cfg.TraceSeed = seed
			cfg.QoSSeed = seed + 100
			if seed%2 == 1 {
				cfg.FaultIntensity = faults.High
				cfg.FaultSeed = seed + 200
			}

			plain, plainRec := runObserved(t, cfg)

			fedCfg := cfg
			fedCfg.Federation = degenerateFederation(cfg)
			if fedCfg.federated() {
				t.Fatal("degenerate federation classified as federated")
			}
			fed, fedRec := runObserved(t, fedCfg)

			if !reflect.DeepEqual(plain, fed) {
				t.Fatalf("%s seed %d: degenerate federation results differ from plain run", model, seed)
			}
			if len(fed.Clusters) != 0 {
				t.Fatalf("%s seed %d: degenerate federation reported clusters %v", model, seed, fed.Clusters)
			}
			if !bytes.Equal(canonical(t, plainRec), canonical(t, fedRec)) {
				t.Fatalf("%s seed %d: degenerate federation journal differs from plain run", model, seed)
			}
		}
	}
}

// A genuinely federated suite must be bit-for-bit independent of the
// worker count — DeepEqual results (per-cluster breakdowns and routing
// digests included) and byte-identical canonical journals for 1, 4, and
// 8 workers — across the full fault-intensity axis. make verify re-runs
// this under -race, which is the required stress configuration.
func TestFederatedSuiteDeterministicAcrossWorkers(t *testing.T) {
	for _, intensity := range []faults.Intensity{faults.None, faults.Low, faults.High} {
		cfg := smallSuite(economy.Commodity, false)
		cfg.Jobs = 60
		cfg.ScenarioFilter = []string{"workload"}
		cfg.PolicyFilter = []string{"FCFS-BF", "Libra"}
		cfg.FaultIntensity = intensity
		cfg.FaultSeed = 7
		cfg.Federation = testFederation()
		if !cfg.federated() {
			t.Fatal("heterogeneous federation not classified as federated")
		}

		var ref *Results
		var refBytes []byte
		for _, workers := range []int{1, 4, 8} {
			cfg.Workers = workers
			res, rec := runObserved(t, cfg)
			assertSuiteConservation(t, cfg, res)
			if ref == nil {
				ref, refBytes = res, canonical(t, rec)
				continue
			}
			if !reflect.DeepEqual(ref, res) {
				t.Fatalf("%s: federated results differ between 1 and %d workers", intensity, workers)
			}
			if !bytes.Equal(refBytes, canonical(t, rec)) {
				t.Fatalf("%s: federated canonical journal differs between 1 and %d workers", intensity, workers)
			}
		}
		if len(ref.Clusters) != 4 {
			t.Fatalf("%s: Clusters = %v, want the 4 federation members", intensity, ref.Clusters)
		}
	}
}

// assertSuiteConservation checks every federated cell conserves counts and
// settlements: the cell's federation report is exactly the ordered sum of
// its per-cluster reports (single-replication suites carry cluster reports
// verbatim, so the sums are bitwise).
func assertSuiteConservation(t *testing.T, cfg SuiteConfig, res *Results) {
	t.Helper()
	for _, sc := range res.Scenarios {
		for vi := range sc.Values {
			for _, p := range res.Policies {
				total := sc.Reports[vi][p]
				clusters, ok := sc.ClusterReports[vi][p]
				if !ok {
					t.Fatalf("%s[%d]/%s: no cluster reports", sc.Name, vi, p)
				}
				if len(clusters) != len(cfg.Federation.Clusters) {
					t.Fatalf("%s[%d]/%s: %d cluster reports for %d clusters",
						sc.Name, vi, p, len(clusters), len(cfg.Federation.Clusters))
				}
				if sc.RoutingDigests[vi][p] == "" {
					t.Errorf("%s[%d]/%s: empty routing digest", sc.Name, vi, p)
				}
				var submitted, accepted, fulfilled, killed int
				var utility, budget float64
				for _, c := range clusters {
					submitted += c.Submitted
					accepted += c.Accepted
					fulfilled += c.SLAFulfilled
					killed += c.Killed
					utility += c.TotalUtility
					budget += c.TotalBudget
				}
				if total.Submitted != submitted || total.Accepted != accepted ||
					total.SLAFulfilled != fulfilled || total.Killed != killed {
					t.Errorf("%s[%d]/%s: count conservation broken: %+v vs sums sub=%d acc=%d sla=%d kill=%d",
						sc.Name, vi, p, total, submitted, accepted, fulfilled, killed)
				}
				if total.TotalUtility != utility || total.TotalBudget != budget {
					t.Errorf("%s[%d]/%s: settlement conservation broken: %v/%v vs sums %v/%v",
						sc.Name, vi, p, total.TotalUtility, total.TotalBudget, utility, budget)
				}
			}
		}
	}
}

// CellKey must fold the federation's identity in — except the degenerate
// spelling, which shares the plain key so journals stay interchangeable.
func TestFederationCellKey(t *testing.T) {
	cfg := smallSuite(economy.Commodity, false)
	plain := cfg.CellKey("workload", 0.25, "Libra")

	deg := cfg
	deg.Federation = degenerateFederation(cfg)
	if got := deg.CellKey("workload", 0.25, "Libra"); got != plain {
		t.Errorf("degenerate federation changed the cell key: %s vs %s", got, plain)
	}

	fed := cfg
	fed.Federation = testFederation()
	fedKey := fed.CellKey("workload", 0.25, "Libra")
	if fedKey == plain {
		t.Error("heterogeneous federation kept the plain cell key")
	}

	// Any identity change — a speed, a name, a private intensity — must
	// move the key.
	variant := *testFederation()
	variant.Clusters[1].Speed = 2
	fed.Federation = &variant
	if fed.CellKey("workload", 0.25, "Libra") == fedKey {
		t.Error("cluster speed change did not move the cell key")
	}
	variant = *testFederation()
	variant.Clusters = append([]broker.ClusterSpec(nil), variant.Clusters...)
	variant.Clusters[2].FaultIntensity = faults.High
	fed.Federation = &variant
	if fed.CellKey("workload", 0.25, "Libra") == fedKey {
		t.Error("private cluster intensity did not move the cell key")
	}
}

// ClusterView projects a federated result down to one member and keeps the
// grid shape; out-of-range or missing clusters are errors.
func TestClusterView(t *testing.T) {
	cfg := smallSuite(economy.Commodity, false)
	cfg.Jobs = 60
	cfg.ScenarioFilter = []string{"workload"}
	cfg.PolicyFilter = []string{"FCFS-BF", "Libra"}
	cfg.Federation = testFederation()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for ci, name := range res.Clusters {
		view, err := res.ClusterView(ci)
		if err != nil {
			t.Fatalf("ClusterView(%d %s): %v", ci, name, err)
		}
		if len(view.Scenarios) != len(res.Scenarios) {
			t.Fatalf("view has %d scenarios, want %d", len(view.Scenarios), len(res.Scenarios))
		}
		for si, sc := range view.Scenarios {
			for vi := range sc.Values {
				for _, p := range res.Policies {
					want := res.Scenarios[si].ClusterReports[vi][p][ci]
					if got := sc.Reports[vi][p]; got != want {
						t.Fatalf("view %s: %s[%d]/%s report differs from cluster breakdown", name, sc.Name, vi, p)
					}
				}
			}
		}
	}
	if _, err := res.ClusterView(len(res.Clusters)); err == nil {
		t.Error("out-of-range cluster index accepted")
	}
	if _, err := res.ClusterView(-1); err == nil {
		t.Error("negative cluster index accepted")
	}
	plain, err := Run(smallSuiteTrimmed())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.ClusterView(0); err == nil {
		t.Error("ClusterView on a non-federated result accepted")
	}
}

func smallSuiteTrimmed() SuiteConfig {
	cfg := smallSuite(economy.Commodity, false)
	cfg.Jobs = 60
	cfg.ScenarioFilter = []string{"workload"}
	cfg.PolicyFilter = []string{"FCFS-BF"}
	return cfg
}

// A federated journal must resume bit for bit: feeding a completed run's
// records back as Resume re-executes nothing and reproduces the identical
// results, per-cluster breakdowns included.
func TestFederatedResumeByteIdentical(t *testing.T) {
	cfg := smallSuite(economy.Commodity, false)
	cfg.Jobs = 60
	cfg.ScenarioFilter = []string{"workload"}
	cfg.PolicyFilter = []string{"FCFS-BF", "Libra"}
	cfg.FaultIntensity = faults.Low
	cfg.Federation = testFederation()

	full, fullRec := runObserved(t, cfg)
	for _, r := range fullRec.done {
		if r.Federation == nil {
			t.Fatalf("federated cell %s journaled without a federation record", r.Key)
		}
		if len(r.Federation.Clusters) != 4 || r.Federation.RoutingDigest == "" {
			t.Fatalf("federated record malformed: %+v", r.Federation)
		}
	}

	cfg.Resume = recordMap(fullRec)
	resumed, resumedRec := runObserved(t, cfg)
	if resumedRec.executed != 0 {
		t.Fatalf("resume re-executed %d cells", resumedRec.executed)
	}
	if !reflect.DeepEqual(full, resumed) {
		t.Fatal("resumed federated results differ from the original run")
	}
	if !bytes.Equal(canonical(t, fullRec), canonical(t, resumedRec)) {
		t.Fatal("resumed federated canonical journal differs from the original run")
	}
}

// Replicated federated cells reduce deterministically: the same order-fixed
// merge for every worker count, with the cell digest combining the
// per-replication digests in replication order.
func TestFederatedReplicationsDeterministic(t *testing.T) {
	cfg := smallSuite(economy.Commodity, false)
	cfg.Jobs = 60
	cfg.ScenarioFilter = []string{"workload"}
	cfg.PolicyFilter = []string{"FCFS-BF"}
	cfg.Replications = 3
	cfg.FaultIntensity = faults.High
	cfg.FaultSeed = 11
	cfg.Federation = testFederation()

	cfg.Workers = 1
	a, recA := runObserved(t, cfg)
	cfg.Workers = 8
	b, recB := runObserved(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("replicated federated results differ between 1 and 8 workers")
	}
	if !bytes.Equal(canonical(t, recA), canonical(t, recB)) {
		t.Fatal("replicated federated journals differ between 1 and 8 workers")
	}

	// The single-cell path reduces with the identical convention.
	spec := mustSpec(t, "FCFS-BF")
	p := DefaultParams(cfg.inaccuracyDefault())
	p.ArrivalFactor = 1 // the workload scenario's neutral value-1 cell
	rep, fed, err := RunCellFederated(cfg, p, spec)
	if err != nil {
		t.Fatal(err)
	}
	sc := a.Scenarios[0]
	vi := valueIndex(t, sc.Values, 1)
	if rep != sc.Reports[vi]["FCFS-BF"] {
		t.Fatal("RunCellFederated report differs from the suite cell")
	}
	if fed == nil {
		t.Fatal("RunCellFederated returned no federation record")
	}
	if fed.RoutingDigest != sc.RoutingDigests[vi]["FCFS-BF"] {
		t.Fatal("RunCellFederated digest differs from the suite cell")
	}
	for ci := range fed.Clusters {
		if fed.Clusters[ci].Report != sc.ClusterReports[vi]["FCFS-BF"][ci] {
			t.Fatalf("RunCellFederated cluster %d report differs from the suite cell", ci)
		}
	}
}

// valueIndex finds the index of the neutral scenario value (the suite's
// default workload factor 1).
func valueIndex(t *testing.T, values []float64, want float64) int {
	t.Helper()
	for i, v := range values {
		if v == want {
			return i
		}
	}
	t.Fatalf("value %v not in %v", want, values)
	return -1
}

// Federated results survive the JSON round trip with their per-cluster
// breakdown; a truncated cluster section is rejected.
func TestFederatedResultsJSONRoundTrip(t *testing.T) {
	cfg := smallSuite(economy.Commodity, false)
	cfg.Jobs = 60
	cfg.ScenarioFilter = []string{"workload"}
	cfg.PolicyFilter = []string{"FCFS-BF", "Libra"}
	cfg.Federation = testFederation()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatal("federated results changed across the JSON round trip")
	}

	// Dropping the cluster reports while keeping the cluster names must be
	// rejected, not silently read back as a plain result.
	mangled := *res
	mangled.Scenarios = append([]ScenarioResult(nil), res.Scenarios...)
	mangled.Scenarios[0].ClusterReports = nil
	mangled.Scenarios[0].RoutingDigests = nil
	buf.Reset()
	if err := mangled.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("federated file missing cluster reports accepted")
	}
}

// An invalid federation is rejected before any simulation, on both the
// suite and single-cell paths.
func TestFederationValidatedUpFront(t *testing.T) {
	cfg := smallSuiteTrimmed()
	cfg.Federation = &broker.Federation{Clusters: []broker.ClusterSpec{
		{Name: "dup", Nodes: 32}, {Name: "dup", Nodes: 32},
	}}
	if _, err := Run(cfg); err == nil {
		t.Error("suite accepted a federation with duplicate cluster names")
	}
	spec := mustSpec(t, "FCFS-BF")
	if _, _, err := RunCellFederated(cfg, DefaultParams(0), spec); err == nil {
		t.Error("RunCellFederated accepted a federation with duplicate cluster names")
	}
}
