package experiment

import (
	"bytes"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/economy"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/risk"
)

// panelBytes renders a suite's full artifact surface — separate-analysis
// CSV and SVG panels for every objective, plus the integrated panel — into
// one byte blob. Byte equality of two blobs is the artifact-level
// determinism oracle: it covers not just the reports but every float that
// reaches a published figure.
func panelBytes(t *testing.T, res *Results) []byte {
	t.Helper()
	var buf bytes.Buffer
	cfg := plot.Config{TrendLines: true}
	for _, obj := range risk.AllObjectives {
		series, err := res.SeparateSeries(obj)
		if err != nil {
			t.Fatal(err)
		}
		buf.WriteString(plot.CSV(series))
		buf.WriteString(plot.SVG(series, cfg))
	}
	integrated, err := res.IntegratedSeries(risk.AllObjectives)
	if err != nil {
		t.Fatal(err)
	}
	buf.WriteString(plot.CSV(integrated))
	buf.WriteString(plot.SVG(integrated, cfg))
	return buf.Bytes()
}

// runObserved runs cfg with a recording reporter and returns both the
// results and the captured records.
func runObserved(t *testing.T, cfg SuiteConfig) (*Results, *recordingReporter) {
	t.Helper()
	rec := &recordingReporter{}
	cfg.Observer = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

// TestReplicatedSuiteByteIdenticalAcrossWorkers is the tentpole contract:
// a replicated suite executed on the (cell, replication) worker pool is
// bit-for-bit identical to the serial run — reports, canonical journals,
// and rendered panels — for every fault intensity and worker count.
func TestReplicatedSuiteByteIdenticalAcrossWorkers(t *testing.T) {
	for _, intensity := range []faults.Intensity{faults.None, faults.Low, faults.High} {
		t.Run(string(intensity), func(t *testing.T) {
			cfg := observedSuite(t)
			cfg.ScenarioFilter = []string{"workload"}
			cfg.Replications = 3
			cfg.FaultIntensity = intensity
			cfg.FaultSeed = 7

			cfg.Workers = 1
			serialRes, serialRec := runObserved(t, cfg)
			serialJournal := canonical(t, serialRec)
			serialPanels := panelBytes(t, serialRes)

			for _, workers := range []int{4, 8} {
				cfg.Workers = workers
				res, rec := runObserved(t, cfg)
				if !reflect.DeepEqual(serialRes, res) {
					t.Fatalf("results differ between Workers=1 and Workers=%d", workers)
				}
				if !bytes.Equal(serialJournal, canonical(t, rec)) {
					t.Fatalf("canonical journals differ between Workers=1 and Workers=%d", workers)
				}
				if !bytes.Equal(serialPanels, panelBytes(t, res)) {
					t.Fatalf("panel bytes differ between Workers=1 and Workers=%d", workers)
				}
			}
		})
	}
}

// TestReplicatedFullSuiteRaceStress runs the complete 12-scenario grid,
// replicated, on a saturated worker pool under fault injection — the
// worst-case concurrency shape (shared trace cache, same-cell replications
// in flight simultaneously, reduce racing the enqueue) — and asserts the
// rendered panels are byte-identical to the serial run. Under -race (make
// verify) this doubles as the synchronization proof for the whole fan-out.
func TestReplicatedFullSuiteRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("full replicated grid is slow; skipped with -short")
	}
	for _, intensity := range []faults.Intensity{faults.Low, faults.High} {
		t.Run(string(intensity), func(t *testing.T) {
			cfg := smallSuite(economy.Commodity, false)
			cfg.Jobs = 30
			cfg.Replications = 3
			cfg.FaultIntensity = intensity
			cfg.FaultSeed = 11

			cfg.Workers = 1
			serial, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// At least 4 workers even on a single-core runner: interleaving,
			// not parallel speedup, is what the race detector needs.
			cfg.Workers = runtime.GOMAXPROCS(0)
			if cfg.Workers < 4 {
				cfg.Workers = 4
			}
			parallel, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(panelBytes(t, serial), panelBytes(t, parallel)) {
				t.Fatalf("panel bytes differ between Workers=1 and Workers=%d", cfg.Workers)
			}
		})
	}
}

// repRecorder extends recordingReporter with the optional per-replication
// progress callback.
type repRecorder struct {
	recordingReporter
	mu   sync.Mutex
	reps map[string][]int // cell key → replication indices, completion order
}

func (r *repRecorder) ReplicationDone(c obs.Cell, rep, reps int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.reps == nil {
		r.reps = make(map[string][]int)
	}
	r.reps[c.Key] = append(r.reps[c.Key], rep)
	if reps != 3 {
		r.reps[c.Key] = append(r.reps[c.Key], -reps) // poison: wrong total
	}
}

// TestReplicationProgressReporting pins the ReplicationReporter extension:
// Suite carries the replication count, every executed cell fires exactly
// reps ReplicationDone events covering indices 0..reps-1, CellStart fires
// once per cell, and Multi forwards the optional interface.
func TestReplicationProgressReporting(t *testing.T) {
	cfg := observedSuite(t)
	cfg.ScenarioFilter = []string{"workload"}
	cfg.Replications = 3
	cfg.Workers = 4
	rec := &repRecorder{}
	cfg.Observer = obs.Multi(rec) // through Multi: forwarding is part of the contract
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(rec.suites) != 1 || rec.suites[0].Replications != 3 {
		t.Fatalf("Suite.Replications not reported: %+v", rec.suites)
	}
	cells := rec.executed
	if cells == 0 {
		t.Fatal("no cells executed")
	}
	if len(rec.starts) != cells {
		t.Errorf("CellStart fired %d times for %d cells (must be once per cell)", len(rec.starts), cells)
	}
	if len(rec.reps) != cells {
		t.Fatalf("ReplicationDone covered %d cells, want %d", len(rec.reps), cells)
	}
	for key, idx := range rec.reps {
		if len(idx) != 3 {
			t.Fatalf("cell %s: %d replication events (want 3): %v", key, len(idx), idx)
		}
		seen := map[int]bool{}
		for _, r := range idx {
			seen[r] = true
		}
		if !seen[0] || !seen[1] || !seen[2] {
			t.Fatalf("cell %s: replication indices %v do not cover 0..2", key, idx)
		}
	}
}

// The journal must stay cell-granularity: it deliberately does not
// implement the optional per-replication interface, so no journal record
// ordering can ever depend on replication completion order.
func TestJournalHasNoReplicationGranularity(t *testing.T) {
	var r obs.Reporter = &obs.Journal{}
	if _, ok := r.(obs.ReplicationReporter); ok {
		t.Fatal("obs.Journal implements ReplicationReporter; journal records must stay cell-granularity")
	}
}
