package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/economy"
	"repro/internal/metrics"
)

// resultsJSON is the stable on-disk shape of Results. Reports are keyed by
// policy name exactly as in memory; the model travels as its string name
// so files stay readable.
type resultsJSON struct {
	Model     string               `json:"model"`
	SetName   string               `json:"set"`
	Policies  []string             `json:"policies"`
	Scenarios []scenarioResultJSON `json:"scenarios"`
}

type scenarioResultJSON struct {
	Name    string                      `json:"name"`
	Values  []float64                   `json:"values"`
	Reports []map[string]metrics.Report `json:"reports"`
}

// WriteJSON serializes the results so a later process (or cmd/riskplot)
// can re-analyze them without re-running 2880 simulations.
func (r *Results) WriteJSON(w io.Writer) error {
	out := resultsJSON{
		Model:    r.Model.String(),
		SetName:  r.SetName,
		Policies: r.Policies,
	}
	for _, sc := range r.Scenarios {
		out.Scenarios = append(out.Scenarios, scenarioResultJSON{
			Name:    sc.Name,
			Values:  sc.Values,
			Reports: sc.Reports,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJSON deserializes results written by WriteJSON.
func ReadJSON(r io.Reader) (*Results, error) {
	var in resultsJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("experiment: decoding results: %w", err)
	}
	var model economy.Model
	switch in.Model {
	case economy.Commodity.String():
		model = economy.Commodity
	case economy.BidBased.String():
		model = economy.BidBased
	default:
		return nil, fmt.Errorf("experiment: unknown model %q in results file", in.Model)
	}
	out := &Results{Model: model, SetName: in.SetName, Policies: in.Policies}
	for _, sc := range in.Scenarios {
		if len(sc.Reports) != len(sc.Values) {
			return nil, fmt.Errorf("experiment: scenario %q has %d report cells for %d values",
				sc.Name, len(sc.Reports), len(sc.Values))
		}
		for vi, cell := range sc.Reports {
			for _, p := range in.Policies {
				if _, ok := cell[p]; !ok {
					return nil, fmt.Errorf("experiment: scenario %q value %d missing policy %q",
						sc.Name, vi, p)
				}
			}
		}
		out.Scenarios = append(out.Scenarios, ScenarioResult{
			Name:    sc.Name,
			Values:  sc.Values,
			Reports: sc.Reports,
		})
	}
	return out, nil
}
