package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/economy"
	"repro/internal/metrics"
)

// resultsJSON is the stable on-disk shape of Results. Reports are keyed by
// policy name exactly as in memory; the model travels as its string name
// so files stay readable.
type resultsJSON struct {
	Model     string               `json:"model"`
	SetName   string               `json:"set"`
	Policies  []string             `json:"policies"`
	Clusters  []string             `json:"clusters,omitempty"`
	Scenarios []scenarioResultJSON `json:"scenarios"`
}

type scenarioResultJSON struct {
	Name           string                        `json:"name"`
	Values         []float64                     `json:"values"`
	Reports        []map[string]metrics.Report   `json:"reports"`
	ClusterReports []map[string][]metrics.Report `json:"cluster_reports,omitempty"`
	RoutingDigests []map[string]string           `json:"routing_digests,omitempty"`
}

// WriteJSON serializes the results so a later process (or cmd/riskplot)
// can re-analyze them without re-running 2880 simulations.
func (r *Results) WriteJSON(w io.Writer) error {
	out := resultsJSON{
		Model:    r.Model.String(),
		SetName:  r.SetName,
		Policies: r.Policies,
		Clusters: r.Clusters,
	}
	for _, sc := range r.Scenarios {
		out.Scenarios = append(out.Scenarios, scenarioResultJSON{
			Name:           sc.Name,
			Values:         sc.Values,
			Reports:        sc.Reports,
			ClusterReports: sc.ClusterReports,
			RoutingDigests: sc.RoutingDigests,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJSON deserializes results written by WriteJSON.
func ReadJSON(r io.Reader) (*Results, error) {
	var in resultsJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("experiment: decoding results: %w", err)
	}
	var model economy.Model
	switch in.Model {
	case economy.Commodity.String():
		model = economy.Commodity
	case economy.BidBased.String():
		model = economy.BidBased
	default:
		return nil, fmt.Errorf("experiment: unknown model %q in results file", in.Model)
	}
	out := &Results{Model: model, SetName: in.SetName, Policies: in.Policies, Clusters: in.Clusters}
	for _, sc := range in.Scenarios {
		if len(sc.Reports) != len(sc.Values) {
			return nil, fmt.Errorf("experiment: scenario %q has %d report cells for %d values",
				sc.Name, len(sc.Reports), len(sc.Values))
		}
		for vi, cell := range sc.Reports {
			for _, p := range in.Policies {
				if _, ok := cell[p]; !ok {
					return nil, fmt.Errorf("experiment: scenario %q value %d missing policy %q",
						sc.Name, vi, p)
				}
			}
		}
		// A federated file carries the per-cluster breakdown for every cell
		// it carries a report for; a plain file carries neither field.
		if len(in.Clusters) > 0 {
			if len(sc.ClusterReports) != len(sc.Values) || len(sc.RoutingDigests) != len(sc.Values) {
				return nil, fmt.Errorf("experiment: federated scenario %q has %d cluster cells and %d digest cells for %d values",
					sc.Name, len(sc.ClusterReports), len(sc.RoutingDigests), len(sc.Values))
			}
			for vi, cell := range sc.ClusterReports {
				for _, p := range in.Policies {
					if len(cell[p]) != len(in.Clusters) {
						return nil, fmt.Errorf("experiment: scenario %q value %d policy %q has %d cluster reports for %d clusters",
							sc.Name, vi, p, len(cell[p]), len(in.Clusters))
					}
				}
			}
		}
		out.Scenarios = append(out.Scenarios, ScenarioResult{
			Name:           sc.Name,
			Values:         sc.Values,
			Reports:        sc.Reports,
			ClusterReports: sc.ClusterReports,
			RoutingDigests: sc.RoutingDigests,
		})
	}
	return out, nil
}
