package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Cell identifies one (scenario, value, policy) simulation cell of a
// suite. Key is the content hash of the cell's full parameterization (see
// experiment.SuiteConfig.CellKey).
type Cell struct {
	Key        string  `json:"key"`
	Model      string  `json:"model"`
	Set        string  `json:"set"`
	Scenario   string  `json:"scenario"`
	ValueIndex int     `json:"value_index"`
	Value      float64 `json:"value"`
	Policy     string  `json:"policy"`
}

// Record is the journal entry for one completed cell.
type Record struct {
	Cell
	// Replications is how many independently seeded simulations were
	// averaged into Report (at least 1).
	Replications int `json:"replications"`
	// WallSeconds is the cell's wall-clock simulation time. Zero for
	// resumed cells, which were not executed by this run.
	WallSeconds float64 `json:"wall_seconds"`
	// Resumed marks a cell satisfied from a prior run's journal rather
	// than executed. The journal itself never stores resumed records, so
	// a journal always lists exactly the cells its run simulated.
	Resumed bool `json:"resumed,omitempty"`
	// Report is the cell's full objective report.
	Report metrics.Report `json:"report"`
}

// Suite describes one suite run as it starts.
type Suite struct {
	Model string
	Set   string
	// Cells is the total cell count of the suite, including resumed ones.
	Cells int
	// Resumed is how many cells were satisfied from a prior journal and
	// will not be executed.
	Resumed int
}

// Summary describes a finished suite.
type Summary struct {
	Suite
	// Executed is how many cells this run actually simulated.
	Executed int
	// Elapsed is the suite's wall-clock time.
	Elapsed time.Duration
}

// Reporter observes the life cycle of a suite run. experiment.Run calls
// SuiteStart once, then CellDone for every resumed cell, then — from its
// worker pool, concurrently — CellStart as each pending cell begins and
// CellDone as it completes, and finally SuiteDone. Implementations must
// be safe for concurrent use.
type Reporter interface {
	SuiteStart(s Suite)
	CellStart(c Cell)
	CellDone(r Record)
	SuiteDone(s Summary)
}

// Nop is the no-op Reporter, used when SuiteConfig.Observer is nil.
type Nop struct{}

func (Nop) SuiteStart(Suite)  {}
func (Nop) CellStart(Cell)    {}
func (Nop) CellDone(Record)   {}
func (Nop) SuiteDone(Summary) {}

// Multi fans every event out to each non-nil reporter in order.
func Multi(rs ...Reporter) Reporter {
	var kept []Reporter
	for _, r := range rs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	return multi(kept)
}

type multi []Reporter

func (m multi) SuiteStart(s Suite) {
	for _, r := range m {
		r.SuiteStart(s)
	}
}
func (m multi) CellStart(c Cell) {
	for _, r := range m {
		r.CellStart(c)
	}
}
func (m multi) CellDone(rec Record) {
	for _, r := range m {
		r.CellDone(rec)
	}
}
func (m multi) SuiteDone(s Summary) {
	for _, r := range m {
		r.SuiteDone(s)
	}
}

// Terminal is a Reporter that prints live progress lines — done/total,
// cells/sec, and an ETA — to a writer on a fixed interval, plus one final
// line per suite. It is safe for concurrent use.
type Terminal struct {
	w        io.Writer
	interval time.Duration
	now      func() time.Time // test hook

	mu       sync.Mutex
	suite    Suite
	start    time.Time
	done     int // cells accounted for, including resumed
	executed int // cells this run simulated
	stop     chan struct{}
}

// NewTerminal returns a Terminal printing to w every interval (2s when
// interval is zero or negative).
func NewTerminal(w io.Writer, interval time.Duration) *Terminal {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &Terminal{w: w, interval: interval, now: time.Now} //lint:allow wallclock — progress ETA is real time by design (test hook overrides)
}

// SuiteStart resets the counters and starts the periodic printer.
func (t *Terminal) SuiteStart(s Suite) {
	t.mu.Lock()
	t.suite = s
	t.start = t.now()
	t.done = 0
	t.executed = 0
	t.stop = make(chan struct{})
	stop := t.stop
	t.mu.Unlock()
	go func() {
		tick := time.NewTicker(t.interval) //lint:allow wallclock — periodic progress printing runs on real time
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.print(false)
			}
		}
	}()
}

// CellStart is a no-op; Terminal reports completions only.
func (t *Terminal) CellStart(Cell) {}

// CellDone advances the counters.
func (t *Terminal) CellDone(r Record) {
	t.mu.Lock()
	t.done++
	if !r.Resumed {
		t.executed++
	}
	t.mu.Unlock()
}

// SuiteDone stops the periodic printer and prints the final line.
func (t *Terminal) SuiteDone(Summary) {
	t.mu.Lock()
	if t.stop != nil {
		close(t.stop)
		t.stop = nil
	}
	t.mu.Unlock()
	t.print(true)
}

func (t *Terminal) print(final bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	elapsed := t.now().Sub(t.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(t.executed) / elapsed
	}
	eta := "-"
	if remaining := t.suite.Cells - t.done; remaining <= 0 {
		eta = "0s"
	} else if rate > 0 {
		eta = (time.Duration(float64(remaining) / rate * float64(time.Second))).Round(time.Second).String()
	}
	status := "ETA " + eta
	if final {
		status = fmt.Sprintf("done in %v (%d resumed)",
			time.Duration(elapsed*float64(time.Second)).Round(time.Millisecond), t.suite.Resumed)
	}
	//lint:allow errignore — best-effort progress output; a broken stderr must not abort the suite
	fmt.Fprintf(t.w, "%s/%s: %d/%d cells, %.1f cells/s, %s\n",
		t.suite.Model, t.suite.Set, t.done, t.suite.Cells, rate, status)
}
