package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Cell identifies one (scenario, value, policy) simulation cell of a
// suite. Key is the content hash of the cell's full parameterization (see
// experiment.SuiteConfig.CellKey).
type Cell struct {
	Key        string  `json:"key"`
	Model      string  `json:"model"`
	Set        string  `json:"set"`
	Scenario   string  `json:"scenario"`
	ValueIndex int     `json:"value_index"`
	Value      float64 `json:"value"`
	Policy     string  `json:"policy"`
}

// Record is the journal entry for one completed cell.
type Record struct {
	Cell
	// Replications is how many independently seeded simulations were
	// averaged into Report (at least 1).
	Replications int `json:"replications"`
	// WallSeconds is the cell's wall-clock simulation time. Zero for
	// resumed cells, which were not executed by this run.
	WallSeconds float64 `json:"wall_seconds"`
	// Resumed marks a cell satisfied from a prior run's journal rather
	// than executed. The journal itself never stores resumed records, so
	// a journal always lists exactly the cells its run simulated.
	Resumed bool `json:"resumed,omitempty"`
	// Report is the cell's full objective report.
	Report metrics.Report `json:"report"`
	// Federation carries the per-cluster breakdown and routing digest when
	// the cell ran through the federation meta-broker with a federation
	// that is not reducible to the plain single-cluster path. Nil otherwise
	// — and omitted from the JSON — so a degenerate 1-cluster federation
	// journals byte-identically to today's single-cluster run.
	Federation *FederationRecord `json:"federation,omitempty"`
}

// FederationRecord is the journal-side view of one federated cell: the
// per-cluster reports behind the cell's aggregate Report, plus a digest of
// the broker's routing decisions (an FNV hash over the (job, cluster)
// placement sequence; for replicated cells, a hash over the per-replication
// digests in replication order). Byte equality of the digest across runs is
// the routing-determinism oracle.
type FederationRecord struct {
	Clusters      []ClusterRecord `json:"clusters"`
	RoutingDigest string          `json:"routing_digest"`
}

// ClusterRecord is one federation member's share of a cell: its identity,
// how many jobs the broker routed to it (averaged over replications), and
// its own objective report.
type ClusterRecord struct {
	Name   string         `json:"name"`
	Nodes  int            `json:"nodes"`
	Routed int            `json:"routed"`
	Report metrics.Report `json:"report"`
}

// Suite describes one suite run as it starts.
type Suite struct {
	Model string
	Set   string
	// Cells is the total cell count of the suite, including resumed ones.
	Cells int
	// Resumed is how many cells were satisfied from a prior journal and
	// will not be executed.
	Resumed int
	// Replications is how many independently seeded simulations each cell
	// averages over (at least 1). Cells × Replications is the suite's total
	// simulation count.
	Replications int
}

// Summary describes a finished suite.
type Summary struct {
	Suite
	// Executed is how many cells this run actually simulated.
	Executed int
	// Elapsed is the suite's wall-clock time.
	Elapsed time.Duration
}

// Reporter observes the life cycle of a suite run. experiment.Run calls
// SuiteStart once, then CellDone for every resumed cell, then — from its
// worker pool, concurrently — CellStart as each pending cell begins and
// CellDone as it completes, and finally SuiteDone. Implementations must
// be safe for concurrent use.
type Reporter interface {
	SuiteStart(s Suite)
	CellStart(c Cell)
	CellDone(r Record)
	SuiteDone(s Summary)
}

// ReplicationReporter is an optional extension of Reporter. When a suite
// runs with more than one replication per cell, the worker pool's unit of
// work is one (cell, replication) simulation; a Reporter that also
// implements ReplicationReporter receives ReplicationDone after each unit,
// giving it sub-cell progress granularity. rep is the replication index
// (0-based) and reps the cell's replication count.
//
// Calls fire concurrently from the worker pool, in completion order — NOT
// replication order — and carry no results: the suite's outputs (journal
// records, reports) remain strictly cell-granularity, so implementations
// must not infer ordering from them. The journal deliberately does not
// implement this interface.
type ReplicationReporter interface {
	ReplicationDone(c Cell, rep, reps int)
}

// Nop is the no-op Reporter, used when SuiteConfig.Observer is nil.
type Nop struct{}

func (Nop) SuiteStart(Suite)  {}
func (Nop) CellStart(Cell)    {}
func (Nop) CellDone(Record)   {}
func (Nop) SuiteDone(Summary) {}

// Multi fans every event out to each non-nil reporter in order.
func Multi(rs ...Reporter) Reporter {
	var kept []Reporter
	for _, r := range rs {
		if r != nil {
			kept = append(kept, r)
		}
	}
	return multi(kept)
}

type multi []Reporter

func (m multi) SuiteStart(s Suite) {
	for _, r := range m {
		r.SuiteStart(s)
	}
}
func (m multi) CellStart(c Cell) {
	for _, r := range m {
		r.CellStart(c)
	}
}
func (m multi) CellDone(rec Record) {
	for _, r := range m {
		r.CellDone(rec)
	}
}
func (m multi) SuiteDone(s Summary) {
	for _, r := range m {
		r.SuiteDone(s)
	}
}

// ReplicationDone forwards to every wrapped reporter that implements
// ReplicationReporter. multi always satisfies the interface so that
// wrapping never hides a reporter's replication granularity.
func (m multi) ReplicationDone(c Cell, rep, reps int) {
	for _, r := range m {
		if rr, ok := r.(ReplicationReporter); ok {
			rr.ReplicationDone(c, rep, reps)
		}
	}
}

// Terminal is a Reporter that prints live progress lines — done/total,
// cells/sec, and an ETA — to a writer on a fixed interval, plus one final
// line per suite. It is safe for concurrent use.
type Terminal struct {
	w        io.Writer
	interval time.Duration
	now      func() time.Time // test hook

	mu       sync.Mutex
	suite    Suite
	start    time.Time
	done     int // cells accounted for, including resumed
	executed int // cells this run simulated
	sims     int // replications completed (unit-level progress)
	stop     chan struct{}
}

// NewTerminal returns a Terminal printing to w every interval (2s when
// interval is zero or negative).
func NewTerminal(w io.Writer, interval time.Duration) *Terminal {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &Terminal{w: w, interval: interval, now: time.Now} //lint:allow wallclock — progress ETA is real time by design (test hook overrides)
}

// SuiteStart resets the counters and starts the periodic printer.
func (t *Terminal) SuiteStart(s Suite) {
	t.mu.Lock()
	t.suite = s
	t.start = t.now()
	t.done = 0
	t.executed = 0
	t.sims = 0
	t.stop = make(chan struct{})
	stop := t.stop
	t.mu.Unlock()
	go func() {
		tick := time.NewTicker(t.interval) //lint:allow wallclock — periodic progress printing runs on real time
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.print(false)
			}
		}
	}()
}

// CellStart is a no-op; Terminal reports completions only.
func (t *Terminal) CellStart(Cell) {}

// ReplicationDone advances the unit-level progress counter. With more
// than one replication per cell this gives the progress line (and its
// ETA) sub-cell granularity: a paper-scale cell no longer looks stalled
// for the duration of all its replications.
func (t *Terminal) ReplicationDone(Cell, int, int) {
	t.mu.Lock()
	t.sims++
	t.mu.Unlock()
}

// CellDone advances the counters.
func (t *Terminal) CellDone(r Record) {
	t.mu.Lock()
	t.done++
	if !r.Resumed {
		t.executed++
	}
	t.mu.Unlock()
}

// SuiteDone stops the periodic printer and prints the final line.
func (t *Terminal) SuiteDone(Summary) {
	t.mu.Lock()
	if t.stop != nil {
		close(t.stop)
		t.stop = nil
	}
	t.mu.Unlock()
	t.print(true)
}

func (t *Terminal) print(final bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	elapsed := t.now().Sub(t.start).Seconds()
	reps := t.suite.Replications
	if reps < 1 {
		reps = 1
	}
	// With replicated cells, progress and the ETA run at unit (single
	// simulation) granularity via the sims counter; otherwise at cell
	// granularity. Both count only executed work, never resumed cells.
	doneUnits, totalUnits := t.executed, t.suite.Cells-t.suite.Resumed
	if reps > 1 {
		doneUnits, totalUnits = t.sims, (t.suite.Cells-t.suite.Resumed)*reps
	}
	rate := 0.0
	if elapsed > 0 {
		rate = float64(doneUnits) / elapsed
	}
	eta := "-"
	if remaining := totalUnits - doneUnits; remaining <= 0 {
		eta = "0s"
	} else if rate > 0 {
		eta = (time.Duration(float64(remaining) / rate * float64(time.Second))).Round(time.Second).String()
	}
	status := "ETA " + eta
	if final {
		status = fmt.Sprintf("done in %v (%d resumed)",
			time.Duration(elapsed*float64(time.Second)).Round(time.Millisecond), t.suite.Resumed)
	}
	if reps > 1 {
		//lint:allow errignore — best-effort progress output; a broken stderr must not abort the suite
		fmt.Fprintf(t.w, "%s/%s: %d/%d cells, %d/%d sims, %.1f sims/s, %s\n",
			t.suite.Model, t.suite.Set, t.done, t.suite.Cells, t.sims, totalUnits, rate, status)
		return
	}
	//lint:allow errignore — best-effort progress output; a broken stderr must not abort the suite
	fmt.Fprintf(t.w, "%s/%s: %d/%d cells, %.1f cells/s, %s\n",
		t.suite.Model, t.suite.Set, t.done, t.suite.Cells, rate, status)
}
