package obs

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// buildJournal assembles a well-formed journal for the parser tests.
func buildJournal(decisions int, final bool) *SessionJournal {
	j := NewSessionJournal(SessionHeader{
		ID: "s-1", Policy: "Libra+$", Model: "commodity", Nodes: 128, BasePrice: 1,
		Seed: 7, FaultIntensity: "high", FaultHorizon: 5000,
	})
	for i := 0; i < decisions; i++ {
		j.Decision(SessionDecision{
			Job: i + 1, Submit: float64(i) * 10, Runtime: 100, Estimate: 100, Procs: 1,
			Deadline: 400, Budget: 1000, PenaltyRate: 0.25, HighUrgency: i%2 == 0,
			Admission: "accepted", Quote: 100,
		})
	}
	if final {
		j.Final(metrics.Report{Submitted: decisions, Accepted: decisions})
	}
	return j
}

// A journal round-trips: parse, rebuild line by line, byte-identical.
func TestParseSessionJournalRoundTrip(t *testing.T) {
	for _, final := range []bool{false, true} {
		src := buildJournal(3, final)
		rec, err := ParseSessionJournal(src.Bytes())
		if err != nil {
			t.Fatalf("final=%v: %v", final, err)
		}
		if rec.Header.ID != "s-1" || rec.Header.Policy != "Libra+$" || rec.Header.Seed != 7 {
			t.Fatalf("header: %+v", rec.Header)
		}
		if len(rec.Decisions) != 3 {
			t.Fatalf("decisions: %d, want 3", len(rec.Decisions))
		}
		if rec.Finalized() != final {
			t.Fatalf("finalized: %v, want %v", rec.Finalized(), final)
		}
		if !rec.Decisions[0].HighUrgency || rec.Decisions[1].HighUrgency {
			t.Fatalf("high-urgency flags lost: %+v", rec.Decisions[:2])
		}

		// Rebuild from the record; bytes must match the source exactly.
		rb := NewSessionJournal(rec.Header)
		for _, d := range rec.Decisions {
			rb.Decision(d)
		}
		if rec.Final != nil {
			rb.Final(rec.Final.Report)
		}
		if got, want := string(rb.Bytes()), string(src.Bytes()); got != want {
			t.Errorf("rebuild diverged:\ngot:\n%s\nwant:\n%s", got, want)
		}
	}
}

// Malformed journals fail with a line-numbered error instead of replaying
// into a silently different session.
func TestParseSessionJournalRejectsMalformed(t *testing.T) {
	header := `{"kind":"session","id":"s-1","policy":"Libra","model":"commodity","nodes":8,"base_price":1}`
	decision := `{"kind":"decision","job":1,"submit":0,"runtime":1,"estimate":1,"procs":1,"deadline":2,"budget":3,"admission":"accepted","quote":1}`
	final := `{"kind":"final","report":{}}`
	cases := []struct {
		name, body, want string
	}{
		{"empty", "", "empty session journal"},
		{"blank line", header + "\n\n", "is empty"},
		{"no header", decision + "\n", "starts with a decision"},
		{"final first", final + "\n", "starts with a final"},
		{"second header", header + "\n" + header + "\n", "header after line 1"},
		{"decision after final", header + "\n" + final + "\n" + decision + "\n", "decision after the final"},
		{"second final", header + "\n" + final + "\n" + final + "\n", "second final"},
		{"unknown kind", header + "\n" + `{"kind":"gossip"}` + "\n", "unknown kind"},
		{"not json", header + "\n" + "not json\n", "line 2"},
		// The incremental-consumption cases: streamrisk tails journals as
		// they grow, so a capture cut mid-write must fail with the exact
		// line, not parse as a shorter-but-valid session.
		{"truncated final line", header + "\n" + decision + "\n" + final[:len(final)-9], "line 3"},
		{"truncated decision line", header + "\n" + decision[:len(decision)/2] + "\n", "line 2"},
		{"interleaved garbage", header + "\n" + decision + "\n" + "<<torn write>>\n" + decision + "\n", "line 3"},
		{"duplicate header mid-journal", header + "\n" + decision + "\n" + header + "\n", "header after line 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSessionJournal([]byte(tc.body))
			if err == nil {
				t.Fatalf("parsed malformed journal %q", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
