package obs

import (
	"bytes"
	"encoding/json"

	"repro/internal/metrics"
)

// SessionHeader is the first line of a service-session journal: the full
// parameterization of the simulation the session owns. Everything needed to
// replay the session offline is here — a scripted request stream plus this
// header reproduces the journal byte for byte (see internal/serve's
// determinism test).
type SessionHeader struct {
	Kind   string `json:"kind"` // always "session"
	ID     string `json:"id"`
	Policy string `json:"policy"`
	Model  string `json:"model"`
	Nodes  int    `json:"nodes"`
	// BasePrice is PBase in dollars per estimated-runtime second.
	BasePrice float64 `json:"base_price"`
	// Seed and FaultIntensity parameterize the deterministic fault process;
	// both are omitted when the session runs the paper's never-failing
	// machine.
	Seed           int64  `json:"seed,omitempty"`
	FaultIntensity string `json:"fault_intensity,omitempty"`
	// FaultHorizon is the virtual-time window the fault process is scaled
	// to, in seconds.
	FaultHorizon float64 `json:"fault_horizon,omitempty"`
}

// SessionDecision is one journal line per submission: the job's shape and
// QoS terms as admitted, and the service's synchronous answer — admission
// outcome and price quote.
type SessionDecision struct {
	Kind        string  `json:"kind"` // always "decision"
	Job         int     `json:"job"`
	Submit      float64 `json:"submit"`
	Runtime     float64 `json:"runtime"`
	Estimate    float64 `json:"estimate"`
	Procs       int     `json:"procs"`
	Deadline    float64 `json:"deadline"`
	Budget      float64 `json:"budget"`
	PenaltyRate float64 `json:"penalty_rate,omitempty"`
	HighUrgency bool    `json:"high_urgency,omitempty"`
	Admission   string  `json:"admission"`
	Quote       float64 `json:"quote"`
}

// SessionFinal is the journal's last line: the finalized objective report.
type SessionFinal struct {
	Kind   string         `json:"kind"` // always "final"
	Report metrics.Report `json:"report"`
}

// SessionJournal accumulates one service session's request stream as JSONL:
// a header line, one decision line per submission in request order, and a
// final report line once the session is drained. Every field is derived
// from the request stream and the deterministic simulation — no wall-clock,
// no iteration-order dependence — so two sessions fed the same scripted
// requests produce byte-identical journals.
//
// A SessionJournal is not safe for concurrent use; the serve layer guards
// it with the owning session's mutex.
type SessionJournal struct {
	buf    bytes.Buffer
	header SessionHeader
	obs    SessionObserver
	err    error // first marshal/append error, reported by Err
}

// SessionObserver receives journal events synchronously as they are
// appended, in journal order — the subscription hook the streaming risk
// engine (internal/streamrisk) ingests from. Callbacks run under whatever
// lock guards the journal (the owning session's mutex in the serve layer),
// so implementations must be fast and must never call back into the
// journal or its owner.
type SessionObserver interface {
	// JournalDecision is called after each decision line is appended, with
	// the journal's header and the line as written (Kind stamped).
	JournalDecision(h SessionHeader, d SessionDecision)
	// JournalFinal is called after the final report line is appended.
	JournalFinal(h SessionHeader, r metrics.Report)
}

// NewSessionJournal starts a journal with its header line. The Kind field
// is stamped; callers fill the rest.
func NewSessionJournal(h SessionHeader) *SessionJournal {
	h.Kind = "session"
	j := &SessionJournal{header: h}
	j.appendLine(h)
	return j
}

// Header returns the journal's header line as written.
func (j *SessionJournal) Header() SessionHeader { return j.header }

// Observe attaches the observer (nil detaches). Events already journaled
// are not replayed; callers that need history feed the parsed record to the
// observer first (see serve's session import).
func (j *SessionJournal) Observe(o SessionObserver) { j.obs = o }

// Decision appends one submission's decision line. The Kind field is
// stamped.
func (j *SessionJournal) Decision(d SessionDecision) {
	d.Kind = "decision"
	j.appendLine(d)
	if j.obs != nil {
		j.obs.JournalDecision(j.header, d)
	}
}

// Final appends the finalized report line. The Kind field is stamped.
func (j *SessionJournal) Final(r metrics.Report) {
	j.appendLine(SessionFinal{Kind: "final", Report: r})
	if j.obs != nil {
		j.obs.JournalFinal(j.header, r)
	}
}

func (j *SessionJournal) appendLine(v any) {
	line, err := json.Marshal(v)
	if err != nil {
		if j.err == nil {
			j.err = err
		}
		return
	}
	j.buf.Write(line)     //lint:allow errignore — bytes.Buffer.Write is documented to always return a nil error
	j.buf.WriteByte('\n') //lint:allow errignore — bytes.Buffer.WriteByte is documented to always return a nil error
}

// Bytes returns the journal so far as JSONL. The returned slice aliases the
// journal's buffer; callers must not retain it across further appends.
func (j *SessionJournal) Bytes() []byte { return j.buf.Bytes() }

// Err returns the first append error, if any. Marshaling the journal's
// plain struct lines cannot normally fail; a non-nil error means a
// non-finite float (NaN or Inf) reached a quote or report field.
func (j *SessionJournal) Err() error { return j.err }
