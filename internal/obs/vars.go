package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"
)

// Vars is a Reporter that maintains the process-wide expvar counters the
// -pprof HTTP endpoint serves under /debug/vars:
//
//	obs.cells_done      completed (executed, not resumed) cells
//	obs.sims_done       completed simulations (cells × replications)
//	obs.jobs_scheduled  jobs submitted across completed simulations
//	obs.sims_per_sec    simulation throughput since the first suite start
type Vars struct {
	cells *expvar.Int
	sims  *expvar.Int
	jobs  *expvar.Int
	start atomic.Int64 // unix nanos of the first SuiteStart; 0 = not started
}

var (
	varsOnce sync.Once
	vars     *Vars
)

// PublishVars returns the process-wide Vars, publishing the expvar
// variables on first call. expvar registration is global and permanent,
// hence the singleton.
func PublishVars() *Vars {
	varsOnce.Do(func() {
		vars = &Vars{
			cells: expvar.NewInt("obs.cells_done"),
			sims:  expvar.NewInt("obs.sims_done"),
			jobs:  expvar.NewInt("obs.jobs_scheduled"),
		}
		expvar.Publish("obs.sims_per_sec", expvar.Func(func() any {
			start := vars.start.Load()
			if start == 0 {
				return 0.0
			}
			elapsed := time.Since(time.Unix(0, start)).Seconds() //lint:allow wallclock — real-time throughput gauge for /debug/vars
			if elapsed <= 0 {
				return 0.0
			}
			return float64(vars.sims.Value()) / elapsed
		}))
	})
	return vars
}

// SuiteStart records the throughput epoch on the first suite.
func (v *Vars) SuiteStart(Suite) {
	v.start.CompareAndSwap(0, time.Now().UnixNano()) //lint:allow wallclock — real-time throughput epoch for /debug/vars
}

// CellStart implements Reporter.
func (v *Vars) CellStart(Cell) {}

// CellDone advances the counters for executed cells.
func (v *Vars) CellDone(r Record) {
	if r.Resumed {
		return
	}
	reps := r.Replications
	if reps < 1 {
		reps = 1
	}
	v.cells.Add(1)
	v.sims.Add(int64(reps))
	v.jobs.Add(int64(reps * r.Report.Submitted))
}

// SuiteDone implements Reporter.
func (v *Vars) SuiteDone(Summary) {}
