package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Journal appends one JSON line per completed cell to a file, flushing as
// cells finish so an interrupted run loses at most the cell being written.
// It doubles as a Reporter: wire it into SuiteConfig.Observer (directly or
// via Multi) and every executed cell is journaled; resumed cells are not,
// so the journal of a resumed run lists exactly the cells it simulated.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	err error // first append error, reported by Err
}

// OpenJournal opens (creating directories and the file as needed) a
// journal for appending. Append-only opening means a resumed run extends
// the interrupted run's journal rather than truncating it. If the file
// ends in a torn line — a run killed mid-append — the tail is
// newline-terminated first so new records never concatenate onto it.
func OpenJournal(path string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if err := terminateTornTail(f); err != nil {
		f.Close() //lint:allow errignore — already failing; a Close error would mask the root cause
		return nil, err
	}
	return &Journal{f: f}, nil
}

// terminateTornTail appends a newline when the file is non-empty and its
// last byte is not one.
func terminateTornTail(f *os.File) error {
	info, err := f.Stat()
	if err != nil {
		return err
	}
	if info.Size() == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, info.Size()-1); err != nil {
		return err
	}
	if last[0] != '\n' {
		if _, err := f.Write([]byte{'\n'}); err != nil {
			return err
		}
	}
	return nil
}

// Append writes one record as a single JSON line.
func (j *Journal) Append(r Record) error {
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		if j.err == nil {
			j.err = err
		}
		return err
	}
	return nil
}

// Err returns the first append error, if any. The Reporter interface
// cannot propagate errors from CellDone; callers should check Err once
// the suite finishes.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close() //lint:allow errignore — already failing; a Close error would mask the Sync error
		return err
	}
	return j.f.Close()
}

// SuiteStart implements Reporter.
func (j *Journal) SuiteStart(Suite) {}

// CellStart implements Reporter.
func (j *Journal) CellStart(Cell) {}

// CellDone journals every executed (non-resumed) cell.
func (j *Journal) CellDone(r Record) {
	if r.Resumed {
		return
	}
	j.Append(r) //lint:allow errignore — Append records its first error for Err(); Reporter cannot propagate it
}

// SuiteDone syncs the journal so a completed suite is durable. A sync
// failure is recorded like an append failure, surfacing through Err.
func (j *Journal) SuiteDone(Summary) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil && j.err == nil {
		j.err = err
	}
}

// CanonicalJournal serializes a record set into a canonical byte form for
// equality comparison across runs: records sorted by cell identity, with
// the volatile fields — WallSeconds (wall-clock time) and Resumed (which
// run executed the cell) — cleared. Two runs of the same configuration are
// deterministic exactly when their canonical journals are byte-identical,
// regardless of worker count, completion order, or resume boundaries.
func CanonicalJournal(recs map[string]Record) ([]byte, error) {
	keys := make([]string, 0, len(recs))
	for k := range recs {
		keys = append(keys, k)
	}
	ordered := make([]Record, 0, len(recs))
	for _, k := range keys {
		ordered = append(ordered, recs[k])
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Set != b.Set {
			return a.Set < b.Set
		}
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		if a.ValueIndex != b.ValueIndex {
			return a.ValueIndex < b.ValueIndex
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		return a.Key < b.Key
	})
	var out []byte
	for _, r := range ordered {
		r.WallSeconds = 0
		r.Resumed = false
		line, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out, nil
}

// LoadJournal reads a journal back as a key → Record map for
// SuiteConfig.Resume, reporting how many complete records it found. Torn
// lines — the signature of a run killed mid-append — are skipped: at
// worst the interrupted cell is simulated again. When the same key
// appears more than once (a cell re-executed across appended runs), the
// last record wins.
func LoadJournal(path string) (map[string]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs := make(map[string]Record)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.Key == "" {
			continue
		}
		recs[r.Key] = r
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading journal %s: %w", path, err)
	}
	return recs, nil
}
