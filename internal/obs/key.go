package obs

import (
	"fmt"
	"hash/fnv"
)

// Key hashes an ordered list of identity parts into a 64-bit FNV-1a cell
// key, rendered as 16 hex digits. Parts are separated by an ASCII unit
// separator so the concatenation is unambiguous: Key("ab", "c") and
// Key("a", "bc") differ.
func Key(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))    //lint:allow errignore — hash.Hash Write never returns an error
		h.Write([]byte{0x1f}) //lint:allow errignore — hash.Hash Write never returns an error
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
