// Package obs is the observability layer of the evaluation suite. A full
// paper-scale riskbench invocation is up to 1440 trace-driven simulations
// per (model, Set) panel; obs makes such runs observable while they
// happen, resumable after a crash, and incrementally re-runnable after a
// configuration change. It provides:
//
//   - Reporter, the progress interface experiment.Run drives through
//     SuiteConfig.Observer: SuiteStart / CellStart / CellDone / SuiteDone.
//     Nop is the default (library callers and tests pay nothing); Multi
//     fans events out to several reporters; Terminal prints done/total,
//     cells/sec, and an ETA on an interval.
//
//   - Journal, a JSONL run journal (one Record per completed cell: cell
//     key, identity, wall time, replication count, and the full
//     metrics.Report), flushed to disk as each cell finishes rather than
//     at suite end. LoadJournal reads one back, tolerating the torn final
//     line a crash mid-append leaves behind.
//
//   - Key, an FNV-1a content hash over a cell's full parameterization.
//     experiment.SuiteConfig.CellKey builds keys from the model, Set,
//     scenario, value, policy, trace length, machine size, seeds,
//     replication count, and synthetic-workload calibration, so a journal
//     record is only ever reused for a byte-identical simulation.
//
//   - Vars, expvar counters (obs.cells_done, obs.sims_done,
//     obs.jobs_scheduled, obs.sims_per_sec) that the riskbench -pprof
//     endpoint serves alongside net/http/pprof.
//
// All Reporter implementations in this package are safe for concurrent
// use: experiment.Run invokes CellStart from every simulation worker.
package obs
