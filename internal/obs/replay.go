package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
)

// SessionRecord is a parsed session journal: the header, every decision in
// journal order, and the final report line when the session was finalized
// before the journal was captured. It is the input to the service plane's
// replay migration — a worker rebuilds the live session by re-submitting
// each decision's job and byte-checking the replayed journal against the
// original (see internal/serve).
type SessionRecord struct {
	Header    SessionHeader
	Decisions []SessionDecision
	Final     *SessionFinal
}

// Finalized reports whether the journal carried a final report line.
func (r *SessionRecord) Finalized() bool { return r.Final != nil }

// journalKind peeks at one line's kind tag.
type journalKind struct {
	Kind string `json:"kind"`
}

// ParseSessionJournal parses NDJSON session-journal bytes back into a
// SessionRecord. The format is strict — exactly one "session" header line
// first, then zero or more "decision" lines, then at most one "final" line
// with nothing after it — so a truncated or interleaved journal fails
// loudly instead of replaying into a silently different session.
func ParseSessionJournal(b []byte) (*SessionRecord, error) {
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	rec := &SessionRecord{}
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			return nil, fmt.Errorf("obs: session journal line %d is empty", n+1)
		}
		var k journalKind
		if err := json.Unmarshal(line, &k); err != nil {
			return nil, fmt.Errorf("obs: session journal line %d: %w", n+1, err)
		}
		switch k.Kind {
		case "session":
			if n != 0 {
				return nil, fmt.Errorf("obs: session journal line %d: header after line 1", n+1)
			}
			if err := json.Unmarshal(line, &rec.Header); err != nil {
				return nil, fmt.Errorf("obs: session journal header: %w", err)
			}
		case "decision":
			if n == 0 {
				return nil, fmt.Errorf("obs: session journal starts with a decision line, want the session header")
			}
			if rec.Final != nil {
				return nil, fmt.Errorf("obs: session journal line %d: decision after the final report", n+1)
			}
			var d SessionDecision
			if err := json.Unmarshal(line, &d); err != nil {
				return nil, fmt.Errorf("obs: session journal line %d: %w", n+1, err)
			}
			rec.Decisions = append(rec.Decisions, d)
		case "final":
			if n == 0 {
				return nil, fmt.Errorf("obs: session journal starts with a final line, want the session header")
			}
			if rec.Final != nil {
				return nil, fmt.Errorf("obs: session journal line %d: second final report", n+1)
			}
			var f SessionFinal
			if err := json.Unmarshal(line, &f); err != nil {
				return nil, fmt.Errorf("obs: session journal line %d: %w", n+1, err)
			}
			rec.Final = &f
		default:
			return nil, fmt.Errorf("obs: session journal line %d: unknown kind %q", n+1, k.Kind)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: scanning session journal: %w", err)
	}
	if n == 0 {
		return nil, fmt.Errorf("obs: empty session journal")
	}
	return rec, nil
}
