package obs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer makes bytes.Buffer safe for the Terminal's printer goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestTerminalFinalLine(t *testing.T) {
	var buf syncBuffer
	term := NewTerminal(&buf, time.Hour) // interval never fires; only the final line prints
	term.SuiteStart(Suite{Model: "commodity", Set: "Set A", Cells: 4, Resumed: 1})
	term.CellDone(Record{Resumed: true})
	for i := 0; i < 3; i++ {
		term.CellDone(Record{})
	}
	term.SuiteDone(Summary{})
	out := buf.String()
	if !strings.Contains(out, "commodity/Set A: 4/4 cells") {
		t.Errorf("final line missing done/total: %q", out)
	}
	if !strings.Contains(out, "(1 resumed)") {
		t.Errorf("final line missing resumed count: %q", out)
	}
}

func TestTerminalConcurrentCellDone(t *testing.T) {
	term := NewTerminal(io.Discard, time.Millisecond)
	term.SuiteStart(Suite{Model: "bid-based", Set: "Set B", Cells: 64})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				term.CellStart(Cell{})
				term.CellDone(Record{})
			}
		}()
	}
	wg.Wait()
	//lint:allow wallclock — real-time ticker test: the terminal reporter prints on a wall-clock cadence
	time.Sleep(5 * time.Millisecond) // let the ticker print at least once
	term.SuiteDone(Summary{})
}

func TestMultiFansOutAndSkipsNil(t *testing.T) {
	var a, b countingReporter
	m := Multi(&a, nil, &b)
	m.SuiteStart(Suite{})
	m.CellStart(Cell{})
	m.CellDone(Record{})
	m.CellDone(Record{})
	m.SuiteDone(Summary{})
	for name, r := range map[string]*countingReporter{"first": &a, "second": &b} {
		if r.starts != 1 || r.cells != 1 || r.dones != 2 || r.suites != 1 {
			t.Errorf("%s reporter saw starts=%d cells=%d dones=%d suites=%d",
				name, r.starts, r.cells, r.dones, r.suites)
		}
	}
}

type countingReporter struct {
	mu                           sync.Mutex
	starts, cells, dones, suites int
}

func (c *countingReporter) SuiteStart(Suite) { c.mu.Lock(); c.starts++; c.mu.Unlock() }
func (c *countingReporter) CellStart(Cell)   { c.mu.Lock(); c.cells++; c.mu.Unlock() }
func (c *countingReporter) CellDone(Record)  { c.mu.Lock(); c.dones++; c.mu.Unlock() }
func (c *countingReporter) SuiteDone(Summary) {
	c.mu.Lock()
	c.suites++
	c.mu.Unlock()
}

func TestVarsCountExecutedWork(t *testing.T) {
	v := PublishVars()
	if v != PublishVars() {
		t.Fatal("PublishVars is not a singleton")
	}
	cells0, sims0, jobs0 := v.cells.Value(), v.sims.Value(), v.jobs.Value()
	v.SuiteStart(Suite{})
	v.CellDone(Record{Replications: 3, Report: sampleRecord("x").Report})
	v.CellDone(Record{Resumed: true, Replications: 3})
	v.CellDone(Record{}) // zero replications counts as one simulation
	v.SuiteDone(Summary{})
	if got := v.cells.Value() - cells0; got != 2 {
		t.Errorf("cells_done advanced by %d, want 2", got)
	}
	if got := v.sims.Value() - sims0; got != 4 {
		t.Errorf("sims_done advanced by %d, want 4", got)
	}
	if got := v.jobs.Value() - jobs0; got != 3*5000 {
		t.Errorf("jobs_scheduled advanced by %d, want %d", got, 3*5000)
	}
}

// TestTerminalReplicatedProgress pins the unit-granularity progress line:
// with Replications > 1 the Terminal reports sims done/total alongside
// cells, so a replicated cell in flight is visible progress, not a stall.
func TestTerminalReplicatedProgress(t *testing.T) {
	var buf syncBuffer
	term := NewTerminal(&buf, time.Hour)
	term.SuiteStart(Suite{Model: "commodity", Set: "Set A", Cells: 2, Replications: 3})
	for rep := 0; rep < 3; rep++ {
		term.ReplicationDone(Cell{}, rep, 3)
	}
	term.CellDone(Record{Replications: 3})
	term.SuiteDone(Summary{})
	out := buf.String()
	if !strings.Contains(out, "1/2 cells") {
		t.Errorf("replicated final line missing cell progress: %q", out)
	}
	if !strings.Contains(out, "3/6 sims") {
		t.Errorf("replicated final line missing sims progress: %q", out)
	}
}

// TestMultiForwardsReplicationDone pins that wrapping reporters in Multi
// never hides the optional per-replication granularity — Multi forwards
// ReplicationDone to exactly the wrapped reporters that implement it.
func TestMultiForwardsReplicationDone(t *testing.T) {
	var plain countingReporter // Reporter only
	rep := &replicationCounter{}
	m := Multi(&plain, rep)
	rr, ok := m.(ReplicationReporter)
	if !ok {
		t.Fatal("Multi does not implement ReplicationReporter")
	}
	rr.ReplicationDone(Cell{}, 0, 2)
	rr.ReplicationDone(Cell{}, 1, 2)
	if rep.n != 2 {
		t.Errorf("wrapped ReplicationReporter saw %d events, want 2", rep.n)
	}
}

type replicationCounter struct {
	countingReporter
	n int
}

func (r *replicationCounter) ReplicationDone(Cell, int, int) {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}
