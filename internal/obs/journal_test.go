package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/metrics"
)

func sampleRecord(key string) Record {
	return Record{
		Cell: Cell{
			Key:        key,
			Model:      "commodity",
			Set:        "Set B",
			Scenario:   "workload",
			ValueIndex: 2,
			Value:      0.25,
			Policy:     "Libra+$",
		},
		Replications: 3,
		WallSeconds:  1.75,
		Report: metrics.Report{
			Submitted:        5000,
			Accepted:         4321,
			SLAFulfilled:     4000,
			Wait:             1.0 / 3.0,
			SLA:              80.0,
			Reliability:      92.55,
			Profitability:    math.Pi,
			MeanSlowdown:     1.5,
			MeanResponseTime: 1234.5,
			TotalUtility:     -17.25,
			TotalBudget:      99999.125,
			Utilization:      0.75,
		},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{sampleRecord("aaa"), sampleRecord("bbb")}
	want[1].Value = 0.5
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d records, want 2", len(got))
	}
	for _, w := range want {
		// Exact equality: the JSON round trip must preserve every float
		// bit so resumed cells reproduce byte-identical panels.
		if !reflect.DeepEqual(got[w.Key], w) {
			t.Errorf("record %s changed across the round trip:\n got %+v\nwant %+v", w.Key, got[w.Key], w)
		}
	}
}

func TestJournalResumedCellsNotJournaled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed := sampleRecord("aaa")
	resumed.Resumed = true
	j.CellDone(resumed)
	j.CellDone(sampleRecord("bbb"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("journal has %d records, want only the executed cell", len(got))
	}
	if _, ok := got["bbb"]; !ok {
		t.Fatal("executed cell missing from journal")
	}
}

func TestLoadJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(sampleRecord("aaa")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"bbb","mod`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("loaded %d records, want 1 (torn tail skipped)", len(got))
	}

	// Reopening for append must newline-terminate the torn tail so the
	// resumed run's first record stays parseable.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(sampleRecord("ccc")); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d records after resume append, want 2", len(got))
	}
	for _, key := range []string{"aaa", "ccc"} {
		if _, ok := got[key]; !ok {
			t.Errorf("record %s missing after resume append", key)
		}
	}
}

func TestLoadJournalLastDuplicateWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first := sampleRecord("aaa")
	second := sampleRecord("aaa")
	second.WallSeconds = 9.5
	j.Append(first)
	j.Append(second)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["aaa"].WallSeconds != 9.5 {
		t.Fatalf("duplicate key resolved to the first record: %+v", got["aaa"])
	}
}

func TestLoadJournalMissingFile(t *testing.T) {
	_, err := LoadJournal(filepath.Join(t.TempDir(), "absent.jsonl"))
	if !os.IsNotExist(err) {
		t.Fatalf("want a not-exist error, got %v", err)
	}
}

func TestCanonicalJournalOrderAndVolatileFields(t *testing.T) {
	// Two record sets with the same cells: different map keys' insertion
	// history, different wall-clock times, one resumed. Canonically equal.
	a := map[string]Record{}
	b := map[string]Record{}
	r1 := sampleRecord("aaa")
	r2 := sampleRecord("bbb")
	r2.Policy = "FCFS-BF"
	r2.ValueIndex = 0
	a[r1.Key], a[r2.Key] = r1, r2
	r1b, r2b := r1, r2
	r1b.WallSeconds = 99.5
	r2b.Resumed = true
	b[r2b.Key], b[r1b.Key] = r2b, r1b
	ca, err := CanonicalJournal(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalJournal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Fatalf("canonical journals differ:\n%s\n%s", ca, cb)
	}
	// Ordering is by cell identity, not map key: r2 sorts first on ValueIndex.
	var first Record
	line := ca[:bytes.IndexByte(ca, '\n')]
	if err := json.Unmarshal(line, &first); err != nil {
		t.Fatal(err)
	}
	if first.Key != "bbb" {
		t.Fatalf("first canonical record is %q, want bbb (lower ValueIndex)", first.Key)
	}
	// A substantive difference shows up.
	r1c := r1
	r1c.Report.Killed = 7
	a[r1c.Key] = r1c
	cc, err := CanonicalJournal(a)
	if err != nil {
		t.Fatal(err)
	}
	if string(cc) == string(ca) {
		t.Fatal("changed report not reflected in canonical journal")
	}
}
