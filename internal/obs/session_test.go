package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/metrics"
)

func buildSessionJournal() *SessionJournal {
	j := NewSessionJournal(SessionHeader{
		ID: "s-1", Policy: "Libra", Model: "commodity", Nodes: 128, BasePrice: 1,
		Seed: 7, FaultIntensity: "high", FaultHorizon: 1000,
	})
	j.Decision(SessionDecision{
		Job: 1, Submit: 0, Runtime: 100, Estimate: 100, Procs: 2,
		Deadline: 200, Budget: 500, Admission: "accepted", Quote: 120,
	})
	j.Decision(SessionDecision{
		Job: 2, Submit: 10, Runtime: 50, Estimate: 60, Procs: 1,
		Deadline: 100, Budget: 1, PenaltyRate: 0.01, Admission: "rejected", Quote: 80,
	})
	j.Final(metrics.Report{Submitted: 2, Accepted: 1, SLA: 50, Utilization: 0.25})
	return j
}

func TestSessionJournalShape(t *testing.T) {
	j := buildSessionJournal()
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(j.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("journal has %d lines, want 4", len(lines))
	}
	wantKinds := []string{"session", "decision", "decision", "final"}
	for i, line := range lines {
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if probe.Kind != wantKinds[i] {
			t.Errorf("line %d kind %q, want %q", i, probe.Kind, wantKinds[i])
		}
	}
	var final SessionFinal
	if err := json.Unmarshal(lines[3], &final); err != nil {
		t.Fatal(err)
	}
	if final.Report.Submitted != 2 || final.Report.SLA != 50 {
		t.Errorf("final report round-trip: %+v", final.Report)
	}
}

// The determinism contract the serve layer leans on: the same logical
// stream always serializes to the same bytes.
func TestSessionJournalDeterministicBytes(t *testing.T) {
	a, b := buildSessionJournal(), buildSessionJournal()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical streams produced different journals:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

// recordingObserver captures the observer callbacks in order.
type recordingObserver struct {
	headers   []SessionHeader
	decisions []SessionDecision
	finals    []metrics.Report
}

func (o *recordingObserver) JournalDecision(h SessionHeader, d SessionDecision) {
	o.headers = append(o.headers, h)
	o.decisions = append(o.decisions, d)
}

func (o *recordingObserver) JournalFinal(h SessionHeader, r metrics.Report) {
	o.headers = append(o.headers, h)
	o.finals = append(o.finals, r)
}

func TestSessionJournalObserver(t *testing.T) {
	j := NewSessionJournal(SessionHeader{ID: "s-9", Policy: "Libra"})
	if got := j.Header(); got.ID != "s-9" || got.Kind != "session" {
		t.Fatalf("Header() = %+v, want stamped kind and id s-9", got)
	}

	rec := &recordingObserver{}
	j.Decision(SessionDecision{Job: 1, Admission: "accepted", Quote: 10}) // before attach: not observed
	j.Observe(rec)
	j.Decision(SessionDecision{Job: 2, Admission: "rejected"})
	j.Final(metrics.Report{Submitted: 2, Accepted: 1})

	if len(rec.decisions) != 1 || rec.decisions[0].Job != 2 {
		t.Fatalf("observed decisions %+v, want exactly job 2", rec.decisions)
	}
	if rec.decisions[0].Kind != "decision" {
		t.Errorf("observer saw unstamped decision kind %q", rec.decisions[0].Kind)
	}
	if len(rec.finals) != 1 || rec.finals[0].Submitted != 2 {
		t.Fatalf("observed finals %+v, want the report", rec.finals)
	}
	for i, h := range rec.headers {
		if h.ID != "s-9" {
			t.Errorf("callback %d header id %q, want s-9", i, h.ID)
		}
	}

	// Detach: further events are silent.
	j.Observe(nil)
	j.Decision(SessionDecision{Job: 3})
	if len(rec.decisions) != 1 {
		t.Errorf("detached observer still received events")
	}
}

func TestSessionJournalMarshalError(t *testing.T) {
	j := NewSessionJournal(SessionHeader{ID: "s-1"})
	before := len(j.Bytes())
	j.Decision(SessionDecision{Job: 1, Quote: math.Inf(1)})
	if j.Err() == nil {
		t.Fatal("non-finite quote marshaled without error")
	}
	if len(j.Bytes()) != before {
		t.Error("failed line was partially appended")
	}
	// The first error sticks; later good lines still append.
	j.Final(metrics.Report{})
	if j.Err() == nil {
		t.Fatal("error cleared by a later append")
	}
	if len(j.Bytes()) == before {
		t.Error("good line after an error was dropped")
	}
}
