package obs

import "testing"

func TestKeyDeterministic(t *testing.T) {
	a := Key("commodity", "Set A", "workload", "0.25", "Libra")
	b := Key("commodity", "Set A", "workload", "0.25", "Libra")
	if a != b {
		t.Fatalf("same parts hashed differently: %s vs %s", a, b)
	}
	if len(a) != 16 {
		t.Fatalf("key %q is not 16 hex digits", a)
	}
}

func TestKeySensitivity(t *testing.T) {
	base := Key("commodity", "Set A", "workload")
	cases := map[string]string{
		"changed part":   Key("commodity", "Set B", "workload"),
		"reordered":      Key("Set A", "commodity", "workload"),
		"moved boundary": Key("commoditySet A", "", "workload"),
		"extra part":     Key("commodity", "Set A", "workload", ""),
	}
	for name, k := range cases {
		if k == base {
			t.Errorf("%s: collided with base key %s", name, base)
		}
	}
}
