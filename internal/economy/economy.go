package economy

import (
	"fmt"

	"repro/internal/workload"
)

// Model selects the economic model an experiment runs under.
type Model int

const (
	// Commodity is the commodity market model.
	Commodity Model = iota
	// BidBased is the bid-based model with linear unbounded penalties.
	BidBased
)

// String returns the model's name.
func (m Model) String() string {
	switch m {
	case Commodity:
		return "commodity"
	case BidBased:
		return "bid-based"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Default pricing constants from the paper's experimental setup.
const (
	// DefaultBasePrice is PBase, $1 per second of (estimated) runtime.
	DefaultBasePrice = 1.0
	// DefaultGamma and DefaultDelta parameterize Libra's static pricing
	// (both 1 in the experiments).
	DefaultGamma = 1.0
	DefaultDelta = 1.0
	// DefaultAlpha and DefaultBeta weight Libra+$'s static and dynamic
	// pricing components (1 and 0.3 in the experiments).
	DefaultAlpha = 1.0
	DefaultBeta  = 0.3
)

// Delay returns the completion delay of a job finished at the given
// absolute time: zero when the deadline was met (Eq. 10).
func Delay(j *workload.Job, finish float64) float64 {
	dy := (finish - j.Submit) - j.Deadline
	if dy < 0 {
		return 0
	}
	return dy
}

// BidUtility returns the utility the provider earns for a job under the
// bid-based model (Eq. 9): the full budget when on time, decreasing
// linearly at the penalty rate afterwards, unbounded below.
func BidUtility(j *workload.Job, finish float64) float64 {
	return j.Budget - Delay(j, finish)*j.PenaltyRate
}

// BoundedBidUtility is the bounded-penalty variant of BidUtility
// (Irwin et al. analyze both; the paper's experiments use the unbounded
// form): the provider's loss on a job is capped at the job's own value, so
// utility never falls below −budget.
func BoundedBidUtility(j *workload.Job, finish float64) float64 {
	u := BidUtility(j, finish)
	if u < -j.Budget {
		return -j.Budget
	}
	return u
}

// BaseCharge is the commodity charge of the backfilling policies: the
// estimated runtime at the base price (tr·PBase). Estimates, not actual
// runtimes, are charged — which is how over-estimation inflates commodity
// revenue in the paper's Set B discussion.
func BaseCharge(estimate, basePrice float64) float64 {
	return estimate * basePrice
}

// LibraCharge is Libra's static commodity pricing (γ·tr + δ·tr/d): longer
// jobs pay more, and tighter deadlines pay a larger incentive component.
func LibraCharge(estimate, deadline, gamma, delta float64) float64 {
	return gamma*estimate + delta*estimate/deadline
}

// resFreeFloor guards the Libra+$ dynamic component against a fully
// saturated node: the quoted price becomes very large (and the job is then
// rejected against its budget) instead of dividing by zero.
const resFreeFloor = 1e-3

// LibraDollarPricePerSec is Libra+$'s per-second price on one node,
// P = α·PBase + β·PUtil with PUtil = RESMax/RESFree·PBase. RESMax is the
// node's capacity over the job's deadline window and RESFree what remains
// after committing the job, so the ratio reduces to 1/freeFracAfter.
func LibraDollarPricePerSec(basePrice, alpha, beta, freeFracAfter float64) float64 {
	if freeFracAfter < resFreeFloor {
		freeFracAfter = resFreeFloor
	}
	return alpha*basePrice + beta*basePrice/freeFracAfter
}

// LibraDollarCharge is the job's total Libra+$ charge: the estimated
// runtime at the highest per-second price among its allocated nodes (the
// paper's revenue-maximizing choice).
func LibraDollarCharge(estimate float64, perSecPrices []float64) float64 {
	if len(perSecPrices) == 0 {
		return 0
	}
	max := perSecPrices[0]
	for _, p := range perSecPrices[1:] {
		if p > max {
			max = p
		}
	}
	return estimate * max
}
