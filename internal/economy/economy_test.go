package economy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func bidJob() *workload.Job {
	return &workload.Job{
		ID: 1, Submit: 100, Runtime: 50, Estimate: 60, Procs: 1,
		Deadline: 200, Budget: 1000, PenaltyRate: 5,
	}
}

func TestDelay(t *testing.T) {
	j := bidJob()
	if d := Delay(j, 250); d != 0 {
		t.Errorf("on-time delay = %v, want 0", d)
	}
	if d := Delay(j, 300); d != 0 {
		t.Errorf("exactly-at-deadline delay = %v, want 0", d)
	}
	if d := Delay(j, 360); d != 60 {
		t.Errorf("delay = %v, want 60", d)
	}
}

// Figure 2: the utility is flat at the budget until the deadline, then
// decreases linearly at the penalty rate, crossing zero and continuing
// unbounded.
func TestPenaltyFunctionShape(t *testing.T) {
	j := bidJob()
	deadline := j.Submit + j.Deadline // absolute: 300
	if u := BidUtility(j, deadline-100); u != j.Budget {
		t.Errorf("utility before deadline = %v, want full budget %v", u, j.Budget)
	}
	if u := BidUtility(j, deadline); u != j.Budget {
		t.Errorf("utility at deadline = %v, want full budget %v", u, j.Budget)
	}
	// Linear decline: slope must equal -PenaltyRate.
	u1 := BidUtility(j, deadline+10)
	u2 := BidUtility(j, deadline+20)
	if slope := (u2 - u1) / 10; math.Abs(slope+j.PenaltyRate) > 1e-12 {
		t.Errorf("slope = %v, want %v", slope, -j.PenaltyRate)
	}
	// Crosses zero at deadline + budget/penaltyRate = 300 + 200.
	if u := BidUtility(j, 500); math.Abs(u) > 1e-12 {
		t.Errorf("utility at zero-crossing = %v, want 0", u)
	}
	// Unbounded below.
	if u := BidUtility(j, 10000); u >= 0 {
		t.Errorf("late utility = %v, want negative (unbounded penalty)", u)
	}
}

// Property: utility is monotonically non-increasing in finish time and
// never exceeds the budget.
func TestBidUtilityMonotoneProperty(t *testing.T) {
	f := func(f1, f2 uint32) bool {
		j := bidJob()
		a, b := float64(f1%100000), float64(f2%100000)
		if a > b {
			a, b = b, a
		}
		ua, ub := BidUtility(j, a), BidUtility(j, b)
		return ua >= ub && ua <= j.Budget && ub <= j.Budget
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseCharge(t *testing.T) {
	if got := BaseCharge(600, 1.0); got != 600 {
		t.Errorf("BaseCharge = %v, want 600", got)
	}
	// Over-estimation inflates the commodity charge (paper's Set B note).
	if BaseCharge(1200, 1.0) <= BaseCharge(600, 1.0) {
		t.Error("larger estimate must cost more")
	}
}

func TestLibraCharge(t *testing.T) {
	// γ=δ=1: charge = tr + tr/d.
	if got := LibraCharge(100, 400, 1, 1); math.Abs(got-100.25) > 1e-12 {
		t.Errorf("LibraCharge = %v, want 100.25", got)
	}
	// Incentive: a longer deadline must cost less.
	tight := LibraCharge(100, 110, 1, 1)
	loose := LibraCharge(100, 1000, 1, 1)
	if tight <= loose {
		t.Errorf("tight deadline charge %v not above loose %v", tight, loose)
	}
}

func TestLibraDollarPricePerSec(t *testing.T) {
	// Empty node after commitment of 0.5: P = 1 + 0.3/0.5 = 1.6.
	if got := LibraDollarPricePerSec(1, 1, 0.3, 0.5); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("price = %v, want 1.6", got)
	}
	// Price grows as the node saturates.
	if LibraDollarPricePerSec(1, 1, 0.3, 0.1) <= LibraDollarPricePerSec(1, 1, 0.3, 0.9) {
		t.Error("price must increase with utilization")
	}
	// Saturated node: finite but very large.
	p := LibraDollarPricePerSec(1, 1, 0.3, 0)
	if math.IsInf(p, 0) || p < 100 {
		t.Errorf("saturated price = %v, want large finite", p)
	}
	// β=0 disables the dynamic component.
	if got := LibraDollarPricePerSec(1, 1, 0, 0.01); got != 1 {
		t.Errorf("static-only price = %v, want 1", got)
	}
}

func TestLibraDollarCharge(t *testing.T) {
	if got := LibraDollarCharge(100, []float64{1.2, 1.6, 1.1}); math.Abs(got-160) > 1e-12 {
		t.Errorf("charge = %v, want 160 (highest node price)", got)
	}
	if got := LibraDollarCharge(100, nil); got != 0 {
		t.Errorf("charge with no nodes = %v, want 0", got)
	}
}

func TestModelString(t *testing.T) {
	if Commodity.String() != "commodity" || BidBased.String() != "bid-based" {
		t.Error("Model.String() wrong")
	}
	if Model(9).String() == "" {
		t.Error("unknown model has empty String()")
	}
}

func TestBoundedBidUtility(t *testing.T) {
	j := bidJob() // budget 1000, deadline abs 300, rate 5
	if u := BoundedBidUtility(j, 250); u != 1000 {
		t.Errorf("on-time bounded utility = %v, want full budget", u)
	}
	// Moderate lateness: identical to the unbounded form.
	if u, want := BoundedBidUtility(j, 400), BidUtility(j, 400); u != want {
		t.Errorf("moderate lateness bounded = %v, want %v", u, want)
	}
	// Extreme lateness: floored at −budget.
	if u := BoundedBidUtility(j, 1e9); u != -1000 {
		t.Errorf("extreme lateness bounded = %v, want -1000", u)
	}
	if BidUtility(j, 1e9) >= -1000 {
		t.Error("unbounded utility should be far below the floor here")
	}
}

func TestFlatPrice(t *testing.T) {
	p := FlatPrice(2.5)
	if p.PriceAt(0) != 2.5 || p.PriceAt(1e9) != 2.5 {
		t.Error("flat price varied")
	}
}

func TestTimeOfDayPrice(t *testing.T) {
	p := TimeOfDayPrice{Base: 1, PeakFactor: 3, PeakStartHour: 9, PeakEndHour: 17}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.PriceAt(8 * 3600); got != 1 {
		t.Errorf("price at 08:00 = %v, want 1 (off-peak)", got)
	}
	if got := p.PriceAt(12 * 3600); got != 3 {
		t.Errorf("price at 12:00 = %v, want 3 (peak)", got)
	}
	if got := p.PriceAt(17 * 3600); got != 1 {
		t.Errorf("price at 17:00 = %v, want 1 (window is half-open)", got)
	}
	// Next day's noon is peak again.
	if got := p.PriceAt(36 * 3600); got != 3 {
		t.Errorf("price at day 2 noon = %v, want 3", got)
	}
}

func TestTimeOfDayPriceValidate(t *testing.T) {
	bad := []TimeOfDayPrice{
		{Base: 0, PeakFactor: 2, PeakStartHour: 9, PeakEndHour: 17},
		{Base: 1, PeakFactor: 0.5, PeakStartHour: 9, PeakEndHour: 17},
		{Base: 1, PeakFactor: 2, PeakStartHour: 17, PeakEndHour: 9},
		{Base: 1, PeakFactor: 2, PeakStartHour: 9, PeakEndHour: 25},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("tariff %d accepted", i)
		}
	}
}
