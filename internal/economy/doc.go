// Package economy implements the paper's two economic models and the
// pricing functions the policies charge under them (§5.1, §5.2).
//
// Commodity market model: the provider quotes a price; a job whose expected
// cost exceeds its budget is rejected; there is no penalty for missing a
// deadline — the provider keeps charging the quoted price.
//
// Bid-based model: the user's budget is a bid earned in full when the job
// meets its deadline; past the deadline the utility decreases linearly at
// the job's penalty rate, without bound (Figure 2).
package economy
