package economy

import (
	"fmt"
	"math"
)

// PriceSchedule quotes the commodity base price in effect at a given
// simulation time. The paper notes commodity prices "can be flat or
// variable" (§5.1) but evaluates only flat pricing; the variable form is
// this repository's revenue-management extension.
type PriceSchedule interface {
	// PriceAt returns the per-second base price at time t.
	PriceAt(t float64) float64
}

// FlatPrice is the paper's pricing: the same base price at all times.
type FlatPrice float64

// PriceAt returns the flat price.
func (p FlatPrice) PriceAt(float64) float64 { return float64(p) }

// TimeOfDayPrice charges a peak multiple of the base price during a daily
// window — the classic utility tariff, matched to the diurnal arrival
// cycle production workloads exhibit.
type TimeOfDayPrice struct {
	// Base is the off-peak per-second price.
	Base float64
	// PeakFactor multiplies Base during the peak window (>= 1).
	PeakFactor float64
	// PeakStartHour and PeakEndHour bound the daily peak window in hours
	// of virtual day, [start, end) with start < end.
	PeakStartHour, PeakEndHour float64
}

// Validate checks the tariff.
func (p TimeOfDayPrice) Validate() error {
	if p.Base <= 0 {
		return fmt.Errorf("economy: non-positive base price %v", p.Base)
	}
	if p.PeakFactor < 1 {
		return fmt.Errorf("economy: peak factor %v < 1", p.PeakFactor)
	}
	if p.PeakStartHour < 0 || p.PeakEndHour > 24 || p.PeakStartHour >= p.PeakEndHour {
		return fmt.Errorf("economy: bad peak window [%v, %v)", p.PeakStartHour, p.PeakEndHour)
	}
	return nil
}

// PriceAt returns the tariff price at time t.
func (p TimeOfDayPrice) PriceAt(t float64) float64 {
	hour := math.Mod(t, 24*3600) / 3600
	if hour >= p.PeakStartHour && hour < p.PeakEndHour {
		return p.Base * p.PeakFactor
	}
	return p.Base
}
