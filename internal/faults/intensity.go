package faults

import "fmt"

// Intensity is the failure-intensity scenario axis exposed by the
// experiment suite and cmd/riskbench: a coarse none/low/high knob that
// expands into a concrete Config scaled to the run's observation horizon.
// Scaling by the horizon (rather than absolute seconds) keeps the axis
// meaningful from 100-job test traces to the paper-scale 5000-job trace:
// "low" always means roughly half an expected failure per node over the
// run, "high" roughly four.
type Intensity string

const (
	// None disables fault injection; the cluster never fails (the paper's
	// original setting, under which every policy maxes out reliability).
	None Intensity = "none"
	// Low models a well-run machine: exponential failures with a per-node
	// MTBF of twice the horizon (≈0.5 expected failures per node, ≈64
	// node-failures on the 128-node SP2 over a run) and tightly
	// concentrated Weibull(2) repairs averaging 2% of the horizon.
	Low Intensity = "low"
	// High models a failure-prone machine: bursty Weibull(0.7) failures
	// with a per-node MTBF of a quarter horizon (≈4 expected failures per
	// node) and Weibull(2) repairs averaging 5% of the horizon.
	High Intensity = "high"
)

// ParseIntensity maps a flag string to an Intensity ("" means none).
func ParseIntensity(s string) (Intensity, error) {
	switch Intensity(s) {
	case "", None:
		return None, nil
	case Low:
		return Low, nil
	case High:
		return High, nil
	default:
		return None, fmt.Errorf("faults: unknown intensity %q (want none, low, or high)", s)
	}
}

// Enabled reports whether the intensity injects any faults.
func (i Intensity) Enabled() bool { return i == Low || i == High }

// String returns the flag spelling; the empty intensity reads as none.
func (i Intensity) String() string {
	if i == "" {
		return string(None)
	}
	return string(i)
}

// Config expands the intensity into a concrete failure process over the
// given observation horizon. None (or a non-positive horizon) yields a
// disabled config.
func (i Intensity) Config(seed int64, horizon float64) Config {
	if !i.Enabled() || horizon <= 0 {
		return Config{}
	}
	cfg := Config{Seed: seed, Horizon: horizon}
	switch i {
	case Low:
		cfg.MTBF = 2 * horizon
		cfg.MTTR = 0.02 * horizon
		cfg.FailureDist = Exponential
		cfg.RepairDist = Weibull
		cfg.RepairShape = 2
	case High:
		cfg.MTBF = 0.25 * horizon
		cfg.MTTR = 0.05 * horizon
		cfg.FailureDist = Weibull
		cfg.FailureShape = 0.7
		cfg.RepairDist = Weibull
		cfg.RepairShape = 2
	}
	return cfg
}
