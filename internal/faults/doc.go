// Package faults generates deterministic node failure and repair event
// sequences for the simulated cluster, in the tradition of the
// GridSim/CloudSim resource-failure models.
//
// Every node alternates between up and down periods whose lengths are drawn
// from explicitly seeded exponential or Weibull distributions. Each node
// draws from its own PRNG substream (derived from the configuration seed by
// a SplitMix64 finalizer), so the schedule for node i never depends on how
// many events another node produced — adding a node or lengthening the
// horizon perturbs nothing else. The generated schedule is a plain sorted
// slice of events; the simulation driver turns each into a sim.Engine event
// so failures interleave deterministically with job submissions and
// completions, preserving the repository's bit-for-bit reproducibility.
//
// # The intensity axis
//
// Experiments select failure behaviour through Intensity, the scenario
// axis the suite runner exposes as -faults none|low|high:
//
//   - None: the paper's original never-failing machine.
//   - Low: a well-run machine — exponential failures, long MTBF relative
//     to the observation horizon, quick repairs.
//   - High: a failure-prone machine — bursty Weibull(0.7) failures with
//     clustered downtime.
//
// Intensity.Config scales the process to a workload's observation horizon
// (see JobsHorizon), so the axis "bites" equally hard at 120-job test
// scale and 5000-job paper scale.
//
// # Seeding under replication
//
// A replicated suite varies the failure process per replication the same
// way it varies the trace and QoS draws: replication r uses FaultSeed +
// experiment.ReplicationSeedStride·r. Like every seed stream in this
// repository, the convention is part of the reproducibility contract —
// journals and goldens assume it.
package faults
