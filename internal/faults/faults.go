package faults

import (
	"fmt"
	"sort"

	"repro/internal/stats"
	"repro/internal/workload"
)

// Distribution selects the family an up- or down-time is drawn from.
type Distribution int

const (
	// Exponential draws memoryless inter-event times (the classic
	// constant-hazard failure model).
	Exponential Distribution = iota
	// Weibull draws inter-event times with a shape parameter: shape < 1
	// models bursty infant-mortality failures, shape > 1 wear-out or
	// narrowly concentrated repair times.
	Weibull
)

// String returns the distribution name.
func (d Distribution) String() string {
	switch d {
	case Exponential:
		return "exponential"
	case Weibull:
		return "weibull"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Config parameterizes one failure process. The zero value means "no
// faults" (Enabled reports false).
type Config struct {
	// Seed drives every draw; two runs with equal configs produce
	// byte-identical schedules.
	Seed int64
	// MTBF is the per-node mean up-time between failures, in seconds.
	MTBF float64
	// MTTR is the per-node mean down-time until repair, in seconds.
	MTTR float64
	// FailureDist and RepairDist select the distribution families.
	FailureDist, RepairDist Distribution
	// FailureShape and RepairShape are the Weibull shapes; ignored for
	// exponential draws.
	FailureShape, RepairShape float64
	// Horizon bounds the schedule: events are generated in (0, Horizon).
	// Failures after the horizon are not modeled — the process is observed
	// over a finite window, which keeps the simulation's event queue finite.
	Horizon float64
}

// Enabled reports whether the configuration describes an active failure
// process.
func (c Config) Enabled() bool { return c.MTBF > 0 && c.Horizon > 0 }

// Validate checks an enabled configuration's parameter ranges.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.MTTR <= 0 {
		return fmt.Errorf("faults: non-positive MTTR %v", c.MTTR)
	}
	for _, d := range []Distribution{c.FailureDist, c.RepairDist} {
		if d != Exponential && d != Weibull {
			return fmt.Errorf("faults: unknown distribution %d", int(d))
		}
	}
	if c.FailureDist == Weibull && c.FailureShape <= 0 {
		return fmt.Errorf("faults: non-positive Weibull failure shape %v", c.FailureShape)
	}
	if c.RepairDist == Weibull && c.RepairShape <= 0 {
		return fmt.Errorf("faults: non-positive Weibull repair shape %v", c.RepairShape)
	}
	return nil
}

// Event is one node state transition. Down events kill the node's resident
// jobs and remove its capacity; Up events restore it.
type Event struct {
	// Time is the virtual time of the transition, in seconds.
	Time float64
	// Node is the index of the affected node.
	Node int
	// Down is true for a failure, false for a repair.
	Down bool
}

// nodeSeed derives node i's PRNG substream seed from the config seed with a
// SplitMix64 finalizer, so neighboring nodes get statistically independent
// streams even for adjacent seeds.
func nodeSeed(seed int64, node int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(node+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// minGap keeps per-node transition times strictly increasing even when a
// draw underflows to zero, so failure and repair events can never coincide
// on one node.
const minGap = 1e-9

// draw samples one interval of the given distribution with the given mean.
func draw(rng *stats.Rng, dist Distribution, shape, mean float64) float64 {
	var v float64
	switch dist {
	case Weibull:
		v = stats.WeibullFromMean(rng, shape, mean)
	default:
		v = stats.Exponential(rng, mean)
	}
	if v < minGap {
		v = minGap
	}
	return v
}

// Generate produces the full failure/repair schedule for a machine of the
// given size: for each node, alternating up- and down-intervals are drawn
// until the horizon, and the per-node sequences are merged into one slice
// sorted by (time, node). Per node, failure and repair events strictly
// alternate starting with a failure; a node whose repair falls past the
// horizon stays down for the rest of the run. A disabled config yields nil.
func Generate(cfg Config, nodes int) ([]Event, error) {
	if !cfg.Enabled() {
		return nil, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 {
		return nil, fmt.Errorf("faults: non-positive node count %d", nodes)
	}
	var events []Event
	for n := 0; n < nodes; n++ {
		rng := stats.NewRand(nodeSeed(cfg.Seed, n))
		t := 0.0
		for {
			t += draw(rng, cfg.FailureDist, cfg.FailureShape, cfg.MTBF)
			if t >= cfg.Horizon {
				break
			}
			events = append(events, Event{Time: t, Node: n, Down: true})
			t += draw(rng, cfg.RepairDist, cfg.RepairShape, cfg.MTTR)
			if t >= cfg.Horizon {
				break // down for the rest of the observed window
			}
			events = append(events, Event{Time: t, Node: n, Down: false})
		}
	}
	sort.Slice(events, func(i, k int) bool {
		if events[i].Time != events[k].Time {
			return events[i].Time < events[k].Time
		}
		return events[i].Node < events[k].Node
	})
	return events, nil
}

// JobsHorizon returns the failure observation window for a prepared
// workload: through the latest deadline plus the longest runtime, so a job
// restarted near its deadline edge still runs under the failure process.
// (A squeezed time-shared job can outlive this bound; it simply sees no
// failures after the window closes.)
func JobsHorizon(jobs []*workload.Job) float64 {
	h := 0.0
	for _, j := range jobs {
		if end := j.AbsDeadline() + j.Runtime; end > h {
			h = end
		}
	}
	return h
}
