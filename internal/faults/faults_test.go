package faults

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/workload"
)

func highConfig(seed int64) Config {
	return High.Config(seed, 100000)
}

// Property: for any seed, the schedule is sorted, inside the horizon, and
// per node strictly alternates failure → repair → failure starting with a
// failure.
func TestGenerateInvariantsAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for _, cfg := range []Config{highConfig(seed), Low.Config(seed, 500000)} {
			events, err := Generate(cfg, 32)
			if err != nil {
				t.Fatal(err)
			}
			lastTime := 0.0
			down := make(map[int]bool)
			perNodeLast := make(map[int]float64)
			for i, ev := range events {
				if ev.Time <= 0 || ev.Time >= cfg.Horizon {
					t.Fatalf("seed %d: event %d at %v outside (0, %v)", seed, i, ev.Time, cfg.Horizon)
				}
				if ev.Time < lastTime {
					t.Fatalf("seed %d: schedule not sorted at event %d", seed, i)
				}
				lastTime = ev.Time
				if ev.Node < 0 || ev.Node >= 32 {
					t.Fatalf("seed %d: node %d out of range", seed, ev.Node)
				}
				if down[ev.Node] == ev.Down {
					t.Fatalf("seed %d: node %d does not alternate at event %d (down=%v twice)", seed, ev.Node, i, ev.Down)
				}
				down[ev.Node] = ev.Down
				if prev, ok := perNodeLast[ev.Node]; ok && ev.Time <= prev {
					t.Fatalf("seed %d: node %d time %v not strictly after %v", seed, ev.Node, ev.Time, prev)
				}
				perNodeLast[ev.Node] = ev.Time
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := highConfig(7)
	a, err := Generate(cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("high intensity produced no events")
	}
	other, err := Generate(Config{
		Seed: 8, MTBF: cfg.MTBF, MTTR: cfg.MTTR,
		FailureDist: cfg.FailureDist, FailureShape: cfg.FailureShape,
		RepairDist: cfg.RepairDist, RepairShape: cfg.RepairShape,
		Horizon: cfg.Horizon,
	}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// Per-node substreams: a node's schedule must not depend on the machine
// size, so growing the cluster never perturbs existing nodes.
func TestGenerateNodeStreamsIndependent(t *testing.T) {
	cfg := highConfig(3)
	small, err := Generate(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Generate(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(evs []Event, max int) []Event {
		var out []Event
		for _, ev := range evs {
			if ev.Node < max {
				out = append(out, ev)
			}
		}
		return out
	}
	if !reflect.DeepEqual(small, filter(large, 8)) {
		t.Fatal("growing the machine changed existing nodes' schedules")
	}
}

// The intensity presets should land near their designed expected failure
// counts: ~0.5 per node for low, ~4 per node for high.
func TestIntensityCalibration(t *testing.T) {
	const nodes, horizon = 256, 1e6
	for _, tc := range []struct {
		level   Intensity
		perNode float64
	}{
		{Low, 0.5},
		{High, 4},
	} {
		events, err := Generate(tc.level.Config(1, horizon), nodes)
		if err != nil {
			t.Fatal(err)
		}
		failures := 0
		for _, ev := range events {
			if ev.Down {
				failures++
			}
		}
		got := float64(failures) / nodes
		if math.Abs(got-tc.perNode)/tc.perNode > 0.35 {
			t.Errorf("%s: %v failures/node, want ~%v", tc.level, got, tc.perNode)
		}
	}
}

func TestIntensityParseAndConfig(t *testing.T) {
	for _, s := range []string{"", "none", "low", "high"} {
		if _, err := ParseIntensity(s); err != nil {
			t.Errorf("ParseIntensity(%q) = %v", s, err)
		}
	}
	if _, err := ParseIntensity("extreme"); err == nil {
		t.Error("unknown intensity accepted")
	}
	if None.Enabled() || Intensity("").Enabled() {
		t.Error("none reports enabled")
	}
	if !Low.Enabled() || !High.Enabled() {
		t.Error("low/high report disabled")
	}
	if Intensity("").String() != "none" {
		t.Errorf("empty intensity String = %q", Intensity("").String())
	}
	if cfg := None.Config(1, 1000); cfg.Enabled() {
		t.Error("none expands to an enabled config")
	}
	if cfg := Low.Config(1, 0); cfg.Enabled() {
		t.Error("zero horizon expands to an enabled config")
	}
	for _, level := range []Intensity{Low, High} {
		cfg := level.Config(1, 1000)
		if !cfg.Enabled() {
			t.Errorf("%s expands to a disabled config", level)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s config invalid: %v", level, err)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("disabled config invalid: %v", err)
	}
	bad := highConfig(1)
	bad.MTTR = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MTTR accepted")
	}
	bad = highConfig(1)
	bad.FailureShape = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero Weibull failure shape accepted")
	}
	bad = highConfig(1)
	bad.RepairShape = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative Weibull repair shape accepted")
	}
	bad = highConfig(1)
	bad.FailureDist = Distribution(99)
	if err := bad.Validate(); err == nil {
		t.Error("unknown distribution accepted")
	}
	if Distribution(99).String() == "" || Exponential.String() != "exponential" || Weibull.String() != "weibull" {
		t.Error("Distribution.String broken")
	}
}

func TestGenerateErrors(t *testing.T) {
	if evs, err := Generate(Config{}, 8); err != nil || evs != nil {
		t.Errorf("disabled config: %v, %v", evs, err)
	}
	if _, err := Generate(highConfig(1), 0); err == nil {
		t.Error("zero nodes accepted")
	}
	bad := highConfig(1)
	bad.MTTR = 0
	if _, err := Generate(bad, 8); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestJobsHorizon(t *testing.T) {
	jobs := []*workload.Job{
		{ID: 1, Submit: 0, Runtime: 100, Estimate: 100, Procs: 1, Deadline: 500, Budget: 1},
		{ID: 2, Submit: 1000, Runtime: 300, Estimate: 300, Procs: 1, Deadline: 2000, Budget: 1},
	}
	if h := JobsHorizon(jobs); h != 1000+2000+300 {
		t.Errorf("JobsHorizon = %v, want 3300", h)
	}
	if h := JobsHorizon(nil); h != 0 {
		t.Errorf("JobsHorizon(nil) = %v", h)
	}
}

// Sorted merge ties across nodes break by node index, deterministically.
func TestGenerateSortTieBreak(t *testing.T) {
	events := []Event{{Time: 5, Node: 3, Down: true}, {Time: 5, Node: 1, Down: true}, {Time: 2, Node: 7, Down: true}}
	sort.Slice(events, func(i, k int) bool {
		if events[i].Time != events[k].Time {
			return events[i].Time < events[k].Time
		}
		return events[i].Node < events[k].Node
	})
	want := []Event{{Time: 2, Node: 7, Down: true}, {Time: 5, Node: 1, Down: true}, {Time: 5, Node: 3, Down: true}}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("tie-break order = %+v", events)
	}
}
