package cluster

import (
	"testing"

	"repro/internal/sim"
)

func TestUniformRatings(t *testing.T) {
	r := UniformRatings(3, 2.5)
	if len(r) != 3 {
		t.Fatalf("got %d ratings, want 3", len(r))
	}
	for i, v := range r {
		if v != 2.5 {
			t.Fatalf("rating[%d] = %v, want 2.5", i, v)
		}
	}
	// The vector must be accepted by both rated constructors.
	NewSpaceSharedRated(sim.NewEngine(), r)
	NewTimeSharedRated(sim.NewEngine(), r)
}

func TestUniformRatingsPanics(t *testing.T) {
	for _, tc := range []struct {
		name  string
		nodes int
		speed float64
	}{
		{"zero nodes", 0, 1},
		{"negative nodes", -1, 1},
		{"zero speed", 4, 0},
		{"negative speed", 4, -2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("UniformRatings(%d, %v) did not panic", tc.nodes, tc.speed)
				}
			}()
			UniformRatings(tc.nodes, tc.speed)
		})
	}
}
