package cluster

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// djob builds a job with a deadline so its booking can lapse.
func djob(id, procs int, submit, runtime, estimate, deadline float64) *workload.Job {
	return &workload.Job{
		ID: id, Submit: submit, Runtime: runtime, Estimate: estimate, Procs: procs,
		Deadline: deadline, Budget: 1,
	}
}

func TestBookingLapsesAtDeadline(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 1)
	// Estimate 50, actual 500, deadline 100: booking expires at t=100.
	j := djob(1, 1, 0, 500, 50, 100)
	if err := c.Start(j, 0.5, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	e.MustSchedule(99, "before lapse", func() {
		if c.FreeShare(0) != 0.5 {
			t.Errorf("free share before lapse = %v, want 0.5", c.FreeShare(0))
		}
		if c.Lookup(j).Lapsed() {
			t.Error("lapsed before deadline")
		}
	})
	e.MustSchedule(101, "after lapse", func() {
		if c.FreeShare(0) != 1.0 {
			t.Errorf("free share after lapse = %v, want 1.0 (booking released)", c.FreeShare(0))
		}
		tj := c.Lookup(j)
		if !tj.Lapsed() {
			t.Error("not lapsed after deadline")
		}
		// Alone on the node the lapsed job still runs at full speed.
		if tj.Rate() != 1.0 {
			t.Errorf("lapsed job alone runs at %v, want 1.0", tj.Rate())
		}
	})
	e.Run()
}

func TestLapsedJobSqueezedByNewBooking(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 1)
	// Job 1 lapses at t=100 with plenty of work left.
	j1 := djob(1, 1, 0, 10000, 50, 100)
	if err := c.Start(j1, 0.5, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	// At t=200 a new job books 0.9 — admissible because the lapsed booking
	// no longer counts.
	j2 := djob(2, 1, 200, 90, 90, 100)
	e.MustSchedule(200, "submit j2", func() {
		if got := c.FreeShare(0); got != 1.0 {
			t.Fatalf("free share = %v, want 1.0", got)
		}
		if err := c.Start(j2, 0.9, []int{0}, nil); err != nil {
			t.Fatal(err)
		}
		// Weights: j2 0.9 booked, j1 0.5 lapsed (OS share not revoked).
		// Total 1.4 > 1: the node is over-committed and j2 runs below its
		// booked share — the estimate-inaccuracy cascade.
		r1 := c.Lookup(j1).Rate()
		r2 := c.Lookup(j2).Rate()
		if math.Abs(r2-0.9/1.4) > 1e-9 {
			t.Errorf("booked job rate = %v, want %v", r2, 0.9/1.4)
		}
		if math.Abs(r1-0.5/1.4) > 1e-9 {
			t.Errorf("lapsed job rate = %v, want %v", r1, 0.5/1.4)
		}
		if r2 >= 0.9 {
			t.Error("booked job not squeezed below its share")
		}
	})
	e.Run()
}

// The over-commitment cascade: a lapsed job pushes total weight above 1,
// so a booked job runs below its share and misses its own deadline even
// though its estimate was accurate.
func TestOverCommitmentBreaksGuarantee(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 1)
	finish := map[int]sim.Time{}
	done := func(j *workload.Job) { finish[j.ID] = e.Now() }
	// Job 1: badly under-estimated, lapses at t=10 with ~9990 work left.
	if err := c.Start(djob(1, 1, 0, 10000, 5, 10), 0.5, []int{0}, done); err != nil {
		t.Fatal(err)
	}
	// Job 2 at t=20: accurate estimate 100, deadline 100, share 1.0 —
	// admissible because job 1's booking lapsed. Node weight = 1.0 + 0.5,
	// so job 2 runs at 1/1.5 < 1 and finishes after its deadline.
	j2 := djob(2, 1, 20, 100, 100, 100)
	e.MustSchedule(20, "submit j2", func() {
		if err := c.Start(j2, 1.0, []int{0}, done); err != nil {
			t.Fatal(err)
		}
	})
	e.Run()
	if finish[2] <= 120 {
		t.Errorf("squeezed job finished at %v, want after its deadline 120", finish[2])
	}
}

// Lapse bookkeeping must balance: after everything drains the node is
// clean.
func TestLapseConservation(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 2)
	for i := 1; i <= 6; i++ {
		runtime := float64(50 * i)
		deadline := 120.0 // some lapse, some don't
		j := djob(i, 1, 0, runtime, 40, deadline)
		nodes := c.CandidateNodes(0.3)
		if len(nodes) < 1 {
			t.Fatal("no candidate nodes")
		}
		if err := c.Start(j, 0.3, nodes[:1], nil); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if c.RunningCount() != 0 {
		t.Fatalf("%d jobs still running", c.RunningCount())
	}
	for n := 0; n < 2; n++ {
		if math.Abs(c.FreeShare(n)-1) > 1e-6 {
			t.Errorf("node %d free share %v after drain", n, c.FreeShare(n))
		}
	}
}

// A job completing exactly at its deadline must not double-release.
func TestCompletionAtLapseInstant(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 1)
	// Runs alone at rate 1: completes at t=100, deadline also 100.
	j := djob(1, 1, 0, 100, 100, 100)
	completed := false
	if err := c.Start(j, 1.0, []int{0}, func(*workload.Job) { completed = true }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !completed {
		t.Fatal("job never completed")
	}
	if got := c.FreeShare(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("free share = %v after exact-deadline completion", got)
	}
}

func TestCommittedSecondsIgnoresLapsed(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 1)
	if err := c.Start(djob(1, 1, 0, 10000, 5, 10), 0.5, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	e.MustSchedule(50, "probe", func() {
		if got := c.CommittedSeconds(0, 100); got != 0 {
			t.Errorf("CommittedSeconds = %v with only a lapsed job, want 0", got)
		}
	})
	e.Run()
}

func TestNoDeadlineJobsNeverLapse(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 1)
	j := job(1, 1, 500, 500) // Deadline zero
	if err := c.Start(j, 0.5, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	e.MustSchedule(400, "probe", func() {
		if c.Lookup(j).Lapsed() {
			t.Error("deadline-less job lapsed")
		}
		if c.FreeShare(0) != 0.5 {
			t.Errorf("free share = %v, want 0.5 held", c.FreeShare(0))
		}
		// CommittedSeconds books it to its projected completion (t=500):
		// 100 more seconds at share 0.5 over a 200-second horizon.
		if got := c.CommittedSeconds(0, 200); math.Abs(got-50) > 1e-6 {
			t.Errorf("CommittedSeconds = %v, want 50", got)
		}
	})
	e.Run()
}

func TestKillReleasesResources(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 2)
	done := false
	j := djob(1, 2, 0, 1000, 50, 100)
	if err := c.Start(j, 0.5, []int{0, 1}, func(*workload.Job) { done = true }); err != nil {
		t.Fatal(err)
	}
	e.MustSchedule(40, "kill", func() {
		if err := c.Kill(j); err != nil {
			t.Fatal(err)
		}
		if c.RunningCount() != 0 {
			t.Error("job still running after kill")
		}
		if c.FreeShare(0) != 1 || c.FreeShare(1) != 1 {
			t.Errorf("shares not released: %v, %v", c.FreeShare(0), c.FreeShare(1))
		}
		if err := c.Kill(j); err == nil {
			t.Error("double kill accepted")
		}
	})
	e.Run()
	if done {
		t.Error("killed job invoked its completion callback")
	}
}

func TestKillLapsedJob(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 1)
	j := djob(1, 1, 0, 10000, 5, 10)
	if err := c.Start(j, 0.5, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	e.MustSchedule(50, "kill lapsed", func() {
		if !c.Lookup(j).Lapsed() {
			t.Fatal("job not lapsed yet")
		}
		if err := c.Kill(j); err != nil {
			t.Fatal(err)
		}
		if c.FreeShare(0) != 1 {
			t.Errorf("free share = %v after killing lapsed job", c.FreeShare(0))
		}
	})
	e.Run()
}
