package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/workload"
)

// This file holds naive reference implementations of both disciplines for
// the differential battery in differential_test.go. They are deliberately
// the pre-optimization algorithms: refTimeShared recomputes every job's
// rate on every change (no dirty-node tracking), and refSpaceShared
// rebuilds and re-sorts its running set from the map on every availability
// query (no maintained believed-end order). The optimized implementations
// must match them bit for bit; any shortcut that is approximate rather
// than exact shows up here as a journal divergence.

type refTSJob struct {
	job       *workload.Job
	share     float64
	nodes     []int
	remaining float64
	progress  float64
	rate      float64
	lapsed    bool
	lapseEv   sim.Event
	done      func(*workload.Job)
}

func (t *refTSJob) weight() float64 {
	if t.lapsed {
		return t.share * LapsedWeightFactor
	}
	return t.share
}

type refTimeShared struct {
	engine       *sim.Engine
	ratings      []float64
	booked       []float64
	lapsedW      []float64
	down         []bool
	order        []*refTSJob
	running      map[*workload.Job]*refTSJob
	lastUpdate   sim.Time
	next         sim.Event
	busyIntegral float64
}

func newRefTimeShared(engine *sim.Engine, ratings []float64) *refTimeShared {
	return &refTimeShared{
		engine:  engine,
		ratings: append([]float64(nil), ratings...),
		booked:  make([]float64, len(ratings)),
		lapsedW: make([]float64, len(ratings)),
		down:    make([]bool, len(ratings)),
		running: make(map[*workload.Job]*refTSJob),
	}
}

func (t *refTimeShared) FreeShare(i int) float64 {
	if t.down[i] {
		return 0
	}
	return 1 - t.booked[i]
}

func (t *refTimeShared) CandidateNodes(share float64) []int {
	var idx []int
	for i := range t.ratings {
		if t.down[i] {
			continue
		}
		if t.FreeShare(i)+workEps >= share {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		fa, fb := t.FreeShare(idx[a]), t.FreeShare(idx[b])
		if fa != fb {
			return fa < fb
		}
		return idx[a] < idx[b]
	})
	return idx
}

func (t *refTimeShared) CommittedSeconds(i int, horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	t.advance()
	now := float64(t.engine.Now())
	var jobs []*refTSJob
	for _, tj := range t.order {
		if tj.lapsed {
			continue
		}
		for _, n := range tj.nodes {
			if n == i {
				jobs = append(jobs, tj)
				break
			}
		}
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].job.ID < jobs[b].job.ID })
	total := 0.0
	for _, tj := range jobs {
		end := tj.job.AbsDeadline()
		if tj.job.Deadline <= 0 {
			end = now + tj.remaining/math.Max(tj.rate, tj.share)
		}
		dur := math.Min(horizon, math.Max(0, end-now))
		total += tj.share * dur
	}
	return total
}

func (t *refTimeShared) Start(j *workload.Job, share float64, nodes []int, done func(*workload.Job)) error {
	for _, n := range nodes {
		if t.FreeShare(n)+workEps < share {
			return fmt.Errorf("ref: job %d: node %d has free share %v < %v", j.ID, n, t.FreeShare(n), share)
		}
	}
	t.advance()
	tj := &refTSJob{
		job:       j,
		share:     share,
		nodes:     append([]int(nil), nodes...),
		remaining: j.Runtime,
		done:      done,
	}
	for _, n := range nodes {
		t.booked[n] = math.Min(1, t.booked[n]+share)
	}
	t.running[j] = tj
	t.order = append(t.order, tj)
	if j.Deadline > 0 {
		tj.lapseEv = t.engine.MustSchedule(
			sim.Time(math.Max(j.AbsDeadline(), float64(t.engine.Now()))),
			"ref lapse booking",
			func() { t.onLapse(tj) },
		)
	}
	t.recompute()
	return nil
}

func (t *refTimeShared) onLapse(tj *refTSJob) {
	tj.lapseEv = sim.Event{}
	if _, ok := t.running[tj.job]; !ok {
		return
	}
	t.advance()
	tj.lapsed = true
	for _, n := range tj.nodes {
		t.booked[n] -= tj.share
		if t.booked[n] < 0 {
			t.booked[n] = 0
		}
		t.lapsedW[n] += tj.weight()
	}
	t.recompute()
}

// Utilization is a pure read, mirroring TimeShared: checkpointing at a
// read would perturb the ulps of every job's remaining work.
func (t *refTimeShared) Utilization() float64 {
	now := float64(t.engine.Now())
	if now <= 0 {
		return 0
	}
	util := t.busyIntegral
	if dt := now - float64(t.lastUpdate); dt > 0 {
		for _, tj := range t.order {
			util += tj.rate * float64(tj.job.Procs) * dt
		}
	}
	return util / (float64(len(t.ratings)) * now)
}

func (t *refTimeShared) kill(j *workload.Job) {
	tj, ok := t.running[j]
	if !ok {
		panic(fmt.Sprintf("ref: kill of job %d, which is not running", j.ID))
	}
	t.advance()
	delete(t.running, j)
	kept := t.order[:0]
	for _, o := range t.order {
		if o != tj {
			kept = append(kept, o)
		}
	}
	t.order = kept
	t.engine.Cancel(tj.lapseEv)
	tj.lapseEv = sim.Event{}
	for _, n := range tj.nodes {
		if tj.lapsed {
			t.lapsedW[n] -= tj.weight()
			if t.lapsedW[n] < 0 {
				t.lapsedW[n] = 0
			}
		} else {
			t.booked[n] -= tj.share
			if t.booked[n] < 0 {
				t.booked[n] = 0
			}
		}
	}
	t.recompute()
}

func (t *refTimeShared) Fail(i int) []*workload.Job {
	var victims []*workload.Job
	for _, tj := range t.order {
		for _, n := range tj.nodes {
			if n == i {
				victims = append(victims, tj.job)
				break
			}
		}
	}
	sort.Slice(victims, func(a, b int) bool { return victims[a].ID < victims[b].ID })
	for _, j := range victims {
		t.kill(j)
	}
	t.down[i] = true
	return victims
}

func (t *refTimeShared) Repair(i int) { t.down[i] = false }

func (t *refTimeShared) JobState(j *workload.Job) (rate, progress float64, lapsed, ok bool) {
	t.advance()
	tj, ok := t.running[j]
	if !ok {
		return 0, 0, false, false
	}
	return tj.rate, tj.progress, tj.lapsed, true
}

func (t *refTimeShared) advance() {
	now := t.engine.Now()
	dt := float64(now - t.lastUpdate)
	if dt > 0 {
		for _, tj := range t.order {
			tj.progress += tj.rate * dt
			tj.remaining -= tj.rate * dt
			if tj.remaining < 0 {
				tj.remaining = 0
			}
			t.busyIntegral += tj.rate * float64(tj.job.Procs) * dt
		}
	}
	t.lastUpdate = now
}

// recompute is the naive full pass: every job's rate, every time.
func (t *refTimeShared) recompute() {
	for _, tj := range t.order {
		w := tj.weight()
		rate := math.Inf(1)
		for _, n := range tj.nodes {
			total := t.booked[n] + t.lapsedW[n]
			frac := 1.0
			if total > w {
				frac = w / total
			}
			if r := frac * t.ratings[n]; r < rate {
				rate = r
			}
		}
		tj.rate = rate
	}
	t.engine.Cancel(t.next)
	t.next = sim.Event{}
	if len(t.running) == 0 {
		return
	}
	soonest := sim.Infinity
	for _, tj := range t.order {
		eta := t.engine.Now() + sim.Time(tj.remaining/tj.rate)
		if eta < soonest {
			soonest = eta
		}
	}
	t.next = t.engine.MustSchedule(soonest, "ref timeshared completion", t.onCompletion)
}

func (t *refTimeShared) onCompletion() {
	t.next = sim.Event{}
	t.advance()
	var finished []*refTSJob
	kept := t.order[:0]
	for _, tj := range t.order {
		if tj.remaining <= workEps {
			finished = append(finished, tj)
			continue
		}
		kept = append(kept, tj)
	}
	t.order = kept
	sort.Slice(finished, func(i, k int) bool { return finished[i].job.ID < finished[k].job.ID })
	for _, tj := range finished {
		delete(t.running, tj.job)
		t.engine.Cancel(tj.lapseEv)
		tj.lapseEv = sim.Event{}
		for _, n := range tj.nodes {
			if tj.lapsed {
				t.lapsedW[n] -= tj.weight()
				if t.lapsedW[n] < 0 {
					t.lapsedW[n] = 0
				}
			} else {
				t.booked[n] -= tj.share
				if t.booked[n] < 0 {
					t.booked[n] = 0
				}
			}
		}
	}
	t.recompute()
	for _, tj := range finished {
		if tj.done != nil {
			tj.done(tj.job)
		}
	}
}

type refSpaceJob struct {
	job       *workload.Job
	nodes     []int
	estEnd    sim.Time
	actualEnd sim.Time
	ev        sim.Event
}

type refSpaceShared struct {
	engine       *sim.Engine
	ratings      []float64
	busy         []bool
	down         []bool
	occupant     []*refSpaceJob
	free         int
	busyProcs    int
	running      map[*workload.Job]*refSpaceJob
	busyIntegral float64
	lastChange   sim.Time
}

func newRefSpaceShared(engine *sim.Engine, ratings []float64) *refSpaceShared {
	return &refSpaceShared{
		engine:   engine,
		ratings:  append([]float64(nil), ratings...),
		busy:     make([]bool, len(ratings)),
		down:     make([]bool, len(ratings)),
		occupant: make([]*refSpaceJob, len(ratings)),
		free:     len(ratings),
		running:  make(map[*workload.Job]*refSpaceJob),
	}
}

func (s *refSpaceShared) FreeProcs() int { return s.free }

func (s *refSpaceShared) CanStart(procs int) bool {
	return procs <= s.free && procs <= len(s.ratings)
}

func (s *refSpaceShared) accrue() {
	now := s.engine.Now()
	s.busyIntegral += float64(s.busyProcs) * float64(now-s.lastChange)
	s.lastChange = now
}

func (s *refSpaceShared) Utilization() float64 {
	now := float64(s.engine.Now())
	if now <= 0 {
		return 0
	}
	current := s.busyIntegral + float64(s.busyProcs)*(now-float64(s.lastChange))
	return current / (float64(len(s.ratings)) * now)
}

func (s *refSpaceShared) pickNodes(procs int) []int {
	idx := make([]int, 0, s.free)
	for i, busy := range s.busy {
		if !busy && !s.down[i] {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := s.ratings[idx[a]], s.ratings[idx[b]]
		if ra != rb {
			return ra > rb
		}
		return idx[a] < idx[b]
	})
	return idx[:procs]
}

func (s *refSpaceShared) Start(j *workload.Job, done func(*workload.Job)) error {
	if j.Procs > s.free {
		return fmt.Errorf("ref: job %d needs %d procs, only %d free", j.ID, j.Procs, s.free)
	}
	nodes := s.pickNodes(j.Procs)
	speed := s.ratings[nodes[0]]
	for _, n := range nodes[1:] {
		if s.ratings[n] < speed {
			speed = s.ratings[n]
		}
	}
	now := s.engine.Now()
	sj := &refSpaceJob{
		job:       j,
		nodes:     nodes,
		estEnd:    now + sim.Time(j.Estimate/speed),
		actualEnd: now + sim.Time(j.Runtime/speed),
	}
	s.accrue()
	for _, n := range nodes {
		s.busy[n] = true
		s.occupant[n] = sj
	}
	s.free -= j.Procs
	s.busyProcs += j.Procs
	s.running[j] = sj
	sj.ev = s.engine.MustSchedule(sj.actualEnd, "ref spaceshared completion", func() {
		s.accrue()
		s.release(sj)
		if done != nil {
			done(j)
		}
	})
	return nil
}

func (s *refSpaceShared) release(sj *refSpaceJob) {
	delete(s.running, sj.job)
	for _, n := range sj.nodes {
		s.busy[n] = false
		s.occupant[n] = nil
		if !s.down[n] {
			s.free++
		}
	}
	s.busyProcs -= sj.job.Procs
}

func (s *refSpaceShared) Fail(i int) *workload.Job {
	s.accrue()
	s.down[i] = true
	sj := s.occupant[i]
	if sj == nil {
		s.free--
		return nil
	}
	s.engine.Cancel(sj.ev)
	s.release(sj)
	return sj.job
}

func (s *refSpaceShared) Repair(i int) {
	s.accrue()
	s.down[i] = false
	s.free++
}

func (s *refSpaceShared) believedEnd(sj *refSpaceJob) sim.Time {
	now := s.engine.Now()
	if sj.estEnd < now {
		return now
	}
	return sj.estEnd
}

// EarliestAvailable is the naive scan: rebuild the running set from the
// map, sort by (believedEnd, ID), accumulate.
func (s *refSpaceShared) EarliestAvailable(procs int) (sim.Time, error) {
	if procs > len(s.ratings) {
		return 0, fmt.Errorf("ref: width %d exceeds machine size %d", procs, len(s.ratings))
	}
	if procs <= s.free {
		return s.engine.Now(), nil
	}
	free := s.free
	releases := make([]*refSpaceJob, 0, len(s.running))
	for _, sj := range s.running { //lint:allow maporder — sorted by (believedEnd, ID) immediately below
		releases = append(releases, sj)
	}
	sort.Slice(releases, func(i, k int) bool {
		bi, bk := s.believedEnd(releases[i]), s.believedEnd(releases[k])
		if bi != bk {
			return bi < bk
		}
		return releases[i].job.ID < releases[k].job.ID
	})
	for _, sj := range releases {
		free += sj.job.Procs
		if free >= procs {
			return s.believedEnd(sj), nil
		}
	}
	return sim.Infinity, nil
}

func (s *refSpaceShared) AvailableAt(t sim.Time) int {
	free := s.free
	for _, sj := range s.running { //lint:allow maporder — integer sum, order-independent
		if s.believedEnd(sj) <= t {
			free += sj.job.Procs
		}
	}
	return free
}
