package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/workload"
)

// workEps is the slack under which remaining work counts as finished,
// absorbing floating-point drift in progress integration.
const workEps = 1e-6

// LapsedWeightFactor scales the proportional-share weight of a job whose
// booking has lapsed (it ran past its own deadline without finishing). The
// reservation no longer exists for admission purposes, but the OS-level
// proportional share enforcing the job's tickets is not revoked, so the
// job keeps competing at its full former share (factor 1). This is how
// inaccurate runtime estimates poison a Libra-managed node: the scheduler
// admits new work against the lapsed share while the overrun job still
// consumes its slice, pushing total weight above 1 and squeezing every job
// below its booked share.
const LapsedWeightFactor = 1.0

// TSJob is one job executing on a time-shared cluster.
type TSJob struct {
	Job *workload.Job
	// Share is the guaranteed processor fraction on each allocated node
	// (Libra's estimate/deadline), booked until the job's absolute
	// deadline.
	Share float64
	// Nodes are the indices of the allocated nodes.
	Nodes []int
	Start sim.Time

	remaining float64 // actual work left, in seconds at rate 1
	progress  float64 // actual work done
	rate      float64 // current execution rate (fraction of a processor)
	lapsed    bool    // booking expired before completion
	lapseEv   sim.Event
	done      func(*workload.Job)
}

// Progress returns the actual work completed so far, in processor-seconds
// at rate 1 (callers must have triggered an advance via a TimeShared query
// at the current time; all exported TimeShared methods do so).
func (t *TSJob) Progress() float64 { return t.progress }

// Overrun reports whether the job has already executed longer than its user
// estimate promised — the signal LibraRiskD keys on.
func (t *TSJob) Overrun() bool { return t.progress >= t.Job.Estimate-workEps }

// Lapsed reports whether the job's share booking has expired (it is still
// running past its own absolute deadline).
func (t *TSJob) Lapsed() bool { return t.lapsed }

// Rate returns the current execution rate.
func (t *TSJob) Rate() float64 { return t.rate }

// Remaining returns the actual work left, in seconds at rate 1. Work
// within the completion epsilon counts as done (the completion event for
// it is already pending).
func (t *TSJob) Remaining() float64 { return t.remaining }

// Done reports whether the job's work is complete up to the integration
// epsilon — its completion event is due this instant.
func (t *TSJob) Done() bool { return t.remaining <= workEps }

// weight is the job's current proportional-share weight on each of its
// nodes.
func (t *TSJob) weight() float64 {
	if t.lapsed {
		return t.Share * LapsedWeightFactor
	}
	return t.Share
}

type tsNode struct {
	// booked is the share sum of jobs whose reservation is still active;
	// admission control sees 1 − booked as free.
	booked float64
	// lapsedWeight is the weight sum of jobs running past their deadline.
	lapsedWeight float64
	// rating scales the node's execution speed relative to the reference
	// machine the trace's runtimes were measured on (1.0 = SP2 node).
	rating float64
	// down marks a failed node: no free share, no candidates, until
	// repaired. A failing node's jobs are killed, so a down node is empty.
	down bool
	// dirty marks that the node's weights changed since the last
	// recompute, so the rates of jobs touching it must be refreshed. Jobs
	// on clean nodes keep their rate: recomputing from unchanged inputs
	// would yield the bitwise-identical float, so skipping is exact, not
	// approximate.
	dirty bool
	jobs  map[*TSJob]struct{}
}

func (n *tsNode) totalWeight() float64 { return n.booked + n.lapsedWeight }

// TimeShared is a proportional-share cluster: each node runs any number of
// jobs, each holding a share of the processor booked until its deadline,
// with spare capacity redistributed proportionally to weights. With total
// weight W on a node, a job of weight w executes at rate w/W there (rate 1
// when alone); a parallel job advances at the rate of its slowest node.
//
// A job that reaches its own absolute deadline unfinished "lapses": its
// booking is released (admission control may commit the share to new
// work), and it keeps executing at LapsedWeightFactor of its former
// weight. Jobs whose Deadline field is zero never lapse. While every
// booking holds, a job's rate never falls below its share — Libra's
// guarantee — but lapsed jobs can push a node's total weight above 1,
// squeezing everyone below their booked share. That over-commitment is the
// mechanism by which under-estimated runtimes cascade into deadline misses
// (the paper's Set B).
type TimeShared struct {
	engine  *sim.Engine
	nodes   []tsNode
	running map[*workload.Job]*TSJob
	// order lists running jobs in start order: all float accumulation
	// iterates it so results do not depend on map iteration order.
	order      []*TSJob
	lastUpdate sim.Time
	next       sim.Event
	// dirtyNodes lists the nodes currently marked dirty, so recompute can
	// clear the flags without scanning the whole machine.
	dirtyNodes []int

	// busyIntegral accumulates useful processor work (Σ rate·width over
	// time) for Utilization. Capacity allocated on a fast node but idled
	// by a parallel job's slower node does not count.
	busyIntegral float64
}

// NewTimeShared returns a homogeneous time-shared cluster of the given
// size bound to the engine (every node at the reference speed, as the
// paper's SDSC SP2 — SPEC rating 168 throughout).
func NewTimeShared(engine *sim.Engine, nodes int) *TimeShared {
	if nodes <= 0 {
		panic(fmt.Sprintf("cluster: non-positive node count %d", nodes))
	}
	ratings := make([]float64, nodes)
	for i := range ratings {
		ratings[i] = 1
	}
	return NewTimeSharedRated(engine, ratings)
}

// NewTimeSharedRated returns a heterogeneous time-shared cluster: node i
// executes work at ratings[i] times the reference speed (the speed the
// trace's runtimes assume). Schedulers that are blind to ratings — like
// Libra's share admission — misjudge slow nodes, which is exactly the
// heterogeneity risk the rating ablation measures.
func NewTimeSharedRated(engine *sim.Engine, ratings []float64) *TimeShared {
	if len(ratings) == 0 {
		panic("cluster: no node ratings")
	}
	ts := &TimeShared{
		engine:  engine,
		nodes:   make([]tsNode, len(ratings)),
		running: make(map[*workload.Job]*TSJob),
	}
	for i, r := range ratings {
		if r <= 0 {
			panic(fmt.Sprintf("cluster: non-positive rating %v for node %d", r, i))
		}
		ts.nodes[i].rating = r
		ts.nodes[i].jobs = make(map[*TSJob]struct{})
	}
	return ts
}

// Rating returns node i's speed multiplier.
func (t *TimeShared) Rating(i int) float64 { return t.nodes[i].rating }

// Nodes returns the machine size.
func (t *TimeShared) Nodes() int { return len(t.nodes) }

// RunningCount returns the number of executing jobs.
func (t *TimeShared) RunningCount() int { return len(t.running) }

// FreeShare returns the unbooked processor fraction on node i — what
// admission control may still commit. Lapsed jobs do not count against it;
// a failed node has nothing to commit.
func (t *TimeShared) FreeShare(i int) float64 {
	if t.nodes[i].down {
		return 0
	}
	return 1 - t.nodes[i].booked
}

// UpNodes returns the number of nodes currently operational.
func (t *TimeShared) UpNodes() int {
	up := 0
	for i := range t.nodes {
		if !t.nodes[i].down {
			up++
		}
	}
	return up
}

// NodeDown reports whether node i is currently failed.
func (t *TimeShared) NodeDown(i int) bool { return t.nodes[i].down }

// Load returns the booked processor fraction on node i.
func (t *TimeShared) Load(i int) float64 { return t.nodes[i].booked }

// NodeHasOverrun reports whether any job on node i has exceeded its
// estimate (and is therefore holding capacity for an unknown further
// time).
func (t *TimeShared) NodeHasOverrun(i int) bool {
	t.advance()
	for j := range t.nodes[i].jobs { //lint:allow maporder — existence check; the result is order-independent
		if j.Overrun() {
			return true
		}
	}
	return false
}

// CandidateNodes returns the indices of nodes with at least the given free
// share, sorted best-fit first (least remaining free share, then index) —
// Libra saturates nodes to their maximum.
func (t *TimeShared) CandidateNodes(share float64) []int {
	var idx []int
	for i := range t.nodes {
		if t.nodes[i].down {
			continue // a failed node can host nothing, however small the share
		}
		if t.FreeShare(i)+workEps >= share {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		fa, fb := t.FreeShare(idx[a]), t.FreeShare(idx[b])
		if fa != fb {
			return fa < fb
		}
		return idx[a] < idx[b]
	})
	return idx
}

// CommittedSeconds returns the processor-seconds booked on node i over the
// window [now, now+horizon): each active booking lasts until its job's
// absolute deadline. Lapsed jobs contribute nothing — their booking has
// expired even though they still execute. Libra+$'s RESFree is derived
// from this.
func (t *TimeShared) CommittedSeconds(i int, horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	t.advance()
	now := float64(t.engine.Now())
	// Sum in job-ID order: float addition is not associative, and map
	// iteration order would otherwise make quoted prices depend on it.
	jobs := make([]*TSJob, 0, len(t.nodes[i].jobs))
	for tj := range t.nodes[i].jobs { //lint:allow maporder — collected jobs are sorted by ID immediately below
		if !tj.lapsed {
			jobs = append(jobs, tj)
		}
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Job.ID < jobs[b].Job.ID })
	total := 0.0
	for _, tj := range jobs {
		end := tj.Job.AbsDeadline()
		if tj.Job.Deadline <= 0 { // no deadline: booked until completion
			end = now + tj.remaining/math.Max(tj.rate, tj.Share)
		}
		dur := math.Min(horizon, math.Max(0, end-now))
		total += tj.Share * dur
	}
	return total
}

// Start begins executing j immediately with the given guaranteed share on
// the given nodes. done fires at actual completion, after shares have been
// released.
func (t *TimeShared) Start(j *workload.Job, share float64, nodes []int, done func(*workload.Job)) error {
	if share <= 0 || share > 1+workEps {
		return fmt.Errorf("cluster: job %d share %v outside (0,1]", j.ID, share)
	}
	if len(nodes) != j.Procs {
		return fmt.Errorf("cluster: job %d needs %d nodes, given %d", j.ID, j.Procs, len(nodes))
	}
	seen := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		if n < 0 || n >= len(t.nodes) {
			return fmt.Errorf("cluster: job %d: node index %d out of range", j.ID, n)
		}
		if seen[n] {
			return fmt.Errorf("cluster: job %d: node %d allocated twice", j.ID, n)
		}
		seen[n] = true
		if t.FreeShare(n)+workEps < share {
			return fmt.Errorf("cluster: job %d: node %d has free share %v < %v", j.ID, n, t.FreeShare(n), share)
		}
	}
	if _, dup := t.running[j]; dup {
		return fmt.Errorf("cluster: job %d already running", j.ID)
	}
	t.advance()
	tj := &TSJob{
		Job:       j,
		Share:     share,
		Nodes:     append([]int(nil), nodes...),
		Start:     t.engine.Now(),
		remaining: j.Runtime,
		done:      done,
	}
	for _, n := range nodes {
		t.nodes[n].booked = math.Min(1, t.nodes[n].booked+share)
		t.nodes[n].jobs[tj] = struct{}{}
	}
	t.running[j] = tj
	t.order = append(t.order, tj)
	t.markDirty(tj.Nodes)
	if j.Deadline > 0 {
		tj.lapseEv = t.engine.MustSchedule(
			sim.Time(math.Max(j.AbsDeadline(), float64(t.engine.Now()))),
			"lapse booking",
			func() { t.onLapse(tj) },
		)
	}
	t.recompute()
	return nil
}

// onLapse expires a still-running job's booking at its deadline.
func (t *TimeShared) onLapse(tj *TSJob) {
	tj.lapseEv = sim.Event{}
	if _, ok := t.running[tj.Job]; !ok {
		return // completed in the same instant
	}
	t.advance()
	tj.lapsed = true
	for _, n := range tj.Nodes {
		t.nodes[n].booked -= tj.Share
		if t.nodes[n].booked < 0 {
			t.nodes[n].booked = 0
		}
		t.nodes[n].lapsedWeight += tj.weight()
	}
	t.markDirty(tj.Nodes)
	t.recompute()
}

// Utilization returns the machine's useful-work utilization from time zero
// to the current instant: executed processor-seconds over capacity.
//
// Utilization is a pure read: it extends the integral into a local instead
// of calling advance, because checkpointing progress at a read splits the
// rate·dt products at the read instant and perturbs the last ulp of every
// job's remaining work. Reads (report snapshots) must not change a single
// outcome byte — that is the determinism contract session migration
// byte-checks against.
//
//lint:hot
func (t *TimeShared) Utilization() float64 {
	now := float64(t.engine.Now())
	if now <= 0 {
		return 0
	}
	util := t.busyIntegral
	if dt := now - float64(t.lastUpdate); dt > 0 {
		for _, tj := range t.order {
			util += tj.rate * float64(tj.Job.Procs) * dt
		}
	}
	return util / (float64(len(t.nodes)) * now)
}

// Kill terminates a running job immediately, releasing its share/weight
// without invoking its completion callback. Used by the termination
// extension (the paper's non-preemption future-work issue).
func (t *TimeShared) Kill(j *workload.Job) error {
	tj, ok := t.running[j]
	if !ok {
		return fmt.Errorf("cluster: kill of job %d, which is not running", j.ID)
	}
	t.advance()
	delete(t.running, j)
	kept := t.order[:0]
	for _, o := range t.order {
		if o != tj {
			kept = append(kept, o)
		}
	}
	t.order = kept
	t.engine.Cancel(tj.lapseEv)
	tj.lapseEv = sim.Event{}
	for _, n := range tj.Nodes {
		if tj.lapsed {
			t.nodes[n].lapsedWeight -= tj.weight()
			if t.nodes[n].lapsedWeight < 0 {
				t.nodes[n].lapsedWeight = 0
			}
		} else {
			t.nodes[n].booked -= tj.Share
			if t.nodes[n].booked < 0 {
				t.nodes[n].booked = 0
			}
		}
		delete(t.nodes[n].jobs, tj)
	}
	t.markDirty(tj.Nodes)
	t.recompute()
	return nil
}

// Fail marks node i as failed and kills every job with a share on it — a
// parallel job dies whole when any of its nodes fails. Victims are returned
// in job-ID order so the owning policy can account for them; the node
// accepts no new work until Repair. Failing a node that is already down is
// a programming error (the generator emits strictly alternating events).
func (t *TimeShared) Fail(i int) []*workload.Job {
	if i < 0 || i >= len(t.nodes) {
		panic(fmt.Sprintf("cluster: Fail of node %d on a %d-node machine", i, len(t.nodes)))
	}
	if t.nodes[i].down {
		panic(fmt.Sprintf("cluster: node %d failed twice without repair", i))
	}
	var victims []*workload.Job
	for _, tj := range t.order { // start order: deterministic iteration
		for _, n := range tj.Nodes {
			if n == i {
				victims = append(victims, tj.Job)
				break
			}
		}
	}
	sort.Slice(victims, func(a, b int) bool { return victims[a].ID < victims[b].ID })
	for _, j := range victims {
		if err := t.Kill(j); err != nil {
			panic(err) // victims were just read from the running set
		}
	}
	t.nodes[i].down = true
	return victims
}

// Repair returns a failed node to service, empty. Repairing an up node is
// a programming error.
func (t *TimeShared) Repair(i int) {
	if i < 0 || i >= len(t.nodes) {
		panic(fmt.Sprintf("cluster: Repair of node %d on a %d-node machine", i, len(t.nodes)))
	}
	if !t.nodes[i].down {
		panic(fmt.Sprintf("cluster: node %d repaired while up", i))
	}
	t.nodes[i].down = false
}

// Lookup returns the running-state record for j, or nil.
func (t *TimeShared) Lookup(j *workload.Job) *TSJob {
	t.advance()
	return t.running[j]
}

// advance integrates progress from the last update to the current time.
//
//lint:hot
func (t *TimeShared) advance() {
	now := t.engine.Now()
	dt := float64(now - t.lastUpdate)
	if dt > 0 {
		for _, tj := range t.order {
			tj.progress += tj.rate * dt
			tj.remaining -= tj.rate * dt
			if tj.remaining < 0 {
				tj.remaining = 0
			}
			t.busyIntegral += tj.rate * float64(tj.Job.Procs) * dt
		}
	}
	t.lastUpdate = now
}

// markDirty flags the given nodes as weight-changed since the last
// recompute. Every mutation of booked/lapsedWeight must be followed by a
// markDirty of the affected nodes before recompute runs.
func (t *TimeShared) markDirty(nodes []int) {
	for _, n := range nodes {
		if !t.nodes[n].dirty {
			t.nodes[n].dirty = true
			t.dirtyNodes = append(t.dirtyNodes, n)
		}
	}
}

// recompute refreshes the execution rate of every job touching a dirty node
// and reschedules the next completion event. Callers must advance() first.
//
// Jobs entirely on clean nodes are skipped: their rate inputs (own weight,
// node total weights, ratings) are unchanged, so the recomputed value would
// be bitwise identical — the skip is exact. The completion event is always
// cancelled and rescheduled, even when the soonest eta is unchanged, so the
// kernel's event sequence numbers (and therefore same-time tie-breaking)
// match a full recompute step for step.
func (t *TimeShared) recompute() {
	for _, tj := range t.order {
		needs := false
		for _, n := range tj.Nodes {
			if t.nodes[n].dirty {
				needs = true
				break
			}
		}
		if !needs {
			continue
		}
		w := tj.weight()
		rate := math.Inf(1)
		for _, n := range tj.Nodes {
			total := t.nodes[n].totalWeight()
			frac := 1.0
			if total > w {
				frac = w / total
			}
			// The node delivers its weighted slice at its own speed; a
			// parallel job advances at its slowest node.
			if r := frac * t.nodes[n].rating; r < rate {
				rate = r
			}
		}
		tj.rate = rate
	}
	for _, n := range t.dirtyNodes {
		t.nodes[n].dirty = false
	}
	t.dirtyNodes = t.dirtyNodes[:0]
	t.engine.Cancel(t.next)
	t.next = sim.Event{}
	if len(t.running) == 0 {
		return
	}
	soonest := sim.Infinity
	for _, tj := range t.order {
		eta := t.engine.Now() + sim.Time(tj.remaining/tj.rate)
		if eta < soonest {
			soonest = eta
		}
	}
	t.next = t.engine.MustSchedule(soonest, "timeshared completion", t.onCompletion)
}

// onCompletion retires every job whose work is done, then reschedules.
func (t *TimeShared) onCompletion() {
	t.next = sim.Event{}
	t.advance()
	var finished []*TSJob
	kept := t.order[:0]
	for _, tj := range t.order {
		if tj.remaining <= workEps {
			finished = append(finished, tj)
			continue
		}
		kept = append(kept, tj)
	}
	t.order = kept
	sort.Slice(finished, func(i, k int) bool { return finished[i].Job.ID < finished[k].Job.ID })
	for _, tj := range finished {
		delete(t.running, tj.Job)
		t.engine.Cancel(tj.lapseEv)
		tj.lapseEv = sim.Event{}
		t.markDirty(tj.Nodes)
		for _, n := range tj.Nodes {
			if tj.lapsed {
				t.nodes[n].lapsedWeight -= tj.weight()
				if t.nodes[n].lapsedWeight < 0 {
					t.nodes[n].lapsedWeight = 0
				}
			} else {
				t.nodes[n].booked -= tj.Share
				if t.nodes[n].booked < 0 {
					t.nodes[n].booked = 0
				}
			}
			delete(t.nodes[n].jobs, tj)
		}
	}
	t.recompute()
	for _, tj := range finished {
		if tj.done != nil {
			tj.done(tj.Job)
		}
	}
}
