package cluster

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func job(id, procs int, runtime, estimate float64) *workload.Job {
	return &workload.Job{ID: id, Runtime: runtime, Estimate: estimate, Procs: procs}
}

func TestSpaceSharedStartAndComplete(t *testing.T) {
	e := sim.NewEngine()
	c := NewSpaceShared(e, 8)
	var finishedAt sim.Time
	j := job(1, 4, 100, 120)
	if !c.CanStart(4) {
		t.Fatal("CanStart(4) = false on empty 8-node cluster")
	}
	if err := c.Start(j, func(*workload.Job) { finishedAt = e.Now() }); err != nil {
		t.Fatal(err)
	}
	if c.FreeProcs() != 4 {
		t.Errorf("FreeProcs = %d after starting 4-wide job, want 4", c.FreeProcs())
	}
	if c.RunningCount() != 1 {
		t.Errorf("RunningCount = %d, want 1", c.RunningCount())
	}
	e.Run()
	if finishedAt != 100 {
		t.Errorf("job finished at %v, want 100 (actual runtime, not estimate)", finishedAt)
	}
	if c.FreeProcs() != 8 {
		t.Errorf("FreeProcs = %d after completion, want 8", c.FreeProcs())
	}
}

func TestSpaceSharedRejectsOversize(t *testing.T) {
	e := sim.NewEngine()
	c := NewSpaceShared(e, 8)
	if err := c.Start(job(1, 9, 10, 10), nil); err == nil {
		t.Error("9-wide job accepted on 8-node cluster")
	}
	if err := c.Start(job(2, 8, 10, 10), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(3, 1, 10, 10), nil); err == nil {
		t.Error("job accepted with zero free processors")
	}
}

func TestSpaceSharedEarliestAvailable(t *testing.T) {
	e := sim.NewEngine()
	c := NewSpaceShared(e, 8)
	// Two jobs: 4 procs until est 100, 2 procs until est 50.
	if err := c.Start(job(1, 4, 100, 100), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(2, 2, 50, 50), nil); err != nil {
		t.Fatal(err)
	}
	// 2 free now.
	if at, err := c.EarliestAvailable(2); err != nil || at != 0 {
		t.Errorf("EarliestAvailable(2) = %v, %v; want 0, nil", at, err)
	}
	// 4 free after job 2's estimated end (50).
	if at, err := c.EarliestAvailable(4); err != nil || at != 50 {
		t.Errorf("EarliestAvailable(4) = %v, %v; want 50, nil", at, err)
	}
	// All 8 after job 1's estimated end (100).
	if at, err := c.EarliestAvailable(8); err != nil || at != 100 {
		t.Errorf("EarliestAvailable(8) = %v, %v; want 100, nil", at, err)
	}
	if _, err := c.EarliestAvailable(9); err == nil {
		t.Error("EarliestAvailable(9) on 8-node machine did not error")
	}
}

func TestSpaceSharedAvailableAt(t *testing.T) {
	e := sim.NewEngine()
	c := NewSpaceShared(e, 8)
	if err := c.Start(job(1, 4, 100, 100), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(2, 2, 50, 50), nil); err != nil {
		t.Fatal(err)
	}
	if got := c.AvailableAt(25); got != 2 {
		t.Errorf("AvailableAt(25) = %d, want 2", got)
	}
	if got := c.AvailableAt(60); got != 4 {
		t.Errorf("AvailableAt(60) = %d, want 4", got)
	}
	if got := c.AvailableAt(150); got != 8 {
		t.Errorf("AvailableAt(150) = %d, want 8", got)
	}
}

// A job that overruns its estimate is believed to finish "now", so the
// availability profile never quotes times in the past.
func TestSpaceSharedOverrunBelievedImminent(t *testing.T) {
	e := sim.NewEngine()
	c := NewSpaceShared(e, 4)
	// Estimate 10, actual 100: overruns at t=10.
	if err := c.Start(job(1, 4, 100, 10), nil); err != nil {
		t.Fatal(err)
	}
	e.MustSchedule(50, "probe", func() {
		at, err := c.EarliestAvailable(4)
		if err != nil {
			t.Errorf("EarliestAvailable: %v", err)
		}
		if at != 50 {
			t.Errorf("EarliestAvailable(4) = %v at t=50 with overrun job, want 50", at)
		}
		if got := c.AvailableAt(50); got != 4 {
			t.Errorf("AvailableAt(50) = %d, want 4 (overrun believed done)", got)
		}
	})
	e.Run()
}

func TestSpaceSharedRunningOrder(t *testing.T) {
	e := sim.NewEngine()
	c := NewSpaceShared(e, 8)
	if err := c.Start(job(2, 1, 80, 80), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(1, 1, 20, 20), nil); err != nil {
		t.Fatal(err)
	}
	r := c.Running()
	if len(r) != 2 || r[0].Job.ID != 1 || r[1].Job.ID != 2 {
		t.Errorf("Running() order wrong: %v, %v", r[0].Job.ID, r[1].Job.ID)
	}
}

func TestSpaceSharedSequencing(t *testing.T) {
	e := sim.NewEngine()
	c := NewSpaceShared(e, 2)
	var order []int
	done := func(j *workload.Job) { order = append(order, j.ID) }
	if err := c.Start(job(1, 1, 30, 30), done); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(2, 1, 10, 10), done); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("completion order = %v, want [2 1]", order)
	}
}

func TestNewSpaceSharedPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSpaceShared(0) did not panic")
		}
	}()
	NewSpaceShared(sim.NewEngine(), 0)
}

func TestSpaceSharedUtilization(t *testing.T) {
	e := sim.NewEngine()
	c := NewSpaceShared(e, 4)
	if c.Utilization() != 0 {
		t.Errorf("utilization at t=0 = %v, want 0", c.Utilization())
	}
	// 2 of 4 procs busy for 100 s, then idle until 200.
	if err := c.Start(job(1, 2, 100, 100), nil); err != nil {
		t.Fatal(err)
	}
	e.MustSchedule(100, "probe", func() {
		if got := c.Utilization(); math.Abs(got-0.5) > 1e-9 {
			t.Errorf("utilization at t=100 = %v, want 0.5", got)
		}
	})
	e.MustSchedule(200, "probe2", func() {
		if got := c.Utilization(); math.Abs(got-0.25) > 1e-9 {
			t.Errorf("utilization at t=200 = %v, want 0.25", got)
		}
	})
	e.Run()
}

func TestSpaceSharedRatedSpeedsCompletion(t *testing.T) {
	e := sim.NewEngine()
	c := NewSpaceSharedRated(e, []float64{2.0, 1.0})
	finish := map[int]sim.Time{}
	done := func(j *workload.Job) { finish[j.ID] = e.Now() }
	// Fastest-first allocation: job 1 lands on the 2× node and halves its
	// runtime; job 2 gets the reference node.
	if err := c.Start(job(1, 1, 100, 100), done); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(2, 1, 100, 100), done); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if finish[1] != 50 {
		t.Errorf("fast-node job finished at %v, want 50", finish[1])
	}
	if finish[2] != 100 {
		t.Errorf("reference-node job finished at %v, want 100", finish[2])
	}
	if c.Rating(0) != 2.0 || c.Rating(1) != 1.0 {
		t.Error("Rating() wrong")
	}
}

func TestSpaceSharedRatedParallelBoundBySlowest(t *testing.T) {
	e := sim.NewEngine()
	c := NewSpaceSharedRated(e, []float64{2.0, 0.5})
	var finished sim.Time
	if err := c.Start(job(1, 2, 100, 100), func(*workload.Job) { finished = e.Now() }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if finished != 200 {
		t.Errorf("parallel job finished at %v, want 200 (slowest node)", finished)
	}
}

func TestSpaceSharedRatedBelievedEndScaled(t *testing.T) {
	e := sim.NewEngine()
	c := NewSpaceSharedRated(e, []float64{2.0})
	if err := c.Start(job(1, 1, 100, 60), nil); err != nil {
		t.Fatal(err)
	}
	r := c.Running()
	if len(r) != 1 || r[0].EstEnd != 30 {
		t.Errorf("believed end = %v, want 30 (estimate/speed)", r[0].EstEnd)
	}
	if r[0].Speed != 2.0 {
		t.Errorf("speed = %v", r[0].Speed)
	}
}

func TestSpaceSharedRatedReleasesCorrectNodes(t *testing.T) {
	e := sim.NewEngine()
	c := NewSpaceSharedRated(e, []float64{3.0, 2.0, 1.0})
	// Job 1 takes the two fastest (speed = 2), runs 50/2 = 25 s.
	if err := c.Start(job(1, 2, 50, 50), nil); err != nil {
		t.Fatal(err)
	}
	// Job 2 takes the remaining slow node, 50/1 = 50 s.
	if err := c.Start(job(2, 1, 50, 50), nil); err != nil {
		t.Fatal(err)
	}
	e.MustSchedule(30, "probe", func() {
		if c.FreeProcs() != 2 {
			t.Errorf("free at t=30 = %d, want 2 (fast nodes released)", c.FreeProcs())
		}
		// A new job must get the freed fast nodes again.
		if err := c.Start(job(3, 1, 30, 30), nil); err != nil {
			t.Fatal(err)
		}
		if r := c.Running(); len(r) > 0 {
			for _, sj := range r {
				if sj.Job.ID == 3 && sj.Speed != 3.0 {
					t.Errorf("job 3 speed = %v, want 3.0 (fastest free)", sj.Speed)
				}
			}
		}
	})
	e.Run()
}

func TestNewSpaceSharedRatedPanics(t *testing.T) {
	for name, ratings := range map[string][]float64{
		"empty": {}, "zero": {1, 0}, "negative": {-2},
	} {
		ratings := ratings
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			NewSpaceSharedRated(sim.NewEngine(), ratings)
		})
	}
}
