package cluster

import "fmt"

// UniformRatings returns a rating vector for a homogeneous machine whose
// every node runs at speed times the reference rate — the per-cluster speed
// profile of a federation member. speed 1 is the reference machine; the
// broker passes the result straight to the scheduler's NodeRatings.
func UniformRatings(nodes int, speed float64) []float64 {
	if nodes <= 0 {
		panic(fmt.Sprintf("cluster: non-positive node count %d", nodes))
	}
	if speed <= 0 {
		panic(fmt.Sprintf("cluster: non-positive node speed %v", speed))
	}
	ratings := make([]float64, nodes)
	for i := range ratings {
		ratings[i] = speed
	}
	return ratings
}
