// Package cluster models the simulated machine: a cluster of
// single-processor nodes (the paper simulates the 128-node IBM SP2 at SDSC)
// under two execution disciplines:
//
//   - SpaceShared: one job per processor at a time, used by the backfilling
//     policies (FCFS-BF, SJF-BF, EDF-BF) and FirstReward;
//   - TimeShared: deadline-proportional processor shares with multiple jobs
//     per processor, used by the Libra family.
//
// Both disciplines complete jobs after their *actual* runtime; schedulers
// only ever see the user *estimate*, which is how the paper's inaccuracy
// effects arise. Both support heterogeneous per-node speed ratings (the
// paper's SP2 is homogeneous at SPEC rating 168; ratings are the
// heterogeneity extension).
package cluster
