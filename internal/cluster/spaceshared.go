package cluster

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/workload"
)

// DefaultNodes is the machine size the paper simulates.
const DefaultNodes = 128

// SpaceJob describes one job currently executing on a space-shared cluster.
type SpaceJob struct {
	Job *workload.Job
	// Nodes are the indices of the processors the job occupies.
	Nodes []int
	// Speed is the effective execution speed: the minimum rating among the
	// allocated nodes (a parallel job advances in lockstep).
	Speed float64
	Start sim.Time
	// EstEnd is the completion time the scheduler believes in (start +
	// estimate/speed); ActualEnd is when the simulation really completes
	// it.
	EstEnd    sim.Time
	ActualEnd sim.Time

	// ev is the pending completion event, cancelled if a node failure
	// kills the job first.
	ev sim.Event
	// done is the completion callback, retained so Fail can report which
	// callback was disarmed.
	done func(*workload.Job)
}

// SpaceShared is a space-shared (dedicated-processor) cluster. Jobs occupy
// their full processor count from Start until their actual runtime (scaled
// by node speed) elapses.
type SpaceShared struct {
	engine  *sim.Engine
	ratings []float64
	busy    []bool
	// down marks failed nodes: neither free nor allocatable until repaired.
	down []bool
	// occupant indexes the job (if any) executing on each node, so a node
	// failure finds its single victim in O(1).
	occupant []*SpaceJob
	// free counts nodes that are idle AND up; busyProcs counts nodes
	// occupied by jobs. Down idle nodes are in neither bucket.
	free      int
	busyProcs int
	downCount int
	running   map[*workload.Job]*SpaceJob
	// byEnd keeps the running jobs sorted by (EstEnd, ID), maintained
	// incrementally on Start and release so the availability queries
	// (EarliestAvailable, AvailableAt, Running) never rebuild and re-sort
	// the set from the map. believedEnd clamps EstEnd up to now, which
	// reorders only jobs inside the clamped prefix — and every answer
	// drawn from that prefix is `now` regardless of its internal order,
	// so iterating byEnd gives bitwise-identical results to sorting by
	// believedEnd.
	byEnd []*SpaceJob

	// busyIntegral accumulates busy processor-seconds for Utilization.
	busyIntegral float64
	lastChange   sim.Time
}

// NewSpaceShared returns a homogeneous space-shared cluster of the given
// size bound to the engine (every node at the reference speed).
func NewSpaceShared(engine *sim.Engine, nodes int) *SpaceShared {
	if nodes <= 0 {
		panic(fmt.Sprintf("cluster: non-positive node count %d", nodes))
	}
	ratings := make([]float64, nodes)
	for i := range ratings {
		ratings[i] = 1
	}
	return NewSpaceSharedRated(engine, ratings)
}

// NewSpaceSharedRated returns a heterogeneous space-shared cluster: node i
// executes work at ratings[i] times the reference speed. Allocation is
// fastest-first; a parallel job runs at its slowest allocated node's speed.
func NewSpaceSharedRated(engine *sim.Engine, ratings []float64) *SpaceShared {
	if len(ratings) == 0 {
		panic("cluster: no node ratings")
	}
	for i, r := range ratings {
		if r <= 0 {
			panic(fmt.Sprintf("cluster: non-positive rating %v for node %d", r, i))
		}
	}
	return &SpaceShared{
		engine:   engine,
		ratings:  append([]float64(nil), ratings...),
		busy:     make([]bool, len(ratings)),
		down:     make([]bool, len(ratings)),
		occupant: make([]*SpaceJob, len(ratings)),
		free:     len(ratings),
		running:  make(map[*workload.Job]*SpaceJob),
	}
}

// Nodes returns the machine size.
func (s *SpaceShared) Nodes() int { return len(s.ratings) }

// Rating returns node i's speed multiplier.
func (s *SpaceShared) Rating(i int) float64 { return s.ratings[i] }

// FreeProcs returns the number of processors that are idle and up.
func (s *SpaceShared) FreeProcs() int { return s.free }

// UpNodes returns the number of nodes currently operational.
func (s *SpaceShared) UpNodes() int { return len(s.ratings) - s.downCount }

// NodeDown reports whether node i is currently failed.
func (s *SpaceShared) NodeDown(i int) bool { return s.down[i] }

// RunningCount returns the number of jobs currently executing.
func (s *SpaceShared) RunningCount() int { return len(s.running) }

// CanStart reports whether a job of the given width fits right now.
//
//lint:hot
func (s *SpaceShared) CanStart(procs int) bool {
	return procs <= s.free && procs <= len(s.ratings)
}

// accrue integrates busy processor time up to the current instant; callers
// mutate the busy count immediately afterwards. Down nodes do no work and
// contribute nothing, but they stay in the capacity denominator — the
// provider still owns them.
//
//lint:hot
func (s *SpaceShared) accrue() {
	now := s.engine.Now()
	s.busyIntegral += float64(s.busyProcs) * float64(now-s.lastChange)
	s.lastChange = now
}

// Utilization returns the machine's processor utilization from time zero
// to the current instant: busy processor-seconds over capacity (counted in
// processors, not ratings). Zero at time zero.
//
//lint:hot
func (s *SpaceShared) Utilization() float64 {
	now := float64(s.engine.Now())
	if now <= 0 {
		return 0
	}
	current := s.busyIntegral + float64(s.busyProcs)*(now-float64(s.lastChange))
	return current / (float64(len(s.ratings)) * now)
}

// pickNodes selects the procs fastest free (idle and up) nodes (ties by
// index).
func (s *SpaceShared) pickNodes(procs int) []int {
	idx := make([]int, 0, s.free)
	for i, busy := range s.busy {
		if !busy && !s.down[i] {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		ra, rb := s.ratings[idx[a]], s.ratings[idx[b]]
		if ra != rb {
			return ra > rb
		}
		return idx[a] < idx[b]
	})
	return idx[:procs]
}

// Start begins executing j immediately on the fastest free nodes. done
// fires at the job's actual completion, after processors have been
// released.
func (s *SpaceShared) Start(j *workload.Job, done func(finished *workload.Job)) error {
	if j.Procs > len(s.ratings) {
		return fmt.Errorf("cluster: job %d needs %d procs, machine has %d", j.ID, j.Procs, len(s.ratings))
	}
	if j.Procs > s.free {
		return fmt.Errorf("cluster: job %d needs %d procs, only %d free", j.ID, j.Procs, s.free)
	}
	nodes := s.pickNodes(j.Procs)
	speed := s.ratings[nodes[0]]
	for _, n := range nodes[1:] {
		if s.ratings[n] < speed {
			speed = s.ratings[n]
		}
	}
	now := s.engine.Now()
	sj := &SpaceJob{
		Job:       j,
		Nodes:     nodes,
		Speed:     speed,
		Start:     now,
		EstEnd:    now + sim.Time(j.Estimate/speed),
		ActualEnd: now + sim.Time(j.Runtime/speed),
	}
	s.accrue()
	for _, n := range nodes {
		s.busy[n] = true
		s.occupant[n] = sj
	}
	s.free -= j.Procs
	s.busyProcs += j.Procs
	s.running[j] = sj
	s.insertByEnd(sj)
	sj.done = done
	sj.ev = s.engine.MustSchedule(sj.ActualEnd, "spaceshared completion", func() {
		s.accrue()
		s.release(sj)
		if done != nil {
			done(j)
		}
	})
	return nil
}

// endLess is the (EstEnd, ID) strict order byEnd is kept in. Job IDs are
// unique, so it is total: binary search locates any job exactly.
func endLess(a, b *SpaceJob) bool {
	if a.EstEnd != b.EstEnd {
		return a.EstEnd < b.EstEnd
	}
	return a.Job.ID < b.Job.ID
}

// insertByEnd places sj into the sorted running list.
func (s *SpaceShared) insertByEnd(sj *SpaceJob) {
	i := sort.Search(len(s.byEnd), func(k int) bool { return !endLess(s.byEnd[k], sj) })
	s.byEnd = append(s.byEnd, nil)
	copy(s.byEnd[i+1:], s.byEnd[i:])
	s.byEnd[i] = sj
}

// removeByEnd deletes sj from the sorted running list.
func (s *SpaceShared) removeByEnd(sj *SpaceJob) {
	i := sort.Search(len(s.byEnd), func(k int) bool { return !endLess(s.byEnd[k], sj) })
	if i >= len(s.byEnd) || s.byEnd[i] != sj {
		panic(fmt.Sprintf("cluster: job %d missing from byEnd index", sj.Job.ID))
	}
	copy(s.byEnd[i:], s.byEnd[i+1:])
	s.byEnd[len(s.byEnd)-1] = nil
	s.byEnd = s.byEnd[:len(s.byEnd)-1]
}

// release returns a finished or killed job's processors to the free pool.
// Callers must accrue() first. Down nodes in the allocation (only possible
// on the failure path) are not freed.
func (s *SpaceShared) release(sj *SpaceJob) {
	delete(s.running, sj.Job)
	s.removeByEnd(sj)
	for _, n := range sj.Nodes {
		s.busy[n] = false
		s.occupant[n] = nil
		if !s.down[n] {
			s.free++
		}
	}
	s.busyProcs -= sj.Job.Procs
}

// Fail marks node i as failed. The node leaves the allocatable pool until
// Repair; the job executing on it (if any) is killed — a parallel job dies
// whole when any of its nodes fails, its surviving processors return to the
// free pool, and its completion event is cancelled. The victim job is
// returned (nil when the node was idle) so the owning policy can requeue,
// resubmit, or write the job off. Failing a node that is already down is a
// programming error (the generator emits strictly alternating events).
func (s *SpaceShared) Fail(i int) *workload.Job {
	if i < 0 || i >= len(s.ratings) {
		panic(fmt.Sprintf("cluster: Fail of node %d on a %d-node machine", i, len(s.ratings)))
	}
	if s.down[i] {
		panic(fmt.Sprintf("cluster: node %d failed twice without repair", i))
	}
	s.accrue()
	s.down[i] = true
	s.downCount++
	sj := s.occupant[i]
	if sj == nil {
		s.free-- // an idle node leaves the free pool
		return nil
	}
	s.engine.Cancel(sj.ev)
	s.release(sj)
	return sj.Job
}

// Repair returns a failed node to service, idle. Repairing an up node is a
// programming error.
func (s *SpaceShared) Repair(i int) {
	if i < 0 || i >= len(s.ratings) {
		panic(fmt.Sprintf("cluster: Repair of node %d on a %d-node machine", i, len(s.ratings)))
	}
	if !s.down[i] {
		panic(fmt.Sprintf("cluster: node %d repaired while up", i))
	}
	s.accrue()
	s.down[i] = false
	s.downCount--
	s.free++
}

// Running returns the executing jobs, ordered by believed completion time
// (then job ID) for deterministic iteration. The returned slice is a copy;
// callers may reorder it freely.
func (s *SpaceShared) Running() []*SpaceJob {
	return append([]*SpaceJob(nil), s.byEnd...)
}

// believedEnd is when the scheduler expects sj to release its processors: a
// job past its estimate is presumed to finish imminently (the standard
// backfilling treatment of runtime under-estimates).
//
//lint:hot
func (s *SpaceShared) believedEnd(sj *SpaceJob) sim.Time {
	now := s.engine.Now()
	if sj.EstEnd < now {
		return now
	}
	return sj.EstEnd
}

// EarliestAvailable returns the earliest time (>= now) at which at least
// procs processors are expected to be free, according to estimates of the
// running jobs. This is the EASY backfilling "reservation" anchor. On a
// heterogeneous machine it is count-based: which processors free up is not
// modeled (backfilling has no canonical heterogeneous form).
//
//lint:hot
func (s *SpaceShared) EarliestAvailable(procs int) (sim.Time, error) {
	if procs > len(s.ratings) {
		//lint:allow hotalloc — misconfiguration error path, fires at most once per run, never in steady state
		return 0, fmt.Errorf("cluster: width %d exceeds machine size %d", procs, len(s.ratings))
	}
	if procs <= s.free {
		return s.engine.Now(), nil
	}
	// Walk byEnd directly. Its (EstEnd, ID) order differs from the
	// believedEnd order only among jobs with EstEnd < now — which form a
	// prefix of byEnd, all answer `now`, and contribute an
	// order-independent processor sum — so the result is identical to
	// sorting by (believedEnd, ID).
	free := s.free
	for _, sj := range s.byEnd {
		free += sj.Job.Procs
		if free >= procs {
			return s.believedEnd(sj), nil
		}
	}
	// Releasing every running job still leaves fewer than procs processors:
	// failed nodes have shrunk the machine below the requested width. The
	// width becomes available only after repairs the scheduler cannot see,
	// so the reservation anchor is "never" — callers treat Infinity as an
	// unblocked backfill window, and admission control eventually rejects
	// the job when its deadline lapses.
	return sim.Infinity, nil
}

// AvailableAt returns the number of processors expected to be free at time
// t (>= now), per estimates of the running jobs.
//
//lint:hot
func (s *SpaceShared) AvailableAt(t sim.Time) int {
	free := s.free
	for _, sj := range s.byEnd {
		if sj.EstEnd > t {
			// byEnd ascends in EstEnd, and believedEnd only raises
			// EstEnd, so no later job can satisfy believedEnd <= t.
			break
		}
		if s.believedEnd(sj) <= t {
			free += sj.Job.Procs
		}
	}
	return free
}
