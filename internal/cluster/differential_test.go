package cluster

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Differential battery: the optimized TimeShared/SpaceShared and the naive
// references in reference_test.go are driven through identical randomized
// scenarios — submissions, lapses, node failures and repairs at both fault
// intensities — and every observable (settlement times, fail victims,
// availability answers, rates, utilization) is journaled with full float64
// bit patterns. The journals must be identical entry for entry: the
// optimizations claim exactness, not approximation.

const (
	diffNodes   = 16
	diffJobs    = 100
	diffHorizon = 4000.0
	diffSeeds   = 30
)

// fbits canonicalizes a float for the journal: bit pattern, not rounded
// text, so a one-ulp divergence cannot hide.
func fbits(x float64) string { return fmt.Sprintf("%016x", math.Float64bits(x)) }

func tbits(t sim.Time) string { return fbits(float64(t)) }

type diffScenario struct {
	ratings []float64
	jobs    []*workload.Job
	shares  []float64 // per job, for the time-shared discipline
	events  []faults.Event
}

// newDiffScenario draws one scenario. Odd seeds get a heterogeneous
// machine, exercising the rating-aware paths (fastest-first allocation,
// slowest-node rates).
func newDiffScenario(t *testing.T, seed int64, intensity faults.Intensity) diffScenario {
	t.Helper()
	rng := stats.NewRand(seed)
	sc := diffScenario{ratings: make([]float64, diffNodes)}
	for i := range sc.ratings {
		if seed%2 == 1 {
			sc.ratings[i] = 0.5 + rng.Float64()
		} else {
			sc.ratings[i] = 1
		}
	}
	for i := 0; i < diffJobs; i++ {
		runtime := 10 + rng.Float64()*400
		estimate := runtime * (0.5 + rng.Float64())
		j := &workload.Job{
			ID:       i + 1,
			Submit:   rng.Float64() * diffHorizon * 0.6,
			Runtime:  runtime,
			Estimate: estimate,
			Procs:    1 + rng.Intn(3),
		}
		share := 0.1 + 0.5*rng.Float64()
		if rng.Intn(5) > 0 {
			// Most jobs carry a deadline; many will lapse (deadline can
			// undercut the actual runtime).
			j.Deadline = estimate * (0.5 + 1.5*rng.Float64())
			share = stats.Clamp(j.Estimate/j.Deadline, 0.05, 1)
		}
		sc.jobs = append(sc.jobs, j)
		sc.shares = append(sc.shares, share)
	}
	// Stable submission order: the driver schedules jobs in this order, so
	// same-time ties resolve identically on both engines.
	idx := make([]int, len(sc.jobs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ja, jb := sc.jobs[idx[a]], sc.jobs[idx[b]]
		if ja.Submit != jb.Submit {
			return ja.Submit < jb.Submit
		}
		return ja.ID < jb.ID
	})
	jobs := make([]*workload.Job, len(idx))
	shares := make([]float64, len(idx))
	for i, k := range idx {
		jobs[i], shares[i] = sc.jobs[k], sc.shares[k]
	}
	sc.jobs, sc.shares = jobs, shares

	cfg := intensity.Config(seed, diffHorizon)
	events, err := faults.Generate(cfg, diffNodes)
	if err != nil {
		t.Fatalf("seed %d: fault generation: %v", seed, err)
	}
	sc.events = events
	return sc
}

// tsImpl is the surface the time-shared differential driver exercises.
type tsImpl interface {
	CandidateNodes(share float64) []int
	Start(j *workload.Job, share float64, nodes []int, done func(*workload.Job)) error
	Fail(i int) []*workload.Job
	Repair(i int)
	FreeShare(i int) float64
	CommittedSeconds(i int, horizon float64) float64
	Utilization() float64
	JobState(j *workload.Job) (rate, progress float64, lapsed, ok bool)
}

// realTS adapts *TimeShared to tsImpl (only JobState needs the adapter).
type realTS struct{ *TimeShared }

func (r realTS) JobState(j *workload.Job) (float64, float64, bool, bool) {
	tj := r.Lookup(j)
	if tj == nil {
		return 0, 0, false, false
	}
	return tj.Rate(), tj.Progress(), tj.Lapsed(), true
}

// runTimeSharedScenario drives one implementation through the scenario and
// returns its journal.
func runTimeSharedScenario(t *testing.T, sc diffScenario, build func(*sim.Engine) tsImpl) []string {
	t.Helper()
	e := sim.NewEngine()
	impl := build(e)
	var journal []string
	rec := func(format string, args ...any) {
		journal = append(journal, fmt.Sprintf(format, args...))
	}
	for i, j := range sc.jobs {
		j, share := j, sc.shares[i]
		e.MustSchedule(sim.Time(j.Submit), "diff submit", func() {
			cand := impl.CandidateNodes(share)
			if len(cand) < j.Procs {
				rec("reject %d cand=%v", j.ID, cand)
				return
			}
			nodes := cand[:j.Procs]
			rec("start %d nodes=%v share=%s", j.ID, nodes, fbits(share))
			if err := impl.Start(j, share, nodes, func(fin *workload.Job) {
				rec("done %d at=%s", fin.ID, tbits(e.Now()))
			}); err != nil {
				t.Errorf("start job %d: %v", j.ID, err)
			}
		})
	}
	for _, fe := range sc.events {
		fe := fe
		if fe.Down {
			e.MustSchedule(sim.Time(fe.Time), "diff fail", func() {
				victims := impl.Fail(fe.Node)
				ids := make([]int, len(victims))
				for k, v := range victims {
					ids[k] = v.ID
				}
				rec("fail %d at=%s victims=%v", fe.Node, tbits(e.Now()), ids)
			})
		} else {
			e.MustSchedule(sim.Time(fe.Time), "diff repair", func() {
				impl.Repair(fe.Node)
				rec("repair %d at=%s", fe.Node, tbits(e.Now()))
			})
		}
	}
	for k := 1; k <= 10; k++ {
		at := diffHorizon * float64(k) / 10
		e.MustSchedule(sim.Time(at), "diff probe", func() {
			for i := 0; i < diffNodes; i++ {
				rec("free %d %s committed %s", i,
					fbits(impl.FreeShare(i)), fbits(impl.CommittedSeconds(i, 500)))
			}
			rec("util %s", fbits(impl.Utilization()))
			for _, j := range sc.jobs {
				if rate, prog, lapsed, ok := impl.JobState(j); ok {
					rec("state %d rate=%s prog=%s lapsed=%v", j.ID, fbits(rate), fbits(prog), lapsed)
				}
			}
		})
	}
	e.Run()
	return journal
}

// ssImpl is the surface the space-shared differential driver exercises.
type ssImpl interface {
	CanStart(procs int) bool
	Start(j *workload.Job, done func(*workload.Job)) error
	Fail(i int) *workload.Job
	Repair(i int)
	FreeProcs() int
	EarliestAvailable(procs int) (sim.Time, error)
	AvailableAt(t sim.Time) int
	Utilization() float64
}

func runSpaceSharedScenario(t *testing.T, sc diffScenario, build func(*sim.Engine) ssImpl) []string {
	t.Helper()
	e := sim.NewEngine()
	impl := build(e)
	var journal []string
	rec := func(format string, args ...any) {
		journal = append(journal, fmt.Sprintf(format, args...))
	}
	availability := func(tag string, widths ...int) {
		for _, w := range widths {
			at, err := impl.EarliestAvailable(w)
			if err != nil {
				t.Errorf("EarliestAvailable(%d): %v", w, err)
				continue
			}
			rec("%s earliest %d at=%s then=%d", tag, w, tbits(at), impl.AvailableAt(at))
		}
	}
	for _, j := range sc.jobs {
		j := j
		e.MustSchedule(sim.Time(j.Submit), "diff submit", func() {
			if !impl.CanStart(j.Procs) {
				// The backfilling question a queued job asks: when could I
				// reserve, and how much is free then?
				availability(fmt.Sprintf("defer %d", j.ID), 1, j.Procs, diffNodes)
				return
			}
			rec("start %d free=%d", j.ID, impl.FreeProcs())
			if err := impl.Start(j, func(fin *workload.Job) {
				rec("done %d at=%s", fin.ID, tbits(e.Now()))
			}); err != nil {
				t.Errorf("start job %d: %v", j.ID, err)
			}
		})
	}
	for _, fe := range sc.events {
		fe := fe
		if fe.Down {
			e.MustSchedule(sim.Time(fe.Time), "diff fail", func() {
				victim := impl.Fail(fe.Node)
				id := 0
				if victim != nil {
					id = victim.ID
				}
				rec("fail %d at=%s victim=%d", fe.Node, tbits(e.Now()), id)
			})
		} else {
			e.MustSchedule(sim.Time(fe.Time), "diff repair", func() {
				impl.Repair(fe.Node)
				rec("repair %d at=%s", fe.Node, tbits(e.Now()))
			})
		}
	}
	for k := 1; k <= 10; k++ {
		at := diffHorizon * float64(k) / 10
		e.MustSchedule(sim.Time(at), "diff probe", func() {
			rec("probe free=%d util=%s", impl.FreeProcs(), fbits(impl.Utilization()))
			widths := make([]int, diffNodes)
			for w := 1; w <= diffNodes; w++ {
				widths[w-1] = w
			}
			availability("probe", widths...)
			for _, dt := range []float64{0, 50, 200, 1000} {
				rec("probe at+%v avail=%d", dt, impl.AvailableAt(e.Now()+sim.Time(dt)))
			}
		})
	}
	e.Run()
	return journal
}

func compareJournals(t *testing.T, label string, got, want []string) {
	t.Helper()
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			t.Fatalf("%s: journal diverges at entry %d:\n optimized: %s\n reference: %s",
				label, i, got[i], want[i])
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%s: journal length %d (optimized) vs %d (reference)", label, len(got), len(want))
	}
	if len(got) == 0 {
		t.Fatalf("%s: empty journal — degenerate scenario", label)
	}
}

// TestTimeSharedMatchesReferenceAcrossSeeds drives the optimized TimeShared
// and the naive full-recompute reference through 30 seeds at both fault
// intensities and requires bit-identical journals.
func TestTimeSharedMatchesReferenceAcrossSeeds(t *testing.T) {
	for _, intensity := range []faults.Intensity{faults.Low, faults.High} {
		for seed := int64(0); seed < diffSeeds; seed++ {
			sc := newDiffScenario(t, seed, intensity)
			opt := runTimeSharedScenario(t, sc, func(e *sim.Engine) tsImpl {
				return realTS{NewTimeSharedRated(e, sc.ratings)}
			})
			ref := runTimeSharedScenario(t, sc, func(e *sim.Engine) tsImpl {
				return newRefTimeShared(e, sc.ratings)
			})
			compareJournals(t, fmt.Sprintf("timeshared seed=%d intensity=%s", seed, intensity), opt, ref)
		}
	}
}

// TestSpaceSharedMatchesReferenceAcrossSeeds does the same for the
// space-shared discipline: the maintained (EstEnd, ID) order must answer
// every availability question exactly as the rebuild-and-sort reference.
func TestSpaceSharedMatchesReferenceAcrossSeeds(t *testing.T) {
	for _, intensity := range []faults.Intensity{faults.Low, faults.High} {
		for seed := int64(0); seed < diffSeeds; seed++ {
			sc := newDiffScenario(t, seed, intensity)
			opt := runSpaceSharedScenario(t, sc, func(e *sim.Engine) ssImpl {
				return NewSpaceSharedRated(e, sc.ratings)
			})
			ref := runSpaceSharedScenario(t, sc, func(e *sim.Engine) ssImpl {
				return newRefSpaceShared(e, sc.ratings)
			})
			compareJournals(t, fmt.Sprintf("spaceshared seed=%d intensity=%s", seed, intensity), opt, ref)
		}
	}
}
