package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestTimeSharedSingleJobRunsAtFullRate(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 4)
	var finishedAt sim.Time
	j := job(1, 2, 100, 120)
	// Share 0.5, but alone on its nodes the job gets the whole processor.
	if err := c.Start(j, 0.5, []int{0, 1}, func(*workload.Job) { finishedAt = e.Now() }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if finishedAt != 100 {
		t.Errorf("finished at %v, want 100 (spare capacity redistributes)", finishedAt)
	}
	if c.RunningCount() != 0 {
		t.Errorf("RunningCount = %d after run, want 0", c.RunningCount())
	}
	if c.FreeShare(0) != 1 {
		t.Errorf("FreeShare(0) = %v after completion, want 1", c.FreeShare(0))
	}
}

func TestTimeSharedProportionalSlowdown(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 1)
	finish := map[int]sim.Time{}
	done := func(j *workload.Job) { finish[j.ID] = e.Now() }
	// Two equal jobs share one node: each runs at rate 0.5, so 100 s of
	// work takes 200 s while both are present.
	if err := c.Start(job(1, 1, 100, 100), 0.5, []int{0}, done); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(2, 1, 100, 100), 0.5, []int{0}, done); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if finish[1] != 200 || finish[2] != 200 {
		t.Errorf("finish times = %v, want both 200", finish)
	}
}

func TestTimeSharedRateRecoversAfterDeparture(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 1)
	finish := map[int]sim.Time{}
	done := func(j *workload.Job) { finish[j.ID] = e.Now() }
	// Job 1: 100s work; job 2: 30s work. Both share 0.5 on one node.
	// Until job 2 finishes both run at 0.5. Job 2 finishes at t=60 with
	// 30s of work. Job 1 then has 100-30=70s left at rate 1 -> t=130.
	if err := c.Start(job(1, 1, 100, 100), 0.5, []int{0}, done); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(2, 1, 30, 30), 0.5, []int{0}, done); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if math.Abs(float64(finish[2]-60)) > 1e-6 {
		t.Errorf("job 2 finished at %v, want 60", finish[2])
	}
	if math.Abs(float64(finish[1]-130)) > 1e-6 {
		t.Errorf("job 1 finished at %v, want 130", finish[1])
	}
}

func TestTimeSharedGuaranteedShareHolds(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 1)
	finish := map[int]sim.Time{}
	done := func(j *workload.Job) { finish[j.ID] = e.Now() }
	// Job 1 share 0.8 (work 80), job 2 share 0.2 (work 10).
	// Rates: 0.8 and 0.2. Job 2 finishes at 10/0.2 = 50.
	// Job 1 has 80 - 0.8*50 = 40 left, now alone at rate 1: t=90.
	if err := c.Start(job(1, 1, 80, 80), 0.8, []int{0}, done); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(2, 1, 10, 10), 0.2, []int{0}, done); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if math.Abs(float64(finish[2]-50)) > 1e-6 {
		t.Errorf("job 2 finished at %v, want 50", finish[2])
	}
	if math.Abs(float64(finish[1]-90)) > 1e-6 {
		t.Errorf("job 1 finished at %v, want 90", finish[1])
	}
}

func TestTimeSharedParallelJobSlowestNode(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 2)
	finish := map[int]sim.Time{}
	done := func(j *workload.Job) { finish[j.ID] = e.Now() }
	// Job 1 spans nodes 0,1 with share 0.5 and 100s of work.
	// Job 2 sits on node 1 with share 0.5 and 100s of work.
	// Node 1 is shared: job 1 runs at 0.5 overall (slowest node), even
	// though node 0 is otherwise idle.
	if err := c.Start(job(1, 2, 100, 100), 0.5, []int{0, 1}, done); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(2, 1, 100, 100), 0.5, []int{1}, done); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if math.Abs(float64(finish[1]-200)) > 1e-6 {
		t.Errorf("parallel job finished at %v, want 200", finish[1])
	}
}

func TestTimeSharedAdmissionChecks(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 2)
	j := job(1, 1, 10, 10)
	if err := c.Start(j, 0, []int{0}, nil); err == nil {
		t.Error("zero share accepted")
	}
	if err := c.Start(j, 1.2, []int{0}, nil); err == nil {
		t.Error("share > 1 accepted")
	}
	if err := c.Start(j, 0.5, []int{0, 1}, nil); err == nil {
		t.Error("node count mismatch accepted")
	}
	if err := c.Start(job(2, 2, 10, 10), 0.5, []int{0, 0}, nil); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := c.Start(job(3, 1, 10, 10), 0.5, []int{5}, nil); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := c.Start(j, 0.7, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(j, 0.3, []int{1}, nil); err == nil {
		t.Error("double Start of the same job accepted")
	}
	if err := c.Start(job(4, 1, 10, 10), 0.5, []int{0}, nil); err == nil {
		t.Error("over-committed node accepted")
	}
}

func TestTimeSharedCandidateNodesBestFit(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 3)
	// Node 0: load 0.6; node 1: load 0.2; node 2: empty.
	if err := c.Start(job(1, 1, 1000, 1000), 0.6, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(2, 1, 1000, 1000), 0.2, []int{1}, nil); err != nil {
		t.Fatal(err)
	}
	got := c.CandidateNodes(0.3)
	// Node 0 has 0.4 free, node 1 has 0.8, node 2 has 1.0. Best fit: 0,1,2.
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("CandidateNodes(0.3) = %v, want [0 1 2]", got)
	}
	got = c.CandidateNodes(0.5)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("CandidateNodes(0.5) = %v, want [1 2]", got)
	}
}

func TestTimeSharedOverrunDetection(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 2)
	// Estimate 50 but actual work 100: overruns from t=50.
	j := job(1, 1, 100, 50)
	if err := c.Start(j, 1.0, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	e.MustSchedule(25, "before overrun", func() {
		if c.NodeHasOverrun(0) {
			t.Error("overrun reported at t=25, estimate is 50")
		}
		if tj := c.Lookup(j); tj == nil || math.Abs(tj.Progress()-25) > 1e-6 {
			t.Errorf("progress = %v at t=25, want 25", tj.Progress())
		}
	})
	e.MustSchedule(75, "after overrun", func() {
		if !c.NodeHasOverrun(0) {
			t.Error("no overrun reported at t=75, estimate was 50")
		}
		if c.NodeHasOverrun(1) {
			t.Error("empty node reports overrun")
		}
	})
	e.Run()
}

// Property: regardless of the mix of shares and work, every job's finish
// time is at most remaining/share after its start (the Libra guarantee) and
// at least its dedicated runtime.
func TestTimeSharedGuaranteeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		e := sim.NewEngine()
		c := NewTimeShared(e, 4)
		type rec struct {
			start    sim.Time
			runtime  float64
			share    float64
			finished sim.Time
		}
		recs := make(map[int]*rec)
		nextID := 1
		var submit func(at sim.Time)
		submit = func(at sim.Time) {
			e.MustSchedule(at, "submit", func() {
				id := nextID
				nextID++
				runtime := 10 + rng.Float64()*200
				share := 0.1 + rng.Float64()*0.4
				procs := 1 + rng.Intn(2)
				j := job(id, procs, runtime, runtime)
				nodes := c.CandidateNodes(share)
				if len(nodes) < procs {
					return
				}
				r := &rec{start: e.Now(), runtime: runtime, share: share}
				recs[id] = r
				if err := c.Start(j, share, nodes[:procs], func(*workload.Job) { r.finished = e.Now() }); err != nil {
					t.Fatalf("Start: %v", err)
				}
			})
		}
		for i := 0; i < 12; i++ {
			submit(sim.Time(rng.Float64() * 300))
		}
		e.Run()
		for id, r := range recs {
			elapsed := float64(r.finished - r.start)
			if elapsed+1e-6 < r.runtime {
				t.Fatalf("job %d finished in %v < dedicated runtime %v", id, elapsed, r.runtime)
			}
			bound := r.runtime / r.share
			if elapsed > bound+1e-6 {
				t.Fatalf("job %d took %v > guaranteed bound %v (share %v)", id, elapsed, bound, r.share)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: shares committed and released must balance: after all jobs
// finish, every node is empty and fully free.
func TestTimeSharedConservationProperty(t *testing.T) {
	rng := stats.NewRand(7)
	for trial := 0; trial < 20; trial++ {
		e := sim.NewEngine()
		c := NewTimeShared(e, 8)
		completed := 0
		started := 0
		for i := 0; i < 30; i++ {
			at := sim.Time(rng.Float64() * 500)
			id := i + 1
			e.MustSchedule(at, "submit", func() {
				share := 0.05 + rng.Float64()*0.5
				procs := 1 + rng.Intn(4)
				nodes := c.CandidateNodes(share)
				if len(nodes) < procs {
					return
				}
				started++
				runtime := 1 + rng.Float64()*100
				err := c.Start(job(id, procs, runtime, runtime), share, nodes[:procs], func(*workload.Job) { completed++ })
				if err != nil {
					t.Fatalf("Start: %v", err)
				}
			})
		}
		e.Run()
		if completed != started {
			t.Fatalf("trial %d: started %d jobs, completed %d", trial, started, completed)
		}
		for n := 0; n < c.Nodes(); n++ {
			if math.Abs(c.FreeShare(n)-1) > 1e-6 {
				t.Fatalf("trial %d: node %d free share %v after drain, want 1", trial, n, c.FreeShare(n))
			}
		}
		if c.RunningCount() != 0 {
			t.Fatalf("trial %d: %d jobs still running", trial, c.RunningCount())
		}
	}
}

func TestNewTimeSharedPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTimeShared(0) did not panic")
		}
	}()
	NewTimeShared(sim.NewEngine(), 0)
}

func TestTimeSharedUtilization(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeShared(e, 2)
	// One single-proc job alone: runs at rate 1 on 1 of 2 nodes for 100 s.
	if err := c.Start(job(1, 1, 100, 100), 0.5, []int{0}, nil); err != nil {
		t.Fatal(err)
	}
	e.MustSchedule(100, "probe", func() {
		if got := c.Utilization(); math.Abs(got-0.5) > 1e-9 {
			t.Errorf("utilization at t=100 = %v, want 0.5", got)
		}
	})
	e.Run()
}

func TestRatedNodeRunsFaster(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeSharedRated(e, []float64{2.0, 0.5})
	finish := map[int]sim.Time{}
	done := func(j *workload.Job) { finish[j.ID] = e.Now() }
	// 100 s of reference work: 50 s on the fast node, 200 s on the slow.
	if err := c.Start(job(1, 1, 100, 100), 0.5, []int{0}, done); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(2, 1, 100, 100), 0.5, []int{1}, done); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if math.Abs(float64(finish[1]-50)) > 1e-6 {
		t.Errorf("fast-node job finished at %v, want 50", finish[1])
	}
	if math.Abs(float64(finish[2]-200)) > 1e-6 {
		t.Errorf("slow-node job finished at %v, want 200", finish[2])
	}
	if c.Rating(0) != 2.0 || c.Rating(1) != 0.5 {
		t.Error("Rating() wrong")
	}
}

func TestRatedParallelJobBoundBySlowestNode(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeSharedRated(e, []float64{2.0, 0.5})
	var finished sim.Time
	if err := c.Start(job(1, 2, 100, 100), 1.0, []int{0, 1}, func(*workload.Job) { finished = e.Now() }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	// Slowest node governs: rate 0.5 -> 200 s.
	if math.Abs(float64(finished-200)) > 1e-6 {
		t.Errorf("parallel job finished at %v, want 200", finished)
	}
}

func TestRatedSharingScalesWithSpeed(t *testing.T) {
	e := sim.NewEngine()
	c := NewTimeSharedRated(e, []float64{2.0})
	finish := map[int]sim.Time{}
	done := func(j *workload.Job) { finish[j.ID] = e.Now() }
	// Two equal shares on a double-speed node: each runs at effective
	// rate 1.0, finishing 100 s of work in 100 s.
	if err := c.Start(job(1, 1, 100, 100), 0.5, []int{0}, done); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(job(2, 1, 100, 100), 0.5, []int{0}, done); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if math.Abs(float64(finish[1]-100)) > 1e-6 || math.Abs(float64(finish[2]-100)) > 1e-6 {
		t.Errorf("finish times = %v, want both 100", finish)
	}
}

func TestNewTimeSharedRatedPanics(t *testing.T) {
	for name, ratings := range map[string][]float64{
		"empty":    {},
		"zero":     {1, 0},
		"negative": {-1},
	} {
		ratings := ratings
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			NewTimeSharedRated(sim.NewEngine(), ratings)
		})
	}
}
